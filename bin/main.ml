(** The jahob command-line verifier.

    {v jahob verify FILE...     — verify all methods of the given files
       jahob vc FILE...         — print the generated obligations
       jahob parse FILE...      — parse and dump the class structure  v} *)

open Cmdliner

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Input .java files")

let no_inference_arg =
  Arg.(value & flag
       & info [ "no-inference" ]
           ~doc:"Disable loop-invariant inference (symbolic shape analysis)")

let provers_arg =
  Arg.(value & opt (some string) None
       & info [ "provers" ]
           ~doc:"Comma-separated prover order (smt, bapa, mona, fol, cooper)")

let select_provers (spec : string option) : Logic.Sequent.prover list =
  match spec with
  | None -> Jahob_core.Jahob.default_provers ()
  | Some s ->
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.map (function
         | "smt" -> Smt.prover
         | "bapa" -> Bapa.prover
         | "mona" -> Fca.prover
         | "fol" -> Fol.prover
         | "cooper" -> Presburger.Lia.prover
         | other -> failwith ("unknown prover: " ^ other))

(* human-readable front-end failures instead of raw exceptions *)
let with_frontend_errors (f : unit -> int) : int =
  try f () with
  | Javaparser.Jlexer.Lex_error (msg, line) ->
    Format.eprintf "lexical error (line %d): %s@." line msg;
    2
  | Javaparser.Jparser.Error (msg, line) ->
    Format.eprintf "parse error (line %d): %s@." line msg;
    2
  | Javaparser.Annot.Error msg ->
    Format.eprintf "annotation error: %s@." msg;
    2
  | Gcl.Desugar.Error msg ->
    Format.eprintf "semantic error: %s@." msg;
    2
  | Failure msg ->
    Format.eprintf "error: %s@." msg;
    2

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ] ~doc:"Print per-prover statistics after verifying")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Dispatch proof obligations across $(docv) worker domains. \
                 $(docv) = 0 (the default) means auto: one worker per \
                 available core, as reported by \
                 Domain.recommended_domain_count. Values are clamped to \
                 [1, 128]; 1 verifies sequentially")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the verdict cache (re-prove repeated obligations)")

let cache_cap_arg =
  Arg.(value & opt int 0
       & info [ "cache-cap" ] ~docv:"N"
           ~doc:"Cap the verdict cache at $(docv) entries, evicting the \
                 least recently used at batch boundaries; 0 (the default) \
                 keeps the generous built-in cap")

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"PATH"
           ~doc:"Persistent verdict store: preload the cache from $(docv) \
                 before verifying and write newly settled verdicts back \
                 (atomic temp-then-rename; a store written under a \
                 different digest scheme is refused with a logged cold \
                 start)")

let store_cap_arg =
  Arg.(value & opt int 0
       & info [ "store-cap" ] ~docv:"N"
           ~doc:"Cap the on-disk store at $(docv) entries (LRU-evicted at \
                 save time); 0 keeps the default cap")

let budget_arg =
  Arg.(value & opt (some float) None
       & info [ "budget" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget per prover call; a prover exceeding it \
                 answers unknown and the portfolio moves on")

let no_hashcons_arg =
  Arg.(value & flag
       & info [ "no-hashcons" ]
           ~doc:"Disable the hash-consed formula kernel and its memo \
                 tables; every structural pass recomputes from scratch \
                 (A/B escape hatch for benchmarking and debugging)")

let mona_engine_arg =
  Arg.(value
       & opt (enum [ ("bdd", Mona.Ws1s.Bdd); ("dense", Mona.Ws1s.Dense) ])
           Mona.Ws1s.Bdd
       & info [ "mona-engine" ] ~docv:"ENGINE"
           ~doc:"WS1S automata engine for the MONA route: $(b,bdd) (the \
                 default; shared-BDD transition relations, handles wide \
                 variable counts) or $(b,dense) (the original \
                 2^width-table engine — A/B escape hatch for differential \
                 testing).  Verdicts are identical; stores and method \
                 records are keyed by the engine, so runs never mix them \
                 silently")

let sched_arg =
  Arg.(value
       & opt
           (enum
              [ ("adaptive", Dispatch.Sched.Adaptive);
                ("fixed", Dispatch.Sched.Fixed) ])
           Dispatch.Sched.Adaptive
       & info [ "sched" ] ~docv:"POLICY"
           ~doc:"Portfolio scheduling: $(b,adaptive) skips provers whose \
                 fragment rejects the obligation and orders the rest by \
                 learned expected cost-to-solve; $(b,fixed) replays the \
                 declared cascade order (skipping is sound — only provers \
                 that would answer unknown are skipped — so verdicts are \
                 identical under both policies)")

let race_arg =
  Arg.(value & opt int 1
       & info [ "race" ] ~docv:"K"
           ~doc:"Race up to $(docv) admitted provers per obligation on \
                 idle worker domains; the first settled verdict wins and \
                 the losers are cancelled at their next deadline \
                 checkpoint.  Requires --jobs > 1 to actually overlap")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a structured event log of the run to $(docv): spans \
                 for parsing, VC generation, simplification and every \
                 prover attempt, with verdicts, cache attribution and \
                 queue-wait times")

let trace_format_arg =
  Arg.(value
       & opt (enum [ ("jsonl", Trace.Jsonl); ("chrome", Trace.Chrome) ])
           Trace.Jsonl
       & info [ "trace-format" ] ~docv:"FORMAT"
           ~doc:"Trace file format: $(b,jsonl) (one JSON event per line) or \
                 $(b,chrome) (a chrome://tracing / Perfetto-loadable JSON \
                 array)")

let make_options ~no_inference ~provers ~jobs ~no_cache ~cache_cap ~budget
    ~no_hashcons ~sched ~race ~mona_engine : Jahob_core.Jahob.options =
  (* set the process default immediately: [verify_with_store] computes
     the store fingerprint before [create_engine] runs, and the
     fingerprint must see the engine the run will actually use *)
  Mona.Ws1s.set_default_engine mona_engine;
  { Jahob_core.Jahob.provers = select_provers provers;
    infer_loop_invariants = not no_inference;
    jobs;
    use_cache = not no_cache;
    cache_cap;
    budget_s = budget;
    use_hashcons = not no_hashcons;
    sched;
    race;
    mona_engine }

let incremental_arg =
  Arg.(value & flag
       & info [ "incremental" ]
           ~doc:"Re-verify only methods whose own structure or recorded \
                 dependency digests changed; everything else is answered \
                 from the method index and reported [unchanged].  Method \
                 records live in the --store file when one is given \
                 (surviving across runs), else in memory for this run")

let since_arg =
  Arg.(value & opt (some string) None
       & info [ "since" ] ~docv:"BASE"
           ~doc:"Verify $(docv) (comma-separated .java files) first as the \
                 base version, then re-verify the given files \
                 incrementally against it: each method is reported \
                 [unchanged] or [re-verified] with its invalidation \
                 reasons")

let parse_files (files : string list) : Javaparser.Ast.program =
  List.concat_map Javaparser.Jparser.parse_program_file files

(* verify through a resident engine with the cache preloaded from the
   persistent store, then drain fresh verdicts back and sync to disk *)
let verify_with_store (opts : Jahob_core.Jahob.options) ~(store : string)
    ~(store_cap : int) ~(incremental : bool) (files : string list) :
    Jahob_core.Jahob.program_report =
  let s =
    if store_cap > 0 then Daemon.Store.load ~cap:store_cap store
    else Daemon.Store.load store
  in
  let e = Jahob_core.Jahob.create_engine opts in
  Fun.protect
    ~finally:(fun () -> Jahob_core.Jahob.shutdown_engine e)
    (fun () ->
      Option.iter
        (fun c -> Dispatch.Cache.preload c (Daemon.Store.to_preload s))
        (Jahob_core.Jahob.engine_cache e);
      let report =
        if incremental then
          Jahob_core.Jahob.verify_program_inc e
            ~source:(Daemon.Store.source s) (parse_files files)
        else Jahob_core.Jahob.verify_files_with e files
      in
      Option.iter
        (fun c -> ignore (Daemon.Store.absorb_cache s c))
        (Jahob_core.Jahob.engine_cache e);
      Daemon.Store.sync s;
      report)

(* base+patch in one process: verify BASE cold (recording method
   records), then the given files incrementally against them *)
let verify_since (opts : Jahob_core.Jahob.options) ~(base : string list)
    (files : string list) : Jahob_core.Jahob.program_report =
  let source = Jahob_core.Jahob.hashtbl_source () in
  let e = Jahob_core.Jahob.create_engine opts in
  Fun.protect
    ~finally:(fun () -> Jahob_core.Jahob.shutdown_engine e)
    (fun () ->
      ignore
        (Jahob_core.Jahob.verify_program_inc e ~source (parse_files base));
      Jahob_core.Jahob.verify_program_inc e ~source (parse_files files))

let verify_cmd =
  let run files no_inference provers stats jobs no_cache cache_cap budget
      no_hashcons sched race mona_engine store store_cap incremental since
      trace_file trace_format =
    with_frontend_errors (fun () ->
        let opts =
          make_options ~no_inference ~provers ~jobs ~no_cache ~cache_cap
            ~budget ~no_hashcons ~sched ~race ~mona_engine
        in
        (* aggregate counters feed --stats; the sink feeds --trace *)
        if stats || trace_file <> None then Trace.start_collecting ();
        Option.iter
          (fun f -> Trace.open_sink ~format:trace_format f)
          trace_file;
        let finish () = Trace.stop () in
        let verify () =
          match (since, store) with
          | Some base, _ ->
            let base =
              String.split_on_char ',' base |> List.map String.trim
            in
            verify_since opts ~base files
          | None, Some path ->
            verify_with_store opts ~store:path ~store_cap ~incremental files
          | None, None ->
            if incremental then
              (* no store: in-memory records, so this run is cold — but
                 the report still carries provenance per method *)
              let source = Jahob_core.Jahob.hashtbl_source () in
              let e = Jahob_core.Jahob.create_engine opts in
              Fun.protect
                ~finally:(fun () -> Jahob_core.Jahob.shutdown_engine e)
                (fun () ->
                  Jahob_core.Jahob.verify_program_inc e ~source
                    (parse_files files))
            else Jahob_core.Jahob.verify_files ~opts files
        in
        match verify () with
        | report ->
          finish ();
          Format.printf "%a" (Jahob_core.Jahob.pp_report ~stats) report;
          if stats then Format.printf "%a" Trace.pp_report ();
          if report.Jahob_core.Jahob.ok then 0 else 1
        | exception e ->
          finish ();
          raise e)
  in
  Cmd.v (Cmd.info "verify" ~doc:"Verify all annotated methods")
    Term.(const run $ files_arg $ no_inference_arg $ provers_arg $ stats_arg
          $ jobs_arg $ no_cache_arg $ cache_cap_arg $ budget_arg
          $ no_hashcons_arg $ sched_arg $ race_arg $ mona_engine_arg
          $ store_arg $ store_cap_arg $ incremental_arg $ since_arg
          $ trace_arg $ trace_format_arg)

let serve_cmd =
  let stdio_flag =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Serve JSONL requests on stdin/stdout until EOF (what \
                   tests and editor integrations use)")
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen for JSONL connections on a Unix domain socket at \
                   $(docv); connections are served one at a time, each \
                   request fanning out on the resident worker pool")
  in
  let run stdio socket no_inference provers jobs no_cache cache_cap budget
      no_hashcons sched race mona_engine store store_cap =
    with_frontend_errors (fun () ->
        let opts =
          make_options ~no_inference ~provers ~jobs ~no_cache ~cache_cap
            ~budget ~no_hashcons ~sched ~race ~mona_engine
        in
        let cfg =
          { (Daemon.Server.default_config ()) with
            Daemon.Server.opts;
            store_path = store;
            store_cap }
        in
        match (stdio, socket) with
        | true, Some _ ->
          Format.eprintf "serve: --stdio and --socket are exclusive@.";
          2
        | true, None ->
          Daemon.Server.serve_stdio (Daemon.Server.create cfg);
          0
        | false, Some path ->
          Daemon.Server.serve_unix (Daemon.Server.create cfg) path;
          0
        | false, None ->
          Format.eprintf "serve: need --stdio or --socket PATH@.";
          2)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident verification daemon: JSONL requests over a \
             Unix socket or stdio, answered from a warm engine (worker \
             pool, verdict cache, scheduler EMAs, hash-consing store) \
             optionally backed by a persistent on-disk verdict store")
    Term.(const run $ stdio_flag $ socket_arg $ no_inference_arg
          $ provers_arg $ jobs_arg $ no_cache_arg $ cache_cap_arg
          $ budget_arg $ no_hashcons_arg $ sched_arg $ race_arg
          $ mona_engine_arg $ store_arg $ store_cap_arg)

let vc_cmd =
  let run files =
    with_frontend_errors @@ fun () ->
    let prog =
      List.concat_map Javaparser.Jparser.parse_program_file files
    in
    let tasks = Gcl.Desugar.program_tasks prog in
    List.iter
      (fun (task : Gcl.Desugar.method_task) ->
        Format.printf "@.=== %s ===@." task.Gcl.Desugar.task_name;
        let obligations = Vcgen.method_obligations task in
        List.iteri
          (fun i (s : Logic.Sequent.t) ->
            Format.printf "@.-- obligation %d: %s@.%a@." (i + 1)
              s.Logic.Sequent.name Logic.Sequent.pp s)
          obligations)
      tasks;
    0
  in
  Cmd.v (Cmd.info "vc" ~doc:"Print generated verification conditions")
    Term.(const run $ files_arg)

let parse_cmd =
  let run files =
    with_frontend_errors @@ fun () ->
    let prog =
      List.concat_map Javaparser.Jparser.parse_program_file files
    in
    List.iter
      (fun (c : Javaparser.Ast.class_decl) ->
        Format.printf "class %s: %d fields, %d specvars, %d invariants, %d methods@."
          c.Javaparser.Ast.c_name
          (List.length c.Javaparser.Ast.c_fields)
          (List.length c.Javaparser.Ast.c_specvars)
          (List.length c.Javaparser.Ast.c_invariants)
          (List.length c.Javaparser.Ast.c_methods))
      prog;
    0
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and summarize input files")
    Term.(const run $ files_arg)

let prove_cmd =
  let hyps_arg =
    Arg.(value & opt_all string []
         & info [ "h"; "hyp" ] ~docv:"FORMULA" ~doc:"Hypothesis formula")
  in
  let goal_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"GOAL" ~doc:"Goal formula (Isabelle-subset syntax)")
  in
  let run hyps goal provers =
    let parse s =
      try Logic.Parser.parse s
      with Logic.Parser.Error m -> failwith (Printf.sprintf "%s: %s" s m)
    in
    let sequent = Logic.Sequent.make (List.map parse hyps) (parse goal) in
    let dispatcher = Dispatch.create (select_provers provers) in
    let r = Dispatch.prove_sequent dispatcher sequent in
    Format.printf "%s%s@."
      (Logic.Sequent.verdict_to_string r.Dispatch.verdict)
      (match r.Dispatch.prover with
      | Some p -> Printf.sprintf "  [settled by %s]" p
      | None -> "");
    match r.Dispatch.verdict with Logic.Sequent.Valid -> 0 | _ -> 1
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Prove an ad-hoc sequent with the decision-procedure portfolio")
    Term.(const run $ hyps_arg $ goal_arg $ provers_arg)

let trace_check_cmd =
  let trace_file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE" ~doc:"A JSONL trace written by --trace")
  in
  let run path =
    match Trace.check_jsonl_file path with
    | Ok s ->
      Format.printf "%s: %d events, %d spans, max depth %d@." path s.Trace.events
        s.Trace.spans s.Trace.max_depth;
      0
    | Error msg ->
      Format.eprintf "%s: %s@." path msg;
      2
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a JSONL trace file: every line parses as JSON and \
             begin/end spans balance per thread")
    Term.(const run $ trace_file_arg)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed (runs are deterministic)")
  in
  let count_arg =
    Arg.(value & opt int 1000
         & info [ "count" ] ~docv:"N" ~doc:"Sequents to generate per fragment")
  in
  let size_arg =
    Arg.(value & opt int 3
         & info [ "size" ] ~docv:"FUEL"
             ~doc:"Generator fuel; formula node count stays linear in it")
  in
  let fragment_arg =
    Arg.(value & opt (some string) None
         & info [ "fragment" ] ~docv:"FRAG"
             ~doc:"Fuzz only this fragment (euf, presburger, bapa, ws1s, \
                   fol, mixed); default: all")
  in
  let fuzz_budget_arg =
    Arg.(value & opt float 2.0
         & info [ "budget" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget per prover call (0 disables)")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Write each minimized disagreement to $(docv) as a .seq \
                   file (replayable regression tests)")
  in
  let no_oracle_arg =
    Arg.(value & flag
         & info [ "no-oracle" ]
             ~doc:"Skip the finite-model oracle (prover cross-check only)")
  in
  let max_universe_arg =
    Arg.(value & opt int 3
         & info [ "max-universe" ] ~docv:"N"
             ~doc:"Oracle enumerates universes of 1..$(docv) objects")
  in
  let int_range_arg =
    Arg.(value & opt int 4
         & info [ "int-range" ] ~docv:"N"
             ~doc:"Oracle enumerates integer values in -$(docv)..$(docv)")
  in
  let max_models_arg =
    Arg.(value & opt int 60_000
         & info [ "max-models" ] ~docv:"N"
             ~doc:"Cap on models the oracle enumerates per sequent \
                   (0 = unlimited)")
  in
  let replay_arg =
    Arg.(value & opt (some dir) None
         & info [ "replay" ] ~docv:"DIR"
             ~doc:"Instead of fuzzing, replay every .seq file in $(docv) \
                   and fail if any disagreement persists")
  in
  let no_sched_check_arg =
    Arg.(value & flag
         & info [ "no-sched-check" ]
             ~doc:"Skip the scheduler cross-check (by default every \
                   sequent also runs through a fixed-order and an \
                   adaptive dispatcher, and any verdict-kind difference \
                   is flagged: reordering and fragment skipping must \
                   never change Valid/Invalid)")
  in
  let inc_arg =
    Arg.(value & opt int 0
         & info [ "inc" ] ~docv:"N"
             ~doc:"Instead of fuzzing provers, run $(docv) iterations of \
                   the incremental-verification differential: mutate a \
                   random method of a seed program and require the \
                   incremental and from-scratch runs to agree verdict \
                   for verdict")
  in
  let fol_ab_arg =
    Arg.(value & opt int 0
         & info [ "fol" ] ~docv:"N"
             ~doc:"Instead of fuzzing the portfolio, run $(docv) \
                   iterations of the resolution prover's indexed-vs-naive \
                   engine differential on the fol fragment (generous \
                   caps, finite-model oracle on every proof)")
  in
  let mona_ab_arg =
    Arg.(value & opt int 0
         & info [ "mona" ] ~docv:"N"
             ~doc:"Instead of fuzzing the portfolio, run $(docv) \
                   iterations of the WS1S automata engine's BDD-vs-dense \
                   differential on the ws1s fragment (each decision under \
                   its own deadline; settled verdicts must be identical)")
  in
  let run seed count size fragment budget corpus no_oracle max_universe
      int_range max_models replay no_sched_check inc fol_ab mona_ab =
    let cfg =
      { Fuzz.Differ.seed;
        count;
        size;
        budget_s = budget;
        use_oracle = not no_oracle;
        max_universe;
        int_range;
        max_models = (if max_models <= 0 then None else Some max_models);
        check_sched = not no_sched_check;
      }
    in
    if inc > 0 then begin
      let r = Fuzz.Incmut.run { Fuzz.Incmut.seed; count = inc } in
      Format.printf "%a@." Fuzz.Incmut.pp_report r;
      if r.Fuzz.Incmut.divergences = [] then 0 else 1
    end
    else if fol_ab > 0 then begin
      let r =
        Fuzz.Folab.run
          ~config:
            { Fuzz.Folab.ab_seed = seed;
              ab_count = fol_ab;
              ab_size = size;
              ab_max_universe = max_universe;
              ab_int_range = int_range;
              ab_max_models =
                (if max_models <= 0 then None else Some max_models);
            }
          ()
      in
      Format.printf "%a@." Fuzz.Folab.pp_report r;
      if r.Fuzz.Folab.disagreements = [] then 0 else 1
    end
    else if mona_ab > 0 then begin
      let r =
        Fuzz.Monaab.run
          ~config:
            { Fuzz.Monaab.ab_seed = seed;
              ab_count = mona_ab;
              ab_size = size;
              ab_budget_s = (if budget > 0. then budget else 2.0);
            }
          ()
      in
      Format.printf "%a@." Fuzz.Monaab.pp_report r;
      if r.Fuzz.Monaab.disagreements = [] then 0 else 1
    end
    else
    match replay with
    | Some dir ->
      let files = Fuzz.Differ.corpus_files dir in
      let failures =
        List.filter_map
          (fun path ->
            match Fuzz.Differ.replay cfg path with
            | Ok _ ->
              Format.printf "replayed %s: agreement@." path;
              None
            | Error msg ->
              Format.eprintf "%s@." msg;
              Some path)
          files
      in
      Format.printf "replayed %d corpus files, %d failures@."
        (List.length files) (List.length failures);
      if failures = [] then 0 else 1
    | None ->
      let fragments =
        match fragment with
        | None -> Fuzz.Formgen.all_fragments
        | Some name -> (
          match Fuzz.Formgen.fragment_of_name name with
          | Some f -> [ f ]
          | None -> failwith ("unknown fragment: " ^ name))
      in
      let on_finding f =
        match corpus with
        | Some dir ->
          let path = Fuzz.Differ.save_finding ~dir f in
          Format.printf "wrote %s@." path
        | None -> ()
      in
      let total_findings = ref 0 in
      List.iter
        (fun frag ->
          let r = Fuzz.Differ.run ~on_finding cfg frag in
          total_findings := !total_findings + List.length r.Fuzz.Differ.findings;
          Format.printf "%a@." Fuzz.Differ.pp_report r)
        fragments;
      if !total_findings = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differentially fuzz the prover portfolio against a \
             finite-model oracle")
    Term.(const run $ seed_arg $ count_arg $ size_arg $ fragment_arg
          $ fuzz_budget_arg $ corpus_arg $ no_oracle_arg $ max_universe_arg
          $ int_range_arg $ max_models_arg $ replay_arg $ no_sched_check_arg
          $ inc_arg $ fol_ab_arg $ mona_ab_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "jahob" ~version:"0.1"
       ~doc:"Modular verification of data structure consistency")
    [ verify_cmd; serve_cmd; vc_cmd; parse_cmd; prove_cmd; trace_check_cmd;
      fuzz_cmd ]

let () = exit (Cmd.eval' main_cmd)
