(** Symbolic shape analysis: loop invariant inference by predicate
    abstraction.

    The paper (Sections 2.4 and 3) lets the verification-condition
    generator "leverage loop invariant inference engines, including
    speculative engines that may generate incorrect loop invariants",
    citing symbolic shape analysis [80, 65, 79].  We implement the
    conjunctive (cartesian) instance of that family, in the style of
    Houdini [21]:

    - a candidate vocabulary is mined from the method's contract, the
      enclosing class invariants and the loop condition;
    - the largest inductive conjunction of candidates is computed by the
      classic drop-until-stable loop, using the decision-procedure
      portfolio as the abstract-post oracle (the "symbolic" part: no
      precomputed transfer functions);
    - the result is speculative: the VC generator re-verifies both
      initiation and consecution, so a wrong invariant can only lead to
      an unproved obligation, never to unsoundness.

    The Boolean-heap style disjunctive completion is approximated by
    optionally adding implications between candidate pairs. *)

open Logic

(* ------------------------------------------------------------------ *)
(* Candidate mining                                                    *)
(* ------------------------------------------------------------------ *)

(* atoms of a formula, as candidate predicates *)
let rec atoms_of (f : Form.t) : Form.t list =
  match Form.strip_types f with
  | Form.App (Form.Const (Form.And | Form.Or), gs) -> List.concat_map atoms_of gs
  | Form.App (Form.Const (Form.Impl | Form.Iff), [ a; b ]) ->
    atoms_of a @ atoms_of b
  | Form.App (Form.Const Form.Not, [ g ]) -> atoms_of g
  | g when Form.is_true g || Form.is_false g -> []
  | g -> [ g ]

let dedup (fs : Form.t list) : Form.t list =
  List.fold_left
    (fun acc f -> if List.exists (Form.equal f) acc then acc else acc @ [ f ])
    [] fs

(** Candidate predicates for a loop, given contract/invariant seeds. *)
let candidates ~(seeds : Form.t list) (l : Gcl.Cmd.loop) : Form.t list =
  let seed_atoms = List.concat_map atoms_of seeds in
  let seed_whole = seeds in
  let cond_atoms = atoms_of l.Gcl.Cmd.loop_cond in
  (* negations too: predicate abstraction tracks both polarities *)
  let base = dedup (seed_whole @ seed_atoms @ cond_atoms) in
  let negs = List.map Form.mk_not base in
  dedup (base @ negs)

(* ------------------------------------------------------------------ *)
(* Candidate-check memo                                                *)
(* ------------------------------------------------------------------ *)

(** Outcomes of individual candidate checks (initiation/consecution
    splits), keyed by canonical sequent digest.  Unlike the verdict
    cache this {e does} retain failures that came from [Unknown] — which
    the verdict cache must never do, because Unknown depends on the
    portfolio and budgets in force.  Here it is sound: a memoized
    outcome only decides which candidates Houdini keeps, the result is
    speculative by contract, and the VC pass re-verifies initiation and
    consecution of whatever was kept.  A resident engine carries one
    across requests so re-inferring the same loop costs no prover time. *)
type memo = {
  memo_tbl : (string, bool) Hashtbl.t;
  memo_lock : Mutex.t; (* method tasks run on pool domains *)
}

let create_memo () : memo =
  { memo_tbl = Hashtbl.create 256; memo_lock = Mutex.create () }

let memo_find (m : memo) (k : string) : bool option =
  Mutex.lock m.memo_lock;
  let r = Hashtbl.find_opt m.memo_tbl k in
  Mutex.unlock m.memo_lock;
  r

let memo_add (m : memo) (k : string) (v : bool) : unit =
  Mutex.lock m.memo_lock;
  (if not (Hashtbl.mem m.memo_tbl k) then Hashtbl.replace m.memo_tbl k v);
  Mutex.unlock m.memo_lock

(* ------------------------------------------------------------------ *)
(* Houdini loop                                                        *)
(* ------------------------------------------------------------------ *)

(* Consecution treats embedded assertions as assumptions: they are
   checked by the main VC pass, and demanding them here would make every
   candidate non-inductive whenever the body contains a single hard
   assert. *)
let rec assume_asserts (c : Gcl.Cmd.command) : Gcl.Cmd.command =
  match c with
  | Gcl.Cmd.Assert (f, _) -> Gcl.Cmd.Assume f
  | Gcl.Cmd.Seq cs -> Gcl.Cmd.Seq (List.map assume_asserts cs)
  | Gcl.Cmd.Choice (a, b) -> Gcl.Cmd.Choice (assume_asserts a, assume_asserts b)
  | Gcl.Cmd.Loop l ->
    Gcl.Cmd.Loop
      { l with
        Gcl.Cmd.loop_prelude = assume_asserts l.Gcl.Cmd.loop_prelude;
        loop_body = assume_asserts l.Gcl.Cmd.loop_body }
  | Gcl.Cmd.Skip | Gcl.Cmd.Assume _ | Gcl.Cmd.Assign _ | Gcl.Cmd.Havoc _ -> c

(* one consecution check: I /\ cond ==> wp(prelude; body, p) *)
let inductive ?memo (dispatcher : Dispatch.t) (l : Gcl.Cmd.loop)
    (invariant_parts : Form.t list) (p : Form.t) : bool =
  let wp_opts = { Vcgen.infer_invariant = (fun _ -> None) } in
  let iteration =
    Gcl.Cmd.seq
      [ assume_asserts l.Gcl.Cmd.loop_prelude;
        Gcl.Cmd.Assume l.Gcl.Cmd.loop_cond;
        assume_asserts l.Gcl.Cmd.loop_body ]
  in
  let target = Vcgen.strip_labels (Vcgen.wp wp_opts iteration p) in
  let splits = Vcgen.split_vc ~name:"houdini" target in
  let check (sequent : Sequent.t) : bool =
    match (Dispatch.prove_sequent dispatcher sequent).Dispatch.verdict with
    | Sequent.Valid -> true
    | Sequent.Invalid _ | Sequent.Unknown _ ->
      (if Sys.getenv_opt "SHAPE_DEBUG2" <> None then
         Format.eprintf "consecution failed for %s:@.%a@.@."
           (Pprint.to_string p) Sequent.pp sequent);
      false
    | exception _ -> false
  in
  List.for_all
    (fun (sq : Sequent.t) ->
      let sequent =
        { sq with Sequent.hyps = invariant_parts @ sq.Sequent.hyps }
      in
      match memo with
      | None -> check sequent
      | Some m -> begin
        let k = Sequent.digest sequent in
        match memo_find m k with
        | Some v ->
          Trace.incr "shape.memo_hit";
          v
        | None ->
          let v = check sequent in
          memo_add m k v;
          v
      end)
    splits

(** The largest inductive conjunction of candidates (Houdini).  [seeds]
    provide the vocabulary; the result is speculative and must be
    re-verified by the caller. *)
let infer ?(drop = []) ?cache ?memo ~(provers : Sequent.prover list)
    ~(seeds : Form.t list) (l : Gcl.Cmd.loop) : Form.t option =
  let cands =
    List.filter
      (fun c -> not (List.exists (Form.equal c) drop))
      (candidates ~seeds l)
  in
  if cands = [] then None
  else begin
    (* share the caller's verdict cache when given: initiation and
       preservation checks repeat across weakening rounds and across
       daemon requests, and their Valid/Invalid verdicts are semantic
       facts independent of which dispatcher settled them *)
    let dispatcher = Dispatch.create ?cache provers in
    let max_rounds = 5 in
    let rec stabilize round (current : Form.t list) =
      if round >= max_rounds then current
      else begin
        let survivors =
          List.filter (fun p -> inductive ?memo dispatcher l current p) current
        in
        if List.length survivors = List.length current then current
        else stabilize (round + 1) survivors
      end
    in
    let result = stabilize 0 cands in
    (if Sys.getenv_opt "SHAPE_DEBUG" <> None then begin
       Printf.eprintf "=== inferred invariant (%d of %d candidates) ===\n"
         (List.length result) (List.length cands);
       List.iter
         (fun c -> Printf.eprintf "  %s\n" (Pprint.to_string c))
         result;
       Printf.eprintf "  dropped:\n";
       List.iter
         (fun c ->
           if not (List.exists (Form.equal c) result) then
             Printf.eprintf "    %s\n" (Pprint.to_string c))
         cands;
       Printf.eprintf "%!"
     end);
    if result = [] then None else Some (Form.mk_and result)
  end

(** Hook for {!Jahob}: infer invariants for un-annotated loops using the
    method's contract and class invariants as the vocabulary. *)
let infer_loop_invariant (_prog : Javaparser.Ast.program)
    (provers : Sequent.prover list) : Gcl.Cmd.loop -> Form.t option =
  (* seeds are attached per-task by the driver through this mutable cell *)
  fun loop -> infer ~provers ~seeds:[] loop

(** As {!infer_loop_invariant} but with explicit per-method seeds and a
    blacklist of candidates that failed initiation in an earlier round
    (counterexample-driven weakening). *)
let infer_with_seeds ?(drop = []) ?cache ?memo
    (provers : Sequent.prover list) (seeds : Form.t list) :
    Gcl.Cmd.loop -> Form.t option =
  fun loop -> infer ~drop ?cache ?memo ~provers ~seeds loop
