(** Structural digests of the annotated-Java AST, and program diffing.

    Incremental re-verification needs a {e stable identity} for each
    method: two parses of the same method must produce the same digest,
    and any edit that could change the method's verification conditions
    must change it.  Hashing source bytes fails the first requirement —
    whitespace and comments never reach the AST, yet they would perturb a
    byte hash — so every digest here is computed from a canonical
    printing of the {e typed AST}: statements and expressions print
    structurally, and every specification formula prints through the
    same alpha-normalized canonical printer the verdict-cache keys use
    ({!Logic.Pprint.to_canonical_string}), so bound-variable names in
    annotations do not matter either.

    Besides the per-method digest, this module digests the {e interface
    pieces} other methods depend on: a method's contract as seen by its
    callers (signature + requires/modifies/ensures, body excluded), a
    class's invariant block, a single specvar declaration (with or
    without its definition — clients outside the declaring class see the
    variable as opaque abstract state, so their dependency must not
    include the private definition), and a class's field footprint
    (its own fields plus, transitively, the fields of classes
    [claimedby]-delegated to it — the havoc frame of a call that
    modifies one of its derived sets). *)

open Ast

let form_str (f : Logic.Form.t) : string =
  Logic.Pprint.to_canonical_string
    (Logic.Form.alpha_normalize ~keep_types:true f)

(* ------------------------------------------------------------------ *)
(* Canonical structural printing                                       *)
(* ------------------------------------------------------------------ *)

(* Every printer writes unambiguous prefix tags with explicit argument
   counts, so concatenation cannot make two different trees collide. *)

let add_form (b : Buffer.t) (f : Logic.Form.t) : unit =
  Buffer.add_char b 'F';
  let s = form_str f in
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let add_str (b : Buffer.t) (s : string) : unit =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let add_opt_form (b : Buffer.t) (f : Logic.Form.t option) : unit =
  match f with
  | None -> Buffer.add_char b '_'
  | Some f -> add_form b f

let add_jtype (b : Buffer.t) (t : jtype) : unit =
  Buffer.add_char b 'T';
  add_str b (jtype_to_string t)

(* expressions reuse the AST's own unambiguous printer (fully
   parenthesized, distinct syntax per constructor) *)
let add_expr (b : Buffer.t) (e : expr) : unit =
  Buffer.add_char b 'E';
  add_str b (expr_to_string e)

let add_lhs (b : Buffer.t) (l : lhs) : unit =
  match l with
  | Lhs_local x ->
    Buffer.add_string b "Ll";
    add_str b x
  | Lhs_field (e, f) ->
    Buffer.add_string b "Lf";
    add_expr b e;
    add_str b f
  | Lhs_index (a, i) ->
    Buffer.add_string b "Li";
    add_expr b a;
    add_expr b i

let add_spec_stmt (b : Buffer.t) (s : spec_stmt) : unit =
  match s with
  | Ghost_assign (x, f) ->
    Buffer.add_string b "Sg";
    add_str b x;
    add_form b f
  | Assert_spec (lbl, f) ->
    Buffer.add_string b "Sa";
    add_str b (Option.value lbl ~default:"");
    add_form b f
  | Assume_spec (lbl, f) ->
    Buffer.add_string b "Su";
    add_str b (Option.value lbl ~default:"");
    add_form b f
  | Note_that (lbl, f) ->
    Buffer.add_string b "Sn";
    add_str b (Option.value lbl ~default:"");
    add_form b f
  | Loop_invariant f ->
    Buffer.add_string b "Si";
    add_form b f

let rec add_stmt (b : Buffer.t) (s : stmt) : unit =
  match s with
  | Var_decl (t, x, init) ->
    Buffer.add_char b 'D';
    add_jtype b t;
    add_str b x;
    (match init with None -> Buffer.add_char b '_' | Some e -> add_expr b e)
  | Assign (l, e) ->
    Buffer.add_char b 'A';
    add_lhs b l;
    add_expr b e
  | Expr_stmt e ->
    Buffer.add_char b 'X';
    add_expr b e
  | If (c, a, els) ->
    Buffer.add_char b 'I';
    add_expr b c;
    add_stmts b a;
    add_stmts b els
  | While (inv, c, body) ->
    Buffer.add_char b 'W';
    add_opt_form b inv;
    add_expr b c;
    add_stmts b body
  | Return e ->
    Buffer.add_char b 'R';
    (match e with None -> Buffer.add_char b '_' | Some e -> add_expr b e)
  | Block ss ->
    Buffer.add_char b 'B';
    add_stmts b ss
  | Spec sp -> add_spec_stmt b sp

and add_stmts (b : Buffer.t) (ss : stmt list) : unit =
  Buffer.add_char b '[';
  Buffer.add_string b (string_of_int (List.length ss));
  List.iter (add_stmt b) ss;
  Buffer.add_char b ']'

let add_contract (b : Buffer.t) (c : contract) : unit =
  Buffer.add_char b 'C';
  add_opt_form b c.requires;
  Buffer.add_char b 'm';
  Buffer.add_string b (string_of_int (List.length c.modifies));
  List.iter (add_str b) c.modifies;
  Buffer.add_char b 'e';
  add_opt_form b c.ensures

let add_signature (b : Buffer.t) (m : method_decl) : unit =
  add_str b m.m_name;
  Buffer.add_string b (if m.m_public then "P" else "p");
  Buffer.add_string b (if m.m_static then "S" else "i");
  Buffer.add_string b (if m.m_is_constructor then "K" else "k");
  add_jtype b m.m_ret;
  Buffer.add_string b (string_of_int (List.length m.m_params));
  List.iter
    (fun (t, x) ->
      add_jtype b t;
      add_str b x)
    m.m_params

let digest_of (pr : Buffer.t -> unit) : string =
  let b = Buffer.create 512 in
  pr b;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* The digests                                                         *)
(* ------------------------------------------------------------------ *)

(** Identity of a method for change detection: enclosing class,
    signature, contract and body — everything of the method itself that
    verification condition generation reads. *)
let method_digest (cname : string) (m : method_decl) : string =
  digest_of (fun b ->
      Buffer.add_string b "method/";
      add_str b cname;
      add_signature b m;
      add_contract b m.m_contract;
      match m.m_body with
      | None -> Buffer.add_char b '_'
      | Some ss -> add_stmts b ss)

(** A method as its {e callers} see it: signature and contract only.
    Body edits leave this digest unchanged, so they never invalidate
    call sites. *)
let contract_digest (cname : string) (m : method_decl) : string =
  digest_of (fun b ->
      Buffer.add_string b "contract/";
      add_str b cname;
      add_signature b m;
      add_contract b m.m_contract)

(** A class's invariant block, order-sensitive (invariant indices appear
    in obligation labels). *)
let invariants_digest (c : class_decl) : string =
  digest_of (fun b ->
      Buffer.add_string b "invs/";
      add_str b c.c_name;
      Buffer.add_string b (string_of_int (List.length c.c_invariants));
      List.iter (add_form b) c.c_invariants)

let add_field (b : Buffer.t) (f : field_decl) : unit =
  add_str b f.f_name;
  add_jtype b f.f_type;
  Buffer.add_string b (if f.f_public then "P" else "p");
  Buffer.add_string b (if f.f_static then "S" else "i");
  match f.f_claimedby with
  | None -> Buffer.add_char b '_'
  | Some o -> add_str b o

(** One field declaration (name, type, modifiers, claimedby). *)
let field_digest (f : field_decl) : string =
  digest_of (fun b ->
      Buffer.add_string b "field/";
      add_field b f)

(** One specvar declaration.  [with_def:false] is the client view:
    outside the declaring class the variable is opaque abstract state,
    so the (private) definition must not leak into the dependency —
    editing a vardef then re-verifies the declaring class only. *)
let specvar_digest ~(with_def : bool) (v : specvar_decl) : string =
  digest_of (fun b ->
      Buffer.add_string b "specvar/";
      add_str b v.sv_name;
      add_str b (Logic.Ftype.to_string v.sv_type);
      Buffer.add_string b (if v.sv_public then "P" else "p");
      Buffer.add_string b (if v.sv_static then "S" else "i");
      Buffer.add_string b (if v.sv_ghost then "G" else "g");
      if with_def then add_opt_form b v.sv_def
      else Buffer.add_string b (match v.sv_def with None -> "_" | Some _ -> "D"))

(** The concrete state footprint of class [cname]: its own field
    declarations plus — because [claimedby] delegates representation —
    the field declarations of every class claimed by it.  This is
    exactly what {!Gcl.Desugar}'s call-frame havoc and allocation
    defaults read, so any edit that could change a frame or a default
    changes the digest. *)
let fields_digest (prog : program) (cname : string) : string =
  digest_of (fun b ->
      Buffer.add_string b "fields/";
      add_str b cname;
      let add_class_fields c =
        add_str b c.c_name;
        Buffer.add_string b (string_of_int (List.length c.c_fields));
        List.iter (add_field b) c.c_fields
      in
      (match find_class prog cname with
      | Some c -> add_class_fields c
      | None -> Buffer.add_char b '?');
      (* classes claimed by [cname], with their fields *)
      List.iter
        (fun c ->
          if
            List.exists (fun f -> f.f_claimedby = Some cname) c.c_fields
            && c.c_name <> cname
          then add_class_fields c)
        prog)

(* ------------------------------------------------------------------ *)
(* Program diff                                                        *)
(* ------------------------------------------------------------------ *)

type method_change =
  | Added
  | Removed
  | Changed  (** digest differs: signature, contract or body edited *)

let change_to_string = function
  | Added -> "added"
  | Removed -> "removed"
  | Changed -> "changed"

(** Qualified names and digests of every method {e with a body} (the
    verifiable ones — interface-only declarations carry no obligations). *)
let method_digests (p : program) : (string * string) list =
  List.concat_map
    (fun c ->
      List.filter_map
        (fun m ->
          match m.m_body with
          | None -> None
          | Some _ -> Some (c.c_name ^ "." ^ m.m_name, method_digest c.c_name m))
        c.c_methods)
    p

(** Method-level diff of two programs: which verifiable methods were
    added, removed, or structurally changed.  Whitespace, comments and
    bound-variable renamings in annotations produce an empty diff. *)
let diff (base : program) (patched : program) : (string * method_change) list =
  let b = method_digests base and p = method_digests patched in
  let changes =
    List.filter_map
      (fun (name, dg) ->
        match List.assoc_opt name b with
        | None -> Some (name, Added)
        | Some dg' when dg <> dg' -> Some (name, Changed)
        | Some _ -> None)
      p
  in
  let removed =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name p then None else Some (name, Removed))
      b
  in
  List.sort compare (changes @ removed)
