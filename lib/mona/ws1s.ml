(** WS1S: weak monadic second-order logic of one successor.

    The decision procedure behind our MONA substitute.  Second-order
    variables denote finite sets of naturals; first-order variables denote
    positions and are compiled as singleton sets (the standard M2L
    encoding).  Every formula compiles to a {!Dfa.t} whose words encode
    variable assignments track-wise; satisfiability and validity are DFA
    emptiness questions. *)

type var = string

type pred =
  | Sub of var * var (* X subseteq Y *)
  | EqS of var * var (* X = Y *)
  | EqUnion of var * var * var (* X = Y u Z *)
  | EqInter of var * var * var (* X = Y n Z *)
  | EqDiff of var * var * var (* X = Y \ Z *)
  | IsEmpty of var
  | In of var * var (* x : X, x first-order *)
  | EqF of var * var (* x = y *)
  | SuccF of var * var (* x = y + 1 *)
  | LessF of var * var (* x < y *)
  | LeqF of var * var (* x <= y *)
  | ZeroF of var (* x = 0 *)
  | BoolVar of var (* 0 : B, the boolean encoding *)

type t =
  | True
  | False
  | Pred of pred
  | Not of t
  | And of t list
  | Or of t list
  | Impl of t * t
  | Iff of t * t
  | Ex1 of var * t (* first-order exists *)
  | All1 of var * t
  | Ex2 of var * t (* second-order exists *)
  | All2 of var * t

(* convenience *)
let conj fs = And fs
let disj fs = Or fs
let neg f = Not f

(* ------------------------------------------------------------------ *)
(* Variables                                                           *)
(* ------------------------------------------------------------------ *)

let pred_vars = function
  | Sub (a, b) | EqS (a, b) | In (a, b) | EqF (a, b) | SuccF (a, b)
  | LessF (a, b) | LeqF (a, b) ->
    [ a; b ]
  | EqUnion (a, b, c) | EqInter (a, b, c) | EqDiff (a, b, c) -> [ a; b; c ]
  | IsEmpty a | ZeroF a | BoolVar a -> [ a ]

let rec vars_of = function
  | True | False -> []
  | Pred p -> pred_vars p
  | Not f -> vars_of f
  | And fs | Or fs -> List.concat_map vars_of fs
  | Impl (a, b) | Iff (a, b) -> vars_of a @ vars_of b
  | Ex1 (x, f) | All1 (x, f) | Ex2 (x, f) | All2 (x, f) -> x :: vars_of f

(* Rename bound variables apart so each gets its own track. *)
let alpha_rename (f : t) : t =
  let counter = ref 0 in
  let fresh x =
    incr counter;
    Printf.sprintf "%s#%d" x !counter
  in
  let subst_pred env p =
    let s x = match List.assoc_opt x env with Some y -> y | None -> x in
    match p with
    | Sub (a, b) -> Sub (s a, s b)
    | EqS (a, b) -> EqS (s a, s b)
    | EqUnion (a, b, c) -> EqUnion (s a, s b, s c)
    | EqInter (a, b, c) -> EqInter (s a, s b, s c)
    | EqDiff (a, b, c) -> EqDiff (s a, s b, s c)
    | IsEmpty a -> IsEmpty (s a)
    | In (a, b) -> In (s a, s b)
    | EqF (a, b) -> EqF (s a, s b)
    | SuccF (a, b) -> SuccF (s a, s b)
    | LessF (a, b) -> LessF (s a, s b)
    | LeqF (a, b) -> LeqF (s a, s b)
    | ZeroF a -> ZeroF (s a)
    | BoolVar a -> BoolVar (s a)
  in
  let rec go env f =
    match f with
    | True | False -> f
    | Pred p -> Pred (subst_pred env p)
    | Not g -> Not (go env g)
    | And gs -> And (List.map (go env) gs)
    | Or gs -> Or (List.map (go env) gs)
    | Impl (a, b) -> Impl (go env a, go env b)
    | Iff (a, b) -> Iff (go env a, go env b)
    | Ex1 (x, g) ->
      let x' = fresh x in
      Ex1 (x', go ((x, x') :: env) g)
    | All1 (x, g) ->
      let x' = fresh x in
      All1 (x', go ((x, x') :: env) g)
    | Ex2 (x, g) ->
      let x' = fresh x in
      Ex2 (x', go ((x, x') :: env) g)
    | All2 (x, g) ->
      let x' = fresh x in
      All2 (x', go ((x, x') :: env) g)
  in
  go [] f

(* ------------------------------------------------------------------ *)
(* Atomic automata                                                     *)
(* ------------------------------------------------------------------ *)

(* A letter is an int; [bit l i] is track i's bit. *)
let bit l i = (l lsr i) land 1

(* Engine-neutral description of an atomic automaton: explicit states
   with a transition function over full-width letters, plus the tracks
   the transitions actually read.  The dense engine samples every
   letter; the symbolic engine samples only assignments of [ps_deps],
   which is what keeps predicate automata O(1) in the formula width. *)
type pred_spec = {
  ps_n : int;
  ps_initial : int;
  ps_accept : int -> bool;
  ps_tr : int -> int -> int; (* state -> letter -> state *)
  ps_deps : int list; (* tracks read, sorted ascending *)
}

(* 2-state automaton: accept-loop while [ok letter], dead otherwise. *)
let invariant_spec ~deps ok =
  {
    ps_n = 2;
    ps_initial = 0;
    ps_accept = (fun s -> s = 0);
    ps_tr = (fun s l -> if s = 0 && ok l then 0 else 1);
    ps_deps = deps;
  }

let pred_spec ~pos (p : pred) : pred_spec =
  let tr v = pos v in
  let deps vs = List.sort_uniq compare (List.map tr vs) in
  match p with
  | Sub (x, y) ->
    invariant_spec ~deps:(deps [ x; y ]) (fun l ->
        bit l (tr x) land lnot (bit l (tr y)) = 0)
  | EqS (x, y) ->
    invariant_spec ~deps:(deps [ x; y ]) (fun l ->
        bit l (tr x) = bit l (tr y))
  | EqUnion (x, y, z) ->
    invariant_spec ~deps:(deps [ x; y; z ]) (fun l ->
        bit l (tr x) = bit l (tr y) lor bit l (tr z))
  | EqInter (x, y, z) ->
    invariant_spec ~deps:(deps [ x; y; z ]) (fun l ->
        bit l (tr x) = bit l (tr y) land bit l (tr z))
  | EqDiff (x, y, z) ->
    invariant_spec ~deps:(deps [ x; y; z ]) (fun l ->
        bit l (tr x) = bit l (tr y) land lnot (bit l (tr z)) land 1)
  | IsEmpty x ->
    invariant_spec ~deps:(deps [ x ]) (fun l -> bit l (tr x) = 0)
  | In (x, y) ->
    (* with x a singleton, x subseteq y is membership *)
    invariant_spec ~deps:(deps [ x; y ]) (fun l ->
        bit l (tr x) land lnot (bit l (tr y)) = 0)
  | EqF (x, y) ->
    invariant_spec ~deps:(deps [ x; y ]) (fun l ->
        bit l (tr x) = bit l (tr y))
  | SuccF (x, y) ->
    (* x = y + 1: y's position immediately precedes x's.
       states: 0 = nothing seen, 1 = y seen (x expected now), 2 = done,
       3 = dead *)
    {
      ps_n = 4;
      ps_initial = 0;
      ps_accept = (fun s -> s = 2);
      ps_tr =
        (fun s l ->
          let bx = bit l (tr x) and by = bit l (tr y) in
          match s with
          | 0 ->
            if bx = 0 && by = 0 then 0
            else if bx = 0 && by = 1 then 1
            else 3
          | 1 -> if bx = 1 && by = 0 then 2 else 3
          | 2 -> if bx = 0 && by = 0 then 2 else 3
          | _ -> 3);
      ps_deps = deps [ x; y ];
    }
  | LessF (x, y) ->
    (* x strictly before y *)
    {
      ps_n = 4;
      ps_initial = 0;
      ps_accept = (fun s -> s = 2);
      ps_tr =
        (fun s l ->
          let bx = bit l (tr x) and by = bit l (tr y) in
          match s with
          | 0 ->
            if bx = 0 && by = 0 then 0
            else if bx = 1 && by = 0 then 1
            else 3
          | 1 ->
            if bx = 0 && by = 1 then 2
            else if bx = 0 && by = 0 then 1
            else 3
          | 2 -> if bx = 0 && by = 0 then 2 else 3
          | _ -> 3);
      ps_deps = deps [ x; y ];
    }
  | LeqF (x, y) ->
    (* x <= y: either same position or x before y *)
    {
      ps_n = 4;
      ps_initial = 0;
      ps_accept = (fun s -> s = 2);
      ps_tr =
        (fun s l ->
          let bx = bit l (tr x) and by = bit l (tr y) in
          match s with
          | 0 ->
            if bx = 0 && by = 0 then 0
            else if bx = 1 && by = 1 then 2
            else if bx = 1 && by = 0 then 1
            else 3
          | 1 ->
            if bx = 0 && by = 1 then 2
            else if bx = 0 && by = 0 then 1
            else 3
          | 2 -> if bx = 0 && by = 0 then 2 else 3
          | _ -> 3);
      ps_deps = deps [ x; y ];
    }
  | ZeroF x ->
    (* x's singleton is position 0 *)
    {
      ps_n = 3;
      ps_initial = 0;
      ps_accept = (fun s -> s = 1);
      ps_tr =
        (fun s l ->
          let bx = bit l (tr x) in
          match s with
          | 0 -> if bx = 1 then 1 else 2
          | 1 -> if bx = 0 then 1 else 2
          | _ -> 2);
      ps_deps = deps [ x ];
    }
  | BoolVar x ->
    (* 0 : X *)
    {
      ps_n = 3;
      ps_initial = 0;
      ps_accept = (fun s -> s = 1);
      ps_tr =
        (fun s l ->
          let bx = bit l (tr x) in
          match s with
          | 0 -> if bx = 1 then 1 else 2
          | 1 -> 1
          | _ -> 2);
      ps_deps = deps [ x ];
    }

(* singleton(X): exactly one position in X *)
let singleton_spec ~track =
  {
    ps_n = 3;
    ps_initial = 0;
    ps_accept = (fun s -> s = 1);
    ps_tr =
      (fun s l ->
        let b = bit l track in
        match s with
        | 0 -> if b = 1 then 1 else 0
        | 1 -> if b = 1 then 2 else 1
        | _ -> 2);
    ps_deps = [ track ];
  }

let dense_of_spec ~width (sp : pred_spec) : Dfa.t =
  Dfa.make ~width ~n:sp.ps_n ~initial:sp.ps_initial ~accept:sp.ps_accept
    sp.ps_tr

let sym_of_spec man ~width (sp : pred_spec) : Sdfa.t =
  Sdfa.make ~man ~width ~n:sp.ps_n ~initial:sp.ps_initial
    ~accept:sp.ps_accept ~deps:sp.ps_deps sp.ps_tr

let compile_pred ~width ~pos (p : pred) : Dfa.t =
  dense_of_spec ~width (pred_spec ~pos p)

let singleton_automaton ~width ~track =
  dense_of_spec ~width (singleton_spec ~track)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* which automata engine decides a formula: [Bdd] is the symbolic
   MTBDD-backed engine, [Dense] the original 2^width-table engine (kept
   for differential testing, exactly as Fol keeps [Naive]) *)
type engine = Bdd | Dense

let engine_name = function Bdd -> "bdd" | Dense -> "dense"

let engine_of_name = function
  | "bdd" -> Some Bdd
  | "dense" -> Some Dense
  | _ -> None

(* the process-wide default, settable from the CLI escape hatch
   ([jahob verify --mona-engine dense]); read by prover-pool domains *)
let default_engine : engine Atomic.t = Atomic.make Bdd
let set_default_engine (e : engine) : unit = Atomic.set default_engine e
let current_default_engine () : engine = Atomic.get default_engine

(* high-water mark of automaton states across all decisions, for the
   bench tables; Trace counters are summing, so a max lives here *)
let peak = Atomic.make 0

let rec note_peak n =
  let cur = Atomic.get peak in
  if n > cur && not (Atomic.compare_and_set peak cur n) then note_peak n

let peak_states () = Atomic.get peak
let reset_peak_states () = Atomic.set peak 0

type compiled = {
  dfa : Dfa.t;
  tracks : var array; (* track i = tracks.(i) *)
}

(* alpha-rename and assign every variable a global track index *)
let track_assignment (f : t) : t * var array * int * (var -> int) =
  let f = alpha_rename f in
  let all_vars =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun v ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end)
      (vars_of f)
  in
  let tracks = Array.of_list all_vars in
  let width = Array.length tracks in
  let pos v =
    let rec find i =
      if i >= width then invalid_arg ("Ws1s.compile: unknown variable " ^ v)
      else if tracks.(i) = v then i
      else find (i + 1)
    in
    find 0
  in
  (f, tracks, width, pos)

let compile (f : t) : compiled =
  let f, tracks, width, pos = track_assignment f in
  let rec go f : Dfa.t =
    let d =
      match f with
      | True -> Dfa.top width
      | False -> Dfa.bottom width
      | Pred p -> compile_pred ~width ~pos p
      | Not g -> Dfa.complement (go g)
      | And gs ->
        List.fold_left
          (fun acc g -> Dfa.minimize (Dfa.inter acc (go g)))
          (Dfa.top width) gs
      | Or gs ->
        List.fold_left
          (fun acc g -> Dfa.minimize (Dfa.union acc (go g)))
          (Dfa.bottom width) gs
      | Impl (a, b) -> go (Or [ Not a; b ])
      | Iff (a, b) -> go (And [ Impl (a, b); Impl (b, a) ])
      | Ex2 (x, g) ->
        let d = go g in
        let p = pos x in
        Dfa.minimize (Dfa.insert_track (Dfa.project d p) p)
      | All2 (x, g) -> go (Not (Ex2 (x, Not g)))
      | Ex1 (x, g) ->
        let d =
          Dfa.inter (singleton_automaton ~width ~track:(pos x)) (go g)
        in
        let p = pos x in
        Dfa.minimize (Dfa.insert_track (Dfa.project d p) p)
      | All1 (x, g) ->
        (* forall x ranges over singletons only *)
        go (Not (Ex1 (x, Not g)))
    in
    note_peak (Dfa.num_states d);
    d
  in
  { dfa = Dfa.minimize (go f); tracks }

(* ------------------------------------------------------------------ *)
(* Symbolic compilation (the BDD engine)                               *)
(* ------------------------------------------------------------------ *)

type compiled_sym = {
  sdfa : Sdfa.t;
  s_tracks : var array;
  man : Bdd.manager; (* per-compilation: no cross-thread sharing *)
}

(* Same structure as the dense compiler, with one structural
   improvement: tracks are global BDD variables, so a quantifier is
   [Sdfa.quantify] {e in place} — the dense engine's project /
   re-insert width realignment (a full-automaton rebuild at every
   binder) has no symbolic counterpart. *)
let compile_sym (f : t) : compiled_sym =
  let f, tracks, width, pos = track_assignment f in
  let man = Bdd.manager () in
  let rec go f : Sdfa.t =
    let d =
      match f with
      | True -> Sdfa.top man width
      | False -> Sdfa.bottom man width
      | Pred p -> sym_of_spec man ~width (pred_spec ~pos p)
      | Not g -> Sdfa.complement (go g)
      | And gs ->
        List.fold_left
          (fun acc g -> Sdfa.minimize (Sdfa.inter acc (go g)))
          (Sdfa.top man width) gs
      | Or gs ->
        List.fold_left
          (fun acc g -> Sdfa.minimize (Sdfa.union acc (go g)))
          (Sdfa.bottom man width) gs
      | Impl (a, b) -> go (Or [ Not a; b ])
      | Iff (a, b) -> go (And [ Impl (a, b); Impl (b, a) ])
      | Ex2 (x, g) -> Sdfa.minimize (Sdfa.quantify (go g) (pos x))
      | All2 (x, g) -> go (Not (Ex2 (x, Not g)))
      | Ex1 (x, g) ->
        let d =
          Sdfa.inter (sym_of_spec man ~width (singleton_spec ~track:(pos x)))
            (go g)
        in
        Sdfa.minimize (Sdfa.quantify d (pos x))
      | All1 (x, g) -> go (Not (Ex1 (x, Not g)))
    in
    note_peak (Sdfa.num_states d);
    d
  in
  { sdfa = Sdfa.minimize (go f); s_tracks = tracks; man }

(* free first-order variables must be constrained to singletons *)
let with_fo_constraints (c : compiled) (fo : var list) : Dfa.t =
  let width = Array.length c.tracks in
  Array.to_list c.tracks
  |> List.mapi (fun i v -> (i, v))
  |> List.filter (fun (_, v) -> List.mem v fo)
  |> List.fold_left
       (fun acc (i, _) ->
         Dfa.minimize (Dfa.inter acc (singleton_automaton ~width ~track:i)))
       c.dfa

let with_fo_constraints_sym (c : compiled_sym) (fo : var list) : Sdfa.t =
  let width = Array.length c.s_tracks in
  Array.to_list c.s_tracks
  |> List.mapi (fun i v -> (i, v))
  |> List.filter (fun (_, v) -> List.mem v fo)
  |> List.fold_left
       (fun acc (i, _) ->
         Sdfa.minimize
           (Sdfa.inter acc (sym_of_spec c.man ~width (singleton_spec ~track:i))))
       c.sdfa

(* publish the symbolic engine's counters after a decision: total nodes
   hash-consed, computed-cache traffic, and this decision's peak state
   count (all summing — the process-wide max is [peak_states]) *)
let publish_sym_counters (man : Bdd.manager) : unit =
  Trace.add "mona.bdd.unique" (Bdd.unique_size man);
  let lookups, hits = Bdd.cache_stats man in
  Trace.add "mona.bdd.cache.lookups" lookups;
  Trace.add "mona.bdd.cache.hits" hits

(* ------------------------------------------------------------------ *)
(* Decision interface                                                  *)
(* ------------------------------------------------------------------ *)

type model = (var * int list) list (* var -> set of positions *)

let decode_word (tracks : var array) (word : int list) : model =
  Array.to_list tracks
  |> List.mapi (fun i v ->
         ( v,
           List.mapi (fun p l -> if bit l i = 1 then Some p else None) word
           |> List.filter_map Fun.id ))

(** Satisfiability; [fo] lists the free first-order variables (constrained
    to singletons).  Returns a satisfying assignment when satisfiable.
    [engine] defaults to the process-wide {!set_default_engine} choice. *)
let satisfiable ?engine ?(fo = []) (f : t) : model option =
  let engine =
    match engine with Some e -> e | None -> current_default_engine ()
  in
  match engine with
  | Dense ->
    let c = compile f in
    let d = with_fo_constraints c fo in
    (match Dfa.witness d with
    | None -> None
    | Some w -> Some (decode_word c.tracks w))
  | Bdd ->
    let c = compile_sym f in
    let d = with_fo_constraints_sym c fo in
    let r =
      match Sdfa.witness d with
      | None -> None
      | Some w -> Some (decode_word c.s_tracks w)
    in
    publish_sym_counters c.man;
    r

(** Validity over all assignments (free first-order variables range over
    positions, second-order over finite sets). *)
let valid ?engine ?(fo = []) (f : t) : bool =
  let engine =
    match engine with Some e -> e | None -> current_default_engine ()
  in
  match engine with
  | Dense ->
    let c = compile (Not f) in
    let d = with_fo_constraints c fo in
    Dfa.is_empty d
  | Bdd ->
    let c = compile_sym (Not f) in
    let d = with_fo_constraints_sym c fo in
    let r = Sdfa.is_empty d in
    publish_sym_counters c.man;
    r

(** A countermodel when not valid. *)
let countermodel ?engine ?(fo = []) (f : t) : model option =
  satisfiable ?engine ~fo (Not f)
