(** Deterministic finite automata over bit-track alphabets.

    The automata core of the MONA-style WS1S decision procedure.  A letter
    is a bitvector of width [width]: bit [i] says whether track [i] (one
    per WS1S variable) holds at the current position.  All DFAs are total.

    Automata are kept {e trailing-zero insensitive}: a word [w] is
    accepted iff [w . 0] is accepted, the invariant that makes finite
    words encode assignments of finite sets.  Product and complement
    preserve it; {!project} restores it with a zero-closure pass. *)

type t = {
  width : int; (* number of tracks *)
  trans : int array array; (* state -> letter -> state; letter < 2^width *)
  accept : bool array;
  initial : int;
}

let num_states a = Array.length a.trans
let num_letters a = 1 lsl a.width

(* ------------------------------------------------------------------ *)
(* Construction helpers                                                *)
(* ------------------------------------------------------------------ *)

(** [make ~width ~n ~initial ~accept f]: explicit automaton, [f s l] the
    transition function. *)
let make ~width ~n ~initial ~accept f =
  let letters = 1 lsl width in
  {
    width;
    trans =
      Array.init n (fun s ->
          (* one poll per state row: a row is 2^width cells *)
          Deadline.check ();
          Array.init letters (fun l -> f s l));
    accept = Array.init n accept;
    initial;
  }

(** Automaton accepting everything. *)
let top width = make ~width ~n:1 ~initial:0 ~accept:(fun _ -> true) (fun _ _ -> 0)

(** Automaton accepting nothing. *)
let bottom width =
  make ~width ~n:1 ~initial:0 ~accept:(fun _ -> false) (fun _ _ -> 0)

(* ------------------------------------------------------------------ *)
(* Run / acceptance                                                    *)
(* ------------------------------------------------------------------ *)

let accepts (a : t) (word : int list) : bool =
  let s = List.fold_left (fun s l -> a.trans.(s).(l)) a.initial word in
  a.accept.(s)

(* ------------------------------------------------------------------ *)
(* Boolean combinations                                                *)
(* ------------------------------------------------------------------ *)

let complement (a : t) : t = { a with accept = Array.map not a.accept }

(** Product construction over reachable pairs; [op] combines
    acceptance. *)
let product (op : bool -> bool -> bool) (a : t) (b : t) : t =
  if a.width <> b.width then invalid_arg "Dfa.product: width mismatch";
  let letters = num_letters a in
  let index = Hashtbl.create 64 in
  let next_id = ref 0 in
  let trans_acc = ref [] in
  let accept_acc = ref [] in
  let rec explore (sa, sb) =
    match Hashtbl.find_opt index (sa, sb) with
    | Some i -> i
    | None ->
      (* one poll per fresh product state: blowup happens here *)
      Deadline.check ();
      let i = !next_id in
      incr next_id;
      Hashtbl.add index (sa, sb) i;
      let row = Array.make letters (-1) in
      trans_acc := (i, row) :: !trans_acc;
      accept_acc := (i, op a.accept.(sa) b.accept.(sb)) :: !accept_acc;
      for l = 0 to letters - 1 do
        (* wide alphabets make a single row a multi-second scan *)
        if l land 0xffff = 0 then Deadline.check ();
        row.(l) <- explore (a.trans.(sa).(l), b.trans.(sb).(l))
      done;
      i
  in
  let initial = explore (a.initial, b.initial) in
  let n = !next_id in
  let trans = Array.make n [||] in
  List.iter (fun (i, row) -> trans.(i) <- row) !trans_acc;
  let accept = Array.make n false in
  List.iter (fun (i, acc) -> accept.(i) <- acc) !accept_acc;
  { width = a.width; trans; accept; initial }

let inter = product ( && )
let union = product ( || )

(* ------------------------------------------------------------------ *)
(* Track manipulation                                                  *)
(* ------------------------------------------------------------------ *)

(** Insert a fresh don't-care track at bit position [pos] (0 = least
    significant).  Used to align automata over different variable sets. *)
let insert_track (a : t) (pos : int) : t =
  let letters' = 1 lsl (a.width + 1) in
  let low_mask = (1 lsl pos) - 1 in
  let old_letter l' =
    (* drop bit pos *)
    let low = l' land low_mask in
    let high = (l' lsr (pos + 1)) lsl pos in
    low lor high
  in
  {
    width = a.width + 1;
    trans =
      Array.map
        (fun row ->
          Deadline.check ();
          Array.init letters' (fun l' -> row.(old_letter l')))
        a.trans;
    accept = Array.copy a.accept;
    initial = a.initial;
  }

(* ------------------------------------------------------------------ *)
(* Projection (existential quantification of one track)                *)
(* ------------------------------------------------------------------ *)

(** Project away track [pos]: the result accepts [w] iff some assignment
    of the removed track (possibly extending beyond [w]) is accepted.
    Implemented as subset construction over the projected NFA followed by
    the zero-closure acceptance fix. *)
let project (a : t) (pos : int) : t =
  let letters' = 1 lsl (a.width - 1) in
  let low_mask = (1 lsl pos) - 1 in
  let lift l' bit =
    (* insert [bit] at position pos of letter l' *)
    let low = l' land low_mask in
    let high = (l' lsr pos) lsl (pos + 1) in
    low lor high lor (bit lsl pos)
  in
  (* states from which an accepting state of [a] is reachable via letters
     that are zero on the remaining tracks (anything on track pos) *)
  let zero_accept = Array.make (num_states a) false in
  let changed = ref true in
  Array.iteri (fun i acc -> zero_accept.(i) <- acc) a.accept;
  while !changed do
    changed := false;
    Deadline.check ();
    for s = 0 to num_states a - 1 do
      if not zero_accept.(s) then begin
        let l0 = lift 0 0 and l1 = lift 0 1 in
        if zero_accept.(a.trans.(s).(l0)) || zero_accept.(a.trans.(s).(l1))
        then begin
          zero_accept.(s) <- true;
          changed := true
        end
      end
    done
  done;
  (* subset construction *)
  let module Iset = Set.Make (Int) in
  let index = Hashtbl.create 64 in
  let next_id = ref 0 in
  let trans_acc = ref [] in
  let accept_acc = ref [] in
  let rec explore set =
    (* key on a sorted array, not [Iset.elements]: equal sets hash
       equal, and the array is a third the size of a boxed list *)
    let key = Array.of_seq (Iset.to_seq set) in
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
      (* one poll per fresh subset state: blowup happens here *)
      Deadline.check ();
      let i = !next_id in
      incr next_id;
      Hashtbl.add index key i;
      let row = Array.make letters' (-1) in
      let acc = Iset.exists (fun s -> zero_accept.(s)) set in
      accept_acc := (i, acc) :: !accept_acc;
      trans_acc := (i, row) :: !trans_acc;
      for l' = 0 to letters' - 1 do
        if l' land 0xffff = 0 then Deadline.check ();
        let succ =
          Iset.fold
            (fun s acc ->
              Iset.add a.trans.(s).(lift l' 0)
                (Iset.add a.trans.(s).(lift l' 1) acc))
            set Iset.empty
        in
        row.(l') <- explore succ
      done;
      i
  in
  let initial = explore (Iset.singleton a.initial) in
  let n = !next_id in
  let trans = Array.make n [||] in
  List.iter (fun (i, row) -> trans.(i) <- row) !trans_acc;
  let accept = Array.make n false in
  List.iter (fun (i, acc) -> accept.(i) <- acc) !accept_acc;
  { width = a.width - 1; trans; accept; initial }

(* ------------------------------------------------------------------ *)
(* Minimization (Moore partition refinement)                           *)
(* ------------------------------------------------------------------ *)

let minimize (a : t) : t =
  let n = num_states a in
  let letters = num_letters a in
  (* start: partition by acceptance *)
  let cls = Array.init n (fun s -> if a.accept.(s) then 1 else 0) in
  (* Moore refinement one letter at a time: a state's signature is the
     pair (its class, its successor class under the current letter), so
     no per-state 2^width array is ever allocated.  A full sweep over
     the alphabet with no split means the partition is stable under
     every letter at once — the same fixpoint as the monolithic
     signature, reached with O(1) allocation per state *)
  let ncls = ref (1 + Array.fold_left max (-1) cls) in
  let new_cls = Array.make n 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    Deadline.check ();
    for l = 0 to letters - 1 do
      if l land 0xffff = 0 then Deadline.check ();
      let sigs = Hashtbl.create (2 * !ncls) in
      let next_class = ref 0 in
      for s = 0 to n - 1 do
        let signature = (cls.(s), cls.(a.trans.(s).(l))) in
        match Hashtbl.find_opt sigs signature with
        | Some c -> new_cls.(s) <- c
        | None ->
          Hashtbl.add sigs signature !next_class;
          new_cls.(s) <- !next_class;
          incr next_class
      done;
      (* refinement only ever splits classes, so the partition moved
         exactly when the class count grew *)
      if !next_class <> !ncls then begin
        changed := true;
        ncls := !next_class
      end;
      Array.blit new_cls 0 cls 0 n
    done
  done;
  let nclasses = 1 + Array.fold_left max 0 cls in
  let repr = Array.make nclasses (-1) in
  for s = n - 1 downto 0 do
    repr.(cls.(s)) <- s
  done;
  {
    width = a.width;
    trans =
      Array.init nclasses (fun c ->
          Array.init letters (fun l -> cls.(a.trans.(repr.(c)).(l))));
    accept = Array.init nclasses (fun c -> a.accept.(repr.(c)));
    initial = cls.(a.initial);
  }

(* ------------------------------------------------------------------ *)
(* Emptiness and witnesses                                             *)
(* ------------------------------------------------------------------ *)

(** Shortest accepted word, if any (BFS). *)
let witness (a : t) : int list option =
  let n = num_states a in
  let letters = num_letters a in
  let pred = Array.make n None in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(a.initial) <- true;
  Queue.add a.initial queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    Deadline.check ();
    let s = Queue.pop queue in
    if a.accept.(s) then found := Some s
    else
      for l = 0 to letters - 1 do
        let t = a.trans.(s).(l) in
        if not seen.(t) then begin
          seen.(t) <- true;
          pred.(t) <- Some (s, l);
          Queue.add t queue
        end
      done
  done;
  match !found with
  | None -> None
  | Some s ->
    let rec build s acc =
      match pred.(s) with
      | None -> acc
      | Some (p, l) -> build p (l :: acc)
    in
    Some (build s [])

let is_empty (a : t) : bool = witness a = None

(** Does [a] accept every word? *)
let is_universal (a : t) : bool = is_empty (complement a)
