(** Hash-consed reduced ordered (multi-terminal) binary decision diagrams.

    The symbolic kernel under the WS1S decision procedure: DFA transition
    rows are MTBDDs over track variables whose leaves are successor state
    ids, so a row over [w] tracks costs space proportional to the number
    of tracks the state actually inspects, never [2^w].

    Variables are global track indices and the variable order is fixed:
    track index strictly increases from root to leaf.  Leaves carry
    arbitrary ints — booleans are the leaves 0/1, transition rows use
    state ids, and the subset construction uses interned set ids (see
    {!set_singleton}).

    All nodes live in a {!manager}.  Managers are deliberately {e not}
    shared across threads: every WS1S compilation builds its own, so the
    multi-domain prover pool needs no locking here (mirroring how
    [Logic.Hashcons] had to grow sharded locks when it went global).
    Combining nodes from two managers is a programming error; {!Sdfa}
    asserts physical manager equality at every binary operation.

    The apply caches poll {!Deadline.check} every 1024 probes, so a
    budgeted run cancels even inside one giant apply. *)

type t = { tag : int; node : node }
and node = Leaf of int | Node of { var : int; lo : t; hi : t }

type manager = {
  unique : (int * int * int, t) Hashtbl.t; (* (var, lo.tag, hi.tag) *)
  leaf_tbl : (int, t) Hashtbl.t;
  cache2 : (int * int * int, t) Hashtbl.t; (* (op, a.tag, b.tag) *)
  cache1 : (int * int * int, t) Hashtbl.t; (* (op, aux, a.tag) *)
  maxvar_memo : (int, int) Hashtbl.t;
  leaves_memo : (int, int list) Hashtbl.t;
  (* interned sorted int sets, for the subset construction: a set is a
     small int id, union is memoized, membership is a sorted array *)
  set_ids : (int array, int) Hashtbl.t;
  mutable set_arr : int array array;
  mutable set_count : int;
  set_union_tbl : (int * int, int) Hashtbl.t;
  mutable next_tag : int;
  mutable next_op : int;
  mutable lookups : int; (* computed-cache probes *)
  mutable hits : int;
  mutable polls : int;
}

(* reserved operation ids for the shared computed caches; per-call-site
   memo spaces (product leaf maps, minimization rounds) take fresh ids
   from [fresh_op] *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_not = 3
let op_restrict = 4
let op_exists_or = 5
let op_exists_union = 6
let op_rename_up = 7
let op_rename_down = 8
let op_to_singletons = 9
let op_union_mt = 10
let first_fresh_op = 11

let manager () : manager =
  {
    unique = Hashtbl.create 1024;
    leaf_tbl = Hashtbl.create 64;
    cache2 = Hashtbl.create 1024;
    cache1 = Hashtbl.create 1024;
    maxvar_memo = Hashtbl.create 256;
    leaves_memo = Hashtbl.create 256;
    set_ids = Hashtbl.create 64;
    set_arr = Array.make 16 [||];
    set_count = 0;
    set_union_tbl = Hashtbl.create 64;
    next_tag = 0;
    next_op = first_fresh_op;
    lookups = 0;
    hits = 0;
    polls = 0;
  }

let fresh_op (man : manager) : int =
  let o = man.next_op in
  man.next_op <- o + 1;
  o

let tag (t : t) : int = t.tag

let poll man =
  man.polls <- man.polls + 1;
  if man.polls land 1023 = 0 then Deadline.check ()

(* ------------------------------------------------------------------ *)
(* Node construction (hash-consing)                                    *)
(* ------------------------------------------------------------------ *)

let leaf man v =
  match Hashtbl.find_opt man.leaf_tbl v with
  | Some t -> t
  | None ->
    let t = { tag = man.next_tag; node = Leaf v } in
    man.next_tag <- man.next_tag + 1;
    Hashtbl.add man.leaf_tbl v t;
    t

(** [node man var lo hi] is the reduced node: collapses [lo == hi] and
    shares structurally equal nodes, so physical equality is semantic
    equality within one manager. *)
let node man var lo hi =
  if lo == hi then lo
  else begin
    let key = (var, lo.tag, hi.tag) in
    match Hashtbl.find_opt man.unique key with
    | Some t -> t
    | None ->
      let t = { tag = man.next_tag; node = Node { var; lo; hi } } in
      man.next_tag <- man.next_tag + 1;
      Hashtbl.add man.unique key t;
      t
  end

let bfalse man = leaf man 0
let btrue man = leaf man 1
let bvar man v = node man v (bfalse man) (btrue man)

let topvar t = match t.node with Leaf _ -> max_int | Node n -> n.var

let cofactors t v =
  match t.node with
  | Node { var; lo; hi } when var = v -> (lo, hi)
  | _ -> (t, t)

(* ------------------------------------------------------------------ *)
(* Apply                                                               *)
(* ------------------------------------------------------------------ *)

(** [apply2 man ~op f a b]: combine leaves pointwise with [f], memoized
    under operation id [op].  [f] must be deterministic for the lifetime
    of [op] (it may allocate — the product construction's leaf map mints
    fresh product-state ids). *)
let rec apply2 man ~op f a b =
  match (a.node, b.node) with
  | Leaf la, Leaf lb -> leaf man (f la lb)
  | _ ->
    poll man;
    let key = (op, a.tag, b.tag) in
    man.lookups <- man.lookups + 1;
    (match Hashtbl.find_opt man.cache2 key with
    | Some r ->
      man.hits <- man.hits + 1;
      r
    | None ->
      let v = min (topvar a) (topvar b) in
      let a0, a1 = cofactors a v and b0, b1 = cofactors b v in
      let r =
        node man v (apply2 man ~op f a0 b0) (apply2 man ~op f a1 b1)
      in
      Hashtbl.add man.cache2 key r;
      r)

(** [apply1 man ~op ~aux f a]: map leaves through [f], memoized under
    [(op, aux)]. *)
let rec apply1 man ~op ~aux f a =
  match a.node with
  | Leaf l -> leaf man (f l)
  | Node { var; lo; hi } ->
    poll man;
    let key = (op, aux, a.tag) in
    man.lookups <- man.lookups + 1;
    (match Hashtbl.find_opt man.cache1 key with
    | Some r ->
      man.hits <- man.hits + 1;
      r
    | None ->
      let r =
        node man var (apply1 man ~op ~aux f lo) (apply1 man ~op ~aux f hi)
      in
      Hashtbl.add man.cache1 key r;
      r)

(* ------------------------------------------------------------------ *)
(* Boolean algebra (leaves restricted to 0/1)                          *)
(* ------------------------------------------------------------------ *)

let band man = apply2 man ~op:op_and (fun x y -> if x <> 0 && y <> 0 then 1 else 0)
let bor man = apply2 man ~op:op_or (fun x y -> if x <> 0 || y <> 0 then 1 else 0)
let bxor man = apply2 man ~op:op_xor (fun x y -> if (x <> 0) <> (y <> 0) then 1 else 0)
let bnot man = apply1 man ~op:op_not ~aux:0 (fun x -> if x = 0 then 1 else 0)
let ite man c t e = bor man (band man c t) (band man (bnot man c) e)

(* ------------------------------------------------------------------ *)
(* Restrict / quantification                                           *)
(* ------------------------------------------------------------------ *)

(** [restrict man v b a]: fix variable [v] to [b]. *)
let rec restrict man v b a =
  match a.node with
  | Leaf _ -> a
  | Node { var; lo; hi } ->
    if var > v then a
    else if var = v then if b then hi else lo
    else begin
      poll man;
      let key = (op_restrict, (2 * v) + Bool.to_int b, a.tag) in
      man.lookups <- man.lookups + 1;
      match Hashtbl.find_opt man.cache1 key with
      | Some r ->
        man.hits <- man.hits + 1;
        r
      | None ->
        let r = node man var (restrict man v b lo) (restrict man v b hi) in
        Hashtbl.add man.cache1 key r;
        r
    end

(* existential quantification over one variable, generic in how the two
   cofactors are combined: [bor] for boolean BDDs, [union_mt] for
   transition MTBDDs whose leaves are interned set ids *)
let rec exists_gen man ~op ~combine v a =
  match a.node with
  | Leaf _ -> a
  | Node { var; lo; hi } ->
    if var > v then a
    else if var = v then combine lo hi
    else begin
      poll man;
      let key = (op, v, a.tag) in
      man.lookups <- man.lookups + 1;
      match Hashtbl.find_opt man.cache1 key with
      | Some r ->
        man.hits <- man.hits + 1;
        r
      | None ->
        let r =
          node man var
            (exists_gen man ~op ~combine v lo)
            (exists_gen man ~op ~combine v hi)
        in
        Hashtbl.add man.cache1 key r;
        r
    end

(** [exists man v a]: boolean ∃v, i.e. [restrict v 0 ∨ restrict v 1]. *)
let exists man v a = exists_gen man ~op:op_exists_or ~combine:(bor man) v a

(* ------------------------------------------------------------------ *)
(* Variable renaming (track insertion / deletion)                      *)
(* ------------------------------------------------------------------ *)

let rec max_var man a =
  match a.node with
  | Leaf _ -> -1
  | Node { var; lo; hi } ->
    (match Hashtbl.find_opt man.maxvar_memo a.tag with
    | Some m -> m
    | None ->
      let m = max var (max (max_var man lo) (max_var man hi)) in
      Hashtbl.add man.maxvar_memo a.tag m;
      m)

(** Shift every variable [>= pos] up by one — a fresh don't-care track at
    [pos].  A diagram that never looks at tracks [>= pos] is returned
    unchanged, which is what makes [Sdfa.insert_track] cheap. *)
let rec rename_up man pos a =
  if max_var man a < pos then a
  else
    match a.node with
    | Leaf _ -> a
    | Node { var; lo; hi } ->
      poll man;
      let key = (op_rename_up, pos, a.tag) in
      man.lookups <- man.lookups + 1;
      (match Hashtbl.find_opt man.cache1 key with
      | Some r ->
        man.hits <- man.hits + 1;
        r
      | None ->
        let var' = if var >= pos then var + 1 else var in
        let r =
          node man var' (rename_up man pos lo) (rename_up man pos hi)
        in
        Hashtbl.add man.cache1 key r;
        r)

(** Shift every variable [> pos] down by one.  Precondition: [pos] itself
    does not occur (it was quantified away). *)
let rec rename_down man pos a =
  if max_var man a < pos then a
  else
    match a.node with
    | Leaf _ -> a
    | Node { var; lo; hi } ->
      assert (var <> pos);
      poll man;
      let key = (op_rename_down, pos, a.tag) in
      man.lookups <- man.lookups + 1;
      (match Hashtbl.find_opt man.cache1 key with
      | Some r ->
        man.hits <- man.hits + 1;
        r
      | None ->
        let var' = if var > pos then var - 1 else var in
        let r =
          node man var' (rename_down man pos lo) (rename_down man pos hi)
        in
        Hashtbl.add man.cache1 key r;
        r)

(* ------------------------------------------------------------------ *)
(* Evaluation / inspection                                             *)
(* ------------------------------------------------------------------ *)

(** [eval a assign]: the leaf reached under the assignment. *)
let rec eval a (assign : int -> bool) : int =
  match a.node with
  | Leaf v -> v
  | Node { var; lo; hi } -> eval (if assign var then hi else lo) assign

let rec merge_sorted xs ys =
  match (xs, ys) with
  | [], zs | zs, [] -> zs
  | x :: xs', y :: ys' ->
    if x < y then x :: merge_sorted xs' ys
    else if y < x then y :: merge_sorted xs ys'
    else x :: merge_sorted xs' ys'

(** Sorted list of the distinct leaves below [a] (memoized). *)
let rec leaves man a : int list =
  match a.node with
  | Leaf v -> [ v ]
  | Node { lo; hi; _ } ->
    (match Hashtbl.find_opt man.leaves_memo a.tag with
    | Some ls -> ls
    | None ->
      let ls = merge_sorted (leaves man lo) (leaves man hi) in
      Hashtbl.add man.leaves_memo a.tag ls;
      ls)

(** [path_to_leaf a p]: some root-to-leaf path whose leaf satisfies [p],
    as [(leaf, decisions)] with [decisions] the visited [(var, value)]
    pairs; variables not listed are don't-care.  Linear in the node
    count (failed subdiagrams are marked dead). *)
let path_to_leaf (a : t) (p : int -> bool) : (int * (int * bool) list) option =
  let dead = Hashtbl.create 16 in
  let rec go a acc =
    if Hashtbl.mem dead a.tag then None
    else
      match a.node with
      | Leaf v ->
        if p v then Some (v, List.rev acc)
        else begin
          Hashtbl.add dead a.tag ();
          None
        end
      | Node { var; lo; hi } -> (
        match go lo ((var, false) :: acc) with
        | Some r -> Some r
        | None -> (
          match go hi ((var, true) :: acc) with
          | Some r -> Some r
          | None ->
            Hashtbl.add dead a.tag ();
            None))
  in
  go a []

(* ------------------------------------------------------------------ *)
(* Interned state sets (subset construction support)                   *)
(* ------------------------------------------------------------------ *)

let set_intern man (arr : int array) : int =
  match Hashtbl.find_opt man.set_ids arr with
  | Some i -> i
  | None ->
    let i = man.set_count in
    if i = Array.length man.set_arr then begin
      let bigger = Array.make (2 * (i + 1)) [||] in
      Array.blit man.set_arr 0 bigger 0 i;
      man.set_arr <- bigger
    end;
    man.set_arr.(i) <- arr;
    man.set_count <- i + 1;
    Hashtbl.add man.set_ids arr i;
    i

(** The sorted member array of an interned set.  Callers must not mutate
    it. *)
let set_of_id man i = man.set_arr.(i)

let set_singleton man q = set_intern man [| q |]

let merge_sorted_arrays (a : int array) (b : int array) : int array =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then (out.(!k) <- x; incr i)
    else if y < x then (out.(!k) <- y; incr j)
    else (out.(!k) <- x; incr i; incr j);
    incr k
  done;
  while !i < na do out.(!k) <- a.(!i); incr i; incr k done;
  while !j < nb do out.(!k) <- b.(!j); incr j; incr k done;
  if !k = na + nb then out else Array.sub out 0 !k

(** Memoized union of two interned sets. *)
let set_union man i j =
  if i = j then i
  else begin
    let key = (min i j, max i j) in
    match Hashtbl.find_opt man.set_union_tbl key with
    | Some k -> k
    | None ->
      let k =
        set_intern man (merge_sorted_arrays (set_of_id man i) (set_of_id man j))
      in
      Hashtbl.add man.set_union_tbl key k;
      k
  end

(** Leafwise union of two set-id MTBDDs. *)
let union_mt man = apply2 man ~op:op_union_mt (set_union man)

(** Map each state-id leaf [q] to the interned singleton [{q}]. *)
let to_singletons man =
  apply1 man ~op:op_to_singletons ~aux:0 (set_singleton man)

(** ∃[v] over a set-id MTBDD, combining cofactors by set union: the
    one-step NFA row of the projected automaton. *)
let exists_union man v a =
  exists_gen man ~op:op_exists_union ~combine:(union_mt man) v a

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

(** Live hash-consed nodes (internal + leaves). *)
let unique_size man = Hashtbl.length man.unique + Hashtbl.length man.leaf_tbl

(** (computed-cache lookups, hits). *)
let cache_stats man = (man.lookups, man.hits)
