(** Symbolic DFAs: transition rows are shared MTBDDs over track variables.

    The drop-in symbolic twin of {!Dfa}: same language semantics (total,
    trailing-zero insensitive automata over bit-track alphabets), but a
    state's outgoing behavior is a {!Bdd} whose variables are {e global}
    track indices and whose leaves are successor state ids.  A state that
    ignores a track stores no node for it, so don't-care tracks are free:
    [insert_track] is a rename (usually the identity), and the per-letter
    [2^width] enumeration of the dense engine disappears from product,
    projection and minimization alike.

    All automata in one computation must share one {!Bdd.manager}
    (asserted on binary operations).  Blowup-prone loops poll
    {!Deadline.check}. *)

type t = {
  man : Bdd.manager;
  width : int; (* number of tracks *)
  trans : Bdd.t array; (* state -> MTBDD, leaves are successor states *)
  accept : bool array;
  initial : int;
}

let num_states a = Array.length a.trans

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(** [make ~man ~width ~n ~initial ~accept ?deps f]: explicit automaton
    with [f s letter] the transition function over full-width letters.
    [deps] (sorted ascending) lists the tracks the transitions actually
    read — [f] is only sampled on assignments of those, so a predicate
    automaton touching 2 of 20 tracks costs 4 probes per state, not
    [2^20]. *)
let make ~man ~width ~n ~initial ~accept ?deps f =
  let deps =
    match deps with Some d -> d | None -> List.init width (fun i -> i)
  in
  let build s =
    let rec go ds letter =
      match ds with
      | [] -> Bdd.leaf man (f s letter)
      | v :: rest ->
        Bdd.node man v (go rest letter) (go rest (letter lor (1 lsl v)))
    in
    go deps 0
  in
  {
    man;
    width;
    trans = Array.init n build;
    accept = Array.init n accept;
    initial;
  }

let top man width =
  { man; width; trans = [| Bdd.leaf man 0 |]; accept = [| true |]; initial = 0 }

let bottom man width =
  { man; width; trans = [| Bdd.leaf man 0 |]; accept = [| false |]; initial = 0 }

(* ------------------------------------------------------------------ *)
(* Run / acceptance                                                    *)
(* ------------------------------------------------------------------ *)

let step (a : t) (s : int) (letter : int) : int =
  Bdd.eval a.trans.(s) (fun v -> letter land (1 lsl v) <> 0)

let accepts (a : t) (word : int list) : bool =
  a.accept.(List.fold_left (step a) a.initial word)

(* ------------------------------------------------------------------ *)
(* Boolean combinations                                                *)
(* ------------------------------------------------------------------ *)

let complement (a : t) : t = { a with accept = Array.map not a.accept }

(** Product over reachable pairs.  One [Bdd.apply2] per product state;
    the computed cache is shared across all state pairs of this product,
    so structurally shared rows are combined once. *)
let product (op : bool -> bool -> bool) (a : t) (b : t) : t =
  if a.man != b.man then invalid_arg "Sdfa.product: manager mismatch";
  if a.width <> b.width then invalid_arg "Sdfa.product: width mismatch";
  let man = a.man in
  let opid = Bdd.fresh_op man in
  let index = Hashtbl.create 64 in
  let queue = Queue.create () in
  let n = ref 0 in
  let get qa qb =
    match Hashtbl.find_opt index (qa, qb) with
    | Some i -> i
    | None ->
      let i = !n in
      incr n;
      Hashtbl.add index (qa, qb) i;
      Queue.add (i, qa, qb) queue;
      i
  in
  let initial = get a.initial b.initial in
  let rows = ref [] in
  while not (Queue.is_empty queue) do
    (* one poll per fresh product state: blowup happens here *)
    Deadline.check ();
    let i, sa, sb = Queue.pop queue in
    let row = Bdd.apply2 man ~op:opid get a.trans.(sa) b.trans.(sb) in
    rows := (i, row, op a.accept.(sa) b.accept.(sb)) :: !rows
  done;
  let trans = Array.make !n (Bdd.leaf man 0) in
  let accept = Array.make !n false in
  List.iter
    (fun (i, row, acc) ->
      trans.(i) <- row;
      accept.(i) <- acc)
    !rows;
  { man; width = a.width; trans; accept; initial }

let inter a b = product ( && ) a b
let union a b = product ( || ) a b

(* ------------------------------------------------------------------ *)
(* Track manipulation                                                  *)
(* ------------------------------------------------------------------ *)

(** Insert a fresh don't-care track at [pos].  Rows that never read a
    track [>= pos] — the common case when fresh tracks are appended at
    the top — are returned unchanged (physically). *)
let insert_track (a : t) (pos : int) : t =
  {
    a with
    width = a.width + 1;
    trans = Array.map (Bdd.rename_up a.man pos) a.trans;
    accept = Array.copy a.accept;
  }

(* ------------------------------------------------------------------ *)
(* Projection (existential quantification of one track)                *)
(* ------------------------------------------------------------------ *)

(** [quantify a pos]: existentially quantify track [pos] {e in place} —
    the width and the remaining tracks' indices are unchanged and the
    result simply never reads track [pos].  Subset construction over the
    projected NFA plus the trailing-zero acceptance closure.  This is
    what the symbolic WS1S compiler uses directly: with global track
    variables there is no width realignment to undo afterwards. *)
let quantify (a : t) (pos : int) : t =
  let man = a.man in
  let n = num_states a in
  (* states reaching acceptance via letters that are zero on every kept
     track (anything on track pos) *)
  let zero_accept = Array.copy a.accept in
  let changed = ref true in
  while !changed do
    changed := false;
    Deadline.check ();
    for s = 0 to n - 1 do
      if not zero_accept.(s) then begin
        let s0 = Bdd.eval a.trans.(s) (fun _ -> false) in
        let s1 = Bdd.eval a.trans.(s) (fun v -> v = pos) in
        if zero_accept.(s0) || zero_accept.(s1) then begin
          zero_accept.(s) <- true;
          changed := true
        end
      end
    done
  done;
  (* NFA rows: leaves become interned successor sets, track pos is
     summed out by set union *)
  let nrow =
    Array.map
      (fun row -> Bdd.exists_union man pos (Bdd.to_singletons man row))
      a.trans
  in
  (* subset construction over interned set ids *)
  let opid = Bdd.fresh_op man in
  let index = Hashtbl.create 64 in
  let queue = Queue.create () in
  let count = ref 0 in
  let get sid =
    match Hashtbl.find_opt index sid with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Hashtbl.add index sid i;
      Queue.add (i, sid) queue;
      i
  in
  let initial = get (Bdd.set_singleton man a.initial) in
  let rows = ref [] in
  while not (Queue.is_empty queue) do
    Deadline.check ();
    let i, sid = Queue.pop queue in
    let qs = Bdd.set_of_id man sid in
    let nfa_row = ref nrow.(qs.(0)) in
    for k = 1 to Array.length qs - 1 do
      nfa_row := Bdd.union_mt man !nfa_row nrow.(qs.(k))
    done;
    let row = Bdd.apply1 man ~op:opid ~aux:0 get !nfa_row in
    let acc = Array.exists (fun q -> zero_accept.(q)) qs in
    rows := (i, row, acc) :: !rows
  done;
  let trans = Array.make !count (Bdd.leaf man 0) in
  let accept = Array.make !count false in
  List.iter
    (fun (i, row, acc) ->
      trans.(i) <- row;
      accept.(i) <- acc)
    !rows;
  { man; width = a.width; trans; accept; initial }

(** [project a pos]: like {!Dfa.project} — quantify track [pos] and
    close the gap, shifting higher tracks down. *)
let project (a : t) (pos : int) : t =
  let q = quantify a pos in
  {
    q with
    width = a.width - 1;
    trans = Array.map (Bdd.rename_down a.man pos) q.trans;
  }

(* ------------------------------------------------------------------ *)
(* Minimization (Moore refinement over BDD signatures)                 *)
(* ------------------------------------------------------------------ *)

(** Moore partition refinement where a state's signature is its class
    plus the {e node id} of its class-mapped transition row — hash
    consing makes equal rows physically equal, so no per-letter arrays
    are ever materialized. *)
let minimize (a : t) : t =
  let man = a.man in
  let n = num_states a in
  let cls = Array.init n (fun s -> if a.accept.(s) then 1 else 0) in
  let count c = 1 + Array.fold_left max (-1) c in
  let rec refine cls ncls =
    Deadline.check ();
    let opid = Bdd.fresh_op man in
    let mapped =
      Array.map
        (fun row -> Bdd.apply1 man ~op:opid ~aux:0 (fun q -> cls.(q)) row)
        a.trans
    in
    let sigs = Hashtbl.create (2 * n) in
    let new_cls = Array.make n 0 in
    let next = ref 0 in
    for s = 0 to n - 1 do
      let signature = (cls.(s), Bdd.tag mapped.(s)) in
      match Hashtbl.find_opt sigs signature with
      | Some c -> new_cls.(s) <- c
      | None ->
        Hashtbl.add sigs signature !next;
        new_cls.(s) <- !next;
        incr next
    done;
    (* refinement only splits, so the partition is stable exactly when
       the class count stops growing; [mapped] leaves are then the
       quotient rows under the numbering of [cls] *)
    if !next = ncls then (cls, mapped) else refine new_cls !next
  in
  let cls, mapped = refine cls (count cls) in
  let ncls = count cls in
  let repr = Array.make ncls (-1) in
  for s = n - 1 downto 0 do
    repr.(cls.(s)) <- s
  done;
  {
    man;
    width = a.width;
    trans = Array.init ncls (fun c -> mapped.(repr.(c)));
    accept = Array.init ncls (fun c -> a.accept.(repr.(c)));
    initial = cls.(a.initial);
  }

(* ------------------------------------------------------------------ *)
(* Emptiness and witnesses                                             *)
(* ------------------------------------------------------------------ *)

(** Shortest accepted word, if any — BFS where a state's successor set
    is its row's leaf list and the letter reaching a given successor is
    read off a satisfying BDD path (don't-care tracks become 0). *)
let witness (a : t) : int list option =
  let n = num_states a in
  let pred = Array.make n None in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(a.initial) <- true;
  Queue.add a.initial queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    Deadline.check ();
    let s = Queue.pop queue in
    if a.accept.(s) then found := Some s
    else
      List.iter
        (fun t ->
          if not seen.(t) then begin
            seen.(t) <- true;
            let letter =
              match Bdd.path_to_leaf a.trans.(s) (fun v -> v = t) with
              | Some (_, decisions) ->
                List.fold_left
                  (fun l (v, b) -> if b then l lor (1 lsl v) else l)
                  0 decisions
              | None -> assert false (* t is a leaf of the row *)
            in
            pred.(t) <- Some (s, letter);
            Queue.add t queue
          end)
        (Bdd.leaves a.man a.trans.(s))
  done;
  match !found with
  | None -> None
  | Some s ->
    let rec build s acc =
      match pred.(s) with None -> acc | Some (p, l) -> build p (l :: acc)
    in
    Some (build s [])

let is_empty (a : t) : bool = witness a = None
let is_universal (a : t) : bool = is_empty (complement a)

(* ------------------------------------------------------------------ *)
(* Dense interop (differential testing)                                *)
(* ------------------------------------------------------------------ *)

(** Lift a dense automaton (small widths only: samples all letters). *)
let of_dense (man : Bdd.manager) (d : Dfa.t) : t =
  make ~man ~width:d.Dfa.width
    ~n:(Array.length d.Dfa.trans)
    ~initial:d.Dfa.initial
    ~accept:(fun s -> d.Dfa.accept.(s))
    (fun s l -> d.Dfa.trans.(s).(l))

(** Flatten to a dense automaton (small widths only). *)
let to_dense (a : t) : Dfa.t =
  Dfa.make ~width:a.width ~n:(num_states a) ~initial:a.initial
    ~accept:(fun s -> a.accept.(s))
    (fun s l -> step a s l)
