(** CDCL SAT solver.

    The boolean engine behind the lazy-SMT core in [lib/smt] and the
    Boolean-heap shape analysis.  Classic architecture: two-watched-literal
    propagation, first-UIP conflict analysis with clause learning,
    VSIDS-style variable activities, phase saving and geometric restarts.

    Variables are positive integers [1..n]; a literal is [+v] or [-v]
    (DIMACS convention).  Assumptions are implemented as forced decisions
    at the bottom of the search tree, re-applied after every backjump. *)

type result =
  | Sat of bool array (* indexed by variable; entry 0 unused *)
  | Unsat

exception Bad_literal of int

(* Literal encoding: code 2v for +v, 2v+1 for -v. *)
let enc l =
  if l = 0 then raise (Bad_literal 0)
  else if l > 0 then 2 * l
  else (2 * -l) + 1

let neg_code c = c lxor 1
let var_of_code c = c / 2
let code_is_pos c = c land 1 = 0

type clause = { lits : int array; mutable activity : float }

type t = {
  mutable nvars : int;
  mutable n_clauses : int;
  mutable learnts : clause list;
  mutable n_learnts : int; (* |learnts|, maintained so the stat is O(1) *)
  mutable watches : clause list array; (* per literal code *)
  mutable assign : int array; (* 1 true, -1 false, 0 unassigned; per var *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable phase : bool array;
  mutable trail : int array; (* literal codes in assignment order *)
  mutable trail_len : int;
  mutable trail_lim : int array; (* trail length at each decision *)
  mutable n_decisions : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool; (* false once a top-level conflict was found *)
}

let create () =
  {
    nvars = 0;
    n_clauses = 0;
    learnts = [];
    n_learnts = 0;
    watches = Array.make 16 [];
    assign = Array.make 8 0;
    level = Array.make 8 0;
    reason = Array.make 8 None;
    activity = Array.make 8 0.0;
    phase = Array.make 8 false;
    trail = Array.make 8 0;
    trail_len = 0;
    trail_lim = Array.make 8 0;
    n_decisions = 0;
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
  }

let grow_array a n default =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let ensure_var s v =
  if v > s.nvars then begin
    s.nvars <- v;
    s.assign <- grow_array s.assign (v + 1) 0;
    s.level <- grow_array s.level (v + 1) 0;
    s.reason <- grow_array s.reason (v + 1) None;
    s.activity <- grow_array s.activity (v + 1) 0.0;
    s.phase <- grow_array s.phase (v + 1) false;
    s.trail <- grow_array s.trail (v + 1) 0;
    s.trail_lim <- grow_array s.trail_lim (v + 1) 0;
    s.watches <- grow_array s.watches ((2 * v) + 2) []
  end

let value_code s c =
  let v = s.assign.(var_of_code c) in
  if v = 0 then 0 else if code_is_pos c then v else -v

let decision_level s = s.n_decisions

(* ------------------------------------------------------------------ *)
(* Trail                                                               *)
(* ------------------------------------------------------------------ *)

let enqueue s code reason =
  let v = var_of_code code in
  s.assign.(v) <- (if code_is_pos code then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.phase.(v) <- code_is_pos code;
  s.trail.(s.trail_len) <- code;
  s.trail_len <- s.trail_len + 1

let new_decision_level s =
  s.trail_lim.(s.n_decisions) <- s.trail_len;
  s.n_decisions <- s.n_decisions + 1

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let target = s.trail_lim.(lvl) in
    for i = s.trail_len - 1 downto target do
      let v = var_of_code s.trail.(i) in
      s.assign.(v) <- 0;
      s.reason.(v) <- None
    done;
    s.trail_len <- target;
    s.qhead <- target;
    s.n_decisions <- lvl
  end

(* ------------------------------------------------------------------ *)
(* Watched-literal propagation                                         *)
(* ------------------------------------------------------------------ *)

let watch s code cl = s.watches.(code) <- cl :: s.watches.(code)

(* Returns the conflicting clause, if any. *)
let propagate s : clause option =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_len do
    let code = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let falsified = neg_code code in
    let old_watchers = s.watches.(falsified) in
    s.watches.(falsified) <- [];
    let rec process = function
      | [] -> ()
      | cl :: rest ->
        if cl.lits.(0) = falsified then begin
          cl.lits.(0) <- cl.lits.(1);
          cl.lits.(1) <- falsified
        end;
        if value_code s cl.lits.(0) = 1 then begin
          watch s falsified cl;
          process rest
        end
        else begin
          let n = Array.length cl.lits in
          let found = ref false in
          let i = ref 2 in
          while (not !found) && !i < n do
            if value_code s cl.lits.(!i) <> -1 then begin
              cl.lits.(1) <- cl.lits.(!i);
              cl.lits.(!i) <- falsified;
              watch s cl.lits.(1) cl;
              found := true
            end;
            incr i
          done;
          if !found then process rest
          else begin
            watch s falsified cl;
            if value_code s cl.lits.(0) = -1 then begin
              conflict := Some cl;
              s.qhead <- s.trail_len;
              List.iter (fun c -> watch s falsified c) rest
            end
            else begin
              enqueue s cl.lits.(0) (Some cl);
              process rest
            end
          end
        end
    in
    process old_watchers
  done;
  !conflict

(* ------------------------------------------------------------------ *)
(* Activities                                                          *)
(* ------------------------------------------------------------------ *)

let var_decay = 0.95

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay_activities s = s.var_inc <- s.var_inc /. var_decay

(* ------------------------------------------------------------------ *)
(* Conflict analysis (first UIP)                                       *)
(* ------------------------------------------------------------------ *)

let analyze s (confl : clause) : int array * int =
  let seen = Hashtbl.create 64 in
  let learnt = ref [] in
  let counter = ref 0 in
  let cur_level = decision_level s in
  let p = ref (-1) in
  let reason_clause = ref (Some confl) in
  let index = ref (s.trail_len - 1) in
  let continue = ref true in
  while !continue do
    (match !reason_clause with
    | Some cl ->
      Array.iter
        (fun q ->
          if q <> !p then begin
            let v = var_of_code q in
            if (not (Hashtbl.mem seen v)) && s.level.(v) > 0 then begin
              Hashtbl.add seen v ();
              bump_var s v;
              if s.level.(v) >= cur_level then incr counter
              else learnt := q :: !learnt
            end
          end)
        cl.lits
    | None -> ());
    let rec next_seen i =
      if Hashtbl.mem seen (var_of_code s.trail.(i)) then i
      else next_seen (i - 1)
    in
    index := next_seen !index;
    let code = s.trail.(!index) in
    let v = var_of_code code in
    p := code;
    reason_clause := s.reason.(v);
    Hashtbl.remove seen v;
    decr counter;
    index := !index - 1;
    if !counter <= 0 then continue := false
  done;
  let uip = neg_code !p in
  let lits = Array.of_list (uip :: !learnt) in
  let blevel =
    if Array.length lits = 1 then 0
    else begin
      let max_i = ref 1 in
      for i = 2 to Array.length lits - 1 do
        if s.level.(var_of_code lits.(i)) > s.level.(var_of_code lits.(!max_i))
        then max_i := i
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!max_i);
      lits.(!max_i) <- tmp;
      s.level.(var_of_code lits.(1))
    end
  in
  (lits, blevel)

(* ------------------------------------------------------------------ *)
(* Clause addition                                                     *)
(* ------------------------------------------------------------------ *)

(** Add a clause (list of DIMACS literals).  Returns [false] when the
    clause set becomes unsatisfiable at level 0. *)
let add_clause s (lits : int list) : bool =
  if not s.ok then false
  else begin
    List.iter (fun l -> ensure_var s (abs l)) lits;
    cancel_until s 0;
    let codes = List.sort_uniq compare (List.map enc lits) in
    let tautology =
      List.exists (fun c -> List.mem (neg_code c) codes) codes
      || List.exists (fun c -> value_code s c = 1) codes
    in
    if tautology then true
    else begin
      let codes = List.filter (fun c -> value_code s c <> -1) codes in
      match codes with
      | [] ->
        s.ok <- false;
        false
      | [ c ] ->
        enqueue s c None;
        (match propagate s with
        | Some _ ->
          s.ok <- false;
          false
        | None -> true)
      | c0 :: c1 :: _ ->
        let cl = { lits = Array.of_list codes; activity = 0.0 } in
        s.n_clauses <- s.n_clauses + 1;
        watch s c0 cl;
        watch s c1 cl;
        true
    end
  end

let learn_clause s (lits : int array) =
  if Array.length lits = 1 then enqueue s lits.(0) None
  else begin
    let cl = { lits; activity = s.cla_inc } in
    s.learnts <- cl :: s.learnts;
    s.n_learnts <- s.n_learnts + 1;
    watch s lits.(0) cl;
    watch s lits.(1) cl;
    enqueue s lits.(0) (Some cl)
  end

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let pick_branch_var s =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to s.nvars do
    if s.assign.(v) = 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

let model s =
  let m = Array.make (s.nvars + 1) false in
  for v = 1 to s.nvars do
    m.(v) <- s.assign.(v) = 1
  done;
  m

(** Solve the current clause set under optional [assumptions]. *)
let solve ?(assumptions = []) (s : t) : result =
  if not s.ok then Unsat
  else begin
    List.iter (fun l -> ensure_var s (abs l)) assumptions;
    cancel_until s 0;
    let assumption_codes = Array.of_list (List.map enc assumptions) in
    let n_assumptions = Array.length assumption_codes in
    let conflicts = ref 0 in
    let restart_limit = ref 100 in
    let result = ref None in
    while !result = None do
      (* cooperative cancellation: lets a dispatcher budget or race this
         solver without abandoning the thread *)
      Deadline.check ();
      match propagate s with
      | Some confl ->
        if decision_level s = 0 then begin
          (* a conflict with no decisions stands whatever happens next:
             without this flag a later [solve] would re-search a state
             whose falsified clause already spent its watches and could
             answer Sat *)
          s.ok <- false;
          result := Some Unsat
        end
        else begin
          incr conflicts;
          let lits, blevel = analyze s confl in
          cancel_until s blevel;
          learn_clause s lits;
          decay_activities s
        end
      | None ->
        if !conflicts >= !restart_limit then begin
          restart_limit := !restart_limit * 2;
          cancel_until s 0
        end
        else begin
          let dl = decision_level s in
          if dl < n_assumptions then begin
            (* apply the next assumption as a decision *)
            let code = assumption_codes.(dl) in
            match value_code s code with
            | 1 -> new_decision_level s (* satisfied: dummy level *)
            | -1 -> result := Some Unsat
            | _ ->
              new_decision_level s;
              enqueue s code None
          end
          else begin
            let v = pick_branch_var s in
            if v = 0 then result := Some (Sat (model s))
            else begin
              new_decision_level s;
              let code = if s.phase.(v) then 2 * v else (2 * v) + 1 in
              enqueue s code None
            end
          end
        end
    done;
    cancel_until s 0;
    match !result with Some r -> r | None -> assert false
  end

(* ------------------------------------------------------------------ *)
(* One-shot interface                                                  *)
(* ------------------------------------------------------------------ *)

(** Solve a clause list from scratch. *)
let solve_clauses ?(assumptions = []) (clauses : int list list) : result =
  let s = create () in
  let ok = List.for_all (fun c -> add_clause s c) clauses in
  if not ok then Unsat else solve ~assumptions s

(** Truth of literal [l] in a model returned by {!solve}. *)
let lit_true (m : bool array) l = if l > 0 then m.(l) else not m.(-l)

let num_vars s = s.nvars
let num_learnts s = s.n_learnts
