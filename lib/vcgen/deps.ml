(** Digesting a method's recorded dependencies.

    {!Gcl.Desugar} records, for every method task, which {e other}
    program elements its verification conditions read
    ({!Gcl.Desugar.dep}).  This module turns each recorded dependency
    into a digest of the element {e as the dependent method sees it}, so
    incremental re-verification can re-digest against an edited program
    and re-verify exactly the methods whose view changed.

    Digests are home-sensitive: a specvar definition only enters the
    digest when the dependent method lives in the declaring class,
    mirroring the desugarer's information-hiding rule — so editing a
    private vardef re-verifies the declaring class only, while clients
    keep their stored verdicts.

    A few desugaring inputs are genuinely global — the globalized-member
    set (computed from every static method body in the program), the set
    of class names, and the background well-formed-heap axioms over all
    static object fields.  Those fold into one {!context_digest}; when it
    changes, everything is invalidated.  Corpus cases in
    [test/incremental/] pin down that this context is coarse only when
    it must be. *)

open Javaparser

let md5 (s : string) : string = Digest.to_hex (Digest.string s)

let absent (what : string) : string = md5 ("absent/" ^ what)

(** Digest of one dependency of a method whose enclosing class is
    [home], against [prog].  Total: a dangling dependency (class or
    member deleted) digests to a distinguished "absent" value, which
    correctly differs from every present digest. *)
let dep_digest (prog : Ast.program) ~(home : string) (d : Gcl.Desugar.dep) :
    string =
  let key = Gcl.Desugar.dep_key d in
  match d with
  | Gcl.Desugar.Dep_class c -> (
    match Ast.find_class prog c with Some _ -> md5 ("class/" ^ c) | None -> absent key)
  | Gcl.Desugar.Dep_inv c -> (
    match Ast.find_class prog c with
    | Some cls -> Astdiff.invariants_digest cls
    | None -> absent key)
  | Gcl.Desugar.Dep_fields c -> Astdiff.fields_digest prog c
  | Gcl.Desugar.Dep_specvar (c, v) -> (
    match Ast.find_class prog c with
    | None -> absent key
    | Some cls -> (
      match Ast.find_specvar cls v with
      | Some sv -> Astdiff.specvar_digest ~with_def:(c = home) sv
      | None -> absent key))
  | Gcl.Desugar.Dep_contract (c, m) -> (
    match Ast.find_class prog c with
    | None -> absent key
    | Some cls -> (
      match Ast.find_method cls m with
      | Some md -> Astdiff.contract_digest c md
      | None -> absent key))
  | Gcl.Desugar.Dep_ctor c -> (
    (* which constructor [new c()] runs, and its caller-visible view *)
    match Ast.find_class prog c with
    | None -> absent key
    | Some cls -> (
      match
        List.find_opt (fun m -> m.Ast.m_is_constructor) cls.Ast.c_methods
      with
      | Some ctor -> Astdiff.contract_digest c ctor
      | None -> md5 ("noctor/" ^ c)))
  | Gcl.Desugar.Dep_resolve (c, x) -> (
    (* how identifier [x] resolves inside class [c]: specvar beats
       field beats free logical variable, and the resolved declaration
       itself is part of the view *)
    match Ast.find_class prog c with
    | None -> absent key
    | Some cls -> (
      match Ast.find_specvar cls x with
      | Some sv ->
        md5 ("rs-sv/" ^ Astdiff.specvar_digest ~with_def:(c = home) sv)
      | None -> (
        match Ast.find_field cls x with
        | Some f -> md5 ("rs-fld/" ^ Astdiff.field_digest f)
        | None -> md5 ("rs-free/" ^ c ^ "." ^ x))))
  | Gcl.Desugar.Dep_unq x -> (
    (* unqualified [recv..x]: first class (in program order) declaring a
       field [x], else first declaring a specvar [x] *)
    match
      List.find_opt (fun c -> Ast.find_field c x <> None) prog
    with
    | Some c ->
      md5
        ("unq-fld/" ^ c.Ast.c_name ^ "/"
        ^ Astdiff.field_digest (Option.get (Ast.find_field c x)))
    | None -> (
      match
        List.find_opt (fun c -> Ast.find_specvar c x <> None) prog
      with
      | Some c ->
        md5
          ("unq-sv/" ^ c.Ast.c_name ^ "/"
          ^ Astdiff.specvar_digest
              ~with_def:(c.Ast.c_name = home)
              (Option.get (Ast.find_specvar c x)))
      | None -> absent key))

(** Digest of the desugaring inputs shared by {e every} method task:
    the globalized-member set (recomputed from all static method bodies
    — editing a static method can globalize a member and change how the
    whole program desugars), the ordered list of class names, and the
    inputs of the background well-formed-heap axioms (each static or
    globalized object-typed field of any class).  A change here
    invalidates all stored verdicts. *)
let context_digest (prog : Ast.program) : string =
  let b = Buffer.create 256 in
  let globalized = Gcl.Desugar.compute_globalized prog in
  Buffer.add_string b "ctx/g";
  List.iter
    (fun (c, x) ->
      Buffer.add_string b c;
      Buffer.add_char b '.';
      Buffer.add_string b x;
      Buffer.add_char b ';')
    (List.sort compare globalized);
  Buffer.add_string b "/c";
  List.iter
    (fun (c : Ast.class_decl) ->
      Buffer.add_string b c.Ast.c_name;
      Buffer.add_char b ';')
    prog;
  Buffer.add_string b "/bg";
  List.iter
    (fun (c : Ast.class_decl) ->
      List.iter
        (fun (f : Ast.field_decl) ->
          match f.Ast.f_type with
          | (Ast.Tclass _ | Ast.Tarray _)
            when f.Ast.f_static
                 || List.mem (c.Ast.c_name, f.Ast.f_name) globalized ->
            Buffer.add_string b c.Ast.c_name;
            Buffer.add_char b '.';
            Buffer.add_string b f.Ast.f_name;
            Buffer.add_char b ':';
            Buffer.add_string b (Ast.jtype_to_string f.Ast.f_type);
            Buffer.add_char b ';'
          | _ -> ())
        c.Ast.c_fields)
    prog;
  md5 (Buffer.contents b)

(** The persisted form of a task's dependency set: sorted
    [(key, digest)] pairs.  Keys are the stable strings of
    {!Gcl.Desugar.dep_key}; re-digesting a stored key against an edited
    program goes through {!digest_of_key}. *)
let task_deps (prog : Ast.program) ~(home : string)
    (task : Gcl.Desugar.method_task) : (string * string) list =
  List.map
    (fun d -> (Gcl.Desugar.dep_key d, dep_digest prog ~home d))
    task.Gcl.Desugar.task_deps

(** Re-digest a stored dependency key against [prog].  [None] if the key
    does not parse (a corrupt or future-format store entry — callers
    treat that as "invalidated"). *)
let digest_of_key (prog : Ast.program) ~(home : string) (key : string) :
    string option =
  Option.map (dep_digest prog ~home) (Gcl.Desugar.dep_of_key key)

(** Home class of a qualified method name ["C.m"]. *)
let home_of_method (name : string) : string =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name
