(** Verification-condition generation by weakest preconditions.

    Each desugared method becomes one formula [wp(body, True)]; assertions
    inside the command contribute labeled conjuncts.  Havoc is handled by
    fresh renaming rather than universal quantification, so obligations
    stay quantifier-light (free variables of an obligation are implicitly
    universal).  Loops use the standard invariant cut:

    {v  wp(loop I c b, Q) = I  /\  [ I -> wp(prelude,
                                       (c -> wp(b, I)) /\ (~c -> Q)) ]'  v}

    where [(.)'] renames the loop-modified variables to fresh constants
    ("an arbitrary iteration").  Missing invariants default to [True]
    unless an inference engine (the symbolic shape analysis of [lib/shape])
    supplies one — and anything supplied is {e verified}, never trusted,
    exactly as Section 2.4 requires. *)

(* Dependency digests for incremental re-verification live in their own
   compilation unit; re-export it under the library's root module. *)
module Deps = Deps

open Logic

(* Labels ride along as applications of a reserved head variable, so no
   formula constructor is needed; {!strip_labels} removes them before
   provers see the formula. *)
let label_prefix = "$label$"

let mk_label (l : string) (f : Form.t) : Form.t =
  Form.App (Form.Var (label_prefix ^ l), [ f ])

let label_of (f : Form.t) : (string * Form.t) option =
  match f with
  | Form.App (Form.Var v, [ g ])
    when String.length v > String.length label_prefix
         && String.sub v 0 (String.length label_prefix) = label_prefix ->
    Some
      ( String.sub v (String.length label_prefix)
          (String.length v - String.length label_prefix),
        g )
  | _ -> None

let rec strip_labels (f : Form.t) : Form.t =
  Form.map_bottom_up
    (fun g -> match label_of g with Some (_, inner) -> strip_labels inner | None -> g)
    f

(* ------------------------------------------------------------------ *)
(* Weakest preconditions                                               *)
(* ------------------------------------------------------------------ *)

type options = {
  infer_invariant : Gcl.Cmd.loop -> Form.t option;
      (** called for loops without an annotation *)
}

let default_options = { infer_invariant = (fun _ -> None) }

let rec wp (opts : options) (c : Gcl.Cmd.command) (q : Form.t) : Form.t =
  match c with
  | Gcl.Cmd.Skip -> q
  | Gcl.Cmd.Assume f -> Form.mk_impl f q
  | Gcl.Cmd.Assert (f, lbl) -> Form.mk_and [ mk_label lbl f; q ]
  | Gcl.Cmd.Assign (x, e) -> Form.subst1_shared x e q
  | Gcl.Cmd.Havoc xs ->
    let ren = List.map (fun x -> (x, Form.Var (Form.fresh_name x))) xs in
    Form.subst_list_shared ren q
  | Gcl.Cmd.Seq cs -> List.fold_right (fun c q -> wp opts c q) cs q
  | Gcl.Cmd.Choice (a, b) -> Form.mk_and [ wp opts a q; wp opts b q ]
  | Gcl.Cmd.Loop l ->
    let invariant =
      match l.Gcl.Cmd.loop_invariant with
      | Some i -> i
      | None -> (
        match opts.infer_invariant l with Some i -> i | None -> Form.mk_true)
    in
    (* label each invariant conjunct with its own text so that the driver
       can identify (and weaken) a failing inferred conjunct *)
    let labeled_conjuncts stage =
      Form.mk_and
        (List.map
           (fun c ->
             mk_label
               (Printf.sprintf "loop invariant %s :: %s" stage
                  (Pprint.to_string c))
               c)
           (Form.conjuncts invariant))
    in
    let body_check =
      Form.mk_impl invariant
        (wp opts l.Gcl.Cmd.loop_prelude
           (Form.mk_and
              [ Form.mk_impl l.Gcl.Cmd.loop_cond
                  (wp opts l.Gcl.Cmd.loop_body (labeled_conjuncts "preserved"));
                Form.mk_impl (Form.mk_not l.Gcl.Cmd.loop_cond) q;
              ]))
    in
    let modified =
      Form.Sset.elements
        (Form.Sset.union
           (Gcl.Cmd.modified_vars l.Gcl.Cmd.loop_prelude)
           (Gcl.Cmd.modified_vars l.Gcl.Cmd.loop_body))
    in
    let ren = List.map (fun x -> (x, Form.Var (Form.fresh_name x))) modified in
    let arbitrary_iteration = Form.subst_list_shared ren body_check in
    Form.mk_and [ labeled_conjuncts "initially"; arbitrary_iteration ]

(** The full verification condition of a command. *)
let vc ?(opts = default_options) (c : Gcl.Cmd.command) : Form.t =
  wp opts c Form.mk_true

(* ------------------------------------------------------------------ *)
(* Goal decomposition                                                  *)
(* ------------------------------------------------------------------ *)

(** Split a VC into separate labeled sequents: conjunctions split,
    implications accumulate hypotheses — the "simple goal decomposition
    technique" of Section 3. *)
let split_vc ?(name = "vc") (f : Form.t) : Sequent.t list =
  let rec go (hyps : Form.t list) (label : string) (f : Form.t) acc =
    match label_of f with
    | Some (l, inner) -> go hyps l inner acc
    | None -> (
      match Form.strip_types f with
      | Form.App (Form.Const Form.And, fs) ->
        List.fold_left (fun acc g -> go hyps label g acc) acc fs
      | Form.App (Form.Const Form.Impl, [ a; b ]) ->
        go (hyps @ List.map strip_labels (Form.conjuncts a)) label b acc
      | g when Form.is_true g -> acc
      | g ->
        { Sequent.name = name ^ ": " ^ label;
          hyps;
          goal = strip_labels g }
        :: acc)
  in
  List.rev (go [] "goal" f [])

(** End-to-end: desugared method task to labeled obligations. *)
let method_obligations ?(opts = default_options)
    (task : Gcl.Desugar.method_task) : Sequent.t list =
  let name = task.Gcl.Desugar.task_name in
  let f =
    Trace.with_span ~cat:"vcgen"
      ~args:(fun () -> [ ("method", Trace.S name) ])
      "wp"
      (fun () -> vc ~opts task.Gcl.Desugar.task_command)
  in
  let obligations =
    Trace.with_span ~cat:"vcgen"
      ~args:(fun () -> [ ("method", Trace.S name) ])
      "split"
      (fun () -> split_vc ~name f)
  in
  Trace.add "vcgen.obligations" (List.length obligations);
  obligations
