(** Term indexing for the saturation engine.

    Two structures over the clause set of one refutation:

    - a {e discrimination tree} per (sign, predicate) pair over the active
      clauses' literals.  A literal's argument list is flattened to its
      pre-order symbol spine (variables flatten to a wildcard) and stored
      as a path; retrieval walks the query's spine, branching into the
      wildcard edge at every position and skipping whole stored subterms
      under query variables.  The result is a superset of the truly
      unifiable complements — the caller still unifies — fetched without
      scanning every active literal;
    - the same trees run full-clause subsumption through the two other
      classic retrieval modes.  Forward ("is this clause subsumed by an
      active one?") retrieves {e generalizations}: every active clause
      designates one watch literal, filed in a watch-tree; a subsumer's
      watch literal necessarily generalizes some literal of the subsumee,
      so querying each literal of the new clause covers all candidates.
      Backward ("which live clauses does this one subsume?") retrieves
      {e instances} from a tree holding every literal of every registered
      clause — passive included, so subsumed queued clauses are retired
      before they are ever picked.

    Entries are retired lazily: {!retire} flips the state and retrieval
    filters on it, so deletion costs O(1) and no tree surgery.  Stats are
    accumulated locally and {!flush_stats} publishes them as
    [fol.index.*] / [fol.subsume.*] trace counters once per refutation,
    keeping {!Trace} calls out of the inner loop. *)

open Folterm
open Folclause

type cstate = Passive | Active | Dead

type entry = {
  id : int;
  cl : clause;
  cl_r : clause; (* [cl] renamed apart once, reused by every subsumption test *)
  weight : int; (* clause_size: the passive queue's priority *)
  nlits : int; (* List.length: the subsumption length guard *)
  keys : (bool * string) list; (* distinct (sign, pred), sorted *)
  mutable state : cstate;
}

(* ------------------------------------------------------------------ *)
(* Discrimination tree                                                 *)
(* ------------------------------------------------------------------ *)

type sym = SVar | SFn of string * int

type node = {
  mutable leaf : (entry * lit) list;
      (* literals whose flattened spine ends here *)
  succ : (sym, node) Hashtbl.t;
}

let new_node () = { leaf = []; succ = Hashtbl.create 4 }

let insert_path (root : node) (args : term list) (v : entry * lit) : unit =
  let rec go nd = function
    | [] -> nd.leaf <- v :: nd.leaf
    | t :: rest ->
      let sym, rest =
        match t with
        | V _ -> (SVar, rest)
        | Fn (f, fargs) -> (SFn (f, List.length fargs), fargs @ rest)
      in
      let nd' =
        match Hashtbl.find_opt nd.succ sym with
        | Some nd' -> nd'
        | None ->
          let fresh = new_node () in
          Hashtbl.add nd.succ sym fresh;
          fresh
      in
      go nd' rest
  in
  go root args

(* visit every node reachable by skipping [n] whole stored terms *)
let rec skip (n : int) (nd : node) (k : node -> unit) : unit =
  if n = 0 then k nd
  else
    Hashtbl.iter
      (fun sym nd' ->
        match sym with
        | SVar -> skip (n - 1) nd' k
        | SFn (_, arity) -> skip (n - 1 + arity) nd' k)
      nd.succ

(* the three classic discrimination-tree retrieval modes: candidates
   that may unify with the query, that may be instances of it, and that
   may generalize it.  All three overapproximate (the tree is blind to
   repeated variables); callers confirm with unification or matching. *)
type mode = Unifiable | Instances | Generalizations

let retrieve_path (mode : mode) (root : node) (args : term list) :
    (entry * lit) list =
  let out = ref [] in
  let rec go nd = function
    | [] ->
      (if List.exists (fun (e, _) -> e.state = Dead) nd.leaf then
         nd.leaf <- List.filter (fun (e, _) -> e.state <> Dead) nd.leaf);
      List.iter (fun v -> out := v :: !out) nd.leaf
    | V _ :: rest -> (
      match mode with
      | Unifiable | Instances ->
        (* a query variable admits any stored subterm *)
        skip 1 nd (fun nd' -> go nd' rest)
      | Generalizations -> (
        (* only a stored variable generalizes a query variable *)
        match Hashtbl.find_opt nd.succ SVar with
        | Some nd' -> go nd' rest
        | None -> ()))
    | Fn (f, fargs) :: rest ->
      (match mode with
      | Instances -> () (* a stored variable is not an instance *)
      | Unifiable | Generalizations -> (
        match Hashtbl.find_opt nd.succ SVar with
        | Some nd' -> go nd' rest
        | None -> ()));
      (match Hashtbl.find_opt nd.succ (SFn (f, List.length fargs)) with
      | Some nd' -> go nd' (fargs @ rest)
      | None -> ())
  in
  go root args;
  !out

(* ------------------------------------------------------------------ *)
(* The index                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable retrieved : int; (* candidates returned by the trees *)
  mutable scanned : int; (* active literals a naive scan would have tried *)
  mutable fwd : int; (* clauses discarded by forward subsumption *)
  mutable bwd : int; (* clauses retired by backward subsumption *)
  mutable dedup : int; (* normalized-clause dedup hits *)
}

type t = {
  trees : (bool * string, node) Hashtbl.t;
      (* active literals: resolution-partner retrieval (Unifiable) *)
  watch_trees : (bool * string, node) Hashtbl.t;
      (* one designated literal per active clause: forward-subsumption
         candidate retrieval (Generalizations) *)
  all_trees : (bool * string, node) Hashtbl.t;
      (* every literal of every registered clause, passive included:
         backward-subsumption candidate retrieval (Instances) *)
  units : (bool * string, (entry * lit) list ref) Hashtbl.t;
      (* active unit clauses only, literal pre-renamed apart: the cheap
         generation-time filter *)
  mutable next_id : int;
  mutable active_lits : int;
  stats : stats;
}

let create () : t =
  { trees = Hashtbl.create 32;
    watch_trees = Hashtbl.create 32;
    all_trees = Hashtbl.create 32;
    units = Hashtbl.create 32;
    next_id = 0;
    active_lits = 0;
    stats = { retrieved = 0; scanned = 0; fwd = 0; bwd = 0; dedup = 0 };
  }

let lit_key (l : lit) = (l.sign, l.pred)

let clause_keys (c : clause) : (bool * string) list =
  List.sort_uniq compare (List.map lit_key c)

(* sorted-list inclusion *)
let rec key_subset xs ys =
  match xs, ys with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c = 0 then key_subset xs' ys'
    else if c > 0 then key_subset xs ys'
    else false

let tree_of family key : node =
  match Hashtbl.find_opt family key with
  | Some nd -> nd
  | None ->
    let nd = new_node () in
    Hashtbl.add family key nd;
    nd

let register (t : t) (c : clause) : entry =
  let e =
    { id = t.next_id;
      cl = c;
      cl_r = rename_clause "!" c;
      weight = clause_size c;
      nlits = List.length c;
      keys = clause_keys c;
      state = Passive;
    }
  in
  t.next_id <- t.next_id + 1;
  List.iter
    (fun l -> insert_path (tree_of t.all_trees (lit_key l)) l.args (e, l))
    e.cl;
  e

(* the literal a clause is filed under for subsumption retrieval: any
   literal is sound (a subsumer maps each of its own literals into the
   subsumee), so prefer a discriminating predicate over the crowded
   equality and sort-guard trees *)
let pilot_lit (c : clause) : lit option =
  match c with
  | [] -> None
  | l0 :: rest ->
    let score l = if l.pred = "=" then 1 else if l.pred = "obj" then 2 else 0 in
    Some
      (List.fold_left
         (fun best l -> if score l < score best then l else best)
         l0 rest)

let activate (t : t) (e : entry) : unit =
  e.state <- Active;
  List.iter
    (fun l -> insert_path (tree_of t.trees (lit_key l)) l.args (e, l))
    e.cl;
  t.active_lits <- t.active_lits + List.length e.cl;
  (match (e.cl, e.cl_r) with
  | [ l ], [ lr ] ->
    let cell =
      match Hashtbl.find_opt t.units (lit_key l) with
      | Some cell -> cell
      | None ->
        let cell = ref [] in
        Hashtbl.add t.units (lit_key l) cell;
        cell
    in
    cell := (e, lr) :: !cell
  | _ -> ());
  match pilot_lit e.cl with
  | Some l -> insert_path (tree_of t.watch_trees (lit_key l)) l.args (e, l)
  | None -> ()

let retire (t : t) (e : entry) : unit =
  if e.state = Active then t.active_lits <- t.active_lits - List.length e.cl;
  e.state <- Dead

let note_dedup (t : t) : unit = t.stats.dedup <- t.stats.dedup + 1

(** Unification candidates among the active literals complementary to
    [l]: a superset of the truly unifiable partners (the engine still
    unifies against a renamed copy). *)
let retrieve_partners (t : t) (l : lit) : (entry * lit) list =
  t.stats.scanned <- t.stats.scanned + t.active_lits;
  match Hashtbl.find_opt t.trees (not l.sign, l.pred) with
  | None -> []
  | Some root ->
    let cands =
      List.filter
        (fun (e, _) -> e.state = Active)
        (retrieve_path Unifiable root l.args)
    in
    t.stats.retrieved <- t.stats.retrieved + List.length cands;
    cands

(* does the pre-renamed unit literal [u] match [l]? *)
let unit_matches (u : lit) (l : lit) : bool =
  match List.fold_left2 match_term [] u.args l.args with
  | _ -> true
  | exception (No_unifier | Invalid_argument _) -> false

(** An active {e unit} clause subsuming [c], if any: the cheap filter the
    engine runs on every generated clause (one bucket lookup and a
    backtracking-free match per candidate).  The full check,
    {!forward_subsumed}, runs once per activation.  Dead entries are
    compacted out of a bucket whenever a scan walks past them. *)
let unit_subsumed (t : t) (c : clause) : entry option =
  let hit =
    List.find_map
      (fun l ->
        match Hashtbl.find_opt t.units (lit_key l) with
        | None -> None
        | Some cell ->
          (if List.exists (fun (e, _) -> e.state = Dead) !cell then
             cell := List.filter (fun (e, _) -> e.state <> Dead) !cell);
          List.find_map
            (fun (e, u) ->
              if e.state = Active && unit_matches u l then Some e else None)
            !cell)
      c
  in
  (match hit with
  | Some _ -> t.stats.fwd <- t.stats.fwd + 1
  | None -> ());
  hit

(** An active clause subsuming [c], if any: every literal of [c] asks
    the watch-trees for stored pilot literals generalizing it — the
    subsumer, wherever it maps its pilot, is found by that literal. *)
let forward_subsumed (t : t) (c : clause) : entry option =
  let keys = clause_keys c in
  let n = List.length c in
  let check e =
    e.state = Active && e.nlits <= n
    && key_subset e.keys keys
    && subsumes_prepared e.cl_r c
  in
  let rec scan = function
    | [] -> None
    | l :: rest -> (
      match Hashtbl.find_opt t.watch_trees (lit_key l) with
      | None -> scan rest
      | Some root -> (
        match
          List.find_opt
            (fun (e, _) -> check e)
            (retrieve_path Generalizations root l.args)
        with
        | Some (e, _) -> Some e
        | None -> scan rest))
  in
  match scan c with
  | Some e ->
    t.stats.fwd <- t.stats.fwd + 1;
    Some e
  | None -> None

(** Every live clause other than [e] itself that [e]'s clause subsumes
    (active {e and passive}; the caller retires them).  One literal of
    [e] asks the all-clauses trees for stored instances; the owners of
    those literals are the only clauses [e] can subsume. *)
let backward_subsumed (t : t) (e : entry) : entry list =
  match pilot_lit e.cl with
  | None -> []
  | Some lp -> (
    match Hashtbl.find_opt t.all_trees (lit_key lp) with
    | None -> []
    | Some root ->
      let seen = Hashtbl.create 16 in
      let subsumed =
        List.filter
          (fun (c, _) ->
            (not (Hashtbl.mem seen c.id))
            && begin
                 Hashtbl.add seen c.id ();
                 c.id <> e.id && c.state <> Dead && e.nlits <= c.nlits
                 && key_subset e.keys c.keys
                 && subsumes_prepared e.cl_r c.cl
               end)
          (retrieve_path Instances root lp.args)
      in
      t.stats.bwd <- t.stats.bwd + List.length subsumed;
      List.map fst subsumed)

(** Publish the refutation's counters; one [Trace.add] per counter, so the
    tracing fast path never sits in the given-clause loop. *)
let flush_stats (t : t) : unit =
  let s = t.stats in
  Trace.add "fol.index.retrieved" s.retrieved;
  Trace.add "fol.index.scanned" s.scanned;
  Trace.add "fol.subsume.forward" s.fwd;
  Trace.add "fol.subsume.backward" s.bwd;
  Trace.add "fol.dedup.hits" s.dedup
