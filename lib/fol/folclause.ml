(** Literals, clauses and the clause-level inference rules shared by the
    resolution engines (naive and indexed) and the term index. *)

open Folterm

type lit = { sign : bool; pred : string; args : term list }

type clause = lit list (* implicit disjunction; [] is the empty clause *)

let lit_negate l = { l with sign = not l.sign }

let pp_lit ppf l =
  Format.fprintf ppf "%s%s(%a)"
    (if l.sign then "" else "~")
    l.pred
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_term)
    l.args

let pp_clause ppf (c : clause) =
  if c = [] then Format.pp_print_string ppf "[]"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
      pp_lit ppf c

let apply_lit s l = { l with args = List.map (apply s) l.args }
let apply_clause s c = List.map (apply_lit s) c

let clause_vars (c : clause) : string list =
  List.fold_left (fun acc l -> List.fold_left term_vars acc l.args) [] c

let rename_lit suffix (l : lit) : lit =
  { l with args = List.map (rename_term suffix) l.args }

let rename_clause suffix (c : clause) : clause = List.map (rename_lit suffix) c

(* [obj] sort guards are bookkeeping, not search progress: they are
   excluded from the size/length budgets so that guarded clauses keep the
   same priority as their unguarded ancestors did *)
let clause_size (c : clause) =
  List.fold_left
    (fun n l ->
      if l.pred = "obj" then n
      else n + 1 + List.fold_left (fun m t -> m + term_size t) 0 l.args)
    0 c

let clause_lits (c : clause) =
  List.fold_left (fun n l -> if l.pred = "obj" then n else n + 1) 0 c

(* direct variable renaming (simultaneous, unlike the triangular [apply]) *)
let rec map_vars f = function
  | V x -> V (f x)
  | Fn (g, args) -> Fn (g, List.map (map_vars f) args)

(* Canonical form up to variable renaming: literals are first ordered by a
   variable-blind skeleton, variables are then renamed _v0, _v1, ... in
   order of first occurrence in that sequence, and the renamed literals
   are sorted.  Two clauses differing only in variable names (whatever
   order their literals arrived in) map to the same normal form, so a
   dedup table keyed on it catches renamed variants; the renaming is
   injective, so equal normal forms are always genuine variants. *)
let normalize_clause (c : clause) : clause =
  let blind = map_vars (fun _ -> "?") in
  let skel l = { l with args = List.map blind l.args } in
  let ordered =
    List.stable_sort (fun a b -> compare (skel a) (skel b)) c
  in
  let vars = List.rev (clause_vars ordered) in
  let tbl = List.mapi (fun i x -> (x, Printf.sprintf "_v%d" i)) vars in
  let f x = match List.assoc_opt x tbl with Some y -> y | None -> x in
  List.sort_uniq compare
    (List.map (fun l -> { l with args = List.map (map_vars f) l.args }) ordered)

let is_tautology (c : clause) : bool =
  List.exists
    (fun l ->
      List.exists
        (fun l' -> l.sign <> l'.sign && l.pred = l'.pred && l.args = l'.args)
        c)
    c

(* one-way matching: only the pattern's variables may bind *)
let rec match_term (s : subst) (pat : term) (t : term) : subst =
  match pat, t with
  | V x, _ -> (
    match List.assoc_opt x s with
    | Some u -> if u = t then s else raise No_unifier
    | None -> (x, t) :: s)
  | Fn (f, xs), Fn (g, ys) ->
    if f <> g || List.length xs <> List.length ys then raise No_unifier
    else List.fold_left2 match_term s xs ys
  | Fn _, V _ -> raise No_unifier

(* subsumption: c1 subsumes c2 if some instance of c1 (variables of c2
   fixed) is a subset of c2.  [subsumes_prepared] expects [c1] already
   renamed apart from [c2] — callers that test one subsumer against many
   clauses rename once instead of per test. *)
let subsumes_prepared (c1 : clause) (c2 : clause) : bool =
  let rec go s = function
    | [] -> true
    | l1 :: rest ->
      List.exists
        (fun l2 ->
          l1.sign = l2.sign && l1.pred = l2.pred
          &&
          match
            (try Some (List.fold_left2 match_term s l1.args l2.args)
             with No_unifier | Invalid_argument _ -> None)
          with
          | Some s' -> go s' rest
          | None -> false)
        c2
  in
  List.length c1 <= List.length c2 && go [] c1

let subsumes (c1 : clause) (c2 : clause) : bool =
  subsumes_prepared (rename_clause "!" c1) c2

(* one binary resolvent on a chosen literal pair: [l1] is an occurrence in
   [c1], [l2] one in [c2] with the opposite sign and the same predicate;
   [c2] is freshly renamed here.  Physical identity selects the occurrence
   to cut, exactly as in {!resolvents}. *)
let resolve_on (c1 : clause) (l1 : lit) (c2 : clause) (l2 : lit) :
    clause option =
  let rest2 = rename_clause "'" (List.filter (fun l -> l != l2) c2) in
  let l2 = rename_lit "'" l2 in
  match
    (try Some (List.fold_left2 unify [] l1.args l2.args)
     with No_unifier | Invalid_argument _ -> None)
  with
  | None -> None
  | Some s ->
    let rest1 = List.filter (fun l -> l != l1) c1 in
    Some (normalize_clause (apply_clause s (rest1 @ rest2)))

(* all binary resolvents of c1 and c2 (c2 freshly renamed) *)
let resolvents (c1 : clause) (c2 : clause) : clause list =
  let c2 = rename_clause "'" c2 in
  List.concat_map
    (fun l1 ->
      List.filter_map
        (fun l2 ->
          if l1.sign = l2.sign || l1.pred <> l2.pred then None
          else
            match
              (try Some (List.fold_left2 unify [] l1.args l2.args)
               with No_unifier | Invalid_argument _ -> None)
            with
            | None -> None
            | Some s ->
              let rest1 = List.filter (fun l -> l != l1) c1 in
              let rest2 = List.filter (fun l -> l != l2) c2 in
              Some (normalize_clause (apply_clause s (rest1 @ rest2))))
        c2)
    c1

(* factoring: unify two literals of the same clause *)
let factors (c : clause) : clause list =
  let rec pairs = function
    | [] -> []
    | l :: rest -> List.map (fun l' -> (l, l')) rest @ pairs rest
  in
  List.filter_map
    (fun (l1, l2) ->
      if l1.sign <> l2.sign || l1.pred <> l2.pred then None
      else
        match
          (try Some (List.fold_left2 unify [] l1.args l2.args)
           with No_unifier | Invalid_argument _ -> None)
        with
        | None -> None
        | Some s ->
          Some
            (normalize_clause
               (apply_clause s (List.filter (fun l -> l != l2) c))))
    (pairs c)
