(** Resolution theorem prover for first-order logic with equality — the
    portfolio's stand-in for off-the-shelf ATPs such as Vampire [78],
    which the paper suggests for discharging client-level obligations
    about abstract sets.

    Pipeline: specification formulas are translated to first-order logic
    (set operations become pointwise [elem] facts), clausified (NNF,
    prenexing, skolemization, distribution), and refuted by a given-clause
    loop with binary resolution + factoring.  Equality is handled by
    adding congruence axioms for the symbols that occur.  The prover is
    refutation-complete for FOL but of course not a decision procedure:
    it answers [Valid] or gives up with [Unknown] when its budget runs
    out (it never claims [Invalid]). *)

open Logic
open Folterm

(* ------------------------------------------------------------------ *)
(* Literals and clauses                                                *)
(* ------------------------------------------------------------------ *)

(* the clause language and the inference rules live in {!Folclause};
   re-exported here so this entry module keeps its historical interface *)
include Folclause

(** The term language and the clause indexes, re-exported for tests and
    tooling (library-internal modules are otherwise hidden behind this
    entry module). *)
module Term = Folterm

module Index = Index

(* ------------------------------------------------------------------ *)
(* Translation from specification formulas                             *)
(* ------------------------------------------------------------------ *)

exception Untranslatable of string

(* Set-theoretic operators are eliminated pointwise before clausification:
   every set equality / inclusion over set-typed expressions becomes a
   universally quantified membership formula, and memberships in compound
   sets are expanded by Simplify. *)
let rec set_to_fol (set_exprs_hint : string list) (f : Form.t) : Form.t =
  let is_set_expr g =
    match Form.strip_types g with
    | Form.Const (Form.EmptySet | Form.UnivSet) -> true
    | Form.App (Form.Const (Form.Union | Form.Inter | Form.Diff | Form.FiniteSet), _)
      ->
      true
    | Form.Binder (Form.Comprehension, _, _) -> true
    | Form.Var x -> List.mem x set_exprs_hint
    | Form.App (Form.Const Form.FieldRead, [ fld; _ ]) -> (
      match Form.strip_types fld with
      | Form.Var x -> List.mem x set_exprs_hint
      | _ -> false)
    | _ -> false
  in
  let pointwise mk a b =
    let e = Form.fresh_name "e" in
    Form.mk_forall
      [ (e, Ftype.Obj) ]
      (mk (Form.mk_elem (Form.Var e) a) (Form.mk_elem (Form.Var e) b))
  in
  let is_formula_like g =
    match Form.strip_types g with
    | Form.App
        ( Form.Const
            ( Form.Eq | Form.Elem | Form.Subseteq | Form.Subset | Form.And
            | Form.Or | Form.Not | Form.Impl | Form.Iff | Form.Lt | Form.Le
            | Form.Gt | Form.Ge ),
          _ )
    | Form.Const (Form.BoolLit _) ->
      true
    | _ -> false
  in
  let step g =
    match Form.strip_types g with
    | Form.App (Form.Const Form.Eq, [ a; b ]) when is_set_expr a || is_set_expr b
      ->
      pointwise Form.mk_iff a b
    | Form.App (Form.Const Form.Eq, [ a; b ])
      when is_formula_like a || is_formula_like b ->
      (* boolean-sorted equality, e.g. result = (content = {}) *)
      Form.mk_iff a b
    | Form.App (Form.Const Form.Subseteq, [ a; b ]) ->
      pointwise Form.mk_impl a b
    | Form.App (Form.Const Form.Subset, [ a; b ]) ->
      Form.mk_and
        [ pointwise Form.mk_impl a b;
          Form.mk_not (pointwise Form.mk_iff a b) ]
    | _ -> g
  in
  let g = Form.map_bottom_up step f in
  let g' = Simplify.simplify g in
  if Form.equal g' f then g' else set_to_fol set_exprs_hint g'

(* atoms: elem(x, S), eq(a, b), or uninterpreted predicate applications *)
let rec fol_term (universals : string list) (f : Form.t) : term =
  match Form.strip_types f with
  | Form.Var x -> if List.mem x universals then V x else Fn ("c_" ^ x, [])
  | Form.Const Form.Null -> Fn ("null", [])
  | Form.Const (Form.IntLit n) -> Fn (Printf.sprintf "int_%d" n, [])
  | Form.Const Form.EmptySet -> Fn ("emptyset", [])
  | Form.Const Form.UnivSet -> Fn ("univ", [])
  | Form.App (Form.Const Form.FieldRead, [ fld; obj ]) ->
    Fn ("read", [ fol_term universals fld; fol_term universals obj ])
  | Form.App (Form.Const Form.FieldWrite, [ fld; obj; v ]) ->
    Fn
      ( "write",
        [ fol_term universals fld;
          fol_term universals obj;
          fol_term universals v ] )
  | Form.App (Form.Const Form.Union, [ a; b ]) ->
    Fn ("union", [ fol_term universals a; fol_term universals b ])
  | Form.App (Form.Const Form.Inter, [ a; b ]) ->
    Fn ("inter", [ fol_term universals a; fol_term universals b ])
  | Form.App (Form.Const Form.Diff, [ a; b ]) ->
    Fn ("setdiff", [ fol_term universals a; fol_term universals b ])
  | Form.App (Form.Const Form.FiniteSet, elems) ->
    List.fold_left
      (fun acc e -> Fn ("insert", [ fol_term universals e; acc ]))
      (Fn ("emptyset", []))
      elems
  | Form.App (Form.Var fn, args) ->
    Fn ("f_" ^ fn, List.map (fol_term universals) args)
  | g -> raise (Untranslatable (Pprint.to_string g))

(* a reachability lambda (% u v. E(u) = v) denotes the reflexive
   transitive closure of the *function* E; we translate it as an
   uninterpreted binary predicate rt(E0, x, y) over the step function's
   translation, and add sound (not complete) closure axioms. *)
let functional_step (universals : string list) (p : Form.t) : term option =
  match Form.strip_types p with
  | Form.Binder (Form.Lambda, [ (u, _); (v, _) ], body) -> (
    match Form.strip_types body with
    | Form.App (Form.Const Form.Eq, [ lhs; Form.Var v' ]) when v' = v -> (
      match Form.strip_types lhs with
      | Form.App (Form.Const Form.FieldRead, [ fld; Form.Var u' ])
        when u' = u && not (List.mem u (Form.fv_list_shared fld)) ->
        (* step function = the field (possibly an updated field term) *)
        Some (fol_term universals fld)
      | _ -> None)
    | _ -> None)
  | _ -> None

let fol_atom (universals : string list) (f : Form.t) : lit =
  match Form.strip_types f with
  | Form.App (Form.Const Form.Rtrancl, [ p; a; b ]) -> (
    match functional_step universals p with
    | Some step ->
      { sign = true;
        pred = "rt";
        args =
          [ step; fol_term universals a; fol_term universals b ] }
    | None -> raise (Untranslatable (Pprint.to_string f)))
  | Form.App (Form.Const Form.Eq, [ a; b ]) ->
    { sign = true; pred = "="; args = [ fol_term universals a; fol_term universals b ] }
  | Form.App (Form.Const Form.Elem, [ x; s ]) ->
    { sign = true;
      pred = "elem";
      args = [ fol_term universals x; fol_term universals s ] }
  | Form.Var p -> { sign = true; pred = "p_" ^ p; args = [] }
  | g -> raise (Untranslatable (Pprint.to_string g))

(* clausify an NNF, prenexed, skolemized matrix *)
let rec clausify_matrix (universals : string list) (f : Form.t) : clause list =
  match Form.strip_types f with
  | Form.App (Form.Const Form.And, gs) ->
    List.concat_map (clausify_matrix universals) gs
  | Form.App (Form.Const Form.Or, gs) ->
    let parts = List.map (clausify_matrix universals) gs in
    (* distribute: cartesian product of clause sets *)
    List.fold_left
      (fun acc cs ->
        List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) cs) acc)
      [ [] ] parts
  | Form.App (Form.Const Form.Not, [ g ]) -> [ [ lit_negate (fol_atom universals g) ] ]
  | Form.Const (Form.BoolLit true) -> []
  | Form.Const (Form.BoolLit false) -> [ [] ]
  | g -> [ [ fol_atom universals g ] ]

(* Sort erasure is only sound if object-sorted quantifiers cannot range
   over the set/field constants of the unsorted encoding: [ALL q::obj. y = q]
   would otherwise collapse every sort into one class (the fuzzer found
   exactly this).  Obj-sorted binders are therefore relativized with an
   [obj] guard predicate; [obj] facts for ground object terms come from
   {!theory_axioms} and the free-variable units in {!prove_with}.  [Tvar]
   counts as object-sorted: the rest of the portfolio (and the oracle)
   grounds unconstrained sorts at objects. *)
let obj_sorted (ty : Ftype.t) : bool =
  match ty with Ftype.Obj | Ftype.Tvar _ -> true | _ -> false

let obj_lit sign t = { sign; pred = "obj"; args = [ t ] }

(* skolemize, tracking which variables are universal *)
let clausify (f : Form.t) : clause list =
  let qs, matrix = Simplify.prenex (Simplify.nnf f) in
  let extra = ref [] in
  let rec go universals guarded subs = function
    | [] ->
      let matrix = Form.subst_list subs matrix in
      let cs = clausify_matrix (List.map fst universals) matrix in
      (* ALL x::obj. C becomes  ~obj(x) | C  for each clause mentioning x
         (clauses without x need no guard: obj(null) witnesses
         nonemptiness).  A clause already containing a negative elem
         literal over x needs no guard either: memberships can be read as
         false outside the object sort, which satisfies the clause on any
         off-sort instance — this keeps the pointwise set clauses lean. *)
      List.map
        (fun c ->
          let vs = clause_vars c in
          let neg_elem_vars =
            List.concat_map
              (fun l ->
                if (not l.sign) && l.pred = "elem" then
                  List.fold_left term_vars [] l.args
                else [])
              c
          in
          let guards =
            List.filter_map
              (fun x ->
                if List.mem x vs && not (List.mem x neg_elem_vars) then
                  Some (obj_lit false (V x))
                else None)
              guarded
          in
          guards @ c)
        cs
    | (`All, (x, ty)) :: rest ->
      go
        (universals @ [ (x, ()) ])
        (if obj_sorted ty then x :: guarded else guarded)
        subs rest
    | (`Ex, (x, ty)) :: rest ->
      let sk = Form.fresh_name ("sk_" ^ x) in
      let term =
        if universals = [] then Form.Var sk
        else Form.App (Form.Var sk, List.map (fun (u, ()) -> Form.Var u) universals)
      in
      (* an obj-sorted witness can always be chosen inside the object
         domain, whatever the enclosing universals are bound to *)
      if obj_sorted ty then
        extra :=
          [ obj_lit true (fol_term (List.map fst universals) term) ] :: !extra;
      go universals guarded ((x, term) :: subs) rest
  in
  (* skolem applications App (Var sk, universals) translate via "f_sk" *)
  let cs = go [] [] [] qs in
  cs @ !extra

(* ------------------------------------------------------------------ *)
(* Equality axioms                                                     *)
(* ------------------------------------------------------------------ *)

let equality_axioms (clauses : clause list) : clause list =
  (* collect function and predicate symbols with arities *)
  let fns = Hashtbl.create 16 and preds = Hashtbl.create 16 in
  let rec note_term = function
    | V _ -> ()
    | Fn (f, args) ->
      if args <> [] then Hashtbl.replace fns (f, List.length args) ();
      List.iter note_term args
  in
  let uses_equality = ref false in
  List.iter
    (List.iter (fun l ->
         if l.pred = "=" then uses_equality := true
         else Hashtbl.replace preds (l.pred, List.length l.args) ();
         List.iter note_term l.args))
    clauses;
  if not !uses_equality then []
  else begin
    let eq a b = { sign = true; pred = "="; args = [ a; b ] } in
    let neq a b = { sign = false; pred = "="; args = [ a; b ] } in
    let refl = [ eq (V "x") (V "x") ] in
    let sym = [ neq (V "x") (V "y"); eq (V "y") (V "x") ] in
    let trans =
      [ neq (V "x") (V "y"); neq (V "y") (V "z"); eq (V "x") (V "z") ]
    in
    let congruences =
      Hashtbl.fold
        (fun (f, arity) () acc ->
          (* x_i = y_i ... -> f(xs) = f(ys) *)
          let xs = List.init arity (fun i -> V (Printf.sprintf "x%d" i)) in
          let ys = List.init arity (fun i -> V (Printf.sprintf "y%d" i)) in
          (List.map2 neq xs ys @ [ eq (Fn (f, xs)) (Fn (f, ys)) ]) :: acc)
        fns []
    in
    let pred_congruences =
      Hashtbl.fold
        (fun (p, arity) () acc ->
          (* no congruence for the [obj] sort guard: sorts are
             equality-invariant by construction, and the axiom's
             resolvents flood the search space *)
          if arity = 0 || p = "obj" then acc
          else begin
            let xs = List.init arity (fun i -> V (Printf.sprintf "x%d" i)) in
            let ys = List.init arity (fun i -> V (Printf.sprintf "y%d" i)) in
            (List.map2 neq xs ys
            @ [ { sign = false; pred = p; args = xs };
                { sign = true; pred = p; args = ys } ])
            :: acc
          end)
        preds []
    in
    (refl :: sym :: trans :: congruences) @ pred_congruences
  end

(* Sound axioms for the interpreted symbols occurring in the clause set:
   reflexive-transitive closure of a functional step, select-over-store
   for field writes, and the null-field convention read(f, null) = null. *)
let theory_axioms (clauses : clause list) : clause list =
  let has_pred p =
    List.exists (List.exists (fun l -> l.pred = p)) clauses
  in
  let has_fn name =
    let rec in_term = function
      | V _ -> false
      | Fn (f, args) -> f = name || List.exists in_term args
    in
    List.exists (List.exists (fun l -> List.exists in_term l.args)) clauses
  in
  (* field constants: 0-ary symbols appearing as the first argument of
     read — they obey read(f, null) = null *)
  let field_consts =
    let acc = ref [] in
    let rec scan = function
      | V _ -> ()
      | Fn ("read", [ (Fn (f, []) as fld); _ ]) ->
        if not (List.mem f !acc) then acc := f :: !acc;
        scan fld
      | Fn (_, args) -> List.iter scan args
    in
    List.iter (List.iter (fun l -> List.iter scan l.args)) clauses;
    !acc
  in
  let eq a b = { sign = true; pred = "="; args = [ a; b ] } in
  let neq a b = { sign = false; pred = "="; args = [ a; b ] } in
  let rt f x y = { sign = true; pred = "rt"; args = [ f; x; y ] } in
  let nrt f x y = { sign = false; pred = "rt"; args = [ f; x; y ] } in
  let null = Fn ("null", []) in
  let read f x = Fn ("read", [ f; x ]) in
  let rt_axioms =
    if not (has_pred "rt") then []
    else
      [ (* reflexivity *)
        [ rt (V "f") (V "x") (V "x") ];
        (* build-up: step then closure *)
        [ neq (read (V "f") (V "x")) (V "y");
          nrt (V "f") (V "y") (V "z");
          rt (V "f") (V "x") (V "z") ];
        (* transitivity *)
        [ nrt (V "f") (V "x") (V "y");
          nrt (V "f") (V "y") (V "z");
          rt (V "f") (V "x") (V "z") ];
        (* functional unfolding: rt(x,y) -> x = y \/ rt(step(x), y) *)
        [ nrt (V "f") (V "x") (V "y");
          eq (V "x") (V "y");
          rt (V "f") (read (V "f") (V "x")) (V "y") ];
        (* nothing beyond null *)
        [ nrt (V "f") null (V "y"); eq (V "y") null ];
      ]
  in
  let write_axioms =
    if not (has_fn "write") then []
    else
      [ (* read over write, same location *)
        [ eq (read (Fn ("write", [ V "f"; V "x"; V "v" ])) (V "x")) (V "v") ];
        (* read over write, different location *)
        [ eq (V "y") (V "x");
          eq
            (read (Fn ("write", [ V "f"; V "x"; V "v" ])) (V "y"))
            (read (V "f") (V "y")) ];
      ]
  in
  let null_field_axioms =
    List.map (fun f -> [ eq (read (Fn (f, [])) null) null ]) field_consts
  in
  (* ground object terms for the sort guards introduced by [clausify]:
     null and every field read denote objects, and so does any ground
     term in the element slot of a membership (the translation puts only
     object-sorted expressions there).  Ground units instead of a general
     [elem(x,s) -> obj(x)] axiom: the axiom resolves against every
     membership literal in the search space and floods it. *)
  let obj_axioms =
    if not (has_pred "obj") then []
    else begin
      let rec ground = function
        | V _ -> false
        | Fn (_, args) -> List.for_all ground args
      in
      let elem_members =
        let acc = ref [] in
        List.iter
          (List.iter (fun l ->
               match l.pred, l.args with
               | "elem", [ x; _ ] when ground x && not (List.mem x !acc) ->
                 acc := x :: !acc
               | _ -> ()))
          clauses;
        !acc
      in
      [ obj_lit true null ]
      :: [ obj_lit true (read (V "g") (V "x")) ]
      :: List.map (fun t -> [ obj_lit true t ]) elem_members
    end
  in
  rt_axioms @ write_axioms @ null_field_axioms @ obj_axioms

(* ------------------------------------------------------------------ *)
(* Given-clause resolution loops                                       *)
(* ------------------------------------------------------------------ *)

type outcome = Proof | Saturated | GaveUp

(** Which saturation engine runs a refutation.  [Indexed] is the default:
    discrimination-tree partner retrieval, full forward/backward
    subsumption and an age–weight passive queue.  [Naive] is the original
    textbook loop, kept as the A/B baseline for the bench guard and the
    fuzzer's engine differential. *)
type engine = Indexed | Naive

(* read once at module init: one getenv per process, not one per
   given-clause iteration *)
let fol_debug = Sys.getenv_opt "FOL_DEBUG" <> None

(** The original engine: O(active) partner scans, unit-only forward
    subsumption, weight-only passive queue. *)
let refute_naive ?(max_clauses = 4000) ?(max_weight = 60) ?(max_lits = 6)
    ?(timeout_s = 1.5) ~(usable : clause list) ~(sos : clause list) () :
    outcome =
  let deadline = Clock.now () +. timeout_s in
  let usable = List.filter (fun c -> not (is_tautology c)) (List.map normalize_clause usable) in
  let sos = List.map normalize_clause sos in
  if List.exists (fun c -> c = []) (usable @ sos) then Proof
  else begin
    let module Pq = Set.Make (struct
      type t = int * int * clause

      let compare = compare
    end) in
    let counter = ref 0 in
    let passive = ref Pq.empty in
    let seen = Hashtbl.create 256 in
    let add_passive c =
      if not (Hashtbl.mem seen c) && not (is_tautology c) then begin
        Hashtbl.add seen c ();
        incr counter;
        passive := Pq.add (clause_size c, !counter, c) !passive
      end
    in
    (* passive holds only SOS clauses; usable clauses are active from the
       start *)
    List.iter add_passive sos;
    let active_usable = ref usable in
    let active_sos = ref [] in
    let total = ref (List.length sos) in
    let result = ref None in
    let unit_subsumed c =
      let units =
        List.filter (fun a -> List.length a = 1) (!active_usable @ !active_sos)
      in
      List.exists (fun u -> subsumes u c) units
    in
    while !result = None do
      Deadline.check ();
      if Pq.is_empty !passive then result := Some Saturated
      else if !total > max_clauses || Clock.now () > deadline then
        result := Some GaveUp
      else begin
        let ((_, _, given) as entry) = Pq.min_elt !passive in
        (if fol_debug then
           Format.eprintf "pop total=%d passive=%d active=%d given=%a@."
             !total (Pq.cardinal !passive)
             (List.length !active_usable + List.length !active_sos)
             pp_clause given);
        passive := Pq.remove entry !passive;
        if unit_subsumed given && clause_size given > 3 then ()
        else begin
          (* SOS restriction: given (an SOS clause) resolves against
             everything active *)
          let partners = !active_usable @ !active_sos in
          let new_clauses =
            List.map
              (List.sort_uniq compare)
              (factors given
              @ List.concat_map (fun a -> resolvents given a) partners
              @ resolvents given given)
          in
          active_sos := given :: !active_sos;
          List.iter
            (fun c ->
              if c = [] then result := Some Proof
              else if
                clause_size c <= max_weight
                && clause_lits c <= max_lits
                && not (unit_subsumed c)
              then begin
                incr total;
                add_passive c
              end)
            new_clauses
        end
      end
    done;
    match !result with Some r -> r | None -> assert false
  end

(** The indexed engine.  Same inference rules and SOS restriction as
    {!refute_naive}, but:

    - resolution partners come from a discrimination-tree index over the
      active literals instead of a scan of every active clause;
    - forward subsumption is full-clause (a new or popped clause subsumed
      by any active clause is discarded, not just unit-subsumed ones) and
      backward subsumption retires every active {e and passive} clause the
      newly activated given clause subsumes;
    - the passive queue alternates between best-weight and oldest-age
      picks at [age_weight_ratio] weight picks per age pick, so old heavy
      clauses cannot starve;
    - the dedup table is keyed on {!Folclause.normalize_clause}'s
      variable-normalized form, so renamed variants collapse. *)
let refute_indexed ?(max_clauses = 4000) ?(max_weight = 60) ?(max_lits = 6)
    ?(timeout_s = 1.5) ?(age_weight_ratio = 5) ~(usable : clause list)
    ~(sos : clause list) () : outcome =
  let deadline = Clock.now () +. timeout_s in
  let usable =
    List.filter (fun c -> not (is_tautology c)) (List.map normalize_clause usable)
  in
  let sos = List.map normalize_clause sos in
  if List.exists (fun c -> c = []) (usable @ sos) then Proof
  else begin
    let idx = Index.create () in
    let module Pq = Set.Make (struct
      type t = int * int * Index.entry

      let compare (w1, i1, _) (w2, i2, _) = compare (w1, i1) (w2, i2)
    end) in
    let passive = ref Pq.empty in
    let age_queue : Index.entry Queue.t = Queue.create () in
    let seen = Hashtbl.create 256 in
    let total = ref 0 in
    (* [max_clauses] bounds clauses actually {e kept}: duplicates the
       dedup table absorbs and tautologies cost nothing (the naive
       engine charges its budget for every generated clause) *)
    let add_passive c =
      if Hashtbl.mem seen c then Index.note_dedup idx
      else if not (is_tautology c) then begin
        Hashtbl.add seen c ();
        incr total;
        let e = Index.register idx c in
        passive := Pq.add (e.Index.weight, e.Index.id, e) !passive;
        Queue.add e age_queue
      end
    in
    (* usable clauses are active from the start; forward subsumption
       between them already prunes duplicated axioms *)
    List.iter
      (fun c ->
        if Index.forward_subsumed idx c = None then
          Index.activate idx (Index.register idx c))
      usable;
    List.iter add_passive sos;
    let picks = ref 0 in
    let rec pop_weight () =
      match Pq.min_elt_opt !passive with
      | None -> None
      | Some ((_, _, e) as entry) ->
        passive := Pq.remove entry !passive;
        if e.Index.state = Index.Passive then Some e else pop_weight ()
    in
    (* An age pick takes the oldest passive clause — unless it is far
       heavier than the current best, in which case it is requeued and
       this round falls back to a weight pick.  Unguarded FIFO picks let
       one aged, variable-headed equality clause resolve against the
       whole active set and flood the clause budget; the guard defers
       such clauses until the light clauses are spent (the Pq minimum
       has risen), which is when fairness actually needs them. *)
    let age_pick_admissible w =
      match Pq.min_elt_opt !passive with
      | None -> true
      | Some (wmin, _, _) -> w <= (2 * wmin) + 4
    in
    let rec pop_age budget =
      if budget = 0 then pop_weight ()
      else
        match Queue.take_opt age_queue with
        | None -> pop_weight ()
        | Some e ->
          if e.Index.state <> Index.Passive then pop_age budget
          else if age_pick_admissible e.Index.weight then begin
            passive := Pq.remove (e.Index.weight, e.Index.id, e) !passive;
            Some e
          end
          else begin
            Queue.add e age_queue;
            pop_age (budget - 1)
          end
    in
    let pop_given () =
      incr picks;
      if age_weight_ratio > 0 && !picks mod (age_weight_ratio + 1) = 0 then
        pop_age (Queue.length age_queue)
      else pop_weight ()
    in
    let result = ref None in
    while !result = None do
      Deadline.check ();
      if Pq.is_empty !passive then result := Some Saturated
      else if !total > max_clauses || Clock.now () > deadline then
        result := Some GaveUp
      else
        match pop_given () with
        | None ->
          (* only retired (back-subsumed) clauses were left queued:
             saturation with respect to the live set *)
          result := Some Saturated
        | Some given ->
          let gcl = given.Index.cl in
          if fol_debug then
            Format.eprintf "pop total=%d passive=%d active_lits=%d given=%a@."
              !total (Pq.cardinal !passive) idx.Index.active_lits pp_clause gcl;
          (match Index.forward_subsumed idx gcl with
          | Some _ -> Index.retire idx given
          | None ->
            Index.activate idx given;
            List.iter (Index.retire idx) (Index.backward_subsumed idx given);
            (* SOS restriction: the given clause (SOS-descended) resolves
               against the active set — which now includes itself, so
               self-resolvents are covered by the same retrieval *)
            let new_clauses =
              factors gcl
              @ List.concat_map
                  (fun l ->
                    List.filter_map
                      (fun (e, l2) -> resolve_on gcl l e.Index.cl l2)
                      (Index.retrieve_partners idx l))
                  gcl
            in
            List.iter
              (fun c ->
                if c = [] then result := Some Proof
                else if
                  clause_size c <= max_weight
                  && clause_lits c <= max_lits
                  (* cheap unit filter here, once per generated clause;
                     the full subsumption check runs at activation *)
                  && Index.unit_subsumed idx c = None
                then add_passive c)
              new_clauses)
    done;
    Index.flush_stats idx;
    match !result with Some r -> r | None -> assert false
  end

(** Refute [usable] (axioms + hypotheses, assumed consistent) against the
    set-of-support [sos] (the negated goal): every inference uses at least
    one SOS-descended parent, the classic Wos-style strategy that keeps
    the equality axioms from feeding on themselves. *)
let refute ?(engine = Indexed) ?max_clauses ?max_weight ?max_lits ?timeout_s
    ?age_weight_ratio ~(usable : clause list) ~(sos : clause list) () :
    outcome =
  match engine with
  | Indexed ->
    refute_indexed ?max_clauses ?max_weight ?max_lits ?timeout_s
      ?age_weight_ratio ~usable ~sos ()
  | Naive ->
    refute_naive ?max_clauses ?max_weight ?max_lits ?timeout_s ~usable ~sos ()

(* ------------------------------------------------------------------ *)
(* Prover interface                                                    *)
(* ------------------------------------------------------------------ *)

(* Bounded ground instantiation: universally quantified hypotheses are
   instantiated with the object-denoting constants of the sequent.  The
   resulting ground unit facts give resolution short proofs where deep
   unification chains would blow the budget. *)
let object_candidates (hyps : Form.t list) (goal : Form.t) : Form.t list =
  let acc = ref [ Form.mk_null ] in
  let note t =
    match Form.strip_types t with
    | Form.Var x when not (String.contains x '.') ->
      if not (List.exists (Form.equal t) !acc) then acc := t :: !acc
    | _ -> ()
  in
  let scan f =
    ignore
      (Form.fold
         (fun () g ->
           match g with
           | Form.App (Form.Const Form.Elem, [ x; _ ]) -> note x
           | Form.App (Form.Const Form.FieldRead, [ _; r ]) -> note r
           | Form.App (Form.Const Form.Eq, [ a; b ]) ->
             (match Form.strip_types a, Form.strip_types b with
             | _, Form.Const Form.Null -> note a
             | Form.Const Form.Null, _ -> note b
             | _ -> ())
           | _ -> ())
         () f)
  in
  List.iter scan hyps;
  scan goal;
  !acc

let instantiate_foralls (cands : Form.t list) (hyps : Form.t list) :
    Form.t list =
  let max_instances_per_hyp = 80 in
  List.concat_map
    (fun h ->
      match Form.strip_types h with
      | Form.Binder (Form.Forall, vars, body)
        when List.length vars <= 2
             && List.for_all (fun (_, ty) -> obj_sorted ty) vars ->
        let n = List.length cands in
        let rec tuples k =
          if k = 0 then [ [] ]
          else
            List.concat_map
              (fun rest -> List.map (fun c -> c :: rest) cands)
              (tuples (k - 1))
        in
        let arity = List.length vars in
        if int_of_float (float_of_int n ** float_of_int arity)
           > max_instances_per_hyp
        then []
        else
          List.filter_map
            (fun tuple ->
              let sub = List.map2 (fun (x, _) c -> (x, c)) vars tuple in
              (* one fresh tree per instantiation: the memo never pays here *)
              let inst = Simplify.simplify_plain (Form.subst_list_shared sub body) in
              if Form.is_true inst then None else Some inst)
            (tuples arity)
      | _ -> [])
    hyps

(** Translate a sequent and run the refutation, exposing the raw
    saturation outcome (and the engine / limit knobs) for differential
    testing and benchmarking; [Error what] means the sequent is not
    first-order translatable. *)
let outcome_with ?engine ?max_clauses ?max_weight ?max_lits ?timeout_s
    ?age_weight_ratio ?(set_vars = []) (s : Sequent.t) :
    (outcome, string) result =
  match
    let translated_hyps = List.map (set_to_fol set_vars) s.Sequent.hyps in
    let translated_goal = set_to_fol set_vars (Form.mk_not s.Sequent.goal) in
    let cands = object_candidates translated_hyps translated_goal in
    let instances = instantiate_foralls cands translated_hyps in
    let hyp_clauses =
      List.concat_map clausify (translated_hyps @ instances)
    in
    let goal_clauses = clausify translated_goal in
    (* free variables the typechecker sorts at objects satisfy the [obj]
       guards; only needed when some clause actually carries a guard *)
    let obj_var_units =
      let uses_obj =
        List.exists
          (List.exists (fun l -> l.pred = "obj"))
          (hyp_clauses @ goal_clauses)
      in
      if not uses_obj then []
      else
        match Typecheck.infer (Sequent.to_form s) with
        | exception Typecheck.Type_error _ -> []
        | _, _, free ->
          Typecheck.Smap.fold
            (fun x ty acc ->
              if obj_sorted ty then
                [ obj_lit true (Fn ("c_" ^ x, [])) ] :: acc
              else acc)
            free []
    in
    let hyp_clauses = obj_var_units @ hyp_clauses in
    let theory = theory_axioms (hyp_clauses @ goal_clauses) in
    let axioms = equality_axioms (theory @ hyp_clauses @ goal_clauses) in
    refute ?engine ?max_clauses ?max_weight ?max_lits ?timeout_s
      ?age_weight_ratio
      ~usable:(axioms @ theory @ hyp_clauses)
      ~sos:goal_clauses ()
  with
  | o -> Ok o
  | exception Untranslatable what -> Error what

(** Prove a sequent; [set_vars] names the variables known to denote sets
    (they get extensionality treatment). *)
let prove_with ?engine ?(set_vars = []) (s : Sequent.t) : Sequent.verdict =
  match outcome_with ?engine ~set_vars s with
  | Ok Proof -> Sequent.Valid
  | Ok Saturated ->
    (* saturation without equality-completeness caveats: the clause set is
       satisfiable, but our translation abstracts sorts, so stay safe *)
    Sequent.Unknown "resolution saturated without a proof"
  | Ok GaveUp -> Sequent.Unknown "resolution budget exhausted"
  | Error what -> Sequent.Unknown ("not first-order translatable: " ^ what)

(* infer set-typed variables from the formula so the prover can be used
   standalone *)
let infer_set_vars (s : Sequent.t) : string list =
  let f = Sequent.to_form s in
  match Typecheck.infer f with
  | _, _, free ->
    Typecheck.Smap.fold
      (fun x ty acc ->
        match ty with
        | Ftype.Set _ -> x :: acc
        | Ftype.Arrow (_, Ftype.Set _) -> x :: acc (* per-instance set *)
        | _ -> acc)
      free []
  | exception Typecheck.Type_error _ -> []

let prove (s : Sequent.t) : Sequent.verdict =
  prove_with ~set_vars:(infer_set_vars s) s

(** Does the whole sequent translate to first-order clauses?  (The prover
    is sound-but-incomplete on its fragment — it only ever answers [Valid]
    or [Unknown] — so membership means "worth asking", not "decides".) *)
let in_fragment (s : Sequent.t) : bool =
  let set_vars = infer_set_vars s in
  match
    List.iter
      (fun f -> ignore (clausify (set_to_fol set_vars f)))
      (Form.mk_not s.Sequent.goal :: s.Sequent.hyps)
  with
  | () -> true
  | exception Untranslatable _ -> false

let prover : Sequent.prover =
  Sequent.traced_prover { prover_name = "fol"; prove }
