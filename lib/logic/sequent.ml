(** Proof obligations and the common decision-procedure interface.

    Every reasoner in the portfolio — SMT, MONA, BAPA, the first-order
    prover — consumes a {!type:t} and produces a {!type:verdict}.  Provers
    must never guess: [Valid] claims a proof, [Invalid] claims a genuine
    countermodel, anything else is [Unknown] (the dispatcher then tries the
    next prover, mirroring the paper's multi-prover architecture). *)

type t = {
  name : string; (** where the obligation came from, e.g. "List.add: post" *)
  hyps : Form.t list;
  goal : Form.t;
}

type verdict =
  | Valid
  | Invalid of string (** description of a countermodel *)
  | Unknown of string (** why the prover gave up *)

type prover = {
  prover_name : string;
  prove : t -> verdict;
}

let make ?(name = "goal") hyps goal = { name; hyps; goal }

(** The sequent as a single implication formula. *)
let to_form (s : t) : Form.t = Form.mk_impl_chain s.hyps s.goal

(** Conversely: split an implication chain into a sequent. *)
let of_form ?(name = "goal") (f : Form.t) : t =
  let hyps, goal = Form.hypotheses_and_goal f in
  { name; hyps; goal }

(* ------------------------------------------------------------------ *)
(* Canonicalization and digests (verdict-cache keys)                   *)
(* ------------------------------------------------------------------ *)

(* --- fresh-constant normalization -------------------------------- *)

(* [Form.fresh_name] mints [base__N] from a process-global counter that
   is never reset, so re-generating the same obligation later in the
   same process (a daemon re-verifying a file, Houdini re-seeding a
   loop) yields the same sequent up to the counter offset — and a
   different digest, defeating the verdict cache exactly where a
   resident server needs it.  Validity and refutability of a sequent
   are invariant under injective renaming of its free variables (models
   transport along the renaming), so the canonical form may renumber
   fresh constants: each [base__N] becomes [base__k] with [k] assigned
   per base in order of first occurrence (hypotheses in given order,
   then the goal).  The mapping is injective — same base never shares a
   [k], distinct bases never collide — and its image stays inside the
   reserved [__] namespace no parser produces, so it cannot capture a
   source-level identifier. *)

(* [base] of a fresh-style name: everything before a final "__digits";
   None for every name the renaming must not touch *)
let fresh_base (n : string) : string option =
  let len = String.length n in
  let is_digit c = c >= '0' && c <= '9' in
  let rec all_digits i = i >= len || (is_digit n.[i] && all_digits (i + 1)) in
  let rec find j =
    (* j = index of the first '_' of a candidate "__" *)
    if j < 1 then None
    else if
      n.[j] = '_' && n.[j - 1] = '_' && j + 1 < len && all_digits (j + 1)
    then Some (String.sub n 0 (j - 1))
    else find (j - 1)
  in
  find (len - 2)

(* the renaming map over every fresh-style free variable of the sequent,
   in first-occurrence order; empty for fresh-free sequents *)
let fresh_renaming (s : t) : Form.t Form.Smap.t =
  let map = ref Form.Smap.empty in
  let next : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let visit x =
    if not (Form.Smap.mem x !map) then
      match fresh_base x with
      | None -> ()
      | Some base ->
        let k = (Option.value (Hashtbl.find_opt next base) ~default:0) + 1 in
        Hashtbl.replace next base k;
        let x' = Printf.sprintf "%s__%d" base k in
        map := Form.Smap.add x (Form.Var x') !map
  in
  let rec go (f : Form.t) =
    match f with
    | Form.Var x -> visit x
    | Form.Const _ -> ()
    | Form.App (g, args) ->
      go g;
      List.iter go args
    | Form.Binder (_, _, body) -> go body
    | Form.TypedForm (g, _) -> go g
  in
  List.iter go s.hyps;
  go s.goal;
  (* identity entries would defeat [subst]'s sharing shortcuts *)
  Form.Smap.filter
    (fun x f -> match f with Form.Var y -> not (String.equal x y) | _ -> true)
    !map

(** Canonical form for caching: fresh constants ([base__N], minted by
    {!Form.fresh_name}) are renumbered by first occurrence, every
    hypothesis and the goal are alpha-normalized (bound variables renamed
    by binding depth, sorts and type annotations preserved), then the
    hypotheses are sorted and deduplicated by their canonical printing.
    Two sequents that differ only in hypothesis order, bound-variable
    names or the fresh-counter offset canonicalize identically. *)
let canonicalize (s : t) : t =
  let ren = fresh_renaming s in
  let rename f = if Form.Smap.is_empty ren then f else Form.subst ren f in
  (* [alpha_normalize_shared] and [to_canonical_string] are memoized
     through the hash-consing kernel, so hypotheses shared across the
     obligations of one method (split_vc reuses them physically) are
     normalized and printed once per run, not once per obligation. *)
  let keyed =
    List.map
      (fun h ->
        let h = Form.alpha_normalize_shared ~keep_types:true (rename h) in
        (Pprint.to_canonical_string h, h))
      s.hyps
  in
  let keyed =
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) keyed
  in
  { s with
    hyps = List.map snd keyed;
    goal = Form.alpha_normalize_shared ~keep_types:true (rename s.goal) }

(** A stable key for the canonicalized sequent: the MD5 digest of its
    {e canonical} printing ({!Pprint.to_canonical_string} — the surface
    printer is ambiguous between integer and set operators, so keying on
    it could return a cached verdict for the wrong obligation).  [name]
    does not participate — obligations regenerated under different labels
    still collide, which is the point. *)
let digest_plain (s : t) : string =
  let c = canonicalize s in
  let buf = Buffer.create 256 in
  List.iter
    (fun h ->
      Buffer.add_string buf (Pprint.to_canonical_string h);
      Buffer.add_char buf '\n')
    c.hyps;
  Buffer.add_string buf "|-";
  Buffer.add_string buf (Pprint.to_canonical_string c.goal);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest_memo : string Hashcons.Memo.t = Hashcons.Memo.create ()

let digest (s : t) : string =
  if not (Hashcons.enabled ()) then digest_plain s
  else
    (* keyed by the interned implication form: structurally identical
       sequents (the common re-dispatch case) share one entry, while
       sequents differing only in hypothesis order each compute once and
       land on the same digest via canonicalization *)
    Hashcons.Memo.find_or_add digest_memo (Form.htag (Form.import (to_form s)))
      (fun () -> digest_plain s)

(** The sequent's refutation form, [simplify (hyps /\ ~goal)] — what the
    refutation-based front ends (smt, bapa, fol) actually translate.
    Centralized so they all hit the same simplify memo entry instead of
    each re-simplifying the same obligation. *)
let refutand (s : t) : Form.t =
  Simplify.simplify (Form.mk_and (s.hyps @ [ Form.mk_not s.goal ]))

let pp ppf (s : t) =
  Format.fprintf ppf "@[<v>%a@]"
    (fun ppf () ->
      List.iter (fun h -> Format.fprintf ppf "%a@," Pprint.pp h) s.hyps;
      Format.fprintf ppf "|- %a" Pprint.pp s.goal)
    ()

let verdict_to_string = function
  | Valid -> "valid"
  | Invalid m -> "invalid (" ^ m ^ ")"
  | Unknown m -> "unknown (" ^ m ^ ")"

(** Just the constructor tag, for trace attribution and stats keys. *)
let verdict_kind = function
  | Valid -> "valid"
  | Invalid _ -> "invalid"
  | Unknown _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

(** Wrap a prover so that every [prove] call becomes a trace span
    (category ["prover"], name = the prover's name) carrying the query
    size on entry and the verdict on exit.  Costs one atomic load per
    call while tracing is disabled. *)
let traced_prover (p : prover) : prover =
  { p with
    prove =
      (fun s ->
        if not (Trace.enabled ()) then p.prove s
        else begin
          let sp =
            Trace.start_span ~cat:"prover"
              ~args:(fun () ->
                [ ("size", Trace.I (Form.size_shared (to_form s)));
                  ("hyps", Trace.I (List.length s.hyps)) ])
              p.prover_name
          in
          match p.prove s with
          | v ->
            Trace.finish_span
              ~args:(fun () -> [ ("verdict", Trace.S (verdict_kind v)) ])
              sp;
            v
          | exception e ->
            Trace.finish_span
              ~args:(fun () -> [ ("raised", Trace.S (Printexc.to_string e)) ])
              sp;
            raise e
        end) }
