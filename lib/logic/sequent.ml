(** Proof obligations and the common decision-procedure interface.

    Every reasoner in the portfolio — SMT, MONA, BAPA, the first-order
    prover — consumes a {!type:t} and produces a {!type:verdict}.  Provers
    must never guess: [Valid] claims a proof, [Invalid] claims a genuine
    countermodel, anything else is [Unknown] (the dispatcher then tries the
    next prover, mirroring the paper's multi-prover architecture). *)

type t = {
  name : string; (** where the obligation came from, e.g. "List.add: post" *)
  hyps : Form.t list;
  goal : Form.t;
}

type verdict =
  | Valid
  | Invalid of string (** description of a countermodel *)
  | Unknown of string (** why the prover gave up *)

type prover = {
  prover_name : string;
  prove : t -> verdict;
}

let make ?(name = "goal") hyps goal = { name; hyps; goal }

(** The sequent as a single implication formula. *)
let to_form (s : t) : Form.t = Form.mk_impl_chain s.hyps s.goal

(** Conversely: split an implication chain into a sequent. *)
let of_form ?(name = "goal") (f : Form.t) : t =
  let hyps, goal = Form.hypotheses_and_goal f in
  { name; hyps; goal }

(* ------------------------------------------------------------------ *)
(* Canonicalization and digests (verdict-cache keys)                   *)
(* ------------------------------------------------------------------ *)

(** Canonical form for caching: every hypothesis and the goal are
    alpha-normalized (bound variables renamed by binding depth, sorts and
    type annotations preserved), then the hypotheses are sorted and
    deduplicated by their canonical printing.  Two sequents that differ
    only in hypothesis order or bound-variable names canonicalize
    identically. *)
let canonicalize (s : t) : t =
  (* [alpha_normalize_shared] and [to_canonical_string] are memoized
     through the hash-consing kernel, so hypotheses shared across the
     obligations of one method (split_vc reuses them physically) are
     normalized and printed once per run, not once per obligation. *)
  let keyed =
    List.map
      (fun h ->
        let h = Form.alpha_normalize_shared ~keep_types:true h in
        (Pprint.to_canonical_string h, h))
      s.hyps
  in
  let keyed =
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) keyed
  in
  { s with
    hyps = List.map snd keyed;
    goal = Form.alpha_normalize_shared ~keep_types:true s.goal }

(** A stable key for the canonicalized sequent: the MD5 digest of its
    {e canonical} printing ({!Pprint.to_canonical_string} — the surface
    printer is ambiguous between integer and set operators, so keying on
    it could return a cached verdict for the wrong obligation).  [name]
    does not participate — obligations regenerated under different labels
    still collide, which is the point. *)
let digest_plain (s : t) : string =
  let c = canonicalize s in
  let buf = Buffer.create 256 in
  List.iter
    (fun h ->
      Buffer.add_string buf (Pprint.to_canonical_string h);
      Buffer.add_char buf '\n')
    c.hyps;
  Buffer.add_string buf "|-";
  Buffer.add_string buf (Pprint.to_canonical_string c.goal);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest_memo : string Hashcons.Memo.t = Hashcons.Memo.create ()

let digest (s : t) : string =
  if not (Hashcons.enabled ()) then digest_plain s
  else
    (* keyed by the interned implication form: structurally identical
       sequents (the common re-dispatch case) share one entry, while
       sequents differing only in hypothesis order each compute once and
       land on the same digest via canonicalization *)
    Hashcons.Memo.find_or_add digest_memo (Form.htag (Form.import (to_form s)))
      (fun () -> digest_plain s)

(** The sequent's refutation form, [simplify (hyps /\ ~goal)] — what the
    refutation-based front ends (smt, bapa, fol) actually translate.
    Centralized so they all hit the same simplify memo entry instead of
    each re-simplifying the same obligation. *)
let refutand (s : t) : Form.t =
  Simplify.simplify (Form.mk_and (s.hyps @ [ Form.mk_not s.goal ]))

let pp ppf (s : t) =
  Format.fprintf ppf "@[<v>%a@]"
    (fun ppf () ->
      List.iter (fun h -> Format.fprintf ppf "%a@," Pprint.pp h) s.hyps;
      Format.fprintf ppf "|- %a" Pprint.pp s.goal)
    ()

let verdict_to_string = function
  | Valid -> "valid"
  | Invalid m -> "invalid (" ^ m ^ ")"
  | Unknown m -> "unknown (" ^ m ^ ")"

(** Just the constructor tag, for trace attribution and stats keys. *)
let verdict_kind = function
  | Valid -> "valid"
  | Invalid _ -> "invalid"
  | Unknown _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

(** Wrap a prover so that every [prove] call becomes a trace span
    (category ["prover"], name = the prover's name) carrying the query
    size on entry and the verdict on exit.  Costs one atomic load per
    call while tracing is disabled. *)
let traced_prover (p : prover) : prover =
  { p with
    prove =
      (fun s ->
        if not (Trace.enabled ()) then p.prove s
        else begin
          let sp =
            Trace.start_span ~cat:"prover"
              ~args:(fun () ->
                [ ("size", Trace.I (Form.size_shared (to_form s)));
                  ("hyps", Trace.I (List.length s.hyps)) ])
              p.prover_name
          in
          match p.prove s with
          | v ->
            Trace.finish_span
              ~args:(fun () -> [ ("verdict", Trace.S (verdict_kind v)) ])
              sp;
            v
          | exception e ->
            Trace.finish_span
              ~args:(fun () -> [ ("raised", Trace.S (Printexc.to_string e)) ])
              sp;
            raise e
        end) }
