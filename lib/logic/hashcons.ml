(** Type-safe modular hash-consing with a sharded, weak consing store.

    After Filliâtre & Conchon, {e Type-Safe Modular Hash-Consing} (ML
    Workshop 2006): every distinct node is stored at most once, in a weak
    table so that nodes the program no longer references are reclaimed by
    the GC.  [hashcons] returns a {!type:hash_consed} wrapper carrying a
    unique [tag] and a precomputed [hkey], which makes equality, hashing
    and memo-table lookups on consed values O(1).

    {2 Domain safety}

    The dispatcher proves obligations across OCaml 5 domains
    ([lib/dispatch/pool.ml]) and all of them cons into one global store
    per node type, so the store must tolerate concurrent consing.  Of the
    two designs named in the kernel issue — per-domain stores with
    id-disjoint tag ranges, or a sharded mutex-striped global table — we
    use the {e sharded global table}: a node's [hkey] selects one of
    [shards] independent sub-tables, each guarded by its own mutex, so two
    domains only contend when their nodes hash into the same shard.
    Per-domain stores were rejected because a formula consed in one domain
    would then never be physically equal to the identical formula consed
    in another, which defeats the whole point for the cross-domain verdict
    cache and memo tables.

    Tags come from a single global [Atomic] counter: unique across every
    shard, store and domain, and {e never reused} — even after the weak
    store drops a node, no later node gets its tag.  Memo tables keyed by
    tag therefore can never alias a dead node's entry to a live one; a
    stale entry is garbage, never a wrong answer. *)

type 'a hash_consed = {
  node : 'a;  (** the consed value *)
  tag : int;  (** unique id; equal tags iff physically equal wrappers *)
  hkey : int; (** the node's hash, precomputed *)
}

(* --------------------------------------------------------------- *)
(* Global kill switch                                               *)
(* --------------------------------------------------------------- *)

(* The memoizing wrappers throughout lib/logic consult this switch and
   fall back to their plain implementations when it is off: the
   [--no-hashcons] escape hatch for A/B runs and debugging.  Reading it
   is one atomic load.  [JAHOB_NO_HASHCONS] in the environment disables
   the kernel before any code runs. *)
let enabled_flag =
  Atomic.make (Sys.getenv_opt "JAHOB_NO_HASHCONS" = None)

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* --------------------------------------------------------------- *)
(* The consing store                                                *)
(* --------------------------------------------------------------- *)

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  (** Structural equality {e one level deep}: children of a node are
      already consed, so implementations compare them with [==] — this is
      what keeps consing O(1) per node. *)

  val hash : t -> int
  (** Must agree with [equal]; children contribute their [hkey]. *)
end

module type S = sig
  type key
  type t

  val create : ?shards:int -> unit -> t
  val hashcons : t -> key -> key hash_consed
  val count : t -> int
end

(* one tag sequence for every store in the program: tags are then unique
   program-wide, which lets memo tables be shared across node types *)
let next_tag = Atomic.make 0

(* --------------------------------------------------------------- *)
(* Lock-contention audit                                            *)
(* --------------------------------------------------------------- *)

(* Shard and stripe mutexes are supposed to be effectively private at
   any realistic [-j]; this counter is the evidence.  [lock_mutex] takes
   the uncontended path with one [try_lock] (same cost as [lock]) and
   only a lost race pays the atomic bump, so the audit cannot itself
   become the contended line.  The scaling bench snapshots it to
   attribute multicore overhead. *)
let contended = Atomic.make 0

let lock_mutex (m : Mutex.t) =
  if not (Mutex.try_lock m) then begin
    Atomic.incr contended;
    Mutex.lock m
  end

type lock_stats = { contended_acquisitions : int }

let lock_stats () = { contended_acquisitions = Atomic.get contended }
let reset_lock_stats () = Atomic.set contended 0

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

module Make (H : HashedType) : S with type key = H.t = struct
  type key = H.t
  type data = H.t hash_consed

  type shard = {
    lock : Mutex.t;
    mutable table : data Weak.t array; (* buckets of weak pointers *)
    mutable size : int;                (* live entries, approximate *)
  }

  type t = { shards : shard array; shard_mask : int }

  let create ?(shards = 16) () =
    let n = round_pow2 (max 1 shards) in
    { shards =
        Array.init n (fun _ ->
            { lock = Mutex.create ();
              table = Array.init 64 (fun _ -> Weak.create 0);
              size = 0 });
      shard_mask = n - 1 }

  (* index of a node within a shard's bucket array; skips the low bits
     that selected the shard *)
  let index hkey len = (hkey lsr 6) mod len

  (* append [d] to the bucket at [idx], growing the weak array if every
     slot is occupied.  Caller holds the shard lock. *)
  let bucket_add (sh : shard) idx (d : data) =
    let b = sh.table.(idx) in
    let len = Weak.length b in
    let rec free i = if i >= len then None else if Weak.check b i then free (i + 1) else Some i in
    match free 0 with
    | Some i -> Weak.set b i (Some d)
    | None ->
      let nb = Weak.create (max 3 (2 * len)) in
      Weak.blit b 0 nb 0 len;
      Weak.set nb len (Some d);
      sh.table.(idx) <- nb

  (* double the bucket array and redistribute the live entries; also
     refreshes the approximate live count.  Caller holds the shard lock. *)
  let resize (sh : shard) =
    let old = sh.table in
    let nlen = (2 * Array.length old) + 1 in
    sh.table <- Array.init nlen (fun _ -> Weak.create 0);
    sh.size <- 0;
    Array.iter
      (fun b ->
        for i = 0 to Weak.length b - 1 do
          match Weak.get b i with
          | Some d ->
            bucket_add sh (index d.hkey nlen) d;
            sh.size <- sh.size + 1
          | None -> ()
        done)
      old

  let hashcons (t : t) (k : key) : data =
    let hk = H.hash k land max_int in
    let sh = t.shards.(hk land t.shard_mask) in
    lock_mutex sh.lock;
    let len = Array.length sh.table in
    let idx = index hk len in
    let b = sh.table.(idx) in
    let blen = Weak.length b in
    let rec find i =
      if i >= blen then None
      else
        match Weak.get b i with
        | Some d when d.hkey = hk && H.equal d.node k -> Some d
        | _ -> find (i + 1)
    in
    let r =
      match find 0 with
      | Some d -> d
      | None ->
        let d = { node = k; tag = Atomic.fetch_and_add next_tag 1; hkey = hk } in
        bucket_add sh idx d;
        sh.size <- sh.size + 1;
        if sh.size > 3 * len then resize sh;
        d
    in
    Mutex.unlock sh.lock;
    r

  let count (t : t) =
    Array.fold_left
      (fun acc sh ->
        Mutex.lock sh.lock;
        let n = ref 0 in
        Array.iter
          (fun b ->
            for i = 0 to Weak.length b - 1 do
              if Weak.check b i then incr n
            done)
          sh.table;
        Mutex.unlock sh.lock;
        acc + !n)
      0 t.shards
end

(* --------------------------------------------------------------- *)
(* Memo tables keyed by tag                                         *)
(* --------------------------------------------------------------- *)

(** Mutex-striped memo tables keyed by a consed node's [tag].  Because
    tags are never reused, entries can never alias; because the memoized
    functions are pure, two domains racing to fill the same entry both
    compute the same answer and either may win.  The computation runs
    {e outside} the stripe lock, so memoized functions may recurse into
    their own (or any other) memo table. *)
module Memo = struct
  type 'a t = {
    locks : Mutex.t array;
    tables : (int, 'a) Hashtbl.t array;
    mask : int;
  }

  (* every table registers a clear closure so [clear_all] can reset the
     kernel (benchmarks A/B cold starts, long-running processes) *)
  let clearers : (unit -> unit) list ref = ref []
  let clearers_lock = Mutex.create ()

  let clear (m : 'a t) =
    Array.iteri
      (fun i tbl ->
        Mutex.lock m.locks.(i);
        Hashtbl.reset tbl;
        Mutex.unlock m.locks.(i))
      m.tables

  let create ?(shards = 16) () : 'a t =
    let n = round_pow2 (max 1 shards) in
    let m =
      { locks = Array.init n (fun _ -> Mutex.create ());
        tables = Array.init n (fun _ -> Hashtbl.create 64);
        mask = n - 1 }
    in
    Mutex.lock clearers_lock;
    clearers := (fun () -> clear m) :: !clearers;
    Mutex.unlock clearers_lock;
    m

  (* tags are never reused, so entries for dead nodes are unreachable
     garbage; dropping a full stripe wholesale costs only recomputation *)
  let max_stripe_entries = 16_384

  let find_or_add (m : 'a t) (tag : int) (compute : unit -> 'a) : 'a =
    let i = tag land m.mask in
    let lock = m.locks.(i) and tbl = m.tables.(i) in
    lock_mutex lock;
    let cached = Hashtbl.find_opt tbl tag in
    Mutex.unlock lock;
    match cached with
    | Some v -> v
    | None ->
      let v = compute () in
      lock_mutex lock;
      if Hashtbl.length tbl >= max_stripe_entries then Hashtbl.reset tbl;
      (* first writer wins; racing writers computed the same pure value *)
      if not (Hashtbl.mem tbl tag) then Hashtbl.add tbl tag v;
      Mutex.unlock lock;
      v

  (** Empty every memo table created so far, in every module. *)
  let clear_all () =
    Mutex.lock clearers_lock;
    let fs = !clearers in
    Mutex.unlock clearers_lock;
    List.iter (fun f -> f ()) fs
end
