(** Bounded ground instantiation of sequent hypotheses.

    Verification conditions routinely contain universally quantified frame
    conditions and set equalities whose proofs only need finitely many
    ground instances — the object constants already in the sequent.  This
    module saturates a sequent with such instances so that the ground
    provers (SMT especially) can finish propositionally:

    - [ALL x (y). body] hypotheses are instantiated with all object
      candidates (arity at most 2, instance count capped);
    - set-sorted equalities and inclusions are expanded pointwise at each
      candidate ([c : S <-> c : T] for [S = T]), with memberships
      simplified so unions, differences and singletons unfold.

    One round of quantifier instantiation can expose new set equalities
    (e.g. a frame condition instantiated at a receiver), so the process
    runs for a configurable number of rounds. *)

let max_new_hyps = 500

(* object-denoting candidate terms of a sequent: variables in element or
   receiver position, except those used as field functions or sets *)
let candidates (hyps : Form.t list) (goal : Form.t) : Form.t list =
  let acc = ref [ Form.mk_null ] in
  let functions = ref [] in
  let sets = ref [] in
  let note t =
    match Form.strip_types t with
    | Form.Var _ ->
      if not (List.exists (Form.equal t) !acc) then acc := t :: !acc
    | _ -> ()
  in
  let note_fn t =
    match Form.strip_types t with
    | Form.Var x -> if not (List.mem x !functions) then functions := x :: !functions
    | _ -> ()
  in
  let note_set t =
    match Form.strip_types t with
    | Form.Var x -> if not (List.mem x !sets) then sets := x :: !sets
    | _ -> ()
  in
  let scan f =
    Form.fold
      (fun () g ->
        match g with
        | Form.App (Form.Const Form.Elem, [ x; st ]) ->
          note x;
          note_set st
        | Form.App (Form.Const (Form.Subseteq | Form.Subset), [ a; b ]) ->
          note_set a;
          note_set b
        | Form.App (Form.Const Form.FieldRead, [ fld; r ]) ->
          note_fn fld;
          note r
        | Form.App (Form.Const Form.Eq, [ a; b ]) -> (
          match Form.strip_types a, Form.strip_types b with
          | _, Form.Const Form.Null -> note a
          | Form.Const Form.Null, _ -> note b
          | _ -> ())
        | _ -> ())
      () f
  in
  List.iter scan hyps;
  scan goal;
  List.filter
    (fun t ->
      match Form.strip_types t with
      | Form.Var x -> (not (List.mem x !functions)) && not (List.mem x !sets)
      | _ -> true)
    !acc

(* set-sorted sides, detected syntactically plus via type inference *)
let set_expr_detector (hyps : Form.t list) (goal : Form.t) :
    Form.t -> bool =
  let set_vars =
    match Typecheck.infer (Form.mk_impl_chain hyps goal) with
    | _, _, free ->
      Typecheck.Smap.fold
        (fun x ty acc ->
          match ty with
          | Ftype.Set _ -> x :: acc
          | Ftype.Arrow (_, Ftype.Set _) -> x :: acc
          | _ -> acc)
        free []
    | exception Typecheck.Type_error _ -> []
  in
  fun g ->
    match Form.strip_types g with
    | Form.Const (Form.EmptySet | Form.UnivSet) -> true
    | Form.App
        (Form.Const (Form.Union | Form.Inter | Form.Diff | Form.FiniteSet), _)
      ->
      true
    | Form.Binder (Form.Comprehension, _, _) -> true
    | Form.Var x -> List.mem x set_vars
    | Form.App (Form.Const Form.FieldRead, [ fld; _ ]) -> (
      match Form.strip_types fld with
      | Form.Var x -> List.mem x set_vars
      | _ -> false)
    | _ -> false

(* pointwise expansion of one set fact at one candidate *)
let pointwise_at (c : Form.t) (h : Form.t) (is_set : Form.t -> bool) :
    Form.t option =
  match Form.strip_types h with
  | Form.App (Form.Const Form.Eq, [ a; b ]) when is_set a || is_set b ->
    Some (Form.mk_iff (Form.mk_elem c a) (Form.mk_elem c b))
  | Form.App (Form.Const Form.Subseteq, [ a; b ]) ->
    Some (Form.mk_impl (Form.mk_elem c a) (Form.mk_elem c b))
  | _ -> None

let instantiate_forall (cands : Form.t list) (h : Form.t) : Form.t list =
  match Form.strip_types h with
  | Form.Binder (Form.Forall, vars, body) when List.length vars <= 2 ->
    let arity = List.length vars in
    let rec tuples k =
      if k = 0 then [ [] ]
      else
        List.concat_map
          (fun rest -> List.map (fun c -> c :: rest) cands)
          (tuples (k - 1))
    in
    if List.length cands > 10 && arity = 2 then []
    else
      List.map
        (fun tuple ->
          let sub = List.map2 (fun (x, _) c -> (x, c)) vars tuple in
          Form.subst_list sub body)
        (tuples arity)
  | _ -> []

(** Replace a set-sorted goal equality/inclusion by its pointwise version
    at a fresh witness constant (extensionality): [S = T] becomes
    [w : S <-> w : T].  Valid iff the original is valid, and it exposes
    the witness to ground instantiation. *)
let extensionalize_goal (s : Sequent.t) : Sequent.t =
  let is_set = set_expr_detector s.Sequent.hyps s.Sequent.goal in
  let w () = Form.Var (Form.fresh_name "witness") in
  match Form.strip_types s.Sequent.goal with
  | Form.App (Form.Const Form.Eq, [ a; b ]) when is_set a || is_set b ->
    let w = w () in
    { s with
      Sequent.goal =
        (* fresh witness name: memoizing could never hit, stay plain *)
        Simplify.simplify_plain
          (Form.mk_iff (Form.mk_elem w a) (Form.mk_elem w b))
    }
  | Form.App (Form.Const Form.Subseteq, [ a; b ]) ->
    let w = w () in
    { s with
      Sequent.goal =
        Simplify.simplify_plain
          (Form.mk_impl (Form.mk_elem w a) (Form.mk_elem w b))
    }
  | _ -> s

(** Saturate a sequent with ground instances (the original hypotheses are
    kept). *)
let saturate ?(rounds = 3) (s : Sequent.t) : Sequent.t =
  let s = extensionalize_goal s in
  let is_set = set_expr_detector s.Sequent.hyps s.Sequent.goal in
  let cands = candidates s.Sequent.hyps s.Sequent.goal in
  let seen = ref [] in
  let fresh_facts = ref [] in
  let note f =
    (* each produced instance is a fresh tree; the memo never pays here *)
    let f = Simplify.simplify_plain f in
    if
      (not (Form.is_true f))
      && (not (List.exists (Form.equal f) !seen))
      && List.length !fresh_facts < max_new_hyps
    then begin
      seen := f :: !seen;
      fresh_facts := f :: !fresh_facts
    end
  in
  List.iter (fun h -> seen := Simplify.simplify h :: !seen) s.Sequent.hyps;
  let expand (frontier : Form.t list) : Form.t list =
    let produced = ref [] in
    List.iter
      (fun h ->
        let insts = instantiate_forall cands h in
        let points =
          List.filter_map (fun c -> pointwise_at c h is_set) cands
        in
        (* unit propagation: an implication whose antecedent conjuncts are
           all established releases its consequent's conjuncts *)
        let propagated =
          match Form.strip_types h with
          | Form.App (Form.Const Form.Impl, [ a; b ]) ->
            let holds g = List.exists (Form.equal (Simplify.simplify_plain g)) !seen in
            if List.for_all holds (Form.conjuncts a) then Form.conjuncts b
            else []
          | _ -> []
        in
        List.iter
          (fun f ->
            let f = Simplify.simplify_plain f in
            if not (Form.is_true f) then produced := f :: !produced)
          (insts @ points @ propagated))
      frontier;
    !produced
  in
  let rec go k frontier =
    if k = 0 || frontier = [] then ()
    else begin
      let produced = expand frontier in
      let fresh =
        List.filter
          (fun f -> not (List.exists (Form.equal f) !seen))
          produced
      in
      List.iter note fresh;
      go (k - 1) fresh
    end
  in
  go rounds (List.map Simplify.simplify s.Sequent.hyps);
  { s with Sequent.hyps = s.Sequent.hyps @ List.rev !fresh_facts }
