(** Proof obligations and the common decision-procedure interface.

    Every reasoner in the portfolio — SMT, MONA, BAPA, the first-order
    prover — consumes a {!type:t} and produces a {!type:verdict}. *)

type t = {
  name : string;  (** provenance, e.g. ["List.add: postcondition"] *)
  hyps : Form.t list;
  goal : Form.t;
}

type verdict =
  | Valid  (** proved *)
  | Invalid of string  (** refuted, with a countermodel description *)
  | Unknown of string  (** gave up, with a reason *)

type prover = {
  prover_name : string;
  prove : t -> verdict;
}

(** Build a sequent; [name] defaults to ["goal"]. *)
val make : ?name:string -> Form.t list -> Form.t -> t

(** The sequent as a single implication formula. *)
val to_form : t -> Form.t

(** Split an implication chain back into a sequent. *)
val of_form : ?name:string -> Form.t -> t

(** Canonical form for verdict caching: alpha-normalized hypotheses and
    goal (binder sorts preserved), hypotheses sorted and deduplicated by
    their canonical printing. *)
val canonicalize : t -> t

(** Stable cache key: MD5 of the canonicalized sequent's {e canonical}
    printing ({!Pprint.to_canonical_string}).  Invariant under hypothesis
    reordering, duplicate hypotheses and bound-variable renaming; the
    [name] field is ignored.  Distinct operators that share surface syntax
    ([<=] vs subset-or-equal, [-] vs set difference) and binders that
    differ only in sort produce distinct keys — the surface printer is
    ambiguous on both, which made it unsound as a cache key. *)
val digest : t -> string

(** The sequent's refutation form, [Simplify.simplify (hyps /\ ~goal)] —
    the formula the refutation-based provers (smt, bapa, fol) translate.
    Centralized so they share one memoized simplification per obligation. *)
val refutand : t -> Form.t

val pp : Format.formatter -> t -> unit
val verdict_to_string : verdict -> string

(** Just the constructor tag: ["valid"], ["invalid"] or ["unknown"]. *)
val verdict_kind : verdict -> string

(** Wrap a prover so every [prove] call becomes a trace span (category
    ["prover"], name = the prover's name) carrying query size on entry and
    the verdict on exit.  One atomic load per call when tracing is off. *)
val traced_prover : prover -> prover
