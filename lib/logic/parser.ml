(** Parser for the Isabelle-subset specification syntax.

    Accepts exactly the notation used in the paper's figures:
    {v
      o ~: content & o ~= null
      content = old content Un {o}
      a..List.content Int b..List.content = {}
      {n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}
      tree [List.first, Node.next]
      ALL n1 n2. n1 : nodes & n2 : nodes & ... --> n1 = n2
    v}

    The parser is type-agnostic: [<=], [<] and [-] always parse as the
    arithmetic constants; {!Typecheck.disambiguate} rewrites them to the
    set-theoretic constants where the operands are sets. *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Tokens                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string (* possibly dot-qualified: List.content *)
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | DOTDOT
  | EQ
  | NEQ
  | COLON
  | NOTELEM
  | COLONCOLON
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | AMP
  | BAR
  | TILDE
  | ARROW (* --> *)
  | IFFTOK (* <-> *)
  | PERCENT
  | ASSIGN (* := used by annotation parsers that reuse this lexer *)
  | KW of string (* ALL EX Un Int div mod if then else True False null Univ *)
  | EOF

let keywords =
  [ "ALL"; "EX"; "Un"; "Int"; "div"; "mod"; "if"; "then"; "else"; "True";
    "False"; "null"; "Univ" ]

let token_to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | DOT -> "."
  | DOTDOT -> ".."
  | EQ -> "="
  | NEQ -> "~="
  | COLON -> ":"
  | NOTELEM -> "~:"
  | COLONCOLON -> "::"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | AMP -> "&"
  | BAR -> "|"
  | TILDE -> "~"
  | ARROW -> "-->"
  | IFFTOK -> "<->"
  | PERCENT -> "%"
  | ASSIGN -> ":="
  | KW s -> s
  | EOF -> "<eof>"

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let tokenize (s : string) : token array =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit s.[!j] do incr j done;
      emit (INT (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if is_ident_start c then begin
      (* scan a dot-qualified identifier; a '.' is part of the identifier
         only when followed by an identifier start and not by another '.' *)
      let j = ref !i in
      let continue = ref true in
      while !continue do
        while !j < n && is_ident_char s.[!j] do incr j done;
        if
          !j + 1 < n
          && s.[!j] = '.'
          && is_ident_start s.[!j + 1]
          && not (!j + 1 < n && s.[!j + 1] = '.')
        then incr j
        else continue := false
      done;
      let word = String.sub s !i (!j - !i) in
      if List.mem word keywords then emit (KW word) else emit (IDENT word);
      i := !j
    end
    else begin
      let two a b t =
        if peek 1 = Some b then begin
          emit t;
          i := !i + 2;
          true
        end
        else begin
          ignore a;
          false
        end
      in
      (match c with
      | '(' -> emit LPAREN; incr i
      | ')' -> emit RPAREN; incr i
      | '{' -> emit LBRACE; incr i
      | '}' -> emit RBRACE; incr i
      | '[' -> emit LBRACKET; incr i
      | ']' -> emit RBRACKET; incr i
      | ',' -> emit COMMA; incr i
      | '.' -> if not (two '.' '.' DOTDOT) then (emit DOT; incr i)
      | '=' -> emit EQ; incr i
      | '+' -> emit PLUS; incr i
      | '*' -> emit STAR; incr i
      | '&' -> emit AMP; incr i
      | '|' -> emit BAR; incr i
      | '%' -> emit PERCENT; incr i
      | '~' ->
        if not (two '~' '=' NEQ) && not (two '~' ':' NOTELEM) then (
          emit TILDE;
          incr i)
      | ':' ->
        if not (two ':' ':' COLONCOLON) && not (two ':' '=' ASSIGN) then (
          emit COLON;
          incr i)
      | '<' ->
        if peek 1 = Some '-' && peek 2 = Some '>' then begin
          emit IFFTOK;
          i := !i + 3
        end
        else if not (two '<' '=' LE) then (emit LT; incr i)
      | '>' -> if not (two '>' '=' GE) then (emit GT; incr i)
      | '-' ->
        if peek 1 = Some '-' && peek 2 = Some '>' then begin
          emit ARROW;
          i := !i + 3
        end
        else (emit MINUS; incr i)
      | _ -> error "lexical error at character %c (offset %d)" c !i)
    end
  done;
  emit EOF;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type state = { toks : token array; mutable pos : int }

let cur st = st.toks.(st.pos)
let peek_at st k =
  if st.pos + k < Array.length st.toks then st.toks.(st.pos + k) else EOF
let advance st = st.pos <- st.pos + 1

let expect st t =
  if cur st = t then advance st
  else
    error "expected '%s' but found '%s'" (token_to_string t)
      (token_to_string (cur st))

(* atomic: the speculative-invariant loop re-parses under parallel dispatch *)
let tvar_counter = Atomic.make 0

let fresh_tvar () = Ftype.Tvar (Atomic.fetch_and_add tvar_counter 1 + 1)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

(* objset | bool | int | obj | <base> set | t1 => t2 *)
let rec parse_type st : Ftype.t =
  let base = parse_type_atom st in
  match cur st with
  | EQ when peek_at st 1 = GT ->
    (* '=>' arrives as EQ GT *)
    advance st;
    advance st;
    Ftype.Arrow (base, parse_type st)
  | _ -> base

and parse_type_atom st : Ftype.t =
  let postfix_set t =
    let t = ref t in
    let continue = ref true in
    while !continue do
      match cur st with
      | IDENT "set" ->
        advance st;
        t := Ftype.Set !t
      | _ -> continue := false
    done;
    !t
  in
  match cur st with
  | IDENT "bool" | KW "True" ->
    advance st;
    postfix_set Ftype.Bool
  | IDENT "int" ->
    advance st;
    postfix_set Ftype.Int
  | IDENT "obj" | IDENT "object" ->
    advance st;
    postfix_set Ftype.Obj
  | IDENT "objset" ->
    advance st;
    postfix_set Ftype.objset
  | IDENT _ ->
    (* unknown named sorts (class names) are object references *)
    advance st;
    postfix_set Ftype.Obj
  | LPAREN ->
    advance st;
    let t = parse_type st in
    expect st RPAREN;
    postfix_set t
  | t -> error "expected a type but found '%s'" (token_to_string t)

(* ------------------------------------------------------------------ *)
(* Formulas                                                            *)
(* ------------------------------------------------------------------ *)

(* Binding powers; must agree with Pprint. *)
let prec_impl = 10
let prec_or = 20
let prec_and = 30
let prec_cmp = 50
let prec_add = 60
let prec_mul = 70

let infix_info = function
  | ARROW -> Some (prec_impl, `Right, fun a b -> Form.App (Const Impl, [ a; b ]))
  | IFFTOK -> Some (prec_impl, `Right, fun a b -> Form.App (Const Iff, [ a; b ]))
  | BAR -> Some (prec_or, `Left, fun a b -> Form.mk_or [ a; b ])
  | AMP -> Some (prec_and, `Left, fun a b -> Form.mk_and [ a; b ])
  | EQ -> Some (prec_cmp, `None, fun a b -> Form.App (Const Eq, [ a; b ]))
  | NEQ -> Some (prec_cmp, `None, fun a b -> Form.mk_neq a b)
  | COLON -> Some (prec_cmp, `None, fun a b -> Form.mk_elem a b)
  | NOTELEM -> Some (prec_cmp, `None, fun a b -> Form.mk_notelem a b)
  | LT -> Some (prec_cmp, `None, fun a b -> Form.mk_lt a b)
  | LE -> Some (prec_cmp, `None, fun a b -> Form.mk_le a b)
  | GT -> Some (prec_cmp, `None, fun a b -> Form.mk_gt a b)
  | GE -> Some (prec_cmp, `None, fun a b -> Form.mk_ge a b)
  | PLUS -> Some (prec_add, `Left, fun a b -> Form.mk_plus a b)
  | MINUS -> Some (prec_add, `Left, fun a b -> Form.mk_minus a b)
  | KW "Un" -> Some (prec_add, `Left, fun a b -> Form.App (Const Union, [ a; b ]))
  | STAR -> Some (prec_mul, `Left, fun a b -> Form.mk_mult a b)
  | KW "div" -> Some (prec_mul, `Left, fun a b -> Form.App (Const Div, [ a; b ]))
  | KW "mod" -> Some (prec_mul, `Left, fun a b -> Form.App (Const Mod, [ a; b ]))
  | KW "Int" -> Some (prec_mul, `Left, fun a b -> Form.mk_inter a b)
  | IDENT _ | INT _ | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | DOT | DOTDOT | COLONCOLON | TILDE | PERCENT | ASSIGN | KW _ | EOF ->
    None

(* Identifiers in head position that denote built-in operators. *)
let builtin_head = function
  | "card" -> Some (Form.Const Card, 1)
  | "old" -> Some (Form.Const Old, 1)
  | "fieldRead" -> Some (Form.Const FieldRead, 2)
  | "fieldWrite" -> Some (Form.Const FieldWrite, 3)
  | "arrayRead" -> Some (Form.Const ArrayRead, 3)
  | "arrayWrite" -> Some (Form.Const ArrayWrite, 4)
  | "rtrancl_pt" -> Some (Form.Const Rtrancl, 3)
  | _ -> None

let is_atom_start = function
  | IDENT _ | INT _ | LPAREN | LBRACE | KW "True" | KW "False" | KW "null"
  | KW "Univ" ->
    true
  | _ -> false

let rec parse_formula st min_prec : Form.t =
  let lhs = parse_prefix st in
  climb st lhs min_prec

and climb st lhs min_prec =
  match infix_info (cur st) with
  | Some (p, assoc, build) when p >= min_prec ->
    advance st;
    let next_min = match assoc with `Left -> p + 1 | `Right -> p | `None -> p + 1 in
    let rhs = parse_formula st next_min in
    climb st (build lhs rhs) min_prec
  | _ -> lhs

and parse_prefix st : Form.t =
  match cur st with
  | TILDE ->
    advance st;
    Form.mk_not (parse_prefix st)
  | MINUS -> (
    advance st;
    match cur st with
    | INT n ->
      advance st;
      Form.mk_int (-n)
    | _ -> Form.mk_uminus (parse_prefix_app st))
  | KW "ALL" ->
    advance st;
    let vars = parse_binder_vars st in
    expect st DOT;
    Form.Binder (Forall, vars, parse_formula st 0)
  | KW "EX" ->
    advance st;
    let vars = parse_binder_vars st in
    expect st DOT;
    Form.Binder (Exists, vars, parse_formula st 0)
  | PERCENT ->
    advance st;
    let vars = parse_binder_vars st in
    expect st DOT;
    Form.Binder (Lambda, vars, parse_formula st 0)
  | KW "if" ->
    advance st;
    let c = parse_formula st 1 in
    expect st (KW "then");
    let a = parse_formula st 1 in
    expect st (KW "else");
    let b = parse_formula st 1 in
    Form.mk_ite c a b
  | IDENT _ | INT _ | LPAREN | LBRACE | KW _ | LBRACKET | RPAREN | RBRACE
  | RBRACKET | COMMA | DOT | DOTDOT | EQ | NEQ | COLON | NOTELEM | COLONCOLON
  | LT | LE | GT | GE | PLUS | STAR | AMP | BAR | ARROW | IFFTOK | ASSIGN | EOF
    ->
    parse_prefix_app st

(* application: atom atom* — but only when the head is an identifier (so
   'first n' inside rtrancl args works while '1 2' is rejected). *)
and parse_prefix_app st : Form.t =
  let head = parse_postfix st in
  match Form.strip_types head with
  | Var name -> begin
    match builtin_head name with
    | Some (c, arity) ->
      if name = "old" || name = "card" then
        (* unary prefix operators: take exactly one tight argument *)
        Form.App (c, [ parse_postfix st ])
      else begin
        let args = ref [] in
        for _ = 1 to arity do
          args := parse_postfix st :: !args
        done;
        Form.App (c, List.rev !args)
      end
    | None ->
      if name = "tree" && cur st = LBRACKET then begin
        advance st;
        let flds = parse_comma_list st RBRACKET in
        Form.App (Const Tree, flds)
      end
      else collect_args st head
  end
  | Binder (Lambda, _, _) -> collect_args st head
  | _ -> head

(* general application by juxtaposition *)
and collect_args st head =
  let args = ref [] in
  while is_atom_start (cur st) do
    args := parse_postfix st :: !args
  done;
  Form.mk_app head (List.rev !args)

(* postfix: atom (..field)* (::type)? *)
and parse_postfix st : Form.t =
  let atom = ref (parse_atom st) in
  let continue = ref true in
  while !continue do
    match cur st with
    | DOTDOT ->
      advance st;
      let fld =
        match cur st with
        | IDENT f ->
          advance st;
          Form.Var f
        | t -> error "expected field name after '..' but found '%s'"
                 (token_to_string t)
      in
      atom := Form.mk_field_read fld !atom
    | COLONCOLON ->
      advance st;
      let ty = parse_type st in
      atom := Form.TypedForm (!atom, ty)
    | _ -> continue := false
  done;
  !atom

and parse_atom st : Form.t =
  match cur st with
  | IDENT x ->
    advance st;
    Form.Var x
  | INT n ->
    advance st;
    Form.mk_int n
  | KW "True" ->
    advance st;
    Form.mk_true
  | KW "False" ->
    advance st;
    Form.mk_false
  | KW "null" ->
    advance st;
    Form.mk_null
  | KW "Univ" ->
    advance st;
    Form.mk_univ
  | LPAREN ->
    advance st;
    let f = parse_formula st 0 in
    expect st RPAREN;
    f
  | LBRACE ->
    advance st;
    if cur st = RBRACE then begin
      advance st;
      Form.mk_emptyset
    end
    else begin
      (* comprehension {x. F} / {x::ty. F} or finite set {e1, ..., en} *)
      match cur st, peek_at st 1 with
      | IDENT x, DOT ->
        advance st;
        advance st;
        let body = parse_formula st 0 in
        expect st RBRACE;
        Form.mk_comprehension [ (x, fresh_tvar ()) ] body
      | IDENT x, COLONCOLON when is_comprehension_with_type st ->
        advance st;
        advance st;
        let ty = parse_type st in
        expect st DOT;
        let body = parse_formula st 0 in
        expect st RBRACE;
        Form.mk_comprehension [ (x, ty) ] body
      | _ ->
        let elems = parse_comma_list st RBRACE in
        Form.mk_finite_set elems
    end
  | t -> error "unexpected token '%s'" (token_to_string t)

(* distinguish {x::ty. F} from a finite set whose first element is typed *)
and is_comprehension_with_type st =
  (* scan forward past the type to see whether a DOT follows before any
     COMMA or RBRACE at depth 0 *)
  let k = ref 2 and depth = ref 0 and result = ref false and stop = ref false in
  while not !stop do
    (match peek_at st !k with
    | LPAREN -> incr depth
    | RPAREN -> decr depth
    | DOT when !depth = 0 ->
      result := true;
      stop := true
    | COMMA when !depth = 0 -> stop := true
    | RBRACE when !depth = 0 -> stop := true
    | EOF -> stop := true
    | _ -> ());
    incr k
  done;
  !result

and parse_comma_list st closer : Form.t list =
  if cur st = closer then begin
    advance st;
    []
  end
  else begin
    let first = parse_formula st 0 in
    let items = ref [ first ] in
    while cur st = COMMA do
      advance st;
      items := parse_formula st 0 :: !items
    done;
    expect st closer;
    List.rev !items
  end

and parse_binder_vars st : (Form.ident * Ftype.t) list =
  let vars = ref [] in
  let continue = ref true in
  while !continue do
    match cur st with
    | IDENT x ->
      advance st;
      vars := (x, fresh_tvar ()) :: !vars
    | LPAREN ->
      (* (x::ty) *)
      advance st;
      (match cur st with
      | IDENT x ->
        advance st;
        expect st COLONCOLON;
        let ty = parse_type st in
        expect st RPAREN;
        vars := (x, ty) :: !vars
      | t -> error "expected variable in binder but found '%s'"
               (token_to_string t))
    | _ -> continue := false
  done;
  if !vars = [] then error "binder with no variables";
  List.rev !vars

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Parse a complete formula; raises {!Error} on malformed input. *)
let parse (s : string) : Form.t =
  let st = { toks = tokenize s; pos = 0 } in
  let f = parse_formula st 0 in
  expect st EOF;
  f

let parse_opt s = try Some (parse s) with Error _ -> None

(** Parse a type expression such as [objset] or [obj => int]. *)
let parse_ftype (s : string) : Ftype.t =
  let st = { toks = tokenize s; pos = 0 } in
  let t = parse_type st in
  expect st EOF;
  t
