(** Printing formulas back in the Isabelle-subset surface syntax.

    The printer and {!Parser} are inverses on the supported fragment:
    [Parser.parse (to_string f)] is structurally equal to [f] (a property
    exercised by the test suite). *)

open Form

(* Precedence levels, higher binds tighter.  Kept in sync with Parser. *)
let prec_impl = 10      (* -->  <->      right    *)
let prec_or = 20
let prec_and = 30
let prec_not = 80 (* prefix ~ binds tighter than every infix operator *)
let prec_cmp = 50       (* = ~= : ~: < <= > >=    *)
let prec_add = 60       (* + - Un        left     *)
let prec_mul = 70       (* * div mod Int left     *)
let prec_app = 90
let prec_atom = 100

let binder_keyword = function
  | Forall -> "ALL"
  | Exists -> "EX"
  | Lambda -> "%"
  | Comprehension -> assert false (* printed with brace syntax *)

let infix_of_const = function
  | And -> Some ("&", prec_and)
  | Or -> Some ("|", prec_or)
  | Impl -> Some ("-->", prec_impl)
  | Iff -> Some ("<->", prec_impl)
  | Eq -> Some ("=", prec_cmp)
  | Lt -> Some ("<", prec_cmp)
  | Le -> Some ("<=", prec_cmp)
  | Gt -> Some (">", prec_cmp)
  | Ge -> Some (">=", prec_cmp)
  | Elem -> Some (":", prec_cmp)
  | Subseteq -> Some ("<=", prec_cmp)
  | Subset -> Some ("<", prec_cmp)
  | Plus -> Some ("+", prec_add)
  | Minus | Diff -> Some ("-", prec_add)
  | Union -> Some ("Un", prec_add)
  | Mult -> Some ("*", prec_mul)
  | Div -> Some ("div", prec_mul)
  | Mod -> Some ("mod", prec_mul)
  | Inter -> Some ("Int", prec_mul)
  | BoolLit _ | IntLit _ | Null | Not | Ite | Uminus | EmptySet | UnivSet
  | FiniteSet | Card | FieldRead | FieldWrite | ArrayRead | ArrayWrite
  | Rtrancl | Tree | Old ->
    None

let const_name = function
  | BoolLit true -> "True"
  | BoolLit false -> "False"
  | IntLit n -> string_of_int n
  | Null -> "null"
  | EmptySet -> "{}"
  | UnivSet -> "Univ"
  | Card -> "card"
  | FieldRead -> "fieldRead"
  | FieldWrite -> "fieldWrite"
  | ArrayRead -> "arrayRead"
  | ArrayWrite -> "arrayWrite"
  | Rtrancl -> "rtrancl_pt"
  | Tree -> "tree"
  | Old -> "old"
  | Not -> "Not"
  | And -> "op &"
  | Or -> "op |"
  | Impl -> "op -->"
  | Iff -> "op <->"
  | Ite -> "if"
  | Eq -> "op ="
  | Lt -> "op <"
  | Le -> "op <="
  | Gt -> "op >"
  | Ge -> "op >="
  | Plus -> "op +"
  | Minus -> "op -"
  | Uminus -> "op ~-"
  | Mult -> "op *"
  | Div -> "op div"
  | Mod -> "op mod"
  | Union -> "op Un"
  | Inter -> "op Int"
  | Diff -> "op -s"
  | Elem -> "op :"
  | Subseteq -> "op <=s"
  | Subset -> "op <s"
  | FiniteSet -> "set"

let rec pp_prec prec ppf f =
  match f with
  | TypedForm (g, _) -> pp_prec prec ppf g
  | Var x -> Format.pp_print_string ppf x
  | Const c -> Format.pp_print_string ppf (const_name c)
  | App (Const FieldRead, [ fld; obj ]) when is_simple_field fld ->
    (* x..f binds tightest *)
    Format.fprintf ppf "%a..%a" (pp_prec prec_atom) obj (pp_prec prec_atom) fld
  | App (Const ((And | Or) as c), args) when List.length args >= 2 ->
    let op = match c with And -> "&" | _ -> "|" in
    let p = match c with And -> prec_and | _ -> prec_or in
    paren (prec > p) ppf (fun ppf ->
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf " %s@ " op)
          (pp_prec (p + 1)) ppf args)
  | App (Const c, [ a; b ]) when infix_of_const c <> None ->
    let op, p =
      match infix_of_const c with Some x -> x | None -> assert false
    in
    let left_p, right_p =
      (* --> and <-> are right associative; everything else left *)
      if p = prec_impl then (p + 1, p) else (p, p + 1)
    in
    paren (prec > p) ppf (fun ppf ->
        Format.fprintf ppf "%a %s@ %a" (pp_prec left_p) a op (pp_prec right_p) b)
  | App (Const Not, [ App (Const Eq, [ a; b ]) ]) ->
    paren (prec > prec_cmp) ppf (fun ppf ->
        Format.fprintf ppf "%a ~=@ %a" (pp_prec (prec_cmp + 1)) a
          (pp_prec (prec_cmp + 1)) b)
  | App (Const Not, [ App (Const Elem, [ a; b ]) ]) ->
    paren (prec > prec_cmp) ppf (fun ppf ->
        Format.fprintf ppf "%a ~:@ %a" (pp_prec (prec_cmp + 1)) a
          (pp_prec (prec_cmp + 1)) b)
  | App (Const Not, [ g ]) ->
    paren (prec > prec_not) ppf (fun ppf ->
        Format.fprintf ppf "~%a" (pp_prec (prec_not + 1)) g)
  | App (Const Uminus, [ g ]) ->
    paren (prec > prec_not) ppf (fun ppf ->
        Format.fprintf ppf "-%a" (pp_prec prec_atom) g)
  | App (Const Ite, [ c; a; b ]) ->
    paren (prec > 0) ppf (fun ppf ->
        Format.fprintf ppf "if %a then %a else %a" (pp_prec 1) c (pp_prec 1) a
          (pp_prec 1) b)
  | App (Const FiniteSet, elems) ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         (pp_prec 0))
      elems
  | App (Const Tree, flds) ->
    paren (prec > prec_app) ppf (fun ppf ->
        Format.fprintf ppf "tree [%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
             (pp_prec 0))
          flds)
  | App (g, args) ->
    paren (prec > prec_app) ppf (fun ppf ->
        Format.fprintf ppf "%a" (pp_prec prec_app) g;
        List.iter
          (fun a -> Format.fprintf ppf "@ %a" (pp_prec (prec_app + 1)) a)
          args)
  | Binder (Comprehension, [ (x, _) ], body) ->
    Format.fprintf ppf "{%s.@ %a}" x (pp_prec 0) body
  | Binder (Comprehension, _, _) ->
    invalid_arg "Pprint: comprehension must bind exactly one variable"
  | Binder (b, vars, body) ->
    paren (prec > 0) ppf (fun ppf ->
        Format.fprintf ppf "%s %s.@ %a" (binder_keyword b)
          (String.concat " " (List.map fst vars))
          (pp_prec 0) body)

and is_simple_field f =
  match strip_types f with Var _ -> true | _ -> false

and paren cond ppf k =
  if cond then (
    Format.pp_print_string ppf "(";
    k ppf;
    Format.pp_print_string ppf ")")
  else k ppf

let pp ppf f = Format.fprintf ppf "@[<hov 2>%a@]" (pp_prec 0) f
let to_string f = Format.asprintf "%a" pp f

(* ------------------------------------------------------------------ *)
(* Canonical printing (verdict-cache keys)                             *)
(* ------------------------------------------------------------------ *)

(* The surface printer above is NOT injective: [Le]/[Subseteq] both render
   as "<=", [Lt]/[Subset] as "<", [Minus]/[Diff] as "-" (the parser
   re-disambiguates through type inference), and binder sorts are never
   printed.  A digest keyed on surface strings can therefore hand an
   integer obligation the cached verdict of a set obligation.  The
   canonical printer gives every constant its own tag, parenthesizes
   fully, and prints binder sorts — with type-unification variables
   rendered uniformly as "_", so two parses of the same text (whose fresh
   [Tvar] indices differ) still print identically. *)

let canonical_const_tag = function
  | BoolLit true -> "true"
  | BoolLit false -> "false"
  | IntLit n -> string_of_int n
  | Null -> "null"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Impl -> "impl"
  | Iff -> "iff"
  | Ite -> "ite"
  | Eq -> "eq"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Plus -> "plus"
  | Minus -> "minus"
  | Uminus -> "uminus"
  | Mult -> "mult"
  | Div -> "div"
  | Mod -> "mod"
  | EmptySet -> "empty"
  | UnivSet -> "univ"
  | FiniteSet -> "finset"
  | Union -> "union"
  | Inter -> "inter"
  | Diff -> "setdiff"
  | Elem -> "elem"
  | Subseteq -> "subseteq"
  | Subset -> "subset"
  | Card -> "card"
  | FieldRead -> "fieldRead"
  | FieldWrite -> "fieldWrite"
  | ArrayRead -> "arrayRead"
  | ArrayWrite -> "arrayWrite"
  | Rtrancl -> "rtrancl"
  | Tree -> "tree"
  | Old -> "old"

let canonical_binder_tag = function
  | Forall -> "all"
  | Exists -> "ex"
  | Lambda -> "lam"
  | Comprehension -> "setof"

let rec canonical_sort buf (ty : Ftype.t) =
  match ty with
  | Ftype.Bool -> Buffer.add_string buf "bool"
  | Ftype.Int -> Buffer.add_string buf "int"
  | Ftype.Obj -> Buffer.add_string buf "obj"
  | Ftype.Set e ->
    Buffer.add_string buf "(set ";
    canonical_sort buf e;
    Buffer.add_char buf ')'
  | Ftype.Arrow (a, r) ->
    Buffer.add_string buf "(fn ";
    canonical_sort buf a;
    Buffer.add_char buf ' ';
    canonical_sort buf r;
    Buffer.add_char buf ')'
  | Ftype.Tuple ts ->
    Buffer.add_string buf "(tup";
    List.iter
      (fun t ->
        Buffer.add_char buf ' ';
        canonical_sort buf t)
      ts;
    Buffer.add_char buf ')'
  | Ftype.Tvar _ -> Buffer.add_char buf '_'

let rec canonical buf f =
  match f with
  | Var x -> Buffer.add_string buf x
  | Const c ->
    (* '#' keeps constant tags disjoint from variable names *)
    Buffer.add_char buf '#';
    Buffer.add_string buf (canonical_const_tag c)
  | App (g, args) ->
    Buffer.add_char buf '(';
    canonical buf g;
    List.iter
      (fun a ->
        Buffer.add_char buf ' ';
        canonical buf a)
      args;
    Buffer.add_char buf ')'
  | Binder (b, vars, body) ->
    Buffer.add_string buf "(#";
    Buffer.add_string buf (canonical_binder_tag b);
    Buffer.add_string buf " (";
    List.iteri
      (fun i (x, ty) ->
        if i > 0 then Buffer.add_char buf ' ';
        Buffer.add_char buf '(';
        Buffer.add_string buf x;
        Buffer.add_char buf ' ';
        canonical_sort buf ty;
        Buffer.add_char buf ')')
      vars;
    Buffer.add_string buf ") ";
    canonical buf body;
    Buffer.add_char buf ')'
  | TypedForm (g, ty) ->
    Buffer.add_string buf "(#:: ";
    canonical buf g;
    Buffer.add_char buf ' ';
    canonical_sort buf ty;
    Buffer.add_char buf ')'

let canonical_memo : string Hashcons.Memo.t = Hashcons.Memo.create ()

(** Unambiguous printing for cache digests: injective on
    alpha-normalized formulas (distinct constants get distinct tags,
    applications are fully parenthesized, binder sorts are printed).
    Unlike {!to_string}, this output is not meant to be parsed back.
    Memoized through the hash-consing kernel: the printer is
    deterministic, so the cached string is exactly what a fresh run
    would produce. *)
let to_canonical_string f =
  let compute () =
    let buf = Buffer.create 256 in
    canonical buf f;
    Buffer.contents buf
  in
  if not (Hashcons.enabled ()) then compute ()
  else Hashcons.Memo.find_or_add canonical_memo (htag (import f)) compute
