(** Logical simplification used throughout the pipeline.

    The verification-condition generator produces large, shallow formulas
    full of [fieldWrite]/[fieldRead] redexes, comprehension memberships and
    beta-redexes.  These rewrites put formulas into the executable-set
    fragment that the decision procedures expect. *)

open Form

(* ------------------------------------------------------------------ *)
(* Beta reduction and set-theoretic rewriting                          *)
(* ------------------------------------------------------------------ *)

let rec rewrite_step f =
  match f with
  (* beta: (% x1 .. xn. body) a1 .. an *)
  | App (Binder (Lambda, vars, body), args)
    when List.length args >= List.length vars ->
    let n = List.length vars in
    let head_args, rest =
      let rec split k xs =
        if k = 0 then ([], xs)
        else
          match xs with
          | x :: tl ->
            let a, b = split (k - 1) tl in
            (x :: a, b)
          | [] -> assert false
      in
      split n args
    in
    let pairs = List.map2 (fun (x, _) a -> (x, a)) vars head_args in
    Some (mk_app (subst_list pairs body) rest)
  (* ite-lifting: predicates over conditional terms become conditional
     formulas, which the boolean layers of the provers handle *)
  | App (Const ((Eq | Elem | Le | Lt | Ge | Gt | Subseteq) as p), [ a; b ])
    when is_ite a || is_ite b -> (
    match strip_types a, strip_types b with
    | App (Const Ite, [ c; x; y ]), _ ->
      Some (mk_ite c (App (Const p, [ x; b ])) (App (Const p, [ y; b ])))
    | _, App (Const Ite, [ c; x; y ]) ->
      Some (mk_ite c (App (Const p, [ a; x ])) (App (Const p, [ a; y ])))
    | _ -> None)
  (* membership in comprehension: x : {y. P}  ~~>  P[y := x] *)
  | App (Const Elem, [ x; comp ]) -> begin
    match strip_types comp with
    | Binder (Comprehension, [ (y, _) ], p) -> Some (subst1 y x p)
    | App (Const FiniteSet, elems) ->
      Some (mk_or (List.map (fun e -> mk_eq x e) elems))
    | Const EmptySet -> Some mk_false
    | Const UnivSet -> Some mk_true
    | App (Const Union, [ a; b ]) ->
      Some (mk_or [ mk_elem x a; mk_elem x b ])
    | App (Const Inter, [ a; b ]) ->
      Some (mk_and [ mk_elem x a; mk_elem x b ])
    | App (Const (Diff | Minus), [ a; b ]) ->
      (* the right operand of [:] is a set, so [-] must be set difference *)
      Some (mk_and [ mk_elem x a; mk_not (mk_elem x b) ])
    | _ -> None
  end
  (* select-of-store on fields *)
  | App (Const FieldRead, [ fw; x ]) -> begin
    match strip_types fw with
    | App (Const FieldWrite, [ f0; y; v ]) ->
      (* fieldRead (fieldWrite f y v) x = if x = y then v else fieldRead f x *)
      if equal x y then Some v
      else Some (mk_ite (mk_eq x y) v (mk_field_read f0 x))
    | Binder (Lambda, _, _) -> Some (mk_app fw [ x ])
    | _ -> None
  end
  (* select-of-store on arrays *)
  | App (Const ArrayRead, [ aw; o; i ]) -> begin
    match strip_types aw with
    | App (Const ArrayWrite, [ a0; o'; i'; v ]) ->
      if equal o o' && equal i i' then Some v
      else
        Some
          (mk_ite
             (mk_and [ mk_eq o o'; mk_eq i i' ])
             v
             (mk_array_read a0 o i))
    | _ -> None
  end
  (* double negation / trivial propositional laws are handled by the smart
     constructors; normalize via them *)
  | App (Const And, fs) -> simple_change (mk_and fs) f
  | App (Const Or, fs) -> simple_change (mk_or fs) f
  | App (Const Not, [ g ]) -> simple_change (mk_not g) f
  | App (Const Impl, [ a; b ]) ->
    if is_true a || is_false a || is_true b then Some (mk_impl a b)
    else if is_false b then Some (mk_not a)
    else if equal a b then Some mk_true
    else None
  | App (Const Iff, [ a; b ]) ->
    (* [mk_iff] folds all four boolean-constant cases; only the
       alpha-equality collapse is extra knowledge here *)
    if equal a b then Some mk_true else simple_change (mk_iff a b) f
  | App (Const Ite, [ c; a; b ]) ->
    if is_true c then Some a
    else if is_false c then Some b
    else if equal a b then Some a
    else None
  | App (Const Eq, [ a; b ]) when equal a b -> Some mk_true
  | App (Const Eq, [ a; b ]) when is_formula_like a || is_formula_like b ->
    (* boolean-sorted equality, e.g. result = (content = {}) *)
    Some (mk_iff a b)
  (* subset via membership is kept; empty-set facts fold away *)
  | App (Const Union, [ a; b ]) -> simple_change (mk_union a b) f
  | App (Const Diff, [ a; b ]) -> simple_change (mk_diff a b) f
  | App (Const Subseteq, [ a; b ]) when equal a b -> Some mk_true
  | _ -> None

and is_ite f =
  match strip_types f with App (Const Ite, _) -> true | _ -> false

and is_formula_like f =
  match strip_types f with
  | App
      ( Const
          ( Eq | Elem | Subseteq | Subset | And | Or | Not | Impl | Iff | Lt
          | Le | Gt | Ge ),
        _ )
  | Const (BoolLit _) ->
    true
  | _ -> false

and simple_change candidate original =
  if candidate == original || equal candidate original then None
  else Some candidate

(** Exhaustive bottom-up rewriting with {!rewrite_step}; terminates because
    every rule strictly reduces a well-founded measure (redex count / size
    on ite-free paths). *)
let simplify_plain f =
  let changed = ref true in
  let apply g =
    match rewrite_step g with
    | Some g' ->
      changed := true;
      g'
    | None -> g
  in
  let rec loop g fuel =
    if fuel = 0 then g
    else begin
      changed := false;
      let g' = map_bottom_up apply g in
      if !changed then loop g' (fuel - 1) else g'
    end
  in
  loop f 64

let simplify_memo : Form.t Hashcons.Memo.t = Hashcons.Memo.create ()

(** The default entry point stays the plain fixpoint: most simplification
    runs on freshly built one-shot trees (wp outputs, ground instances),
    where interning the input costs more than the pass itself saves. *)
let simplify = simplify_plain

(** {!simplify_plain} memoized through the hash-consing kernel, for call
    sites with architectural reuse — {!Sequent.refutand} is simplified up
    to four times per obligation ([in_fragment] and [prove] of both SMT
    and BAPA).  Beta reduction mints fresh binder names, so two plain
    runs on the same input agree only up to alpha-renaming; the memoized
    result is one such run, reused. *)
let simplify_shared f =
  if not (Hashcons.enabled ()) then simplify_plain f
  else
    Hashcons.Memo.find_or_add simplify_memo (htag (import f)) (fun () ->
        simplify_plain f)

(* ------------------------------------------------------------------ *)
(* Negation normal form                                                *)
(* ------------------------------------------------------------------ *)

let rec nnf f =
  match strip_types f with
  | App (Const Not, [ g ]) -> nnf_neg g
  | App (Const And, fs) -> mk_and (List.map nnf fs)
  | App (Const Or, fs) -> mk_or (List.map nnf fs)
  | App (Const Impl, [ a; b ]) -> mk_or [ nnf_neg a; nnf b ]
  | App (Const Iff, [ a; b ]) ->
    mk_or [ mk_and [ nnf a; nnf b ]; mk_and [ nnf_neg a; nnf_neg b ] ]
  | Binder (Forall, vars, body) -> mk_forall vars (nnf body)
  | Binder (Exists, vars, body) -> mk_exists vars (nnf body)
  | g -> g

and nnf_neg f =
  match strip_types f with
  | App (Const Not, [ g ]) -> nnf g
  | App (Const And, fs) -> mk_or (List.map nnf_neg fs)
  | App (Const Or, fs) -> mk_and (List.map nnf_neg fs)
  | App (Const Impl, [ a; b ]) -> mk_and [ nnf a; nnf_neg b ]
  | App (Const Iff, [ a; b ]) ->
    mk_or [ mk_and [ nnf a; nnf_neg b ]; mk_and [ nnf_neg a; nnf b ] ]
  | Binder (Forall, vars, body) -> mk_exists vars (nnf_neg body)
  | Binder (Exists, vars, body) -> mk_forall vars (nnf_neg body)
  | Const (BoolLit b) -> mk_bool (not b)
  | g -> mk_not g

(* ------------------------------------------------------------------ *)
(* Prenex form and skolemization (used by the FOL back end)            *)
(* ------------------------------------------------------------------ *)

(** Pull quantifiers of an NNF formula to the front.  Binder variables are
    renamed apart first. *)
let prenex f =
  let rec pull f =
    match strip_types f with
    | Binder (Forall, vars, body) ->
      let qs, m = pull body in
      (List.map (fun v -> (`All, v)) vars @ qs, m)
    | Binder (Exists, vars, body) ->
      let qs, m = pull body in
      (List.map (fun v -> (`Ex, v)) vars @ qs, m)
    | App (Const And, fs) ->
      let parts = List.map pull_renamed fs in
      (List.concat_map fst parts, mk_and (List.map snd parts))
    | App (Const Or, fs) ->
      let parts = List.map pull_renamed fs in
      (List.concat_map fst parts, mk_or (List.map snd parts))
    | g -> ([], g)
  and pull_renamed f =
    (* rename bound variables apart to allow hoisting *)
    let rec rename f =
      match f with
      | Binder (b, vars, body) ->
        let pairs =
          List.map (fun (x, ty) -> ((x, ty), fresh_name x)) vars
        in
        let sub = List.map (fun ((x, _), x') -> (x, Var x')) pairs in
        let vars' = List.map (fun ((_, ty), x') -> (x', ty)) pairs in
        Binder (b, vars', rename (subst_list sub body))
      | App (g, args) -> App (rename g, List.map rename args)
      | TypedForm (g, ty) -> TypedForm (rename g, ty)
      | Var _ | Const _ -> f
    in
    pull (rename f)
  in
  pull_renamed f

(** Skolemize an NNF formula: existentials become fresh function symbols of
    the preceding universals.  Returns the matrix under the remaining
    universal prefix (implicitly all-quantified). *)
let skolemize f =
  let qs, matrix = prenex (nnf f) in
  let rec go universals subs = function
    | [] -> subst_list subs matrix
    | (`All, (x, _ty)) :: rest -> go (universals @ [ Var x ]) subs rest
    | (`Ex, (x, _ty)) :: rest ->
      let sk = fresh_name ("sk_" ^ x) in
      let term = if universals = [] then Var sk else App (Var sk, universals) in
      go universals ((x, term) :: subs) rest
  in
  go [] [] qs
