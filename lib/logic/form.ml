(** The Jahob specification logic: a subset of Isabelle/HOL.

    Everything the system manipulates — method contracts, class invariants,
    abstraction functions, verification conditions — is a value of type
    {!type:t}.  The representation follows the original Jahob design: a
    lambda-structured tree of applications, constants and binders, so that
    set comprehensions, reflexive-transitive closure and field reads all
    live in a single language.  Translations into each decision procedure
    are partial functions defined elsewhere. *)

type ident = string

type binder =
  | Forall          (** [ALL x. F] *)
  | Exists          (** [EX x. F] *)
  | Lambda          (** [% x. F] *)
  | Comprehension   (** [{x. F}] *)

type const =
  (* literals *)
  | BoolLit of bool
  | IntLit of int
  | Null
  (* propositional *)
  | Not
  | And
  | Or
  | Impl
  | Iff
  | Ite
  (* equality and order *)
  | Eq
  | Lt
  | Le
  | Gt
  | Ge
  (* integer arithmetic *)
  | Plus
  | Minus
  | Uminus
  | Mult
  | Div
  | Mod
  (* sets *)
  | EmptySet
  | UnivSet
  | FiniteSet       (** [{e1, ..., en}], applied to its elements *)
  | Union
  | Inter
  | Diff
  | Elem            (** [x : S] *)
  | Subseteq        (** [S <= T] on sets *)
  | Subset          (** [S < T] strict *)
  | Card            (** [card S] *)
  (* heap *)
  | FieldRead       (** [fieldRead f x], surface syntax [x..f] *)
  | FieldWrite      (** [fieldWrite f x v], a function-valued update *)
  | ArrayRead
  | ArrayWrite
  | Rtrancl         (** [rtrancl_pt (% x y. F) a b] *)
  | Tree            (** [tree [f1, ..., fn]]: fields form a forest *)
  | Old             (** [old e]: pre-state value, eliminated by vcgen *)

type t =
  | Var of ident
  | Const of const
  | App of t * t list
  | Binder of binder * (ident * Ftype.t) list * t
  | TypedForm of t * Ftype.t

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let mk_var x = Var x
let mk_int n = Const (IntLit n)
let mk_bool b = Const (BoolLit b)
let mk_true = Const (BoolLit true)
let mk_false = Const (BoolLit false)
let mk_null = Const Null

let mk_app f args = if args = [] then f else App (f, args)

(** Strip outer type annotations. *)
let rec strip_types f =
  match f with
  | TypedForm (g, _) -> strip_types g
  | Var _ | Const _ | App _ | Binder _ -> f

let is_true f = match strip_types f with Const (BoolLit true) -> true | _ -> false
let is_false f = match strip_types f with Const (BoolLit false) -> true | _ -> false

(** Conjunction with unit laws and flattening: [mk_and] never produces a
    nested [And] and never contains [True] conjuncts. *)
let mk_and fs =
  let rec gather acc f =
    match strip_types f with
    | App (Const And, args) -> List.fold_left gather acc args
    | g when is_true g -> acc
    | _ -> f :: acc
  in
  let fs = List.rev (List.fold_left gather [] fs) in
  if List.exists is_false fs then mk_false
  else
    match fs with
    | [] -> mk_true
    | [ f ] -> f
    | _ -> App (Const And, fs)

let mk_or fs =
  let rec gather acc f =
    match strip_types f with
    | App (Const Or, args) -> List.fold_left gather acc args
    | g when is_false g -> acc
    | _ -> f :: acc
  in
  let fs = List.rev (List.fold_left gather [] fs) in
  if List.exists is_true fs then mk_true
  else
    match fs with
    | [] -> mk_false
    | [ f ] -> f
    | _ -> App (Const Or, fs)

let mk_not f =
  match strip_types f with
  | Const (BoolLit b) -> mk_bool (not b)
  | App (Const Not, [ g ]) -> g
  | _ -> App (Const Not, [ f ])

let mk_impl a b =
  if is_true a then b
  else if is_false a then mk_true
  else if is_true b then mk_true
  else App (Const Impl, [ a; b ])

let mk_iff a b =
  if is_true a then b
  else if is_true b then a
  else if is_false a then mk_not b
  else if is_false b then mk_not a
  else App (Const Iff, [ a; b ])

let mk_ite c a b = App (Const Ite, [ c; a; b ])
let mk_eq a b = App (Const Eq, [ a; b ])
let mk_neq a b = mk_not (mk_eq a b)
let mk_lt a b = App (Const Lt, [ a; b ])
let mk_le a b = App (Const Le, [ a; b ])
let mk_gt a b = App (Const Gt, [ a; b ])
let mk_ge a b = App (Const Ge, [ a; b ])
let mk_plus a b = App (Const Plus, [ a; b ])
let mk_minus a b = App (Const Minus, [ a; b ])
let mk_uminus a = App (Const Uminus, [ a ])
let mk_mult a b = App (Const Mult, [ a; b ])
let mk_emptyset = Const EmptySet
let mk_univ = Const UnivSet
let mk_finite_set es = if es = [] then mk_emptyset else App (Const FiniteSet, es)
let mk_singleton e = mk_finite_set [ e ]

let mk_union a b =
  match strip_types a, strip_types b with
  | Const EmptySet, _ -> b
  | _, Const EmptySet -> a
  | _, _ -> App (Const Union, [ a; b ])

let mk_inter a b = App (Const Inter, [ a; b ])

let mk_diff a b =
  match strip_types b with
  | Const EmptySet -> a
  | _ -> App (Const Diff, [ a; b ])

let mk_elem x s = App (Const Elem, [ x; s ])
let mk_notelem x s = mk_not (mk_elem x s)
let mk_subseteq a b = App (Const Subseteq, [ a; b ])
let mk_subset a b = App (Const Subset, [ a; b ])
let mk_card s = App (Const Card, [ s ])
let mk_field_read fld obj = App (Const FieldRead, [ fld; obj ])
let mk_field_write fld obj v = App (Const FieldWrite, [ fld; obj; v ])
let mk_array_read arr obj idx = App (Const ArrayRead, [ arr; obj; idx ])
let mk_array_write arr obj idx v = App (Const ArrayWrite, [ arr; obj; idx; v ])
let mk_rtrancl p a b = App (Const Rtrancl, [ p; a; b ])
let mk_old e = App (Const Old, [ e ])
let mk_tree flds = App (Const Tree, flds)

let mk_binder b vars body = if vars = [] then body else Binder (b, vars, body)

let mk_forall vars body =
  if is_true body then mk_true else mk_binder Forall vars body

let mk_exists vars body =
  if is_false body then mk_false else mk_binder Exists vars body

let mk_lambda vars body = mk_binder Lambda vars body
let mk_comprehension vars body = Binder (Comprehension, vars, body)
let mk_typed f ty = TypedForm (f, ty)

(** n-ary conjunction/implication helpers used by the VC generator. *)
let mk_impl_chain hyps goal = mk_impl (mk_and hyps) goal

(* ------------------------------------------------------------------ *)
(* Structural equality (modulo type annotations)                       *)
(* ------------------------------------------------------------------ *)

let const_equal (a : const) (b : const) = a = b

(* alpha-equivalence: binder names are compared through an environment *)
let equal a b =
  let rec eq (env : (string * string) list) a b =
    match strip_types a, strip_types b with
    | Var x, Var y -> (
      match List.assoc_opt x env with
      | Some y' -> String.equal y y'
      | None ->
        (* x free on the left: y must be the same free name *)
        String.equal x y && not (List.exists (fun (_, y') -> y' = y) env))
    | Const c, Const d -> const_equal c d
    | App (f, xs), App (g, ys) ->
      eq env f g
      && List.length xs = List.length ys
      && List.for_all2 (eq env) xs ys
    | Binder (b1, v1, f1), Binder (b2, v2, f2) ->
      b1 = b2
      && List.length v1 = List.length v2
      && eq
           (List.map2 (fun (x, _) (y, _) -> (x, y)) v1 v2 @ env)
           f1 f2
    | (Var _ | Const _ | App _ | Binder _), _ -> false
    | TypedForm _, _ -> assert false (* strip_types never returns TypedForm *)
  in
  eq [] a b

(* ------------------------------------------------------------------ *)
(* Free variables and substitution                                     *)
(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)
module Smap = Map.Make (String)

let rec fv_acc bound acc f =
  match f with
  | Var x -> if Sset.mem x bound then acc else Sset.add x acc
  | Const _ -> acc
  | App (g, args) -> List.fold_left (fv_acc bound) (fv_acc bound acc g) args
  | Binder (_, vars, body) ->
    let bound = List.fold_left (fun b (x, _) -> Sset.add x b) bound vars in
    fv_acc bound acc body
  | TypedForm (g, _) -> fv_acc bound acc g

(** Free variables of a formula. *)
let fv f = fv_acc Sset.empty Sset.empty f

let fv_list f = Sset.elements (fv f)

(* Fresh-name generation: names use a reserved separator that the parsers
   never produce, so uniqueness only needs a process-wide id sequence.
   Bumping one global [Atomic] for every wp-renaming step of every domain
   makes that counter a contended cache line, so each domain draws blocks
   of ids from the global counter and hands them out from domain-local
   state.  Ids are never reused, so names stay unique program-wide; the
   per-domain record is guarded by its own (domain-private, hence
   uncontended) mutex because budget-helper systhreads share their
   domain's DLS slot.  A single-domain run drains blocks in order and
   produces exactly the sequence the global counter would have. *)
let fresh_block = 1024
let fresh_counter = Atomic.make 0

type fresh_state = { flock : Mutex.t; mutable next : int; mutable limit : int }

let fresh_key : fresh_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { flock = Mutex.create (); next = 0; limit = 0 })

let fresh_name base =
  let st = Domain.DLS.get fresh_key in
  Mutex.lock st.flock;
  if st.next >= st.limit then begin
    st.next <- Atomic.fetch_and_add fresh_counter fresh_block;
    st.limit <- st.next + fresh_block
  end;
  let n = st.next in
  st.next <- n + 1;
  Mutex.unlock st.flock;
  Printf.sprintf "%s__%d" base (n + 1)

(* [List.map] that returns the input list unchanged (physically) when [f]
   changes no element — keeps rebuilt trees sharing their untouched
   subtrees, which is what makes the physical-identity caches in the
   hash-consing kernel below effective. *)
let map_sharing f xs =
  let changed = ref false in
  let ys =
    List.map
      (fun x ->
        let y = f x in
        if y != x then changed := true;
        y)
      xs
  in
  if !changed then ys else xs

(** Capture-avoiding parallel substitution.  [subst map f] replaces each
    free occurrence of a variable bound in [map].  Subtrees that contain
    no substituted variable are returned physically unchanged. *)
let rec subst (map : t Smap.t) f =
  if Smap.is_empty map then f
  else
    match f with
    | Var x -> ( match Smap.find_opt x map with Some g -> g | None -> f)
    | Const _ -> f
    | App (g, args) ->
      let g' = subst map g in
      let args' = map_sharing (subst map) args in
      if g' == g && args' == args then f else App (g', args')
    | TypedForm (g, ty) ->
      let g' = subst map g in
      if g' == g then f else TypedForm (g', ty)
    | Binder (b, vars, body) ->
      (* drop bindings shadowed by the binder *)
      let map = List.fold_left (fun m (x, _) -> Smap.remove x m) map vars in
      if Smap.is_empty map then f
      else
        (* rename binder variables that would capture *)
        let clashing =
          Smap.fold (fun _ g acc -> Sset.union (fv g) acc) map Sset.empty
        in
        let rename (vars_rev, ren) (x, ty) =
          if Sset.mem x clashing then
            let x' = fresh_name x in
            ((x', ty) :: vars_rev, Smap.add x (Var x') ren)
          else ((x, ty) :: vars_rev, ren)
        in
        let vars_rev, ren = List.fold_left rename ([], Smap.empty) vars in
        let vars' = List.rev vars_rev in
        let body0 = if Smap.is_empty ren then body else subst ren body in
        let body' = subst map body0 in
        if Smap.is_empty ren && body' == body then f
        else Binder (b, vars', body')

let subst1 x g f = subst (Smap.singleton x g) f

(** Alpha-normalization: every bound variable is renamed to a canonical
    name determined only by its binding depth ([?b0], [?b1], ...).  Type
    annotations are stripped by default; [~keep_types:true] preserves them
    (the verdict-cache digest needs sorts, or [ALL x::int] and
    [ALL x::obj] obligations would collide).  Alpha-equivalent formulas
    normalize to structurally identical trees, so their printed forms —
    and hence their digests — coincide.  The [?] prefix cannot clash with
    source-level identifiers: no parser produces it.  Subtrees that are
    already in normal form (no binders, or canonically named ones) come
    back physically unchanged, so normalization preserves sharing. *)
let alpha_normalize ?(keep_types = false) f =
  let rec go (env : ident Smap.t) (depth : int) f =
    match f with
    | TypedForm (g, ty) ->
      if keep_types then
        let g' = go env depth g in
        if g' == g then f else TypedForm (g', ty)
      else go env depth g
    | Var x -> (
      match Smap.find_opt x env with
      | Some y -> if String.equal y x then f else Var y
      | None -> f)
    | Const _ -> f
    | App (g, args) ->
      let g' = go env depth g in
      let args' = map_sharing (go env depth) args in
      if g' == g && args' == args then f else App (g', args')
    | Binder (b, vars, body) ->
      let vars_rev, env, depth, renamed =
        List.fold_left
          (fun (vs, env, d, renamed) (x, ty) ->
            let x' = Printf.sprintf "?b%d" d in
            ( (x', ty) :: vs, Smap.add x x' env, d + 1,
              renamed || not (String.equal x' x) ))
          ([], env, depth, false) vars
      in
      let body' = go env depth body in
      if (not renamed) && body' == body then f
      else Binder (b, List.rev vars_rev, body')
  in
  go Smap.empty 0 f

let subst_list pairs f =
  subst (List.fold_left (fun m (x, g) -> Smap.add x g m) Smap.empty pairs) f

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

(** Bottom-up transformation: applies [fn] to every node after
    transforming its children.  Untouched subtrees come back physically
    unchanged, so repeated passes preserve sharing. *)
let rec map_bottom_up fn f =
  let f' =
    match f with
    | Var _ | Const _ -> f
    | App (g, args) ->
      let g' = map_bottom_up fn g in
      let args' = map_sharing (map_bottom_up fn) args in
      if g' == g && args' == args then f else App (g', args')
    | Binder (b, vars, body) ->
      let body' = map_bottom_up fn body in
      if body' == body then f else Binder (b, vars, body')
    | TypedForm (g, ty) ->
      let g' = map_bottom_up fn g in
      if g' == g then f else TypedForm (g', ty)
  in
  fn f'

(** Fold over all subformulas, top-down, including binders' bodies. *)
let rec fold fn acc f =
  let acc = fn acc f in
  match f with
  | Var _ | Const _ -> acc
  | App (g, args) -> List.fold_left (fold fn) (fold fn acc g) args
  | Binder (_, _, body) -> fold fn acc body
  | TypedForm (g, _) -> fold fn acc g

(** Size of the formula tree (number of nodes), used by benchmarks and by
    the dispatcher's cost heuristics. *)
let size f = fold (fun n _ -> n + 1) 0 f

(** All constants occurring in the formula. *)
let consts f =
  fold (fun acc g -> match g with Const c -> c :: acc | _ -> acc) [] f

(** Does any subformula satisfy [p]? *)
let exists_sub p f =
  let exception Found in
  try
    fold (fun () g -> if p g then raise Found) () f;
    false
  with Found -> true

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

(** Split a formula into its top-level conjuncts. *)
let conjuncts f =
  match strip_types f with
  | App (Const And, args) -> args
  | g when is_true g -> []
  | _ -> [ f ]

(** View an implication chain [h1 --> h2 --> ... --> g] as
    ([h1; h2; ...], g). *)
let rec hypotheses_and_goal f =
  match strip_types f with
  | App (Const Impl, [ a; b ]) ->
    let hs, g = hypotheses_and_goal b in
    (conjuncts a @ hs, g)
  | _ -> ([], f)

(* ------------------------------------------------------------------ *)
(* Hash-consed kernel                                                  *)
(* ------------------------------------------------------------------ *)

(** Maximal-sharing mirror of {!type:t}: every node is interned in the
    global {!Hashcons} store, so physically distinct [hform]s are
    structurally distinct and carry a unique [tag].  The plain tree stays
    the universal representation — provers and the VCG keep pattern
    matching on {!type:t} — while hot structural passes [import] into the
    kernel once and then memoize per [tag].  See {!Hashcons} for the
    domain-safety story. *)
type hform = hnode Hashcons.hash_consed

and hnode =
  | HVar of ident
  | HConst of const
  | HApp of hform * hform list
  | HBinder of binder * (ident * Ftype.t) list * hform
  | HTypedForm of hform * Ftype.t

module Hnode = struct
  type nonrec t = hnode

  (* One level deep only: children are already consed, so [==] on them is
     structural equality.  No recursion means consing a node never takes a
     second shard lock. *)
  let equal a b =
    match a, b with
    | HVar x, HVar y -> String.equal x y
    | HConst c, HConst d -> const_equal c d
    | HApp (f, xs), HApp (g, ys) ->
      f == g
      && List.length xs = List.length ys
      && List.for_all2 ( == ) xs ys
    | HBinder (b1, v1, f1), HBinder (b2, v2, f2) ->
      b1 = b2 && f1 == f2
      && List.length v1 = List.length v2
      && List.for_all2
           (fun (x, tx) (y, ty) -> String.equal x y && Ftype.equal tx ty)
           v1 v2
    | HTypedForm (f, tf), HTypedForm (g, tg) -> f == g && Ftype.equal tf tg
    | (HVar _ | HConst _ | HApp _ | HBinder _ | HTypedForm _), _ -> false

  let hash (n : t) =
    let comb acc (c : hform) = (acc * 31) + c.Hashcons.hkey in
    match n with
    | HVar x -> 3 + (19 * Hashtbl.hash x)
    | HConst c -> 5 + (19 * Hashtbl.hash c)
    | HApp (f, xs) -> List.fold_left comb (7 + (19 * f.Hashcons.hkey)) xs
    | HBinder (b, vars, body) ->
      List.fold_left
        (fun acc (x, ty) -> (acc * 31) + Hashtbl.hash x + Hashtbl.hash ty)
        (11 + (19 * Hashtbl.hash b) + (23 * body.Hashcons.hkey))
        vars
    | HTypedForm (f, ty) -> 13 + (19 * f.Hashcons.hkey) + (23 * Hashtbl.hash ty)
end

module Hstore = Hashcons.Make (Hnode)

let store = Hstore.create ()
let cons (n : hnode) : hform = Hstore.hashcons store n
let store_count () = Hstore.count store

let htag (h : hform) = h.Hashcons.tag
let hnode (h : hform) = h.Hashcons.node

(* Physical-identity cache from plain trees to their consed form.  Keys
   are compared with [==]; this is sound because the cache holds its keys
   strongly, so a live slot's address is never reused.

   The cache is a fixed-size set-associative array rather than a
   hashtable, for two reasons.  [Hashtbl.hash] is depth-capped, so
   physically distinct but locally identical nodes — the spine of a deep
   formula, or the structurally identical trees each vcgen round
   re-creates — all collide; in a chained table those collisions
   accumulate into unbounded bucket scans (quadratic across a run).  Here
   a probe inspects at most [ways] slots and an insert evicts
   round-robin, so lookups stay O(1) no matter how degenerate the hash
   gets, and the footprint is fixed — dead formulas are overwritten, not
   retained.  An evicted subtree simply re-imports; consing returns the
   same [hform] either way.

   One cache per domain (no lock on the hot path); the consed results
   they map to live in the shared global store, so cross-domain physical
   equality still holds. *)
module Physcache = struct
  let ways = 8
  let buckets = 8192 (* 64k entries, ~1 MB per domain *)

  type nonrec cache = {
    keys : t array; (* buckets * ways; [dummy] marks an empty slot *)
    vals : hform option array;
    cursor : int array; (* per-bucket round-robin eviction point *)
    dummy : t; (* private allocation: never [==] to a user tree *)
  }

  let create () =
    let dummy = Const (BoolLit true) in
    { keys = Array.make (buckets * ways) dummy;
      vals = Array.make (buckets * ways) None;
      cursor = Array.make buckets 0;
      dummy }

  let bucket f = Hashtbl.hash f land (buckets - 1)

  let find_opt c f =
    let base = bucket f * ways in
    let rec scan i =
      if i = ways then None
      else if c.keys.(base + i) == f then c.vals.(base + i)
      else scan (i + 1)
    in
    scan 0

  let add c f h =
    let b = bucket f in
    let i = c.cursor.(b) in
    c.cursor.(b) <- (i + 1) mod ways;
    c.keys.((b * ways) + i) <- f;
    c.vals.((b * ways) + i) <- Some h

  let reset c =
    Array.fill c.keys 0 (Array.length c.keys) c.dummy;
    Array.fill c.vals 0 (Array.length c.vals) None;
    Array.fill c.cursor 0 (Array.length c.cursor) 0
end

let import_cache : Physcache.cache Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Physcache.create ())

(** Intern a plain tree into the consing store.  Physically shared
    subtrees (as produced by the sharing-preserving [subst] and
    [map_bottom_up] above, and by [split_vc] reusing hypothesis lists)
    are interned once per domain. *)
let import (f : t) : hform =
  let cache = Domain.DLS.get import_cache in
  let rec go f =
    match Physcache.find_opt cache f with
    | Some h -> h
    | None ->
      let h =
        match f with
        | Var x -> cons (HVar x)
        | Const c -> cons (HConst c)
        | App (g, args) -> cons (HApp (go g, List.map go args))
        | Binder (b, vars, body) -> cons (HBinder (b, vars, go body))
        | TypedForm (g, ty) -> cons (HTypedForm (go g, ty))
      in
      Physcache.add cache f h;
      h
  in
  go f

let export_memo : t Hashcons.Memo.t = Hashcons.Memo.create ()

(** Back to the plain representation.  Memoized by tag, so the resulting
    trees share exported subtrees physically. *)
let rec export (h : hform) : t =
  Hashcons.Memo.find_or_add export_memo h.Hashcons.tag (fun () ->
      match h.Hashcons.node with
      | HVar x -> Var x
      | HConst c -> Const c
      | HApp (g, args) -> App (export g, List.map export args)
      | HBinder (b, vars, body) -> Binder (b, vars, export body)
      | HTypedForm (g, ty) -> TypedForm (export g, ty))

(* ---- memoized structural passes over consed nodes ---- *)

let hfv_memo : Sset.t Hashcons.Memo.t = Hashcons.Memo.create ()

(** Free variables, computed once per unique node. *)
let rec hfv (h : hform) : Sset.t =
  Hashcons.Memo.find_or_add hfv_memo h.Hashcons.tag (fun () ->
      match h.Hashcons.node with
      | HVar x -> Sset.singleton x
      | HConst _ -> Sset.empty
      | HApp (g, args) ->
        List.fold_left (fun acc a -> Sset.union acc (hfv a)) (hfv g) args
      | HBinder (_, vars, body) ->
        List.fold_left (fun acc (x, _) -> Sset.remove x acc) (hfv body) vars
      | HTypedForm (g, _) -> hfv g)

let hsize_memo : int Hashcons.Memo.t = Hashcons.Memo.create ()

(** Tree size (counts repeats of shared subtrees), computed in DAG time. *)
let rec hsize (h : hform) : int =
  Hashcons.Memo.find_or_add hsize_memo h.Hashcons.tag (fun () ->
      match h.Hashcons.node with
      | HVar _ | HConst _ -> 1
      | HApp (g, args) ->
        List.fold_left (fun n a -> n + hsize a) (1 + hsize g) args
      | HBinder (_, _, body) -> 1 + hsize body
      | HTypedForm (g, _) -> 1 + hsize g)

(* ---- kernel-accelerated drop-ins for the plain API ---- *)

(* Opportunistic kernel use: probe the per-domain import cache but never
   force an import.  A tree already interned (anything that went through
   the digest/canonicalize path, and every subtree thereof) answers from
   the per-tag memo; a freshly built one-shot tree takes the plain pass,
   which is cheaper than interning it first.  Measured both ways on the
   end-to-end benchmark: unconditional [import] here costs more than the
   memo saves. *)

(** Like {!fv} but answers from the kernel memo when [f] is already
    interned; identical result. *)
let fv_shared f =
  if not (Hashcons.enabled ()) then fv f
  else
    match Physcache.find_opt (Domain.DLS.get import_cache) f with
    | Some h -> hfv h
    | None -> fv f

let fv_list_shared f = Sset.elements (fv_shared f)

(** Like {!size}; identical result. *)
let size_shared f =
  if not (Hashcons.enabled ()) then size f
  else
    match Physcache.find_opt (Domain.DLS.get import_cache) f with
    | Some h -> hsize h
    | None -> size f

let alpha_memo_plain : t Hashcons.Memo.t = Hashcons.Memo.create ()
let alpha_memo_typed : t Hashcons.Memo.t = Hashcons.Memo.create ()

(** Like {!alpha_normalize}; memoized per whole formula.  The plain pass
    is deterministic, so the memoized result is byte-for-byte the one a
    fresh run would produce. *)
let alpha_normalize_shared ?(keep_types = false) f =
  if not (Hashcons.enabled ()) then alpha_normalize ~keep_types f
  else
    let memo = if keep_types then alpha_memo_typed else alpha_memo_plain in
    Hashcons.Memo.find_or_add memo (import f).Hashcons.tag (fun () ->
        alpha_normalize ~keep_types f)

(** O(1)-amortized alpha-equivalence through the kernel: two formulas are
    {!equal} iff their normal forms intern to the same node. *)
let equal_shared a b =
  if not (Hashcons.enabled ()) then equal a b
  else
    import (alpha_normalize_shared a) == import (alpha_normalize_shared b)

(* Substitution with a sharing-aware shortcut: when the kernel has
   already interned the formula (a hypothesis that went through the
   digest or relevant-hyps path, a quantifier body instantiated over and
   over), the substitution domain is intersected with its memoized free
   variables, and a formula touching none of the substituted variables
   comes back physically unchanged in O(domain).  The probe never forces
   an import: freshly built trees — every wp step's postcondition — go
   straight to the plain sharing-preserving [subst].  Both importing at
   the root and pruning at every node were measured to cost more than
   they save on the formula sizes the VCG actually produces. *)
let subst_sharing (map : t Smap.t) f =
  if Smap.is_empty map then f
  else
    match Physcache.find_opt (Domain.DLS.get import_cache) f with
    | Some h ->
      let free = hfv h in
      let map = Smap.filter (fun x _ -> Sset.mem x free) map in
      if Smap.is_empty map then f else subst map f
    | None -> subst map f

(** Like {!subst}, with opportunistic free-variable pruning through the
    kernel. *)
let subst_shared map f =
  if Hashcons.enabled () then subst_sharing map f else subst map f

let subst1_shared x g f = subst_shared (Smap.singleton x g) f

let subst_list_shared pairs f =
  subst_shared
    (List.fold_left (fun m (x, g) -> Smap.add x g m) Smap.empty pairs)
    f

(** Drop every kernel memo table (all modules, all node passes) and this
    domain's import cache.  Benchmarks use this for cold-start A/B runs. *)
let clear_memos () =
  Hashcons.Memo.clear_all ();
  Physcache.reset (Domain.DLS.get import_cache)
