(** Nelson-Oppen style SMT solver for quantifier-free formulas over
    uninterpreted functions and linear integer arithmetic (QF_UFLIA).

    This plays the role of the external provers Jahob reaches through its
    SMT-LIB interface.  Architecture: lazy DPLL(T) —

    + the input is checked for *validity* by refuting
      [hyps /\ ~goal];
    + atoms are purified: arithmetic atoms become {!Presburger.Linterm}
      constraints, non-arithmetic terms become EUF terms, and foreign
      subterms are replaced by shared purification variables;
    + a Tseitin encoding hands the boolean skeleton to the CDCL core
      ([lib/sat]); every boolean model is checked by congruence closure +
      the Omega test, with Nelson-Oppen equality exchange between them;
    + theory conflicts come back as blocking clauses.

    Atoms outside the fragment (set operations, reachability, quantifiers)
    are treated as opaque propositional atoms.  That abstraction is sound
    for the [Valid] verdict; when a boolean model survives every theory
    check but the formula contains opaque atoms, the answer is [Unknown]
    rather than [Invalid]. *)

open Logic

module Linterm = Presburger.Linterm
module Omega = Presburger.Omega

(* ------------------------------------------------------------------ *)
(* Theory atoms                                                        *)
(* ------------------------------------------------------------------ *)

type atom =
  | Arith of Linterm.t * [ `Le | `Eq ] (* t <= 0 or t = 0 *)
  | Equal of Euf.term * Euf.term (* equality of uninterpreted terms *)
  | Both of Linterm.t * Euf.term * Euf.term
      (* variable-variable equality, visible to both theories *)
  | Opaque of Form.t (* out-of-fragment atom *)

type context = {
  mutable atoms : (Form.t * atom * int) list; (* formula, atom, SAT var *)
  mutable next_var : int;
  mutable bridges : (string * Euf.term) list;
      (* purification variable = foreign term *)
  mutable purify_memo : (Form.t * string) list;
  mutable int_consts : (int * string) list; (* integer constants seen by EUF *)
  mutable arith_defs : (string * Linterm.t) list;
      (* purification variable = arithmetic term, always asserted *)
}

let fresh_ctx () =
  {
    atoms = [];
    next_var = 0;
    bridges = [];
    purify_memo = [];
    int_consts = [];
    arith_defs = [];
  }

let new_var ctx =
  ctx.next_var <- ctx.next_var + 1;
  ctx.next_var

(* ------------------------------------------------------------------ *)
(* Term translation                                                    *)
(* ------------------------------------------------------------------ *)

exception Out_of_fragment

(* Translate a formula term into an EUF term; arithmetic subterms become
   purification variables constrained on the arithmetic side. *)
let rec euf_term ctx (f : Form.t) : Euf.term =
  match Form.strip_types f with
  | Form.Var x -> Euf.Sym (x, [])
  | Form.Const Form.Null -> Euf.Sym ("$null", [])
  | Form.Const (Form.IntLit n) ->
    let name = Printf.sprintf "$int_%d" n in
    if not (List.mem_assoc n ctx.int_consts) then
      ctx.int_consts <- (n, name) :: ctx.int_consts;
    Euf.Sym (name, [])
  | Form.Const (Form.BoolLit b) ->
    Euf.Sym ((if b then "$true" else "$false"), [])
  | Form.App (Form.Const Form.FieldRead, [ fld; obj ]) ->
    Euf.Sym ("$read", [ euf_term ctx fld; euf_term ctx obj ])
  | Form.App (Form.Const Form.FieldWrite, [ fld; obj; v ]) ->
    Euf.Sym ("$write", [ euf_term ctx fld; euf_term ctx obj; euf_term ctx v ])
  | Form.App (Form.Const Form.ArrayRead, [ a; o; i ]) ->
    Euf.Sym ("$aread", [ euf_term ctx a; euf_term ctx o; euf_term ctx i ])
  | Form.App (Form.Const Form.ArrayWrite, [ a; o; i; v ]) ->
    Euf.Sym
      ( "$awrite",
        [ euf_term ctx a; euf_term ctx o; euf_term ctx i; euf_term ctx v ] )
  | Form.App (Form.Var fn, args) ->
    Euf.Sym (fn, List.map (euf_term ctx) args)
  | Form.App (Form.Const (Form.Plus | Form.Minus | Form.Mult | Form.Uminus), _)
    ->
    (* arithmetic inside an uninterpreted context: purify *)
    Euf.Sym (purify_arith ctx f, [])
  | Form.App (Form.Const Form.Ite, _)
  | Form.Const _ | Form.App _ | Form.Binder _ | Form.TypedForm _ ->
    raise Out_of_fragment

(* Name an arithmetic term with a shared variable (memoized). *)
and purify_arith ctx (f : Form.t) : string =
  match
    List.find_opt (fun (g, _) -> Form.equal f g) ctx.purify_memo
  with
  | Some (_, v) -> v
  | None ->
    let v = Form.fresh_name "$p" in
    ctx.purify_memo <- (f, v) :: ctx.purify_memo;
    (* keep v shared: it occurs as a constant on the EUF side and is
       defined by an always-asserted equation on the arithmetic side *)
    ctx.bridges <- (v, Euf.Sym ("$arith", [])) :: ctx.bridges;
    ctx.arith_defs <- (v, lin_of ctx f) :: ctx.arith_defs;
    v

(* Translate an integer-sorted term into a linear term; uninterpreted
   subterms become purification variables shared with EUF. *)
and lin_of ctx (f : Form.t) : Linterm.t =
  match Form.strip_types f with
  | Form.Var x -> Linterm.var x
  | Form.Const (Form.IntLit n) -> Linterm.const n
  | Form.App (Form.Const Form.Plus, [ a; b ]) ->
    Linterm.add (lin_of ctx a) (lin_of ctx b)
  | Form.App (Form.Const Form.Minus, [ a; b ]) ->
    Linterm.sub (lin_of ctx a) (lin_of ctx b)
  | Form.App (Form.Const Form.Uminus, [ a ]) -> Linterm.neg (lin_of ctx a)
  | Form.App (Form.Const Form.Mult, [ a; b ]) -> (
    (* only linear multiplication is in the fragment *)
    match Form.strip_types a, Form.strip_types b with
    | Form.Const (Form.IntLit n), _ -> Linterm.scale n (lin_of ctx b)
    | _, Form.Const (Form.IntLit n) -> Linterm.scale n (lin_of ctx a)
    | _, _ -> raise Out_of_fragment)
  | Form.App (Form.Const Form.Card, _) ->
    (* cardinalities belong to BAPA; out of this fragment *)
    raise Out_of_fragment
  | Form.App ((Form.Const (Form.FieldRead | Form.ArrayRead) | Form.Var _), _)
    ->
    (* uninterpreted integer-valued term: purify into a shared variable *)
    Linterm.var (purify_foreign ctx f)
  | Form.Const _ | Form.App _ | Form.Binder _ | Form.TypedForm _ ->
    raise Out_of_fragment

(* Replace a non-arithmetic term appearing in arithmetic position by a
   shared variable v, remembering the EUF bridge v = term. *)
and purify_foreign ctx (f : Form.t) : string =
  match List.find_opt (fun (g, _) -> Form.equal f g) ctx.purify_memo with
  | Some (_, v) -> v
  | None ->
    let v = Form.fresh_name "$p" in
    ctx.purify_memo <- (f, v) :: ctx.purify_memo;
    let t = euf_term ctx f in
    ctx.bridges <- (v, t) :: ctx.bridges;
    v

(* ------------------------------------------------------------------ *)
(* Atom translation                                                    *)
(* ------------------------------------------------------------------ *)

(* Is this term integer-sorted for our purposes? *)
let rec looks_arith (f : Form.t) : bool =
  match Form.strip_types f with
  | Form.Const (Form.IntLit _) -> true
  | Form.App
      (Form.Const (Form.Plus | Form.Minus | Form.Mult | Form.Uminus | Form.Card), _)
    ->
    true
  | Form.App (Form.Const Form.Ite, [ _; a; b ]) -> looks_arith a || looks_arith b
  | _ -> false

let translate_atom ctx (f : Form.t) : atom =
  match Form.strip_types f with
  | Form.App (Form.Const Form.Elem, [ x; st ]) ->
    (* memberships become EUF boolean terms so that equality congruence
       connects them: x = y entails (x in S) = (y in S) *)
    Equal
      (Euf.Sym ("$elem", [ euf_term ctx x; euf_term ctx st ]),
       Euf.Sym ("$true", []))
  | Form.App (Form.Const Form.Le, [ a; b ]) ->
    Arith (Linterm.sub (lin_of ctx a) (lin_of ctx b), `Le)
  | Form.App (Form.Const Form.Lt, [ a; b ]) ->
    Arith
      ( Linterm.add (Linterm.sub (lin_of ctx a) (lin_of ctx b)) (Linterm.const 1),
        `Le )
  | Form.App (Form.Const Form.Ge, [ a; b ]) ->
    Arith (Linterm.sub (lin_of ctx b) (lin_of ctx a), `Le)
  | Form.App (Form.Const Form.Gt, [ a; b ]) ->
    Arith
      ( Linterm.add (Linterm.sub (lin_of ctx b) (lin_of ctx a)) (Linterm.const 1),
        `Le )
  | Form.App (Form.Const Form.Eq, [ a; b ]) -> (
    if looks_arith a || looks_arith b then
      Arith (Linterm.sub (lin_of ctx a) (lin_of ctx b), `Eq)
    else
      match Form.strip_types a, Form.strip_types b with
      | Form.Var x, Form.Var y ->
        (* sort unknown: expose the equality to both theories *)
        Both
          ( Linterm.sub (Linterm.var x) (Linterm.var y),
            Euf.Sym (x, []),
            Euf.Sym (y, []) )
      | _ -> Equal (euf_term ctx a, euf_term ctx b))
  | _ -> raise Out_of_fragment

(* Find or create the SAT variable for an atom formula. *)
let atom_var ctx (f : Form.t) : int =
  match List.find_opt (fun (g, _, _) -> Form.equal f g) ctx.atoms with
  | Some (_, _, v) -> v
  | None ->
    let a = try translate_atom ctx f with Out_of_fragment -> Opaque f in
    let v = new_var ctx in
    ctx.atoms <- (f, a, v) :: ctx.atoms;
    v

(* ------------------------------------------------------------------ *)
(* Tseitin CNF                                                         *)
(* ------------------------------------------------------------------ *)

(* Returns the literal representing f; clauses are accumulated. *)
let rec tseitin ctx clauses (f : Form.t) : int =
  match Form.strip_types f with
  | Form.Const (Form.BoolLit true) ->
    let v = new_var ctx in
    clauses := [ v ] :: !clauses;
    v
  | Form.Const (Form.BoolLit false) ->
    let v = new_var ctx in
    clauses := [ -v ] :: !clauses;
    v
  | Form.App (Form.Const Form.Not, [ g ]) -> -tseitin ctx clauses g
  | Form.App (Form.Const Form.And, gs) ->
    let lits = List.map (tseitin ctx clauses) gs in
    let v = new_var ctx in
    List.iter (fun l -> clauses := [ -v; l ] :: !clauses) lits;
    clauses := (v :: List.map (fun l -> -l) lits) :: !clauses;
    v
  | Form.App (Form.Const Form.Or, gs) ->
    let lits = List.map (tseitin ctx clauses) gs in
    let v = new_var ctx in
    List.iter (fun l -> clauses := [ v; -l ] :: !clauses) lits;
    clauses := (-v :: lits) :: !clauses;
    v
  | Form.App (Form.Const Form.Impl, [ a; b ]) ->
    tseitin ctx clauses (Form.mk_or [ Form.mk_not a; b ])
  | Form.App (Form.Const Form.Iff, [ a; b ]) ->
    let la = tseitin ctx clauses a and lb = tseitin ctx clauses b in
    let v = new_var ctx in
    clauses :=
      [ -v; -la; lb ] :: [ -v; la; -lb ] :: [ v; la; lb ]
      :: [ v; -la; -lb ] :: !clauses;
    v
  | Form.App (Form.Const Form.Ite, [ c; a; b ])
    when not (looks_arith a || looks_arith b) ->
    (* boolean if-then-else *)
    tseitin ctx clauses
      (Form.mk_and [ Form.mk_impl c a; Form.mk_impl (Form.mk_not c) b ])
  | _ -> atom_var ctx f

(* ------------------------------------------------------------------ *)
(* Read-over-write axiom instantiation                                  *)
(* ------------------------------------------------------------------ *)

(* Congruence closure treats $read/$write as uninterpreted, so the array
   axioms are instantiated eagerly as boolean clauses:

     G = write(F,Y,V) & X = Y  -->  read(G,X) = V
     G = write(F,Y,V) & X <> Y -->  read(G,X) = read(F,X)

   for every read/write pair in the formula, iterated to a shallow
   fixpoint (new reads appear on the right-hand side of the second
   axiom). *)

(* SAT variable for an EUF equality atom, deduplicated symmetrically. *)
let euf_atom_var ctx (x : Euf.term) (y : Euf.term) : int =
  let x, y = if Euf.term_to_string x <= Euf.term_to_string y then (x, y) else (y, x) in
  let existing =
    List.find_opt
      (fun (_, a, _) ->
        match a with
        | Equal (u, v) | Both (_, u, v) -> (u = x && v = y) || (u = y && v = x)
        | Arith _ | Opaque _ -> false)
      ctx.atoms
  in
  match existing with
  | Some (_, _, v) -> v
  | None ->
    let key =
      Form.mk_eq
        (Form.Var ("$t:" ^ Euf.term_to_string x))
        (Form.Var ("$t:" ^ Euf.term_to_string y))
    in
    let v = new_var ctx in
    ctx.atoms <- (key, Equal (x, y), v) :: ctx.atoms;
    v

let instantiate_array_lemmas ctx (clauses : int list list ref) : unit =
  let seen_terms : (Euf.term, unit) Hashtbl.t = Hashtbl.create 64 in
  let frontier = ref [] in
  let rec note (Euf.Sym (_, args) as t) =
    if not (Hashtbl.mem seen_terms t) then begin
      Hashtbl.add seen_terms t ();
      frontier := t :: !frontier;
      List.iter note args
    end
  in
  List.iter
    (fun (_, a, _) ->
      match a with
      | Equal (x, y) | Both (_, x, y) ->
        note x;
        note y
      | Arith _ | Opaque _ -> ())
    ctx.atoms;
  List.iter (fun (_, t) -> note t) ctx.bridges;
  let instantiated = Hashtbl.create 16 in
  let rounds = ref 0 in
  while !frontier <> [] && !rounds < 4 do
    incr rounds;
    let batch = !frontier in
    frontier := [];
    let all () = Hashtbl.fold (fun t () acc -> t :: acc) seen_terms [] in
    let reads =
      List.filter
        (fun t -> match t with Euf.Sym ("$read", [ _; _ ]) -> true | _ -> false)
        (all ())
    in
    let writes =
      List.filter
        (fun t ->
          match t with Euf.Sym ("$write", [ _; _; _ ]) -> true | _ -> false)
        (all ())
    in
    (* only pairs where at least one side is new this round *)
    let fresh t = List.mem t batch in
    List.iter
      (fun r ->
        List.iter
          (fun w ->
            if (fresh r || fresh w) && not (Hashtbl.mem instantiated (r, w))
            then begin
              Hashtbl.add instantiated (r, w) ();
              match r, w with
              | ( Euf.Sym ("$read", [ g; x ]),
                  Euf.Sym ("$write", [ f; y; v ]) ) ->
                let eq_gw = euf_atom_var ctx g w in
                let eq_xy = euf_atom_var ctx x y in
                let eq_rv = euf_atom_var ctx r v in
                let r' = Euf.Sym ("$read", [ f; x ]) in
                note r';
                let eq_rr' = euf_atom_var ctx r r' in
                clauses := [ -eq_gw; -eq_xy; eq_rv ] :: !clauses;
                clauses := [ -eq_gw; eq_xy; eq_rr' ] :: !clauses
              | _ -> ()
            end)
          writes)
      reads;
    (* two-dimensional array variant: aread/awrite over (object, index) *)
    let areads =
      List.filter
        (fun t ->
          match t with Euf.Sym ("$aread", [ _; _; _ ]) -> true | _ -> false)
        (all ())
    in
    let awrites =
      List.filter
        (fun t ->
          match t with
          | Euf.Sym ("$awrite", [ _; _; _; _ ]) -> true
          | _ -> false)
        (all ())
    in
    List.iter
      (fun r ->
        List.iter
          (fun w ->
            if (fresh r || fresh w) && not (Hashtbl.mem instantiated (r, w))
            then begin
              Hashtbl.add instantiated (r, w) ();
              match r, w with
              | ( Euf.Sym ("$aread", [ g; o; i ]),
                  Euf.Sym ("$awrite", [ f; o'; i'; v ]) ) ->
                let eq_gw = euf_atom_var ctx g w in
                let eq_oo = euf_atom_var ctx o o' in
                let eq_ii = euf_atom_var ctx i i' in
                let eq_rv = euf_atom_var ctx r v in
                let r' = Euf.Sym ("$aread", [ f; o; i ]) in
                note r';
                let eq_rr' = euf_atom_var ctx r r' in
                (* same cell: value read back *)
                clauses := [ -eq_gw; -eq_oo; -eq_ii; eq_rv ] :: !clauses;
                (* different object or different index: old value *)
                clauses := [ -eq_gw; eq_oo; eq_rr' ] :: !clauses;
                clauses := [ -eq_gw; eq_ii; eq_rr' ] :: !clauses
              | _ -> ()
            end)
          awrites)
      areads
  done;
  (* The heap convention [null..f = null]: every read of a program field
     variable at an object equal to null yields null.  The FOL prover
     asserts the same axiom for 0-ary field constants and the MONA route
     builds it into the word model; without it the SMT side claims
     countermodels that are not models of the intended heap semantics.
     Write-terms are exempt — [fieldWrite] is interpreted literally by
     every party (reads through a write chain still reduce to a base-field
     read by the lemmas above and are then covered). *)
  let null_t = Euf.Sym ("$null", []) in
  Hashtbl.iter
    (fun t () ->
      match t with
      | Euf.Sym ("$read", [ Euf.Sym (fname, []); x ])
        when String.length fname > 0 && fname.[0] <> '$' ->
        let eq_x_null = euf_atom_var ctx x null_t in
        let eq_r_null = euf_atom_var ctx t null_t in
        clauses := [ -eq_x_null; eq_r_null ] :: !clauses
      | _ -> ())
    seen_terms

(* ------------------------------------------------------------------ *)
(* Theory checking                                                     *)
(* ------------------------------------------------------------------ *)

type theory_result =
  | Consistent of bool (* true when only interpreted atoms were involved *)
  | Conflict

(* Check the conjunction of assigned theory literals, with Nelson-Oppen
   equality exchange between EUF and LIA. *)
let theory_check ctx (assigned : (atom * bool) list) : theory_result =
  (* variables genuinely involved in arithmetic; a var-var equality over
     objects has no business on the arithmetic side (it would only blow up
     the disequality case splits) *)
  let arith_vars =
    let from_atoms =
      List.concat_map
        (fun (a, _) ->
          match a with Arith (t, _) -> Linterm.variables t | _ -> [])
        assigned
    in
    let from_defs =
      List.concat_map
        (fun (v, t) -> v :: Linterm.variables t)
        ctx.arith_defs
    in
    List.sort_uniq compare (from_atoms @ from_defs)
  in
  let arith_atoms =
    List.concat_map
      (fun (a, sign) ->
        match a with
        | Arith (t, op) -> [ (t, op, sign) ]
        | Both (t, _, _)
          when List.exists (fun v -> List.mem v arith_vars) (Linterm.variables t)
          ->
          [ (t, `Eq, sign) ]
        | Both _ | Equal _ | Opaque _ -> [])
      assigned
  in
  let arith_atoms =
    arith_atoms
    @ List.map
        (fun (v, t) -> (Linterm.sub (Linterm.var v) t, `Eq, true))
        ctx.arith_defs
  in
  let euf_eqs =
    List.filter_map
      (fun (a, sign) ->
        match a, sign with
        | Equal (x, y), true | Both (_, x, y), true -> Some (x, y)
        | _ -> None)
      assigned
  in
  let euf_diseqs =
    List.filter_map
      (fun (a, sign) ->
        match a, sign with
        | Equal (x, y), false | Both (_, x, y), false -> Some (x, y)
        | _ -> None)
      assigned
  in
  let has_opaque =
    List.exists (fun (a, _) -> match a with Opaque _ -> true | _ -> false)
      assigned
  in
  (* bridge equalities: v = t links the arith variable v with EUF term t *)
  let bridge_eqs =
    List.filter_map
      (fun (v, t) ->
        match t with
        | Euf.Sym ("$arith", []) -> None
        | _ -> Some (Euf.Sym (v, []), t))
      ctx.bridges
  in
  (* distinct integer constants are distinct in EUF *)
  let rec int_diseqs = function
    | [] -> []
    | (n1, v1) :: rest ->
      List.filter_map
        (fun (n2, v2) ->
          if n1 <> n2 then Some (Euf.Sym (v1, []), Euf.Sym (v2, [])) else None)
        rest
      @ int_diseqs rest
  in
  let int_eq_constraints =
    (* tie $int_n names to their arithmetic values *)
    List.map
      (fun (n, v) -> (Linterm.sub (Linterm.var v) (Linterm.const n), `Eq, true))
      ctx.int_consts
  in
  let arith_atoms = arith_atoms @ int_eq_constraints in
  (* shared variables: appear on the arithmetic side and as EUF constants *)
  let shared_vars =
    let arith_vars =
      List.sort_uniq compare
        (List.concat_map (fun (t, _, _) -> Linterm.variables t) arith_atoms)
    in
    let rec euf_consts acc (Euf.Sym (f, args)) =
      let acc = if args = [] then f :: acc else acc in
      List.fold_left euf_consts acc args
    in
    let euf_side =
      List.fold_left
        (fun acc (x, y) -> euf_consts (euf_consts acc x) y)
        []
        (euf_eqs @ euf_diseqs @ bridge_eqs)
    in
    let euf_side = List.sort_uniq compare euf_side in
    List.filter (fun v -> List.mem v euf_side) arith_vars
  in
  let shared_terms = List.map (fun v -> Euf.Sym (v, [])) shared_vars in
  (* iterate equality exchange to a fixpoint *)
  let rec loop known_eqs iterations =
    if iterations > 8 then Consistent has_opaque
    else begin
      let all_eqs = euf_eqs @ bridge_eqs @ known_eqs in
      if
        Euf.check ~eqs:all_eqs ~diseqs:(euf_diseqs @ int_diseqs ctx.int_consts)
        = Euf.Unsat
      then Conflict
      else begin
        (* equalities implied by EUF between shared variables *)
        let implied = Euf.implied_equalities ~eqs:all_eqs shared_terms in
        let var_of = function Euf.Sym (v, []) -> Some v | _ -> None in
        let arith_eqs_from_euf =
          List.filter_map
            (fun (x, y) ->
              match var_of x, var_of y with
              | Some a, Some b when a <> b ->
                Some (Linterm.sub (Linterm.var a) (Linterm.var b), `Eq, true)
              | _ -> None)
            implied
        in
        let constraints = arith_atoms @ arith_eqs_from_euf in
        let eqs, ineqs, neg_eqs =
          List.fold_left
            (fun (eqs, ineqs, negs) (t, op, sign) ->
              match op, sign with
              | `Le, true -> (eqs, t :: ineqs, negs)
              | `Le, false ->
                (* ~(t <= 0) <=> -t + 1 <= 0 *)
                (eqs, Linterm.add (Linterm.neg t) (Linterm.const 1) :: ineqs, negs)
              | `Eq, true -> (t :: eqs, ineqs, negs)
              | `Eq, false -> (eqs, ineqs, t :: negs))
            ([], [], []) constraints
        in
        (* disequalities need case splits (LIA is non-convex); cap the split
           width to keep this predictable *)
        let rec split_negs negs eqs ineqs =
          match negs with
          | [] -> (
            match Omega.check_terms ~eqs ~ineqs () with
            | Omega.Unsat -> None
            | Omega.Sat -> Some (eqs, ineqs)
            | exception Presburger.Omega.Fuel_exhausted ->
              (* inconclusive: treat as consistent, never as a proof *)
              Some (eqs, ineqs))
          | t :: rest -> (
            (* t < 0 or t > 0 *)
            match
              split_negs rest eqs (Linterm.add t (Linterm.const 1) :: ineqs)
            with
            | Some r -> Some r
            | None ->
              split_negs rest eqs
                (Linterm.add (Linterm.neg t) (Linterm.const 1) :: ineqs))
        in
        if List.length neg_eqs > 6 then Consistent has_opaque (* give up *)
        else
          match split_negs neg_eqs eqs ineqs with
          | None -> Conflict
          | Some _ ->
            (* equalities implied by arithmetic between shared vars (a pair
               is forced equal when both strict orders are infeasible);
               feed them back to EUF.  Note: sound but incomplete for
               non-convex combinations needing disjunctive splits. *)
            let forced =
              let pairs =
                let rec all = function
                  | [] -> []
                  | x :: rest -> List.map (fun y -> (x, y)) rest @ all rest
                in
                all shared_vars
              in
              List.filter
                (fun (a, b) ->
                  let d = Linterm.sub (Linterm.var a) (Linterm.var b) in
                  let lt = Linterm.add d (Linterm.const 1) in
                  let gt = Linterm.add (Linterm.neg d) (Linterm.const 1) in
                  try
                    Omega.check_terms ~eqs ~ineqs:(lt :: ineqs) ()
                    = Omega.Unsat
                    && Omega.check_terms ~eqs ~ineqs:(gt :: ineqs) ()
                       = Omega.Unsat
                  with Presburger.Omega.Fuel_exhausted -> false)
                pairs
            in
            let new_eqs =
              List.filter_map
                (fun (a, b) ->
                  let ta = Euf.Sym (a, []) and tb = Euf.Sym (b, []) in
                  let already =
                    List.exists
                      (fun (x, y) ->
                        (x = ta && y = tb) || (x = tb && y = ta))
                      known_eqs
                  in
                  if already then None else Some (ta, tb))
                forced
            in
            if new_eqs = [] then Consistent has_opaque
            else loop (new_eqs @ known_eqs) (iterations + 1)
      end
    end
  in
  loop [] 0

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let max_theory_rounds = 2000

(** Decide satisfiability of a quantifier-free formula (with opaque
    abstraction of out-of-fragment atoms). *)
let check_sat (f : Form.t) : [ `Sat of bool | `Unsat ] =
  (* `Sat b: b = true means the model involved no opaque atoms *)
  let f = Simplify.simplify f in
  let ctx = fresh_ctx () in
  let clauses = ref [] in
  let root = tseitin ctx clauses f in
  instantiate_array_lemmas ctx clauses;
  let solver = Sat.create () in
  let ok = List.for_all (fun c -> Sat.add_clause solver c) !clauses in
  let ok = ok && Sat.add_clause solver [ root ] in
  if not ok then `Unsat
  else begin
    let rec loop rounds precise_so_far =
      Deadline.check ();
      (if Sys.getenv_opt "SMT_DEBUG" <> None && rounds mod 100 = 0 then
         Printf.eprintf "smt round %d, atoms %d\n%!" rounds
           (List.length ctx.atoms));
      if rounds > max_theory_rounds then `Sat false
      else
        match Sat.solve solver with
        | Sat.Unsat -> `Unsat
        | Sat.Sat m ->
          let assigned_full =
            List.map (fun (f, a, v) -> (f, a, v, Sat.lit_true m v)) ctx.atoms
          in
          let assigned =
            List.map (fun (_, a, _, b) -> (a, b)) assigned_full
          in
          (match theory_check ctx assigned with
          | Consistent has_opaque ->
            (if Sys.getenv_opt "SMT_DEBUG" <> None then begin
               Printf.eprintf "=== consistent model ===\n";
               List.iter
                 (fun (f, a, v) ->
                   let kind =
                     match a with
                     | Arith _ -> "arith"
                     | Equal _ -> "equal"
                     | Both _ -> "both"
                     | Opaque _ -> "opaque"
                   in
                   Printf.eprintf "  [%s] %s = %b\n" kind
                     (Pprint.to_string f) (Sat.lit_true m v))
                 ctx.atoms;
               Printf.eprintf "========================\n%!"
             end);
            `Sat (not has_opaque && precise_so_far)
          | Conflict ->
            (* greedily minimize the conflicting literal set so the
               blocking clause prunes a whole family of boolean models,
               not just this one (poor man's unsat core) *)
            let theory_lits =
              List.filter
                (fun (_, a, _, _) ->
                  match a with Opaque _ -> false | _ -> true)
                assigned_full
            in
            let core = ref theory_lits in
            List.iter
              (fun lit ->
                let without = List.filter (fun l -> not (l == lit)) !core in
                let still_conflicts =
                  theory_check ctx
                    (List.map (fun (_, a, _, b) -> (a, b)) without)
                  = Conflict
                in
                if still_conflicts then core := without)
              theory_lits;
            let blocking =
              List.map (fun (_, _, v, b) -> if b then -v else v) !core
            in
            if blocking = [] then `Sat precise_so_far
            else if Sat.add_clause solver blocking then
              loop (rounds + 1) precise_so_far
            else `Unsat)
    in
    loop 0 true
  end

(** Does the sequent lie entirely within the QF_UFLIA (plus
    memberships-as-EUF) fragment?  True exactly when Tseitin translation
    of the refutand produces no opaque atoms — the condition under which
    [prove] would trust a countermodel enough to answer [Invalid]. *)
let in_fragment (s : Sequent.t) : bool =
  let f = Sequent.refutand s in
  let ctx = fresh_ctx () in
  let clauses = ref [] in
  match tseitin ctx clauses f with
  | _ ->
    List.for_all
      (fun (_, a, _) -> match a with Opaque _ -> false | _ -> true)
      ctx.atoms
  | exception Out_of_fragment -> false

(** Prove a sequent by refuting hypotheses + negated goal. *)
let prove (s : Sequent.t) : Sequent.verdict =
  (* [Sequent.refutand] is simplified through the shared memo, so the
     in_fragment probe and the proof attempt pay for one simplification *)
  match check_sat (Sequent.refutand s) with
  | `Unsat -> Sequent.Valid
  | `Sat true -> Sequent.Invalid "SMT found a theory-consistent countermodel"
  | `Sat false ->
    Sequent.Unknown "boolean model involves atoms outside QF_UFLIA"
  | exception Out_of_fragment ->
    Sequent.Unknown "formula outside the SMT fragment"

let prover : Sequent.prover =
  Sequent.traced_prover { prover_name = "smt"; prove }
