(** Jahob: the top-level driver.

    Runs the full pipeline of the paper: parse the annotated Java subset,
    desugar to guarded commands, generate weakest-precondition
    obligations, decompose goals, and dispatch each obligation to the
    decision-procedure portfolio.  Loop invariants are inferred by the
    symbolic shape analysis when not annotated, and inferred conjuncts
    that fail their own checks are weakened away automatically. *)

type method_report = {
  method_name : string;
  obligations : Dispatch.summary;
}

type program_report = {
  methods : method_report list;
  ok : bool;  (** every obligation of every method proved *)
  dispatcher : Dispatch.t;  (** for per-prover statistics *)
}

(** The default portfolio in dispatch order: SMT, BAPA, the MONA route,
    and the first-order prover. *)
val default_provers : unit -> Logic.Sequent.prover list

(** Fragment-admission predicates for the adaptive scheduler, keyed by
    prover name.  Listed provers are skipped on sequents their
    [in_fragment] rejects — sound because each of these fails in the same
    translation front end the predicate runs.  SMT is deliberately
    absent (it can settle goals with atoms it abstracts as opaque). *)
val default_admissions : unit -> (string * (Logic.Sequent.t -> bool)) list

type options = {
  provers : Logic.Sequent.prover list;
  infer_loop_invariants : bool;
  jobs : int;
      (** worker domains for parallel dispatch; 1 verifies sequentially *)
  use_cache : bool;
      (** memoize verdicts of repeated (canonicalized) obligations *)
  cache_cap : int;
      (** verdict-cache entry cap (LRU-evicted at batch boundaries past
          it); [0] keeps the generous {!Dispatch.Cache.default_cap} —
          the knob behind [jahob verify --cache-cap] *)
  budget_s : float option;
      (** wall-clock budget per prover call; [None] leaves provers
          unbounded *)
  use_hashcons : bool;
      (** enable the hash-consed formula kernel and its memo tables
          ({!Logic.Hashcons}); [false] runs every structural pass plain —
          the A/B escape hatch behind [jahob verify --no-hashcons] *)
  sched : Dispatch.Sched.policy;
      (** [Adaptive] (the default) routes each obligation through
          fragment admission and the learned prover ordering;
          [Fixed] replays the legacy portfolio-order cascade — the
          escape hatch behind [jahob verify --sched fixed] *)
  race : int;
      (** how many admitted provers to race per obligation on idle pool
          domains (losers are cancelled at their next {!Deadline}
          checkpoint); 1 (the default) runs the plain cascade.  Only
          effective with [jobs > 1]. *)
}

val default_options : unit -> options

(** Everything that should stay warm across verification requests: the
    worker pool, the verdict cache, the adaptive scheduler's EMAs and the
    per-prover statistics.  A one-shot {!verify_files} builds a throwaway
    engine; [jahob serve] builds one at startup and answers every request
    from it (the hash-consing store is process-global, so it stays warm
    for free). *)
type engine

val create_engine : options -> engine

(** The engine's verdict cache, when caching is enabled — what a
    persistent store preloads and drains. *)
val engine_cache : engine -> Dispatch.Cache.t option

val engine_dispatcher : engine -> Dispatch.t

(** Release the engine's worker pool.  The engine must not be used
    afterwards. *)
val shutdown_engine : engine -> unit

(** Verify on a resident engine.  Each call is one cache batch: a new
    recency epoch on entry, an LRU trim back under the cap on exit. *)
val verify_program_with : engine -> Javaparser.Ast.program -> program_report

(** Parse and verify files on a resident engine (the daemon's request
    handler). *)
val verify_files_with : engine -> string list -> program_report

val verify_program :
  ?opts:options -> Javaparser.Ast.program -> program_report

val verify_files : ?opts:options -> string list -> program_report
val verify_file : ?opts:options -> string -> program_report

val pp_report :
  ?stats:bool -> Format.formatter -> program_report -> unit
