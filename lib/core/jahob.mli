(** Jahob: the top-level driver.

    Runs the full pipeline of the paper: parse the annotated Java subset,
    desugar to guarded commands, generate weakest-precondition
    obligations, decompose goals, and dispatch each obligation to the
    decision-procedure portfolio.  Loop invariants are inferred by the
    symbolic shape analysis when not annotated, and inferred conjuncts
    that fail their own checks are weakened away automatically. *)

type method_report = {
  method_name : string;
  obligations : Dispatch.summary;
}

type program_report = {
  methods : method_report list;
  ok : bool;  (** every obligation of every method proved *)
  dispatcher : Dispatch.t;  (** for per-prover statistics *)
}

(** The default portfolio in dispatch order: SMT, BAPA, the MONA route,
    and the first-order prover. *)
val default_provers : unit -> Logic.Sequent.prover list

(** Fragment-admission predicates for the adaptive scheduler, keyed by
    prover name.  Listed provers are skipped on sequents their
    [in_fragment] rejects — sound because each of these fails in the same
    translation front end the predicate runs.  SMT is deliberately
    absent (it can settle goals with atoms it abstracts as opaque). *)
val default_admissions : unit -> (string * (Logic.Sequent.t -> bool)) list

type options = {
  provers : Logic.Sequent.prover list;
  infer_loop_invariants : bool;
  jobs : int;
      (** worker domains for parallel dispatch; 1 verifies sequentially *)
  use_cache : bool;
      (** memoize verdicts of repeated (canonicalized) obligations *)
  budget_s : float option;
      (** wall-clock budget per prover call; [None] leaves provers
          unbounded *)
  use_hashcons : bool;
      (** enable the hash-consed formula kernel and its memo tables
          ({!Logic.Hashcons}); [false] runs every structural pass plain —
          the A/B escape hatch behind [jahob verify --no-hashcons] *)
  sched : Dispatch.Sched.policy;
      (** [Adaptive] (the default) routes each obligation through
          fragment admission and the learned prover ordering;
          [Fixed] replays the legacy portfolio-order cascade — the
          escape hatch behind [jahob verify --sched fixed] *)
  race : int;
      (** how many admitted provers to race per obligation on idle pool
          domains (losers are cancelled at their next {!Deadline}
          checkpoint); 1 (the default) runs the plain cascade.  Only
          effective with [jobs > 1]. *)
}

val default_options : unit -> options

val verify_program :
  ?opts:options -> Javaparser.Ast.program -> program_report

val verify_files : ?opts:options -> string list -> program_report
val verify_file : ?opts:options -> string -> program_report

val pp_report :
  ?stats:bool -> Format.formatter -> program_report -> unit
