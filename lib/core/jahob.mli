(** Jahob: the top-level driver.

    Runs the full pipeline of the paper: parse the annotated Java subset,
    desugar to guarded commands, generate weakest-precondition
    obligations, decompose goals, and dispatch each obligation to the
    decision-procedure portfolio.  Loop invariants are inferred by the
    symbolic shape analysis when not annotated, and inferred conjuncts
    that fail their own checks are weakened away automatically. *)

(** How a method's verdicts were obtained this run. *)
type provenance =
  | Fresh  (** cold verification: VCs generated and dispatched *)
  | Unchanged  (** incremental: answered entirely from the method store *)
  | Invalidated of string list
      (** incremental: re-verified, with the reasons — ["new"],
          ["method"], ["ctx"], ["options"], or the dependency keys whose
          digests changed (e.g. ["inv:List"], ["ct:List.add"]) *)

type method_report = {
  method_name : string;
  obligations : Dispatch.summary;
  provenance : provenance;
}

val provenance_reasons : provenance -> string list

type program_report = {
  methods : method_report list;
  ok : bool;  (** every obligation of every method proved *)
  dispatcher : Dispatch.t;  (** for per-prover statistics *)
}

(** The default portfolio in dispatch order: SMT, BAPA, the MONA route,
    and the first-order prover. *)
val default_provers : unit -> Logic.Sequent.prover list

(** Fragment-admission predicates for the adaptive scheduler, keyed by
    prover name.  Listed provers are skipped on sequents their
    [in_fragment] rejects — sound because each of these fails in the same
    translation front end the predicate runs.  SMT is deliberately
    absent (it can settle goals with atoms it abstracts as opaque). *)
val default_admissions : unit -> (string * (Logic.Sequent.t -> bool)) list

type options = {
  provers : Logic.Sequent.prover list;
  infer_loop_invariants : bool;
  jobs : int;
      (** worker domains for parallel dispatch; 1 verifies sequentially *)
  use_cache : bool;
      (** memoize verdicts of repeated (canonicalized) obligations *)
  cache_cap : int;
      (** verdict-cache entry cap (LRU-evicted at batch boundaries past
          it); [0] keeps the generous {!Dispatch.Cache.default_cap} —
          the knob behind [jahob verify --cache-cap] *)
  budget_s : float option;
      (** wall-clock budget per prover call; [None] leaves provers
          unbounded *)
  use_hashcons : bool;
      (** enable the hash-consed formula kernel and its memo tables
          ({!Logic.Hashcons}); [false] runs every structural pass plain —
          the A/B escape hatch behind [jahob verify --no-hashcons] *)
  sched : Dispatch.Sched.policy;
      (** [Adaptive] (the default) routes each obligation through
          fragment admission and the learned prover ordering;
          [Fixed] replays the legacy portfolio-order cascade — the
          escape hatch behind [jahob verify --sched fixed] *)
  race : int;
      (** how many admitted provers to race per obligation on idle pool
          domains (losers are cancelled at their next {!Deadline}
          checkpoint); 1 (the default) runs the plain cascade.  Only
          effective with [jobs > 1]. *)
  mona_engine : Mona.Ws1s.engine;
      (** which automata engine decides WS1S obligations on the MONA
          route: [Bdd] (the default, symbolic MTBDD transitions) or
          [Dense] (the original 2^width-table engine) — the A/B escape
          hatch behind [jahob verify --mona-engine] *)
}

val default_options : unit -> options

(** Everything that should stay warm across verification requests: the
    worker pool, the verdict cache, the adaptive scheduler's EMAs and the
    per-prover statistics.  A one-shot {!verify_files} builds a throwaway
    engine; [jahob serve] builds one at startup and answers every request
    from it (the hash-consing store is process-global, so it stays warm
    for free). *)
type engine

val create_engine : options -> engine

(** The engine's verdict cache, when caching is enabled — what a
    persistent store preloads and drains. *)
val engine_cache : engine -> Dispatch.Cache.t option

val engine_dispatcher : engine -> Dispatch.t

(** Release the engine's worker pool.  The engine must not be used
    afterwards. *)
val shutdown_engine : engine -> unit

(** Verify on a resident engine.  Each call is one cache batch: a new
    recency epoch on entry, an LRU trim back under the cap on exit. *)
val verify_program_with : engine -> Javaparser.Ast.program -> program_report

(** One method's record in a persistent store: its structural digest,
    the global context digest, the dependency digests its VCs read, and
    the settled verdicts to replay while none of those change. *)
type stored_method = {
  sm_name : string;
  sm_digest : string;
  sm_ctx : string;
  sm_infer : bool;
  sm_mona : string;  (** {!Mona.Ws1s.engine_name} at record time *)
  sm_deps : (string * string) list;
  sm_verdicts : (string * string * string) list;
      (** (obligation name, verdict kind ["valid"]/["invalid"], prover) *)
}

(** Where incremental verification reads and writes per-method records.
    Implementations must be thread-safe: pool worker domains call all
    four functions concurrently. *)
type method_source = {
  find_method : string -> stored_method option;
  record_method : stored_method -> unit;
  remove_method : string -> unit;
  list_methods : unit -> string list;
}

(** A fresh in-memory method source (a locked hashtable) — backs
    [jahob verify --since] within one process, and the tests. *)
val hashtbl_source : unit -> method_source

(** Incremental verification against a method store.  Each verifiable
    method is re-verified iff it is new, its own structural digest
    changed, the global desugaring context changed, or one of its
    recorded dependency digests changed — otherwise its stored verdicts
    are replayed and the method reports {!Unchanged}.  Re-verified
    methods whose obligations all settled are recorded back, so a run
    against an empty source doubles as the base (cold) run. *)
val verify_program_inc :
  engine -> source:method_source -> Javaparser.Ast.program -> program_report

(** Parse and verify files on a resident engine (the daemon's request
    handler). *)
val verify_files_with : engine -> string list -> program_report

val verify_program :
  ?opts:options -> Javaparser.Ast.program -> program_report

val verify_files : ?opts:options -> string list -> program_report
val verify_file : ?opts:options -> string -> program_report

val pp_report :
  ?stats:bool -> Format.formatter -> program_report -> unit
