(** Jahob: the top-level driver.

    Runs the full pipeline of the paper: parse the annotated Java subset,
    desugar to guarded commands, generate weakest-precondition
    obligations, decompose goals, and dispatch each obligation to the
    decision-procedure portfolio.  Loop invariants are inferred by the
    symbolic shape analysis when not annotated, and inferred conjuncts
    that fail their own checks are weakened away automatically. *)

type method_report = {
  method_name : string;
  obligations : Dispatch.summary;
}

type program_report = {
  methods : method_report list;
  ok : bool;  (** every obligation of every method proved *)
  dispatcher : Dispatch.t;  (** for per-prover statistics *)
}

(** The default portfolio in dispatch order: SMT, BAPA, the MONA route,
    and the first-order prover. *)
val default_provers : unit -> Logic.Sequent.prover list

type options = {
  provers : Logic.Sequent.prover list;
  infer_loop_invariants : bool;
  jobs : int;
      (** worker domains for parallel dispatch; 1 verifies sequentially *)
  use_cache : bool;
      (** memoize verdicts of repeated (canonicalized) obligations *)
  budget_s : float option;
      (** wall-clock budget per prover call; [None] leaves provers
          unbounded *)
  use_hashcons : bool;
      (** enable the hash-consed formula kernel and its memo tables
          ({!Logic.Hashcons}); [false] runs every structural pass plain —
          the A/B escape hatch behind [jahob verify --no-hashcons] *)
}

val default_options : unit -> options

val verify_program :
  ?opts:options -> Javaparser.Ast.program -> program_report

val verify_files : ?opts:options -> string list -> program_report
val verify_file : ?opts:options -> string -> program_report

val pp_report :
  ?stats:bool -> Format.formatter -> program_report -> unit
