(** Jahob: the top-level driver.

    [verify_file] / [verify_program] run the full pipeline of the paper:
    parse the annotated Java subset, desugar to guarded commands, generate
    weakest-precondition obligations, decompose goals, and dispatch each
    obligation to the decision-procedure portfolio. *)

module Ast = Javaparser.Ast

type method_report = {
  method_name : string;
  obligations : Dispatch.summary;
}

type program_report = {
  methods : method_report list;
  ok : bool; (* every obligation of every method proved *)
  dispatcher : Dispatch.t; (* for per-prover statistics *)
}

(** The default portfolio, in dispatch order: the cheap SMT core first,
    then BAPA for cardinality goals, the MONA-route for shape goals, and
    the first-order prover as the catch-all for set-algebraic goals. *)
let default_provers () : Logic.Sequent.prover list =
  [ Smt.prover; Bapa.prover; Fca.prover; Fol.prover ]

(** Fragment-admission predicates for the scheduler, keyed by prover
    name.  Only provers whose [in_fragment = false] {e provably} implies
    [prove = Unknown] may appear here — each of these fails in the same
    translation front end its predicate runs, so a skip can never change
    a verdict.  The SMT prover is deliberately absent: it abstracts
    out-of-fragment atoms propositionally ([Smt.in_fragment] false merely
    means "some atom is opaque") and can still settle such goals, so it
    must always be offered the sequent. *)
let default_admissions () : (string * (Logic.Sequent.t -> bool)) list =
  [ ("bapa", Bapa.in_fragment);
    ("mona", Fca.in_fragment);
    ("fol", Fol.in_fragment);
    ("cooper", fun s -> Presburger.Lia.in_fragment s) ]

type options = {
  provers : Logic.Sequent.prover list;
  infer_loop_invariants : bool; (* use symbolic shape analysis *)
  jobs : int; (* worker domains; 1 = sequential *)
  use_cache : bool; (* memoize verdicts of repeated obligations *)
  cache_cap : int; (* verdict-cache entry cap; 0 = the generous default *)
  budget_s : float option; (* wall-clock budget per prover call *)
  use_hashcons : bool; (* the hash-consed formula kernel; off = plain *)
  sched : Dispatch.Sched.policy; (* fixed cascade or adaptive routing *)
  race : int; (* admitted provers raced per obligation; 1 = cascade *)
}

let default_options () =
  { provers = default_provers (); infer_loop_invariants = true;
    jobs = 1; use_cache = true; cache_cap = 0; budget_s = None;
    use_hashcons = true; sched = Dispatch.Sched.Adaptive; race = 1 }

(* a ceiling on worker domains: beyond any real core count, more domains
   only add stop-the-world GC synchronization cost *)
let max_jobs = 128

(** Resolve a requested [jobs] value: [j <= 0] means "auto" — one worker
    per core as reported by [Domain.recommended_domain_count] — and
    anything above {!max_jobs} is clamped.  The CLI exposes this as
    [-j 0]; the library default stays [jobs = 1] (deterministic
    sequential verification) for embedders. *)
let effective_jobs (j : int) : int =
  if j <= 0 then min (Domain.recommended_domain_count ()) max_jobs
  else min j max_jobs

(* loop-invariant inference uses the fast provers only; the full portfolio
   still checks the final obligations *)
let shape_provers (opts : options) : Logic.Sequent.prover list =
  List.filter
    (fun (p : Logic.Sequent.prover) ->
      p.Logic.Sequent.prover_name = "smt" || p.Logic.Sequent.prover_name = "fol")
    opts.provers

let vcgen_options ?(drop = []) ?cache ?memo (opts : options)
    (task : Gcl.Desugar.method_task) : Vcgen.options =
  if opts.infer_loop_invariants then
    { Vcgen.infer_invariant =
        Shape.infer_with_seeds ~drop ?cache ?memo (shape_provers opts)
          task.Gcl.Desugar.task_seeds }
  else Vcgen.default_options

(* ------------------------------------------------------------------ *)
(* The resident engine                                                 *)
(* ------------------------------------------------------------------ *)

(** Everything that should stay warm across verification requests: the
    worker pool, the verdict cache, the adaptive scheduler's EMAs and
    the per-prover statistics (all owned by the one dispatcher).  A
    one-shot [verify_files] builds a throwaway engine; [jahob serve]
    builds one at startup and answers every request from it. *)
type engine = {
  eng_opts : options;
  eng_pool : Dispatch.Pool.t option;
  eng_cache : Dispatch.Cache.t option;
  eng_dispatcher : Dispatch.t;
  eng_shape_memo : Shape.memo;
      (* candidate-check outcomes; unlike the verdict cache it may keep
         Unknown-derived failures, because Houdini's result is
         re-verified by the VC pass either way *)
  eng_drop_memo : (string, Logic.Form.t list) Hashtbl.t;
  eng_drop_lock : Mutex.t;
      (* converged counterexample-driven drop lists per method, keyed by
         the digests of the method's round-0 obligations.  A resident
         engine re-verifying an unchanged method would otherwise re-prove
         the doomed inferred conjuncts (their verdicts are Unknown, which
         the verdict cache rightly refuses to keep) on every request just
         to re-discover the same drops.  Only fixpoints are memoized, so
         a warm replay jumps straight to the round the cold run converged
         to and proves the exact same obligation set. *)
}

let create_engine (opts : options) : engine =
  (* the kernel switch is global (memo wrappers consult it on each call),
     so flipping it here covers the whole pipeline, worker domains
     included *)
  Logic.Hashcons.set_enabled opts.use_hashcons;
  (* one pool serves both fan-out levels: methods are verified in
     parallel and each method's obligations fan out on the same
     work-stealing deques (Pool.map nests safely) *)
  let jobs = effective_jobs opts.jobs in
  let pool = if jobs > 1 then Some (Dispatch.Pool.create ~jobs) else None in
  let cache =
    if opts.use_cache then
      Some
        (if opts.cache_cap > 0 then
           Dispatch.Cache.create ~cap:opts.cache_cap ()
         else Dispatch.Cache.create ())
    else None
  in
  let dispatcher =
    Dispatch.create ?pool ?cache ?budget_s:opts.budget_s
      ~sched:
        (Dispatch.Sched.create ~policy:opts.sched ~race:opts.race
           ~admits:(default_admissions ()) ())
      opts.provers
  in
  { eng_opts = opts; eng_pool = pool; eng_cache = cache;
    eng_dispatcher = dispatcher; eng_shape_memo = Shape.create_memo ();
    eng_drop_memo = Hashtbl.create 32; eng_drop_lock = Mutex.create () }

(* identity of a method for the drop memo: its name plus the digests of
   its round-0 obligations (canonical, so stable across requests even
   though desugaring re-mints fresh constants) *)
let drop_key (task : Gcl.Desugar.method_task)
    (obligations : Logic.Sequent.t list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf task.Gcl.Desugar.task_name;
  List.iter
    (fun sq ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Logic.Sequent.digest sq))
    obligations;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let drop_memo_find (e : engine) (k : string) : Logic.Form.t list option =
  Mutex.lock e.eng_drop_lock;
  let r = Hashtbl.find_opt e.eng_drop_memo k in
  Mutex.unlock e.eng_drop_lock;
  r

let drop_memo_add (e : engine) (k : string) (v : Logic.Form.t list) : unit =
  Mutex.lock e.eng_drop_lock;
  (if not (Hashtbl.mem e.eng_drop_memo k) then Hashtbl.replace e.eng_drop_memo k v);
  Mutex.unlock e.eng_drop_lock

let engine_cache (e : engine) : Dispatch.Cache.t option = e.eng_cache
let engine_dispatcher (e : engine) : Dispatch.t = e.eng_dispatcher

let shutdown_engine (e : engine) : unit =
  Option.iter Dispatch.Pool.shutdown e.eng_pool

(** Verify every method of a parsed program on a resident engine.  One
    request batch: opens a cache recency epoch on entry and trims the
    cache back under its cap on exit (both no-ops mid-batch, so a
    one-shot run behaves exactly as before). *)
let verify_program_with (e : engine) (prog : Ast.program) : program_report =
  let opts = e.eng_opts in
  Logic.Hashcons.set_enabled opts.use_hashcons;
  Option.iter Dispatch.Cache.new_epoch e.eng_cache;
  let pool = e.eng_pool in
  let cache = e.eng_cache in
  let dispatcher = e.eng_dispatcher in
  let tasks =
    Trace.with_span ~cat:"frontend" "desugar" (fun () ->
        Gcl.Desugar.program_tasks prog)
  in
  let verify_task (task : Gcl.Desugar.method_task) =
    (* counterexample-driven weakening: inferred invariant conjuncts that
       fail their initiation or preservation check are dropped and the
       method is retried (the speculative-engine loop of Section 2.4) *)
    let rec attempt round key (drop : Logic.Form.t list) =
      Trace.with_span ~cat:"verify"
        ~args:(fun () ->
          [ ("method", Trace.S task.Gcl.Desugar.task_name);
            ("round", Trace.I round);
            ("dropped", Trace.I (List.length drop)) ])
        "round"
        (fun () -> attempt_once round key drop)
    and attempt_once round key (drop : Logic.Form.t list) =
      let vopts =
        vcgen_options ~drop ?cache ~memo:e.eng_shape_memo opts task
      in
      let obligations = Vcgen.method_obligations ~opts:vopts task in
      let key =
        if round = 0 then Some (drop_key task obligations) else key
      in
      match
        if round = 0 then Option.bind key (drop_memo_find e) else None
      with
      | Some drops ->
        (* a previous request converged on this exact method: skip
           straight to the fixpoint round instead of re-proving the
           doomed conjuncts (whose Unknown verdicts are never cached) *)
        Trace.incr "jahob.drop_memo_hit";
        attempt 1 key drops
      | None ->
      let reports = Dispatch.prove_all dispatcher obligations in
      let summary = Dispatch.summarize reports in
      (* a failing inferred conjunct announces itself in its label as
         "loop invariant <stage> :: <formula>" *)
      let failed_inferred =
        List.filter_map
          (fun (r : Dispatch.report) ->
            match r.Dispatch.verdict with
            | Logic.Sequent.Valid -> None
            | _ ->
              let name = r.Dispatch.sequent.Logic.Sequent.name in
              let find_sub sub =
                let n = String.length name and m = String.length sub in
                let rec go i =
                  if i + m > n then None
                  else if String.sub name i m = sub then Some i
                  else go (i + 1)
                in
                go 0
              in
              if find_sub "loop invariant" = None then None
              else
                match find_sub " :: " with
                | Some i when opts.infer_loop_invariants -> (
                  let text =
                    String.sub name (i + 4) (String.length name - i - 4)
                  in
                  match Logic.Parser.parse_opt text with
                  | Some f -> Some f
                  | None -> None)
                | _ -> None)
          reports
      in
      let new_drops =
        List.filter
          (fun g -> not (List.exists (Logic.Form.equal g) drop))
          failed_inferred
      in
      if new_drops <> [] && round < 3 then
        attempt (round + 1) key (drop @ new_drops)
      else begin
        (* memoize only fixpoints reached after actual weakening: a
           replay then provably reproduces this very round, while a
           round-limit abort keeps replaying the full loop unchanged *)
        (if new_drops = [] && drop <> [] then
           Option.iter (fun k -> drop_memo_add e k drop) key);
        summary
      end
    in
    { method_name = task.Gcl.Desugar.task_name;
      obligations = attempt 0 None [] }
  in
  let verify_task task =
    Trace.with_span ~cat:"verify"
      ~args:(fun () -> [ ("method", Trace.S task.Gcl.Desugar.task_name) ])
      "method"
      (fun () -> verify_task task)
  in
  let methods = Dispatch.Pool.map_opt pool verify_task tasks in
  Option.iter (fun c -> ignore (Dispatch.Cache.trim c)) e.eng_cache;
  let ok =
    List.for_all
      (fun m ->
        m.obligations.Dispatch.valid = m.obligations.Dispatch.total)
      methods
  in
  { methods; ok; dispatcher }

(** Verify every method of a parsed program (one-shot: builds an engine,
    verifies, releases the pool). *)
let verify_program ?(opts = default_options ()) (prog : Ast.program) :
    program_report =
  let e = create_engine opts in
  Fun.protect
    ~finally:(fun () -> shutdown_engine e)
    (fun () -> verify_program_with e prog)

(** Parse and verify files on a resident engine (the daemon's request
    handler). *)
let verify_files_with (e : engine) (paths : string list) : program_report =
  let prog =
    Trace.with_span ~cat:"frontend"
      ~args:(fun () -> [ ("files", Trace.I (List.length paths)) ])
      "parse"
      (fun () ->
        List.concat_map
          (fun p -> Javaparser.Jparser.parse_program_file p)
          paths)
  in
  verify_program_with e prog

(** Parse and verify one or more source files as a single program. *)
let verify_files ?(opts = default_options ()) (paths : string list) :
    program_report =
  let prog =
    Trace.with_span ~cat:"frontend"
      ~args:(fun () -> [ ("files", Trace.I (List.length paths)) ])
      "parse"
      (fun () ->
        List.concat_map
          (fun p -> Javaparser.Jparser.parse_program_file p)
          paths)
  in
  verify_program ~opts prog

let verify_file ?opts (path : string) : program_report =
  verify_files ?opts [ path ]

let pp_report ?(stats = false) ppf (r : program_report) =
  List.iter
    (fun m ->
      Format.fprintf ppf "@[<v 2>%s: %a@]@." m.method_name
        Dispatch.pp_summary m.obligations)
    r.methods;
  if stats then
    Format.fprintf ppf "@[<v 2>prover statistics:%a@]@."
      Dispatch.pp_stats r.dispatcher;
  Format.fprintf ppf "overall: %s@."
    (if r.ok then "VERIFIED" else "NOT FULLY VERIFIED")
