(** Jahob: the top-level driver.

    [verify_file] / [verify_program] run the full pipeline of the paper:
    parse the annotated Java subset, desugar to guarded commands, generate
    weakest-precondition obligations, decompose goals, and dispatch each
    obligation to the decision-procedure portfolio. *)

module Ast = Javaparser.Ast

type provenance =
  | Fresh (* cold verification: VCs generated and dispatched *)
  | Unchanged (* incremental: answered entirely from the method store *)
  | Invalidated of string list
      (* incremental: re-verified, with the reasons — "new", "method",
         "ctx", "options", or the dep keys whose digests changed *)

type method_report = {
  method_name : string;
  obligations : Dispatch.summary;
  provenance : provenance;
}

type program_report = {
  methods : method_report list;
  ok : bool; (* every obligation of every method proved *)
  dispatcher : Dispatch.t; (* for per-prover statistics *)
}

let provenance_reasons (p : provenance) : string list =
  match p with Fresh | Unchanged -> [] | Invalidated why -> why

(** The default portfolio, in dispatch order: the cheap SMT core first,
    then BAPA for cardinality goals, the MONA-route for shape goals, and
    the first-order prover as the catch-all for set-algebraic goals. *)
let default_provers () : Logic.Sequent.prover list =
  [ Smt.prover; Bapa.prover; Fca.prover; Fol.prover ]

(** Fragment-admission predicates for the scheduler, keyed by prover
    name.  Only provers whose [in_fragment = false] {e provably} implies
    [prove = Unknown] may appear here — each of these fails in the same
    translation front end its predicate runs, so a skip can never change
    a verdict.  The SMT prover is deliberately absent: it abstracts
    out-of-fragment atoms propositionally ([Smt.in_fragment] false merely
    means "some atom is opaque") and can still settle such goals, so it
    must always be offered the sequent. *)
let default_admissions () : (string * (Logic.Sequent.t -> bool)) list =
  [ ("bapa", Bapa.in_fragment);
    ("mona", Fca.in_fragment);
    ("fol", Fol.in_fragment);
    ("cooper", fun s -> Presburger.Lia.in_fragment s) ]

type options = {
  provers : Logic.Sequent.prover list;
  infer_loop_invariants : bool; (* use symbolic shape analysis *)
  jobs : int; (* worker domains; 1 = sequential *)
  use_cache : bool; (* memoize verdicts of repeated obligations *)
  cache_cap : int; (* verdict-cache entry cap; 0 = the generous default *)
  budget_s : float option; (* wall-clock budget per prover call *)
  use_hashcons : bool; (* the hash-consed formula kernel; off = plain *)
  sched : Dispatch.Sched.policy; (* fixed cascade or adaptive routing *)
  race : int; (* admitted provers raced per obligation; 1 = cascade *)
  mona_engine : Mona.Ws1s.engine; (* WS1S automata engine: Bdd or Dense *)
}

let default_options () =
  { provers = default_provers (); infer_loop_invariants = true;
    jobs = 1; use_cache = true; cache_cap = 0; budget_s = None;
    use_hashcons = true; sched = Dispatch.Sched.Adaptive; race = 1;
    mona_engine = Mona.Ws1s.Bdd }

(* a ceiling on worker domains: beyond any real core count, more domains
   only add stop-the-world GC synchronization cost *)
let max_jobs = 128

(** Resolve a requested [jobs] value: [j <= 0] means "auto" — one worker
    per core as reported by [Domain.recommended_domain_count] — and
    anything above {!max_jobs} is clamped.  The CLI exposes this as
    [-j 0]; the library default stays [jobs = 1] (deterministic
    sequential verification) for embedders. *)
let effective_jobs (j : int) : int =
  if j <= 0 then min (Domain.recommended_domain_count ()) max_jobs
  else min j max_jobs

(* loop-invariant inference uses the fast provers only; the full portfolio
   still checks the final obligations *)
let shape_provers (opts : options) : Logic.Sequent.prover list =
  List.filter
    (fun (p : Logic.Sequent.prover) ->
      p.Logic.Sequent.prover_name = "smt" || p.Logic.Sequent.prover_name = "fol")
    opts.provers

let vcgen_options ?(drop = []) ?cache ?memo (opts : options)
    (task : Gcl.Desugar.method_task) : Vcgen.options =
  if opts.infer_loop_invariants then
    { Vcgen.infer_invariant =
        Shape.infer_with_seeds ~drop ?cache ?memo (shape_provers opts)
          task.Gcl.Desugar.task_seeds }
  else Vcgen.default_options

(* ------------------------------------------------------------------ *)
(* The resident engine                                                 *)
(* ------------------------------------------------------------------ *)

(** Everything that should stay warm across verification requests: the
    worker pool, the verdict cache, the adaptive scheduler's EMAs and
    the per-prover statistics (all owned by the one dispatcher).  A
    one-shot [verify_files] builds a throwaway engine; [jahob serve]
    builds one at startup and answers every request from it. *)
type engine = {
  eng_opts : options;
  eng_pool : Dispatch.Pool.t option;
  eng_cache : Dispatch.Cache.t option;
  eng_dispatcher : Dispatch.t;
  eng_shape_memo : Shape.memo;
      (* candidate-check outcomes; unlike the verdict cache it may keep
         Unknown-derived failures, because Houdini's result is
         re-verified by the VC pass either way *)
  eng_drop_memo : (string, Logic.Form.t list) Hashtbl.t;
  eng_drop_lock : Mutex.t;
      (* converged counterexample-driven drop lists per method, keyed by
         the digests of the method's round-0 obligations.  A resident
         engine re-verifying an unchanged method would otherwise re-prove
         the doomed inferred conjuncts (their verdicts are Unknown, which
         the verdict cache rightly refuses to keep) on every request just
         to re-discover the same drops.  Only fixpoints are memoized, so
         a warm replay jumps straight to the round the cold run converged
         to and proves the exact same obligation set. *)
}

let create_engine (opts : options) : engine =
  (* the kernel switch is global (memo wrappers consult it on each call),
     so flipping it here covers the whole pipeline, worker domains
     included *)
  Logic.Hashcons.set_enabled opts.use_hashcons;
  (* same pattern for the WS1S automata engine: the MONA route reads the
     process default at each decision, worker domains included *)
  Mona.Ws1s.set_default_engine opts.mona_engine;
  (* one pool serves both fan-out levels: methods are verified in
     parallel and each method's obligations fan out on the same
     work-stealing deques (Pool.map nests safely) *)
  let jobs = effective_jobs opts.jobs in
  let pool = if jobs > 1 then Some (Dispatch.Pool.create ~jobs) else None in
  let cache =
    if opts.use_cache then
      Some
        (if opts.cache_cap > 0 then
           Dispatch.Cache.create ~cap:opts.cache_cap ()
         else Dispatch.Cache.create ())
    else None
  in
  let dispatcher =
    Dispatch.create ?pool ?cache ?budget_s:opts.budget_s
      ~sched:
        (Dispatch.Sched.create ~policy:opts.sched ~race:opts.race
           ~admits:(default_admissions ()) ())
      opts.provers
  in
  { eng_opts = opts; eng_pool = pool; eng_cache = cache;
    eng_dispatcher = dispatcher; eng_shape_memo = Shape.create_memo ();
    eng_drop_memo = Hashtbl.create 32; eng_drop_lock = Mutex.create () }

(* identity of a method for the drop memo: its name plus the digests of
   its round-0 obligations (canonical, so stable across requests even
   though desugaring re-mints fresh constants) *)
let drop_key (task : Gcl.Desugar.method_task)
    (obligations : Logic.Sequent.t list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf task.Gcl.Desugar.task_name;
  List.iter
    (fun sq ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Logic.Sequent.digest sq))
    obligations;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let drop_memo_find (e : engine) (k : string) : Logic.Form.t list option =
  Mutex.lock e.eng_drop_lock;
  let r = Hashtbl.find_opt e.eng_drop_memo k in
  Mutex.unlock e.eng_drop_lock;
  r

let drop_memo_add (e : engine) (k : string) (v : Logic.Form.t list) : unit =
  Mutex.lock e.eng_drop_lock;
  (if not (Hashtbl.mem e.eng_drop_memo k) then Hashtbl.replace e.eng_drop_memo k v);
  Mutex.unlock e.eng_drop_lock

let engine_cache (e : engine) : Dispatch.Cache.t option = e.eng_cache
let engine_dispatcher (e : engine) : Dispatch.t = e.eng_dispatcher

let shutdown_engine (e : engine) : unit =
  Option.iter Dispatch.Pool.shutdown e.eng_pool

(** Verify every method of a parsed program on a resident engine.  One
    request batch: opens a cache recency epoch on entry and trims the
    cache back under its cap on exit (both no-ops mid-batch, so a
    one-shot run behaves exactly as before). *)
(* Verify one method task on the engine: the counterexample-driven
   weakening loop — inferred invariant conjuncts that fail their own
   initiation or preservation check are dropped and the method is retried
   (the speculative-engine loop of Section 2.4).  Shared by the cold path
   ([verify_program_with]) and the incremental path
   ([verify_program_inc]). *)
let verify_task_summary (e : engine) (task : Gcl.Desugar.method_task) :
    Dispatch.summary =
  let opts = e.eng_opts in
  let cache = e.eng_cache in
  let dispatcher = e.eng_dispatcher in
  let rec attempt round key (drop : Logic.Form.t list) =
    Trace.with_span ~cat:"verify"
      ~args:(fun () ->
        [ ("method", Trace.S task.Gcl.Desugar.task_name);
          ("round", Trace.I round);
          ("dropped", Trace.I (List.length drop)) ])
      "round"
      (fun () -> attempt_once round key drop)
  and attempt_once round key (drop : Logic.Form.t list) =
    let vopts =
      vcgen_options ~drop ?cache ~memo:e.eng_shape_memo opts task
    in
    let obligations = Vcgen.method_obligations ~opts:vopts task in
    let key =
      if round = 0 then Some (drop_key task obligations) else key
    in
    match
      if round = 0 then Option.bind key (drop_memo_find e) else None
    with
    | Some drops ->
      (* a previous request converged on this exact method: skip
         straight to the fixpoint round instead of re-proving the
         doomed conjuncts (whose Unknown verdicts are never cached) *)
      Trace.incr "jahob.drop_memo_hit";
      attempt 1 key drops
    | None ->
    let reports = Dispatch.prove_all dispatcher obligations in
    let summary = Dispatch.summarize reports in
    (* a failing inferred conjunct announces itself in its label as
       "loop invariant <stage> :: <formula>" *)
    let failed_inferred =
      List.filter_map
        (fun (r : Dispatch.report) ->
          match r.Dispatch.verdict with
          | Logic.Sequent.Valid -> None
          | _ ->
            let name = r.Dispatch.sequent.Logic.Sequent.name in
            let find_sub sub =
              let n = String.length name and m = String.length sub in
              let rec go i =
                if i + m > n then None
                else if String.sub name i m = sub then Some i
                else go (i + 1)
              in
              go 0
            in
            if find_sub "loop invariant" = None then None
            else
              match find_sub " :: " with
              | Some i when opts.infer_loop_invariants -> (
                let text =
                  String.sub name (i + 4) (String.length name - i - 4)
                in
                match Logic.Parser.parse_opt text with
                | Some f -> Some f
                | None -> None)
              | _ -> None)
        reports
    in
    let new_drops =
      List.filter
        (fun g -> not (List.exists (Logic.Form.equal g) drop))
        failed_inferred
    in
    if new_drops <> [] && round < 3 then
      attempt (round + 1) key (drop @ new_drops)
    else begin
      (* memoize only fixpoints reached after actual weakening: a
         replay then provably reproduces this very round, while a
         round-limit abort keeps replaying the full loop unchanged *)
      (if new_drops = [] && drop <> [] then
         Option.iter (fun k -> drop_memo_add e k drop) key);
      summary
    end
  in
  Trace.with_span ~cat:"verify"
    ~args:(fun () -> [ ("method", Trace.S task.Gcl.Desugar.task_name) ])
    "method"
    (fun () -> attempt 0 None [])

let report_ok (methods : method_report list) : bool =
  List.for_all
    (fun m -> m.obligations.Dispatch.valid = m.obligations.Dispatch.total)
    methods

let verify_program_with (e : engine) (prog : Ast.program) : program_report =
  let opts = e.eng_opts in
  Logic.Hashcons.set_enabled opts.use_hashcons;
  Option.iter Dispatch.Cache.new_epoch e.eng_cache;
  let tasks =
    Trace.with_span ~cat:"frontend" "desugar" (fun () ->
        Gcl.Desugar.program_tasks prog)
  in
  let verify_task task =
    { method_name = task.Gcl.Desugar.task_name;
      obligations = verify_task_summary e task;
      provenance = Fresh }
  in
  let methods = Dispatch.Pool.map_opt e.eng_pool verify_task tasks in
  Option.iter (fun c -> ignore (Dispatch.Cache.trim c)) e.eng_cache;
  { methods; ok = report_ok methods; dispatcher = e.eng_dispatcher }

(* ------------------------------------------------------------------ *)
(* Incremental re-verification                                         *)
(* ------------------------------------------------------------------ *)

type stored_method = {
  sm_name : string; (* "List.add" *)
  sm_digest : string; (* structural digest of the method itself *)
  sm_ctx : string; (* Vcgen.Deps.context_digest at record time *)
  sm_infer : bool; (* infer_loop_invariants when the verdicts were made *)
  sm_mona : string; (* WS1S engine name when the verdicts were made *)
  sm_deps : (string * string) list; (* dep key -> digest at record time *)
  sm_verdicts : (string * string * string) list;
      (* (obligation name, verdict kind, prover); only settled verdicts
         ("valid"/"invalid") are ever recorded *)
}

(** Where incremental verification reads and writes per-method records.
    [jahob serve] and [--store] back this with the persistent
    {!module:Daemon.Store}; tests back it with a hashtable.  All four
    functions may be called concurrently from pool worker domains, so
    implementations must be thread-safe. *)
type method_source = {
  find_method : string -> stored_method option;
  record_method : stored_method -> unit;
  remove_method : string -> unit;
  list_methods : unit -> string list;
}

(** A method source over a plain hashtable — the base of [--since] (one
    process verifies base then patch) and of the tests. *)
let hashtbl_source () : method_source =
  let tbl : (string, stored_method) Hashtbl.t = Hashtbl.create 32 in
  let lock = Mutex.create () in
  let locked f = Mutex.lock lock; Fun.protect ~finally:(fun () -> Mutex.unlock lock) f in
  { find_method = (fun n -> locked (fun () -> Hashtbl.find_opt tbl n));
    record_method =
      (fun sm -> locked (fun () -> Hashtbl.replace tbl sm.sm_name sm));
    remove_method = (fun n -> locked (fun () -> Hashtbl.remove tbl n));
    list_methods =
      (fun () ->
        locked (fun () -> Hashtbl.fold (fun n _ acc -> n :: acc) tbl [])) }

(* why a method must be re-verified, or [None] for "answer from the
   store" *)
let invalidation_reasons (opts : options) (source : method_source)
    ~(ctx : string) (prog : Ast.program) ~(home : string) (name : string)
    (digest : string) : string list option =
  match source.find_method name with
  | None -> Some [ "new" ]
  | Some sm ->
    if sm.sm_ctx <> ctx then Some [ "ctx" ]
    else if sm.sm_infer <> opts.infer_loop_invariants then Some [ "options" ]
    else if sm.sm_mona <> Mona.Ws1s.engine_name opts.mona_engine then
      (* verdicts from one automata engine are never replayed under the
         other, even though the engines should agree: an A/B escape-hatch
         run must actually exercise the engine it asked for *)
      Some [ "options" ]
    else if sm.sm_digest <> digest then Some [ "method" ]
    else begin
      let changed =
        List.filter_map
          (fun (key, old) ->
            match Vcgen.Deps.digest_of_key prog ~home key with
            | None -> Some key (* unparseable record: treat as changed *)
            | Some d -> if d <> old then Some key else None)
          sm.sm_deps
      in
      if changed = [] then None else Some changed
    end

(* a stored verdict replayed as a report: the obligation itself is not
   regenerated (that is the whole point), so the sequent is a named
   placeholder *)
let replay_report ((oname, kind, prover) : string * string * string) :
    Dispatch.report =
  { Dispatch.sequent = Logic.Sequent.make ~name:oname [] Logic.Form.mk_true;
    verdict =
      (if kind = "valid" then Logic.Sequent.Valid
       else Logic.Sequent.Invalid "stored countermodel");
    prover = (if prover = "" then None else Some prover);
    cached = true }

(** Incremental verification against a method store.  Each verifiable
    method is re-verified iff it is new, its own structural digest
    changed, the global desugaring context changed, or one of its
    recorded dependency digests changed — otherwise its stored verdicts
    are replayed and the method reports [Unchanged].  Re-verified
    methods with fully settled obligations are recorded back, so a cold
    run against an empty source doubles as the base run. *)
let verify_program_inc (e : engine) ~(source : method_source)
    (prog : Ast.program) : program_report =
  let opts = e.eng_opts in
  Logic.Hashcons.set_enabled opts.use_hashcons;
  Option.iter Dispatch.Cache.new_epoch e.eng_cache;
  let ctx =
    Trace.with_span ~cat:"frontend" "ctx-digest" (fun () ->
        Vcgen.Deps.context_digest prog)
  in
  let decisions =
    List.concat_map
      (fun (c : Ast.class_decl) ->
        List.filter_map
          (fun (m : Ast.method_decl) ->
            match m.Ast.m_body with
            | None -> None
            | Some _ ->
              let name = c.Ast.c_name ^ "." ^ m.Ast.m_name in
              let dg = Javaparser.Astdiff.method_digest c.Ast.c_name m in
              let why =
                invalidation_reasons opts source ~ctx prog
                  ~home:c.Ast.c_name name dg
              in
              Some (c, m, name, dg, why))
          c.Ast.c_methods)
      prog
  in
  (* drop records of methods that no longer exist, so a re-added method
     is verified fresh rather than answered from a stale record *)
  let live = List.map (fun (_, _, n, _, _) -> n) decisions in
  List.iter
    (fun n -> if not (List.mem n live) then source.remove_method n)
    (source.list_methods ());
  let verify_one (c, m, name, dg, why) =
    match why with
    | None ->
      let sm =
        match source.find_method name with
        | Some sm -> sm
        | None -> assert false (* decided Unchanged above *)
      in
      Trace.incr "jahob.inc_unchanged";
      { method_name = name;
        obligations = Dispatch.summarize (List.map replay_report sm.sm_verdicts);
        provenance = Unchanged }
    | Some why ->
      let task =
        Trace.with_span ~cat:"frontend" "desugar" (fun () ->
            Gcl.Desugar.method_task prog c m)
      in
      let summary = verify_task_summary e task in
      source.remove_method name;
      (* only fully settled methods are recorded: an Unknown must be
         retried next run, exactly as the verdict cache refuses to keep
         Unknowns *)
      if summary.Dispatch.unknown = 0 then
        source.record_method
          { sm_name = name; sm_digest = dg; sm_ctx = ctx;
            sm_infer = opts.infer_loop_invariants;
            sm_mona = Mona.Ws1s.engine_name opts.mona_engine;
            sm_deps = Vcgen.Deps.task_deps prog ~home:c.Ast.c_name task;
            sm_verdicts =
              List.map
                (fun (r : Dispatch.report) ->
                  ( r.Dispatch.sequent.Logic.Sequent.name,
                    Logic.Sequent.verdict_kind r.Dispatch.verdict,
                    Option.value r.Dispatch.prover ~default:"" ))
                summary.Dispatch.reports };
      { method_name = name; obligations = summary;
        provenance = Invalidated why }
  in
  let methods = Dispatch.Pool.map_opt e.eng_pool verify_one decisions in
  Option.iter (fun c -> ignore (Dispatch.Cache.trim c)) e.eng_cache;
  { methods; ok = report_ok methods; dispatcher = e.eng_dispatcher }

(** Verify every method of a parsed program (one-shot: builds an engine,
    verifies, releases the pool). *)
let verify_program ?(opts = default_options ()) (prog : Ast.program) :
    program_report =
  let e = create_engine opts in
  Fun.protect
    ~finally:(fun () -> shutdown_engine e)
    (fun () -> verify_program_with e prog)

(** Parse and verify files on a resident engine (the daemon's request
    handler). *)
let verify_files_with (e : engine) (paths : string list) : program_report =
  let prog =
    Trace.with_span ~cat:"frontend"
      ~args:(fun () -> [ ("files", Trace.I (List.length paths)) ])
      "parse"
      (fun () ->
        List.concat_map
          (fun p -> Javaparser.Jparser.parse_program_file p)
          paths)
  in
  verify_program_with e prog

(** Parse and verify one or more source files as a single program. *)
let verify_files ?(opts = default_options ()) (paths : string list) :
    program_report =
  let prog =
    Trace.with_span ~cat:"frontend"
      ~args:(fun () -> [ ("files", Trace.I (List.length paths)) ])
      "parse"
      (fun () ->
        List.concat_map
          (fun p -> Javaparser.Jparser.parse_program_file p)
          paths)
  in
  verify_program ~opts prog

let verify_file ?opts (path : string) : program_report =
  verify_files ?opts [ path ]

let pp_report ?(stats = false) ppf (r : program_report) =
  List.iter
    (fun m ->
      let tag =
        match m.provenance with
        | Fresh -> ""
        | Unchanged -> " [unchanged]"
        | Invalidated why ->
          Printf.sprintf " [re-verified: %s]" (String.concat ", " why)
      in
      Format.fprintf ppf "@[<v 2>%s%s: %a@]@." m.method_name tag
        Dispatch.pp_summary m.obligations)
    r.methods;
  if stats then
    Format.fprintf ppf "@[<v 2>prover statistics:%a@]@."
      Dispatch.pp_stats r.dispatcher;
  Format.fprintf ppf "overall: %s@."
    (if r.ok then "VERIFIED" else "NOT FULLY VERIFIED")
