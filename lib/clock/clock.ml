(** The one clock helper: monotonic time for measuring and scheduling.

    Deadlines, prover budgets, scheduler latency EMAs and trace
    timestamps all need to measure {e elapsed} time.  They used to read
    [Unix.gettimeofday], which measures the {e wall clock} — a clock
    that steps backwards and forwards under NTP corrections and
    suspend/resume.  In a one-shot CLI run that is a rare nuisance; in a
    resident daemon it is a guarantee: a wall-clock step cancels every
    running prover early (or never), and a negative step poisons the
    scheduler's latency EMAs with negative samples.

    {!now} is therefore CLOCK_MONOTONIC (via the bechamel clock stub —
    the [unix] library of OCaml 5.1 does not expose [clock_gettime]):
    seconds against an arbitrary origin, strictly unaffected by wall
    time.  Only durations and comparisons of {!now} values are
    meaningful; anything user-facing that needs a date uses {!wall}.

    {!wall} additionally applies a test-only offset ({!set_wall_offset})
    so the deadline regression tests can simulate an NTP/suspend step
    and assert that deadlines, budgets and EMAs no longer care. *)

(* CLOCK_MONOTONIC in nanoseconds; noalloc C stub, safe from any domain *)
let now_ns () : int64 = Monotonic_clock.now ()

(** Monotonic seconds since an arbitrary origin.  Never steps, never
    goes backwards.  Use for every deadline, budget, latency sample and
    trace timestamp. *)
let now () : float = Int64.to_float (now_ns ()) *. 1e-9

(* test-only simulated wall-clock step, in seconds *)
let wall_offset : float Atomic.t = Atomic.make 0.

(** The wall clock — calendar time, for display and file timestamps
    only.  Scheduling or measuring with this is a bug; that is what the
    deadline regression tests enforce by stepping it. *)
let wall () : float = Unix.gettimeofday () +. Atomic.get wall_offset

(** Simulate a wall-clock step (NTP correction, suspend/resume) of
    [seconds].  Affects {!wall} only: a correct caller of {!now} must be
    untouched by any offset, which is exactly what the deadline
    regression tests assert. *)
let set_wall_offset (seconds : float) : unit = Atomic.set wall_offset seconds
