(** Verdict cache: settle each distinct proof obligation once — even
    when identical obligations arrive on different domains at once.

    Obligations repeat heavily — [requires]/invariant re-checks across
    methods, and every round of the speculative-invariant weakening loop
    regenerates most of a method's obligations unchanged.  Sequents are
    keyed by {!Logic.Sequent.digest} (canonicalized, so hypothesis order
    and bound-variable names don't matter) and the verdict plus the name
    of the prover that settled it are stored.

    {2 Sharding}

    The old implementation was one [Hashtbl] behind one mutex: every
    lookup from every domain serialized on a single lock.  The table is
    now split into 64 independent shards selected by the key's hash, so
    two domains contend only when their digests land in the same shard;
    each shard carries its own lock, condvar and counters.  A contended
    acquisition counter ({!lock_stats}) keeps the claim honest: the
    scaling bench records it as evidence the cache is off the critical
    path.

    {2 The in-flight claim table}

    Under the old cache, two domains racing on the same digest both
    missed and both paid a prover call — duplicated work, and hit/miss
    counters that changed with [-j].  {!acquire} closes the window: the
    first caller {e claims} the key and proves; later callers block on
    the shard's condvar and are served the published verdict as a hit,
    exactly as they would have been sequentially.  A claim owner must
    {!publish} a settled verdict or {!abandon} the claim (Unknown
    verdicts are never cached); an abandon wakes the waiters, and the
    first to re-check claims the key afresh — so an obligation that
    settles as Unknown is re-attempted exactly as often as it would be
    at [-j 1].  Counters are bumped once per {!acquire}, at resolution,
    which makes [hit_count]/[miss_count] deterministic across [-j]. *)

open Logic

type entry = {
  verdict : Sequent.verdict;
  prover : string option; (* which prover settled it, for reports *)
}

type slot = {
  entry : entry;
  mutable used : int; (* epoch of the last resolution touching this key *)
}

type state =
  | Done of slot
  | Inflight (* some domain holds the claim and is proving *)

type shard = {
  lock : Mutex.t;
  settled : Condition.t; (* signalled on publish and abandon *)
  table : (string, state) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable waits : int; (* lookups that blocked on an in-flight claim *)
  mutable evicted : int; (* settled entries dropped by [trim] *)
}

type t = {
  shards : shard array;
  mask : int;
  epoch : int Atomic.t; (* batch counter; moves only between batches *)
  shard_cap : int; (* settled entries a shard may keep across batches *)
}

let shard_count = 64

(* the default total cap: generous enough that a CLI run never trims,
   small enough that a daemon's residency is bounded (~tens of MB) *)
let default_cap = 262_144

(* contended lock acquisitions across every cache in the process: the
   scaling bench's attribution evidence.  Only the slow path pays the
   atomic bump, so the counter cannot itself become the hot line. *)
let contended = Atomic.make 0

let lock_shard (sh : shard) =
  if not (Mutex.try_lock sh.lock) then begin
    Atomic.incr contended;
    Mutex.lock sh.lock
  end

type lock_stats = { contended_acquisitions : int }

let lock_stats () = { contended_acquisitions = Atomic.get contended }
let reset_lock_stats () = Atomic.set contended 0

(** [create ?cap ()] — [cap] bounds the settled entries kept across
    batch boundaries (split evenly over the shards, so the bound is
    enforced per shard; [cap <= 0] means unbounded). *)
let create ?(cap = default_cap) () : t =
  { shards =
      Array.init shard_count (fun _ ->
          { lock = Mutex.create ();
            settled = Condition.create ();
            table = Hashtbl.create 16;
            hits = 0;
            misses = 0;
            waits = 0;
            evicted = 0 });
    mask = shard_count - 1;
    epoch = Atomic.make 0;
    shard_cap =
      (if cap <= 0 then max_int
       else max 1 ((cap + shard_count - 1) / shard_count)) }

(** The cache key of a sequent (see {!Logic.Sequent.digest}). *)
let key (s : Sequent.t) : string = Sequent.digest s

let shard_of (c : t) (k : string) : shard =
  c.shards.(Hashtbl.hash k land c.mask)

type claim =
  | Hit of entry (* served from the cache (possibly after a wait) *)
  | Claimed (* this caller owns the key: publish or abandon it *)

(** Look the key up, claiming it if absent.  Exactly one hit or miss is
    counted per call, at resolution time, so the counters do not depend
    on how claims interleave.  [waits] counts blocked lookups and is the
    only schedule-dependent counter. *)
let acquire (c : t) (k : string) : claim =
  let sh = shard_of c k in
  lock_shard sh;
  let rec resolve () =
    match Hashtbl.find_opt sh.table k with
    | Some (Done sl) ->
      sh.hits <- sh.hits + 1;
      sl.used <- Atomic.get c.epoch;
      Mutex.unlock sh.lock;
      Trace.incr "cache.hit";
      Hit sl.entry
    | Some Inflight ->
      sh.waits <- sh.waits + 1;
      Trace.incr "cache.wait";
      Condition.wait sh.settled sh.lock;
      resolve ()
    | None ->
      Hashtbl.replace sh.table k Inflight;
      sh.misses <- sh.misses + 1;
      Mutex.unlock sh.lock;
      Trace.incr "cache.miss";
      Claimed
  in
  resolve ()

(** Publish the verdict for a key (normally one this caller claimed) and
    wake any waiters. *)
let publish (c : t) (k : string) (e : entry) : unit =
  let sh = shard_of c k in
  lock_shard sh;
  Hashtbl.replace sh.table k (Done { entry = e; used = Atomic.get c.epoch });
  Condition.broadcast sh.settled;
  Mutex.unlock sh.lock

(** Give a claim up without caching anything (Unknown verdicts, prover
    exceptions).  The first waiter to wake re-claims the key. *)
let abandon (c : t) (k : string) : unit =
  let sh = shard_of c k in
  lock_shard sh;
  (match Hashtbl.find_opt sh.table k with
  | Some Inflight -> Hashtbl.remove sh.table k
  | Some (Done _) | None -> ());
  Condition.broadcast sh.settled;
  Mutex.unlock sh.lock

(** Non-claiming lookup of a settled verdict; does not touch counters
    and does not wait on in-flight claims. *)
let peek (c : t) (k : string) : entry option =
  let sh = shard_of c k in
  lock_shard sh;
  let r =
    match Hashtbl.find_opt sh.table k with
    | Some (Done sl) -> Some sl.entry
    | Some Inflight | None -> None
  in
  Mutex.unlock sh.lock;
  r

(* ------------------------------------------------------------------ *)
(* Batch boundaries: epochs, trimming, persistence hooks               *)
(* ------------------------------------------------------------------ *)

(** Open a new recency epoch.  Call at a batch boundary (the start of a
    daemon request or a [verify] run); entries resolved from now on are
    stamped with the new epoch. *)
let new_epoch (c : t) : unit = Atomic.incr c.epoch

(** Evict settled entries past the per-shard cap, least-recently-used
    epoch first (ties broken by key, so eviction is deterministic given
    the batch sequence).  Must be called between batches — it assumes no
    concurrent proving; [Inflight] claims are never evicted.  Returns
    how many entries were dropped. *)
let trim (c : t) : int =
  let dropped = ref 0 in
  Array.iter
    (fun sh ->
      lock_shard sh;
      let settled_count =
        Hashtbl.fold
          (fun _ st n -> match st with Done _ -> n + 1 | Inflight -> n)
          sh.table 0
      in
      let excess = settled_count - c.shard_cap in
      if excess > 0 then begin
        let victims =
          Hashtbl.fold
            (fun k st acc ->
              match st with Done sl -> (sl.used, k) :: acc | Inflight -> acc)
            sh.table []
          |> List.sort compare
        in
        List.iteri
          (fun i (_, k) ->
            if i < excess then begin
              Hashtbl.remove sh.table k;
              sh.evicted <- sh.evicted + 1;
              incr dropped
            end)
          victims
      end;
      Mutex.unlock sh.lock)
    c.shards;
  if !dropped > 0 then Trace.add "cache.evicted" !dropped;
  !dropped

(** Insert settled verdicts wholesale (a persistent store warming the
    cache).  Existing entries and in-flight claims are left untouched;
    preloaded entries are stamped with the current epoch. *)
let preload (c : t) (kvs : (string * entry) list) : unit =
  List.iter
    (fun (k, e) ->
      let sh = shard_of c k in
      lock_shard sh;
      (match Hashtbl.find_opt sh.table k with
      | Some _ -> ()
      | None ->
        Hashtbl.replace sh.table k
          (Done { entry = e; used = Atomic.get c.epoch }));
      Mutex.unlock sh.lock)
    kvs

(** Fold over the settled entries in deterministic (key-sorted) order —
    how a persistent store drains the cache after a batch.  Takes the
    shard locks one at a time; call between batches. *)
let fold_settled (c : t) (f : 'a -> string -> entry -> 'a) (init : 'a) : 'a =
  let kvs =
    Array.fold_left
      (fun acc sh ->
        lock_shard sh;
        let acc =
          Hashtbl.fold
            (fun k st acc ->
              match st with
              | Done sl -> (k, sl.entry) :: acc
              | Inflight -> acc)
            sh.table acc
        in
        Mutex.unlock sh.lock;
        acc)
      [] c.shards
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.fold_left (fun acc (k, e) -> f acc k e) init kvs

type counters = {
  hit_count : int;
  miss_count : int;
  wait_count : int;
  entries : int;
  evicted_count : int;
}

let counters (c : t) : counters =
  Array.fold_left
    (fun acc sh ->
      lock_shard sh;
      let settled_entries =
        Hashtbl.fold
          (fun _ st n -> match st with Done _ -> n + 1 | Inflight -> n)
          sh.table 0
      in
      let r =
        { hit_count = acc.hit_count + sh.hits;
          miss_count = acc.miss_count + sh.misses;
          wait_count = acc.wait_count + sh.waits;
          entries = acc.entries + settled_entries;
          evicted_count = acc.evicted_count + sh.evicted }
      in
      Mutex.unlock sh.lock;
      r)
    { hit_count = 0; miss_count = 0; wait_count = 0; entries = 0;
      evicted_count = 0 }
    c.shards

(** Hit rate over all lookups so far; 0 when nothing was looked up. *)
let hit_rate (c : t) : float =
  let k = counters c in
  let total = k.hit_count + k.miss_count in
  if total = 0 then 0. else float_of_int k.hit_count /. float_of_int total
