(** The prover dispatcher: goal decomposition and routing.

    This is the architecture claim of the paper — "a verification
    condition generator that can invoke any one of a number of decision
    procedures", with "a simple goal decomposition technique to prove
    different conjuncts in the goal using different decision procedures".

    Each obligation is simplified, then offered to the portfolio in a
    configurable order.  A prover that answers [Unknown] passes the goal
    on; [Valid] and [Invalid] are final.  Assumption filtering keeps each
    query small: hypotheses sharing no symbols with the goal (direct or
    transitive) are dropped before a prover runs.

    Obligations are independent, so [prove_all] fans them out across the
    domains of an optional {!Pool.t}.  An optional verdict {!Cache.t}
    settles repeated obligations once, and [with_budget] bounds the
    wall-clock time of any single prover call. *)

open Logic

(* re-export the sibling modules: [dispatch] is this library's main
   module, so [Pool], [Cache] and [Sched] are only reachable through it *)
module Pool = Pool
module Cache = Cache
module Sched = Sched

type prover_stats = {
  mutable attempts : int;
  mutable proved : int;
  mutable refuted : int;
  mutable raised : int; (* attempts that ended in an exception *)
  mutable skipped : int; (* attempts avoided by fragment pre-routing *)
}

type report = {
  sequent : Sequent.t;
  verdict : Sequent.verdict;
  prover : string option; (* which prover settled it *)
  cached : bool; (* true when the verdict came from the cache *)
}

type t = {
  provers : Sequent.prover list;
  stats : (string, prover_stats) Hashtbl.t;
  stats_mutex : Mutex.t; (* guards [stats]: domains update it concurrently *)
  pool : Pool.t option; (* fan obligations out when present *)
  cache : Cache.t option; (* verdict memoization when present *)
  sched : Sched.t; (* routing/ordering policy for the cascade *)
  mutable simplify_first : bool;
  mutable filter_assumptions : bool;
  mutable ground_saturate : bool;
}

(* ------------------------------------------------------------------ *)
(* Per-prover wall-clock budgets                                       *)
(* ------------------------------------------------------------------ *)

(** [with_budget ~budget_s p] answers [Unknown] once [p] has run for
    [budget_s] seconds of wall-clock time, so one pathological query
    cannot stall the portfolio.  The prover runs in a helper thread under
    a {!Deadline} token; on timeout the waiter {e cancels} the token and
    returns immediately — the helper then stops at its next checkpoint
    (every search loop in the portfolio polls one) instead of burning a
    core to completion as the pre-deadline implementation did.

    The helper's token is parented to the calling thread's token, if any,
    so an enclosing race that cancels its losers reaches through the
    budget wrapper.  Exceptions other than {!Deadline.Expired} are
    re-raised in the caller, where the dispatcher counts them. *)
let with_budget ~(budget_s : float) (p : Sequent.prover) : Sequent.prover =
  { Sequent.prover_name = p.Sequent.prover_name;
    prove =
      (fun s ->
        let caller = Deadline.current () in
        let token = Deadline.make ~deadline_in:budget_s ?parent:caller () in
        let result = Atomic.make None in
        let (_ : Thread.t) =
          Thread.create
            (fun () ->
              let r =
                try Ok (Deadline.with_token token (fun () -> p.Sequent.prove s))
                with e -> Error e
              in
              Atomic.set result (Some r))
            ()
        in
        (* whether the expiry was this budget's own deadline or an
           enclosing token (a race that already settled) reaching
           through; drives both the verdict message and the counters *)
        let cancelled () =
          Trace.incr "deadline.cancelled";
          Sequent.Unknown "attempt cancelled"
        in
        let budget_exceeded () =
          Trace.incr "budget.exceeded";
          Trace.instant ~cat:"budget"
            ~args:(fun () ->
              [ ("prover", Trace.S p.Sequent.prover_name);
                ("budget_s", Trace.F budget_s) ])
            "exceeded";
          Sequent.Unknown (Printf.sprintf "budget of %gs exceeded" budget_s)
        in
        let rec wait delay =
          match Atomic.get result with
          | Some (Ok v) -> v
          | Some (Error Deadline.Expired) ->
            (* the helper hit a checkpoint first; an explicit cancel
               request means a race settled elsewhere, otherwise the
               token timed out on its own — that is the budget *)
            if Deadline.cancel_requested token then cancelled ()
            else budget_exceeded ()
          | Some (Error e) -> raise e
          | None ->
            if Deadline.expired token then begin
              (* stop the helper at its next checkpoint and answer now *)
              let raced_away = Deadline.cancel_requested token in
              Deadline.cancel token;
              if raced_away then cancelled () else budget_exceeded ()
            end
            else begin
              Thread.delay delay;
              wait (Float.min (delay *. 2.) 0.01)
            end
        in
        wait 2e-4) }

let create ?(simplify_first = true) ?(filter_assumptions = true)
    ?(ground_saturate = true) ?pool ?cache ?budget_s ?sched
    (provers : Sequent.prover list) : t =
  let provers =
    match budget_s with
    | None -> provers
    | Some budget_s -> List.map (with_budget ~budget_s) provers
  in
  let sched = match sched with Some s -> s | None -> Sched.create () in
  { provers; stats = Hashtbl.create 8; stats_mutex = Mutex.create ();
    pool; cache; sched; simplify_first; filter_assumptions; ground_saturate }

let sched (d : t) : Sched.t = d.sched

let stats_for (d : t) (name : string) : prover_stats =
  match Hashtbl.find_opt d.stats name with
  | Some s -> s
  | None ->
    let s = { attempts = 0; proved = 0; refuted = 0; raised = 0; skipped = 0 } in
    Hashtbl.add d.stats name s;
    s

(* all stats mutation goes through here; [upd] must not block *)
let bump_stats (d : t) (name : string) (upd : prover_stats -> unit) : unit =
  Mutex.lock d.stats_mutex;
  upd (stats_for d name);
  Mutex.unlock d.stats_mutex

(* ------------------------------------------------------------------ *)
(* Assumption filtering                                                *)
(* ------------------------------------------------------------------ *)

(* Keep hypotheses connected to the goal through shared free variables.
   Each hypothesis's free-variable set is computed once up front
   ([Form.fv_shared] — answered from the kernel's per-node memo when the
   hypothesis is already interned, e.g. when it reached the verdict-cache
   digest path unrebuilt) and the fixpoint then only manipulates the
   precomputed sets. *)
let relevant_hyps (hyps : Form.t list) (goal : Form.t) : Form.t list =
  let hyp_fvs = List.map (fun h -> (h, Form.fv_shared h)) hyps in
  let rec grow (relevant : Form.Sset.t) =
    let next =
      List.fold_left
        (fun acc (_, hv) ->
          if Form.Sset.is_empty (Form.Sset.inter hv relevant) then acc
          else Form.Sset.union acc hv)
        relevant hyp_fvs
    in
    if Form.Sset.equal next relevant then relevant else grow next
  in
  let reachable = grow (Form.fv_shared goal) in
  List.filter_map
    (fun (h, hv) ->
      if
        Form.Sset.is_empty hv
        || not (Form.Sset.is_empty (Form.Sset.inter hv reachable))
      then Some h
      else None)
    hyp_fvs

(* ------------------------------------------------------------------ *)
(* Proving                                                             *)
(* ------------------------------------------------------------------ *)

(* cheap syntactic discharge: goal among hypotheses, or trivially true *)
let syntactic (s : Sequent.t) : Sequent.verdict option =
  let goal = Simplify.simplify s.Sequent.goal in
  if Form.is_true goal then Some Sequent.Valid
  else if
    List.exists
      (fun h -> Form.equal (Simplify.simplify h) goal)
      s.Sequent.hyps
  then Some Sequent.Valid
  else if List.exists (fun h -> Form.is_false (Simplify.simplify h)) s.Sequent.hyps
  then Some Sequent.Valid
  else None

(* ------------------------------------------------------------------ *)
(* The cascade engine                                                  *)
(* ------------------------------------------------------------------ *)

(* a prover crash is a portfolio event, not a verdict: count it, leave an
   instant in the trace, and move on as if the prover said Unknown *)
let note_raised (d : t) (name : string) (e : exn) : Sequent.verdict =
  Trace.incr "prover.raised";
  Trace.instant ~cat:"dispatch"
    ~args:(fun () ->
      [ ("prover", Trace.S name); ("exn", Trace.S (Printexc.to_string e)) ])
    "prover.raised";
  bump_stats d name (fun st -> st.raised <- st.raised + 1);
  Sequent.Unknown ("prover raised " ^ Printexc.to_string e)

let settled = function
  | Sequent.Valid | Sequent.Invalid _ -> true
  | Sequent.Unknown _ -> false

(* one timed prover attempt: stats, crash accounting, EMA feedback *)
let attempt (d : t) ~(signature : string) (s : Sequent.t)
    (p : Sequent.prover) : Sequent.verdict =
  let name = p.Sequent.prover_name in
  bump_stats d name (fun st -> st.attempts <- st.attempts + 1);
  let t0 = Clock.now () in
  let v =
    match p.Sequent.prove s with
    | v -> v
    | exception Deadline.Expired ->
      (* a racing sibling settled first; not a crash *)
      Trace.incr "sched.race_cancelled";
      Sequent.Unknown "attempt cancelled"
    | exception e -> note_raised d name e
  in
  (match d.sched.Sched.policy with
  | Sched.Fixed -> ()
  | Sched.Adaptive ->
    Sched.record d.sched ~signature ~prover:name
      ~latency_s:(Clock.now () -. t0) ~settled:(settled v));
  (match v with
  | Sequent.Valid -> bump_stats d name (fun st -> st.proved <- st.proved + 1)
  | Sequent.Invalid _ ->
    bump_stats d name (fun st -> st.refuted <- st.refuted + 1)
  | Sequent.Unknown _ -> ());
  v

let report_of (s : Sequent.t) (p : Sequent.prover) (v : Sequent.verdict) :
    report =
  { sequent = s; verdict = v; prover = Some p.Sequent.prover_name;
    cached = false }

(* race [ps] on the pool: every racer runs under its own cancel token,
   the first settled verdict wins and cancels the others, which unwind at
   their next Deadline checkpoint.  Pool.map is nest-safe (the calling
   worker helps run its own race), so with a busy pool this degrades to
   the sequential cascade: later racers find the winner already posted
   and return without running, or get cancelled at their first poll. *)
let race_attempts (d : t) ~(signature : string) (pool : Pool.t)
    (s : Sequent.t) (ps : Sequent.prover list) : report option =
  Trace.incr "sched.race";
  let winner = Atomic.make None in
  let entries =
    List.map (fun p -> (p, Deadline.make ?parent:(Deadline.current ()) ())) ps
  in
  let run (p, token) =
    if Atomic.get winner <> None then ()
    else
      let v =
        match Deadline.with_token token (fun () -> attempt d ~signature s p)
        with
        | v -> v
        | exception Deadline.Expired ->
          Trace.incr "sched.race_cancelled";
          Sequent.Unknown "attempt cancelled"
      in
      if settled v then
        if Atomic.compare_and_set winner None (Some (v, p)) then
          List.iter
            (fun (q, t) -> if not (q == p) then Deadline.cancel t)
            entries
  in
  let (_ : unit list) = Pool.map pool run entries in
  Option.map (fun (v, p) -> report_of s p v) (Atomic.get winner)

(* the scheduler-driven cascade: order the portfolio (learned EMAs under
   Adaptive, as declared under Fixed), skip provers whose admission
   predicate rejects the sequent, and either try the survivors in order
   or race them [race] at a time *)
let run_cascade (d : t) (s : Sequent.t) : report =
  let signature = Sched.signature s in
  let give_up () =
    { sequent = s;
      verdict = Sequent.Unknown "no prover settled the goal";
      prover = None;
      cached = false }
  in
  (* admission is evaluated lazily, in attempt order: once a prover
     settles the goal, the predicates of everyone behind it never run *)
  let admit (p : Sequent.prover) : bool =
    let name = p.Sequent.prover_name in
    if Sched.admitted d.sched s name then true
    else begin
      Trace.incr "sched.skipped";
      Trace.incr ("sched.skipped." ^ name);
      bump_stats d name (fun st -> st.skipped <- st.skipped + 1);
      false
    end
  in
  let race_width =
    match d.pool with None -> 1 | Some _ -> Sched.race d.sched
  in
  let rec go = function
    | [] -> give_up ()
    | p :: rest when not (admit p) -> go rest
    | p :: rest when race_width > 1 -> (
      (* collect up to race_width admitted provers, racing them as a
         group; admission of provers beyond the group stays lazy *)
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | q :: rest when not (admit q) -> take k acc rest
        | q :: rest -> take (k - 1) (q :: acc) rest
      in
      let group, rest = take (race_width - 1) [ p ] rest in
      match group with
      | [ lone ] -> (
        match attempt d ~signature s lone with
        | v when settled v -> report_of s lone v
        | _ -> go rest)
      | group -> (
        let pool = Option.get d.pool in
        match race_attempts d ~signature pool s group with
        | Some r -> r
        | None -> go rest))
    | p :: rest -> (
      match attempt d ~signature s p with
      | v when settled v -> report_of s p v
      | _ -> go rest)
  in
  go (Sched.order d.sched ~signature d.provers)

(* the portfolio run proper, after the cache has been consulted *)
let prove_uncached (d : t) (s : Sequent.t) : report =
  let s =
    if d.simplify_first then
      Trace.with_span ~cat:"dispatch" "simplify" (fun () ->
          (* joint type inference resolves <=, < and - between sets *)
          let s =
            match Typecheck.check_formula (Sequent.to_form s) with
            | f -> Sequent.of_form ~name:s.Sequent.name f
            | exception Typecheck.Type_error _ -> s
          in
          { s with
            Sequent.hyps = List.map Simplify.simplify s.Sequent.hyps;
            goal = Simplify.simplify s.Sequent.goal })
    else s
  in
  let s =
    if d.filter_assumptions then
      { s with Sequent.hyps = relevant_hyps s.Sequent.hyps s.Sequent.goal }
    else s
  in
  match syntactic s with
  | Some v -> { sequent = s; verdict = v; prover = Some "syntactic"; cached = false }
  | None ->
    let s =
      if d.ground_saturate then
        Trace.with_span ~cat:"dispatch" "saturate" (fun () ->
            try
              let s' = Instantiate.saturate s in
              (* keep the saturated sequent connected to the goal *)
              if d.filter_assumptions then
                { s' with
                  Sequent.hyps = relevant_hyps s'.Sequent.hyps s'.Sequent.goal }
              else s'
            with _ -> s)
      else s
    in
    run_cascade d s

(* the cache-consulting path, without the obligation span *)
let prove_sequent_inner (d : t) (s : Sequent.t) : report =
  match d.cache with
  | None -> prove_uncached d s
  | Some cache -> (
    let k = Cache.key s in
    match Cache.acquire cache k with
    | Cache.Hit e ->
      { sequent = s;
        verdict = e.Cache.verdict;
        prover = e.Cache.prover;
        cached = true }
    | Cache.Claimed -> (
      (* we hold the in-flight claim for [k]: identical obligations on
         other domains are blocked in [acquire] until we settle it, so
         the claim must be released on every exit path *)
      match prove_uncached d s with
      | r ->
        (* only settled verdicts are cacheable: an [Unknown] depends on
           the portfolio composition and per-prover budgets in force at
           the time, so replaying it would mask a later, better-
           resourced attempt from succeeding *)
        (match r.verdict with
        | Sequent.Valid | Sequent.Invalid _ ->
          Cache.publish cache k { Cache.verdict = r.verdict; prover = r.prover }
        | Sequent.Unknown _ ->
          Cache.abandon cache k;
          Trace.incr "cache.unknown_not_cached");
        r
      | exception e ->
        Cache.abandon cache k;
        raise e))

(** Prove one sequent with the portfolio, consulting the verdict cache
    first.  The cache key is computed on the incoming sequent, before any
    simplification, so a repeated obligation costs one canonicalization
    and nothing else.  Only [Valid]/[Invalid] verdicts are cached —
    [Unknown] depends on budgets and portfolio order, so it is re-attempted
    on every call. *)
let prove_sequent (d : t) (s : Sequent.t) : report =
  if not (Trace.enabled ()) then prove_sequent_inner d s
  else begin
    let sp =
      Trace.start_span ~cat:"obligation"
        ~args:(fun () -> [ ("name", Trace.S s.Sequent.name) ])
        "prove"
    in
    match prove_sequent_inner d s with
    | r ->
      Trace.finish_span
        ~args:(fun () ->
          [ ("verdict", Trace.S (Sequent.verdict_kind r.verdict));
            ("prover", Trace.S (Option.value r.prover ~default:"-"));
            ("cache", Trace.S (if r.cached then "hit" else "miss")) ])
        sp;
      r
    | exception e ->
      Trace.finish_span
        ~args:(fun () -> [ ("raised", Trace.S (Printexc.to_string e)) ])
        sp;
      raise e
  end

(** Prove a list of obligations; returns individual reports in input
    order.  When the dispatcher holds a pool, obligations are claimed by
    its domains from a shared queue. *)
let prove_all (d : t) (sequents : Sequent.t list) : report list =
  Pool.map_opt d.pool (prove_sequent d) sequents

type summary = {
  total : int;
  valid : int;
  invalid : int;
  unknown : int;
  reports : report list;
}

let summarize (reports : report list) : summary =
  let valid =
    List.length
      (List.filter (fun r -> r.verdict = Sequent.Valid) reports)
  in
  let invalid =
    List.length
      (List.filter
         (fun r -> match r.verdict with Sequent.Invalid _ -> true | _ -> false)
         reports)
  in
  let total = List.length reports in
  { total; valid; invalid; unknown = total - valid - invalid; reports }

(** Per-prover counters accumulated by this dispatcher, copied field by
    field under [stats_mutex] while pool domains may still be flushing
    updates.  The returned records are detached snapshots: safe to read,
    print or serialize while other domains keep proving.  Every consumer
    that formats stats (including [jahob verify --stats]) must go through
    here rather than touching the live table. *)
let stats_snapshot (d : t) : (string * prover_stats) list =
  Mutex.lock d.stats_mutex;
  let r =
    Hashtbl.fold
      (fun name s acc ->
        ( name,
          { attempts = s.attempts; proved = s.proved; refuted = s.refuted;
            raised = s.raised; skipped = s.skipped } )
        :: acc)
      d.stats []
    |> List.sort compare
  in
  Mutex.unlock d.stats_mutex;
  r

let stats = stats_snapshot

(** The dispatcher's verdict cache, if caching is enabled. *)
let cache (d : t) : Cache.t option = d.cache

let pp_stats ppf (d : t) =
  List.iter
    (fun (name, (s : prover_stats)) ->
      Format.fprintf ppf
        "@,  %-12s attempts %4d   proved %4d   refuted %4d   raised %3d   skipped %4d"
        name s.attempts s.proved s.refuted s.raised s.skipped)
    (stats_snapshot d);
  match d.cache with
  | None -> ()
  | Some c ->
    let k = Cache.counters c in
    Format.fprintf ppf
      "@,  %-12s hits %7d   misses %5d   entries %4d   hit rate %.1f%%"
      "cache" k.Cache.hit_count k.Cache.miss_count k.Cache.entries
      (100. *. Cache.hit_rate c)

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "%d obligations: %d valid, %d invalid, %d unknown"
    s.total s.valid s.invalid s.unknown;
  List.iter
    (fun r ->
      match r.verdict with
      | Sequent.Valid -> ()
      | v ->
        Format.fprintf ppf "@,  [%s] %s"
          (Sequent.verdict_to_string v)
          r.sequent.Sequent.name)
    s.reports
