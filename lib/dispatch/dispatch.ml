(** The prover dispatcher: goal decomposition and routing.

    This is the architecture claim of the paper — "a verification
    condition generator that can invoke any one of a number of decision
    procedures", with "a simple goal decomposition technique to prove
    different conjuncts in the goal using different decision procedures".

    Each obligation is simplified, then offered to the portfolio in a
    configurable order.  A prover that answers [Unknown] passes the goal
    on; [Valid] and [Invalid] are final.  Assumption filtering keeps each
    query small: hypotheses sharing no symbols with the goal (direct or
    transitive) are dropped before a prover runs.

    Obligations are independent, so [prove_all] fans them out across the
    domains of an optional {!Pool.t}.  An optional verdict {!Cache.t}
    settles repeated obligations once, and [with_budget] bounds the
    wall-clock time of any single prover call. *)

open Logic

(* re-export the sibling modules: [dispatch] is this library's main
   module, so [Pool] and [Cache] are only reachable through it *)
module Pool = Pool
module Cache = Cache

type prover_stats = {
  mutable attempts : int;
  mutable proved : int;
  mutable refuted : int;
}

type report = {
  sequent : Sequent.t;
  verdict : Sequent.verdict;
  prover : string option; (* which prover settled it *)
  cached : bool; (* true when the verdict came from the cache *)
}

type t = {
  provers : Sequent.prover list;
  stats : (string, prover_stats) Hashtbl.t;
  stats_mutex : Mutex.t; (* guards [stats]: domains update it concurrently *)
  pool : Pool.t option; (* fan obligations out when present *)
  cache : Cache.t option; (* verdict memoization when present *)
  mutable simplify_first : bool;
  mutable filter_assumptions : bool;
  mutable ground_saturate : bool;
}

(* ------------------------------------------------------------------ *)
(* Per-prover wall-clock budgets                                       *)
(* ------------------------------------------------------------------ *)

(** [with_budget ~budget_s p] answers [Unknown] once [p] has run for
    [budget_s] seconds of wall-clock time, so one pathological query
    cannot stall the portfolio.  The prover runs in a helper thread that
    is abandoned on timeout (OCaml cannot interrupt pure computation);
    abandoned threads finish on their own and their verdicts are
    discarded. *)
let with_budget ~(budget_s : float) (p : Sequent.prover) : Sequent.prover =
  { Sequent.prover_name = p.Sequent.prover_name;
    prove =
      (fun s ->
        let result = Atomic.make None in
        let (_ : Thread.t) =
          Thread.create
            (fun () ->
              let v =
                try p.Sequent.prove s
                with e ->
                  Sequent.Unknown
                    ("prover raised " ^ Printexc.to_string e)
              in
              Atomic.set result (Some v))
            ()
        in
        let deadline = Unix.gettimeofday () +. budget_s in
        let rec wait delay =
          match Atomic.get result with
          | Some v -> v
          | None ->
            if Unix.gettimeofday () >= deadline then begin
              Trace.incr "budget.exceeded";
              Trace.instant ~cat:"budget"
                ~args:(fun () ->
                  [ ("prover", Trace.S p.Sequent.prover_name);
                    ("budget_s", Trace.F budget_s) ])
                "exceeded";
              Sequent.Unknown
                (Printf.sprintf "budget of %gs exceeded" budget_s)
            end
            else begin
              Thread.delay delay;
              wait (Float.min (delay *. 2.) 0.01)
            end
        in
        wait 2e-4) }

let create ?(simplify_first = true) ?(filter_assumptions = true)
    ?(ground_saturate = true) ?pool ?cache ?budget_s
    (provers : Sequent.prover list) : t =
  let provers =
    match budget_s with
    | None -> provers
    | Some budget_s -> List.map (with_budget ~budget_s) provers
  in
  { provers; stats = Hashtbl.create 8; stats_mutex = Mutex.create ();
    pool; cache; simplify_first; filter_assumptions; ground_saturate }

let stats_for (d : t) (name : string) : prover_stats =
  match Hashtbl.find_opt d.stats name with
  | Some s -> s
  | None ->
    let s = { attempts = 0; proved = 0; refuted = 0 } in
    Hashtbl.add d.stats name s;
    s

(* all stats mutation goes through here; [upd] must not block *)
let bump_stats (d : t) (name : string) (upd : prover_stats -> unit) : unit =
  Mutex.lock d.stats_mutex;
  upd (stats_for d name);
  Mutex.unlock d.stats_mutex

(* ------------------------------------------------------------------ *)
(* Assumption filtering                                                *)
(* ------------------------------------------------------------------ *)

(* Keep hypotheses connected to the goal through shared free variables.
   Each hypothesis's free-variable set is computed once up front
   ([Form.fv_shared] — answered from the kernel's per-node memo when the
   hypothesis is already interned, e.g. when it reached the verdict-cache
   digest path unrebuilt) and the fixpoint then only manipulates the
   precomputed sets. *)
let relevant_hyps (hyps : Form.t list) (goal : Form.t) : Form.t list =
  let hyp_fvs = List.map (fun h -> (h, Form.fv_shared h)) hyps in
  let rec grow (relevant : Form.Sset.t) =
    let next =
      List.fold_left
        (fun acc (_, hv) ->
          if Form.Sset.is_empty (Form.Sset.inter hv relevant) then acc
          else Form.Sset.union acc hv)
        relevant hyp_fvs
    in
    if Form.Sset.equal next relevant then relevant else grow next
  in
  let reachable = grow (Form.fv_shared goal) in
  List.filter_map
    (fun (h, hv) ->
      if
        Form.Sset.is_empty hv
        || not (Form.Sset.is_empty (Form.Sset.inter hv reachable))
      then Some h
      else None)
    hyp_fvs

(* ------------------------------------------------------------------ *)
(* Proving                                                             *)
(* ------------------------------------------------------------------ *)

(* cheap syntactic discharge: goal among hypotheses, or trivially true *)
let syntactic (s : Sequent.t) : Sequent.verdict option =
  let goal = Simplify.simplify s.Sequent.goal in
  if Form.is_true goal then Some Sequent.Valid
  else if
    List.exists
      (fun h -> Form.equal (Simplify.simplify h) goal)
      s.Sequent.hyps
  then Some Sequent.Valid
  else if List.exists (fun h -> Form.is_false (Simplify.simplify h)) s.Sequent.hyps
  then Some Sequent.Valid
  else None

(* the portfolio run proper, after the cache has been consulted *)
let prove_uncached (d : t) (s : Sequent.t) : report =
  let s =
    if d.simplify_first then
      Trace.with_span ~cat:"dispatch" "simplify" (fun () ->
          (* joint type inference resolves <=, < and - between sets *)
          let s =
            match Typecheck.check_formula (Sequent.to_form s) with
            | f -> Sequent.of_form ~name:s.Sequent.name f
            | exception Typecheck.Type_error _ -> s
          in
          { s with
            Sequent.hyps = List.map Simplify.simplify s.Sequent.hyps;
            goal = Simplify.simplify s.Sequent.goal })
    else s
  in
  let s =
    if d.filter_assumptions then
      { s with Sequent.hyps = relevant_hyps s.Sequent.hyps s.Sequent.goal }
    else s
  in
  match syntactic s with
  | Some v -> { sequent = s; verdict = v; prover = Some "syntactic"; cached = false }
  | None ->
    let s =
      if d.ground_saturate then
        Trace.with_span ~cat:"dispatch" "saturate" (fun () ->
            try
              let s' = Instantiate.saturate s in
              (* keep the saturated sequent connected to the goal *)
              if d.filter_assumptions then
                { s' with
                  Sequent.hyps = relevant_hyps s'.Sequent.hyps s'.Sequent.goal }
              else s'
            with _ -> s)
      else s
    in
    let rec try_provers = function
      | [] ->
        { sequent = s;
          verdict = Sequent.Unknown "no prover settled the goal";
          prover = None;
          cached = false }
      | (p : Sequent.prover) :: rest -> (
        bump_stats d p.Sequent.prover_name (fun st ->
            st.attempts <- st.attempts + 1);
        match p.Sequent.prove s with
        | Sequent.Valid ->
          bump_stats d p.Sequent.prover_name (fun st ->
              st.proved <- st.proved + 1);
          { sequent = s;
            verdict = Sequent.Valid;
            prover = Some p.Sequent.prover_name;
            cached = false }
        | Sequent.Invalid m ->
          bump_stats d p.Sequent.prover_name (fun st ->
              st.refuted <- st.refuted + 1);
          { sequent = s;
            verdict = Sequent.Invalid m;
            prover = Some p.Sequent.prover_name;
            cached = false }
        | Sequent.Unknown _ -> try_provers rest
        | exception _ -> try_provers rest)
    in
    try_provers d.provers

(* the cache-consulting path, without the obligation span *)
let prove_sequent_inner (d : t) (s : Sequent.t) : report =
  match d.cache with
  | None -> prove_uncached d s
  | Some cache -> (
    let k = Cache.key s in
    match Cache.find cache k with
    | Some e ->
      { sequent = s;
        verdict = e.Cache.verdict;
        prover = e.Cache.prover;
        cached = true }
    | None ->
      let r = prove_uncached d s in
      (* only settled verdicts are cacheable: an [Unknown] depends on the
         portfolio composition and per-prover budgets in force at the
         time, so replaying it would mask a later, better-resourced
         attempt from succeeding *)
      (match r.verdict with
      | Sequent.Valid | Sequent.Invalid _ ->
        Cache.add cache k { Cache.verdict = r.verdict; prover = r.prover }
      | Sequent.Unknown _ -> Trace.incr "cache.unknown_not_cached");
      r)

(** Prove one sequent with the portfolio, consulting the verdict cache
    first.  The cache key is computed on the incoming sequent, before any
    simplification, so a repeated obligation costs one canonicalization
    and nothing else.  Only [Valid]/[Invalid] verdicts are cached —
    [Unknown] depends on budgets and portfolio order, so it is re-attempted
    on every call. *)
let prove_sequent (d : t) (s : Sequent.t) : report =
  if not (Trace.enabled ()) then prove_sequent_inner d s
  else begin
    let sp =
      Trace.start_span ~cat:"obligation"
        ~args:(fun () -> [ ("name", Trace.S s.Sequent.name) ])
        "prove"
    in
    match prove_sequent_inner d s with
    | r ->
      Trace.finish_span
        ~args:(fun () ->
          [ ("verdict", Trace.S (Sequent.verdict_kind r.verdict));
            ("prover", Trace.S (Option.value r.prover ~default:"-"));
            ("cache", Trace.S (if r.cached then "hit" else "miss")) ])
        sp;
      r
    | exception e ->
      Trace.finish_span
        ~args:(fun () -> [ ("raised", Trace.S (Printexc.to_string e)) ])
        sp;
      raise e
  end

(** Prove a list of obligations; returns individual reports in input
    order.  When the dispatcher holds a pool, obligations are claimed by
    its domains from a shared queue. *)
let prove_all (d : t) (sequents : Sequent.t list) : report list =
  Pool.map_opt d.pool (prove_sequent d) sequents

type summary = {
  total : int;
  valid : int;
  invalid : int;
  unknown : int;
  reports : report list;
}

let summarize (reports : report list) : summary =
  let valid =
    List.length
      (List.filter (fun r -> r.verdict = Sequent.Valid) reports)
  in
  let invalid =
    List.length
      (List.filter
         (fun r -> match r.verdict with Sequent.Invalid _ -> true | _ -> false)
         reports)
  in
  let total = List.length reports in
  { total; valid; invalid; unknown = total - valid - invalid; reports }

(** Per-prover counters accumulated by this dispatcher.  The returned
    records are snapshots: safe to read while other domains keep
    proving. *)
let stats (d : t) : (string * prover_stats) list =
  Mutex.lock d.stats_mutex;
  let r =
    Hashtbl.fold
      (fun name s acc ->
        (name, { attempts = s.attempts; proved = s.proved; refuted = s.refuted })
        :: acc)
      d.stats []
    |> List.sort compare
  in
  Mutex.unlock d.stats_mutex;
  r

(** The dispatcher's verdict cache, if caching is enabled. *)
let cache (d : t) : Cache.t option = d.cache

let pp_stats ppf (d : t) =
  List.iter
    (fun (name, (s : prover_stats)) ->
      Format.fprintf ppf "@,  %-12s attempts %4d   proved %4d   refuted %4d"
        name s.attempts s.proved s.refuted)
    (stats d);
  match d.cache with
  | None -> ()
  | Some c ->
    let k = Cache.counters c in
    Format.fprintf ppf
      "@,  %-12s hits %7d   misses %5d   entries %4d   hit rate %.1f%%"
      "cache" k.Cache.hit_count k.Cache.miss_count k.Cache.entries
      (100. *. Cache.hit_rate c)

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "%d obligations: %d valid, %d invalid, %d unknown"
    s.total s.valid s.invalid s.unknown;
  List.iter
    (fun r ->
      match r.verdict with
      | Sequent.Valid -> ()
      | v ->
        Format.fprintf ppf "@,  [%s] %s"
          (Sequent.verdict_to_string v)
          r.sequent.Sequent.name)
    s.reports
