(** A fixed-size pool of OCaml 5 domains with per-domain work-stealing
    deques (Chase–Lev style).

    The previous pool pushed every task through one mutex+condvar shared
    queue: each task paid two global lock round-trips (claim and
    completion) and every publication broadcast woke every worker, so the
    scaling bench spent more time on the pool lock than on proving as
    [-j] grew.  Here each domain owns a deque: the owner pushes and pops
    whole batches at the bottom with no lock at all, idle workers steal
    single tasks from the top of a victim's deque with one CAS, and the
    pool mutex survives only on cold paths — parking an idle worker,
    submissions from foreign domains, and shutdown.

    {2 Nesting and deadlock freedom}

    Nesting is safe on a single pool.  The caller of [map] pushes its
    batch onto its own deque and then {e helps}: it pops and runs its own
    batch's tasks before blocking.  A task of an {e enclosing} batch
    found beneath them is pushed back and left to thieves — a helper
    never executes work it did not submit, so a task that blocks on
    shared state (e.g. the verdict cache's in-flight claim table) can
    never find itself executing, and deadlocking on, an unrelated
    obligation beneath the claim it holds.  A thread only parks when
    every unfinished task of its batch is running on some other domain,
    so the waits-for graph between batches stays acyclic and some domain
    always makes progress.

    {2 Memory-model notes}

    [top] and [bottom] are OCaml [Atomic]s (sequentially consistent);
    the deque buffer travels as one immutable record behind an [Atomic]
    so a thief always observes a consistent array/mask pair whose
    contents were published before the pointer.  The store never
    shrinks, and a slot in the live range [top, bottom) is never
    overwritten, so a thief's read of a slot it later CASes for is
    always the element that was there when [top] still permitted the
    steal. *)

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(** Work-stealing deque.  [push]/[pop] are owner-only (one designated
    thread); [steal] and [size] may be called from any thread. *)
module Deque = struct
  type 'a buf = { arr : 'a option array; mask : int }

  type 'a t = {
    top : int Atomic.t;    (* next index a thief takes; only grows *)
    bottom : int Atomic.t; (* next index the owner pushes *)
    buffer : 'a buf Atomic.t;
  }

  let create ?(capacity = 64) () : 'a t =
    let cap = round_pow2 (max 2 capacity) in
    { top = Atomic.make 0;
      bottom = Atomic.make 0;
      buffer = Atomic.make { arr = Array.make cap None; mask = cap - 1 } }

  (* approximate; exact when no operation is in flight *)
  let size (d : 'a t) : int =
    let b = Atomic.get d.bottom and t = Atomic.get d.top in
    if b > t then b - t else 0

  let grow (d : 'a t) b t =
    let old = Atomic.get d.buffer in
    let cap = 2 * (old.mask + 1) in
    let arr = Array.make cap None in
    for i = t to b - 1 do
      arr.(i land (cap - 1)) <- old.arr.(i land old.mask)
    done;
    Atomic.set d.buffer { arr; mask = cap - 1 }

  let push (d : 'a t) (x : 'a) : unit =
    let b = Atomic.get d.bottom and t = Atomic.get d.top in
    if b - t > (Atomic.get d.buffer).mask then grow d b t;
    let buf = Atomic.get d.buffer in
    buf.arr.(b land buf.mask) <- Some x;
    Atomic.set d.bottom (b + 1)

  let pop (d : 'a t) : 'a option =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if t > b then begin
      (* already empty: restore *)
      Atomic.set d.bottom t;
      None
    end
    else begin
      let buf = Atomic.get d.buffer in
      let i = b land buf.mask in
      let x = buf.arr.(i) in
      if t < b then begin
        buf.arr.(i) <- None;
        x
      end
      else begin
        (* last element: race thieves for it *)
        let won = Atomic.compare_and_set d.top t (t + 1) in
        Atomic.set d.bottom (t + 1);
        if won then begin
          buf.arr.(i) <- None;
          x
        end
        else None
      end
    end

  let rec steal (d : 'a t) : 'a option =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then None
    else begin
      let buf = Atomic.get d.buffer in
      let x = buf.arr.(t land buf.mask) in
      if Atomic.compare_and_set d.top t (t + 1) then x
      else begin
        (* lost the race; the deque may still hold work *)
        Domain.cpu_relax ();
        steal d
      end
    end
end

type task = {
  tag : int; (* batch id: helpers run only their own batch's tasks *)
  run : unit -> unit;
}

type t = {
  uid : int;
  jobs : int;
  deques : task Deque.t array; (* slot 0 = creator, 1.. = workers *)
  lock : Mutex.t; (* guards [injected], [sleepers] and both condvars *)
  work_cond : Condition.t; (* idle workers park here *)
  done_cond : Condition.t; (* [map] callers park here *)
  mutable injected : task list; (* submissions from slot-less domains *)
  mutable sleepers : int;
  stop : bool Atomic.t;
  mutable workers : unit Domain.t list;
}

let jobs (p : t) = p.jobs

let pool_uids = Atomic.make 0
let batch_tags = Atomic.make 0

(* Which pools this domain owns a deque slot in.  Entries are never
   removed; a process creates few pools and each entry is two ints. *)
let slots_key : (int * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let register_slot (p : t) (slot : int) : unit =
  let r = Domain.DLS.get slots_key in
  r := (p.uid, slot) :: !r

let my_slot (p : t) : int option =
  List.assoc_opt p.uid !(Domain.DLS.get slots_key)

(* call with [p.lock] held *)
let have_work_locked (p : t) : bool =
  p.injected <> []
  || Array.exists (fun d -> Deque.size d > 0) p.deques

let take_injected_locked (p : t) : task option =
  match p.injected with
  | [] -> None
  | t :: rest ->
    p.injected <- rest;
    Some t

(* Claim one task from anywhere: own deque first (LIFO, cache-warm),
   then steal round-robin from the other deques, then the injector. *)
let next_task (p : t) ~(slot : int option) : task option =
  let own =
    match slot with Some i -> Deque.pop p.deques.(i) | None -> None
  in
  match own with
  | Some _ -> own
  | None ->
    let me = match slot with Some i -> i | None -> -1 in
    let n = Array.length p.deques in
    let rec scan k =
      if k >= n then None
      else
        let v = (me + 1 + k + n) mod n in
        if v = me then scan (k + 1)
        else
          match Deque.steal p.deques.(v) with
          | Some _ as r ->
            Trace.incr "pool.steal";
            r
          | None -> scan (k + 1)
    in
    (match scan 0 with
    | Some _ as r -> r
    | None ->
      if p.injected == [] then None
      else begin
        Mutex.lock p.lock;
        let r = take_injected_locked p in
        Mutex.unlock p.lock;
        (match r with Some _ -> Trace.incr "pool.inject" | None -> ());
        r
      end)

let rec worker_loop (p : t) (slot : int) : unit =
  let rec drain () =
    match next_task p ~slot:(Some slot) with
    | Some t ->
      t.run ();
      drain ()
    | None -> ()
  in
  drain ();
  if Atomic.get p.stop then ()
  else begin
    Mutex.lock p.lock;
    (* re-check under the lock: publishers broadcast under it, so a task
       pushed before we got here is either visible now or its broadcast
       is still pending on this mutex — no lost wakeup *)
    if (not (have_work_locked p)) && not (Atomic.get p.stop) then begin
      p.sleepers <- p.sleepers + 1;
      Trace.incr "pool.park";
      Condition.wait p.work_cond p.lock;
      p.sleepers <- p.sleepers - 1
    end;
    Mutex.unlock p.lock;
    worker_loop p slot
  end

(** [create ~jobs] spawns [jobs - 1] worker domains; the creating domain
    owns deque slot 0 and participates in its own [map] calls. *)
let create ~jobs : t =
  let jobs = max 1 jobs in
  let p =
    { uid = Atomic.fetch_and_add pool_uids 1;
      jobs;
      deques = Array.init jobs (fun _ -> Deque.create ());
      lock = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      injected = [];
      sleepers = 0;
      stop = Atomic.make false;
      workers = [] }
  in
  register_slot p 0;
  p.workers <-
    List.init (jobs - 1) (fun i ->
        let slot = i + 1 in
        Domain.spawn (fun () ->
            register_slot p slot;
            worker_loop p slot));
  p

let shutdown (p : t) =
  Atomic.set p.stop true;
  Mutex.lock p.lock;
  Condition.broadcast p.work_cond;
  Condition.broadcast p.done_cond;
  Mutex.unlock p.lock;
  List.iter Domain.join p.workers;
  p.workers <- []

(* wake parked workers after publishing work; cheap when nobody sleeps *)
let wake_workers (p : t) =
  Mutex.lock p.lock;
  if p.sleepers > 0 then Condition.broadcast p.work_cond;
  Mutex.unlock p.lock

(** Parallel [List.map] preserving order.  The first exception raised by
    [f] (in input order) is re-raised in the caller once the whole batch
    has settled. *)
let map (p : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  if p.jobs <= 1 || List.compare_length_with xs 2 < 0 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results : ('b, exn) result option array = Array.make n None in
    let remaining = Atomic.make n in
    let tag = Atomic.fetch_and_add batch_tags 1 in
    let published = Trace.now_s () in
    let run i () =
      let r =
        if not (Trace.enabled ()) then (try Ok (f arr.(i)) with e -> Error e)
        else begin
          (* time from batch publication to a domain picking the task
             up: queue pressure under the pool *)
          let wait_s = Trace.now_s () -. published in
          Trace.observe "pool.queue_wait_s" wait_s;
          Trace.with_span ~cat:"pool"
            ~args:(fun () ->
              [ ("index", Trace.I i); ("queue_wait_s", Trace.F wait_s) ])
            "task"
            (fun () -> try Ok (f arr.(i)) with e -> Error e)
        end
      in
      results.(i) <- Some r;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* last task of the batch: wake the batch's caller *)
        Mutex.lock p.lock;
        Condition.broadcast p.done_cond;
        Mutex.unlock p.lock
      end
    in
    let slot = my_slot p in
    (match slot with
    | Some s ->
      let dq = p.deques.(s) in
      for i = 0 to n - 1 do
        Deque.push dq { tag; run = run i }
      done
    | None ->
      (* a domain with no deque here (not the creator, not a worker):
         hand the batch to the workers through the injector *)
      Mutex.lock p.lock;
      let ts = ref [] in
      for i = n - 1 downto 0 do
        ts := { tag; run = run i } :: !ts
      done;
      p.injected <- p.injected @ !ts;
      Mutex.unlock p.lock);
    wake_workers p;
    (* help with our own batch before blocking: pop our deque, run our
       tasks, push an enclosing batch's task back for thieves *)
    let rec help () =
      if Atomic.get remaining > 0 then begin
        let mine =
          match slot with
          | None -> None
          | Some s -> (
            let dq = p.deques.(s) in
            match Deque.pop dq with
            | Some t when t.tag = tag -> Some t
            | Some t ->
              (* a task of an enclosing batch surfaced: all of ours are
                 claimed.  Put it back and park below. *)
              Deque.push dq t;
              Trace.incr "pool.pushback";
              None
            | None -> None)
        in
        match mine with
        | Some t ->
          t.run ();
          help ()
        | None ->
          (* every unfinished task of this batch is running on some
             other domain; park until one completes *)
          Mutex.lock p.lock;
          if Atomic.get remaining > 0 then
            Condition.wait p.done_cond p.lock;
          Mutex.unlock p.lock;
          help ()
      end
    in
    help ();
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
  end

(** [map] on an optional pool: [None] means run sequentially. *)
let map_opt (p : t option) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  match p with None -> List.map f xs | Some p -> map p f xs
