(** Adaptive portfolio scheduling: which provers to ask, in what order.

    The fixed cascade offers every obligation to every prover in portfolio
    order, so a MONA-shaped sequent pays for failed SMT and BAPA attempts
    first and an arithmetic one pays for a saturation run of the
    first-order prover.  This module makes the cascade instance-aware,
    SATzilla-style, in two layers:

    {ul
    {- {b Fragment pre-routing.}  Each prover may register an admission
       predicate (its [in_fragment] check).  A prover whose predicate
       rejects the sequent is skipped outright — sound only for provers
       whose [in_fragment = false] provably implies their [prove] answers
       [Unknown] (cooper, fol, mona, bapa: all fail in their translation
       front end, which is exactly what the predicate runs).  The SMT
       prover deliberately registers {e no} predicate: it abstracts
       out-of-fragment atoms propositionally and can still settle a goal
       whose atoms it cannot interpret, so skipping it would change
       verdicts.}
    {- {b Learned ordering.}  Per (prover × fragment-signature) EMAs of
       attempt latency and settle rate, mutex-striped like the dispatcher's
       stats table.  Admitted provers are sorted by expected
       cost-to-solve (latency / settle-rate — the classic index rule for
       minimizing expected total time of a try-until-success cascade).
       Unobserved pairs score a neutral constant, and ties break on
       portfolio position, so a cold scheduler reproduces the fixed order
       exactly and ordering is deterministic given the same observations.}}

    Reordering and skipping never change the portfolio's {e verdict}:
    skips are Unknown-preserving by the admission soundness argument, and
    any two provers that both settle a goal agree (a property the
    differential fuzzer enforces), so order only decides who answers
    first.  The [Fixed] policy short-circuits both layers — the escape
    hatch behind [--sched fixed]. *)

open Logic

type policy =
  | Fixed (** legacy cascade: portfolio order, no skipping, no learning *)
  | Adaptive (** fragment pre-routing + learned ordering *)

let policy_of_string = function
  | "fixed" -> Some Fixed
  | "adaptive" -> Some Adaptive
  | _ -> None

let policy_to_string = function Fixed -> "fixed" | Adaptive -> "adaptive"

(* ------------------------------------------------------------------ *)
(* Fragment signatures                                                 *)
(* ------------------------------------------------------------------ *)

(** A cheap syntactic abstract of the sequent: one flag per feature that
    decides fragment membership (quantifiers, arithmetic, sets,
    cardinalities, reachability, heap access).  Obligations with the same
    signature tend to be settled by the same prover at a similar cost,
    which is what makes the per-signature EMAs predictive. *)
let signature (s : Sequent.t) : string =
  let quant = ref false and arith = ref false and sets = ref false
  and card = ref false and reach = ref false and heap = ref false in
  let const (k : Form.const) =
    match k with
    | Form.IntLit _ | Lt | Le | Gt | Ge | Plus | Minus | Uminus | Mult
    | Div | Mod ->
      arith := true
    | EmptySet | UnivSet | FiniteSet | Union | Inter | Diff | Elem
    | Subseteq | Subset ->
      sets := true
    | Card ->
      card := true;
      sets := true
    | FieldRead | FieldWrite | ArrayRead | ArrayWrite -> heap := true
    | Rtrancl | Tree -> reach := true
    | BoolLit _ | Null | Not | And | Or | Impl | Iff | Ite | Eq | Old -> ()
  in
  let rec scan (f : Form.t) =
    match f with
    | Form.Var _ -> ()
    | Form.Const k -> const k
    | Form.App (g, args) ->
      scan g;
      List.iter scan args
    | Form.Binder (b, _, body) ->
      (match b with
      | Form.Forall | Form.Exists -> quant := true
      | Form.Comprehension -> sets := true
      | Form.Lambda -> ());
      scan body
    | Form.TypedForm (g, _) -> scan g
  in
  List.iter scan s.Sequent.hyps;
  scan s.Sequent.goal;
  let buf = Buffer.create 8 in
  let flag b c = if b then Buffer.add_char buf c in
  flag !quant 'q';
  flag !arith 'a';
  flag !sets 's';
  flag !card 'c';
  flag !reach 'r';
  flag !heap 'h';
  if Buffer.length buf = 0 then "prop" else Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Learned per-(prover × signature) statistics                         *)
(* ------------------------------------------------------------------ *)

(* The scheduler's hot path is [score], called for every (obligation ×
   prover) pair.  It used to lock a stripe per call, which put one more
   shared mutex on every obligation's critical path.  Stat records are
   now immortal: once a (prover, signature) pair's record is created it
   is only ever mutated in place, never replaced, so each domain can
   memoize the record pointer in domain-local storage and read its
   fields without any lock.  Writers still serialize on the stripe lock;
   readers may observe a slightly stale EMA, which can only perturb
   attempt {e order}, never a verdict (see the module header). *)
type stat = {
  mutable ema_latency : float; (* seconds per attempt *)
  mutable ema_settle : float; (* fraction of attempts answering Valid/Invalid *)
  mutable samples : int;
}

type stripe = {
  lock : Mutex.t;
  table : (string * string, stat) Hashtbl.t; (* (prover, signature) *)
}

type t = {
  uid : int; (* distinguishes schedulers in the domain-local memo *)
  policy : policy;
  race : int; (* how many admitted provers to race; 1 = cascade *)
  admits : (string, Sequent.t -> bool) Hashtbl.t;
  stripes : stripe array;
}

let n_stripes = 8
let uids = Atomic.make 0

let create ?(policy = Fixed) ?(race = 1) ?(admits = []) () : t =
  let table = Hashtbl.create (List.length admits) in
  List.iter (fun (name, pred) -> Hashtbl.replace table name pred) admits;
  { uid = Atomic.fetch_and_add uids 1;
    policy;
    race = max 1 race;
    admits = table;
    stripes =
      Array.init n_stripes (fun _ ->
          { lock = Mutex.create (); table = Hashtbl.create 32 }) }

let policy (t : t) = t.policy
let race (t : t) = t.race

let stripe_of (t : t) (key : string * string) : stripe =
  t.stripes.(Hashtbl.hash key land (n_stripes - 1))

(* neutral priors: every unobserved (prover, signature) pair scores the
   same constant, so cold ordering degenerates to the fixed portfolio
   order via the positional tie-break *)
let cold_latency = 0.01
let cold_settle = 0.5
let min_samples = 3
let ema_alpha = 0.25

(* Per-domain memo of stat-record pointers, keyed by (scheduler uid,
   prover, signature).  Records are created exactly once under the
   stripe lock and never replaced, so a memoized pointer stays valid for
   the life of the scheduler and subsequent [score] calls touch no
   shared lock at all. *)
let stat_memo_key : (int * string * string, stat) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let stat_for (t : t) (key : string * string) : stat =
  let memo = Domain.DLS.get stat_memo_key in
  let prover, signature = key in
  let mk = (t.uid, prover, signature) in
  match Hashtbl.find_opt memo mk with
  | Some st -> st
  | None ->
    let stripe = stripe_of t key in
    Mutex.lock stripe.lock;
    let st =
      match Hashtbl.find_opt stripe.table key with
      | Some st -> st
      | None ->
        let st =
          { ema_latency = cold_latency; ema_settle = cold_settle; samples = 0 }
        in
        Hashtbl.add stripe.table key st;
        st
    in
    Mutex.unlock stripe.lock;
    Hashtbl.add memo mk st;
    st

(** Fold one attempt into the EMAs.  [settled] means the prover answered
    [Valid] or [Invalid]; a cancelled racer counts as an unsettled attempt
    at the time it was allowed to run, which mildly reinforces whoever
    keeps winning — exactly the bias a portfolio wants. *)
let record (t : t) ~(signature : string) ~(prover : string)
    ~(latency_s : float) ~(settled : bool) : unit =
  let key = (prover, signature) in
  let st = stat_for t key in
  (* writers serialize on the stripe so the EMA read-modify-write is not
     lost; lock-free readers may see the fields mid-update *)
  let stripe = stripe_of t key in
  Mutex.lock stripe.lock;
  st.samples <- st.samples + 1;
  st.ema_latency <- st.ema_latency +. (ema_alpha *. (latency_s -. st.ema_latency));
  st.ema_settle <-
    st.ema_settle +. (ema_alpha *. ((if settled then 1. else 0.) -. st.ema_settle));
  Mutex.unlock stripe.lock

(* expected cost-to-solve: mean attempt latency scaled by the odds the
   attempt actually settles the goal.  [1 / settle-rate] attempts are
   expected before a success, so latency / rate is the expected spend on
   this prover per solved goal; ordering ascending minimizes the expected
   total time of the cascade. *)
let score (t : t) ~(signature : string) (prover : string) : float =
  let st = stat_for t (prover, signature) in
  (* lock-free read of the memoized record: [samples] is a word-sized
     field and the EMAs are boxed floats, so each read is atomic; a read
     concurrent with [record] sees a recent value, which at worst
     reorders the cascade for this one obligation *)
  if st.samples >= min_samples then
    st.ema_latency /. Float.max st.ema_settle 0.02
  else cold_latency /. cold_settle

(** Admitted provers in attempt order.  [Fixed]: the portfolio order,
    untouched.  [Adaptive]: sorted by {!score}, ties broken by portfolio
    position (deterministic; reproduces the fixed order until enough
    samples accumulate). *)
let order (t : t) ~(signature : string) (provers : Sequent.prover list) :
    Sequent.prover list =
  match t.policy with
  | Fixed -> provers
  | Adaptive ->
    provers
    |> List.mapi (fun i p ->
           (score t ~signature p.Sequent.prover_name, i, p))
    |> List.sort (fun (s1, i1, _) (s2, i2, _) ->
           match Float.compare s1 s2 with 0 -> Int.compare i1 i2 | c -> c)
    |> List.map (fun (_, _, p) -> p)

(** Does the scheduler offer this sequent to this prover at all?  Always
    true under [Fixed], and for provers without an admission predicate.
    A predicate that raises admits (the prover's own front end then
    decides — never skip on a crash). *)
let admitted (t : t) (s : Sequent.t) (prover : string) : bool =
  match t.policy with
  | Fixed -> true
  | Adaptive -> (
    match Hashtbl.find_opt t.admits prover with
    | None -> true
    | Some pred -> ( try pred s with _ -> true))

(** Snapshot of the learned table, for debugging and the bench report:
    [(prover, signature, ema_latency, ema_settle, samples)] sorted by
    key. *)
let snapshot (t : t) : (string * string * float * float * int) list =
  let acc = ref [] in
  Array.iter
    (fun stripe ->
      Mutex.lock stripe.lock;
      Hashtbl.iter
        (fun (p, sg) st ->
          acc := (p, sg, st.ema_latency, st.ema_settle, st.samples) :: !acc)
        stripe.table;
      Mutex.unlock stripe.lock)
    t.stripes;
  List.sort compare !acc
