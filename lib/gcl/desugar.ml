(** Desugaring the annotated Java subset into guarded commands.

    This module implements the semantic decisions of the paper's front
    end:

    - {b state model}: instance field [f] of class [C] is the
      function-valued variable ["C.f"]; the allocation set is
      ["Object.alloc"]; fields and spec variables of classes used from
      static context (the paper's Client) are globalized to ["C.x"];
    - {b abstraction functions}: a specvar with a [vardefs] definition is
      unfolded at every use, relative to the proper receiver — this is the
      "verified connection between concrete data structures and abstract
      sets" of Section 1;
    - {b modular calls}: a call is replaced by [assert precondition;
      snapshot; havoc frame; assume postcondition+frame], so methods are
      verified against contracts, never inlined;
    - {b allocation}: [new C()] yields a fresh non-null object outside
      [Object.alloc] with default-initialized fields.
*)

open Logic
module Ast = Javaparser.Ast

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let alloc_var = "Object.alloc"

(* one global function for all array contents (obj => int => obj-or-int),
   plus the length field, in the Jahob style *)
let array_state_var = "Object.arrayState"
let array_length_var = "Array.length"

(* ------------------------------------------------------------------ *)
(* Dependency recording                                                 *)
(* ------------------------------------------------------------------ *)

(** What a method's verification conditions read from {e other} program
    elements.  Every place the desugarer consults the program beyond the
    method's own AST records one of these into the enclosing task's
    accumulator; incremental re-verification then re-digests each
    recorded element against the edited program and re-verifies the
    method iff its own digest or any dependency digest changed
    ({!Vcgen.Deps} computes the digests).  The method's own body,
    contract and signature are covered by its structural digest, so they
    are deliberately {e not} deps. *)
type dep =
  | Dep_inv of string
      (** the invariant block of a class (assumed on entry, asserted on
          exit of its own methods) *)
  | Dep_specvar of string * string
      (** [(class, specvar)]: declaration consulted or definition
          unfolded — the digest includes the definition only from inside
          the declaring class, mirroring {!unfold_specvar}'s opacity
          rule *)
  | Dep_contract of string * string
      (** [(class, method)]: a callee's signature + contract (body
          excluded — body edits never invalidate callers) *)
  | Dep_ctor of string
      (** which constructor (if any) [new C()] runs, with its contract *)
  | Dep_fields of string
      (** a class's field footprint: own fields plus claimedby-delegated
          ones — allocation defaults and call-frame havocs read it *)
  | Dep_resolve of string * string
      (** [(class, name)]: how an identifier resolves inside a class
          (specvar vs field vs free logical variable), including the
          resolved declaration *)
  | Dep_unq of string
      (** an unqualified [x..f] annotation disambiguated by scanning all
          classes for a field/specvar of that name *)
  | Dep_class of string
      (** whether a class of this name exists (static-call receiver
          disambiguation) *)

let dep_key (d : dep) : string =
  match d with
  | Dep_inv c -> "inv:" ^ c
  | Dep_specvar (c, v) -> "sv:" ^ c ^ "." ^ v
  | Dep_contract (c, m) -> "ct:" ^ c ^ "." ^ m
  | Dep_ctor c -> "ctor:" ^ c
  | Dep_fields c -> "fld:" ^ c
  | Dep_resolve (c, x) -> "rs:" ^ c ^ "." ^ x
  | Dep_unq x -> "unq:" ^ x
  | Dep_class c -> "cls:" ^ c

(** Parse a {!dep_key} back (the persistent store keeps deps as
    strings). *)
let dep_of_key (s : string) : dep option =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let tag = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let split_dot r =
      match String.index_opt r '.' with
      | None -> None
      | Some j ->
        Some
          ( String.sub r 0 j,
            String.sub r (j + 1) (String.length r - j - 1) )
    in
    match tag with
    | "inv" -> Some (Dep_inv rest)
    | "ctor" -> Some (Dep_ctor rest)
    | "fld" -> Some (Dep_fields rest)
    | "unq" -> Some (Dep_unq rest)
    | "cls" -> Some (Dep_class rest)
    | "sv" -> Option.map (fun (c, v) -> Dep_specvar (c, v)) (split_dot rest)
    | "ct" -> Option.map (fun (c, m) -> Dep_contract (c, m)) (split_dot rest)
    | "rs" -> Option.map (fun (c, x) -> Dep_resolve (c, x)) (split_dot rest)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Class-table helpers                                                 *)
(* ------------------------------------------------------------------ *)

type tenv = {
  prog : Ast.program;
  home : string; (* the class whose method is being verified: only its
                    own vardefs are unfolded (information hiding) *)
  cls : Ast.class_decl; (* enclosing class *)
  mtd : Ast.method_decl; (* enclosing method *)
  globalized : (string * string) list; (* (class, member) treated as global *)
  deps : (dep, unit) Hashtbl.t;
      (* accumulator shared by every [{env with ...}] copy: records what
         this method's VCs read from other program elements *)
  mutable locals : (string * Ast.jtype) list;
  mutable counter : int;
}

let record env (d : dep) : unit = Hashtbl.replace env.deps d ()

let fresh env base =
  env.counter <- env.counter + 1;
  Printf.sprintf "%s_%d" base env.counter

let qualify c x = c ^ "." ^ x

let is_globalized env c x = List.mem (c, x) env.globalized

(* Names referenced anywhere inside a static method of a class determine
   which of its members are globalized. *)
let compute_globalized (prog : Ast.program) : (string * string) list =
  let mentioned : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let note x = Hashtbl.replace mentioned x () in
  let rec expr_idents (e : Ast.expr) =
    match e with
    | Ast.Local x -> note x
    | Ast.Field_access (e, _) -> expr_idents e
    | Ast.Binop (_, a, b) ->
      expr_idents a;
      expr_idents b
    | Ast.Not e | Ast.Neg e | Ast.Cast (_, e) -> expr_idents e
    | Ast.Call { call_recv; call_args; _ } ->
      Option.iter expr_idents call_recv;
      List.iter expr_idents call_args
    | Ast.Index (a, i) ->
      expr_idents a;
      expr_idents i
    | Ast.New_array (_, n) -> expr_idents n
    | Ast.Array_length a -> expr_idents a
    | Ast.Int_lit _ | Ast.Bool_lit _ | Ast.Null_lit | Ast.This | Ast.New _ ->
      ()
  in
  let rec stmt_idents (s : Ast.stmt) =
    match s with
    | Ast.Var_decl (_, _, init) -> Option.iter expr_idents init
    | Ast.Assign (lhs, e) ->
      (match lhs with
      | Ast.Lhs_local x -> note x
      | Ast.Lhs_field (obj, _) -> expr_idents obj
      | Ast.Lhs_index (a, i) ->
        expr_idents a;
        expr_idents i);
      expr_idents e
    | Ast.Expr_stmt e -> expr_idents e
    | Ast.If (c, a, b) ->
      expr_idents c;
      List.iter stmt_idents a;
      List.iter stmt_idents b
    | Ast.While (_, c, body) ->
      expr_idents c;
      List.iter stmt_idents body
    | Ast.Return e -> Option.iter expr_idents e
    | Ast.Block b -> List.iter stmt_idents b
    | Ast.Spec sp -> (
      match sp with
      | Ast.Ghost_assign (x, f) ->
        note x;
        List.iter note (Form.fv_list f)
      | Ast.Assert_spec (_, f) | Ast.Assume_spec (_, f) | Ast.Note_that (_, f)
      | Ast.Loop_invariant f ->
        List.iter note (Form.fv_list f))
  in
  let forms_idents f = List.iter note (Form.fv_list f) in
  List.concat_map
    (fun (c : Ast.class_decl) ->
      Hashtbl.reset mentioned;
      let statics =
        List.filter (fun m -> m.Ast.m_static) c.Ast.c_methods
      in
      if statics = [] then []
      else begin
        List.iter
          (fun (m : Ast.method_decl) ->
            Option.iter (List.iter stmt_idents) m.Ast.m_body;
            Option.iter forms_idents m.Ast.m_contract.Ast.requires;
            Option.iter forms_idents m.Ast.m_contract.Ast.ensures;
            List.iter note m.Ast.m_contract.Ast.modifies)
          statics;
        let members =
          List.map (fun f -> f.Ast.f_name) c.Ast.c_fields
          @ List.map (fun v -> v.Ast.sv_name) c.Ast.c_specvars
        in
        List.filter_map
          (fun x -> if Hashtbl.mem mentioned x then Some (c.Ast.c_name, x) else None)
          members
      end)
    prog

(* every class that [claimedby] delegates to c, transitively *)
let claimed_classes (prog : Ast.program) (owner : string) : string list =
  List.filter_map
    (fun (c : Ast.class_decl) ->
      if
        List.exists
          (fun f -> f.Ast.f_claimedby = Some owner)
          c.Ast.c_fields
      then Some c.Ast.c_name
      else None)
    prog

(* concrete state footprint of a class: its own field variables plus those
   of classes claimed by it, plus the allocation set *)
let class_footprint (prog : Ast.program) (cname : string) : string list =
  let own (c : Ast.class_decl) =
    List.filter_map
      (fun (f : Ast.field_decl) ->
        (* globalized members are handled separately *)
        Some (qualify c.Ast.c_name f.Ast.f_name))
      c.Ast.c_fields
  in
  let classes =
    cname :: claimed_classes prog cname
  in
  List.concat_map
    (fun cn ->
      match Ast.find_class prog cn with Some c -> own c | None -> [])
    classes
  @ [ alloc_var ]

(* all state variables of the program, from the viewpoint of [home]:
   field functions, globals, ghosts — and the *abstract* spec variables of
   other classes, which do not unfold outside their class *)
let program_state_vars (prog : Ast.program) (home : string)
    (globalized : (string * string) list) : string list =
  let per_class (c : Ast.class_decl) =
    List.map (fun f -> qualify c.Ast.c_name f.Ast.f_name) c.Ast.c_fields
    @ List.filter_map
        (fun (v : Ast.specvar_decl) ->
          if v.Ast.sv_ghost || v.Ast.sv_def = None || c.Ast.c_name <> home
          then Some (qualify c.Ast.c_name v.Ast.sv_name)
          else None (* the home class's defined specvars unfold *))
        c.Ast.c_specvars
  in
  ignore globalized;
  List.sort_uniq compare
    (alloc_var :: array_state_var :: array_length_var
    :: List.concat_map per_class prog)

(* ------------------------------------------------------------------ *)
(* Static types of expressions                                         *)
(* ------------------------------------------------------------------ *)

let field_jtype env (cname : string) (fname : string) : Ast.jtype =
  record env (Dep_resolve (cname, fname));
  match Ast.find_class env.prog cname with
  | None -> error "unknown class %s" cname
  | Some c -> (
    match Ast.find_field c fname with
    | Some f -> f.Ast.f_type
    | None -> error "unknown field %s.%s" cname fname)

let rec jtype_of env (e : Ast.expr) : Ast.jtype =
  match e with
  | Ast.Int_lit _ -> Ast.Tint
  | Ast.Bool_lit _ -> Ast.Tbool
  | Ast.Null_lit -> Ast.Tclass "Object"
  | Ast.This -> Ast.Tclass env.cls.Ast.c_name
  | Ast.Local x -> (
    match List.assoc_opt x env.locals with
    | Some t -> t
    | None -> (
      record env (Dep_resolve (env.cls.Ast.c_name, x));
      match Ast.find_field env.cls x with
      | Some f -> f.Ast.f_type
      | None -> error "unbound identifier %s" x))
  | Ast.Field_access (obj, f) -> (
    match jtype_of env obj with
    | Ast.Tclass c -> field_jtype env c f
    | t -> error "field access on non-object of type %s" (Ast.jtype_to_string t))
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), _, _) ->
    Ast.Tint
  | Ast.Binop (_, _, _) -> Ast.Tbool
  | Ast.Not _ -> Ast.Tbool
  | Ast.Neg _ -> Ast.Tint
  | Ast.New c -> Ast.Tclass c
  | Ast.New_array (t, _) -> Ast.Tarray t
  | Ast.Index (a, _) -> (
    match jtype_of env a with
    | Ast.Tarray t -> t
    | t -> error "indexing a non-array of type %s" (Ast.jtype_to_string t))
  | Ast.Array_length _ -> Ast.Tint
  | Ast.Cast (c, _) -> Ast.Tclass c
  | Ast.Call call ->
    let cls, m = resolve_call env call in
    ignore cls;
    m.Ast.m_ret

and resolve_call env (call : Ast.call) : Ast.class_decl * Ast.method_decl =
  let lookup cname =
    record env (Dep_contract (cname, call.Ast.call_name));
    match Ast.find_class env.prog cname with
    | None -> error "unknown class %s in call to %s" cname call.Ast.call_name
    | Some c -> (
      match Ast.find_method c call.Ast.call_name with
      | Some m -> (c, m)
      | None -> error "unknown method %s.%s" cname call.Ast.call_name)
  in
  match call.Ast.call_recv with
  | Some (Ast.Local x)
    when List.assoc_opt x env.locals = None
         && Ast.find_field env.cls x = None
         && Ast.find_class env.prog x <> None ->
    (* C.m(...): receiver names a class; the resolution flips if [x]
       later becomes a local/field or the class disappears *)
    record env (Dep_class x);
    record env (Dep_resolve (env.cls.Ast.c_name, x));
    lookup x
  | Some recv -> (
    match jtype_of env recv with
    | Ast.Tclass c -> lookup c
    | t -> error "method call on non-object of type %s" (Ast.jtype_to_string t))
  | None -> lookup env.cls.Ast.c_name

(* ------------------------------------------------------------------ *)
(* Formula resolution (annotation formulas -> logical formulas)        *)
(* ------------------------------------------------------------------ *)

(* Unfold one specvar of class [cname] with receiver [recv]: substitute
   the definition body resolved against that receiver. *)
let rec unfold_specvar env (visiting : string list) (cname : string)
    (sv : Ast.specvar_decl) (recv : Form.t option) : Form.t =
  record env (Dep_specvar (cname, sv.Ast.sv_name));
  let key = qualify cname sv.Ast.sv_name in
  if List.mem key visiting then error "recursive vardefs for %s" key;
  let unfoldable = sv.Ast.sv_def <> None && not sv.Ast.sv_ghost in
  if unfoldable && cname <> env.home then
    (* another class's abstraction: clients see the specvar as opaque
       abstract state, exactly as the paper's interface view intends *)
    if sv.Ast.sv_static || is_globalized env cname sv.Ast.sv_name then
      Form.Var key
    else begin
      match recv with
      | Some r -> Form.mk_field_read (Form.Var key) r
      | None -> error "instance specvar %s used without receiver" key
    end
  else
  match sv.Ast.sv_def, sv.Ast.sv_ghost with
  | None, _ | _, true ->
    (* abstract state: ghost or undefined specvar *)
    if sv.Ast.sv_static || is_globalized env cname sv.Ast.sv_name then
      Form.Var key
    else begin
      match recv with
      | Some r -> Form.mk_field_read (Form.Var key) r
      | None -> error "instance specvar %s used without receiver" key
    end
  | Some def, false ->
    let cls =
      match Ast.find_class env.prog cname with
      | Some c -> c
      | None -> error "unknown class %s" cname
    in
    resolve_form { env with cls } ~visiting:(key :: visiting) ~this:recv def

(* Resolve an annotation formula: qualify fields, unfold defined
   specvars, resolve unqualified names against the receiver. *)
and resolve_form env ?(visiting = []) ~(this : Form.t option) (f : Form.t) :
    Form.t =
  let resolve_name (x : string) : Form.t =
    if x = "result" || x = "this" then
      if x = "this" then
        match this with Some t -> t | None -> Form.Var "this"
      else Form.Var x
    else if String.contains x '.' then begin
      (* qualified: C.member *)
      let cname = String.sub x 0 (String.index x '.') in
      let member = String.sub x (String.index x '.' + 1)
          (String.length x - String.index x '.' - 1) in
      record env (Dep_class cname);
      match Ast.find_class env.prog cname with
      | None -> Form.Var x (* Object.alloc and friends *)
      | Some c -> (
        record env (Dep_resolve (cname, member));
        match Ast.find_specvar c member with
        | Some sv when sv.Ast.sv_def <> None && not sv.Ast.sv_ghost ->
          (* a defined specvar used as a bare qualified name: only
             meaningful under a field read, handled below; as a global it
             must be static *)
          if sv.Ast.sv_static || is_globalized env cname member then
            unfold_specvar env visiting cname sv None
          else Form.Var x
        | Some sv -> unfold_specvar env visiting cname sv None
        | None -> Form.Var x)
    end
    else if List.assoc_opt x env.locals <> None then Form.Var x
    else begin
      record env (Dep_resolve (env.cls.Ast.c_name, x));
      match Ast.find_specvar env.cls x with
      | Some sv ->
        if sv.Ast.sv_static || is_globalized env env.cls.Ast.c_name x then
          unfold_specvar env visiting env.cls.Ast.c_name sv None
        else unfold_specvar env visiting env.cls.Ast.c_name sv this
      | None -> (
        match Ast.find_field env.cls x with
        | Some _ ->
          let key = qualify env.cls.Ast.c_name x in
          if is_globalized env env.cls.Ast.c_name x then Form.Var key
          else begin
            match this with
            | Some t -> Form.mk_field_read (Form.Var key) t
            | None -> error "field %s used in static context" x
          end
        | None -> Form.Var x (* bound var or free logical var *))
    end
  in
  let rec go bound (f : Form.t) : Form.t =
    match f with
    | Form.Var x -> if Form.Sset.mem x bound then f else resolve_name x
    | Form.Const _ -> f
    | Form.App (Form.Const Form.FieldRead, [ fld; obj ]) -> begin
      (* a..C.sv where sv is a defined specvar unfolds at obj *)
      let obj' = go bound obj in
      match Form.strip_types fld with
      | Form.Var qx when String.contains qx '.' -> begin
        let cname = String.sub qx 0 (String.index qx '.') in
        let member = String.sub qx (String.index qx '.' + 1)
            (String.length qx - String.index qx '.' - 1) in
        record env (Dep_class cname);
        match Ast.find_class env.prog cname with
        | Some c -> (
          record env (Dep_resolve (cname, member));
          match Ast.find_specvar c member with
          | Some sv when sv.Ast.sv_def <> None && not sv.Ast.sv_ghost ->
            unfold_specvar env visiting cname sv (Some obj')
          | Some _ | None -> Form.mk_field_read (Form.Var qx) obj')
        | None -> Form.mk_field_read (Form.Var qx) obj'
      end
      | Form.Var ux -> begin
        (* unqualified field name in x..f position: resolve against the
           class of... without full typing we qualify against the
           enclosing class chain: prefer a field of any class with that
           name (unambiguous in our programs) *)
        record env (Dep_unq ux);
        match
          List.find_opt
            (fun (c : Ast.class_decl) -> Ast.find_field c ux <> None)
            env.prog
        with
        | Some c -> Form.mk_field_read (Form.Var (qualify c.Ast.c_name ux)) obj'
        | None -> (
          match
            List.find_opt
              (fun (c : Ast.class_decl) -> Ast.find_specvar c ux <> None)
              env.prog
          with
          | Some c -> (
            let sv = Option.get (Ast.find_specvar c ux) in
            if sv.Ast.sv_def <> None && not sv.Ast.sv_ghost then
              unfold_specvar env visiting c.Ast.c_name sv (Some obj')
            else Form.mk_field_read (Form.Var (qualify c.Ast.c_name ux)) obj')
          | None -> Form.mk_field_read (go bound fld) obj')
      end
      | _ -> Form.mk_field_read (go bound fld) obj'
    end
    | Form.App (g, args) -> Form.App (go bound g, List.map (go bound) args)
    | Form.Binder (b, vars, body) ->
      let bound' =
        List.fold_left (fun s (x, _) -> Form.Sset.add x s) bound vars
      in
      Form.Binder (b, vars, go bound' body)
    | Form.TypedForm (g, ty) -> Form.TypedForm (go bound g, ty)
  in
  go Form.Sset.empty f

(* ------------------------------------------------------------------ *)
(* Expression desugaring                                               *)
(* ------------------------------------------------------------------ *)

let field_var env (e_recv : Ast.expr) (fname : string) : string =
  match jtype_of env e_recv with
  | Ast.Tclass c -> qualify c fname
  | t -> error "field %s on non-object %s" fname (Ast.jtype_to_string t)

let jtype_default (t : Ast.jtype) : Form.t =
  match t with
  | Ast.Tint -> Form.mk_int 0
  | Ast.Tbool -> Form.mk_false
  | Ast.Tvoid | Ast.Tclass _ | Ast.Tarray _ -> Form.mk_null

let rec desugar_expr env (e : Ast.expr) : Cmd.command * Form.t =
  match e with
  | Ast.Int_lit n -> (Cmd.Skip, Form.mk_int n)
  | Ast.Bool_lit b -> (Cmd.Skip, Form.mk_bool b)
  | Ast.Null_lit -> (Cmd.Skip, Form.mk_null)
  | Ast.This -> (Cmd.Skip, Form.Var "this")
  | Ast.Local x ->
    if List.assoc_opt x env.locals <> None then (Cmd.Skip, Form.Var x)
    else begin
      record env (Dep_resolve (env.cls.Ast.c_name, x));
      match Ast.find_field env.cls x with
      | Some _ ->
        let key = qualify env.cls.Ast.c_name x in
        if is_globalized env env.cls.Ast.c_name x then (Cmd.Skip, Form.Var key)
        else (Cmd.Skip, Form.mk_field_read (Form.Var key) (Form.Var "this"))
      | None -> (
        match Ast.find_specvar env.cls x with
        | Some sv when sv.Ast.sv_ghost ->
          let key = qualify env.cls.Ast.c_name x in
          if sv.Ast.sv_static || is_globalized env env.cls.Ast.c_name x then
            (Cmd.Skip, Form.Var key)
          else
            (Cmd.Skip, Form.mk_field_read (Form.Var key) (Form.Var "this"))
        | _ -> error "unbound identifier %s" x)
    end
  | Ast.Field_access (obj, "length")
    when (match jtype_of env obj with Ast.Tarray _ -> true | _ -> false) ->
    let c_obj, v_obj = desugar_expr env obj in
    ( Cmd.seq
        [ c_obj;
          Cmd.Assert (Form.mk_neq v_obj Form.mk_null, "array non-null (.length)")
        ],
      Form.mk_field_read (Form.Var array_length_var) v_obj )
  | Ast.Array_length obj ->
    let c_obj, v_obj = desugar_expr env obj in
    ( Cmd.seq
        [ c_obj;
          Cmd.Assert (Form.mk_neq v_obj Form.mk_null, "array non-null (.length)")
        ],
      Form.mk_field_read (Form.Var array_length_var) v_obj )
  | Ast.Index (arr, idx) ->
    let c_arr, v_arr = desugar_expr env arr in
    let c_idx, v_idx = desugar_expr env idx in
    let len = Form.mk_field_read (Form.Var array_length_var) v_arr in
    ( Cmd.seq
        [ c_arr;
          c_idx;
          Cmd.Assert (Form.mk_neq v_arr Form.mk_null, "array non-null");
          Cmd.Assert
            ( Form.mk_and
                [ Form.mk_le (Form.mk_int 0) v_idx; Form.mk_lt v_idx len ],
              "array index within bounds" );
        ],
      Form.mk_array_read (Form.Var array_state_var) v_arr v_idx )
  | Ast.New_array (elem_t, size) ->
    let c_size, v_size = desugar_expr env size in
    let o = fresh env "fresh_array" in
    env.locals <- (o, Ast.Tarray elem_t) :: env.locals;
    let alloc = Form.Var alloc_var in
    let i = fresh env "idx" in
    ( Cmd.seq
        [ c_size;
          Cmd.Assert
            (Form.mk_ge v_size (Form.mk_int 0), "array size non-negative");
          Cmd.Havoc [ o ];
          Cmd.Assume
            (Form.mk_and
               [ Form.mk_neq (Form.Var o) Form.mk_null;
                 Form.mk_notelem (Form.Var o) alloc;
                 Form.mk_eq
                   (Form.mk_field_read (Form.Var array_length_var) (Form.Var o))
                   v_size;
                 Form.mk_forall
                   [ (i, Ftype.Int) ]
                   (Form.mk_eq
                      (Form.mk_array_read (Form.Var array_state_var)
                         (Form.Var o) (Form.Var i))
                      (jtype_default elem_t));
               ]);
          Cmd.Assign
            (alloc_var, Form.mk_union alloc (Form.mk_singleton (Form.Var o)));
        ],
      Form.Var o )
  | Ast.Field_access (obj, f) ->
    let c_obj, v_obj = desugar_expr env obj in
    let fv = field_var env obj f in
    ( Cmd.seq
        [ c_obj;
          Cmd.Assert
            (Form.mk_neq v_obj Form.mk_null, "receiver of ." ^ f ^ " non-null")
        ],
      Form.mk_field_read (Form.Var fv) v_obj )
  | Ast.Binop (op, a, b) ->
    let ca, va = desugar_expr env a in
    let cb, vb = desugar_expr env b in
    let v =
      match op with
      | Ast.Add -> Form.mk_plus va vb
      | Ast.Sub -> Form.mk_minus va vb
      | Ast.Mul -> Form.mk_mult va vb
      | Ast.Div -> Form.App (Form.Const Form.Div, [ va; vb ])
      | Ast.Mod -> Form.App (Form.Const Form.Mod, [ va; vb ])
      | Ast.Eq -> Form.mk_eq va vb
      | Ast.Neq -> Form.mk_neq va vb
      | Ast.Lt -> Form.mk_lt va vb
      | Ast.Le -> Form.mk_le va vb
      | Ast.Gt -> Form.mk_gt va vb
      | Ast.Ge -> Form.mk_ge va vb
      | Ast.And -> Form.mk_and [ va; vb ]
      | Ast.Or -> Form.mk_or [ va; vb ]
    in
    (Cmd.seq [ ca; cb ], v)
  | Ast.Not e ->
    let c, v = desugar_expr env e in
    (c, Form.mk_not v)
  | Ast.Neg e ->
    let c, v = desugar_expr env e in
    (c, Form.mk_uminus v)
  | Ast.Cast (_, e) -> desugar_expr env e
  | Ast.New cname -> desugar_new env cname
  | Ast.Call call -> desugar_call env call

(* fresh object allocation with default field values *)
and desugar_new env (cname : string) : Cmd.command * Form.t =
  record env (Dep_class cname);
  record env (Dep_fields cname);
  record env (Dep_ctor cname);
  let o = fresh env ("fresh_" ^ cname) in
  env.locals <- (o, Ast.Tclass cname) :: env.locals;
  let alloc = Form.Var alloc_var in
  let default_field (f : Ast.field_decl) =
    let key = qualify cname f.Ast.f_name in
    let default = jtype_default f.Ast.f_type in
    Cmd.Assume (Form.mk_eq (Form.mk_field_read (Form.Var key) (Form.Var o)) default)
  in
  let defaults =
    match Ast.find_class env.prog cname with
    | Some c -> List.map default_field c.Ast.c_fields
    | None -> [] (* Object *)
  in
  let cmds =
    [ Cmd.Havoc [ o ];
      Cmd.Assume
        (Form.mk_and
           [ Form.mk_neq (Form.Var o) Form.mk_null;
             Form.mk_notelem (Form.Var o) alloc ]);
    ]
    @ defaults
    @ [ Cmd.Assign (alloc_var, Form.mk_union alloc (Form.mk_singleton (Form.Var o))) ]
  in
  (* run the constructor contract if the class declares one *)
  let ctor_cmds =
    match Ast.find_class env.prog cname with
    | Some c -> (
      match
        List.find_opt (fun m -> m.Ast.m_is_constructor) c.Ast.c_methods
      with
      | Some ctor ->
        [ apply_contract env c ctor ~recv:(Some (Form.Var o)) ~args:[]
            ~result:None ]
      | None -> [])
    | None -> []
  in
  (Cmd.seq (cmds @ ctor_cmds), Form.Var o)

(* modular call: assert pre, havoc frame, assume post *)
and apply_contract env (callee_cls : Ast.class_decl)
    (callee : Ast.method_decl) ~(recv : Form.t option) ~(args : Form.t list)
    ~(result : string option) : Cmd.command =
  let cname = callee_cls.Ast.c_name in
  record env (Dep_contract (cname, callee.Ast.m_name));
  let contract = callee.Ast.m_contract in
  (* environment for resolving the callee's contract formulas *)
  let callee_env =
    { env with cls = callee_cls; mtd = callee;
      locals = List.map (fun (t, x) -> (x, t)) callee.Ast.m_params }
  in
  let param_subst =
    List.map2 (fun (_, x) v -> (x, v)) callee.Ast.m_params args
  in
  let resolve_contract_form f =
    let resolved = resolve_form callee_env ~this:recv f in
    Form.subst_list param_subst resolved
  in
  let pre =
    match contract.Ast.requires with
    | Some f -> resolve_contract_form f
    | None -> Form.mk_true
  in
  (* the frame: what the callee may modify *)
  let frame_of_modifies (m : string) : string list * Form.t list =
    (* returns (variables to havoc, frame assumptions) *)
    let resolve_member cname member =
      record env (Dep_class cname);
      match Ast.find_class env.prog cname with
      | None -> ([ m ], [])
      | Some c -> (
        record env (Dep_resolve (cname, member));
        match Ast.find_specvar c member with
        | Some sv when sv.Ast.sv_def <> None && not sv.Ast.sv_ghost ->
          (* modifying a derived set.  Inside its own class the concrete
             footprint is havoced (the definition unfolds over it);
             from outside, the abstract variable itself is state. *)
          let footprint =
            if cname = env.home then begin
              record env (Dep_fields cname);
              class_footprint env.prog cname
            end
            else [ qualify cname member; alloc_var ]
          in
          let frame =
            match recv with
            | Some r when not sv.Ast.sv_static ->
              (* ALL v. v ~= recv & v : old alloc -> v..sv = old(v..sv) *)
              let v = fresh env "frame" in
              let sv_at who =
                unfold_specvar env [] cname sv (Some who)
              in
              let unchanged =
                Form.mk_forall
                  [ (v, Ftype.Obj) ]
                  (Form.mk_impl
                     (Form.mk_and
                        [ Form.mk_neq (Form.Var v) r;
                          Form.mk_elem (Form.Var v)
                            (Form.mk_old (Form.Var alloc_var)) ])
                     (Form.mk_eq (sv_at (Form.Var v))
                        (Form.mk_old (sv_at (Form.Var v)))))
              in
              [ unchanged ]
            | _ -> []
          in
          (footprint, frame)
        | Some sv ->
          (* ghost/abstract specvar: instance ghosts get the same
             other-instances-unchanged frame as derived sets *)
          if sv.Ast.sv_static || is_globalized env cname member then
            ([ qualify cname member ], [])
          else begin
            let frame =
              match recv with
              | Some r ->
                let v = fresh env "frame" in
                let key = Form.Var (qualify cname member) in
                let at who = Form.mk_field_read key who in
                [ Form.mk_forall
                    [ (v, Ftype.Obj) ]
                    (Form.mk_impl
                       (Form.mk_and
                          [ Form.mk_neq (Form.Var v) r;
                            Form.mk_elem (Form.Var v)
                              (Form.mk_old (Form.Var alloc_var)) ])
                       (Form.mk_eq (at (Form.Var v))
                          (Form.mk_old (at (Form.Var v))))) ]
              | None -> []
            in
            ([ qualify cname member ], frame)
          end
        | None -> (
          match Ast.find_field c member with
          | Some f ->
            if f.Ast.f_static || is_globalized env cname member then
              ([ qualify cname member ], [])
            else ([ qualify cname member ], [])
          | None -> ([ m ], [])))
    in
    if String.contains m '.' then begin
      let i = String.index m '.' in
      resolve_member (String.sub m 0 i)
        (String.sub m (i + 1) (String.length m - i - 1))
    end
    else resolve_member cname m
  in
  let havocs, frames =
    List.fold_left
      (fun (hs, fs) m ->
        let h, f = frame_of_modifies m in
        (hs @ h, fs @ f))
      ([], []) contract.Ast.modifies
  in
  (* calls may allocate: the allocation set grows *)
  let havocs = List.sort_uniq compare (alloc_var :: havocs) in
  let alloc_growth =
    Form.mk_subseteq (Form.mk_old (Form.Var alloc_var)) (Form.Var alloc_var)
  in
  let res_var, res_assign =
    match result, callee.Ast.m_ret with
    | Some x, _ -> (Some x, [])
    | None, Ast.Tvoid -> (None, [])
    | None, _ ->
      let r = fresh env "res" in
      (Some r, [])
  in
  ignore res_assign;
  let post =
    match contract.Ast.ensures with
    | Some f ->
      let resolved = resolve_contract_form f in
      let resolved =
        match res_var with
        | Some r -> Form.subst1 "result" (Form.Var r) resolved
        | None -> resolved
      in
      resolved
    | None -> Form.mk_true
  in
  let post_with_frame = Form.mk_and ((post :: frames) @ [ alloc_growth ]) in
  (* snapshot state variables mentioned under old *)
  let state_vars = havocs in
  let snapshot_pairs =
    List.map (fun v -> (v, fresh env ("pre_" ^ String.map (fun c -> if c = '.' then '_' else c) v))) state_vars
  in
  let snapshot_cmds =
    List.map (fun (v, pv) -> Cmd.Assign (pv, Form.Var v)) snapshot_pairs
  in
  (* old e -> e with state vars replaced by their snapshots *)
  let eliminate_old (f : Form.t) : Form.t =
    let rename_state g =
      Form.subst_list
        (List.map (fun (v, pv) -> (v, Form.Var pv)) snapshot_pairs)
        g
    in
    Form.map_bottom_up
      (fun g ->
        match g with
        | Form.App (Form.Const Form.Old, [ inner ]) -> rename_state inner
        | _ -> g)
      f
  in
  let post_final = eliminate_old post_with_frame in
  let havoc_res =
    match res_var with Some r -> [ Cmd.Havoc [ r ] ] | None -> []
  in
  Cmd.seq
    (snapshot_cmds
    @ [ Cmd.Assert
          (pre, Printf.sprintf "precondition of %s.%s" cname callee.Ast.m_name)
      ]
    @ [ Cmd.Havoc havocs ]
    @ havoc_res
    @ [ Cmd.Assume post_final ])

and desugar_call env (call : Ast.call) : Cmd.command * Form.t =
  let callee_cls, callee = resolve_call env call in
  let recv_cmd, recv_val =
    match call.Ast.call_recv with
    | Some (Ast.Local x)
      when List.assoc_opt x env.locals = None
           && Ast.find_field env.cls x = None
           && Ast.find_class env.prog x <> None ->
      (Cmd.Skip, None) (* static call C.m() *)
    | Some recv ->
      let c, v = desugar_expr env recv in
      ( Cmd.seq
          [ c;
            Cmd.Assert
              ( Form.mk_neq v Form.mk_null,
                "receiver of call to " ^ call.Ast.call_name ^ " non-null" );
          ],
        Some v )
    | None ->
      if callee.Ast.m_static then (Cmd.Skip, None)
      else (Cmd.Skip, Some (Form.Var "this"))
  in
  let arg_cmds, arg_vals =
    List.fold_left
      (fun (cs, vs) a ->
        let c, v = desugar_expr env a in
        (cs @ [ c ], vs @ [ v ]))
      ([], []) call.Ast.call_args
  in
  let result_var =
    match callee.Ast.m_ret with
    | Ast.Tvoid -> None
    | t ->
      let r = fresh env ("call_" ^ call.Ast.call_name) in
      env.locals <- (r, t) :: env.locals;
      Some r
  in
  let contract_cmd =
    apply_contract env callee_cls callee ~recv:recv_val ~args:arg_vals
      ~result:result_var
  in
  let result_form =
    match result_var with
    | Some r -> Form.Var r
    | None -> Form.mk_true (* void in expression position: unused *)
  in
  (Cmd.seq ([ recv_cmd ] @ arg_cmds @ [ contract_cmd ]), result_form)

(* ------------------------------------------------------------------ *)
(* Statement desugaring                                                *)
(* ------------------------------------------------------------------ *)

let rec desugar_stmts env (stmts : Ast.stmt list) : Cmd.command =
  Cmd.seq (List.map (desugar_stmt env) stmts)

and desugar_stmt env (s : Ast.stmt) : Cmd.command =
  match s with
  | Ast.Block b -> desugar_stmts env b
  | Ast.Var_decl (ty, x, init) ->
    env.locals <- (x, ty) :: env.locals;
    (match init with
    | None -> Cmd.Havoc [ x ]
    | Some e ->
      let c, v = desugar_expr env e in
      Cmd.seq [ c; Cmd.Assign (x, v) ])
  | Ast.Assign (Ast.Lhs_local x, e) ->
    let c, v = desugar_expr env e in
    if List.assoc_opt x env.locals <> None then Cmd.seq [ c; Cmd.Assign (x, v) ]
    else begin
      (* unqualified field or globalized member *)
      record env (Dep_resolve (env.cls.Ast.c_name, x));
      match Ast.find_field env.cls x, Ast.find_specvar env.cls x with
      | Some _, _ ->
        let key = qualify env.cls.Ast.c_name x in
        if is_globalized env env.cls.Ast.c_name x then
          Cmd.seq [ c; Cmd.Assign (key, v) ]
        else
          Cmd.seq
            [ c;
              Cmd.Assign
                ( key,
                  Form.mk_field_write (Form.Var key) (Form.Var "this") v );
            ]
      | None, Some sv when sv.Ast.sv_ghost ->
        error "ghost variable %s must be assigned with //: %s := ..." x x
      | None, _ -> error "unbound assignment target %s" x
    end
  | Ast.Assign (Ast.Lhs_index (arr, idx), e) ->
    let c_arr, v_arr = desugar_expr env arr in
    let c_idx, v_idx = desugar_expr env idx in
    let c_val, v_val = desugar_expr env e in
    let len = Form.mk_field_read (Form.Var array_length_var) v_arr in
    Cmd.seq
      [ c_arr;
        c_idx;
        c_val;
        Cmd.Assert (Form.mk_neq v_arr Form.mk_null, "array non-null (store)");
        Cmd.Assert
          ( Form.mk_and
              [ Form.mk_le (Form.mk_int 0) v_idx; Form.mk_lt v_idx len ],
            "array store index within bounds" );
        Cmd.Assign
          ( array_state_var,
            Form.mk_array_write (Form.Var array_state_var) v_arr v_idx v_val
          );
      ]
  | Ast.Assign (Ast.Lhs_field (obj, f), e) ->
    let c_obj, v_obj = desugar_expr env obj in
    let c_val, v_val = desugar_expr env e in
    let key = field_var env obj f in
    Cmd.seq
      [ c_obj;
        c_val;
        Cmd.Assert (Form.mk_neq v_obj Form.mk_null, "assignment receiver non-null");
        Cmd.Assign (key, Form.mk_field_write (Form.Var key) v_obj v_val);
      ]
  | Ast.Expr_stmt e ->
    let c, _ = desugar_expr env e in
    c
  | Ast.If (cond, then_b, else_b) ->
    let c, v = desugar_expr env cond in
    let t = desugar_stmts env then_b in
    let f = desugar_stmts env else_b in
    Cmd.seq
      [ c;
        Cmd.Choice
          (Cmd.seq [ Cmd.Assume v; t ], Cmd.seq [ Cmd.Assume (Form.mk_not v); f ]);
      ]
  | Ast.While (inv, cond, body) ->
    let c, v = desugar_expr env cond in
    let inv =
      Option.map (fun f -> resolve_form env ~this:(this_of env) f) inv
    in
    let b = desugar_stmts env body in
    Cmd.Loop
      { loop_invariant = inv; loop_cond = v; loop_prelude = c; loop_body = b }
  | Ast.Return None -> Cmd.Skip
  | Ast.Return (Some e) ->
    let c, v = desugar_expr env e in
    Cmd.seq [ c; Cmd.Assign ("result", v) ]
  | Ast.Spec sp -> (
    let resolve f = resolve_form env ~this:(this_of env) f in
    match sp with
    | Ast.Ghost_assign (x, f) -> begin
      let rhs = resolve f in
      record env (Dep_resolve (env.cls.Ast.c_name, x));
      match Ast.find_specvar env.cls x with
      | Some sv when sv.Ast.sv_ghost ->
        let key = qualify env.cls.Ast.c_name x in
        if sv.Ast.sv_static || is_globalized env env.cls.Ast.c_name x then
          Cmd.Assign (key, rhs)
        else
          Cmd.Assign
            (key, Form.mk_field_write (Form.Var key) (Form.Var "this") rhs)
      | Some _ -> error "ghost assignment to non-ghost specvar %s" x
      | None ->
        if List.assoc_opt x env.locals <> None then Cmd.Assign (x, rhs)
        else error "ghost assignment to unknown variable %s" x
    end
    | Ast.Assert_spec (lbl, f) ->
      Cmd.Assert (resolve f, Option.value lbl ~default:"assert annotation")
    | Ast.Assume_spec (_, f) -> Cmd.Assume (resolve f)
    | Ast.Note_that (lbl, f) ->
      let rf = resolve f in
      Cmd.seq
        [ Cmd.Assert (rf, Option.value lbl ~default:"noteThat");
          Cmd.Assume rf ]
    | Ast.Loop_invariant _ -> Cmd.Skip (* consumed by the while parser *))

and this_of env = if env.mtd.Ast.m_static then None else Some (Form.Var "this")

(* ------------------------------------------------------------------ *)
(* Method tasks                                                        *)
(* ------------------------------------------------------------------ *)

type method_task = {
  task_name : string; (* "List.add" *)
  task_command : Cmd.command; (* entry assumptions .. body .. exit asserts *)
  task_state_vars : string list;
  task_seeds : Form.t list;
      (* resolved contract/invariant formulas: the candidate vocabulary
         for loop-invariant inference *)
  task_deps : dep list;
      (* everything beyond the method's own AST that desugaring read,
         sorted and deduplicated — the invalidation set for incremental
         re-verification *)
}

(* snapshot-based old-elimination for the method's own contract *)
let eliminate_old_with (pairs : (string * string) list) (f : Form.t) : Form.t =
  let rename g =
    Form.subst_list (List.map (fun (v, pv) -> (v, Form.Var pv)) pairs) g
  in
  Form.map_bottom_up
    (fun g ->
      match g with
      | Form.App (Form.Const Form.Old, [ inner ]) -> rename inner
      | _ -> g)
    f

(** Build the proof task for one method: assume precondition and
    invariants, desugar the body, assert postcondition and invariants. *)
let method_task (prog : Ast.program) (cls : Ast.class_decl)
    (mtd : Ast.method_decl) : method_task =
  let globalized = compute_globalized prog in
  let env =
    { prog; home = cls.Ast.c_name; cls; mtd; globalized;
      deps = Hashtbl.create 16;
      locals = List.map (fun (t, x) -> (x, t)) mtd.Ast.m_params;
      counter = 0 }
  in
  (* the enclosing class's invariants are assumed on entry and asserted
     on exit; constructors additionally read the field list for default
     values *)
  record env (Dep_inv cls.Ast.c_name);
  if mtd.Ast.m_is_constructor then record env (Dep_fields cls.Ast.c_name);
  let this = this_of env in
  let resolve f = resolve_form env ~this f in
  let state_vars = program_state_vars prog env.home globalized in
  (* snapshots for old *)
  let snapshot_pairs =
    List.map
      (fun v ->
        (v, "old_" ^ String.map (fun c -> if c = '.' then '_' else c) v))
      state_vars
  in
  let snapshots =
    List.map (fun (v, pv) -> Cmd.Assign (pv, Form.Var v)) snapshot_pairs
  in
  let invariants =
    List.map resolve cls.Ast.c_invariants
  in
  (* background axiom: global object references are allocated (or null) —
     the usual well-formed-heap assumption *)
  let background =
    List.concat_map
      (fun (c : Ast.class_decl) ->
        List.filter_map
          (fun (f : Ast.field_decl) ->
            match f.Ast.f_type with
            | (Ast.Tclass _ | Ast.Tarray _)
              when f.Ast.f_static || is_globalized env c.Ast.c_name f.Ast.f_name
              ->
              let g = Form.Var (qualify c.Ast.c_name f.Ast.f_name) in
              Some
                (Form.mk_impl
                   (Form.mk_neq g Form.mk_null)
                   (Form.mk_elem g (Form.Var alloc_var)))
            | _ -> None)
          c.Ast.c_fields)
      prog
  in
  let pre =
    (match mtd.Ast.m_contract.Ast.requires with
    | Some f -> [ resolve f ]
    | None -> [])
    @ invariants
    @ background
    @
    match this with
    | Some t ->
      [ Form.mk_neq t Form.mk_null;
        Form.mk_elem t (Form.Var alloc_var) ]
    | None -> []
  in
  (* constructors start from a fresh object with default fields *)
  let ctor_assumptions =
    if not mtd.Ast.m_is_constructor then []
    else begin
      let this_v = Form.Var "this" in
      List.map
        (fun (f : Ast.field_decl) ->
          let key = qualify cls.Ast.c_name f.Ast.f_name in
          let default = jtype_default f.Ast.f_type in
          Cmd.Assume (Form.mk_eq (Form.mk_field_read (Form.Var key) this_v) default))
        cls.Ast.c_fields
    end
  in
  (* constructors do not assume the class invariant on entry *)
  let pre =
    if mtd.Ast.m_is_constructor then
      (match mtd.Ast.m_contract.Ast.requires with
      | Some f -> [ resolve f ]
      | None -> [])
      @ [ Form.mk_neq (Form.Var "this") Form.mk_null ]
    else pre
  in
  let elim = eliminate_old_with snapshot_pairs in
  let body =
    match mtd.Ast.m_body with
    | Some b ->
      (* body annotations may also mention [old] *)
      Cmd.map_formulas elim (desugar_stmts env b)
    | None -> Cmd.Skip
  in
  let post_asserts =
    (match mtd.Ast.m_contract.Ast.ensures with
    | Some f ->
      [ Cmd.Assert
          (elim (resolve f), Printf.sprintf "postcondition of %s" mtd.Ast.m_name)
      ]
    | None -> [])
    @ List.mapi
        (fun i inv ->
          Cmd.Assert
            (elim inv, Printf.sprintf "invariant %d of %s preserved" (i + 1)
               cls.Ast.c_name))
        invariants
  in
  let command =
    Cmd.seq
      (snapshots
      @ ctor_assumptions
      @ List.map (fun f -> Cmd.Assume f) pre
      @ [ body ]
      @ post_asserts)
  in
  let seeds =
    pre
    @ invariants
    @ (match mtd.Ast.m_contract.Ast.ensures with
      | Some f -> [ elim (resolve f) ]
      | None -> [])
  in
  {
    task_name = qualify cls.Ast.c_name mtd.Ast.m_name;
    task_command = command;
    task_state_vars = state_vars;
    task_seeds = seeds;
    task_deps =
      List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) env.deps []);
  }

(** All proof tasks of a program (methods with bodies). *)
let program_tasks (prog : Ast.program) : method_task list =
  List.concat_map
    (fun (c : Ast.class_decl) ->
      List.filter_map
        (fun (m : Ast.method_decl) ->
          match m.Ast.m_body with
          | Some _ -> Some (method_task prog c m)
          | None -> None)
        c.Ast.c_methods)
    prog
