(** Field constraint analysis and the MONA route.

    Two pieces, matching the paper's Section 3:

    1. {b Field constraint analysis} (Wies-Kuncak-Lam-Podelski-Rinard,
       VMCAI'06 [80]): derived fields — fields constrained by an invariant
       of the form [ALL x y. x..d = y --> phi(x, y)] rather than part of
       the tree backbone — cannot go to MONA directly.  {!eliminate_derived}
       replaces every read of such a field with a fresh variable plus an
       instantiated occurrence of its constraint, after which only backbone
       fields remain.

    2. {b The MONA route}: sequents in the list fragment — equalities,
       single-backbone field reads, [rtrancl_pt] reachability, and set
       operations — translate to WS1S over the backbone word: an object
       variable becomes a first-order position, [null] a distinguished end
       position, [x..next = y] the successor relation, reachability the
       order, and object sets second-order variables.  This is the
       PALE-style word model of a singly linked list; the route applies
       only when every heap atom speaks about the one backbone field. *)

open Logic

exception Not_applicable of string

let reject fmt = Format.kasprintf (fun s -> raise (Not_applicable s)) fmt

(* ------------------------------------------------------------------ *)
(* Field constraint analysis                                           *)
(* ------------------------------------------------------------------ *)

(** Does this hypothesis define a field constraint on [d]?  Shape:
    [ALL x y. x..d = y --> phi]  (or with the equality reversed). *)
let field_constraint_of (h : Form.t) : (string * (string * string * Form.t)) option =
  match Form.strip_types h with
  | Form.Binder (Form.Forall, [ (x, _); (y, _) ], body) -> (
    match Form.strip_types body with
    | Form.App (Form.Const Form.Impl, [ lhs; phi ]) -> (
      match Form.strip_types lhs with
      | Form.App (Form.Const Form.Eq, [ read; Form.Var y' ])
        when y' = y -> (
        match Form.strip_types read with
        | Form.App (Form.Const Form.FieldRead, [ Form.Var d; Form.Var x' ])
          when x' = x ->
          Some (d, (x, y, phi))
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

(** Eliminate reads of the derived field [d] from [f]: every subterm
    [fieldRead d t] becomes a fresh variable [v], and [phi[x:=t, y:=v]] is
    added as a hypothesis.  Returns the rewritten formula and the new
    hypotheses. *)
let eliminate_derived ~(field : string) ~(constraint_ : string * string * Form.t)
    (f : Form.t) : Form.t * Form.t list =
  let x, y, phi = constraint_ in
  let extra = ref [] in
  let memo = ref [] in
  let rec rewrite (g : Form.t) : Form.t =
    match g with
    | Form.App (Form.Const Form.FieldRead, [ Form.Var d; t ]) when d = field ->
      let t = rewrite t in
      (* memoize so the same read gets the same name *)
      let v =
        match List.find_opt (fun (t', _) -> Form.equal t t') !memo with
        | Some (_, v) -> v
        | None ->
          let v = Form.fresh_name ("d_" ^ String.map (fun c -> if c = '.' then '_' else c) field) in
          memo := (t, v) :: !memo;
          extra :=
            Form.subst_list_shared [ (x, t); (y, Form.Var v) ] phi :: !extra;
          v
      in
      Form.Var v
    | Form.App (h, args) -> Form.App (rewrite h, List.map rewrite args)
    | Form.Binder (b, vars, body) -> Form.Binder (b, vars, rewrite body)
    | Form.TypedForm (g, ty) -> Form.TypedForm (rewrite g, ty)
    | Form.Var _ | Form.Const _ -> g
  in
  let f' = rewrite f in
  (f', !extra)

(** Apply field constraint analysis to a sequent: find field-constraint
    hypotheses and eliminate the corresponding derived-field reads from
    the goal and the remaining hypotheses. *)
let analyze_sequent (s : Sequent.t) : Sequent.t =
  let constraints = List.filter_map field_constraint_of s.Sequent.hyps in
  match constraints with
  | [] -> s
  | _ ->
    let eliminate_all (f : Form.t) : Form.t * Form.t list =
      List.fold_left
        (fun (g, extras) (d, c) ->
          let g', more = eliminate_derived ~field:d ~constraint_:c g in
          (g', extras @ more))
        (f, []) constraints
    in
    let goal', goal_extras = eliminate_all s.Sequent.goal in
    let hyps', hyp_extras =
      List.fold_left
        (fun (hs, extras) h ->
          if field_constraint_of h <> None then (hs, extras)
          else
            let h', more = eliminate_all h in
            (hs @ [ h' ], extras @ more))
        ([], []) s.Sequent.hyps
    in
    { s with
      Sequent.hyps = hyps' @ goal_extras @ hyp_extras;
      goal = goal' }

(* ------------------------------------------------------------------ *)
(* The list-backbone WS1S translation                                  *)
(* ------------------------------------------------------------------ *)

module W = Mona.Ws1s

type wctx = {
  mutable backbone : string option; (* the single next-like field *)
  mutable obj_vars : string list; (* translated to FO positions *)
  mutable set_vars : string list; (* translated to SO variables *)
}

let null_pos = "$null"

let pos_of x = "p_" ^ x

let note_obj ctx x =
  if not (List.mem x ctx.obj_vars) then ctx.obj_vars <- x :: ctx.obj_vars

let note_set ctx x =
  if not (List.mem x ctx.set_vars) then ctx.set_vars <- x :: ctx.set_vars

let note_backbone ctx f =
  match ctx.backbone with
  | None -> ctx.backbone <- Some f
  | Some g -> if f <> g then reject "two backbone fields: %s and %s" g f

(* Positions beyond null are not objects: every set variable must live
   inside [{0..null}], and every free object variable at a position
   [<= null].  Without the set restriction MONA could satisfy [x : u]
   under a hypothesis forcing [u] empty-as-an-object-set by placing the
   witness past null (fuzzer finding conflict:fol>mona on
   [t = u |- EX q. t <= s | q : u]). *)
let range_hyps ctx : W.t list =
  List.map (fun x -> W.Pred (W.LeqF (pos_of x, null_pos))) ctx.obj_vars
  @ List.map
      (fun x ->
        W.All1
          ( "$range",
            W.Impl
              ( W.Pred (W.In ("$range", "S_" ^ x)),
                W.Pred (W.LeqF ("$range", null_pos)) ) ))
      ctx.set_vars

(* an object term must be a variable or null after simplification *)
let obj_pos ctx (f : Form.t) : string =
  match Form.strip_types f with
  | Form.Var x ->
    note_obj ctx x;
    pos_of x
  | Form.Const Form.Null -> null_pos
  | g -> reject "object term too complex for the MONA route: %s" (Pprint.to_string g)

(* is this lambda the step relation of the backbone field?
   (% u v. u..f = v)  *)
let backbone_of_lambda (p : Form.t) : string option =
  match Form.strip_types p with
  | Form.Binder (Form.Lambda, [ (u, _); (v, _) ], body) -> (
    match Form.strip_types body with
    | Form.App (Form.Const Form.Eq, [ lhs; Form.Var v' ]) when v' = v -> (
      match Form.strip_types lhs with
      | Form.App (Form.Const Form.FieldRead, [ Form.Var f; Form.Var u' ])
        when u' = u ->
        Some f
      | _ -> None)
    | _ -> None)
  | _ -> None

let rec trans (ctx : wctx) (bound : (string * [ `Obj | `Set ]) list)
    (f : Form.t) : W.t =
  let t = trans ctx in
  match Form.strip_types f with
  | Form.Const (Form.BoolLit true) -> W.True
  | Form.Const (Form.BoolLit false) -> W.False
  | Form.App (Form.Const Form.Not, [ g ]) -> W.Not (t bound g)
  | Form.App (Form.Const Form.And, gs) -> W.And (List.map (t bound) gs)
  | Form.App (Form.Const Form.Or, gs) -> W.Or (List.map (t bound) gs)
  | Form.App (Form.Const Form.Impl, [ a; b ]) -> W.Impl (t bound a, t bound b)
  | Form.App (Form.Const Form.Iff, [ a; b ]) -> W.Iff (t bound a, t bound b)
  | Form.Binder (Form.Forall, vars, body) ->
    (* object quantifiers range over positions up to null *)
    List.fold_right
      (fun (x, _) acc ->
        W.All1
          ( pos_of x,
            W.Impl (W.Pred (W.LeqF (pos_of x, null_pos)), acc) ))
      vars
      (t (List.map (fun (x, _) -> (x, `Obj)) vars @ bound) body)
  | Form.Binder (Form.Exists, vars, body) ->
    List.fold_right
      (fun (x, _) acc ->
        W.Ex1
          ( pos_of x,
            W.And [ W.Pred (W.LeqF (pos_of x, null_pos)); acc ] ))
      vars
      (t (List.map (fun (x, _) -> (x, `Obj)) vars @ bound) body)
  | Form.App (Form.Const Form.Eq, [ a; b ]) -> trans_eq ctx bound a b
  | Form.App (Form.Const Form.Elem, [ x; s ]) ->
    let px = obj_pos_b ctx bound x in
    let sv = set_var ctx bound s in
    W.Pred (W.In (px, sv))
  | Form.App (Form.Const Form.Subseteq, [ a; b ]) ->
    W.Pred (W.Sub (set_var ctx bound a, set_var ctx bound b))
  | Form.App (Form.Const Form.Rtrancl, [ p; a; b ]) -> (
    match backbone_of_lambda p with
    | Some f ->
      note_backbone ctx f;
      (* reachability along the chain is the position order *)
      W.Pred (W.LeqF (obj_pos_b ctx bound a, obj_pos_b ctx bound b))
    | None -> reject "rtrancl over a non-backbone relation")
  | Form.App (Form.Const Form.Tree, _) ->
    (* the backbone of a word model is an acyclic unshared chain *)
    W.True
  | g -> reject "atom outside the MONA fragment: %s" (Pprint.to_string g)

and obj_pos_b ctx bound (f : Form.t) : string =
  match Form.strip_types f with
  | Form.Var x when List.mem_assoc x bound -> pos_of x
  | _ -> obj_pos ctx f

and set_var ctx bound (f : Form.t) : string =
  match Form.strip_types f with
  | Form.Var x ->
    if List.mem_assoc x bound then "S_" ^ x
    else begin
      note_set ctx x;
      "S_" ^ x
    end
  | g -> reject "set term too complex for the MONA route: %s" (Pprint.to_string g)

and trans_eq ctx bound (a : Form.t) (b : Form.t) : W.t =
  (* x..f = y / y = x..f: successor along the backbone, with null as the
     chain end; x = y / x = null: position equality *)
  let as_read (g : Form.t) =
    match Form.strip_types g with
    | Form.App (Form.Const Form.FieldRead, [ Form.Var f; obj ]) -> Some (f, obj)
    | _ -> None
  in
  match as_read a, as_read b with
  | Some (f, obj), None | None, Some (f, obj) ->
    note_backbone ctx f;
    let other = match as_read a with Some _ -> b | None -> a in
    let po = obj_pos_b ctx bound obj in
    let pv = obj_pos_b ctx bound other in
    (* obj..f = v: either obj is a live node and v its successor, or obj
       is null and (by the null..f = null convention) so is v *)
    W.Or
      [ W.And [ W.Pred (W.LessF (po, null_pos)); W.Pred (W.SuccF (pv, po)) ];
        W.And
          [ W.Pred (W.EqF (po, null_pos)); W.Pred (W.EqF (pv, null_pos)) ];
      ]
  | Some _, Some _ -> reject "read = read equality needs flattening"
  | None, None -> (
    (* object or set equality *)
    match Form.strip_types a, Form.strip_types b with
    | sa, _ when is_set_side ctx bound sa ->
      W.Pred (W.EqS (set_var ctx bound a, set_var ctx bound b))
    | _, sb when is_set_side ctx bound sb ->
      W.Pred (W.EqS (set_var ctx bound a, set_var ctx bound b))
    | _ ->
      W.Pred (W.EqF (obj_pos_b ctx bound a, obj_pos_b ctx bound b)))

and is_set_side ctx bound (g : Form.t) : bool =
  match g with
  | Form.Var x -> (
    List.mem x ctx.set_vars
    || match List.assoc_opt x bound with Some `Set -> true | _ -> false)
  | _ -> false

(** Translate a sequent into a WS1S validity question over the backbone
    word model.  Raises {!Not_applicable} outside the fragment. *)
let translate_sequent (s : Sequent.t) : W.t * string list =
  let ctx = { backbone = None; obj_vars = []; set_vars = [] } in
  let hyps = List.map (trans ctx []) s.Sequent.hyps in
  let goal = trans ctx [] s.Sequent.goal in
  (* free object variables and set variables live inside {0..null} *)
  let formula = W.Impl (W.And (range_hyps ctx @ hyps), goal) in
  let fo = null_pos :: List.map pos_of ctx.obj_vars in
  (formula, fo)

(* ------------------------------------------------------------------ *)
(* The prover                                                          *)
(* ------------------------------------------------------------------ *)

(* When backbone atoms occur, the word model is sound only if every free
   object variable provably lies on the one chain: each must appear in a
   hypothesis [rtrancl f h x] from a common head, be the head itself, or
   be equated with null.  Pure monadic (set) sequents need no check. *)
let chain_rooted (s : Sequent.t) (obj_vars : string list) : bool =
  let reach_pairs =
    List.filter_map
      (fun h ->
        match Form.strip_types h with
        | Form.App (Form.Const Form.Rtrancl, [ _; a; b ]) -> (
          match Form.strip_types a, Form.strip_types b with
          | Form.Var x, Form.Var y -> Some (x, y)
          | _ -> None)
        | _ -> None)
      s.Sequent.hyps
  in
  let null_like x =
    List.exists
      (fun h ->
        match Form.strip_types h with
        | Form.App (Form.Const Form.Eq, [ Form.Var v; Form.Const Form.Null ])
        | Form.App (Form.Const Form.Eq, [ Form.Const Form.Null; Form.Var v ])
          ->
          v = x
        | _ -> false)
      s.Sequent.hyps
  in
  (* successor facts x..f = y root y when x is rooted *)
  let succ_pairs =
    List.filter_map
      (fun h ->
        match Form.strip_types h with
        | Form.App (Form.Const Form.Eq, [ a; b ]) -> (
          let read g =
            match Form.strip_types g with
            | Form.App (Form.Const Form.FieldRead, [ _; Form.Var x ]) -> Some x
            | _ -> None
          in
          match read a, Form.strip_types b, read b, Form.strip_types a with
          | Some x, Form.Var y, _, _ | _, _, Some x, Form.Var y -> Some (x, y)
          | _ -> None)
        | _ -> None)
      s.Sequent.hyps
  in
  match reach_pairs with
  | [] -> obj_vars = [] (* no chain facts: only allowed without obj vars *)
  | (h0, _) :: _ ->
    let rooted = ref [ h0 ] in
    let grow () =
      let changed = ref false in
      let add x =
        if not (List.mem x !rooted) then begin
          rooted := x :: !rooted;
          changed := true
        end
      in
      List.iter
        (fun (a, b) -> if List.mem a !rooted then add b)
        (reach_pairs @ succ_pairs);
      !changed
    in
    while grow () do () done;
    List.for_all
      (fun x -> List.mem x !rooted || null_like x)
      obj_vars

let max_sequent_size = 400 (* automata products blow up beyond this *)

(** The full admission pipeline shared by {!prove} and {!in_fragment}:
    simplification, size limit, field constraint analysis, translation to
    the word model, and the chain-rootedness side condition.  Returns the
    WS1S validity question with its first-order variables, or the reason
    the sequent falls outside the route. *)
let route_sequent (s : Sequent.t) : (W.t * string list, string) result =
  match
    let s =
      { s with
        Sequent.hyps = List.map Simplify.simplify s.Sequent.hyps;
        goal = Simplify.simplify s.Sequent.goal }
    in
    let size =
      List.fold_left
        (fun n h -> n + Form.size_shared h)
        (Form.size_shared s.Sequent.goal)
        s.Sequent.hyps
    in
    if size > max_sequent_size then reject "sequent too large (%d nodes)" size;
    let s = analyze_sequent s in
    let ctx = { backbone = None; obj_vars = []; set_vars = [] } in
    (* Sort-driven pre-pass: register every set-typed free variable before
       any atom translates.  Without it the reading of an equality [s = t]
       depended on whether a membership atom had already mentioned [s] or
       [t] — a set equality appearing first was translated as *position*
       equality, disconnected from the second-order variables, and MONA
       reported spurious word-model countermodels (fuzzer finding
       conflict:fol>mona on [t = s |- t <= s]). *)
    (match Typecheck.infer (Sequent.to_form s) with
    | _, _, free ->
      Typecheck.Smap.iter
        (fun x ty -> match ty with Ftype.Set _ -> note_set ctx x | _ -> ())
        free
    | exception Typecheck.Type_error _ -> ());
    let hyps = List.map (trans ctx []) s.Sequent.hyps in
    let goal = trans ctx [] s.Sequent.goal in
    let formula = W.Impl (W.And (range_hyps ctx @ hyps), goal) in
    let fo = null_pos :: List.map pos_of ctx.obj_vars in
    if ctx.backbone <> None && not (chain_rooted s ctx.obj_vars) then
      reject "object variables not rooted in one chain";
    (formula, fo)
  with
  | r -> Ok r
  | exception Not_applicable what -> Error what

(** Does the sequent lie in the MONA route's fragment (and satisfy its
    soundness side conditions)? *)
let in_fragment (s : Sequent.t) : bool =
  match route_sequent s with Ok _ -> true | Error _ -> false

(** [prove_with ?engine s]: decide through a specific automata engine
    ([engine] defaults to {!Mona.Ws1s.set_default_engine}'s choice) —
    the A/B hook for the fuzzer and the mona bench. *)
let prove_with ?engine (s : Sequent.t) : Sequent.verdict =
  match route_sequent s with
  | Error what -> Sequent.Unknown ("MONA route: " ^ what)
  | Ok (formula, fo) ->
    if W.valid ?engine ~fo formula then Sequent.Valid
    else
      (* a word countermodel is a genuine singly-linked-list countermodel *)
      Sequent.Invalid "MONA route: word-model countermodel"

let prove (s : Sequent.t) : Sequent.verdict = prove_with s

let prover : Sequent.prover =
  Sequent.traced_prover { prover_name = "mona"; prove }
