(** Cooperative deadlines and cancellation for long-running provers.

    OCaml cannot interrupt pure computation from the outside, so every
    search loop in the portfolio (DPLL decisions, resolution iterations,
    Cooper elimination steps, automata product construction) polls
    {!check} at its loop head.  A caller that wants to bound or abort the
    computation binds a {!type:token} around it with {!with_token}; once
    the token's deadline passes — or someone calls {!cancel}, e.g. a
    dispatcher whose racing sibling already settled the goal — the next
    {!check} in that thread raises {!Expired} and the search unwinds.

    Tokens nest (budgets inside races): a child token created with
    [?parent] expires as soon as any ancestor does, so cancelling a race
    reaches through the budget wrapper's helper thread.

    Cost model: {!check} is a single atomic load while no token is bound
    anywhere in the process (the common, un-budgeted case), and one
    mutex-protected table lookup plus a clock read otherwise.  The clock
    read is throttled — only every [clock_stride] polls — because some
    loops checkpoint every few hundred nanoseconds. *)

exception Expired

type t = {
  deadline : float; (* absolute, monotonic [Clock.now] basis; [infinity] = none *)
  cancelled : bool Atomic.t;
  parent : t option;
  checkpoints : int Atomic.t; (* polls observed under this token *)
  skew : int Atomic.t; (* polls since the last clock read *)
}

let make ?deadline_in ?parent () : t =
  let deadline =
    match deadline_in with
    | None -> infinity
    | Some d -> Clock.now () +. d
  in
  { deadline;
    cancelled = Atomic.make false;
    parent;
    checkpoints = Atomic.make 0;
    skew = Atomic.make 0 }

let cancel (t : t) : unit = Atomic.set t.cancelled true

(** How many times {!check} ran under this token — lets tests observe
    that a cancelled prover genuinely stopped checkpointing. *)
let checkpoints (t : t) : int = Atomic.get t.checkpoints

let rec cancel_requested (t : t) : bool =
  Atomic.get t.cancelled
  || (match t.parent with Some p -> cancel_requested p | None -> false)

(* the earliest deadline along the parent chain *)
let rec horizon (t : t) : float =
  match t.parent with
  | None -> t.deadline
  | Some p -> Float.min t.deadline (horizon p)

(* ------------------------------------------------------------------ *)
(* Thread binding                                                      *)
(* ------------------------------------------------------------------ *)

(* Tokens are bound per systhread (pool domains and budget helper
   threads are distinct threads, each with its own binding).  [active]
   counts live bindings process-wide so that [check] costs one atomic
   load when nothing anywhere is budgeted. *)
let active : int Atomic.t = Atomic.make 0
let registry : (int, t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let self_id () = Thread.id (Thread.self ())

(** The token bound to the calling thread, if any. *)
let current () : t option =
  if Atomic.get active = 0 then None
  else begin
    let id = self_id () in
    Mutex.lock registry_mutex;
    let r = Hashtbl.find_opt registry id in
    Mutex.unlock registry_mutex;
    r
  end

(** Run [f] with [t] bound as the calling thread's token.  Restores the
    previous binding (if any) on exit, so bindings nest. *)
let with_token (t : t) (f : unit -> 'a) : 'a =
  let id = self_id () in
  Mutex.lock registry_mutex;
  let previous = Hashtbl.find_opt registry id in
  Hashtbl.replace registry id t;
  Mutex.unlock registry_mutex;
  Atomic.incr active;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr active;
      Mutex.lock registry_mutex;
      (match previous with
      | None -> Hashtbl.remove registry id
      | Some p -> Hashtbl.replace registry id p);
      Mutex.unlock registry_mutex)
    f

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

(* Read the clock only every [clock_stride] polls per token: cancel
   flags are atomics and stay responsive on every poll, the absolute
   deadline is allowed to overshoot by a stride's worth of loop
   iterations. *)
let clock_stride = 32

let probe (t : t) : bool =
  Atomic.incr t.checkpoints;
  if cancel_requested t then true
  else begin
    let h = horizon t in
    if h = infinity then false
    else begin
      let s = Atomic.fetch_and_add t.skew 1 in
      if s mod clock_stride <> 0 then false
      else Clock.now () >= h
    end
  end

(** Poll the calling thread's token: raises {!Expired} when the token
    (or any ancestor) is cancelled or past its deadline.  A no-op when
    the thread has no token. *)
let check () : unit =
  if Atomic.get active <> 0 then
    match current () with
    | None -> ()
    | Some t -> if probe t then raise Expired

(** [expired t] without raising — for callers that want to poll a token
    they hold directly (e.g. a dispatcher waiting on a helper). *)
let expired (t : t) : bool =
  cancel_requested t
  || (let h = horizon t in
      h < infinity && Clock.now () >= h)
