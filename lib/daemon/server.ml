(** The resident verification server behind [jahob serve].

    One server owns one {!Jahob_core.Jahob.engine} — worker pool, verdict
    cache, adaptive-scheduler EMAs — plus (because the hash-consing store
    is process-global) the shared formula kernel, and optionally one
    on-disk {!Store}.  Requests arrive as JSONL (see {!Proto}) over a
    Unix domain socket or stdio; each request is answered from the warm
    engine, so the Nth client pays neither prover startup nor re-proving
    of obligations any earlier client (or any earlier run, via the
    store) already settled.

    Batching model: requests are handled {e serially}, one at a time —
    the parallelism lives {e inside} a request (the engine's
    work-stealing pool fans the batch's obligations out).  That keeps
    the cache's epoch/trim discipline trivially correct: each request is
    one batch, [new_epoch] on entry, [trim] on exit (both inside
    [verify_program_with]).

    Store discipline: the cache is preloaded from the store at startup
    (a warm start is logged, as is a fingerprint-mismatch cold start);
    after any request that settled new obligations the store absorbs
    them and is synced to disk with the atomic temp-then-rename write,
    so even a [kill -9] of the daemon loses at most the last request's
    verdicts and never tears the file. *)

open Jahob_core

type config = {
  opts : Jahob.options;
  store_path : string option;
  store_cap : int; (* on-disk entry cap; 0 = the store default *)
  log : string -> unit; (* daemon log line sink (stderr in the CLI) *)
}

let default_config () : config =
  { opts = Jahob.default_options ();
    store_path = None;
    store_cap = 0;
    log = (fun msg -> Printf.eprintf "[jahob-serve] %s\n%!" msg) }

type t = {
  cfg : config;
  engine : Jahob.engine;
  store : Store.t option;
  mem_source : Jahob.method_source;
      (* incremental method records when no on-disk store is configured:
         they live as long as the daemon, so successive incremental
         requests in one session still skip unchanged methods *)
  started : float; (* Clock.now at creation, for uptime *)
  mutable requests : int;
}

(** Build the resident engine, open the store (logging warm/cold) and
    warm the verdict cache from it. *)
let create (cfg : config) : t =
  let engine = Jahob.create_engine cfg.opts in
  let store =
    Option.map
      (fun path ->
        let s =
          if cfg.store_cap > 0 then
            Store.load ~cap:cfg.store_cap ~log:cfg.log path
          else Store.load ~log:cfg.log path
        in
        (match (Store.status s, Jahob.engine_cache engine) with
        | Store.Warm _, Some cache -> Dispatch.Cache.preload cache (Store.to_preload s)
        | _ -> ());
        s)
      cfg.store_path
  in
  { cfg; engine; store; mem_source = Jahob.hashtbl_source ();
    started = Clock.now (); requests = 0 }

(** Where incremental verify reads/writes method records: the on-disk
    store when configured, else the daemon-lifetime in-memory source. *)
let method_source (t : t) : Jahob.method_source =
  match t.store with Some s -> Store.source s | None -> t.mem_source

let store (t : t) : Store.t option = t.store
let engine (t : t) : Jahob.engine = t.engine

(** Drain newly settled verdicts into the store and sync it to disk. *)
let persist (t : t) : unit =
  match (t.store, Jahob.engine_cache t.engine) with
  | Some s, Some cache ->
    let added = Store.absorb_cache s cache in
    if added > 0 then
      t.cfg.log (Printf.sprintf "store: +%d verdicts" added);
    Store.sync s
  | _ -> ()

let shutdown (t : t) : unit =
  persist t;
  Jahob.shutdown_engine t.engine

(* ------------------------------------------------------------------ *)
(* Request handlers                                                    *)
(* ------------------------------------------------------------------ *)

let verdict_fields (v : Logic.Sequent.verdict) : Proto.field list =
  Proto.
    [ fld_str "verdict" (Logic.Sequent.verdict_kind v);
      fld_str "detail" (Logic.Sequent.verdict_to_string v) ]

let report_obj (r : Dispatch.report) : Buffer.t -> unit =
  Proto.obj
    (Proto.fld_str "name" r.Dispatch.sequent.Logic.Sequent.name
     :: verdict_fields r.Dispatch.verdict
    @ [ Proto.fld_str "prover" (Option.value r.Dispatch.prover ~default:"-");
        Proto.fld_bool "cached" r.Dispatch.cached ])

let method_obj (m : Jahob.method_report) : Buffer.t -> unit =
  let s = m.Jahob.obligations in
  let provenance_fields =
    match m.Jahob.provenance with
    | Jahob.Fresh -> []
    | Jahob.Unchanged -> [ Proto.fld_bool "changed" false ]
    | Jahob.Invalidated why ->
      [ Proto.fld_bool "changed" true;
        Proto.fld_arr "invalidated_by"
          (List.map (fun w b -> Proto.J.str b w) why) ]
  in
  Proto.obj
    ([ Proto.fld_str "method" m.Jahob.method_name;
       Proto.fld_int "total" s.Dispatch.total;
       Proto.fld_int "valid" s.Dispatch.valid;
       Proto.fld_int "invalid" s.Dispatch.invalid;
       Proto.fld_int "unknown" s.Dispatch.unknown ]
    @ provenance_fields
    @ [ Proto.fld_arr "obligations"
          (List.map report_obj s.Dispatch.reports) ])

let handle_verify (t : t) id ~(incremental : bool) (files : string list) :
    string =
  let run () =
    if not incremental then Jahob.verify_files_with t.engine files
    else begin
      let prog =
        List.concat_map
          (fun p -> Javaparser.Jparser.parse_program_file p)
          files
      in
      Jahob.verify_program_inc t.engine ~source:(method_source t) prog
    end
  in
  match run () with
  | report ->
    persist t;
    let counts =
      if not incremental then []
      else
        let unchanged, reverified =
          List.partition
            (fun (m : Jahob.method_report) ->
              m.Jahob.provenance = Jahob.Unchanged)
            report.Jahob.methods
        in
        [ Proto.fld_bool "incremental" true;
          Proto.fld_int "unchanged" (List.length unchanged);
          Proto.fld_int "reverified" (List.length reverified) ]
    in
    Proto.line
      (Proto.id_fields id
      @ [ Proto.fld_bool "ok" report.Jahob.ok ]
      @ counts
      @ [ Proto.fld_arr "methods"
            (List.map method_obj report.Jahob.methods) ])
  | exception e -> Proto.error_line ?id (Printexc.to_string e)

let handle_prove (t : t) id (hyps : string list) (goal : string) : string =
  let parse_all texts =
    List.fold_left
      (fun acc text ->
        match acc with
        | Error _ -> acc
        | Ok fs -> (
          match Logic.Parser.parse_opt text with
          | Some f -> Ok (f :: fs)
          | None -> Error (Printf.sprintf "unparseable formula %S" text)))
      (Ok []) texts
  in
  match (parse_all hyps, Logic.Parser.parse_opt goal) with
  | Error e, _ -> Proto.error_line ?id e
  | Ok _, None -> Proto.error_line ?id (Printf.sprintf "unparseable goal %S" goal)
  | Ok rev_hyps, Some g -> (
    let s = Logic.Sequent.make ~name:"prove" (List.rev rev_hyps) g in
    let d = Jahob.engine_dispatcher t.engine in
    Option.iter Dispatch.Cache.new_epoch (Jahob.engine_cache t.engine);
    match Dispatch.prove_sequent d s with
    | r ->
      Option.iter
        (fun c -> ignore (Dispatch.Cache.trim c))
        (Jahob.engine_cache t.engine);
      persist t;
      Proto.line
        (Proto.id_fields id
        @ verdict_fields r.Dispatch.verdict
        @ [ Proto.fld_str "prover" (Option.value r.Dispatch.prover ~default:"-");
            Proto.fld_bool "cached" r.Dispatch.cached ])
    | exception e -> Proto.error_line ?id (Printexc.to_string e))

let handle_stats (t : t) id : string =
  let cache_fields =
    match Jahob.engine_cache t.engine with
    | None -> [ Proto.fld_bool "cache" false ]
    | Some c ->
      let k = Dispatch.Cache.counters c in
      [ Proto.fld_int "cache_hits" k.Dispatch.Cache.hit_count;
        Proto.fld_int "cache_misses" k.Dispatch.Cache.miss_count;
        Proto.fld_int "cache_entries" k.Dispatch.Cache.entries;
        Proto.fld_int "cache_evicted" k.Dispatch.Cache.evicted_count ]
  in
  let store_fields =
    match t.store with
    | None -> []
    | Some s ->
      [ Proto.fld_str "store" (Store.path s);
        Proto.fld_str "store_status" (Store.status_to_string (Store.status s));
        Proto.fld_int "store_entries" (Store.entries s);
        Proto.fld_int "store_methods" (Store.method_count s) ]
  in
  Proto.line
    (Proto.id_fields id
    @ [ Proto.fld_int "requests" t.requests;
        Proto.fld_float "uptime_s" (Clock.now () -. t.started);
        Proto.fld_str "mona_engine"
          (Mona.Ws1s.engine_name (Mona.Ws1s.current_default_engine ())) ]
    @ cache_fields @ store_fields)

(** Handle one request line; [`Stop] after a shutdown request. *)
let handle (t : t) (line : string) : string * [ `Continue | `Stop ] =
  t.requests <- t.requests + 1;
  match Proto.parse_request line with
  | Error (msg, id) -> (Proto.error_line ?id msg, `Continue)
  | Ok (Proto.Verify { id; files; incremental }) ->
    (handle_verify t id ~incremental files, `Continue)
  | Ok (Proto.Prove { id; hyps; goal }) ->
    (handle_prove t id hyps goal, `Continue)
  | Ok (Proto.Stats { id }) -> (handle_stats t id, `Continue)
  | Ok (Proto.Ping { id }) ->
    (Proto.line (Proto.id_fields id @ [ Proto.fld_str "pong" "jahob" ]), `Continue)
  | Ok (Proto.Save { id }) ->
    persist t;
    ( Proto.line
        (Proto.id_fields id
        @ [ Proto.fld_bool "saved" true;
            Proto.fld_int "store_entries"
              (match t.store with Some s -> Store.entries s | None -> 0) ]),
      `Continue )
  | Ok (Proto.Shutdown { id }) ->
    (Proto.line (Proto.id_fields id @ [ Proto.fld_bool "bye" true ]), `Stop)

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

(** Serve one channel pair until EOF or a shutdown request.  Returns
    [`Stop] if shutdown was requested, [`Eof] otherwise.  Used directly
    for [--stdio] and per-connection for the socket transport. *)
let serve_channels (t : t) (ic : in_channel) (oc : out_channel) :
    [ `Stop | `Eof ] =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | line ->
      if String.trim line = "" then loop ()
      else begin
        let resp, continue = handle t line in
        output_string oc resp;
        output_char oc '\n';
        flush oc;
        match continue with `Continue -> loop () | `Stop -> `Stop
      end
  in
  loop ()

(** Serve stdio until EOF, then persist and release the engine. *)
let serve_stdio (t : t) : unit =
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () -> ignore (serve_channels t stdin stdout))

(** Accept loop on a Unix domain socket: one connection at a time (the
    batch model), each served to EOF; a [shutdown] request ends the
    loop.  A stale socket file from a dead daemon is replaced. *)
let serve_unix (t : t) (path : string) : unit =
  (if Sys.file_exists path then
     (* stale socket from a previous daemon; a live one would still be
        listening, and binding over it would steal its clients anyway *)
     try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      shutdown t)
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      t.cfg.log (Printf.sprintf "listening on %s" path);
      let rec accept_loop () =
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | fd, _ ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          let outcome =
            Fun.protect
              ~finally:(fun () ->
                (try flush oc with Sys_error _ -> ());
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                try serve_channels t ic oc with Sys_error _ -> `Eof)
          in
          (match outcome with `Eof -> accept_loop () | `Stop -> ())
      in
      accept_loop ())
