(** The persistent on-disk verdict store.

    A verdict cache dies with its process; the store is what makes
    verification answers survive it.  It is a marshalled table from
    canonical sequent digests ({!Logic.Sequent.digest} — the same keys
    the in-memory {!Dispatch.Cache} uses) to settled verdicts, with
    three properties the daemon architecture needs:

    {ul
    {- {b Self-invalidation.}  The file carries a {e digest-scheme
       fingerprint}: the MD5 of the canonical printings and digests of a
       battery of probe sequents that exercise every ambiguity the
       canonical printer disambiguates (Le vs Subseteq, Lt vs Subset,
       Minus vs Diff, binder sorts, lambdas, comprehensions).  Any
       change to the printer or the binder-sort conventions changes the
       fingerprint, and a store written under the old scheme is refused
       with a {e logged cold start} — never silently consulted, because
       its keys may now collide with different obligations.}
    {- {b Crash atomicity.}  {!save} marshals to a temporary file in the
       store's directory and [rename]s it over the target.  A crash
       (power cut, [kill -9]) at any point leaves either the old store
       or the new one, never a torn hybrid; a load that does find a
       truncated or corrupt file (e.g. from a pre-rename crash of some
       other writer) recovers with a logged cold start, never an
       exception.}
    {- {b Bounded size.}  Entries carry a logical-clock recency stamp
       (bumped on lookup and insertion); past the configurable entry cap
       the least recently used entries are evicted at {!save} time.}}

    Concurrent writers (two CLI clients sharing one store path) are
    handled by merging: {!save} re-reads the file it is about to replace
    and unions the other writer's fresh entries into its own before
    renaming.  Verdicts are semantic facts keyed by canonical digests,
    so a union can never replace a verdict with a contradictory one —
    the race only decides whose recency stamps win. *)

open Logic
open Jahob_core

type entry = {
  verdict : Sequent.verdict; (* Valid or Invalid only; never Unknown *)
  prover : string option;
  mutable used : int; (* logical clock of the last lookup/insertion *)
}

(** How opening the store went — surfaced so the daemon can log it and
    the tests can assert on it. *)
type status =
  | Fresh (** no file at the path: empty store, first run *)
  | Warm of int (** loaded this many settled verdicts from disk *)
  | Cold of string (** file refused (corrupt/stale scheme): reason *)

let status_to_string = function
  | Fresh -> "fresh (no store file)"
  | Warm n -> Printf.sprintf "warm (%d verdicts)" n
  | Cold why -> Printf.sprintf "cold start (%s)" why

type t = {
  path : string;
  cap : int;
  log : string -> unit;
  mutable clock : int;
  table : (string, entry) Hashtbl.t;
  methods : (string, Jahob.stored_method) Hashtbl.t;
      (* the dependency index (schema v2): per-method structural digest,
         context digest, dependency digests and settled verdicts — what
         incremental re-verification consults before regenerating VCs *)
  mutable status : status;
  mutable dirty : bool; (* entries added since the last save *)
  lock : Mutex.t;
}

let default_cap = 100_000

(* ------------------------------------------------------------------ *)
(* The digest-scheme fingerprint                                       *)
(* ------------------------------------------------------------------ *)

(* bump when the persisted layout itself changes *)
let format_version = "jahob-store/3"

(* every probe pokes at a convention the canonical printer encodes:
   integer vs set comparison tokens, set difference vs minus, binder
   sorts, lambda bodies, comprehensions, cardinalities, heap reads *)
let probe_texts =
  [ "x <= y";
    "A <= B";
    "x < y";
    "A < B";
    "x - y = 0";
    "card (A - B) = 0";
    "ALL x. x..f = x";
    "EX x. x : A";
    "rtrancl_pt (% u v. u..next = v) h x";
    "card {z. z : A} = 1";
  ]

(* memoized per WS1S engine: the engine is a process-wide default that
   tests (and [--mona-engine]) flip within one process, and verdicts
   decided by one automata engine must never be replayed under the
   other *)
let fingerprint_memo : (string * string) option ref = ref None

(** The fingerprint of the digest scheme in force in this binary. *)
let fingerprint () : string =
  let engine = Mona.Ws1s.engine_name (Mona.Ws1s.current_default_engine ()) in
  match !fingerprint_memo with
  | Some (e, fp) when e = engine -> fp
  | _ ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf format_version;
    Buffer.add_char buf '\n';
    Buffer.add_string buf ("mona-engine:" ^ engine);
    List.iter
      (fun text ->
        match Parser.parse_opt text with
        | Some f ->
          let s = Sequent.make [] f in
          Buffer.add_char buf '\n';
          Buffer.add_string buf
            (Pprint.to_canonical_string
               (Form.alpha_normalize_shared ~keep_types:true f));
          Buffer.add_char buf '|';
          Buffer.add_string buf (Sequent.digest s)
        | None ->
          (* a probe the parser no longer accepts is itself a scheme
             change: fold the failure into the fingerprint *)
          Buffer.add_string buf ("\nunparseable:" ^ text))
      probe_texts;
    let fp = Digest.to_hex (Digest.string (Buffer.contents buf)) in
    fingerprint_memo := Some (engine, fp);
    fp

(* ------------------------------------------------------------------ *)
(* Disk format                                                         *)
(* ------------------------------------------------------------------ *)

(* magic line first, so `head -1` identifies the file and a truncated
   or foreign file fails before Marshal ever runs.  Older magics (v1:
   no dependency index; v2: no WS1S-engine key in [stored_method]) are
   recognized only to be refused with a precise reason — running
   Marshal against an old payload with the current type would be
   undefined behavior, so the version check must happen on raw bytes. *)
let magic = "jahob-verdict-store/3\n"
let magic_v2 = "jahob-verdict-store/2\n"
let magic_v1 = "jahob-verdict-store\n"

type persisted = {
  p_fingerprint : string;
  p_clock : int;
  p_entries : (string * Sequent.verdict * string option * int) array;
  p_methods : Jahob.stored_method array;
}

(* Read a store file into a [persisted], or say why not.  Any exception
   (truncation, bad magic, Marshal version skew) becomes [Error]. *)
let read_file (path : string) : (persisted, string) result =
  match open_in_bin path with
  | exception Sys_error e -> Error ("unreadable: " ^ e)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          let n = min (in_channel_length ic) (String.length magic) in
          let m = really_input_string ic n in
          if m = magic then begin
            let (p : persisted) = Marshal.from_channel ic in
            Ok p
          end
          else if String.length m >= String.length magic_v2
                  && String.sub m 0 (String.length magic_v2) = magic_v2
          then
            Error
              "version skew: store format v2 (no WS1S-engine key), this \
               binary writes v3"
          else if String.length m >= String.length magic_v1
                  && String.sub m 0 (String.length magic_v1) = magic_v1
          then
            Error
              "version skew: store format v1 (no dependency index), this \
               binary writes v3"
          else Error "bad magic (not a verdict store)"
        with
        | End_of_file -> Error "truncated store file"
        | Failure e -> Error ("corrupt store file: " ^ e)
        | e -> Error ("corrupt store file: " ^ Printexc.to_string e))

let default_log msg = Printf.eprintf "[store] %s\n%!" msg

(** Open the store at [path].  A missing file is a {!Fresh} start;
    an unreadable, truncated or wrong-fingerprint file is a {e logged}
    {!Cold} start (the bad file is left in place until the next
    {!save} replaces it atomically). *)
let load ?(cap = default_cap) ?(log = default_log) (path : string) : t =
  let t =
    { path; cap = (if cap <= 0 then max_int else cap); log; clock = 0;
      table = Hashtbl.create 256; methods = Hashtbl.create 64;
      status = Fresh; dirty = false; lock = Mutex.create () }
  in
  (if Sys.file_exists path then
     match read_file path with
     | Error why ->
       t.status <- Cold why;
       log (Printf.sprintf "%s: cold start — %s" path why)
     | Ok p ->
       if p.p_fingerprint <> fingerprint () then begin
         t.status <-
           Cold
             (Printf.sprintf
                "digest-scheme fingerprint mismatch (store %s, binary %s)"
                (String.sub p.p_fingerprint 0 8)
                (String.sub (fingerprint ()) 0 8));
         log
           (Printf.sprintf
              "%s: cold start — digest scheme changed (store fingerprint \
               %s, this binary %s); stale verdicts will not be served"
              path
              (String.sub p.p_fingerprint 0 8)
              (String.sub (fingerprint ()) 0 8))
       end
       else begin
         Array.iter
           (fun (k, verdict, prover, used) ->
             Hashtbl.replace t.table k { verdict; prover; used })
           p.p_entries;
         Array.iter
           (fun (sm : Jahob.stored_method) ->
             Hashtbl.replace t.methods sm.Jahob.sm_name sm)
           p.p_methods;
         t.clock <- p.p_clock;
         t.status <- Warm (Hashtbl.length t.table);
         log
           (Printf.sprintf "%s: warm start — %d verdicts, %d method \
                            records on disk" path
              (Hashtbl.length t.table) (Hashtbl.length t.methods))
       end);
  t

let status (t : t) : status = t.status
let path (t : t) : string = t.path

let entries (t : t) : int =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

(* ------------------------------------------------------------------ *)
(* Lookup and insertion                                                *)
(* ------------------------------------------------------------------ *)

let find (t : t) (digest : string) : (Sequent.verdict * string option) option =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.table digest with
    | None -> None
    | Some e ->
      t.clock <- t.clock + 1;
      e.used <- t.clock;
      Some (e.verdict, e.prover)
  in
  Mutex.unlock t.lock;
  (match r with
  | Some _ -> Trace.incr "store.hit"
  | None -> Trace.incr "store.miss");
  r

(** Record a settled verdict.  [Unknown] is rejected here for the same
    reason the in-memory cache never stores it: it depends on the
    portfolio and budgets in force, not on the obligation. *)
let add (t : t) (digest : string) (verdict : Sequent.verdict)
    (prover : string option) : unit =
  match verdict with
  | Sequent.Unknown _ -> ()
  | Sequent.Valid | Sequent.Invalid _ ->
    Mutex.lock t.lock;
    t.clock <- t.clock + 1;
    (match Hashtbl.find_opt t.table digest with
    | Some e -> e.used <- t.clock
    | None ->
      Hashtbl.replace t.table digest { verdict; prover; used = t.clock };
      t.dirty <- true);
    Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* The method/dependency index (schema v2)                             *)
(* ------------------------------------------------------------------ *)

let find_method (t : t) (name : string) : Jahob.stored_method option =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.methods name in
  Mutex.unlock t.lock;
  (match r with
  | Some _ -> Trace.incr "store.method_hit"
  | None -> Trace.incr "store.method_miss");
  r

let record_method (t : t) (sm : Jahob.stored_method) : unit =
  Mutex.lock t.lock;
  Hashtbl.replace t.methods sm.Jahob.sm_name sm;
  t.dirty <- true;
  Mutex.unlock t.lock

let remove_method (t : t) (name : string) : unit =
  Mutex.lock t.lock;
  if Hashtbl.mem t.methods name then begin
    Hashtbl.remove t.methods name;
    t.dirty <- true
  end;
  Mutex.unlock t.lock

let list_methods (t : t) : string list =
  Mutex.lock t.lock;
  let r = Hashtbl.fold (fun n _ acc -> n :: acc) t.methods [] in
  Mutex.unlock t.lock;
  List.sort compare r

let method_count (t : t) : int =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.methods in
  Mutex.unlock t.lock;
  n

(** The store as a {!Jahob.method_source} — what
    {!Jahob.verify_program_inc} reads and writes.  Thread-safe: every
    operation takes the store lock. *)
let source (t : t) : Jahob.method_source =
  { Jahob.find_method = find_method t;
    record_method = record_method t;
    remove_method = remove_method t;
    list_methods = (fun () -> list_methods t) }

(* ------------------------------------------------------------------ *)
(* Cache integration                                                   *)
(* ------------------------------------------------------------------ *)

(** Every settled on-disk verdict, ready for {!Dispatch.Cache.preload}. *)
let to_preload (t : t) : (string * Dispatch.Cache.entry) list =
  Mutex.lock t.lock;
  let r =
    Hashtbl.fold
      (fun k (e : entry) acc ->
        (k, { Dispatch.Cache.verdict = e.verdict; prover = e.prover }) :: acc)
      t.table []
  in
  Mutex.unlock t.lock;
  r

(** Pull every settled verdict out of [cache] into the store.  Returns
    how many were new. *)
let absorb_cache (t : t) (cache : Dispatch.Cache.t) : int =
  let before =
    Mutex.lock t.lock;
    let n = Hashtbl.length t.table in
    Mutex.unlock t.lock;
    n
  in
  Dispatch.Cache.fold_settled cache
    (fun () k (e : Dispatch.Cache.entry) ->
      add t k e.Dispatch.Cache.verdict e.Dispatch.Cache.prover)
    ();
  entries t - before

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

(* evict least-recently-used entries until [table] is within [cap] *)
let trim_locked (t : t) : int =
  let excess = Hashtbl.length t.table - t.cap in
  if excess <= 0 then 0
  else begin
    let victims =
      Hashtbl.fold (fun k e acc -> (e.used, k) :: acc) t.table []
      |> List.sort compare
    in
    List.iteri
      (fun i (_, k) -> if i < excess then Hashtbl.remove t.table k)
      victims;
    excess
  end

(** Write the store to disk: merge in whatever a concurrent writer put
    at the path since we loaded it, evict LRU past the cap, marshal to a
    temp file and atomically rename it into place.  A crash at any
    point leaves the previous file intact. *)
let save (t : t) : unit =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      (* union a concurrent writer's entries (same fingerprint only);
         our own stamps win on conflict, which is all the race decides *)
      (if Sys.file_exists t.path then
         match read_file t.path with
         | Ok p when p.p_fingerprint = fingerprint () ->
           Array.iter
             (fun (k, verdict, prover, used) ->
               if not (Hashtbl.mem t.table k) then
                 Hashtbl.replace t.table k { verdict; prover; used })
             p.p_entries;
           Array.iter
             (fun (sm : Jahob.stored_method) ->
               if not (Hashtbl.mem t.methods sm.Jahob.sm_name) then
                 Hashtbl.replace t.methods sm.Jahob.sm_name sm)
             p.p_methods
         | Ok _ | Error _ -> ());
      let evicted = trim_locked t in
      if evicted > 0 then
        t.log
          (Printf.sprintf "%s: evicted %d least-recently-used entries \
                           (cap %d)" t.path evicted t.cap);
      let p =
        { p_fingerprint = fingerprint ();
          p_clock = t.clock;
          p_entries =
            Hashtbl.fold
              (fun k (e : entry) acc ->
                (k, e.verdict, e.prover, e.used) :: acc)
              t.table []
            |> List.sort compare |> Array.of_list;
          p_methods =
            Hashtbl.fold (fun _ sm acc -> sm :: acc) t.methods []
            |> List.sort compare |> Array.of_list }
      in
      let dir = Filename.dirname t.path in
      let tmp =
        Filename.temp_file ~temp_dir:dir
          (Filename.basename t.path ^ ".tmp.") ""
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc magic;
         Marshal.to_channel oc p [];
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      (* the atomic commit point: rename never exposes a torn file *)
      Unix.rename tmp t.path;
      t.dirty <- false;
      Trace.incr "store.saved")

let dirty (t : t) : bool = t.dirty

(** [sync t] — save only if something changed since the last save. *)
let sync (t : t) : unit = if t.dirty then save t
