(** The daemon wire protocol: JSON Lines, one request and one response
    per line.

    A client writes one JSON object per line and reads one JSON object
    back per request, in order.  The same protocol runs over a Unix
    domain socket ([jahob serve --socket PATH]) and over
    stdin/stdout ([jahob serve --stdio] — what the tests and
    [make serve-smoke] use).

    Requests ([id] is optional and echoed back verbatim):

    {v
    {"id":1,"cmd":"verify","files":["examples/list/List.java", ...]}
    {"id":1,"cmd":"verify","files":[...],"incremental":true}
    {"id":2,"cmd":"prove","hyps":["x <= y","y <= z"],"goal":"x <= z"}
    {"id":3,"cmd":"stats"}
    {"id":4,"cmd":"ping"}
    {"id":5,"cmd":"save"}
    {"id":6,"cmd":"shutdown"}
    v}

    Responses carry ["id"] and either the command's payload or
    ["error"].  A malformed line still gets a one-line error response
    (with ["id"] when one could be parsed), so a client never
    desynchronizes. *)

module Json = Trace.Json

type request =
  | Verify of { id : Json.t option; files : string list; incremental : bool }
      (* [incremental]: consult the method/dependency index and re-verify
         only invalidated methods; each method in the response then
         carries ["changed"] and (when re-verified) ["invalidated_by"] *)
  | Prove of { id : Json.t option; hyps : string list; goal : string }
  | Stats of { id : Json.t option }
  | Ping of { id : Json.t option }
  | Save of { id : Json.t option }
  | Shutdown of { id : Json.t option }

let request_id = function
  | Verify { id; _ } | Prove { id; _ } | Stats { id } | Ping { id }
  | Save { id } | Shutdown { id } ->
    id

(* ------------------------------------------------------------------ *)
(* Response construction                                               *)
(* ------------------------------------------------------------------ *)

(** Minimal JSON writers for response lines.  The trace library already
    has an escaping writer, but it is private to its sink; this one is
    the protocol's own, kept tiny. *)
module J = struct
  let str (b : Buffer.t) (s : string) : unit =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  (* re-serialize a parsed JSON value (for echoing request ids) *)
  let rec value (b : Buffer.t) (v : Json.t) : unit =
    match v with
    | Json.Null -> Buffer.add_string b "null"
    | Json.Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Json.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | Json.Str s -> str b s
    | Json.Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          value b x)
        xs;
      Buffer.add_char b ']'
    | Json.Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          str b k;
          Buffer.add_char b ':';
          value b x)
        kvs;
      Buffer.add_char b '}'
end

type field = string * (Buffer.t -> unit)

let fld_str k v : field = (k, fun b -> J.str b v)
let fld_int k v : field = (k, fun b -> Buffer.add_string b (string_of_int v))
let fld_bool k v : field =
  (k, fun b -> Buffer.add_string b (if v then "true" else "false"))
let fld_float k v : field =
  (k, fun b -> Buffer.add_string b (Printf.sprintf "%.6f" v))
let fld_json k v : field = (k, fun b -> J.value b v)
let fld_arr k (items : (Buffer.t -> unit) list) : field =
  ( k,
    fun b ->
      Buffer.add_char b '[';
      List.iteri
        (fun i it ->
          if i > 0 then Buffer.add_char b ',';
          it b)
        items;
      Buffer.add_char b ']' )

let obj (fields : field list) : Buffer.t -> unit =
 fun b ->
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      J.str b k;
      Buffer.add_char b ':';
      v b)
    fields;
  Buffer.add_char b '}'

(** Render one response line (no trailing newline). *)
let line (fields : field list) : string =
  let b = Buffer.create 256 in
  obj fields b;
  Buffer.contents b

(** The fields every response opens with: the echoed id (if any). *)
let id_fields (id : Json.t option) : field list =
  match id with None -> [] | Some v -> [ fld_json "id" v ]

let error_line ?(id : Json.t option) (msg : string) : string =
  line (id_fields id @ [ fld_str "error" msg ])

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let string_list_member (key : string) (v : Json.t) :
    (string list option, string) result =
  match Json.member key v with
  | None -> Ok None
  | Some (Json.Arr xs) ->
    let rec go acc = function
      | [] -> Ok (Some (List.rev acc))
      | Json.Str s :: rest -> go (s :: acc) rest
      | _ -> Error (Printf.sprintf "\"%s\" must be an array of strings" key)
    in
    go [] xs
  | Some _ -> Error (Printf.sprintf "\"%s\" must be an array of strings" key)

(** Parse one request line.  [Error (msg, id)] still carries the request
    id when one was present, so the error response can be correlated. *)
let parse_request (s : string) : (request, string * Json.t option) result =
  match Json.parse_opt s with
  | None -> Error ("malformed JSON", None)
  | Some v -> (
    let id = Json.member "id" v in
    match Json.member "cmd" v with
    | Some (Json.Str cmd) -> (
      match cmd with
      | "verify" -> (
        match string_list_member "files" v with
        | Ok (Some (_ :: _ as files)) ->
          let incremental =
            match Json.member "incremental" v with
            | Some (Json.Bool b) -> b
            | _ -> false
          in
          Ok (Verify { id; files; incremental })
        | Ok _ -> Error ("\"verify\" needs a non-empty \"files\" array", id)
        | Error e -> Error (e, id))
      | "prove" -> (
        match (string_list_member "hyps" v, Json.member "goal" v) with
        | Ok hyps, Some (Json.Str goal) ->
          Ok (Prove { id; hyps = Option.value hyps ~default:[]; goal })
        | Ok _, _ -> Error ("\"prove\" needs a string \"goal\"", id)
        | Error e, _ -> Error (e, id))
      | "stats" -> Ok (Stats { id })
      | "ping" -> Ok (Ping { id })
      | "save" -> Ok (Save { id })
      | "shutdown" -> Ok (Shutdown { id })
      | other -> Error (Printf.sprintf "unknown cmd %S" other, id))
    | Some _ -> Error ("\"cmd\" must be a string", id)
    | None -> Error ("missing \"cmd\"", id))
