(** A minimal JSON reader, used to validate the trace sinks.

    The tracer emits JSON; something in the tree must be able to read it
    back, or the golden tests and [jahob trace-check] would be trusting
    the writer to check itself.  This is a plain recursive-descent parser
    over the full JSON grammar (RFC 8259): [\uXXXX] escapes are decoded
    to UTF-8 (surrogate pairs combine into astral code points; lone
    surrogates become U+FFFD), and numbers are held as [float]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string * int  (** message, byte offset *)

let fail pos msg = raise (Error (msg, pos))

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st.pos (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail st.pos (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false

let hex_val = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> assert false

(* UTF-8 encode one Unicode scalar value *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
      | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some 'u' ->
        advance st;
        let hex4 () =
          let v = ref 0 in
          for _ = 1 to 4 do
            match peek st with
            | Some c when is_hex c ->
              advance st;
              v := (!v lsl 4) lor hex_val c
            | _ -> fail st.pos "invalid \\u escape"
          done;
          !v
        in
        let u = hex4 () in
        (if u < 0xD800 || u > 0xDFFF then add_utf8 buf u
         else if
           (* a high surrogate followed by [\uDC00-\uDFFF] combines
              into one astral code point *)
           u <= 0xDBFF
           && st.pos + 1 < String.length st.src
           && st.src.[st.pos] = '\\'
           && st.src.[st.pos + 1] = 'u'
         then begin
           advance st;
           advance st;
           let u2 = hex4 () in
           if u2 >= 0xDC00 && u2 <= 0xDFFF then
             add_utf8 buf
               (0x10000 + ((u - 0xD800) lsl 10) + (u2 - 0xDC00))
           else begin
             (* the high surrogate was lone after all: U+FFFD for it,
                then the second escape stands on its own *)
             add_utf8 buf 0xFFFD;
             if u2 >= 0xD800 && u2 <= 0xDFFF then add_utf8 buf 0xFFFD
             else add_utf8 buf u2
           end
         end
         else
           (* lone surrogate: legal JSON, but names no scalar value *)
           add_utf8 buf 0xFFFD);
        go ()
      | _ -> fail st.pos "invalid escape")
    | Some c when Char.code c < 0x20 -> fail st.pos "control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_digits () =
    let had = ref false in
    let rec go () =
      match peek st with
      | Some '0' .. '9' ->
        had := true;
        advance st;
        go ()
      | _ -> ()
    in
    go ();
    if not !had then fail st.pos "expected digit"
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  (* integer part: a lone 0, or [1-9] digits — no leading zeros *)
  (match peek st with
  | Some '0' -> (
    advance st;
    match peek st with
    | Some '0' .. '9' -> fail st.pos "leading zero in number"
    | _ -> ())
  | _ -> consume_digits ());
  (match peek st with
  | Some '.' ->
    advance st;
    consume_digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    consume_digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some x -> Num x
  | None -> fail start ("bad number: " ^ text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((k, v) :: acc)
        | Some '}' ->
          advance st;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail st.pos "expected , or } in object"
      in
      members []
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          Arr (List.rev (v :: acc))
        | _ -> fail st.pos "expected , or ] in array"
      in
      elements []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character %c" c)

(** Parse a complete JSON document; trailing garbage is an error. *)
let parse (s : string) : t =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st.pos "trailing characters";
  v

let parse_opt (s : string) : t option =
  match parse s with v -> Some v | exception Error _ -> None

(** Object field lookup; [None] on non-objects and missing keys. *)
let member (key : string) (v : t) : t option =
  match v with Obj kvs -> List.assoc_opt key kvs | _ -> None
