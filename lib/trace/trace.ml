(** Structured tracing for the prover pipeline.

    Every stage an obligation passes through — parse, desugar, wp,
    simplify, each prover attempt — can be bracketed in a {e span}; spans
    carry attributes (prover name, verdict, formula size, cache hit/miss,
    queue wait under the domain pool) and feed three sinks:

    + {b aggregate counters}: per-domain accumulators (each domain owns
      its own tables, so accumulation never contends across domains; a
      per-domain lock only serializes the rare budget helper threads of
      the same domain) merged on demand for [--stats]-style reports;
    + {b a JSON-lines event log} ([--trace FILE]): one begin/end/instant
      event per line, validated by {!check_jsonl_file};
    + {b a Chrome [trace_event] export} ([--trace-format chrome]): the
      same events as a JSON array that chrome://tracing or Perfetto load
      directly, making [-j N] scheduling gaps visible on a timeline.

    The whole layer is {e off} by default.  Every operation first reads
    one atomic flag and returns immediately when disabled — argument
    lists are thunks, so a disabled call never allocates or formats
    anything.  The bench suite asserts this fast path costs under 5% on
    the per-obligation hot loop. *)

module Json = Json

type value = S of string | I of int | F of float | B of bool

type args = (string * value) list

type format = Jsonl | Chrome

(* ------------------------------------------------------------------ *)
(* The fast-path switch and the clock                                  *)
(* ------------------------------------------------------------------ *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

(* timestamps are seconds since [start_collecting], so traces from
   different runs are comparable and small enough to print compactly *)
let epoch = Atomic.make 0.

let now_s () = Clock.now () -. Atomic.get epoch

(* ------------------------------------------------------------------ *)
(* Per-domain accumulators                                             *)
(* ------------------------------------------------------------------ *)

type agg = { mutable count : int; mutable total_s : float }

type acc = {
  lock : Mutex.t;
      (* systhreads of one domain (budget helpers) share this record; the
         lock is per-domain, so domains never contend with each other *)
  span_aggs : (string, agg) Hashtbl.t; (* "cat:name" -> count/total time *)
  counts : (string, int ref) Hashtbl.t;
}

let registry : acc list ref = ref []
let registry_mutex = Mutex.create ()

let acc_key : acc Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let a =
        { lock = Mutex.create ();
          span_aggs = Hashtbl.create 32;
          counts = Hashtbl.create 32 }
      in
      Mutex.lock registry_mutex;
      registry := a :: !registry;
      Mutex.unlock registry_mutex;
      a)

let with_acc (f : acc -> unit) : unit =
  let a = Domain.DLS.get acc_key in
  Mutex.lock a.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock a.lock) (fun () -> f a)

(** Record one observation of [dt] seconds under [key] (spans do this on
    finish; usable directly for durations measured by other means). *)
let observe (key : string) (dt : float) : unit =
  if Atomic.get enabled_flag then
    with_acc (fun a ->
        match Hashtbl.find_opt a.span_aggs key with
        | Some g ->
          g.count <- g.count + 1;
          g.total_s <- g.total_s +. dt
        | None -> Hashtbl.add a.span_aggs key { count = 1; total_s = dt })

(** Add [n] to the named counter (no-op while disabled). *)
let add (name : string) (n : int) : unit =
  if Atomic.get enabled_flag then
    with_acc (fun a ->
        match Hashtbl.find_opt a.counts name with
        | Some r -> r := !r + n
        | None -> Hashtbl.add a.counts name (ref n))

let incr (name : string) : unit = add name 1

(* ------------------------------------------------------------------ *)
(* Event sinks                                                         *)
(* ------------------------------------------------------------------ *)

type sink = {
  channel : out_channel;
  format : format;
  mutable first : bool; (* Chrome: comma placement between events *)
  mutable closed : bool;
}

let sink_mutex = Mutex.create ()
let sink : sink option ref = ref None

(* Per-domain event buffers: the sink mutex used to be taken for every
   single event, which serialized all domains on one global lock right
   on the proving hot path.  Events are now formatted and appended to a
   domain-local buffer (guarded by a per-domain lock only because budget
   helper systhreads share their domain's DLS slot) and the sink mutex
   is paid once per [flush_threshold] bytes and once at [stop].  Batches
   are written whole, so each thread's events stay in emission order in
   the file and the per-tid span balance the validator checks is
   preserved. *)
type ebuf = { elock : Mutex.t; ebuf : Buffer.t }

let ebuf_registry : ebuf list ref = ref []
let ebuf_registry_mutex = Mutex.create ()

let ebuf_key : ebuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { elock = Mutex.create (); ebuf = Buffer.create 4096 } in
      Mutex.lock ebuf_registry_mutex;
      ebuf_registry := b :: !ebuf_registry;
      Mutex.unlock ebuf_registry_mutex;
      b)

let flush_threshold = 32 * 1024

let all_ebufs () : ebuf list =
  Mutex.lock ebuf_registry_mutex;
  let ebs = !ebuf_registry in
  Mutex.unlock ebuf_registry_mutex;
  ebs

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_json_value buf = function
  | S s -> add_json_string buf s
  | I n -> Buffer.add_string buf (string_of_int n)
  | F x ->
    Buffer.add_string buf
      (if Float.is_finite x then Printf.sprintf "%.6g" x else "0")
  | B b -> Buffer.add_string buf (if b then "true" else "false")

let add_json_args buf (args : args) =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      add_json_value buf v)
    args;
  Buffer.add_char buf '}'

(* one event, formatted for the sink's dialect *)
let format_event ~format ~ph ~ts ~tid ~cat ~name (args : args) : string =
  let buf = Buffer.create 128 in
  (match format with
  | Jsonl ->
    Buffer.add_string buf (Printf.sprintf "{\"ph\":\"%c\",\"ts\":%.6f,\"tid\":%d,\"cat\":" ph ts tid);
    add_json_string buf cat;
    Buffer.add_string buf ",\"name\":";
    add_json_string buf name;
    if args <> [] then begin
      Buffer.add_char buf ',';
      add_json_args buf args
    end;
    Buffer.add_string buf "}\n"
  | Chrome ->
    (* trace_event format: timestamps in microseconds, one process.
       Every event carries its ",\n" separator as a prefix; the flusher
       strips it from the first event of the file. *)
    Buffer.add_string buf
      (Printf.sprintf ",\n{\"ph\":\"%c\",\"ts\":%.1f,\"pid\":1,\"tid\":%d,\"cat\":" ph
         (ts *. 1e6) tid);
    add_json_string buf cat;
    Buffer.add_string buf ",\"name\":";
    add_json_string buf name;
    if args <> [] then begin
      Buffer.add_char buf ',';
      add_json_args buf args
    end;
    Buffer.add_char buf '}');
  Buffer.contents buf

(* write a domain's pending batch to the sink; call with [eb.elock]
   held.  Lock order is always elock -> sink_mutex. *)
let flush_ebuf_locked (eb : ebuf) : unit =
  if Buffer.length eb.ebuf > 0 then begin
    Mutex.lock sink_mutex;
    (match !sink with
    | Some sk when not sk.closed -> (
      let s = Buffer.contents eb.ebuf in
      match sk.format with
      | Jsonl -> output_string sk.channel s
      | Chrome ->
        if sk.first then begin
          (* drop the leading ",\n" of the file's first event *)
          sk.first <- false;
          output_string sk.channel (String.sub s 2 (String.length s - 2))
        end
        else output_string sk.channel s)
    | _ -> ());
    Mutex.unlock sink_mutex;
    Buffer.clear eb.ebuf
  end

let emit ~ph ~ts ~tid ~cat ~name (args : args) : unit =
  match !sink with
  | None -> ()
  | Some sk ->
    (* format outside any lock; abandoned budget threads may land here
       after [stop] — their batch then sits in the buffer until the next
       [open_sink] discards it *)
    let line = format_event ~format:sk.format ~ph ~ts ~tid ~cat ~name args in
    let eb = Domain.DLS.get ebuf_key in
    Mutex.lock eb.elock;
    Buffer.add_string eb.ebuf line;
    if Buffer.length eb.ebuf >= flush_threshold then flush_ebuf_locked eb;
    Mutex.unlock eb.elock

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = { s_name : string; s_cat : string; s_t0 : float; s_tid : int; s_live : bool }

let null_span = { s_name = ""; s_cat = ""; s_t0 = 0.; s_tid = 0; s_live = false }

let force_args = function None -> [] | Some f -> (f () : args)

let span_key cat name = if cat = "" then name else cat ^ ":" ^ name

(** Open a span.  Returns {!null_span} (and does nothing) while tracing
    is disabled; [args] is only forced when an event sink is attached. *)
let start_span ?(cat = "") ?(args : (unit -> args) option) name : span =
  if not (Atomic.get enabled_flag) then null_span
  else begin
    let ts = now_s () in
    let tid = Thread.id (Thread.self ()) in
    if !sink <> None then emit ~ph:'B' ~ts ~tid ~cat ~name (force_args args);
    { s_name = name; s_cat = cat; s_t0 = ts; s_tid = tid; s_live = true }
  end

(** Close a span: records its duration in the aggregate accumulators and
    emits the end event (with [args] attached, so attributes computed
    from the result — verdicts, cache attribution — ride on the end). *)
let finish_span ?(args : (unit -> args) option) (sp : span) : unit =
  if sp.s_live then begin
    let ts = now_s () in
    observe (span_key sp.s_cat sp.s_name) (ts -. sp.s_t0);
    if !sink <> None then
      emit ~ph:'E' ~ts ~tid:sp.s_tid ~cat:sp.s_cat ~name:sp.s_name
        (force_args args)
  end

(** [with_span name f] brackets [f ()] in a span.  Exceptions propagate;
    the span closes with a ["raised"] attribute. *)
let with_span ?cat ?args name (f : unit -> 'a) : 'a =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let sp = start_span ?cat ?args name in
    match f () with
    | v ->
      finish_span sp;
      v
    | exception e ->
      finish_span ~args:(fun () -> [ ("raised", S (Printexc.to_string e)) ]) sp;
      raise e
  end

(** A point event (no duration). *)
let instant ?(cat = "") ?(args : (unit -> args) option) name : unit =
  if Atomic.get enabled_flag && !sink <> None then
    emit ~ph:'i' ~ts:(now_s ()) ~tid:(Thread.id (Thread.self ())) ~cat ~name
      (force_args args)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

(** Turn collection on (aggregates always; events once a sink is open). *)
let start_collecting () : unit =
  Atomic.set epoch (Clock.now ());
  Atomic.set enabled_flag true

(** Attach a file sink.  Call before or after {!start_collecting};
    events only flow while collection is on. *)
let open_sink ?(format = Jsonl) (path : string) : unit =
  (* straggler events buffered after a previous [stop] (abandoned budget
     threads) must not leak into this sink *)
  List.iter
    (fun eb ->
      Mutex.lock eb.elock;
      Buffer.clear eb.ebuf;
      Mutex.unlock eb.elock)
    (all_ebufs ());
  let channel = open_out path in
  if format = Chrome then output_string channel "[\n";
  Mutex.lock sink_mutex;
  sink := Some { channel; format; first = true; closed = false };
  Mutex.unlock sink_mutex

(** Turn collection off and close the sink (writing the Chrome array
    footer).  Aggregates survive for {!span_stats} / {!counter_list}. *)
let stop () : unit =
  Atomic.set enabled_flag false;
  (* drain every domain's pending batch before closing the channel *)
  List.iter
    (fun eb ->
      Mutex.lock eb.elock;
      flush_ebuf_locked eb;
      Mutex.unlock eb.elock)
    (all_ebufs ());
  Mutex.lock sink_mutex;
  (match !sink with
  | Some sk when not sk.closed ->
    sk.closed <- true;
    if sk.format = Chrome then output_string sk.channel "\n]\n";
    close_out sk.channel
  | _ -> ());
  sink := None;
  Mutex.unlock sink_mutex

(** Drop all accumulated aggregates (tests). *)
let reset () : unit =
  Mutex.lock registry_mutex;
  let accs = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun a ->
      Mutex.lock a.lock;
      Hashtbl.reset a.span_aggs;
      Hashtbl.reset a.counts;
      Mutex.unlock a.lock)
    accs

(* ------------------------------------------------------------------ *)
(* Reports: merge the per-domain accumulators                          *)
(* ------------------------------------------------------------------ *)

type stat = { count : int; total_s : float }

let fold_accs (f : acc -> unit) : unit =
  Mutex.lock registry_mutex;
  let accs = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun a ->
      Mutex.lock a.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock a.lock) (fun () -> f a))
    accs

(** Merged span aggregates, sorted by key. *)
let span_stats () : (string * stat) list =
  let tbl : (string, stat) Hashtbl.t = Hashtbl.create 32 in
  fold_accs (fun a ->
      Hashtbl.iter
        (fun k (g : agg) ->
          let prev =
            match Hashtbl.find_opt tbl k with
            | Some s -> s
            | None -> { count = 0; total_s = 0. }
          in
          Hashtbl.replace tbl k
            { count = prev.count + g.count; total_s = prev.total_s +. g.total_s })
        a.span_aggs);
  Hashtbl.fold (fun k s l -> (k, s) :: l) tbl [] |> List.sort compare

(** Merged named counters, sorted by name. *)
let counter_list () : (string * int) list =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 32 in
  fold_accs (fun a ->
      Hashtbl.iter
        (fun k r ->
          Hashtbl.replace tbl k
            (!r + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        a.counts);
  Hashtbl.fold (fun k n l -> (k, n) :: l) tbl [] |> List.sort compare

let counter_value (name : string) : int =
  Option.value ~default:0 (List.assoc_opt name (counter_list ()))

let pp_report ppf () =
  let stats = span_stats () in
  let counters = counter_list () in
  Format.fprintf ppf "@[<v 2>trace:";
  if stats = [] && counters = [] then Format.fprintf ppf "@,  (empty)";
  List.iter
    (fun (k, s) ->
      Format.fprintf ppf "@,  %-28s %7d spans %9.3fs total %9.1fus mean" k
        s.count s.total_s
        (if s.count = 0 then 0. else 1e6 *. s.total_s /. float_of_int s.count))
    stats;
  List.iter
    (fun (k, n) -> Format.fprintf ppf "@,  %-28s %7d" k n)
    counters;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Trace-file validation (jahob trace-check, golden tests)             *)
(* ------------------------------------------------------------------ *)

type check_summary = {
  events : int;
  spans : int; (* matched begin/end pairs *)
  max_depth : int; (* deepest nesting on any one thread *)
}

(** Validate a JSON-lines trace: every line parses as a JSON object with
    the event fields, and begin/end events nest properly per thread. *)
let check_jsonl_file (path : string) : (check_summary, string) result =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let events = ref 0 and spans = ref 0 and max_depth = ref 0 in
  let err line msg = Error (Printf.sprintf "line %d: %s" line msg) in
  let rec go line =
    match input_line ic with
    | exception End_of_file ->
      let unbalanced =
        Hashtbl.fold (fun _ stack n -> n + List.length stack) stacks 0
      in
      if unbalanced > 0 then
        Error (Printf.sprintf "%d unclosed span(s) at end of trace" unbalanced)
      else Ok { events = !events; spans = !spans; max_depth = !max_depth }
    | text -> (
      match Json.parse text with
      | exception Json.Error (msg, pos) ->
        err line (Printf.sprintf "invalid JSON at offset %d: %s" pos msg)
      | v -> (
        let str k = match Json.member k v with Some (Json.Str s) -> Some s | _ -> None in
        let num k = match Json.member k v with Some (Json.Num x) -> Some x | _ -> None in
        match str "ph", str "name", num "ts", num "tid" with
        | None, _, _, _ -> err line "missing or non-string \"ph\""
        | _, None, _, _ -> err line "missing or non-string \"name\""
        | _, _, None, _ -> err line "missing or non-numeric \"ts\""
        | _, _, _, None -> err line "missing or non-numeric \"tid\""
        | Some ph, Some name, Some ts, Some tid ->
          if ts < 0. then err line "negative timestamp"
          else begin
            Stdlib.incr events;
            let tid = int_of_float tid in
            let stack =
              Option.value ~default:[] (Hashtbl.find_opt stacks tid)
            in
            match ph with
            | "B" ->
              let stack = name :: stack in
              Hashtbl.replace stacks tid stack;
              if List.length stack > !max_depth then
                max_depth := List.length stack;
              go (line + 1)
            | "E" -> (
              match stack with
              | top :: rest when top = name ->
                Stdlib.incr spans;
                Hashtbl.replace stacks tid rest;
                go (line + 1)
              | top :: _ ->
                err line
                  (Printf.sprintf "end of %S does not match open span %S" name
                     top)
              | [] -> err line (Printf.sprintf "end of %S with no open span" name))
            | "i" | "C" -> go (line + 1)
            | other -> err line (Printf.sprintf "unknown event phase %S" other)
          end))
  in
  go 1
