(** A standalone Presburger prover over the specification logic.

    Translates pure linear-integer-arithmetic sequents into {!Pform} and
    decides them with {!Cooper}'s quantifier elimination.  Unlike the SMT
    prover's Omega-based theory solver this path handles quantifiers, and
    because Cooper's procedure is a genuine decision procedure for the
    fragment, a failed validity check is a real countermodel — the prover
    may answer [Invalid].

    Used by the differential fuzzer as an independent party cross-checking
    the SMT prover's arithmetic core. *)

open Logic

exception Out_of_fragment of string

let out fmt = Format.kasprintf (fun s -> raise (Out_of_fragment s)) fmt

(* translation of integer terms into linear terms *)
let rec term (f : Form.t) : Linterm.t =
  match Form.strip_types f with
  | Form.Var x -> Linterm.var x
  | Form.Const (Form.IntLit n) -> Linterm.const n
  | Form.App (Form.Const Form.Plus, [ a; b ]) -> Linterm.add (term a) (term b)
  | Form.App (Form.Const Form.Minus, [ a; b ]) -> Linterm.sub (term a) (term b)
  | Form.App (Form.Const Form.Uminus, [ a ]) -> Linterm.neg (term a)
  | Form.App (Form.Const Form.Mult, [ a; b ]) -> (
    (* linear multiplication only: one factor must be a literal *)
    match Form.strip_types a, Form.strip_types b with
    | Form.Const (Form.IntLit k), _ -> Linterm.scale k (term b)
    | _, Form.Const (Form.IntLit k) -> Linterm.scale k (term a)
    | _ -> out "nonlinear product %s" (Pprint.to_string f))
  | g -> out "non-arithmetic term %s" (Pprint.to_string g)

let rec translate (f : Form.t) : Pform.t =
  match Form.strip_types f with
  | Form.Const (Form.BoolLit true) -> Pform.Tru
  | Form.Const (Form.BoolLit false) -> Pform.Fls
  | Form.App (Form.Const Form.Not, [ g ]) -> Pform.mk_not (translate g)
  | Form.App (Form.Const Form.And, gs) -> Pform.mk_and (List.map translate gs)
  | Form.App (Form.Const Form.Or, gs) -> Pform.mk_or (List.map translate gs)
  | Form.App (Form.Const Form.Impl, [ a; b ]) ->
    Pform.mk_impl (translate a) (translate b)
  | Form.App (Form.Const Form.Iff, [ a; b ]) ->
    let pa = translate a and pb = translate b in
    Pform.mk_and [ Pform.mk_impl pa pb; Pform.mk_impl pb pa ]
  | Form.App (Form.Const Form.Ite, [ c; a; b ]) ->
    let pc = translate c in
    Pform.mk_or
      [ Pform.mk_and [ pc; translate a ];
        Pform.mk_and [ Pform.mk_not pc; translate b ];
      ]
  | Form.App (Form.Const Form.Eq, [ a; b ]) -> Pform.t_eq (term a) (term b)
  | Form.App (Form.Const Form.Lt, [ a; b ]) -> Pform.t_lt (term a) (term b)
  | Form.App (Form.Const Form.Le, [ a; b ]) -> Pform.t_le (term a) (term b)
  | Form.App (Form.Const Form.Gt, [ a; b ]) -> Pform.t_gt (term a) (term b)
  | Form.App (Form.Const Form.Ge, [ a; b ]) -> Pform.t_ge (term a) (term b)
  | Form.Binder (Form.Forall, vars, body) -> quantify Pform.mk_all vars body
  | Form.Binder (Form.Exists, vars, body) -> quantify Pform.mk_ex vars body
  | g -> out "non-Presburger formula %s" (Pprint.to_string g)

and quantify mk vars body =
  List.iter
    (fun (x, ty) ->
      match ty with
      | Ftype.Int | Ftype.Tvar _ -> ()
      | _ -> out "non-integer binder %s : %s" x (Ftype.to_string ty))
    vars;
  List.fold_right (fun (x, _) acc -> mk x acc) vars (translate body)

(* qelim is worst-case super-exponential; keep inputs small enough that it
   always terminates promptly *)
let max_size = 120
let max_free_vars = 5

(* Typecheck the sequent, insist every free variable is integer-sorted, and
   return the disambiguated implication.  Sorts left unconstrained (Tvar)
   are rejected: interpreting them as integers could disagree with the
   oracle's object-sorted reading.  [env] can pre-sort the vocabulary (the
   fuzzer passes its fragment environment) to resolve otherwise-ambiguous
   comparisons like [k < j]. *)
let prepare_plain ?(env = Typecheck.Smap.empty) (s : Sequent.t) : Pform.t =
  let f = Sequent.to_form s in
  if Form.size_shared f > max_size then out "sequent too large";
  match Typecheck.infer ~env f with
  | exception Typecheck.Type_error msg -> out "ill-typed: %s" msg
  | f, (Ftype.Bool | Ftype.Tvar _), free ->
    Typecheck.Smap.iter
      (fun x ty ->
        match ty with
        | Ftype.Int -> ()
        | ty -> out "free variable %s : %s" x (Ftype.to_string ty))
      free;
    if Typecheck.Smap.cardinal free > max_free_vars then
      out "too many free variables";
    translate f
  | _, ty, _ -> out "not a formula: %s" (Ftype.to_string ty)

let prepare_memo : (Pform.t, string) result Hashcons.Memo.t =
  Hashcons.Memo.create ()

(* [in_fragment] and [prove] both call [prepare], so without memoization
   every dispatched obligation is typechecked and translated twice.  The
   memo is keyed by the interned implication form and also remembers
   rejections (as [Error]), which re-raise as [Out_of_fragment].  Calls
   with a non-empty typing environment bypass the memo: the result then
   depends on the environment, not just the formula. *)
let prepare ?(env = Typecheck.Smap.empty) (s : Sequent.t) : Pform.t =
  if (not (Hashcons.enabled ())) || not (Typecheck.Smap.is_empty env) then
    prepare_plain ~env s
  else
    let tag = Form.htag (Form.import (Sequent.to_form s)) in
    match
      Hashcons.Memo.find_or_add prepare_memo tag (fun () ->
          match prepare_plain ~env s with
          | p -> Ok p
          | exception Out_of_fragment m -> Error m)
    with
    | Ok p -> p
    | Error m -> raise (Out_of_fragment m)

let in_fragment ?env (s : Sequent.t) : bool =
  match prepare ?env s with _ -> true | exception Out_of_fragment _ -> false

let prove (s : Sequent.t) : Sequent.verdict =
  match prepare s with
  | exception Out_of_fragment msg -> Sequent.Unknown msg
  | p -> (
    (* Cooper decides the fragment: non-validity is a genuine countermodel
       (free variables are universally quantified in the validity reading,
       so the witness falsifies the sequent).  The work cap turns the rare
       super-exponential B-set expansion into an honest [Unknown] instead
       of a runaway computation no wall-clock budget can interrupt. *)
    match Cooper.valid ~cap:200_000 p with
    | true -> Sequent.Valid
    | false -> Sequent.Invalid "Presburger countermodel (Cooper)"
    | exception Stack_overflow -> Sequent.Unknown "cooper: stack overflow"
    | exception Cooper.Fuel_exhausted -> Sequent.Unknown "cooper: fuel exhausted"
    | exception Omega.Fuel_exhausted -> Sequent.Unknown "cooper: fuel exhausted")

let prover : Sequent.prover = { prover_name = "cooper"; prove }
