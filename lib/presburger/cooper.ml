(** Cooper's quantifier-elimination procedure for Presburger arithmetic.

    Decides full first-order linear integer arithmetic, the back end the
    paper uses (via the Omega test) for the BAPA decision procedure [43].
    We implement the textbook lower-bound ("B-set") variant:

    {v
      EX x. F(x)   <=>   \/_{j=1..delta} F_{-inf}[x := j]
                       \/ \/_{b in B} \/_{j=0..delta-1} F[x := b + j]
    v}

    after normalizing every occurrence of [x] to coefficient +-1. *)

open Pform

(** Raised when elimination would exceed the caller-supplied work cap:
    the B-set expansion multiplies the formula by [delta * (|B| + 1)] per
    eliminated variable, which is super-exponential in the worst case. *)
exception Fuel_exhausted

let rec gcd_int a b = if b = 0 then abs a else gcd_int b (a mod b)
let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd_int a b * b)

let rec size f =
  match f with
  | Tru | Fls | Le _ | Eq _ | Dvd _ -> 1
  | Not g -> 1 + size g
  | And fs | Or fs -> List.fold_left (fun n g -> n + size g) 1 fs
  | Ex (_, g) | All (_, g) -> 1 + size g

(* NNF that keeps negation only on Dvd atoms; Le and Eq negations are
   expressed arithmetically. *)
let rec nnf f =
  match f with
  | Tru | Fls | Le _ | Eq _ | Dvd _ -> f
  | And fs -> mk_and (List.map nnf fs)
  | Or fs -> mk_or (List.map nnf fs)
  | Ex (x, g) -> Ex (x, nnf g)
  | All (x, g) -> All (x, nnf g)
  | Not g -> nnf_neg g

and nnf_neg f =
  match f with
  | Tru -> Fls
  | Fls -> Tru
  | Le t ->
    (* ~(t <= 0) <=> -t + 1 <= 0 *)
    mk_le (Linterm.add (Linterm.neg t) (Linterm.const 1))
  | Eq t ->
    (* ~(t = 0) <=> t <= -1 \/ -t <= -1 *)
    mk_or
      [ mk_le (Linterm.add t (Linterm.const 1));
        mk_le (Linterm.add (Linterm.neg t) (Linterm.const 1));
      ]
  | Dvd _ -> Not f
  | Not g -> nnf g
  | And fs -> mk_or (List.map nnf_neg fs)
  | Or fs -> mk_and (List.map nnf_neg fs)
  | Ex (x, g) -> All (x, nnf_neg g)
  | All (x, g) -> Ex (x, nnf_neg g)

(* Equalities are split so that only Le/Dvd atoms mention the eliminated
   variable; applied to NNF formulas. *)
let rec split_eq x f =
  match f with
  | Eq t when Linterm.mem x t ->
    mk_and [ mk_le t; mk_le (Linterm.neg t) ]
  | Not (Dvd _) | Dvd _ | Le _ | Eq _ | Tru | Fls -> f
  | Not g -> mk_not (split_eq x g)
  | And fs -> mk_and (List.map (split_eq x) fs)
  | Or fs -> mk_or (List.map (split_eq x) fs)
  | Ex (y, g) -> Ex (y, split_eq x g)
  | All (y, g) -> All (y, split_eq x g)

(* lcm of the absolute coefficients of x over all atoms *)
let rec coeff_lcm x f =
  match f with
  | Le t | Eq t | Dvd (_, t) ->
    let c = Linterm.coeff x t in
    if c = 0 then 1 else abs c
  | Not g -> coeff_lcm x g
  | And fs | Or fs -> List.fold_left (fun l g -> lcm l (coeff_lcm x g)) 1 fs
  | Tru | Fls -> 1
  | Ex _ | All _ -> invalid_arg "Cooper: nested quantifier during elimination"

(* Normalize coefficient of x to +-1 by scaling each atom up to l; the
   result is phrased in a *new* unit variable standing for l*x.  Because we
   then conjoin Dvd(l, x'), the transformation preserves satisfiability. *)
let rec normalize x l f =
  match f with
  | Le t ->
    let c = Linterm.coeff x t in
    if c = 0 then f
    else begin
      let m = l / abs c in
      let t' = Linterm.scale m t in
      (* replace coefficient +-l by +-1 *)
      let sign = if c > 0 then 1 else -1 in
      Le (Linterm.add (Linterm.var ~coeff:sign x) (Linterm.drop x t'))
    end
  | Dvd (d, t) ->
    let c = Linterm.coeff x t in
    if c = 0 then f
    else begin
      let m = l / abs c in
      let t' = Linterm.scale m t in
      let sign = if c > 0 then 1 else -1 in
      Dvd (m * d, Linterm.add (Linterm.var ~coeff:sign x) (Linterm.drop x t'))
    end
  | Not g -> mk_not (normalize x l g)
  | And fs -> mk_and (List.map (normalize x l) fs)
  | Or fs -> mk_or (List.map (normalize x l) fs)
  | Tru | Fls | Eq _ -> f
  | Ex _ | All _ -> invalid_arg "Cooper: nested quantifier during elimination"

(* divisors appearing in Dvd atoms mentioning x *)
let rec divisor_lcm x f =
  match f with
  | Dvd (d, t) -> if Linterm.mem x t then d else 1
  | Not g -> divisor_lcm x g
  | And fs | Or fs -> List.fold_left (fun l g -> lcm l (divisor_lcm x g)) 1 fs
  | Le _ | Eq _ | Tru | Fls -> 1
  | Ex _ | All _ -> invalid_arg "Cooper: nested quantifier during elimination"

(* lower-bound terms: atoms  -x + r <= 0  give  x >= r,  so B contains r *)
let rec lower_bounds x f =
  match f with
  | Le t when Linterm.coeff x t = -1 -> [ Linterm.drop x t ]
  | Le _ | Eq _ | Dvd _ | Tru | Fls -> []
  | Not g -> lower_bounds x g
  | And fs | Or fs -> List.concat_map (lower_bounds x) fs
  | Ex _ | All _ -> invalid_arg "Cooper: nested quantifier during elimination"

(* F_{-inf}: drop bound atoms for x -> -infinity *)
let rec minus_inf x f =
  match f with
  | Le t when Linterm.coeff x t = 1 -> Tru (* x + r <= 0 holds eventually *)
  | Le t when Linterm.coeff x t = -1 -> Fls (* -x + r <= 0 fails eventually *)
  | Le _ | Eq _ | Dvd _ | Tru | Fls -> f
  | Not g -> mk_not (minus_inf x g)
  | And fs -> mk_and (List.map (minus_inf x) fs)
  | Or fs -> mk_or (List.map (minus_inf x) fs)
  | Ex _ | All _ -> invalid_arg "Cooper: nested quantifier during elimination"

(* substitute x := u (with x having coefficient +-1 everywhere) *)
let rec subst_var x (u : Linterm.t) f =
  match f with
  | Le t -> mk_le (Linterm.subst x u t)
  | Eq t -> mk_eq (Linterm.subst x u t)
  | Dvd (d, t) -> mk_dvd d (Linterm.subst x u t)
  | Not g -> mk_not (subst_var x u g)
  | And fs -> mk_and (List.map (subst_var x u) fs)
  | Or fs -> mk_or (List.map (subst_var x u) fs)
  | Tru | Fls -> f
  | Ex _ | All _ -> invalid_arg "Cooper: nested quantifier during elimination"

(** Eliminate [EX x] from quantifier-free [f].  [cap] bounds the size of
    the expansion about to be built (estimated before allocating it);
    exceeding it raises {!Fuel_exhausted}. *)
let eliminate ?(cap = max_int) x f =
  let f = split_eq x (nnf f) in
  if not (List.mem x (free_vars f)) then f
  else begin
    let l = coeff_lcm x f in
    let f = normalize x l f in
    let f = if l = 1 then f else mk_and [ f; Dvd (l, Linterm.var x) ] in
    let delta = max 1 (divisor_lcm x f) in
    let f_inf = minus_inf x f in
    let bs = lower_bounds x f in
    if cap <> max_int then begin
      let copies = delta * (List.length bs + 1) in
      if copies > cap || copies * size f > cap then raise Fuel_exhausted
    end;
    let inf_cases =
      List.init delta (fun j ->
          subst_var x (Linterm.const (j + 1)) f_inf)
    in
    let bound_cases =
      List.concat_map
        (fun b ->
          List.init delta (fun j ->
              subst_var x (Linterm.add b (Linterm.const j)) f))
        bs
    in
    mk_or (inf_cases @ bound_cases)
  end

(** Full quantifier elimination, innermost first.  [cap] is a work bound:
    any single elimination whose expansion would exceed it, and any
    intermediate result larger than it, raises {!Fuel_exhausted}.  The
    default ([max_int]) never gives up. *)
let rec qelim ?(cap = max_int) f =
  (* polled beside the Fuel_exhausted size cap: the cap bounds the output
     of one elimination, the deadline bounds the whole traversal *)
  Deadline.check ();
  let guard g =
    if cap <> max_int && size g > cap then raise Fuel_exhausted;
    g
  in
  match f with
  | Tru | Fls | Le _ | Eq _ | Dvd _ -> f
  | Not g -> mk_not (qelim ~cap g)
  | And fs -> mk_and (List.map (qelim ~cap) fs)
  | Or fs -> mk_or (List.map (qelim ~cap) fs)
  | Ex (x, g) -> guard (eliminate ~cap x (qelim ~cap g))
  | All (x, g) -> guard (mk_not (eliminate ~cap x (nnf (mk_not (qelim ~cap g)))))

(** Decide a closed formula. *)
let decide ?cap f =
  let g = qelim ?cap f in
  match free_vars g with
  | [] -> eval [] g
  | _ :: _ -> invalid_arg "Cooper.decide: formula is not closed"

(** Satisfiability with free variables interpreted existentially. *)
let satisfiable ?cap f =
  let closed = List.fold_left (fun g x -> mk_ex x g) f (free_vars f) in
  decide ?cap closed

(** Validity with free variables interpreted universally. *)
let valid ?cap f = not (satisfiable ?cap (mk_not f))
