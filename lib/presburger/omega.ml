(** The Omega test (Pugh 1991): integer feasibility of a conjunction of
    linear equalities and inequalities.

    The paper's BAPA procedure reduces to Presburger arithmetic "based on
    reduction to the Omega decision procedure"; this module is that back
    end.  Structure:

    - equality elimination by the mod-reduction substitution (exact);
    - variable elimination from inequalities by Fourier-Motzkin shadows:
      if the {e dark shadow} is satisfiable the input is satisfiable; if
      the {e real shadow} is unsatisfiable the input is unsatisfiable;
      otherwise the grey area is covered exactly by {e splinters}. *)

type verdict = Sat | Unsat

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Constraints are Linterm.t with implicit "<= 0" (ineqs) or "= 0" (eqs). *)
type system = { eqs : Linterm.t list; ineqs : Linterm.t list }

let of_pform_conj (atoms : Pform.t list) : system option =
  let rec add sys = function
    | [] -> Some sys
    | Pform.Tru :: rest -> add sys rest
    | Pform.Fls :: rest ->
      (* representable as the infeasible constant constraint 1 <= 0 *)
      add { sys with ineqs = Linterm.const 1 :: sys.ineqs } rest
    | Pform.Le t :: rest -> add { sys with ineqs = t :: sys.ineqs } rest
    | Pform.Eq t :: rest -> add { sys with eqs = t :: sys.eqs } rest
    | (Pform.Dvd _ | Pform.Not _ | Pform.And _ | Pform.Or _ | Pform.Ex _
      | Pform.All _) :: _ ->
      None (* out of the quantifier-free conjunctive fragment *)
  in
  add { eqs = []; ineqs = [] } atoms

(* symmetric ("balanced") modulus: a mod^ b in (-b/2, b/2] *)
let bmod a b =
  let m = a - (b * ((a / b) + if a mod b < 0 then -1 else 0)) in
  (* m in [0, b) now; shift to balanced range *)
  if 2 * m > b then m - b else m

exception Infeasible

(* Normalize an equality: divide by gcd; detect trivial (in)feasibility. *)
let norm_eq t =
  let g = Linterm.coeff_gcd t in
  if g = 0 then if Linterm.constant t = 0 then None else raise Infeasible
  else if Linterm.constant t mod g <> 0 then raise Infeasible
  else Some (Linterm.quotient_exact g t)

(* Eliminate one equality from the system, possibly introducing a fresh
   variable (Pugh's mod-elimination).  Returns the substitution applied to
   everything. *)
(* atomic: provers may run concurrently on separate domains *)
let fresh_counter = Atomic.make 0

let fresh_var () =
  Printf.sprintf "_omega%d" (Atomic.fetch_and_add fresh_counter 1 + 1)

let rec eliminate_equalities (sys : system) : system =
  (if Sys.getenv_opt "OMEGA_DEBUG" <> None then
     Printf.eprintf "elim eqs=%d ineqs=%d\n%!" (List.length sys.eqs)
       (List.length sys.ineqs));
  match sys.eqs with
  | [] -> sys
  | e :: rest -> (
    match norm_eq e with
    | None -> eliminate_equalities { sys with eqs = rest }
    | Some e ->
      (* pick the variable with the smallest |coefficient| *)
      let coeffs = Linterm.coeffs e in
      let xk, ck =
        List.fold_left
          (fun (bx, bc) (x, c) -> if abs c < abs bc then (x, c) else (bx, bc))
          (List.hd coeffs) (List.tl coeffs)
      in
      if abs ck = 1 then begin
        (* solve for xk directly: xk = -sign * (rest of e) *)
        let u = Linterm.scale (-ck) (Linterm.drop xk e) in
        let sub t = Linterm.subst xk u t in
        eliminate_equalities
          { eqs = List.map sub rest; ineqs = List.map sub sys.ineqs }
      end
      else begin
        (* Pugh's mod reduction.  Orient the equality so xk's coefficient
           ak is positive; with m = ak + 1 we have ak ≡ -1 (mod m), so the
           balanced-mod congruence of the equality solves for xk:

             xk = -m*sigma + sum_{i<>k} bmod(ai, m)*xi + bmod(c, m)

           Substituting back makes every coefficient of the equality
           divisible by m; gcd normalization then shrinks it, which
           guarantees termination. *)
        let e2 = if ck > 0 then e else Linterm.neg e in
        let ak = abs ck in
        let m = ak + 1 in
        let sigma = fresh_var () in
        let others =
          List.filter_map
            (fun (x, c) -> if x = xk then None else Some (x, bmod c m))
            (Linterm.coeffs e2)
        in
        let subst_term =
          Linterm.of_list
            ((sigma, -m) :: others)
            (bmod (Linterm.constant e2) m)
        in
        let sub t = Linterm.subst xk subst_term t in
        eliminate_equalities
          { eqs = List.map sub (e2 :: rest); ineqs = List.map sub sys.ineqs }
      end)

(* choose the variable to eliminate: fewest (lower x upper) products *)
let pick_variable (ineqs : Linterm.t list) : string option =
  let vars =
    List.sort_uniq compare (List.concat_map Linterm.variables ineqs)
  in
  let cost x =
    let lowers =
      List.length (List.filter (fun t -> Linterm.coeff x t < 0) ineqs)
    in
    let uppers =
      List.length (List.filter (fun t -> Linterm.coeff x t > 0) ineqs)
    in
    (lowers * uppers) - lowers - uppers
  in
  match vars with
  | [] -> None
  | v :: rest ->
    Some
      (List.fold_left (fun best x -> if cost x < cost best then x else best) v rest)

(* Normalize an inequality t <= 0 by the coefficient gcd. *)
let norm_ineq t =
  let g = Linterm.coeff_gcd t in
  if g = 0 then
    if Linterm.constant t <= 0 then None else raise Infeasible
  else Some (Linterm.quotient_ceil g t)

let norm_ineqs ts = List.filter_map norm_ineq ts

(* Does the variable-free system hold?  (After eliminating all variables
   the remaining constraints are constants.) *)

exception Fuel_exhausted

(* canonical key for redundancy elimination *)
let ineq_key (t : Linterm.t) = (Linterm.coeffs t, Linterm.constant t)

let dedupe_ineqs (ts : Linterm.t list) : Linterm.t list =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun t ->
      let k = ineq_key t in
      (* keep only the tightest constant per coefficient vector *)
      match Hashtbl.find_opt seen (fst k) with
      | Some c when c >= snd k -> false
      | _ ->
        Hashtbl.replace seen (fst k) (snd k);
        true)
    (List.sort
       (fun a b -> compare (ineq_key b) (ineq_key a))
       ts)

let max_ineqs = 4000

let rec feasible_ineqs (fuel : int) (ineqs : Linterm.t list) : verdict =
  (if Sys.getenv_opt "OMEGA_DEBUG" <> None then
     Printf.eprintf "feasible fuel=%d ineqs=%d\n%!" fuel (List.length ineqs));
  if fuel <= 0 then raise Fuel_exhausted
  else
    match
      (try Some (dedupe_ineqs (norm_ineqs ineqs)) with Infeasible -> None)
    with
    | None -> Unsat
    | Some ineqs when List.length ineqs > max_ineqs -> raise Fuel_exhausted
    | Some ineqs
      when List.exists
             (fun t ->
               List.exists (fun (_, c) -> abs c > 1_000_000) (Linterm.coeffs t))
             ineqs ->
      raise Fuel_exhausted
    | Some ineqs -> (
      match pick_variable ineqs with
      | None -> Sat (* all constraints were constant and satisfied *)
      | Some x ->
        let lowers =
          List.filter (fun t -> Linterm.coeff x t < 0) ineqs
        in
        let uppers = List.filter (fun t -> Linterm.coeff x t > 0) ineqs in
        let others = List.filter (fun t -> Linterm.coeff x t = 0) ineqs in
        if lowers = [] || uppers = [] then
          (* x unbounded on one side: drop all its constraints *)
          feasible_ineqs (fuel - 1) others
        else begin
          (* real shadow: for lower  b <= a*x  (written -a*x + b' <= 0)
             and upper  c*x <= d:  combine to  c*b' + a*d' <= ... ;
             concretely from  L: -a*x + tb <= 0  (a > 0)
             and          U:  c*x + tc <= 0  (c > 0)
             real shadow:  c*tb + a*tc <= 0
             dark shadow:  c*tb + a*tc <= -( (a-1)*(c-1) ) *)
          let combine dark (l, u) =
            let a = -Linterm.coeff x l in
            let c = Linterm.coeff x u in
            let tb = Linterm.drop x l and tc = Linterm.drop x u in
            let base = Linterm.add (Linterm.scale c tb) (Linterm.scale a tc) in
            if dark then Linterm.add base (Linterm.const ((a - 1) * (c - 1)))
            else base
          in
          if List.length lowers * List.length uppers > max_ineqs then
            raise Fuel_exhausted;
          let pairs =
            List.concat_map (fun l -> List.map (fun u -> (l, u)) uppers) lowers
          in
          let exact =
            List.for_all
              (fun (l, u) ->
                -Linterm.coeff x l = 1 || Linterm.coeff x u = 1)
              pairs
          in
          let real_shadow = List.map (combine false) pairs @ others in
          if exact then feasible_ineqs (fuel - 1) real_shadow
          else begin
            let dark_shadow = List.map (combine true) pairs @ others in
            match feasible_ineqs (fuel - 1) dark_shadow with
            | Sat -> Sat
            | Unsat -> (
              match feasible_ineqs (fuel - 1) real_shadow with
              | Unsat -> Unsat
              | Sat ->
                (* grey area: splinter on the largest lower-bound
                   coefficient: exists i in [0, (a*c - a - c)/c] with
                   a*x = tb + i  for some lower bound *)
                let amax =
                  List.fold_left
                    (fun acc l -> max acc (-Linterm.coeff x l))
                    1 lowers
                in
                let cmax =
                  List.fold_left
                    (fun acc u -> max acc (Linterm.coeff x u))
                    1 uppers
                in
                let bound = ((amax * cmax) - amax - cmax) / cmax in
                if bound > 16 then raise Fuel_exhausted;
                let splinters =
                  List.concat_map
                    (fun l ->
                      let a = -Linterm.coeff x l in
                      let tb = Linterm.drop x l in
                      List.init (bound + 1) (fun i ->
                          (* a*x = tb + i: substitute via equality path *)
                          Linterm.add
                            (Linterm.add (Linterm.var ~coeff:a x) (Linterm.neg tb))
                            (Linterm.const (-i))))
                    lowers
                in
                let any_splinter_sat =
                  List.exists
                    (fun eq ->
                      match
                        check_system (fuel - 1)
                          { eqs = [ eq ]; ineqs }
                      with
                      | Sat -> true
                      | Unsat -> false)
                    splinters
                in
                if any_splinter_sat then Sat else Unsat)
          end
        end)

and check_system fuel (sys : system) : verdict =
  match
    (try Some (eliminate_equalities sys) with Infeasible -> None)
  with
  | None -> Unsat
  | Some sys' -> feasible_ineqs fuel sys'.ineqs

(** Decide integer feasibility of a conjunction of [Le]/[Eq] atoms. *)
let check ?(fuel = 200) (atoms : Pform.t list) : verdict option =
  match of_pform_conj atoms with
  | None -> None (* not in the conjunctive fragment *)
  | Some sys -> (
    match check_system fuel sys with
    | v -> Some v
    | exception Fuel_exhausted -> None)

(** As {!check} but for systems given directly; may raise
    {!Fuel_exhausted}, which callers must treat as "inconclusive". *)
let check_terms ?(fuel = 200) ~(eqs : Linterm.t list)
    ~(ineqs : Linterm.t list) () : verdict =
  check_system fuel { eqs; ineqs }
