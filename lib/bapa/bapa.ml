(** BAPA: Boolean Algebra with Presburger Arithmetic.

    The decision procedure of Kuncak-Nguyen-Rinard (CADE-20, [43]) that
    the paper integrates "based on reduction to the Omega decision
    procedure": quantifier-free formulas combining set algebra, set
    cardinalities and linear integer arithmetic reduce to pure Presburger
    arithmetic by introducing one nonnegative integer unknown per Venn
    region of the free set variables.  The resulting PA formula goes to
    {!Presburger.Cooper} (or the Omega test for conjunctions).

    Element variables (objects) are encoded as singleton sets; [null] is
    one more such element. *)

open Logic
module Linterm = Presburger.Linterm
module Pform = Presburger.Pform

exception Out_of_fragment of string

let reject fmt = Format.kasprintf (fun s -> raise (Out_of_fragment s)) fmt

(* ------------------------------------------------------------------ *)
(* Set expressions                                                     *)
(* ------------------------------------------------------------------ *)

(* a set expression over indexed set variables *)
type sexp =
  | Svar of int
  | Sempty
  | Suniv
  | Sunion of sexp * sexp
  | Sinter of sexp * sexp
  | Sdiff of sexp * sexp

(* context: set variables (including singleton encodings of elements) *)
type ctx = {
  mutable sets : string list; (* index = position in list *)
  mutable singletons : int list; (* indices that must have cardinality 1 *)
  mutable ints : string list; (* variables with integer evidence *)
}

let set_index (ctx : ctx) (name : string) : int =
  let rec find i = function
    | [] ->
      ctx.sets <- ctx.sets @ [ name ];
      i
    | n :: rest -> if n = name then i else find (i + 1) rest
  in
  find 0 ctx.sets

let element_index (ctx : ctx) (name : string) : int =
  let i = set_index ctx ("$elem$" ^ name) in
  if not (List.mem i ctx.singletons) then
    ctx.singletons <- i :: ctx.singletons;
  i

(* does this term look like a set or an element? *)
let rec trans_set (ctx : ctx) (f : Form.t) : sexp =
  match Form.strip_types f with
  | Form.Var x -> Svar (set_index ctx x)
  | Form.Const Form.EmptySet -> Sempty
  | Form.Const Form.UnivSet -> Suniv
  | Form.App (Form.Const Form.Union, [ a; b ]) ->
    Sunion (trans_set ctx a, trans_set ctx b)
  | Form.App (Form.Const Form.Inter, [ a; b ]) ->
    Sinter (trans_set ctx a, trans_set ctx b)
  | Form.App (Form.Const (Form.Diff | Form.Minus), [ a; b ]) ->
    Sdiff (trans_set ctx a, trans_set ctx b)
  | Form.App (Form.Const Form.FiniteSet, elems) ->
    (* {e1, ..., en} = union of singleton element sets *)
    List.fold_left
      (fun acc e -> Sunion (acc, trans_element ctx e))
      Sempty elems
  | g -> reject "not a set expression: %s" (Pprint.to_string g)

and trans_element (ctx : ctx) (f : Form.t) : sexp =
  match Form.strip_types f with
  | Form.Var x -> Svar (element_index ctx x)
  | Form.Const Form.Null -> Svar (element_index ctx "null")
  | g -> reject "not an element: %s" (Pprint.to_string g)

(* ------------------------------------------------------------------ *)
(* Venn regions                                                        *)
(* ------------------------------------------------------------------ *)

(* region id r in [0, 2^n): bit i set iff the region lies inside set i *)
let region_var r = Printf.sprintf "$venn%d" r

(* which regions are inside a set expression *)
let rec regions_of (n : int) (s : sexp) : int list =
  let all = List.init (1 lsl n) (fun r -> r) in
  match s with
  | Svar i -> List.filter (fun r -> (r lsr i) land 1 = 1) all
  | Sempty -> []
  | Suniv -> all
  | Sunion (a, b) ->
    List.sort_uniq compare (regions_of n a @ regions_of n b)
  | Sinter (a, b) ->
    let rb = regions_of n b in
    List.filter (fun r -> List.mem r rb) (regions_of n a)
  | Sdiff (a, b) ->
    let rb = regions_of n b in
    List.filter (fun r -> not (List.mem r rb)) (regions_of n a)

let card_term (n : int) (s : sexp) : Linterm.t =
  Linterm.of_list (List.map (fun r -> (region_var r, 1)) (regions_of n s)) 0

(* ------------------------------------------------------------------ *)
(* Formula translation                                                 *)
(* ------------------------------------------------------------------ *)

(* two-pass translation: first pass collects set/element variables so the
   region count is known; second pass emits the PA formula *)
let rec collect_vars ?(bare = false) (ctx : ctx) (f : Form.t) : unit =
  let is_set_op = function
    | Form.Union | Form.Inter | Form.Diff | Form.FiniteSet | Form.EmptySet
    | Form.UnivSet ->
      true
    | _ -> false
  in
  ignore is_set_op;
  let rec atom_sets g =
    match Form.strip_types g with
    | Form.App (Form.Const (Form.Subseteq | Form.Subset), [ a; b ]) ->
      ignore (trans_set ctx a);
      ignore (trans_set ctx b)
    | Form.App (Form.Const Form.Eq, [ a; b ])
      when is_setlike a || is_setlike b ->
      ignore (trans_set ctx a);
      ignore (trans_set ctx b)
    | Form.App (Form.Const (Form.Le | Form.Lt | Form.Ge | Form.Gt), [ a; b ])
      ->
      note_int_vars ctx a;
      note_int_vars ctx b;
      atom_sets a;
      atom_sets b
    | Form.App (Form.Const Form.Eq, [ a; b ])
      when is_intlike a || is_intlike b ->
      note_int_vars ctx a;
      note_int_vars ctx b;
      atom_sets a;
      atom_sets b
    | Form.App (Form.Const Form.Eq, [ a; b ])
      when bare && is_atomic a && is_atomic b
           && (not (List.mem (var_name a) ctx.ints))
           && not (List.mem (var_name b) ctx.ints) ->
      (* bare equality: the second pass will use the element encoding, so
         the element sets must exist before the region count is fixed.
         If either side was registered as a set, register both as sets. *)
      let registered_set g =
        match Form.strip_types g with
        | Form.Var x -> List.mem x ctx.sets
        | _ -> false
      in
      if registered_set a || registered_set b then begin
        ignore (trans_set ctx a);
        ignore (trans_set ctx b)
      end
      else begin
        ignore (trans_element ctx a);
        ignore (trans_element ctx b)
      end
    | Form.App (Form.Const Form.Elem, [ x; s ]) ->
      ignore (trans_element ctx x);
      ignore (trans_set ctx s)
    | Form.App (Form.Const Form.Card, [ s ]) -> ignore (trans_set ctx s)
    | Form.App (_, args) -> List.iter atom_sets args
    | Form.Binder (_, _, body) -> atom_sets body
    | Form.Var _ | Form.Const _ | Form.TypedForm _ -> ()
  in
  atom_sets f

and var_name (f : Form.t) : string =
  match Form.strip_types f with Form.Var x -> x | _ -> ""

and is_intlike (f : Form.t) : bool =
  match Form.strip_types f with
  | Form.Const (Form.IntLit _) -> true
  | Form.App
      (Form.Const (Form.Plus | Form.Minus | Form.Mult | Form.Uminus | Form.Card), _)
    ->
    true
  | _ -> false

(* note the integer variables of an arithmetic term (not inside card) *)
and note_int_vars (ctx : ctx) (f : Form.t) : unit =
  match Form.strip_types f with
  | Form.Var x -> if not (List.mem x ctx.ints) then ctx.ints <- x :: ctx.ints
  | Form.Const _ -> ()
  | Form.App (Form.Const Form.Card, _) -> () (* set inside *)
  | Form.App (_, args) -> List.iter (note_int_vars ctx) args
  | Form.Binder _ | Form.TypedForm _ -> ()

and is_atomic (f : Form.t) : bool =
  match Form.strip_types f with
  | Form.Var _ | Form.Const Form.Null -> true
  | _ -> false

and is_setlike (f : Form.t) : bool =
  match Form.strip_types f with
  | Form.Const (Form.EmptySet | Form.UnivSet) -> true
  | Form.App
      (Form.Const (Form.Union | Form.Inter | Form.Diff | Form.FiniteSet), _) ->
    true
  | _ -> false

(* second pass: translate to Presburger once n is fixed *)
let rec trans_form (ctx : ctx) (n : int) (f : Form.t) : Pform.t =
  match Form.strip_types f with
  | Form.Const (Form.BoolLit true) -> Pform.Tru
  | Form.Const (Form.BoolLit false) -> Pform.Fls
  | Form.App (Form.Const Form.Not, [ g ]) -> Pform.mk_not (trans_form ctx n g)
  | Form.App (Form.Const Form.And, gs) ->
    Pform.mk_and (List.map (trans_form ctx n) gs)
  | Form.App (Form.Const Form.Or, gs) ->
    Pform.mk_or (List.map (trans_form ctx n) gs)
  | Form.App (Form.Const Form.Impl, [ a; b ]) ->
    Pform.mk_impl (trans_form ctx n a) (trans_form ctx n b)
  | Form.App (Form.Const Form.Iff, [ a; b ]) ->
    let ta = trans_form ctx n a and tb = trans_form ctx n b in
    Pform.mk_and [ Pform.mk_impl ta tb; Pform.mk_impl tb ta ]
  | Form.App (Form.Const Form.Elem, [ x; s ]) ->
    (* singleton(x) inside s: all regions of x outside s are empty *)
    let sx = trans_element ctx x in
    let ss = trans_set ctx s in
    subset_zero n (Sdiff (sx, ss))
  | Form.App (Form.Const Form.Subseteq, [ a; b ]) ->
    subset_zero n (Sdiff (trans_set ctx a, trans_set ctx b))
  | Form.App (Form.Const Form.Subset, [ a; b ]) ->
    let sa = trans_set ctx a and sb = trans_set ctx b in
    Pform.mk_and
      [ subset_zero n (Sdiff (sa, sb));
        Pform.t_ge (card_term n (Sdiff (sb, sa))) (Linterm.const 1) ]
  | Form.App (Form.Const Form.Eq, [ a; b ]) -> trans_eq ctx n a b
  | Form.App (Form.Const (Form.Le | Form.Lt | Form.Ge | Form.Gt), [ _; _ ]) ->
    trans_int_atom ctx n f
  | g -> reject "atom outside BAPA: %s" (Pprint.to_string g)

and trans_eq (ctx : ctx) (n : int) (a : Form.t) (b : Form.t) : Pform.t =
  let setlike g =
    is_setlike g
    ||
    match Form.strip_types g with
    | Form.Var x -> List.mem x ctx.sets
    | _ -> false
  in
  let elemlike g =
    match Form.strip_types g with
    | Form.Var x -> List.mem ("$elem$" ^ x) ctx.sets
    | Form.Const Form.Null -> true
    | _ -> false
  in
  let intlike g =
    match Form.strip_types g with
    | Form.Const (Form.IntLit _) -> true
    | Form.App (Form.Const (Form.Plus | Form.Minus | Form.Mult | Form.Card), _)
      ->
      true
    | Form.Var x -> List.mem x ctx.ints
    | _ -> false
  in
  if intlike a || intlike b then trans_int_atom ctx n (Form.mk_eq a b)
  else if setlike a || setlike b then begin
    let sa = trans_set ctx a and sb = trans_set ctx b in
    Pform.mk_and
      [ subset_zero n (Sdiff (sa, sb)); subset_zero n (Sdiff (sb, sa)) ]
  end
  else if elemlike a || elemlike b then begin
    let sa = trans_element ctx a and sb = trans_element ctx b in
    Pform.mk_and
      [ subset_zero n (Sdiff (sa, sb)); subset_zero n (Sdiff (sb, sa)) ]
  end
  else
    (* unknown sort: try element encoding (objects are the common case) *)
    let sa = trans_element ctx a and sb = trans_element ctx b in
    Pform.mk_and
      [ subset_zero n (Sdiff (sa, sb)); subset_zero n (Sdiff (sb, sa)) ]

(* all regions of s have cardinality 0 *)
and subset_zero (n : int) (s : sexp) : Pform.t =
  Pform.mk_and
    (List.map
       (fun r -> Pform.t_eq (Linterm.var (region_var r)) (Linterm.const 0))
       (regions_of n s))

(* integer atoms: cardinalities become region sums *)
and trans_int_atom (ctx : ctx) (n : int) (f : Form.t) : Pform.t =
  let rec term (g : Form.t) : Linterm.t =
    match Form.strip_types g with
    | Form.Var x ->
      if List.mem x ctx.sets || List.mem ("$elem$" ^ x) ctx.sets then
        reject "set/element variable %s in integer position" x
      else Linterm.var x
    | Form.Const (Form.IntLit k) -> Linterm.const k
    | Form.App (Form.Const Form.Card, [ s ]) -> card_term n (trans_set ctx s)
    | Form.App (Form.Const Form.Plus, [ a; b ]) ->
      Linterm.add (term a) (term b)
    | Form.App (Form.Const Form.Minus, [ a; b ]) ->
      Linterm.sub (term a) (term b)
    | Form.App (Form.Const Form.Uminus, [ a ]) -> Linterm.neg (term a)
    | Form.App (Form.Const Form.Mult, [ a; b ]) -> (
      match Form.strip_types a, Form.strip_types b with
      | Form.Const (Form.IntLit k), _ -> Linterm.scale k (term b)
      | _, Form.Const (Form.IntLit k) -> Linterm.scale k (term a)
      | _ -> reject "nonlinear multiplication")
    | g -> reject "integer term outside BAPA: %s" (Pprint.to_string g)
  in
  match Form.strip_types f with
  | Form.App (Form.Const Form.Eq, [ a; b ]) -> Pform.t_eq (term a) (term b)
  | Form.App (Form.Const Form.Le, [ a; b ]) -> Pform.t_le (term a) (term b)
  | Form.App (Form.Const Form.Lt, [ a; b ]) -> Pform.t_lt (term a) (term b)
  | Form.App (Form.Const Form.Ge, [ a; b ]) -> Pform.t_ge (term a) (term b)
  | Form.App (Form.Const Form.Gt, [ a; b ]) -> Pform.t_gt (term a) (term b)
  | g -> reject "integer atom outside BAPA: %s" (Pprint.to_string g)

(* ------------------------------------------------------------------ *)
(* Decision interface                                                  *)
(* ------------------------------------------------------------------ *)

let max_set_vars = 9 (* 2^9 = 512 Venn regions *)

(** Translate a quantifier-free formula to Presburger arithmetic;
    satisfiability-preserving. *)
let translate (f : Form.t) : Pform.t =
  (* resolve <= / < / - between sets before reading the fragment *)
  let f = Typecheck.disambiguate f in
  let f = Simplify.simplify f in
  let ctx = { sets = []; singletons = []; ints = [] } in
  (* pass 1 registers set evidence; pass 2 the bare equalities, so an
     equality never forces the element encoding on a known set *)
  collect_vars ~bare:false ctx f;
  collect_vars ~bare:true ctx f;
  let n = List.length ctx.sets in
  if n > max_set_vars then reject "too many set variables (%d)" n;
  let core = trans_form ctx n f in
  let nonneg =
    List.init (1 lsl n) (fun r ->
        Pform.t_ge (Linterm.var (region_var r)) (Linterm.const 0))
  in
  let singleton_constraints =
    List.map
      (fun i ->
        Pform.t_eq (card_term n (Svar i)) (Linterm.const 1))
      ctx.singletons
  in
  Pform.mk_and ((core :: nonneg) @ singleton_constraints)

(** Satisfiability of a quantifier-free BAPA formula.  The translated
    Presburger formula is put in bounded DNF; each disjunct goes to the
    Omega test (the paper's own PA back end); Cooper's full quantifier
    elimination is the fallback for small systems only. *)
let satisfiable (f : Form.t) : bool =
  let pa = Presburger.Cooper.nnf (translate f) in
  let max_branches = 64 in
  let rec dnf (g : Pform.t) : Pform.t list list option =
    match g with
    | Pform.Tru -> Some [ [] ]
    | Pform.Fls -> Some []
    | Pform.Le _ | Pform.Eq _ -> Some [ [ g ] ]
    | Pform.And gs ->
      List.fold_left
        (fun acc g ->
          match acc, dnf g with
          | Some bs, Some cs ->
            let prod =
              List.concat_map (fun b -> List.map (fun c -> b @ c) cs) bs
            in
            if List.length prod > max_branches then None else Some prod
          | _, _ -> None)
        (Some [ [] ])
        gs
    | Pform.Or gs ->
      List.fold_left
        (fun acc g ->
          match acc, dnf g with
          | Some bs, Some cs ->
            if List.length bs + List.length cs > max_branches then None
            else Some (bs @ cs)
          | _, _ -> None)
        (Some []) gs
    | Pform.Dvd _ | Pform.Not _ | Pform.Ex _ | Pform.All _ -> None
  in
  match dnf pa with
  | Some branches ->
    List.exists
      (fun atoms ->
        match Presburger.Omega.check atoms with
        | Some Presburger.Omega.Sat -> true
        | Some Presburger.Omega.Unsat -> false
        | None ->
          let nvars =
            List.length
              (List.sort_uniq compare
                 (List.concat_map Pform.free_vars atoms))
          in
          if nvars <= 6 then
            Presburger.Cooper.satisfiable (Pform.mk_and atoms)
          else reject "Omega inconclusive on a large Venn system")
      branches
  | None ->
    let nvars = List.length (Pform.free_vars pa) in
    if nvars <= 6 then Presburger.Cooper.satisfiable pa
    else reject "translation outside the Omega-conjunctive fragment"

(** Is the sequent's refutand inside the translatable BAPA fragment?
    (The decision procedure may still give up later — Omega inconclusive
    on a large Venn system — but such rejections surface as [Unknown].) *)
let in_fragment (s : Sequent.t) : bool =
  match translate (Sequent.refutand s) with
  | _ -> true
  | exception Out_of_fragment _ -> false

(** Prove a sequent in the BAPA fragment. *)
let prove (s : Sequent.t) : Sequent.verdict =
  match satisfiable (Sequent.refutand s) with
  | true ->
    (* the translation is complete on its fragment: a PA model yields a
       BAPA countermodel *)
    Sequent.Invalid "BAPA countermodel (Venn-region witness)"
  | false -> Sequent.Valid
  | exception Out_of_fragment what -> Sequent.Unknown ("BAPA: " ^ what)

let prover : Sequent.prover =
  Sequent.traced_prover { prover_name = "bapa"; prove }
