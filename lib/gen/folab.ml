(** Indexed-vs-naive differential campaign for the resolution prover.

    Both saturation engines run the same generated fol-fragment sequents
    under deliberately generous clause/weight/literal caps, so that a
    [Saturated] answer is a genuine satisfiability claim rather than a
    budget artifact.  Under that regime the engines must agree exactly on
    the {!Fol.Proof}/{!Fol.Saturated} axis — the indexed engine's
    subsumption and dedup may only change {e how fast} a verdict arrives,
    never which one — and a [Proof] must never contradict the finite-model
    oracle's countermodel.  [GaveUp] is the one timing-dependent outcome,
    so it is never flagged: a campaign run is deterministic for a fixed
    seed. *)

type config = {
  ab_seed : int;
  ab_count : int; (* sequents generated *)
  ab_size : int; (* generator fuel *)
  ab_max_universe : int; (* oracle universe bound *)
  ab_int_range : int;
  ab_max_models : int option;
}

let default_config =
  { ab_seed = 42;
    ab_count = 500;
    ab_size = 3;
    ab_max_universe = 3;
    ab_int_range = 2;
    ab_max_models = Some 200_000;
  }

type disagreement = {
  d_index : int; (* which generated sequent *)
  d_sequent : Logic.Sequent.t;
  d_why : string;
}

type report = {
  attempted : int;
  admitted : int; (* sequents inside the fol fragment *)
  proofs : int; (* indexed-engine proofs *)
  saturated : int;
  gave_up : int;
  oracle_counter : int; (* oracle found a countermodel *)
  disagreements : disagreement list;
}

(* generous caps: the point is to compare verdicts, not budgets *)
let outcome engine (s : Logic.Sequent.t) : (Fol.outcome, string) result =
  Fol.outcome_with ~engine ~max_clauses:2000 ~max_weight:10_000
    ~max_lits:1_000 ~timeout_s:2.5
    ~set_vars:(Fol.infer_set_vars s) s

let outcome_name = function
  | Ok Fol.Proof -> "proof"
  | Ok Fol.Saturated -> "saturated"
  | Ok Fol.GaveUp -> "gave-up"
  | Error _ -> "untranslatable"

let run ?(config = default_config) () : report =
  let frag = Formgen.Fol in
  let env = Formgen.type_env frag in
  let proofs = ref 0
  and saturated = ref 0
  and gave_up = ref 0
  and admitted = ref 0
  and oracle_counter = ref 0 in
  let disagreements = ref [] in
  let flag n s why =
    disagreements := { d_index = n; d_sequent = s; d_why = why } :: !disagreements
  in
  for n = 0 to config.ab_count - 1 do
    let s =
      Formgen.sequent_of_seed frag ~seed:config.ab_seed ~size:config.ab_size n
    in
    if Fol.in_fragment s then begin
      incr admitted;
      let ind = outcome Fol.Indexed s in
      let nai = outcome Fol.Naive s in
      (match ind with
      | Ok Fol.Proof -> incr proofs
      | Ok Fol.Saturated -> incr saturated
      | Ok Fol.GaveUp -> incr gave_up
      | Error _ -> ());
      (match (ind, nai) with
      | Ok Fol.Proof, Ok Fol.Saturated | Ok Fol.Saturated, Ok Fol.Proof ->
        flag n s
          (Printf.sprintf "engines disagree: indexed=%s naive=%s"
             (outcome_name ind) (outcome_name nai))
      | _ -> ());
      (* soundness: a Proof from either engine against the oracle *)
      if ind = Ok Fol.Proof || nai = Ok Fol.Proof then begin
        match
          Logic.Eval.check ~env ~max_universe:config.ab_max_universe
            ~int_range:config.ab_int_range ?max_models:config.ab_max_models s
        with
        | Logic.Eval.Countermodel _ ->
          incr oracle_counter;
          flag n s "unsound: resolution proof but the oracle found a countermodel"
        | Logic.Eval.No_countermodel _ | Logic.Eval.Unsupported_oracle _ -> ()
      end
    end
  done;
  { attempted = config.ab_count;
    admitted = !admitted;
    proofs = !proofs;
    saturated = !saturated;
    gave_up = !gave_up;
    oracle_counter = !oracle_counter;
    disagreements = List.rev !disagreements;
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf "@[<v>fol A/B: %d generated, %d in fragment@," r.attempted
    r.admitted;
  Format.fprintf ppf "indexed verdicts: %d proofs, %d saturated, %d gave up@,"
    r.proofs r.saturated r.gave_up;
  Format.fprintf ppf "disagreements: %d@," (List.length r.disagreements);
  List.iter
    (fun d ->
      Format.fprintf ppf "  #%d %s@,    %a@," d.d_index d.d_why
        Logic.Sequent.pp d.d_sequent)
    r.disagreements;
  Format.fprintf ppf "@]"
