(** BDD-vs-dense differential campaign for the WS1S automata engine.

    Both engines decide the same generated ws1s-fragment sequents through
    {!Fca.route_sequent}'s translation, each under its own deadline
    budget.  Wherever both runs settle (neither expires), the verdicts
    must be identical — the symbolic engine changes the representation of
    transition relations, never the language of any automaton.  A timeout
    is the one budget-dependent outcome, so an expiry on either side is
    counted but never flagged; for a fixed seed a campaign run is
    deterministic. *)

type config = {
  ab_seed : int;
  ab_count : int; (* sequents generated *)
  ab_size : int; (* generator fuel *)
  ab_budget_s : float; (* per-decision deadline, each engine *)
}

let default_config =
  { ab_seed = 42; ab_count = 400; ab_size = 3; ab_budget_s = 2.0 }

type disagreement = {
  d_index : int; (* which generated sequent *)
  d_sequent : Logic.Sequent.t;
  d_why : string;
}

type report = {
  attempted : int;
  admitted : int; (* sequents the MONA route accepts *)
  valid : int; (* BDD-engine verdicts *)
  invalid : int;
  expired : int; (* either engine ran out of budget *)
  disagreements : disagreement list;
}

type outcome = Valid | Invalid | Expired

let outcome_name = function
  | Valid -> "valid"
  | Invalid -> "invalid"
  | Expired -> "expired"

let decide (engine : Mona.Ws1s.engine) ~(budget_s : float)
    (formula : Mona.Ws1s.t) ~(fo : string list) : outcome =
  let token = Deadline.make ~deadline_in:budget_s () in
  match
    Deadline.with_token token (fun () ->
        Mona.Ws1s.valid ~engine ~fo formula)
  with
  | true -> Valid
  | false -> Invalid
  | exception Deadline.Expired -> Expired

let run ?(config = default_config) () : report =
  let frag = Formgen.Ws1s in
  let admitted = ref 0
  and valid = ref 0
  and invalid = ref 0
  and expired = ref 0 in
  let disagreements = ref [] in
  let flag n s why =
    disagreements :=
      { d_index = n; d_sequent = s; d_why = why } :: !disagreements
  in
  for n = 0 to config.ab_count - 1 do
    let s =
      Formgen.sequent_of_seed frag ~seed:config.ab_seed ~size:config.ab_size n
    in
    match Fca.route_sequent s with
    | Error _ -> ()
    | Ok (formula, fo) ->
      incr admitted;
      let bdd = decide Mona.Ws1s.Bdd ~budget_s:config.ab_budget_s formula ~fo in
      let dense =
        decide Mona.Ws1s.Dense ~budget_s:config.ab_budget_s formula ~fo
      in
      (match bdd with
      | Valid -> incr valid
      | Invalid -> incr invalid
      | Expired -> ());
      if bdd = Expired || dense = Expired then incr expired
      else if bdd <> dense then
        flag n s
          (Printf.sprintf "engines disagree: bdd=%s dense=%s"
             (outcome_name bdd) (outcome_name dense))
  done;
  { attempted = config.ab_count;
    admitted = !admitted;
    valid = !valid;
    invalid = !invalid;
    expired = !expired;
    disagreements = List.rev !disagreements;
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf "@[<v>mona A/B: %d generated, %d on the MONA route@,"
    r.attempted r.admitted;
  Format.fprintf ppf
    "bdd verdicts: %d valid, %d invalid; %d pair(s) expired@," r.valid
    r.invalid r.expired;
  Format.fprintf ppf "disagreements: %d@," (List.length r.disagreements);
  List.iter
    (fun d ->
      Format.fprintf ppf "  #%d %s@,    %a@," d.d_index d.d_why
        Logic.Sequent.pp d.d_sequent)
    r.disagreements;
  Format.fprintf ppf "@]"
