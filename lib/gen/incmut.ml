(** Differential fuzzing of incremental re-verification.

    Each iteration parses one of a few fully-verifying seed programs,
    applies one random (typed-AST) mutation, then verifies the mutant
    twice: incrementally against the base program's method records, and
    from scratch.  The two runs must agree method for method and
    obligation for obligation — any divergence means the dependency
    tracking either replayed a stale verdict (under-invalidation) or
    re-derived a different one than a cold run would (which a store must
    never do).

    Mutations are chosen to keep the mutant parseable and desugarable;
    they do {e not} have to keep it provable.  An unprovable mutant is a
    perfectly good differential input — both runs must then report the
    same failures. *)

open Javaparser

(* ------------------------------------------------------------------ *)
(* Seed programs                                                       *)
(* ------------------------------------------------------------------ *)

(* a global set container with a two-method client (cross-class
   contract dependencies) *)
let seed_buffer =
  "class Buffer {\n\
   /*: public static ghost specvar items :: objset; */\n\
   public static void clear()\n\
   /*: modifies items ensures \"items = {}\" */\n\
   { //: items := \"{}\";\n\
   }\n\
   public static void put(Object o)\n\
   /*: requires \"o ~: items & o ~= null\" modifies items\n\
   \   ensures \"items = old items Un {o}\" */\n\
   { //: items := \"items Un {o}\";\n\
   }\n\
   public static void take(Object o)\n\
   /*: requires \"o : items\" modifies items\n\
   \   ensures \"items = old items - {o}\" */\n\
   { //: items := \"items - {o}\";\n\
   }\n\
   }\n\
   class BufferClient {\n\
   /*: public static ghost specvar pending :: objset;\n\
   \   invariant \"pending <= Buffer.items\"; */\n\
   public static void submit(Object job)\n\
   /*: requires \"job ~: Buffer.items & job ~= null\"\n\
   \   modifies \"Buffer.items\", pending\n\
   \   ensures \"job : pending\" */\n\
   {\n\
   Buffer.put(job);\n\
   //: pending := \"pending Un {job}\";\n\
   }\n\
   public static void complete(Object job)\n\
   /*: requires \"job : pending\"\n\
   \   modifies \"Buffer.items\", pending\n\
   \   ensures \"job ~: pending\" */\n\
   {\n\
   //: pending := \"pending - {job}\";\n\
   Buffer.take(job);\n\
   }\n\
   }"

(* a cardinality-tracking stack: multiple invariants, BAPA obligations *)
let seed_stack =
  "class Stack {\n\
   private static int count;\n\
   /*: public static ghost specvar items :: objset;\n\
   \   public static ghost specvar size :: int;\n\
   \   invariant \"size = card items\";\n\
   \   invariant \"size >= 0\";\n\
   \   invariant \"count = size\"; */\n\
   public static void init()\n\
   /*: modifies items, size ensures \"items = {} & size = 0\" */\n\
   {\n\
   count = 0;\n\
   //: items := \"{}\";\n\
   //: size := \"0\";\n\
   }\n\
   public static void push(Object o)\n\
   /*: requires \"o ~= null & o ~: items\" modifies items, size\n\
   \   ensures \"items = old items Un {o} & size = old size + 1\" */\n\
   {\n\
   count = count + 1;\n\
   //: items := \"items Un {o}\";\n\
   //: size := \"size + 1\";\n\
   }\n\
   public static boolean isEmpty()\n\
   /*: ensures \"result = (size = 0)\" */\n\
   {\n\
   return count == 0;\n\
   }\n\
   }"

(* a defined (non-ghost) specvar: vardef unfolding inside the class,
   opacity outside it *)
let seed_counter =
  "class Counter {\n\
   private static int c;\n\
   /*: public static specvar nonneg :: bool;\n\
   \   private vardefs \"nonneg == 0 <= c\"; */\n\
   public static void reset()\n\
   /*: modifies nonneg ensures \"nonneg\" */\n\
   { c = 0; }\n\
   public static void bump()\n\
   /*: requires \"nonneg\" modifies nonneg ensures \"nonneg\" */\n\
   { c = c + 1; }\n\
   }\n\
   class CounterClient {\n\
   public static void tick()\n\
   /*: requires \"Counter.nonneg\" modifies \"Counter.nonneg\"\n\
   \   ensures \"Counter.nonneg\" */\n\
   { Counter.bump(); }\n\
   }"

let seeds = [ seed_buffer; seed_stack; seed_counter ]

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

(* a provable throwaway conjunct that [Form.mk_and] will not simplify
   away *)
let tautology () = Logic.Parser.parse "0 <= 0"

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* mutate a random class satisfying [ok], leaving the rest alone;
   [None] when no class qualifies *)
let on_some_class rng (ok : Ast.class_decl -> bool)
    (f : Ast.class_decl -> Ast.class_decl) (prog : Ast.program) :
    Ast.program option =
  match List.filteri (fun _ c -> ok c) prog with
  | [] -> None
  | candidates ->
    let victim = (pick rng candidates).Ast.c_name in
    Some
      (List.map (fun c -> if c.Ast.c_name = victim then f c else c) prog)

let has_bodied_method c =
  List.exists (fun m -> m.Ast.m_body <> None) c.Ast.c_methods

let pick_bodied rng c =
  pick rng (List.filter (fun m -> m.Ast.m_body <> None) c.Ast.c_methods)

(* each mutation returns [None] when it does not apply to the program *)
let mutations :
    (string * (Random.State.t -> Ast.program -> Ast.program option)) list =
  [
    (* the identity: nothing may be re-verified, and the runs must
       still agree *)
    ("noop", fun _ prog -> Some prog);
    ( "dup-method",
      fun rng prog ->
        on_some_class rng has_bodied_method
          (fun c ->
            let m = pick_bodied rng c in
            let copy = { m with Ast.m_name = m.Ast.m_name ^ "Copy" } in
            if Ast.find_method c copy.Ast.m_name <> None then c
            else { c with Ast.c_methods = c.Ast.c_methods @ [ copy ] })
          prog );
    ( "swap-invariants",
      fun rng prog ->
        on_some_class rng
          (fun c -> List.length c.Ast.c_invariants >= 2)
          (fun c ->
            let invs = Array.of_list c.Ast.c_invariants in
            let i = Random.State.int rng (Array.length invs) in
            let j = Random.State.int rng (Array.length invs) in
            let tmp = invs.(i) in
            invs.(i) <- invs.(j);
            invs.(j) <- tmp;
            { c with Ast.c_invariants = Array.to_list invs })
          prog );
    ( "conjoin-requires",
      fun rng prog ->
        on_some_class rng
          (fun c ->
            List.exists
              (fun m -> m.Ast.m_contract.Ast.requires <> None)
              c.Ast.c_methods)
          (fun c ->
            let withreq =
              List.filteri
                (fun _ (m : Ast.method_decl) ->
                  m.Ast.m_contract.Ast.requires <> None)
                c.Ast.c_methods
            in
            let victim = (pick rng withreq).Ast.m_name in
            { c with
              Ast.c_methods =
                List.map
                  (fun m ->
                    if m.Ast.m_name <> victim then m
                    else
                      let ct = m.Ast.m_contract in
                      { m with
                        Ast.m_contract =
                          { ct with
                            Ast.requires =
                              Option.map
                                (fun f ->
                                  Logic.Form.mk_and [ f; tautology () ])
                                ct.Ast.requires } })
                  c.Ast.c_methods })
          prog );
    ( "drop-ensures",
      fun rng prog ->
        on_some_class rng
          (fun c ->
            List.exists
              (fun m ->
                m.Ast.m_body <> None && m.Ast.m_contract.Ast.ensures <> None)
              c.Ast.c_methods)
          (fun c ->
            let cands =
              List.filter
                (fun (m : Ast.method_decl) ->
                  m.Ast.m_body <> None
                  && m.Ast.m_contract.Ast.ensures <> None)
                c.Ast.c_methods
            in
            let victim = (pick rng cands).Ast.m_name in
            { c with
              Ast.c_methods =
                List.map
                  (fun m ->
                    if m.Ast.m_name <> victim then m
                    else
                      { m with
                        Ast.m_contract =
                          { m.Ast.m_contract with Ast.ensures = None } })
                  c.Ast.c_methods })
          prog );
    ( "add-invariant",
      fun rng prog ->
        on_some_class rng has_bodied_method
          (fun c ->
            { c with Ast.c_invariants = c.Ast.c_invariants @ [ tautology () ] })
          prog );
    ( "grow-body",
      fun rng prog ->
        (* duplicate the last statement of a ghost-assignment body —
           semantics may change, provability may be lost; both runs must
           report the same thing *)
        on_some_class rng
          (fun c ->
            List.exists
              (fun m ->
                match m.Ast.m_body with
                | Some (_ :: _ as ss) -> (
                  match List.rev ss with
                  | Ast.Spec (Ast.Ghost_assign _) :: _ -> true
                  | _ -> false)
                | _ -> false)
              c.Ast.c_methods)
          (fun c ->
            let cands =
              List.filter
                (fun (m : Ast.method_decl) ->
                  match m.Ast.m_body with
                  | Some (_ :: _ as ss) -> (
                    match List.rev ss with
                    | Ast.Spec (Ast.Ghost_assign _) :: _ -> true
                    | _ -> false)
                  | _ -> false)
                c.Ast.c_methods
            in
            let victim = (pick rng cands).Ast.m_name in
            { c with
              Ast.c_methods =
                List.map
                  (fun m ->
                    if m.Ast.m_name <> victim then m
                    else
                      match m.Ast.m_body with
                      | Some ss ->
                        let last = List.nth ss (List.length ss - 1) in
                        { m with Ast.m_body = Some (ss @ [ last ]) }
                      | None -> m)
                  c.Ast.c_methods })
          prog );
  ]

(* ------------------------------------------------------------------ *)
(* The differential driver                                             *)
(* ------------------------------------------------------------------ *)

type config = { seed : int; count : int }

type divergence = {
  iteration : int;
  mutation : string;
  detail : string;
}

type report = {
  iterations : int;
  applied : (string * int) list;  (** mutation name -> times applied *)
  divergences : divergence list;
}

(* one method's observable outcome: every obligation's (name, verdict
   kind), order-independent *)
let outcome (m : Jahob_core.Jahob.method_report) : string * (string * string) list
    =
  ( m.Jahob_core.Jahob.method_name,
    List.sort compare
      (List.map
         (fun (r : Dispatch.report) ->
           ( r.Dispatch.sequent.Logic.Sequent.name,
             Logic.Sequent.verdict_kind r.Dispatch.verdict ))
         m.Jahob_core.Jahob.obligations.Dispatch.reports) )

let outcomes (r : Jahob_core.Jahob.program_report) :
    (string * (string * string) list) list =
  List.sort compare (List.map outcome r.Jahob_core.Jahob.methods)

let pp_outcome ppf (name, obs) =
  Format.fprintf ppf "%s:" name;
  List.iter (fun (o, k) -> Format.fprintf ppf " [%s = %s]" o k) obs

let run (cfg : config) : report =
  let rng = Random.State.make [| cfg.seed |] in
  let opts =
    { (Jahob_core.Jahob.default_options ()) with Jahob_core.Jahob.jobs = 1 }
  in
  let engine = Jahob_core.Jahob.create_engine opts in
  Fun.protect ~finally:(fun () -> Jahob_core.Jahob.shutdown_engine engine)
  @@ fun () ->
  let applied = Hashtbl.create 8 in
  let divergences = ref [] in
  let diverge i mutation detail =
    divergences := { iteration = i; mutation; detail } :: !divergences
  in
  for i = 1 to cfg.count do
    let base = Jparser.parse_program (pick rng seeds) in
    let name, mutate = pick rng mutations in
    match mutate rng base with
    | None -> ()
    | Some patched -> (
      Hashtbl.replace applied name
        (1 + Option.value (Hashtbl.find_opt applied name) ~default:0);
      let source = Jahob_core.Jahob.hashtbl_source () in
      match
        let r0 = Jahob_core.Jahob.verify_program_inc engine ~source base in
        if not r0.Jahob_core.Jahob.ok then
          diverge i name "seed program no longer fully verifies";
        let inc = Jahob_core.Jahob.verify_program_inc engine ~source patched in
        let scratch = Jahob_core.Jahob.verify_program_with engine patched in
        (outcomes inc, outcomes scratch)
      with
      | exception e ->
        diverge i name (Printf.sprintf "exception: %s" (Printexc.to_string e))
      | inc, scratch ->
        if inc <> scratch then
          diverge i name
            (Format.asprintf
               "incremental and from-scratch disagree@.  incremental: %a@.  \
                from-scratch: %a"
               (Format.pp_print_list pp_outcome)
               inc
               (Format.pp_print_list pp_outcome)
               scratch))
  done;
  { iterations = cfg.count;
    applied =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) applied []);
    divergences = List.rev !divergences }

let pp_report ppf (r : report) : unit =
  Format.fprintf ppf "incremental differential: %d iterations (" r.iterations;
  List.iteri
    (fun i (name, n) ->
      Format.fprintf ppf "%s%s %d" (if i > 0 then ", " else "") name n)
    r.applied;
  Format.fprintf ppf ")@.";
  if r.divergences = [] then Format.fprintf ppf "no divergences@."
  else
    List.iter
      (fun d ->
        Format.fprintf ppf "DIVERGENCE at iteration %d (%s): %s@." d.iteration
          d.mutation d.detail)
      r.divergences
