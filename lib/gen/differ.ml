(** The differential driver: cross-checks every prover against the others
    and against the finite-model oracle ({!Logic.Eval}).

    For each generated sequent, every prover whose fragment admits it is
    asked for a verdict.  Two disagreement classes are {e hard} evidence of
    a bug and are flagged:

    - a [Valid] / [Invalid] pair between two provers (at most one can be
      right);
    - a prover answering [Valid] while the oracle exhibits a finite
      countermodel (the bounded structures are genuine models, so the
      countermodel wins).

    A prover answering [Invalid] while the oracle exhausts all bounded
    models without a countermodel is only {e suspicious} — the claimed
    countermodel may need a larger universe — and is counted but not
    flagged.

    Flagged sequents are greedily shrunk to a minimal reproducer that
    still exhibits one of the original disagreement keys, then written to
    the regression corpus. *)

open Logic

(* ------------------------------------------------------------------ *)
(* Parties                                                             *)
(* ------------------------------------------------------------------ *)

type party = {
  party_name : string;
  admits : Sequent.t -> bool;
  prover : Sequent.prover;
}

(** The five decision procedures under differential test. *)
let default_parties () : party list =
  [ { party_name = "smt"; admits = Smt.in_fragment; prover = Smt.prover };
    { party_name = "cooper";
      admits = Presburger.Lia.in_fragment;
      prover = Presburger.Lia.prover };
    { party_name = "bapa"; admits = Bapa.in_fragment; prover = Bapa.prover };
    { party_name = "mona"; admits = Fca.in_fragment; prover = Fca.prover };
    { party_name = "fol"; admits = Fol.in_fragment; prover = Fol.prover };
  ]

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  seed : int;
  count : int; (** sequents per fragment *)
  size : int; (** generator fuel, see {!Formgen.node_bound} *)
  budget_s : float; (** wall-clock budget per prover call; 0 = none *)
  use_oracle : bool;
  max_universe : int;
  int_range : int;
  max_models : int option; (** cap on oracle model enumeration *)
  check_sched : bool;
      (** also run each sequent through a fixed-order and an adaptive
          dispatcher and flag any difference in verdict kind: fragment
          skipping and learned reordering must never change
          Valid/Invalid *)
}

let default_config =
  { seed = 42;
    count = 1000;
    size = 3;
    budget_s = 2.0;
    use_oracle = true;
    max_universe = 3;
    int_range = 4;
    max_models = Some 60_000;
    check_sched = true;
  }

(* ------------------------------------------------------------------ *)
(* Checking one sequent                                                *)
(* ------------------------------------------------------------------ *)

type finding = {
  fragment : Formgen.fragment;
  index : int; (** which generated sequent (for replay) *)
  sequent : Sequent.t;
  verdicts : (string * Sequent.verdict) list;
  oracle : Eval.outcome option;
  keys : string list; (** hard disagreement keys, empty = agreement *)
  suspicious : bool; (** Invalid verdict with an exhausted oracle *)
}

let is_valid = function Sequent.Valid -> true | _ -> false
let is_invalid = function Sequent.Invalid _ -> true | _ -> false

(* the keys name the *shape* of the disagreement, so a shrunk reproducer
   can be matched against the original finding *)
let disagreement_keys (verdicts : (string * Sequent.verdict) list)
    (oracle : Eval.outcome option) : string list =
  let valids =
    List.filter_map (fun (n, v) -> if is_valid v then Some n else None) verdicts
  in
  let invalids =
    List.filter_map
      (fun (n, v) -> if is_invalid v then Some n else None)
      verdicts
  in
  let conflicts =
    List.concat_map
      (fun p -> List.map (fun q -> Printf.sprintf "conflict:%s>%s" p q) invalids)
      valids
  in
  let oracle_keys =
    match oracle with
    | Some (Eval.Countermodel _) -> List.map (fun p -> "oracle:" ^ p) valids
    | _ -> []
  in
  conflicts @ oracle_keys

let with_budget (cfg : config) (p : Sequent.prover) : Sequent.prover =
  if cfg.budget_s > 0. then Dispatch.with_budget ~budget_s:cfg.budget_s p
  else p

(** A fixed-order and an adaptive dispatcher over the same portfolio, for
    the scheduler cross-check.  Long-lived on purpose: the adaptive side's
    EMAs learn across the whole campaign, so reordering actually kicks in
    and gets tested.  The smt party registers no admission predicate
    (mirroring {!Jahob.default_admissions}: its [in_fragment] is not
    skip-sound). *)
let sched_dispatchers ?(parties = default_parties ()) (cfg : config) :
    Dispatch.t * Dispatch.t =
  let provers = List.map (fun p -> p.prover) parties in
  let admits =
    List.filter_map
      (fun p ->
        if p.party_name = "smt" then None else Some (p.party_name, p.admits))
      parties
  in
  let budget_s = if cfg.budget_s > 0. then Some cfg.budget_s else None in
  let mk policy =
    Dispatch.create ?budget_s
      ~sched:(Dispatch.Sched.create ~policy ~admits ())
      provers
  in
  (mk Dispatch.Sched.Fixed, mk Dispatch.Sched.Adaptive)

(* verdict kind of a full dispatcher run, never raising *)
let dispatch_kind (d : Dispatch.t) (s : Sequent.t) : string =
  match Dispatch.prove_sequent d s with
  | r -> Sequent.verdict_kind r.Dispatch.verdict
  | exception Stack_overflow -> "unknown"
  | exception _ -> "raised"

(** Route [s] to every admitting party, consult the oracle when any party
    committed to a [Valid]/[Invalid] verdict, and compute disagreement
    keys.  When [sched] carries the cross-check dispatchers, the sequent
    additionally runs through the fixed and the adaptive cascade, and a
    verdict-kind difference becomes a [sched:] disagreement key. *)
let check ?(parties = default_parties ()) ?sched (cfg : config)
    (frag : Formgen.fragment) ?(index = -1) (s : Sequent.t) : finding =
  let verdicts =
    List.filter_map
      (fun p ->
        let admitted = try p.admits s with _ -> false in
        if not admitted then None
        else
          let prover = with_budget cfg p.prover in
          let v =
            try prover.Sequent.prove s with
            | Stack_overflow -> Sequent.Unknown "stack overflow"
            | e -> Sequent.Unknown ("raised: " ^ Printexc.to_string e)
          in
          Some (p.party_name, v))
      parties
  in
  let committed = List.exists (fun (_, v) -> is_valid v || is_invalid v) verdicts in
  let oracle =
    if cfg.use_oracle && committed then
      Some
        (Eval.check ~env:(Formgen.type_env frag)
           ~max_universe:cfg.max_universe ~int_range:cfg.int_range
           ?max_models:cfg.max_models s)
    else None
  in
  let sched_keys =
    match sched with
    | None -> []
    | Some (fixed_d, adaptive_d) ->
      let kf = dispatch_kind fixed_d s in
      let ka = dispatch_kind adaptive_d s in
      if kf = ka then []
      else [ Printf.sprintf "sched:fixed=%s!=adaptive=%s" kf ka ]
  in
  let keys = disagreement_keys verdicts oracle @ sched_keys in
  let suspicious =
    match oracle with
    | Some (Eval.No_countermodel _) ->
      List.exists (fun (_, v) -> is_invalid v) verdicts
    | _ -> false
  in
  { fragment = frag; index; sequent = s; verdicts; oracle; keys; suspicious }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* ground witness used to close a binder body when shrinking into it *)
let default_term (ty : Ftype.t) : Form.t =
  match ty with
  | Ftype.Bool -> Form.mk_true
  | Ftype.Int -> Form.mk_int 0
  | Ftype.Set _ -> Form.mk_emptyset
  | Ftype.Tvar _ | Ftype.Obj | Ftype.Arrow _ | Ftype.Tuple _ -> Form.mk_null

let immediate_subformulas (f : Form.t) : Form.t list =
  match Form.strip_types f with
  | Form.App (Form.Const (Form.And | Form.Or | Form.Impl | Form.Iff | Form.Not), args)
    ->
    args
  | Form.App (Form.Const Form.Ite, [ c; a; b ]) -> [ c; a; b ]
  | Form.Binder ((Form.Forall | Form.Exists), vars, body) ->
    [ Form.subst_list
        (List.map (fun (x, ty) -> (x, default_term ty)) vars)
        body ]
  | _ -> []

(* all one-step-smaller variants of a sequent *)
let shrink_candidates (s : Sequent.t) : Sequent.t list =
  let drop_hyp i =
    { s with Sequent.hyps = List.filteri (fun j _ -> j <> i) s.Sequent.hyps }
  in
  let drops = List.mapi (fun i _ -> drop_hyp i) s.Sequent.hyps in
  let goal_subs =
    List.map (fun g -> { s with Sequent.goal = g })
      (immediate_subformulas s.Sequent.goal)
  in
  let hyp_subs =
    List.concat
      (List.mapi
         (fun i h ->
           List.map
             (fun h' ->
               { s with
                 Sequent.hyps =
                   List.mapi (fun j g -> if j = i then h' else g) s.Sequent.hyps
               })
             (immediate_subformulas h))
         s.Sequent.hyps)
  in
  let simplified =
    let s' =
      { s with
        Sequent.hyps = List.map Simplify.simplify s.Sequent.hyps;
        goal = Simplify.simplify s.Sequent.goal }
    in
    if Formgen.sequent_size s' < Formgen.sequent_size s then [ s' ] else []
  in
  drops @ goal_subs @ hyp_subs @ simplified

let max_shrink_rechecks = 300

(** Greedily shrink a flagged sequent: accept any strictly smaller variant
    that still exhibits one of the original disagreement keys, until no
    candidate helps or the recheck budget runs out. *)
let shrink ?(parties = default_parties ()) ?sched (cfg : config) (f : finding) :
    finding =
  let budget = ref max_shrink_rechecks in
  let orig_keys = f.keys in
  let rec go (best : finding) =
    if !budget <= 0 then best
    else
      let size_best = Formgen.sequent_size best.sequent in
      let cands =
        List.filter
          (fun c -> Formgen.sequent_size c < size_best)
          (shrink_candidates best.sequent)
      in
      let accepted =
        List.find_map
          (fun c ->
            if !budget <= 0 then None
            else begin
              decr budget;
              let fc =
                check ~parties ?sched cfg best.fragment ~index:best.index c
              in
              if List.exists (fun k -> List.mem k orig_keys) fc.keys then
                Some fc
              else None
            end)
          cands
      in
      match accepted with Some fc -> go fc | None -> best
  in
  go f

(* ------------------------------------------------------------------ *)
(* The regression corpus                                               *)
(* ------------------------------------------------------------------ *)

(** One-formula-per-line corpus files:
    {v
      # comment / metadata headers
      # fragment: bapa
      hyp  card s <= 1
      goal s <= t
    v} *)

let save_finding ~(dir : string) (f : finding) : string =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let digest = Sequent.digest f.sequent in
  let path =
    Filename.concat dir
      (Printf.sprintf "%s-%s.seq"
         (Formgen.fragment_name f.fragment)
         (String.sub digest 0 12))
  in
  let oc = open_out path in
  Printf.fprintf oc "# jahob fuzz: minimized prover disagreement\n";
  Printf.fprintf oc "# fragment: %s\n" (Formgen.fragment_name f.fragment);
  Printf.fprintf oc "# keys: %s\n" (String.concat " " f.keys);
  List.iter
    (fun (p, v) ->
      Printf.fprintf oc "# verdict: %s = %s\n" p (Sequent.verdict_to_string v))
    f.verdicts;
  (match f.oracle with
  | Some o -> Printf.fprintf oc "# oracle: %s\n" (Eval.outcome_to_string o)
  | None -> ());
  List.iter
    (fun h -> Printf.fprintf oc "hyp %s\n" (Pprint.to_string h))
    f.sequent.Sequent.hyps;
  Printf.fprintf oc "goal %s\n" (Pprint.to_string f.sequent.Sequent.goal);
  close_out oc;
  path

type corpus_entry = {
  path : string;
  entry_fragment : Formgen.fragment;
  entry_sequent : Sequent.t;
}

let load_file (path : string) : (corpus_entry, string) result =
  let ic = open_in path in
  let fragment = ref Formgen.Mixed in
  let hyps = ref [] in
  let goal = ref None in
  let err = ref None in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       let fail fmt =
         Format.kasprintf
           (fun m ->
             if !err = None then
               err := Some (Printf.sprintf "%s:%d: %s" path !lineno m))
           fmt
       in
       let parse_formula src =
         match Parser.parse_opt src with
         | Some f -> Some f
         | None ->
           fail "unparseable formula %S" src;
           None
       in
       if String.length line = 0 then ()
       else if line.[0] = '#' then begin
         match String.index_opt line ':' with
         | Some i
           when String.trim (String.sub line 1 (i - 1)) = "fragment" -> (
           let name =
             String.trim (String.sub line (i + 1) (String.length line - i - 1))
           in
           match Formgen.fragment_of_name name with
           | Some frag -> fragment := frag
           | None -> fail "unknown fragment %S" name)
         | _ -> ()
       end
       else if String.length line > 4 && String.sub line 0 4 = "hyp " then
         Option.iter
           (fun f -> hyps := f :: !hyps)
           (parse_formula (String.sub line 4 (String.length line - 4)))
       else if String.length line > 5 && String.sub line 0 5 = "goal " then
         Option.iter
           (fun f -> goal := Some f)
           (parse_formula (String.sub line 5 (String.length line - 5)))
       else fail "unrecognized line %S" line
     done
   with End_of_file -> close_in ic);
  match !err, !goal with
  | Some m, _ -> Error m
  | None, None -> Error (path ^ ": no goal line")
  | None, Some g ->
    (* the surface printer is ambiguous between int and set operators;
       re-disambiguate under the fragment's vocabulary, as the generator
       typed it *)
    let env = Formgen.type_env !fragment in
    let dis f = Typecheck.disambiguate ~env f in
    Ok
      { path;
        entry_fragment = !fragment;
        entry_sequent =
          Sequent.make
            ~name:("corpus:" ^ Filename.basename path)
            (List.rev_map dis !hyps) (dis g);
      }

let corpus_files (dir : string) : string list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".seq")
    |> List.sort compare
    |> List.map (Filename.concat dir)

(** Replay one corpus file: re-run the differential check and expect
    agreement (an empty key set).  [Error] carries the surviving keys. *)
let replay ?(parties = default_parties ()) (cfg : config) (path : string) :
    (finding, string) result =
  match load_file path with
  | Error m -> Error m
  | Ok e ->
    let sched =
      if cfg.check_sched then Some (sched_dispatchers ~parties cfg) else None
    in
    let f = check ~parties ?sched cfg e.entry_fragment e.entry_sequent in
    if f.keys = [] then Ok f
    else
      Error
        (Printf.sprintf "%s: disagreement persists: %s" path
           (String.concat " " f.keys))

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)
(* ------------------------------------------------------------------ *)

type party_stats = {
  mutable admitted : int;
  mutable n_valid : int;
  mutable n_invalid : int;
  mutable n_unknown : int;
}

type fragment_report = {
  report_fragment : Formgen.fragment;
  generated : int;
  per_party : (string * party_stats) list;
  oracle_runs : int;
  oracle_countermodels : int;
  suspicious_count : int;
  raw_disagreements : int;
  findings : finding list; (** minimized, deduplicated by key *)
}

(** Fuzz one fragment: generate [cfg.count] sequents deterministically
    from [cfg.seed], check each, shrink and record each disagreement with
    a not-yet-seen key.  [on_finding] fires for every minimized finding
    (the CLI writes the corpus file there). *)
let run ?(parties = default_parties ()) ?(on_finding = fun (_ : finding) -> ())
    ?(progress = fun (_ : int) -> ()) (cfg : config)
    (frag : Formgen.fragment) : fragment_report =
  let per_party =
    List.map
      (fun p ->
        ( p.party_name,
          { admitted = 0; n_valid = 0; n_invalid = 0; n_unknown = 0 } ))
      parties
  in
  let oracle_runs = ref 0 in
  let oracle_countermodels = ref 0 in
  let suspicious_count = ref 0 in
  let raw = ref 0 in
  let seen_keys : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let findings = ref [] in
  (* one dispatcher pair for the whole fragment campaign, so the adaptive
     side accumulates enough samples to genuinely reorder *)
  let sched =
    if cfg.check_sched then Some (sched_dispatchers ~parties cfg) else None
  in
  for n = 0 to cfg.count - 1 do
    progress n;
    let s = Formgen.sequent_of_seed frag ~seed:cfg.seed ~size:cfg.size n in
    let f = check ~parties ?sched cfg frag ~index:n s in
    List.iter
      (fun (name, v) ->
        let st = List.assoc name per_party in
        st.admitted <- st.admitted + 1;
        match v with
        | Sequent.Valid -> st.n_valid <- st.n_valid + 1
        | Sequent.Invalid _ -> st.n_invalid <- st.n_invalid + 1
        | Sequent.Unknown _ -> st.n_unknown <- st.n_unknown + 1)
      f.verdicts;
    (match f.oracle with
    | Some o -> (
      incr oracle_runs;
      match o with
      | Eval.Countermodel _ -> incr oracle_countermodels
      | _ -> ())
    | None -> ());
    if f.suspicious then incr suspicious_count;
    if f.keys <> [] then begin
      incr raw;
      if List.exists (fun k -> not (Hashtbl.mem seen_keys k)) f.keys then begin
        List.iter (fun k -> Hashtbl.replace seen_keys k ()) f.keys;
        let minimized = shrink ~parties ?sched cfg f in
        findings := minimized :: !findings;
        on_finding minimized
      end
    end
  done;
  { report_fragment = frag;
    generated = cfg.count;
    per_party;
    oracle_runs = !oracle_runs;
    oracle_countermodels = !oracle_countermodels;
    suspicious_count = !suspicious_count;
    raw_disagreements = !raw;
    findings = List.rev !findings;
  }

let pp_finding ppf (f : finding) =
  Format.fprintf ppf "@[<v 2>%s #%d (%s):@,%a@,"
    (Formgen.fragment_name f.fragment)
    f.index
    (String.concat " " f.keys)
    Sequent.pp f.sequent;
  List.iter
    (fun (p, v) ->
      Format.fprintf ppf "%s: %s@," p (Sequent.verdict_to_string v))
    f.verdicts;
  (match f.oracle with
  | Some o -> Format.fprintf ppf "oracle: %s@," (Eval.outcome_to_string o)
  | None -> ());
  Format.fprintf ppf "@]"

let pp_report ppf (r : fragment_report) =
  Format.fprintf ppf "@[<v 2>fragment %s: %d sequents@,"
    (Formgen.fragment_name r.report_fragment)
    r.generated;
  List.iter
    (fun (name, st) ->
      if st.admitted > 0 then
        Format.fprintf ppf
          "%-7s admitted %5d  valid %5d  invalid %5d  unknown %5d@," name
          st.admitted st.n_valid st.n_invalid st.n_unknown)
    r.per_party;
  Format.fprintf ppf
    "oracle: %d runs, %d countermodels, %d suspicious-invalid@," r.oracle_runs
    r.oracle_countermodels r.suspicious_count;
  Format.fprintf ppf "disagreements: %d distinct (%d raw)@,"
    (List.length r.findings) r.raw_disagreements;
  List.iter (fun f -> pp_finding ppf f) r.findings;
  Format.fprintf ppf "@]"
