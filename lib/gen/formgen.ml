(** Well-typed, size-bounded random generators for formulas and sequents.

    Each generator targets one prover {e fragment}: the vocabulary (typed
    free variables) and the shapes of atoms are chosen so that the
    resulting sequents fall inside the corresponding decision procedure's
    membership predicate, letting the differential driver route every
    obligation to every prover that claims it.

    Generation is fuel-based and the node count of anything produced is
    linearly bounded in the fuel ({!node_bound}), so a fuzzing run's cost
    is predictable and the size bound is a checkable QCheck property. *)

open Logic
module G = QCheck.Gen

type fragment =
  | Euf          (** quantifier-free equality + uninterpreted fields *)
  | Presburger   (** quantifier-free linear integer arithmetic *)
  | Bapa         (** boolean algebra of sets with cardinalities *)
  | Ws1s         (** monadic sets, object equalities, object quantifiers *)
  | Fol          (** first-order: equalities, fields, sets, quantifiers —
                     the resolution prover's diet, cardinality-free *)
  | Mixed        (** everything at once; routed to whoever admits it *)

let all_fragments = [ Euf; Presburger; Bapa; Ws1s; Fol; Mixed ]

let fragment_name = function
  | Euf -> "euf"
  | Presburger -> "presburger"
  | Bapa -> "bapa"
  | Ws1s -> "ws1s"
  | Fol -> "fol"
  | Mixed -> "mixed"

let fragment_of_name = function
  | "euf" -> Some Euf
  | "presburger" -> Some Presburger
  | "bapa" -> Some Bapa
  | "ws1s" -> Some Ws1s
  | "fol" -> Some Fol
  | "mixed" -> Some Mixed
  | _ -> None

(** The typed free variables a fragment's formulas draw from.  Also the
    environment under which generated formulas typecheck and under which
    corpus files are re-disambiguated on replay. *)
let vocabulary (frag : fragment) : (string * Ftype.t) list =
  match frag with
  | Euf ->
    [ ("x", Ftype.Obj); ("y", Ftype.Obj); ("z", Ftype.Obj);
      ("f", Ftype.Arrow (Ftype.Obj, Ftype.Obj));
      ("g", Ftype.Arrow (Ftype.Obj, Ftype.Obj));
    ]
  | Presburger -> [ ("i", Ftype.Int); ("j", Ftype.Int); ("k", Ftype.Int) ]
  | Bapa ->
    [ ("s", Ftype.objset); ("t", Ftype.objset); ("u", Ftype.objset);
      ("x", Ftype.Obj); ("y", Ftype.Obj);
    ]
  | Ws1s ->
    [ ("s", Ftype.objset); ("t", Ftype.objset); ("u", Ftype.objset);
      ("x", Ftype.Obj); ("y", Ftype.Obj);
    ]
  | Fol ->
    [ ("x", Ftype.Obj); ("y", Ftype.Obj); ("z", Ftype.Obj);
      ("s", Ftype.objset); ("t", Ftype.objset);
      ("f", Ftype.Arrow (Ftype.Obj, Ftype.Obj));
      ("g", Ftype.Arrow (Ftype.Obj, Ftype.Obj));
    ]
  | Mixed ->
    [ ("x", Ftype.Obj); ("y", Ftype.Obj); ("z", Ftype.Obj);
      ("s", Ftype.objset); ("t", Ftype.objset);
      ("f", Ftype.Arrow (Ftype.Obj, Ftype.Obj));
      ("i", Ftype.Int); ("j", Ftype.Int);
    ]

let type_env (frag : fragment) : Typecheck.env =
  Typecheck.env_of_list (vocabulary frag)

(* variables of each sort available in a fragment *)
let vars_of_sort frag (want : Ftype.t) : string list =
  List.filter_map
    (fun (x, ty) -> if Ftype.equal ty want then Some x else None)
    (vocabulary frag)

(* ------------------------------------------------------------------ *)
(* Size accounting                                                     *)
(* ------------------------------------------------------------------ *)

(* Worst-case node count of a single atom (widest case: a BAPA cardinality
   equation over depth-1 set terms, ~40 nodes; see gen_atom). *)
let atom_bound = 48

(** Upper bound on {!Form.size} of a formula generated with [fuel]:
    boolean connectives split their fuel between children, so growth is
    linear. *)
let node_bound fuel = atom_bound + (50 * max 0 fuel)

(** Fuel given to each hypothesis of a sequent generated with [~size]. *)
let hyp_fuel ~size = max 1 (size / 2)

let max_hyps = 3

(** Upper bound on the total node count (all hypotheses plus goal) of a
    sequent generated with [~size]. *)
let sequent_node_bound ~size =
  node_bound size + (max_hyps * node_bound (hyp_fuel ~size))

let sequent_size (s : Sequent.t) : int =
  List.fold_left
    (fun n h -> n + Form.size h)
    (Form.size s.Sequent.goal)
    s.Sequent.hyps

(* ------------------------------------------------------------------ *)
(* Term generators                                                     *)
(* ------------------------------------------------------------------ *)

let oneofl = G.oneofl
let freq = G.frequency
let ( let* ) = G.( let* )

(* objs: the object variables in scope (free vocabulary + bound) *)
let gen_obj_leaf objs : Form.t G.t =
  freq
    [ (4, G.map Form.mk_var (oneofl objs)); (1, G.return Form.mk_null) ]

(* object terms with field reads/writes, for the EUF fragment *)
let rec gen_obj_term fields objs depth : Form.t G.t =
  if depth <= 0 then gen_obj_leaf objs
  else
    freq
      [ (2, gen_obj_leaf objs);
        ( 2,
          let* fld = gen_field_term fields objs (depth - 1) in
          let* o = gen_obj_term fields objs (depth - 1) in
          G.return (Form.mk_field_read fld o) );
      ]

and gen_field_term fields objs depth : Form.t G.t =
  if depth <= 0 then G.map Form.mk_var (oneofl fields)
  else
    freq
      [ (3, G.map Form.mk_var (oneofl fields));
        ( 1,
          let* fld = G.map Form.mk_var (oneofl fields) in
          let* o = gen_obj_leaf objs in
          let* v = gen_obj_leaf objs in
          G.return (Form.mk_field_write fld o v) );
      ]

(* linear integer terms *)
let rec gen_int_term ints depth : Form.t G.t =
  if depth <= 0 then
    freq
      [ (3, G.map Form.mk_var (oneofl ints));
        (2, G.map Form.mk_int (G.int_range (-3) 3));
      ]
  else
    freq
      [ (2, gen_int_term ints 0);
        ( 2,
          let* a = gen_int_term ints (depth - 1) in
          let* b = gen_int_term ints (depth - 1) in
          G.return (Form.mk_plus a b) );
        ( 1,
          let* a = gen_int_term ints (depth - 1) in
          let* b = gen_int_term ints (depth - 1) in
          G.return (Form.mk_minus a b) );
        ( 1,
          let* a = gen_int_term ints (depth - 1) in
          G.return (Form.mk_uminus a) );
        ( 1,
          let* k = G.int_range (-2) 3 in
          let* a = gen_int_term ints (depth - 1) in
          G.return (Form.mk_mult (Form.mk_int k) a) );
      ]

(* set terms: variables, constants, small literals, one level of algebra *)
let gen_set_leaf sets objs : Form.t G.t =
  freq
    [ (4, G.map Form.mk_var (oneofl sets));
      (1, G.return Form.mk_emptyset);
      (1, G.return Form.mk_univ);
      ( 1,
        let* es = G.list_size (G.int_range 1 2) (gen_obj_leaf objs) in
        G.return (Form.mk_finite_set es) );
    ]

let gen_set_term sets objs depth : Form.t G.t =
  if depth <= 0 then gen_set_leaf sets objs
  else
    freq
      [ (3, gen_set_leaf sets objs);
        ( 1,
          let* a = gen_set_leaf sets objs in
          let* b = gen_set_leaf sets objs in
          G.return (Form.mk_union a b) );
        ( 1,
          let* a = gen_set_leaf sets objs in
          let* b = gen_set_leaf sets objs in
          G.return (Form.mk_inter a b) );
        ( 1,
          let* a = gen_set_leaf sets objs in
          let* b = gen_set_leaf sets objs in
          G.return (Form.mk_diff a b) );
      ]

(* ------------------------------------------------------------------ *)
(* Atom generators                                                     *)
(* ------------------------------------------------------------------ *)

let gen_cmp : (Form.t -> Form.t -> Form.t) G.t =
  oneofl [ Form.mk_eq; Form.mk_le; Form.mk_lt; Form.mk_ge; Form.mk_gt ]

let gen_euf_atom fields objs : Form.t G.t =
  let* a = gen_obj_term fields objs 2 in
  let* b = gen_obj_term fields objs 2 in
  G.return (Form.mk_eq a b)

let gen_presburger_atom ints : Form.t G.t =
  let* cmp = gen_cmp in
  let* a = gen_int_term ints 2 in
  let* b = gen_int_term ints 2 in
  G.return (cmp a b)

let gen_bapa_atom sets objs : Form.t G.t =
  freq
    [ ( 3,
        let* a = gen_set_term sets objs 1 in
        let* b = gen_set_term sets objs 1 in
        oneofl
          [ Form.mk_subseteq a b; Form.mk_subset a b; Form.mk_eq a b ] );
      ( 3,
        let* x = gen_obj_leaf objs in
        let* s = gen_set_term sets objs 1 in
        G.return (Form.mk_elem x s) );
      ( 2,
        let* cmp = gen_cmp in
        let* a = gen_set_term sets objs 1 in
        freq
          [ ( 2,
              let* n = G.int_range 0 3 in
              G.return (cmp (Form.mk_card a) (Form.mk_int n)) );
            ( 2,
              let* b = gen_set_term sets objs 1 in
              G.return (cmp (Form.mk_card a) (Form.mk_card b)) );
            ( 1,
              let* b = gen_set_term sets objs 1 in
              let* c = gen_set_term sets objs 1 in
              G.return
                (cmp
                   (Form.mk_plus (Form.mk_card a) (Form.mk_card b))
                   (Form.mk_card c)) );
          ] );
      ( 1,
        let* x = gen_obj_leaf objs in
        let* y = gen_obj_leaf objs in
        G.return (Form.mk_eq x y) );
    ]

(* the monadic fragment: set *variables* only (the word model translates
   no set algebra), object equalities, membership, inclusion *)
let gen_ws1s_atom sets objs : Form.t G.t =
  freq
    [ ( 3,
        let* x = gen_obj_leaf objs in
        let* s = G.map Form.mk_var (oneofl sets) in
        G.return (Form.mk_elem x s) );
      ( 2,
        let* a = G.map Form.mk_var (oneofl sets) in
        let* b = G.map Form.mk_var (oneofl sets) in
        oneofl [ Form.mk_subseteq a b; Form.mk_eq a b ] );
      ( 2,
        let* x = gen_obj_leaf objs in
        let* y = gen_obj_leaf objs in
        G.return (Form.mk_eq x y) );
    ]

(* a reachability atom along a backbone field: rtrancl_pt (% u v. u..f = v) *)
let gen_rtrancl_atom fields objs : Form.t G.t =
  let* f = oneofl fields in
  let* a = gen_obj_leaf objs in
  let* b = gen_obj_leaf objs in
  let step =
    Form.mk_lambda
      [ ("$u", Ftype.Obj); ("$v", Ftype.Obj) ]
      (Form.mk_eq
         (Form.mk_field_read (Form.mk_var f) (Form.mk_var "$u"))
         (Form.mk_var "$v"))
  in
  G.return (Form.mk_rtrancl step a b)

(* the resolution prover's diet: equalities over field terms, membership
   and inclusion over set algebra, reachability — everything clausifiable,
   nothing with cardinalities *)
let gen_fol_atom fields sets objs : Form.t G.t =
  freq
    [ (3, gen_euf_atom fields objs);
      ( 2,
        let* x = gen_obj_leaf objs in
        let* s = gen_set_term sets objs 1 in
        G.return (Form.mk_elem x s) );
      ( 2,
        let* a = gen_set_term sets objs 1 in
        let* b = gen_set_term sets objs 1 in
        oneofl [ Form.mk_subseteq a b; Form.mk_eq a b ] );
      ( 2,
        let* x = gen_obj_leaf objs in
        let* y = gen_obj_leaf objs in
        G.return (Form.mk_eq x y) );
      (1, gen_rtrancl_atom fields objs);
    ]

(* ------------------------------------------------------------------ *)
(* Formula and sequent generators                                      *)
(* ------------------------------------------------------------------ *)

type scope = {
  frag : fragment;
  bound_objs : string list; (* quantified object variables in scope *)
  qdepth : int;
}

let objs_in scope =
  scope.bound_objs @ vars_of_sort scope.frag Ftype.Obj

let gen_atom (scope : scope) : Form.t G.t =
  let objs = objs_in scope in
  let sets = vars_of_sort scope.frag Ftype.objset in
  let ints = vars_of_sort scope.frag Ftype.Int in
  let fields = vars_of_sort scope.frag (Ftype.Arrow (Ftype.Obj, Ftype.Obj)) in
  match scope.frag with
  | Euf -> gen_euf_atom fields objs
  | Presburger -> gen_presburger_atom ints
  | Bapa -> gen_bapa_atom sets objs
  | Ws1s -> gen_ws1s_atom sets objs
  | Fol -> gen_fol_atom fields sets objs
  | Mixed ->
    freq
      [ (3, gen_euf_atom fields objs);
        (3, gen_presburger_atom ints);
        (3, gen_bapa_atom sets objs);
        (2, gen_ws1s_atom sets objs);
        (1, gen_rtrancl_atom fields objs);
      ]

(* can this fragment quantify over objects? *)
let quantifies = function
  | Ws1s | Fol | Mixed -> true
  | Euf | Presburger | Bapa -> false

let rec gen_formula_scoped (scope : scope) ~(fuel : int) : Form.t G.t =
  if fuel <= 0 then gen_atom scope
  else
    let split k =
      (* share fuel-1 between two children *)
      let* a = G.int_bound (fuel - 1) in
      let* f1 = gen_formula_scoped scope ~fuel:a in
      let* f2 = gen_formula_scoped scope ~fuel:(fuel - 1 - a) in
      G.return (k f1 f2)
    in
    let base =
      [ (3, gen_atom scope);
        (2, split (fun a b -> Form.mk_and [ a; b ]));
        (2, split (fun a b -> Form.mk_or [ a; b ]));
        ( 2,
          let* g = gen_formula_scoped scope ~fuel:(fuel - 1) in
          G.return (Form.mk_not g) );
        (1, split Form.mk_impl);
        (1, split Form.mk_iff);
      ]
    in
    let quantified =
      if quantifies scope.frag && scope.qdepth < 2 then
        [ ( 2,
            let q = Printf.sprintf "q%d" scope.qdepth in
            let scope' =
              { scope with
                bound_objs = q :: scope.bound_objs;
                qdepth = scope.qdepth + 1 }
            in
            let* body = gen_formula_scoped scope' ~fuel:(fuel - 1) in
            let* mk = oneofl [ Form.mk_forall; Form.mk_exists ] in
            G.return (mk [ (q, Ftype.Obj) ] body) );
        ]
      else []
    in
    freq (base @ quantified)

(** Generate one boolean formula of the fragment; [Form.size] of the
    result is at most [node_bound fuel]. *)
let gen_formula (frag : fragment) ~(fuel : int) : Form.t G.t =
  gen_formula_scoped { frag; bound_objs = []; qdepth = 0 } ~fuel

(** Generate a sequent: up to {!max_hyps} hypotheses at [hyp_fuel ~size]
    fuel each, and a goal at [size] fuel.  Total node count is at most
    [sequent_node_bound ~size]. *)
let gen_sequent (frag : fragment) ~(size : int) : Sequent.t G.t =
  let* nhyps = G.int_range 0 max_hyps in
  let* hyps =
    G.list_repeat nhyps (gen_formula frag ~fuel:(hyp_fuel ~size))
  in
  let* goal = gen_formula frag ~fuel:size in
  G.return (Sequent.make ~name:("fuzz:" ^ fragment_name frag) hyps goal)

(** Deterministic generation: the [n]-th sequent of a (seed, fragment,
    size) triple is a pure function of its arguments. *)
let sequent_of_seed (frag : fragment) ~(seed : int) ~(size : int) (n : int) :
    Sequent.t =
  let rand =
    Random.State.make
      [| seed; Hashtbl.hash (fragment_name frag); size; n |]
  in
  G.generate1 ~rand (gen_sequent frag ~size)
