(** Tests for field constraint analysis and the MONA route. *)

open Logic

let parse = Parser.parse

let prove hyps goal =
  Fca.prover.Sequent.prove
    (Sequent.make (List.map parse hyps) (parse goal))

let check expected msg hyps goal =
  match prove hyps goal, expected with
  | Sequent.Valid, `Valid -> ()
  | Sequent.Invalid _, `Invalid -> ()
  | Sequent.Unknown _, `Unknown -> ()
  | v, _ -> Alcotest.failf "%s: got %s" msg (Sequent.verdict_to_string v)

let reach h x = "rtrancl_pt (% u v. u..next = v) " ^ h ^ " " ^ x

let test_reachability () =
  check `Valid "reflexivity" [ reach "h" "x" ] (reach "x" "x");
  check `Valid "step implies reach"
    [ reach "h" "x"; reach "h" "y"; "x..next = y" ]
    (reach "x" "y");
  check `Invalid "reach is not symmetric"
    [ reach "h" "x" ]
    (reach "x" "h");
  check `Valid "linearity: reachable nodes are ordered"
    [ reach "h" "x"; reach "h" "y" ]
("(" ^ reach "x" "y" ^ ") | (" ^ reach "y" "x" ^ ")")

let test_null_conventions () =
  check `Valid "null reaches only null"
    [ reach "h" "x"; "x = null" ]
    (reach "x" "x");
  check `Valid "next of null is null"
    [ reach "h" "x"; "x = null"; "x..next = y" ]
    "y = null"

let test_applicability () =
  (* not chain rooted: z floats free *)
  check `Unknown "unrooted variable" [ reach "h" "x" ] "z..next = z";
  (* arithmetic is out of fragment *)
  check `Unknown "arithmetic rejected" [ "x >= 1" ] "x >= 0"

let test_derived_field_elimination () =
  let s =
    Sequent.make
      [ parse "ALL x y. x..d = y --> y = x..next";
        parse (reach "h" "a") ]
      (parse (reach "h" "a..d"))
  in
  let s' = Fca.analyze_sequent s in
  (* the goal no longer reads the derived field d *)
  let reads_d (f : Form.t) =
    Form.exists_sub
      (fun g ->
        match g with
        | Form.App (Form.Const Form.FieldRead, [ Form.Var "d"; _ ]) -> true
        | _ -> false)
      f
  in
  Alcotest.(check bool) "goal free of d" false (reads_d s'.Sequent.goal);
  (* and the constraint instance appears among the hypotheses *)
  Alcotest.(check bool) "constraint instantiated" true
    (List.length s'.Sequent.hyps >= 2);
  match Fca.prover.Sequent.prove s with
  | Sequent.Valid -> ()
  | v -> Alcotest.failf "expected valid after FCA, got %s"
           (Sequent.verdict_to_string v)

let test_set_reasoning_via_words () =
  (* pure monadic sequents go through without chain facts *)
  check `Valid "pointwise subset transitivity"
    [ "ALL e. e : A --> e : B"; "ALL e. e : B --> e : C" ]
    "ALL e. e : A --> e : C";
  check `Invalid "subset is not symmetric"
    [ "ALL e. e : A --> e : B" ]
    "ALL e. e : B --> e : A"

let suite =
  [ ( "fca",
      [ Alcotest.test_case "reachability" `Quick test_reachability;
        Alcotest.test_case "null conventions" `Quick test_null_conventions;
        Alcotest.test_case "applicability gate" `Quick test_applicability;
        Alcotest.test_case "derived-field elimination" `Quick
          test_derived_field_elimination;
        Alcotest.test_case "monadic set reasoning" `Quick
          test_set_reasoning_via_words;
      ] );
  ]
