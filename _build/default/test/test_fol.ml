(** Tests for the first-order resolution prover. *)

open Logic

let parse = Parser.parse

let prove ?set_vars hyps goal =
  let s = Sequent.make (List.map parse hyps) (parse goal) in
  match set_vars with
  | Some sv -> Fol.prove_with ~set_vars:sv s
  | None -> Fol.prove s

let check_valid msg ?set_vars hyps goal =
  match prove ?set_vars hyps goal with
  | Sequent.Valid -> ()
  | v ->
    Alcotest.failf "%s: expected valid, got %s" msg
      (Sequent.verdict_to_string v)

let check_not_valid msg ?set_vars hyps goal =
  match prove ?set_vars hyps goal with
  | Sequent.Valid -> Alcotest.failf "%s: expected not provable" msg
  | Sequent.Invalid _ | Sequent.Unknown _ -> ()

(* ------------------------------------------------------------------ *)
(* Core resolution                                                      *)
(* ------------------------------------------------------------------ *)

let test_propositional () =
  check_valid "modus ponens" [ "p = q"; "p = q --> r = t" ] "r = t";
  check_valid "contraposition" [ "a = b --> c = d" ] "c ~= d --> a ~= b";
  check_not_valid "invalid" [ "a = b | c = d" ] "a = b"

let test_equality_reasoning () =
  check_valid "transitivity" [ "a = b"; "b = c" ] "a = c";
  check_valid "congruence" [ "a = b" ] "a..f = b..f";
  check_valid "symmetry" [ "a = b" ] "b = a";
  check_not_valid "not forced" [ "a = b" ] "a = c"

let test_quantifiers () =
  check_valid "instantiation" [ "ALL x. x..f = x" ] "a..f = a";
  check_valid "witness" [ "a..f = b" ] "EX x. x..f = b";
  check_valid "swap exists forall" [ "EX y. ALL x. x..r = y" ]
    "ALL x. EX y. x..r = y";
  check_not_valid "no invalid swap" [ "ALL x. EX y. x..r = y" ]
    "EX y. ALL x. x..r = y";
  check_valid "drinker-style" [] "EX x. (EX y. y..d = null) --> x..d = null"

let test_set_reasoning () =
  (* pointwise translation of client-level set obligations *)
  check_valid "union membership" ~set_vars:[ "s"; "t" ]
    [ "x : s" ] "x : s Un t";
  check_valid "subset transitivity" ~set_vars:[ "s"; "t"; "u" ]
    [ "ALL e. e : s --> e : t"; "ALL e. e : t --> e : u" ]
    "ALL e. e : s --> e : u";
  check_valid "disjointness from empty inter" ~set_vars:[ "s"; "t" ]
    [ "s Int t = {}"; "x : s" ] "x ~: t";
  check_valid "add preserves disjointness" ~set_vars:[ "s"; "t"; "s2" ]
    [ "s Int t = {}"; "o ~: t"; "s2 = s Un {o}" ] "s2 Int t = {}";
  check_not_valid "union not inter" ~set_vars:[ "s"; "t" ]
    [ "x : s Un t" ] "x : s Int t"

let test_paper_client_obligations () =
  (* Figure 2's move method: the disjointness invariant is maintained when
     an element moves from a to b *)
  check_valid "move preserves disjointness"
    ~set_vars:[ "A"; "B"; "A2"; "B2" ]
    [ "A Int B = {}";
      "o : A";
      "A2 = A - {o}";
      "B2 = B Un {o}" ]
    "A2 Int B2 = {}";
  (* constructor: both lists empty are disjoint *)
  check_valid "empty lists disjoint" ~set_vars:[ "A"; "B" ]
    [ "A = {}"; "B = {}" ] "A Int B = {}";
  (* add to one list keeps disjointness if the element is fresh *)
  check_valid "fresh add" ~set_vars:[ "A"; "B"; "A2" ]
    [ "A Int B = {}"; "x ~: B"; "A2 = A Un {x}" ] "A2 Int B = {}"

let suite =
  [ ( "fol",
      [ Alcotest.test_case "propositional" `Quick test_propositional;
        Alcotest.test_case "equality" `Quick test_equality_reasoning;
        Alcotest.test_case "quantifiers" `Quick test_quantifiers;
        Alcotest.test_case "set reasoning" `Quick test_set_reasoning;
        Alcotest.test_case "paper client obligations" `Quick
          test_paper_client_obligations;
      ] );
  ]
