test/test_logic.ml: Alcotest Form Ftype List Logic Parser Pprint Printf QCheck QCheck_alcotest Simplify Typecheck
