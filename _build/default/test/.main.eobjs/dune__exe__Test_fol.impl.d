test/test_fol.ml: Alcotest Fol List Logic Parser Sequent
