test/test_misc.ml: Alcotest Array Dispatch Form Ftype Gcl Jahob_core Javaparser List Logic Option Parser Sequent Subst Sys
