test/test_semantics.ml: Alcotest Eval Form Ftype Logic Parser Pprint QCheck QCheck_alcotest Sequent Simplify Typecheck
