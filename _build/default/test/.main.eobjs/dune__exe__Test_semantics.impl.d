test/test_semantics.ml: Array Form Ftype List Logic Parser Pprint QCheck QCheck_alcotest Simplify Typecheck
