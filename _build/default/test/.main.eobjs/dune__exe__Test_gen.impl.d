test/test_gen.ml: Bapa Fca Form Format Fuzz Gen List Logic Presburger Printf QCheck QCheck_alcotest Sequent Smt Typecheck
