test/test_sat.ml: Alcotest List QCheck QCheck_alcotest Sat String
