test/test_javaparser.ml: Alcotest Gcl Javaparser List Logic Option Printf Sys
