test/test_fca.ml: Alcotest Fca Form List Logic Parser Sequent
