test/test_euf.ml: Alcotest Euf List QCheck QCheck_alcotest String
