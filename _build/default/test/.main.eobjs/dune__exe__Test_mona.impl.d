test/test_mona.ml: Alcotest List Mona QCheck QCheck_alcotest String
