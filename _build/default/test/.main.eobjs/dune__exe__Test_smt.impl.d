test/test_smt.ml: Alcotest Form List Logic Parser Pprint QCheck QCheck_alcotest Sequent Smt
