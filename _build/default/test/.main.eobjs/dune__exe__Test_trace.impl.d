test/test_trace.ml: Alcotest Dispatch Domain Filename List Logic Parser Printf Sequent Smt String Sys Thread Trace
