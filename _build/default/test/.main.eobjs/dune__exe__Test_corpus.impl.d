test/test_corpus.ml: Alcotest Filename Fuzz List
