test/test_bapa.ml: Alcotest Bapa Form List Logic Parser Pprint QCheck QCheck_alcotest Sequent
