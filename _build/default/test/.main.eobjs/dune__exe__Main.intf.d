test/main.mli:
