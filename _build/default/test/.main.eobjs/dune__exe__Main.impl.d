test/main.ml: Alcotest Test_arith Test_bapa Test_dispatch Test_euf Test_fca Test_fol Test_javaparser Test_logic Test_misc Test_mona Test_sat Test_semantics Test_smt Test_system Test_trace
