test/test_system.ml: Alcotest Dispatch Fol Form Gcl Instantiate Jahob_core Javaparser List Logic Parser Pprint Printf Sequent Shape Simplify Smt String Sys Vcgen
