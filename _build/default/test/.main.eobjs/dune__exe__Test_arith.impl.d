test/test_arith.ml: Alcotest List Presburger Printf QCheck QCheck_alcotest Simplex String
