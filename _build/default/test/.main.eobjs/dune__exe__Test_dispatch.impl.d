test/test_dispatch.ml: Alcotest Dispatch Form Jahob_core Javaparser List Logic Parser Printf Sequent Smt String Sys Thread
