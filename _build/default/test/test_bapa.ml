(** Tests for the BAPA decision procedure. *)

open Logic

let prove hyps goal =
  Bapa.prove (Sequent.make (List.map Parser.parse hyps) (Parser.parse goal))

let check expected msg hyps goal =
  match prove hyps goal, expected with
  | Sequent.Valid, `Valid -> ()
  | Sequent.Invalid _, `Invalid -> ()
  | Sequent.Unknown _, `Unknown -> ()
  | v, _ ->
    Alcotest.failf "%s: got %s" msg (Sequent.verdict_to_string v)

let test_set_algebra () =
  check `Valid "union commutes" [] "A Un B = B Un A";
  check `Valid "inter assoc" [] "(A Int B) Int C = A Int (B Int C)";
  check `Valid "de morgan-ish" [ "A Int B = {}"; "x : A" ] "x ~: B";
  check `Invalid "not equal" [] "A = B";
  check `Valid "diff disjoint" [] "(A - B) Int B = {}"

let test_cardinalities () =
  check `Valid "disjoint sum"
    [ "A Int B = {}"; "card A = 3"; "card B = 4" ]
    "card (A Un B) = 7";
  check `Valid "monotone" [ "A <= B" ] "card A <= card B";
  check `Invalid "overlap breaks sum"
    [ "card A = 3"; "card B = 4" ]
    "card (A Un B) = 7";
  check `Valid "inclusion-exclusion"
    [ "card A = 5"; "card B = 5"; "card (A Int B) = 2" ]
    "card (A Un B) = 8";
  check `Valid "empty has card 0" [ "A = {}" ] "card A = 0";
  check `Valid "singleton card" [] "card {x} = 1"

let test_elements () =
  check `Valid "element in union" [ "x : A" ] "x : A Un B";
  check `Valid "distinct elements"
    [ "x : A"; "y ~: A" ] "x ~= y";
  check `Valid "card lower bound from members"
    [ "x : A"; "y : A"; "x ~= y" ]
    "card A >= 2";
  check `Invalid "members may coincide"
    [ "x : A"; "y : A" ]
    "card A >= 2"

let test_fragment_rejection () =
  check `Unknown "field reads are out of fragment" [ "x..f = y" ] "y = x..f";
  check `Unknown "quantifiers are out of fragment"
    [ "ALL z. z : A" ] "x : A"

(* random cross-check against brute-force over subsets of a 4-element
   universe: validity of small set-algebra sequents *)
let prop_vs_bruteforce =
  let open QCheck.Gen in
  let svar = oneofl [ "A"; "B" ] in
  let rec sexp n st =
    if n = 0 then (Form.mk_var (svar st))
    else
      frequency
        [ (3, fun st -> Form.mk_var (svar st));
          (1, return Form.mk_emptyset);
          (2, fun st -> Form.mk_union (sexp (n / 2) st) (sexp (n / 2) st));
          (2, fun st -> Form.mk_inter (sexp (n / 2) st) (sexp (n / 2) st));
          (1, fun st -> Form.mk_diff (sexp (n / 2) st) (sexp (n / 2) st));
        ]
        st
  in
  let gen =
    let* a = sized (fun n -> sexp (min n 6)) in
    let* b = sized (fun n -> sexp (min n 6)) in
    return (Form.mk_eq a b)
  in
  QCheck.Test.make ~name:"bapa agrees with subset enumeration" ~count:200
    (QCheck.make ~print:Pprint.to_string gen) (fun goal ->
      let verdict = Bapa.prove (Sequent.make [] goal) in
      (* brute force: A, B over subsets of {0..3} *)
      let rec eval env (f : Form.t) : int =
        match Form.strip_types f with
        | Form.Var x -> List.assoc x env
        | Form.Const Form.EmptySet -> 0
        | Form.App (Form.Const Form.Union, [ a; b ]) ->
          eval env a lor eval env b
        | Form.App (Form.Const Form.Inter, [ a; b ]) ->
          eval env a land eval env b
        | Form.App (Form.Const (Form.Diff | Form.Minus), [ a; b ]) ->
          eval env a land lnot (eval env b) land 15
        | _ -> Alcotest.fail "unexpected set term"
      in
      let valid = ref true in
      for a = 0 to 15 do
        for b = 0 to 15 do
          let env = [ ("A", a); ("B", b) ] in
          (match Form.strip_types goal with
          | Form.App (Form.Const Form.Eq, [ l; r ]) ->
            if eval env l <> eval env r then valid := false
          | _ -> Alcotest.fail "unexpected goal")
        done
      done;
      (* 4 elements suffice for 2 set variables (4 Venn regions) *)
      match verdict with
      | Sequent.Valid -> !valid
      | Sequent.Invalid _ -> not !valid
      | Sequent.Unknown _ -> true)

let suite =
  [ ( "bapa",
      [ Alcotest.test_case "set algebra" `Quick test_set_algebra;
        Alcotest.test_case "cardinalities" `Quick test_cardinalities;
        Alcotest.test_case "elements" `Quick test_elements;
        Alcotest.test_case "fragment rejection" `Quick test_fragment_rejection;
        QCheck_alcotest.to_alcotest prop_vs_bruteforce;
      ] );
  ]
