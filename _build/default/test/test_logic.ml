(** Tests for the specification-logic core: AST operations, parser,
    printer, type inference and simplifier. *)

open Logic

let form = Alcotest.testable Pprint.pp Form.equal

let parse = Parser.parse

let check_parse msg input expected =
  Alcotest.check form msg expected (parse input)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_atoms () =
  check_parse "true" "True" Form.mk_true;
  check_parse "false" "False" Form.mk_false;
  check_parse "null" "null" Form.mk_null;
  check_parse "int" "42" (Form.mk_int 42);
  check_parse "var" "content" (Form.mk_var "content");
  check_parse "qualified var" "List.content" (Form.mk_var "List.content");
  check_parse "empty set" "{}" Form.mk_emptyset

let test_parse_operators () =
  let x = Form.mk_var "x" and y = Form.mk_var "y" in
  check_parse "eq" "x = y" (Form.mk_eq x y);
  check_parse "neq" "x ~= y" (Form.mk_neq x y);
  check_parse "elem" "x : y" (Form.mk_elem x y);
  check_parse "notelem" "x ~: y" (Form.mk_notelem x y);
  check_parse "and" "x = y & y = x"
    (Form.mk_and [ Form.mk_eq x y; Form.mk_eq y x ]);
  check_parse "or lower than and" "x = y | y = x & x = x"
    (Form.mk_or
       [ Form.mk_eq x y; Form.mk_and [ Form.mk_eq y x; Form.mk_eq x x ] ]);
  check_parse "impl right assoc" "x = y --> y = x --> x = x"
    (Form.mk_impl (Form.mk_eq x y)
       (Form.mk_impl (Form.mk_eq y x) (Form.mk_eq x x)));
  check_parse "union" "x Un y" (Form.App (Const Union, [ x; y ]));
  check_parse "inter binds tighter than union" "x Un y Int x"
    (Form.App (Const Union, [ x; Form.mk_inter y x ]));
  check_parse "arith prec" "1 + 2 * 3"
    (Form.mk_plus (Form.mk_int 1) (Form.mk_mult (Form.mk_int 2) (Form.mk_int 3)))

let test_parse_field_access () =
  let x = Form.mk_var "x" in
  check_parse "field read" "x..Node.next"
    (Form.mk_field_read (Form.mk_var "Node.next") x);
  check_parse "chained field read" "x..Node.next..Node.data"
    (Form.mk_field_read (Form.mk_var "Node.data")
       (Form.mk_field_read (Form.mk_var "Node.next") x));
  check_parse "field read in eq" "x..Node.next ~= x"
    (Form.mk_neq (Form.mk_field_read (Form.mk_var "Node.next") x) x)

let test_parse_paper_formulas () =
  (* every specification formula appearing in the paper's figures *)
  let ok s =
    match Parser.parse_opt s with
    | Some _ -> ()
    | None -> Alcotest.failf "failed to parse %S" s
  in
  ok "content = {}";
  ok "o ~: content & o ~= null";
  ok "content = old content Un {o}";
  ok "result = (content = {})";
  ok "content ~= {}";
  ok "result : content";
  ok "o : content";
  ok "content = old content - {o}";
  ok "init --> a ~= null & b ~= null & a..List.content Int b..List.content = {}";
  ok "a..List.content = {}";
  ok "{ n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}";
  ok "{x. EX n. x = n..Node.data & n : nodes}";
  ok "tree [List.first, Node.next]";
  ok
    "first = null | (first : Object.alloc & (ALL n. n..Node.next ~= first & \
     (n ~= this --> n..List.first ~= first)))";
  ok
    "ALL n1 n2. n1 : nodes & n2 : nodes & n1..Node.data = n2..Node.data --> \
     n1 = n2"

let test_parse_binders () =
  match Form.strip_types (parse "ALL x y. x = y") with
  | Form.Binder (Forall, [ (x, _); (y, _) ], body) ->
    Alcotest.(check string) "var 1" "x" x;
    Alcotest.(check string) "var 2" "y" y;
    Alcotest.check form "body" (Form.mk_eq (Form.mk_var "x") (Form.mk_var "y"))
      body
  | _ -> Alcotest.fail "expected a forall"

let test_parse_comprehension () =
  match Form.strip_types (parse "{n. n ~= null}") with
  | Form.Binder (Comprehension, [ (n, _) ], body) ->
    Alcotest.(check string) "bound var" "n" n;
    Alcotest.check form "body"
      (Form.mk_neq (Form.mk_var "n") Form.mk_null)
      body
  | _ -> Alcotest.fail "expected a comprehension"

let test_parse_finite_set () =
  check_parse "singleton" "{x}" (Form.mk_singleton (Form.mk_var "x"));
  check_parse "pair set" "{x, y}"
    (Form.mk_finite_set [ Form.mk_var "x"; Form.mk_var "y" ])

let test_parse_errors () =
  let fails s =
    match Parser.parse_opt s with
    | None -> ()
    | Some f -> Alcotest.failf "expected %S to fail, got %s" s (Pprint.to_string f)
  in
  fails "";
  fails "x = ";
  fails "(x = y";
  fails "ALL . x";
  fails "x ..";
  fails "{x, }"

(* ------------------------------------------------------------------ *)
(* Printer round-trip                                                  *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let cases =
    [ "content = old content Un {o}";
      "o ~: content & o ~= null";
      "init --> a ~= null & b ~= null";
      "{n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}";
      "tree [List.first, Node.next]";
      "ALL n1 n2. n1 : nodes & n2 : nodes --> n1 = n2";
      "card s <= card t + 1";
      "x..Node.next..Node.data = null";
      "if x = y then 1 else 2";
    ]
  in
  List.iter
    (fun s ->
      let f = parse s in
      let printed = Pprint.to_string f in
      let f' =
        try parse printed
        with Parser.Error m ->
          Alcotest.failf "reparse of %S failed: %s" printed m
      in
      Alcotest.check form (Printf.sprintf "roundtrip %s" s) f f')
    cases

(* ------------------------------------------------------------------ *)
(* Free variables, substitution                                        *)
(* ------------------------------------------------------------------ *)

let test_fv () =
  let fv s = List.sort compare (Form.fv_list (parse s)) in
  Alcotest.(check (list string)) "simple" [ "x"; "y" ] (fv "x = y");
  Alcotest.(check (list string)) "binder hides" [ "y" ] (fv "ALL x. x = y");
  Alcotest.(check (list string))
    "comprehension hides" [ "first" ]
    (fv "{n. rtrancl_pt (% x y. x = y) first n}");
  Alcotest.(check (list string))
    "field var is free" [ "Node.next"; "x" ]
    (fv "x..Node.next = null")

let test_subst () =
  let s = Form.subst1 "x" (Form.mk_var "z") (parse "x = y & (ALL x. x = y)") in
  Alcotest.check form "only free occurrences"
    (parse "z = y & (ALL x. x = y)")
    s;
  (* capture avoidance: substituting y := x under a binder for x *)
  let f = parse "ALL x. x = y" in
  let g = Form.subst1 "y" (Form.mk_var "x") f in
  (match Form.strip_types g with
  | Form.Binder (Forall, [ (x', _) ], body) ->
    if x' = "x" then Alcotest.fail "bound variable captured the substituted x";
    Alcotest.check form "body renamed"
      (Form.mk_eq (Form.mk_var x') (Form.mk_var "x"))
      body
  | _ -> Alcotest.fail "expected forall");
  (* parallel substitution is simultaneous *)
  let h =
    Form.subst_list
      [ ("x", Form.mk_var "y"); ("y", Form.mk_var "x") ]
      (parse "x = y")
  in
  Alcotest.check form "swap" (parse "y = x") h

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let test_smart_constructors () =
  Alcotest.check form "and flattening"
    (parse "a = b & c = d & e = f")
    (Form.mk_and
       [ Form.mk_and [ parse "a = b"; parse "c = d" ]; parse "e = f" ]);
  Alcotest.check form "and true unit" (parse "a = b")
    (Form.mk_and [ Form.mk_true; parse "a = b" ]);
  Alcotest.check form "and false zero" Form.mk_false
    (Form.mk_and [ parse "a = b"; Form.mk_false ]);
  Alcotest.check form "or false unit" (parse "a = b")
    (Form.mk_or [ Form.mk_false; parse "a = b" ]);
  Alcotest.check form "double negation" (parse "a = b")
    (Form.mk_not (Form.mk_not (parse "a = b")));
  Alcotest.check form "impl true" (parse "a = b")
    (Form.mk_impl Form.mk_true (parse "a = b"));
  Alcotest.check form "union empty" (Form.mk_var "s")
    (Form.mk_union Form.mk_emptyset (Form.mk_var "s"))

let test_views () =
  let f = parse "a = b & c = d & e = f" in
  Alcotest.(check int) "conjuncts" 3 (List.length (Form.conjuncts f));
  let hyps, goal = Form.hypotheses_and_goal (parse "a = b & c = d --> e = f") in
  Alcotest.(check int) "hyps" 2 (List.length hyps);
  Alcotest.check form "goal" (parse "e = f") goal

(* ------------------------------------------------------------------ *)
(* Type inference                                                      *)
(* ------------------------------------------------------------------ *)

let test_typecheck_basic () =
  let env =
    Typecheck.env_of_list
      [ ("content", Ftype.objset);
        ("o", Ftype.Obj);
        ("n", Ftype.Int);
        ("Node.next", Ftype.Arrow (Obj, Obj));
      ]
  in
  let wt s = Typecheck.well_typed ~env (parse s) in
  Alcotest.(check bool) "membership" true (wt "o : content");
  Alcotest.(check bool) "set eq" true (wt "content = {}");
  Alcotest.(check bool) "arith" true (wt "n + 1 < 3");
  Alcotest.(check bool) "field" true (wt "o..Node.next = null");
  Alcotest.(check bool) "card" true (wt "card content = n");
  Alcotest.(check bool) "ill-typed int as bool" false (wt "1 & n = 2");
  Alcotest.(check bool) "ill-typed set plus int" false (wt "content = n")

let test_typecheck_disambiguation () =
  let env =
    Typecheck.env_of_list
      [ ("s", Ftype.objset); ("t", Ftype.objset); ("i", Ftype.Int) ]
  in
  let d s = Typecheck.check_formula ~env (parse s) in
  (match Form.strip_types (d "s <= t") with
  | Form.App (Const Subseteq, _) -> ()
  | f -> Alcotest.failf "expected subseteq, got %s" (Pprint.to_string f));
  (match Form.strip_types (d "s - t = {}") with
  | Form.App (Const Eq, [ l; _ ]) -> (
    match Form.strip_types l with
    | Form.App (Const Diff, _) -> ()
    | f -> Alcotest.failf "expected set diff, got %s" (Pprint.to_string f))
  | f -> Alcotest.failf "expected eq, got %s" (Pprint.to_string f));
  (match Form.strip_types (d "i <= 3") with
  | Form.App (Const Le, _) -> ()
  | f -> Alcotest.failf "expected Le, got %s" (Pprint.to_string f))

let test_typecheck_paper () =
  (* Fig. 3's vardefs bodies typecheck in the right environment *)
  let env =
    Typecheck.env_of_list
      [ ("first", Ftype.Obj);
        ("this", Ftype.Obj);
        ("Node.next", Ftype.Arrow (Obj, Obj));
        ("Node.data", Ftype.Arrow (Obj, Obj));
        ("List.first", Ftype.Arrow (Obj, Obj));
        ("nodes", Ftype.objset);
        ("Object.alloc", Ftype.objset);
      ]
  in
  let ok s =
    if not (Typecheck.well_typed ~env (parse s)) then
      Alcotest.failf "ill-typed: %s" s
  in
  ok "{n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}";
  ok "{x. EX n. x = n..Node.data & n : nodes}";
  ok "tree [List.first, Node.next]";
  ok
    "first = null | (first : Object.alloc & (ALL n. n..Node.next ~= first & \
     (n ~= this --> n..List.first ~= first)))"

(* ------------------------------------------------------------------ *)
(* Simplifier                                                          *)
(* ------------------------------------------------------------------ *)

let test_simplify_sets () =
  let simp s = Simplify.simplify (parse s) in
  Alcotest.check form "elem union" (parse "x = a | x = b")
    (simp "x : {a} Un {b}");
  Alcotest.check form "elem empty" Form.mk_false (simp "x : {}");
  Alcotest.check form "elem comprehension" (parse "x ~= null")
    (simp "x : {n. n ~= null}");
  Alcotest.check form "elem inter" (parse "x : s & x : t")
    (simp "x : s Int t");
  Alcotest.check form "elem diff" (parse "x : s & x ~: t")
    (simp "x : s - {y. y : t}" |> fun f -> f)

let test_simplify_beta () =
  let simp s = Simplify.simplify (parse s) in
  Alcotest.check form "beta" (parse "a = b")
    (simp "(% x y. x = y) a b");
  Alcotest.check form "rtrancl lambda untouched"
    (parse "rtrancl_pt (% x y. x..f = y) a b")
    (simp "rtrancl_pt (% x y. x..f = y) a b")

let test_simplify_field () =
  let simp s = Simplify.simplify (parse s) in
  Alcotest.check form "read over write same"
    (parse "v = z")
    (simp "fieldRead (fieldWrite f x v) x = z");
  Alcotest.check form "read over write ite (lifted)"
    (parse "if y = x then v = z else y..f = z")
    (simp "fieldRead (fieldWrite f x v) y = z")

let test_mk_iff () =
  let a = parse "a = b" in
  Alcotest.check form "true <-> f" a (Form.mk_iff Form.mk_true a);
  Alcotest.check form "f <-> true" a (Form.mk_iff a Form.mk_true);
  Alcotest.check form "false <-> f" (Form.mk_not a)
    (Form.mk_iff Form.mk_false a);
  Alcotest.check form "f <-> false" (Form.mk_not a)
    (Form.mk_iff a Form.mk_false);
  Alcotest.check form "false <-> false" Form.mk_true
    (Form.mk_iff Form.mk_false Form.mk_false);
  (* the rewriter agrees with the smart constructor *)
  let simp s = Simplify.simplify (parse s) in
  Alcotest.check form "simplify False <-> f" (Form.mk_not a)
    (simp "False <-> a = b");
  Alcotest.check form "simplify f <-> False" (Form.mk_not a)
    (simp "a = b <-> False");
  Alcotest.check form "simplify True <-> f" a (simp "True <-> a = b");
  Alcotest.check form "simplify f <-> f" Form.mk_true (simp "a = b <-> a = b")

let test_nnf () =
  let n s = Simplify.nnf (parse s) in
  Alcotest.check form "de morgan and" (parse "a ~= b | c ~= d")
    (n "~(a = b & c = d)");
  Alcotest.check form "neg forall" (parse "EX x. x ~= y")
    (n "~(ALL x. x = y)");
  Alcotest.check form "impl" (parse "a ~= b | c = d") (n "a = b --> c = d")

let test_skolemize () =
  let f = Simplify.skolemize (parse "ALL x. EX y. x = y") in
  (* matrix should be x = sk(x) with no quantifier left *)
  let has_binder =
    Form.exists_sub (fun g -> match g with Form.Binder _ -> true | _ -> false) f
  in
  Alcotest.(check bool) "no binders" false has_binder;
  match Form.strip_types f with
  | Form.App (Const Eq, [ lhs; rhs ]) -> (
    match Form.strip_types lhs, Form.strip_types rhs with
    | Form.Var x, Form.App (Var _, [ Form.Var x' ]) when x = x' -> ()
    | _, g -> Alcotest.failf "expected skolem app, got %s" (Pprint.to_string g))
  | g -> Alcotest.failf "expected equality, got %s" (Pprint.to_string g)

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let gen_form : Form.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z"; "s"; "t" ] >|= Form.mk_var in
  let atom =
    frequency
      [ (3, var);
        (1, map Form.mk_int (int_range (-5) 5));
        (1, return Form.mk_null);
        (1, return Form.mk_true);
        (1, return Form.mk_emptyset);
      ]
  in
  (* Gen.t is a function of the random state; eta-expansion keeps the
     recursive branches lazy (eager construction would be exponential). *)
  let rec go n st =
    if n = 0 then atom st
    else
      frequency
        [ (2, atom);
          (2, fun st -> Form.mk_eq (go (n / 2) st) (go (n / 2) st));
          (2, fun st -> Form.mk_and [ go (n / 2) st; go (n / 2) st ]);
          (2, fun st -> Form.mk_or [ go (n / 2) st; go (n / 2) st ]);
          (1, fun st -> Form.mk_not (go (n - 1) st));
          (1, fun st -> Form.mk_impl (go (n / 2) st) (go (n / 2) st));
          (1, fun st -> Form.mk_union (go (n / 2) st) (go (n / 2) st));
          ( 1,
            fun st ->
              let x = oneofl [ "x"; "y"; "q" ] st in
              Form.mk_forall [ (x, Ftype.Obj) ] (go (n - 1) st) );
          (1, fun st -> Form.mk_elem (go (n / 2) st) (go (n / 2) st));
        ]
        st
  in
  sized (fun n -> go (min n 20))

let arb_form = QCheck.make ~print:Pprint.to_string gen_form

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:500 arb_form (fun f ->
      let s = Pprint.to_string f in
      match Parser.parse_opt s with
      | Some f' -> Form.equal f f'
      | None -> false)

(* NNF normalizes the propositional skeleton only: connectives nested
   below an atom (e.g. inside an equality's operands) are out of scope. *)
let rec nnf_skeleton_ok f =
  match Form.strip_types f with
  | Form.App (Const Not, [ inner ]) -> (
    match Form.strip_types inner with
    | Form.App (Const (And | Or | Impl | Iff | Not), _)
    | Form.Binder ((Forall | Exists), _, _) ->
      false
    | _ -> true)
  | Form.App (Const (And | Or | Impl | Iff), args) ->
    List.for_all nnf_skeleton_ok args
  | Form.Binder ((Forall | Exists), _, body) -> nnf_skeleton_ok body
  | _ -> true

let prop_nnf_no_negated_compound =
  QCheck.Test.make ~name:"nnf pushes negations to atoms" ~count:300 arb_form
    (fun f -> nnf_skeleton_ok (Simplify.nnf f))

let prop_subst_fv =
  QCheck.Test.make ~name:"subst removes the substituted variable" ~count:300
    arb_form (fun f ->
      let g = Form.subst1 "x" (Form.mk_var "fresh_w") f in
      not (Form.Sset.mem "x" (Form.fv g)) || not (Form.Sset.mem "x" (Form.fv f)))

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify is idempotent" ~count:300 arb_form (fun f ->
      let g = Simplify.simplify f in
      Form.equal g (Simplify.simplify g))

let prop_size_positive =
  QCheck.Test.make ~name:"size positive and monotone under not" ~count:200
    arb_form (fun f ->
      Form.size f > 0 && Form.size (Form.App (Const Not, [ f ])) > Form.size f)

(* the surface printer renders Le/Subseteq, Lt/Subset and Minus/Diff with
   one token each — by design, since it prints parseable Isabelle-subset
   syntax.  The canonical printer must separate every such homograph pair,
   whatever the operands, or cache keys collide. *)
let prop_canonical_separates_homographs =
  QCheck.Test.make
    ~name:"canonical printing separates <=/</- homographs" ~count:200
    QCheck.(pair arb_form arb_form)
    (fun (a, b) ->
      List.for_all
        (fun (c1, c2) ->
          let f1 = Form.App (Form.Const c1, [ a; b ]) in
          let f2 = Form.App (Form.Const c2, [ a; b ]) in
          Pprint.to_string f1 = Pprint.to_string f2
          && Pprint.to_canonical_string f1 <> Pprint.to_canonical_string f2)
        [ (Form.Le, Form.Subseteq); (Form.Lt, Form.Subset);
          (Form.Minus, Form.Diff) ])

(* on sort-annotation-free formulas, equal canonical printings must mean
   exactly alpha-equivalence — no more collisions, no spurious splits *)
let prop_canonical_faithful =
  QCheck.Test.make ~name:"canonical printing = alpha-equivalence" ~count:300
    QCheck.(pair arb_form arb_form)
    (fun (f, g) ->
      let canon h =
        Pprint.to_canonical_string (Form.alpha_normalize ~keep_types:true h)
      in
      (canon f = canon g) = Form.equal f g && canon f = canon f)

(* obligations reach the digest as parser output, and re-generating an
   obligation re-parses the same source: canonical printing must be stable
   under print/parse for parser-produced formulas.  (The surface syntax
   drops binder sorts, so each parse mints fresh unification variables —
   the canonical printer renders them uniformly as [_].) *)
let prop_canonical_roundtrip_stable =
  QCheck.Test.make ~name:"canonical printing stable under print/parse"
    ~count:300 arb_form (fun f ->
      match Parser.parse_opt (Pprint.to_string f) with
      | None -> false
      | Some f1 -> (
        match Parser.parse_opt (Pprint.to_string f1) with
        | None -> false
        | Some f2 ->
          Pprint.to_canonical_string
            (Form.alpha_normalize ~keep_types:true f1)
          = Pprint.to_canonical_string
              (Form.alpha_normalize ~keep_types:true f2)))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_print_parse_roundtrip;
      prop_nnf_no_negated_compound;
      prop_subst_fv;
      prop_simplify_idempotent;
      prop_size_positive;
      prop_canonical_separates_homographs;
      prop_canonical_faithful;
      prop_canonical_roundtrip_stable;
    ]

let suite =
  [ ( "logic.parser",
      [ Alcotest.test_case "atoms" `Quick test_parse_atoms;
        Alcotest.test_case "operators" `Quick test_parse_operators;
        Alcotest.test_case "field access" `Quick test_parse_field_access;
        Alcotest.test_case "paper formulas" `Quick test_parse_paper_formulas;
        Alcotest.test_case "binders" `Quick test_parse_binders;
        Alcotest.test_case "comprehension" `Quick test_parse_comprehension;
        Alcotest.test_case "finite set" `Quick test_parse_finite_set;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      ] );
    ( "logic.form",
      [ Alcotest.test_case "free variables" `Quick test_fv;
        Alcotest.test_case "substitution" `Quick test_subst;
        Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
        Alcotest.test_case "views" `Quick test_views;
      ] );
    ( "logic.typecheck",
      [ Alcotest.test_case "basic" `Quick test_typecheck_basic;
        Alcotest.test_case "disambiguation" `Quick test_typecheck_disambiguation;
        Alcotest.test_case "paper formulas" `Quick test_typecheck_paper;
      ] );
    ( "logic.simplify",
      [ Alcotest.test_case "set rewriting" `Quick test_simplify_sets;
        Alcotest.test_case "beta reduction" `Quick test_simplify_beta;
        Alcotest.test_case "field read/write" `Quick test_simplify_field;
        Alcotest.test_case "iff constant folding" `Quick test_mk_iff;
        Alcotest.test_case "nnf" `Quick test_nnf;
        Alcotest.test_case "skolemize" `Quick test_skolemize;
      ] );
    ("logic.properties", qcheck_tests);
  ]
