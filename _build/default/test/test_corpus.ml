(** Replays every minimized counterexample in [test/corpus/] through the
    differential driver and fails if any historical prover disagreement
    (or prover-vs-oracle contradiction) reappears. *)

module Differ = Fuzz.Differ

let corpus_dir = "corpus"

let replay_file path () =
  match Differ.replay Differ.default_config path with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "%s" msg

let cases =
  match Differ.corpus_files corpus_dir with
  | [] -> [ Alcotest.test_case "corpus present" `Quick (fun () ->
              Alcotest.fail "test/corpus is empty or missing") ]
  | files ->
      List.map
        (fun path ->
          Alcotest.test_case (Filename.basename path) `Quick (replay_file path))
        files

let suite = [ ("corpus", cases) ]
