(** Tests for the Nelson-Oppen SMT solver (QF_UFLIA). *)

open Logic

let parse = Parser.parse

let prove hyps goal =
  Smt.prove (Sequent.make (List.map parse hyps) (parse goal))

let check_valid msg hyps goal =
  match prove hyps goal with
  | Sequent.Valid -> ()
  | v ->
    Alcotest.failf "%s: expected valid, got %s" msg
      (Sequent.verdict_to_string v)

let check_not_valid msg hyps goal =
  match prove hyps goal with
  | Sequent.Valid -> Alcotest.failf "%s: expected not-valid, got valid" msg
  | Sequent.Invalid _ | Sequent.Unknown _ -> ()

let check_invalid msg hyps goal =
  match prove hyps goal with
  | Sequent.Invalid _ -> ()
  | v ->
    Alcotest.failf "%s: expected invalid, got %s" msg
      (Sequent.verdict_to_string v)

let test_propositional () =
  check_valid "modus ponens" [ "p = q"; "p = q --> q = r" ] "q = r";
  check_valid "case split" [ "p = a | p = b"; "p ~= a" ] "p = b";
  check_invalid "affirming the consequent" [ "p = q --> q = r"; "q = r" ]
    "p = q";
  check_valid "excluded middle" [] "x = y | x ~= y"

let test_equality () =
  check_valid "transitivity" [ "a = b"; "b = c" ] "a = c";
  check_valid "symmetry" [ "a = b" ] "b = a";
  check_invalid "no derivation" [ "a = b" ] "a = c";
  check_valid "congruence via fields"
    [ "x = y" ] "x..f = y..f";
  check_valid "chain of four" [ "a = b"; "b = c"; "c = d" ] "a = d";
  check_invalid "disequality consistent" [ "a ~= b" ] "a = b"

let test_arith () =
  check_valid "le antisym" [ "x <= y"; "y <= x" ] "x = y";
  check_valid "lt chain" [ "x < y"; "y < z" ] "x < z";
  check_valid "plus" [ "x = y + 1" ] "x > y";
  check_invalid "not tight" [ "x <= y" ] "x = y";
  check_valid "integer tightness" [ "x > 0"; "x < 2" ] "x = 1";
  check_valid "parity-free reasoning" [ "2 * x = y"; "y = 6" ] "x = 3";
  check_invalid "sat side" [ "x >= 0" ] "x >= 1"

let test_combination () =
  (* Nelson-Oppen exchange: f(x) with arithmetic forcing x = y *)
  check_valid "arith eq to congruence"
    [ "x <= y"; "y <= x" ] "x..f = y..f";
  check_valid "congruence to arith"
    [ "a = b" ] "a..g + 1 = b..g + 1";
  check_not_valid "no false exchange" [ "x <= y" ] "x..f = y..f";
  (* classic NO example *)
  check_valid "f(x) <= f(y) style"
    [ "x = y"; "x..f = 1" ] "y..f > 0"

let test_field_writes () =
  check_valid "read over write"
    [ "g = fieldWrite f x v" ] "fieldRead g x = v";
  check_valid "read over write, other loc"
    [ "g = fieldWrite f x v"; "y ~= x" ] "fieldRead g y = fieldRead f y";
  check_not_valid "unknown aliasing" [ "g = fieldWrite f x v" ]
    "fieldRead g y = fieldRead f y"

let test_opaque_atoms () =
  (* membership atoms are EUF-interpreted: propositional structure plus
     congruence both work *)
  check_valid "membership modus ponens"
    [ "x : s"; "x : s --> y : s" ] "y : s";
  check_valid "membership congruence" [ "x : s"; "x = y" ] "y : s";
  (* memberships admit genuine countermodels *)
  (match prove [ "x : s" ] "y : s" with
  | Sequent.Invalid _ -> ()
  | v ->
    Alcotest.failf "expected countermodel for unprovable set goal, got %s"
      (Sequent.verdict_to_string v));
  (* quantified atoms stay opaque: a consistent boolean model must be
     Unknown, never Invalid *)
  match prove [ "ALL z. z : s" ] "y : t" with
  | Sequent.Unknown _ -> ()
  | v ->
    Alcotest.failf "expected unknown under opaque quantifier, got %s"
      (Sequent.verdict_to_string v)

let test_paper_client_fragment () =
  (* the kind of obligations Client.move generates after set-rewriting *)
  check_valid "object propagation"
    [ "o = x"; "x ~= null" ] "o ~= null";
  check_valid "conditional aliasing"
    [ "first ~= null"; "n = first" ] "n ~= null"

(* random QF_UFLIA sequents, cross-checked against a bounded enumerator *)
let prop_smt_sound_on_arith =
  (* generate small arithmetic formulas over x,y with +,<=,=; compare SMT
     validity with brute-force over a box. If SMT says Valid, brute force
     must find no counterexample. *)
  let open QCheck.Gen in
  let term =
    frequency
      [ (3, oneofl [ Form.mk_var "x"; Form.mk_var "y" ]);
        (2, map Form.mk_int (int_range (-4) 4));
      ]
  in
  let term2 =
    frequency
      [ (2, term);
        (1, map2 Form.mk_plus term term);
        (1, map2 Form.mk_minus term term);
      ]
  in
  let atom =
    let* a = term2 in
    let* b = term2 in
    oneofl [ Form.mk_le a b; Form.mk_lt a b; Form.mk_eq a b ]
  in
  let form =
    let* a = atom in
    let* b = atom in
    let* c = atom in
    oneofl
      [ Form.mk_impl (Form.mk_and [ a; b ]) c;
        Form.mk_impl a (Form.mk_or [ b; c ]);
        Form.mk_or [ Form.mk_not a; b; c ];
      ]
  in
  let arb = QCheck.make ~print:Pprint.to_string form in
  QCheck.Test.make ~name:"smt sound wrt enumeration" ~count:200 arb (fun f ->
      let smt_verdict = Smt.prove (Sequent.make [] f) in
      let eval_in x y =
        let rec ev_t (g : Form.t) : int =
          match Form.strip_types g with
          | Form.Var "x" -> x
          | Form.Var "y" -> y
          | Form.Const (Form.IntLit n) -> n
          | Form.App (Form.Const Form.Plus, [ a; b ]) -> ev_t a + ev_t b
          | Form.App (Form.Const Form.Minus, [ a; b ]) -> ev_t a - ev_t b
          | _ -> Alcotest.fail "unexpected term"
        in
        let rec ev (g : Form.t) : bool =
          match Form.strip_types g with
          | Form.App (Form.Const Form.Le, [ a; b ]) -> ev_t a <= ev_t b
          | Form.App (Form.Const Form.Lt, [ a; b ]) -> ev_t a < ev_t b
          | Form.App (Form.Const Form.Eq, [ a; b ]) -> ev_t a = ev_t b
          | Form.App (Form.Const Form.Not, [ a ]) -> not (ev a)
          | Form.App (Form.Const Form.And, gs) -> List.for_all ev gs
          | Form.App (Form.Const Form.Or, gs) -> List.exists ev gs
          | Form.App (Form.Const Form.Impl, [ a; b ]) -> (not (ev a)) || ev b
          | _ -> Alcotest.fail "unexpected formula"
        in
        ev f
      in
      let counterexample = ref false in
      for x = -10 to 10 do
        for y = -10 to 10 do
          if not (eval_in x y) then counterexample := true
        done
      done;
      match smt_verdict with
      | Sequent.Valid -> not !counterexample
      | Sequent.Invalid _ ->
        (* countermodels may fall outside the enumeration box, so only the
           Valid direction is checked strictly *)
        true
      | Sequent.Unknown _ -> true)

let suite =
  [ ( "smt",
      [ Alcotest.test_case "propositional" `Quick test_propositional;
        Alcotest.test_case "equality" `Quick test_equality;
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "nelson-oppen combination" `Quick test_combination;
        Alcotest.test_case "field writes" `Quick test_field_writes;
        Alcotest.test_case "opaque atoms" `Quick test_opaque_atoms;
        Alcotest.test_case "paper client fragment" `Quick
          test_paper_client_fragment;
        QCheck_alcotest.to_alcotest prop_smt_sound_on_arith;
      ] );
  ]
