(** Tests for the MONA substitute: DFA algebra and the WS1S decision
    procedure. *)

module Dfa = Mona.Dfa
module Ws1s = Mona.Ws1s

(* ------------------------------------------------------------------ *)
(* DFA layer                                                           *)
(* ------------------------------------------------------------------ *)

(* width-1 automaton accepting words whose track-0 bit count is congruent
   to r mod m *)
let mod_counter ~m ~r =
  Dfa.make ~width:1 ~n:m ~initial:0
    ~accept:(fun s -> s = r)
    (fun s l -> if l land 1 = 1 then (s + 1) mod m else s)

let test_dfa_basic () =
  let even = mod_counter ~m:2 ~r:0 in
  Alcotest.(check bool) "empty word even" true (Dfa.accepts even []);
  Alcotest.(check bool) "one bit odd" false (Dfa.accepts even [ 1 ]);
  Alcotest.(check bool) "two bits even" true (Dfa.accepts even [ 1; 0; 1 ]);
  let odd = Dfa.complement even in
  Alcotest.(check bool) "complement" true (Dfa.accepts odd [ 1 ]);
  let both = Dfa.inter even odd in
  Alcotest.(check bool) "inter empty" true (Dfa.is_empty both);
  let either = Dfa.union even odd in
  Alcotest.(check bool) "union universal" true (Dfa.is_universal either)

let test_dfa_minimize () =
  (* divisible by 6 = divisible by 2 and 3; product has 6 states, the
     intersection language automaton is minimal at 6; check equivalence *)
  let d2 = mod_counter ~m:2 ~r:0 and d3 = mod_counter ~m:3 ~r:0 in
  let d6 = Dfa.inter d2 d3 in
  let m = Dfa.minimize d6 in
  Alcotest.(check bool) "minimize preserves states bound" true
    (Dfa.num_states m <= Dfa.num_states d6);
  (* behavioural equality on a sample of words *)
  for w = 0 to 255 do
    let word = List.init 8 (fun i -> (w lsr i) land 1) in
    Alcotest.(check bool) "same language" (Dfa.accepts d6 word)
      (Dfa.accepts m word)
  done;
  let direct6 = mod_counter ~m:6 ~r:0 in
  let symdiff = Dfa.union (Dfa.inter m (Dfa.complement direct6))
      (Dfa.inter direct6 (Dfa.complement m))
  in
  Alcotest.(check bool) "equals mod-6 automaton" true (Dfa.is_empty symdiff)

let test_dfa_witness () =
  let three = mod_counter ~m:4 ~r:3 in
  match Dfa.witness three with
  | Some w ->
    Alcotest.(check int) "shortest witness" 3 (List.length w);
    Alcotest.(check bool) "accepted" true (Dfa.accepts three w)
  | None -> Alcotest.fail "witness expected"

let test_dfa_project () =
  (* width-2: track0 = track1 everywhere; projecting track1 yields the
     universal automaton over track0 (a set always exists) *)
  let eq01 =
    Dfa.make ~width:2 ~n:2 ~initial:0
      ~accept:(fun s -> s = 0)
      (fun s l ->
        if s = 0 && l land 1 = (l lsr 1) land 1 then 0 else 1)
  in
  let p = Dfa.project eq01 1 in
  Alcotest.(check bool) "projection universal" true (Dfa.is_universal p);
  (* track1 must contain a position beyond the word: exists X. 5 : X gives
     acceptance of the empty word thanks to zero-closure *)
  let track1_nonempty =
    (* accept iff track 1 has at least one bit *)
    Dfa.make ~width:2 ~n:2 ~initial:0
      ~accept:(fun s -> s = 1)
      (fun s l -> if s = 1 || (l lsr 1) land 1 = 1 then 1 else 0)
  in
  let q = Dfa.project track1_nonempty 1 in
  Alcotest.(check bool) "zero closure accepts short words" true
    (Dfa.accepts q [])

(* ------------------------------------------------------------------ *)
(* WS1S layer                                                          *)
(* ------------------------------------------------------------------ *)

open Mona.Ws1s

let check_valid msg ?(fo = []) f =
  Alcotest.(check bool) msg true (valid ~fo f)

let check_not_valid msg ?(fo = []) f =
  Alcotest.(check bool) msg false (valid ~fo f)

let check_sat msg ?(fo = []) f =
  match satisfiable ~fo f with
  | Some _ -> ()
  | None -> Alcotest.failf "%s: expected satisfiable" msg

let check_unsat msg ?(fo = []) f =
  match satisfiable ~fo f with
  | Some m ->
    let show (v, ps) =
      v ^ "={" ^ String.concat "," (List.map string_of_int ps) ^ "}"
    in
    Alcotest.failf "%s: expected unsat, got %s" msg
      (String.concat " " (List.map show m))
  | None -> ()

let test_ws1s_sets () =
  check_valid "subset refl" (All2 ("X", Pred (Sub ("X", "X"))));
  check_valid "subset antisym"
    (All2
       ( "X",
         All2
           ( "Y",
             Impl
               ( And [ Pred (Sub ("X", "Y")); Pred (Sub ("Y", "X")) ],
                 Pred (EqS ("X", "Y")) ) ) ));
  check_valid "union upper bound"
    (All2
       ( "X",
         All2
           ( "Y",
             All2
               ( "Z",
                 Impl (Pred (EqUnion ("Z", "X", "Y")), Pred (Sub ("X", "Z")))
               ) ) ));
  check_not_valid "subset not symmetric"
    (All2
       ("X", All2 ("Y", Impl (Pred (Sub ("X", "Y")), Pred (Sub ("Y", "X"))))));
  check_valid "exists empty set" (Ex2 ("X", Pred (IsEmpty "X")));
  check_valid "diff disjoint"
    (All2
       ( "X",
         All2
           ( "Y",
             All2
               ( "D",
                 Impl
                   ( Pred (EqDiff ("D", "X", "Y")),
                     All1
                       ( "p",
                         Impl (Pred (In ("p", "D")), Not (Pred (In ("p", "Y"))))
                       ) ) ) ) ))

let test_ws1s_positions () =
  check_valid "successor exists" ~fo:[]
    (All1 ("x", Ex1 ("y", Pred (SuccF ("y", "x")))));
  check_valid "less irreflexive" (All1 ("x", Not (Pred (LessF ("x", "x")))));
  check_valid "less transitive"
    (All1
       ( "x",
         All1
           ( "y",
             All1
               ( "z",
                 Impl
                   ( And [ Pred (LessF ("x", "y")); Pred (LessF ("y", "z")) ],
                     Pred (LessF ("x", "z")) ) ) ) ));
  check_not_valid "no maximum"
    (Ex1 ("y", All1 ("x", Pred (LeqF ("x", "y")))));
  check_valid "zero is least"
    (All1 ("z", All1 ("x", Impl (Pred (ZeroF "z"), Pred (LeqF ("z", "x"))))));
  check_valid "succ greater"
    (All1 ("x", All1 ("y", Impl (Pred (SuccF ("y", "x")), Pred (LessF ("x", "y"))))))

let test_ws1s_finiteness () =
  (* weak MSO: sets are finite, so "X contains 0 and is successor-closed"
     is impossible *)
  check_unsat "no infinite set"
    (Ex2
       ( "X",
         And
           [ Ex1 ("z", And [ Pred (ZeroF "z"); Pred (In ("z", "X")) ]);
             All1
               ( "x",
                 All1
                   ( "y",
                     Impl
                       ( And [ Pred (In ("x", "X")); Pred (SuccF ("y", "x")) ],
                         Pred (In ("y", "X")) ) ) );
           ] ));
  (* every nonempty set has a minimum *)
  check_valid "least element"
    (All2
       ( "X",
         Impl
           ( Not (Pred (IsEmpty "X")),
             Ex1
               ( "m",
                 And
                   [ Pred (In ("m", "X"));
                     All1
                       ("y", Impl (Pred (In ("y", "X")), Pred (LeqF ("m", "y"))));
                   ] ) ) ));
  (* and a maximum (finiteness again) *)
  check_valid "greatest element"
    (All2
       ( "X",
         Impl
           ( Not (Pred (IsEmpty "X")),
             Ex1
               ( "m",
                 And
                   [ Pred (In ("m", "X"));
                     All1
                       ("y", Impl (Pred (In ("y", "X")), Pred (LeqF ("y", "m"))));
                   ] ) ) ))

let test_ws1s_free_vars () =
  (* free first-order variables: x < y is satisfiable, x < x is not *)
  check_sat "free lt" ~fo:[ "x"; "y" ] (Pred (LessF ("x", "y")));
  check_unsat "free lt irrefl" ~fo:[ "x" ] (Pred (LessF ("x", "x")));
  (* model decoding *)
  match satisfiable ~fo:[ "x"; "y" ] (Pred (SuccF ("y", "x"))) with
  | Some m ->
    let get v = List.assoc v m in
    (match get "x", get "y" with
    | [ px ], [ py ] ->
      Alcotest.(check int) "y = x+1" (px + 1) py
    | _ -> Alcotest.fail "expected singleton assignments")
  | None -> Alcotest.fail "succ satisfiable"

let test_ws1s_list_shapes () =
  (* the shapes the field-constraint translation produces: positions are
     list nodes, sets are node sets, successor is the next field *)
  (* "x reachable from y and y reachable from x implies x = y" *)
  check_valid "reach antisymmetry"
    (All1
       ( "x",
         All1
           ( "y",
             Impl
               ( And [ Pred (LeqF ("x", "y")); Pred (LeqF ("y", "x")) ],
                 Pred (EqF ("x", "y")) ) ) ));
  (* disjoint prefixes/suffixes: X = {p : p <= c}, Y = {p : p > c} are
     disjoint — stated with explicit set definitions *)
  check_valid "prefix suffix disjoint"
    (All1
       ( "c",
         All2
           ( "X",
             All2
               ( "Y",
                 Impl
                   ( And
                       [ All1
                           ( "p",
                             Iff
                               ( Pred (In ("p", "X")),
                                 Pred (LeqF ("p", "c")) ) );
                         All1
                           ( "p",
                             Iff
                               ( Pred (In ("p", "Y")),
                                 Pred (LessF ("c", "p")) ) );
                       ],
                     All1
                       ( "p",
                         Not
                           (And
                              [ Pred (In ("p", "X")); Pred (In ("p", "Y")) ])
                       ) ) ) ) ))

(* cross-check WS1S against explicit bounded-universe enumeration for
   quantifier-free formulas with free set variables over positions 0..3 *)
let prop_ws1s_qf_vs_enumeration =
  let open QCheck.Gen in
  let svar = oneofl [ "A"; "B"; "C" ] in
  let atom =
    let* x = svar in
    let* y = svar in
    let* z = svar in
    oneofl
      [ Pred (Sub (x, y));
        Pred (EqS (x, y));
        Pred (EqUnion (x, y, z));
        Pred (EqInter (x, y, z));
        Pred (IsEmpty x);
      ]
  in
  let rec form n st =
    if n = 0 then atom st
    else
      frequency
        [ (3, atom);
          (2, fun st -> And [ form (n / 2) st; form (n / 2) st ]);
          (2, fun st -> Or [ form (n / 2) st; form (n / 2) st ]);
          (1, fun st -> Not (form (n - 1) st));
        ]
        st
  in
  let gen = sized (fun n -> form (min n 8)) in
  let print _ = "ws1s formula" in
  QCheck.Test.make ~name:"ws1s qf agrees with set enumeration" ~count:150
    (QCheck.make ~print gen) (fun f ->
      (* brute force over subsets of {0,1,2,3} *)
      let subsets = List.init 16 (fun m -> m) in
      let mem m p = (m lsr p) land 1 = 1 in
      let rec eval env (g : Ws1s.t) =
        let lookup v = List.assoc v env in
        match g with
        | True -> true
        | False -> false
        | Pred (Sub (x, y)) -> lookup x land lnot (lookup y) land 15 = 0
        | Pred (EqS (x, y)) -> lookup x = lookup y
        | Pred (EqUnion (x, y, z)) -> lookup x = lookup y lor lookup z
        | Pred (EqInter (x, y, z)) -> lookup x = lookup y land lookup z
        | Pred (IsEmpty x) -> lookup x = 0
        | Not g -> not (eval env g)
        | And gs -> List.for_all (eval env) gs
        | Or gs -> List.exists (eval env) gs
        | Impl (a, b) -> (not (eval env a)) || eval env b
        | Iff (a, b) -> eval env a = eval env b
        | Pred _ | Ex1 _ | All1 _ | Ex2 _ | All2 _ ->
          Alcotest.fail "unexpected connective"
      in
      ignore mem;
      let brute_sat =
        List.exists
          (fun a ->
            List.exists
              (fun b ->
                List.exists
                  (fun c -> eval [ ("A", a); ("B", b); ("C", c) ] f)
                  subsets)
              subsets)
          subsets
      in
      (* bounded enumeration can miss witnesses needing positions > 3, but
         these pure-set constraints are position-symmetric: satisfiable iff
         satisfiable within 4 positions (each atom is positionwise) *)
      let ws1s_sat = satisfiable f <> None in
      ws1s_sat = brute_sat)

let suite =
  [ ( "mona.dfa",
      [ Alcotest.test_case "boolean algebra" `Quick test_dfa_basic;
        Alcotest.test_case "minimize" `Quick test_dfa_minimize;
        Alcotest.test_case "witness" `Quick test_dfa_witness;
        Alcotest.test_case "project" `Quick test_dfa_project;
      ] );
    ( "mona.ws1s",
      [ Alcotest.test_case "set algebra" `Quick test_ws1s_sets;
        Alcotest.test_case "positions" `Quick test_ws1s_positions;
        Alcotest.test_case "finiteness" `Quick test_ws1s_finiteness;
        Alcotest.test_case "free variables" `Quick test_ws1s_free_vars;
        Alcotest.test_case "list shapes" `Quick test_ws1s_list_shapes;
        QCheck_alcotest.to_alcotest prop_ws1s_qf_vs_enumeration;
      ] );
  ]
