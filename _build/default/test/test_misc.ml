(** Additional unit tests: guarded-command algebra, lexers, types, and
    dispatcher routing. *)

open Logic
module Cmd = Gcl.Cmd

let parse = Parser.parse

(* ------------------------------------------------------------------ *)
(* Guarded-command algebra                                             *)
(* ------------------------------------------------------------------ *)

let test_cmd_seq_flattening () =
  let c =
    Cmd.seq
      [ Cmd.Skip;
        Cmd.Seq [ Cmd.Assume (parse "a = b"); Cmd.Skip ];
        Cmd.Seq [ Cmd.Seq [ Cmd.Assert (parse "c = d", "x") ] ];
      ]
  in
  match c with
  | Cmd.Seq [ Cmd.Assume _; Cmd.Assert _ ] -> ()
  | Cmd.Seq cs -> Alcotest.failf "got %d commands" (List.length cs)
  | _ -> Alcotest.fail "expected a two-command sequence"

let test_cmd_seq_units () =
  Alcotest.(check bool) "all skips collapse" true
    (Cmd.seq [ Cmd.Skip; Cmd.Skip ] = Cmd.Skip);
  match Cmd.seq [ Cmd.Assume (parse "a = b") ] with
  | Cmd.Assume _ -> ()
  | _ -> Alcotest.fail "singleton sequence unwraps"

let test_modified_vars () =
  let c =
    Cmd.seq
      [ Cmd.Assign ("x", parse "1");
        Cmd.Choice (Cmd.Havoc [ "y"; "z" ], Cmd.Assign ("w", parse "2"));
        Cmd.Loop
          { Cmd.loop_invariant = None;
            loop_cond = parse "a = b";
            loop_prelude = Cmd.Assign ("p", parse "3");
            loop_body = Cmd.Havoc [ "q" ];
          };
      ]
  in
  let mods = Form.Sset.elements (Cmd.modified_vars c) in
  Alcotest.(check (list string)) "all writes collected"
    [ "p"; "q"; "w"; "x"; "y"; "z" ]
    (List.sort compare mods)

let test_map_formulas () =
  let c =
    Cmd.Choice
      ( Cmd.Assume (parse "a = b"),
        Cmd.Seq [ Cmd.Assert (parse "c = d", "l"); Cmd.Assign ("x", parse "e") ]
      )
  in
  let c' = Cmd.map_formulas (fun _ -> Form.mk_true) c in
  let all_true = ref true in
  let rec walk = function
    | Cmd.Assume f | Cmd.Assert (f, _) | Cmd.Assign (_, f) ->
      if not (Form.is_true f) then all_true := false
    | Cmd.Seq cs -> List.iter walk cs
    | Cmd.Choice (a, b) ->
      walk a;
      walk b
    | Cmd.Loop l ->
      walk l.Cmd.loop_prelude;
      walk l.Cmd.loop_body
    | Cmd.Skip | Cmd.Havoc _ -> ()
  in
  walk c';
  Alcotest.(check bool) "every formula rewritten" true !all_true

(* ------------------------------------------------------------------ *)
(* Java lexer                                                          *)
(* ------------------------------------------------------------------ *)

let test_jlexer_tokens () =
  let toks = Javaparser.Jlexer.tokenize "x == y != z <= 1 && foo.bar()" in
  let kinds = Array.to_list (Array.map fst toks) in
  let open Javaparser.Jlexer in
  Alcotest.(check bool) "eq token" true (List.mem EQ kinds);
  Alcotest.(check bool) "neq token" true (List.mem NEQ kinds);
  Alcotest.(check bool) "le token" true (List.mem LE kinds);
  Alcotest.(check bool) "andand token" true (List.mem ANDAND kinds);
  Alcotest.(check bool) "idents" true (List.mem (IDENT "foo") kinds)

let test_jlexer_annotations () =
  let toks =
    Javaparser.Jlexer.tokenize
      "int x; //: assert \"a = b\"\n /* plain comment */ /*: invariant \"c = d\" */ y();"
  in
  let annots =
    Array.to_list toks
    |> List.filter_map (fun (t, _) ->
           match t with Javaparser.Jlexer.ANNOTATION s -> Some s | _ -> None)
  in
  Alcotest.(check int) "two annotations, plain comment skipped" 2
    (List.length annots)

let test_jlexer_line_numbers () =
  let toks = Javaparser.Jlexer.tokenize "a\nb\n\nc" in
  let line_of name =
    Array.to_list toks
    |> List.find_map (fun (t, l) ->
           match t with
           | Javaparser.Jlexer.IDENT x when x = name -> Some l
           | _ -> None)
    |> Option.get
  in
  Alcotest.(check int) "a line 1" 1 (line_of "a");
  Alcotest.(check int) "b line 2" 2 (line_of "b");
  Alcotest.(check int) "c line 4" 4 (line_of "c")

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let test_ftype_unify () =
  let open Ftype in
  let s = unify Subst.empty (Arrow (Tvar 1, Bool)) (Arrow (Obj, Tvar 2)) in
  Alcotest.(check bool) "tv1 = obj" true (equal (Subst.apply s (Tvar 1)) Obj);
  Alcotest.(check bool) "tv2 = bool" true (equal (Subst.apply s (Tvar 2)) Bool);
  (match unify Subst.empty (Set (Tvar 3)) Int with
  | _ -> Alcotest.fail "set vs int must not unify"
  | exception Unify_failure _ -> ());
  (* occurs check *)
  match unify Subst.empty (Tvar 4) (Set (Tvar 4)) with
  | _ -> Alcotest.fail "occurs check missed"
  | exception Unify_failure _ -> ()

let test_ftype_parse () =
  let open Ftype in
  Alcotest.(check bool) "objset" true
    (equal (Parser.parse_ftype "objset") (Set Obj));
  Alcotest.(check bool) "obj set set" true
    (equal (Parser.parse_ftype "obj set set") (Set (Set Obj)));
  Alcotest.(check bool) "arrow" true
    (equal (Parser.parse_ftype "obj => bool") (Arrow (Obj, Bool)))

(* ------------------------------------------------------------------ *)
(* Dispatcher routing                                                  *)
(* ------------------------------------------------------------------ *)

let routed_by hyps goal =
  let d = Dispatch.create (Jahob_core.Jahob.default_provers ()) in
  let s = Sequent.make (List.map parse hyps) (parse goal) in
  let r = Dispatch.prove_sequent d s in
  match r.Dispatch.verdict with
  | Sequent.Valid -> r.Dispatch.prover
  | v ->
    Alcotest.failf "expected valid, got %s" (Sequent.verdict_to_string v)

let test_routing () =
  (* arithmetic goes to the SMT core *)
  (match routed_by [ "x > 0"; "x < 2" ] "x = 1" with
  | Some "smt" -> ()
  | p -> Alcotest.failf "arith routed to %s" (Option.value p ~default:"-"));
  (* cardinalities fall through to BAPA *)
  (match routed_by [ "card A = 2"; "card B = 1"; "A Int B = {}" ]
           "card (A Un B) = 3"
  with
  | Some "bapa" -> ()
  | p -> Alcotest.failf "card routed to %s" (Option.value p ~default:"-"));
  (* reachability falls through to the MONA route *)
  match
    routed_by
      [ "rtrancl_pt (% u v. u..next = v) h x"; "x..next = y";
        "rtrancl_pt (% u v. u..next = v) h y" ]
      "rtrancl_pt (% u v. u..next = v) x y"
  with
  | Some ("mona" | "fol") -> ()
  | p -> Alcotest.failf "reach routed to %s" (Option.value p ~default:"-")

(* ------------------------------------------------------------------ *)
(* Stack example end-to-end (BAPA inside verification)                 *)
(* ------------------------------------------------------------------ *)

let examples_dir =
  let candidates = [ "../examples"; "../../examples"; "examples" ] in
  match
    List.find_opt (fun d -> Sys.file_exists (d ^ "/stack/Stack.java")) candidates
  with
  | Some d -> d
  | None -> "../examples"

let test_stack_verifies () =
  let report =
    Jahob_core.Jahob.verify_files [ examples_dir ^ "/stack/Stack.java" ]
  in
  Alcotest.(check bool) "stack fully verified" true
    report.Jahob_core.Jahob.ok

let test_stack_wrong_size_rejected () =
  (* breaking the size bookkeeping must fail verification *)
  let src =
    "class S {\n\
     /*: public static ghost specvar items :: objset;\n\
     \    public static ghost specvar size :: int;\n\
     \    invariant \"size = card items\"; */\n\
     public static void bad(Object o)\n\
     /*: requires \"o ~= null & o ~: items\" modifies items, size\n\
     \    ensures \"True\" */\n\
     {\n\
     //: items := \"items Un {o}\";\n\
     //: size := \"size + 2\";\n\
     }\n\
     }"
  in
  let prog = Javaparser.Jparser.parse_program src in
  let report = Jahob_core.Jahob.verify_program prog in
  Alcotest.(check bool) "wrong size arithmetic rejected" false
    report.Jahob_core.Jahob.ok

let suite =
  [ ( "gcl",
      [ Alcotest.test_case "seq flattening" `Quick test_cmd_seq_flattening;
        Alcotest.test_case "seq units" `Quick test_cmd_seq_units;
        Alcotest.test_case "modified vars" `Quick test_modified_vars;
        Alcotest.test_case "map formulas" `Quick test_map_formulas;
      ] );
    ( "jlexer",
      [ Alcotest.test_case "operators" `Quick test_jlexer_tokens;
        Alcotest.test_case "annotations" `Quick test_jlexer_annotations;
        Alcotest.test_case "line numbers" `Quick test_jlexer_line_numbers;
      ] );
    ( "ftype",
      [ Alcotest.test_case "unification" `Quick test_ftype_unify;
        Alcotest.test_case "type parsing" `Quick test_ftype_parse;
      ] );
    ( "routing",
      [ Alcotest.test_case "fragments reach their provers" `Quick test_routing ]
    );
    ( "stack",
      [ Alcotest.test_case "cardinality invariant verifies" `Quick
          test_stack_verifies;
        Alcotest.test_case "wrong bookkeeping rejected" `Quick
          test_stack_wrong_size_rejected;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Arrays                                                              *)
(* ------------------------------------------------------------------ *)

let test_array_parsing () =
  let prog =
    Javaparser.Jparser.parse_program
      "class A { static int[] xs; void m(Object[] a, int i) { a[i] = a[i + 1]; int n = a.length; xs = new int[10]; } }"
  in
  let a = List.hd prog in
  let f = List.hd a.Javaparser.Ast.c_fields in
  Alcotest.(check string) "array field type" "int[]"
    (Javaparser.Ast.jtype_to_string f.Javaparser.Ast.f_type);
  let m = Option.get (Javaparser.Ast.find_method a "m") in
  Alcotest.(check int) "two params" 2 (List.length m.Javaparser.Ast.m_params)

let test_array_ops_verify () =
  let report =
    Jahob_core.Jahob.verify_files [ examples_dir ^ "/arrays/ArrayOps.java" ]
  in
  Alcotest.(check bool) "ArrayOps fully verified" true
    report.Jahob_core.Jahob.ok

let test_array_bounds_violation_rejected () =
  let src =
    "class B { static Object[] buf;\n\
     public static void bad(int i)\n\
     /*: requires \"buf ~= null & 0 <= i & i < buf..Array.length\"\n\
     \    modifies \"Object.arrayState\" ensures \"True\" */\n\
     { buf[i + 1] = null; }\n\
     }"
  in
  let prog = Javaparser.Jparser.parse_program src in
  let report = Jahob_core.Jahob.verify_program prog in
  (* the store at i+1 may be out of bounds: must not verify *)
  Alcotest.(check bool) "out-of-bounds store rejected" false
    report.Jahob_core.Jahob.ok

let array_suite =
  ( "arrays",
    [ Alcotest.test_case "parsing" `Quick test_array_parsing;
      Alcotest.test_case "ArrayOps verifies" `Quick test_array_ops_verify;
      Alcotest.test_case "bounds violation rejected" `Quick
        test_array_bounds_violation_rejected;
    ] )

let suite = suite @ [ array_suite ]
