(** Tests for the congruence-closure (EUF) decision procedure. *)

open Euf

let a = mk_const "a"
let b = mk_const "b"
let c = mk_const "c"
let d = mk_const "d"
let f x = mk_app "f" [ x ]
let g x y = mk_app "g" [ x; y ]

let check_sat msg eqs diseqs =
  match check ~eqs ~diseqs with
  | Sat -> ()
  | Unsat -> Alcotest.failf "%s: expected SAT" msg

let check_unsat msg eqs diseqs =
  match check ~eqs ~diseqs with
  | Unsat -> ()
  | Sat -> Alcotest.failf "%s: expected UNSAT" msg

let test_basic () =
  check_sat "empty" [] [];
  check_sat "a=b alone" [ (a, b) ] [];
  check_unsat "a=b, a<>b" [ (a, b) ] [ (a, b) ];
  check_sat "a=b, a<>c" [ (a, b) ] [ (a, c) ];
  check_unsat "transitivity" [ (a, b); (b, c) ] [ (a, c) ]

let test_congruence () =
  check_unsat "f-congruence" [ (a, b) ] [ (f a, f b) ];
  check_unsat "nested congruence" [ (a, b) ] [ (f (f a), f (f b)) ];
  check_sat "no congruence without eq" [] [ (f a, f b) ];
  check_unsat "binary congruence" [ (a, b); (c, d) ] [ (g a c, g b d) ];
  check_sat "partial args differ" [ (a, b) ] [ (g a c, g b d) ]

let test_classic_chains () =
  (* f^3(a)=a & f^5(a)=a ==> f(a)=a  (gcd argument) *)
  let rec fn n x = if n = 0 then x else f (fn (n - 1) x) in
  check_unsat "f3=a,f5=a implies f1=a"
    [ (fn 3 a, a); (fn 5 a, a) ]
    [ (f a, a) ];
  check_sat "f2=a alone does not imply f1=a" [ (fn 2 a, a) ] [ (f a, a) ];
  check_unsat "f2=a,f3=a implies f1=a"
    [ (fn 2 a, a); (fn 3 a, a) ]
    [ (f a, a) ]

let test_curried_use () =
  (* g(a,b)=c & a=d ==> g(d,b)=c *)
  check_unsat "use-list rehash" [ (g a b, c); (a, d) ] [ (g d b, c) ]

let test_implied_equalities () =
  let implied = implied_equalities ~eqs:[ (a, b); (c, d) ] [ a; b; c; d ] in
  Alcotest.(check int) "two pairs" 2 (List.length implied);
  let implied2 =
    implied_equalities ~eqs:[ (a, b); (f a, c); (f b, d) ] [ c; d ]
  in
  (* c = f(a) = f(b) = d by congruence *)
  Alcotest.(check int) "congruence-implied equality" 1 (List.length implied2)

let test_incremental () =
  let st = create () in
  merge st a b;
  Alcotest.(check bool) "a=b" true (equal_terms st a b);
  Alcotest.(check bool) "fa=fb" true (equal_terms st (f a) (f b));
  Alcotest.(check bool) "a<>c yet" false (equal_terms st a c);
  merge st b c;
  Alcotest.(check bool) "a=c now" true (equal_terms st a c);
  Alcotest.(check bool) "inconsistency detection" true
    (inconsistent st [ (f a, f c) ])

(* random sanity: congruence closure vs. ground enumeration over a small
   universe of 3 elements and one unary function *)
let prop_vs_bruteforce =
  let gen =
    QCheck.Gen.(
      let term =
        oneofl [ a; b; c; f a; f b; f c; f (f a) ]
      in
      pair
        (list_size (0 -- 4) (pair term term))
        (list_size (0 -- 3) (pair term term)))
  in
  let print (eqs, diseqs) =
    let pl l =
      String.concat ", "
        (List.map
           (fun (x, y) -> term_to_string x ^ "=" ^ term_to_string y)
           l)
    in
    "eqs: " ^ pl eqs ^ " diseqs: " ^ pl diseqs
  in
  let arb = QCheck.make ~print gen in
  (* brute force: interpret over universe {0,1,2}, all assignments of a,b,c
     and all functions f: U -> U *)
  let brute (eqs, diseqs) =
    let universe = [ 0; 1; 2 ] in
    let rec eval_term fa fb fc ftab t =
      match t with
      | Sym ("a", []) -> fa
      | Sym ("b", []) -> fb
      | Sym ("c", []) -> fc
      | Sym ("f", [ u ]) -> List.nth ftab (eval_term fa fb fc ftab u)
      | Sym (_, _) -> assert false
    in
    List.exists
      (fun fa ->
        List.exists
          (fun fb ->
            List.exists
              (fun fc ->
                List.exists
                  (fun f0 ->
                    List.exists
                      (fun f1 ->
                        List.exists
                          (fun f2 ->
                            let ftab = [ f0; f1; f2 ] in
                            let ev = eval_term fa fb fc ftab in
                            List.for_all (fun (x, y) -> ev x = ev y) eqs
                            && List.for_all
                                 (fun (x, y) -> ev x <> ev y)
                                 diseqs)
                          universe)
                      universe)
                  universe)
              universe)
          universe)
      universe
  in
  QCheck.Test.make ~name:"euf complete on small universe" ~count:300 arb
    (fun (eqs, diseqs) ->
      match check ~eqs ~diseqs with
      | Unsat ->
        (* congruence closure UNSAT must mean no model at all *)
        not (brute (eqs, diseqs))
      | Sat -> true
      (* SAT in EUF (infinite universe) need not transfer to a 3-element
         universe, so only the UNSAT direction is checked *))

let suite =
  [ ( "euf",
      [ Alcotest.test_case "basic equality" `Quick test_basic;
        Alcotest.test_case "congruence" `Quick test_congruence;
        Alcotest.test_case "classic chains" `Quick test_classic_chains;
        Alcotest.test_case "use-list rehash" `Quick test_curried_use;
        Alcotest.test_case "implied equalities" `Quick test_implied_equalities;
        Alcotest.test_case "incremental" `Quick test_incremental;
        QCheck_alcotest.to_alcotest prop_vs_bruteforce;
      ] );
  ]
