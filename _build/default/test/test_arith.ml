(** Tests for the arithmetic decision procedures: exact rationals, simplex,
    Cooper's algorithm and the Omega test — cross-validated against each
    other and against brute-force enumeration. *)

(* module aliases into the wrapped libraries *)
module Qnum = Simplex.Qnum
module Linterm = Presburger.Linterm
module Pform = Presburger.Pform
module Cooper = Presburger.Cooper
module Omega = Presburger.Omega

(* ------------------------------------------------------------------ *)
(* Qnum                                                                *)
(* ------------------------------------------------------------------ *)

let qnum = Alcotest.testable Qnum.pp Qnum.equal

let test_qnum_basic () =
  let q a b = Qnum.make a b in
  Alcotest.check qnum "normalization" (q 1 2) (q 2 4);
  Alcotest.check qnum "negative den" (q (-1) 2) (q 1 (-2));
  Alcotest.check qnum "add" (q 5 6) (Qnum.add (q 1 2) (q 1 3));
  Alcotest.check qnum "sub" (q 1 6) (Qnum.sub (q 1 2) (q 1 3));
  Alcotest.check qnum "mul" (q 1 3) (Qnum.mul (q 1 2) (q 2 3));
  Alcotest.check qnum "div" (q 3 4) (Qnum.div (q 1 2) (q 2 3));
  Alcotest.(check bool) "lt" true (Qnum.lt (q 1 3) (q 1 2));
  Alcotest.check qnum "floor pos" (Qnum.of_int 1) (Qnum.floor (q 3 2));
  Alcotest.check qnum "floor neg" (Qnum.of_int (-2)) (Qnum.floor (q (-3) 2));
  Alcotest.check qnum "ceil pos" (Qnum.of_int 2) (Qnum.ceil (q 3 2));
  Alcotest.check qnum "ceil neg" (Qnum.of_int (-1)) (Qnum.ceil (q (-3) 2))

let prop_qnum_field =
  let gen = QCheck.Gen.(pair (int_range (-30) 30) (int_range 1 12)) in
  let arb = QCheck.make ~print:(fun (a, b) -> Printf.sprintf "%d/%d" a b) gen in
  QCheck.Test.make ~name:"qnum field laws" ~count:300 (QCheck.pair arb arb)
    (fun ((a1, b1), (a2, b2)) ->
      let x = Qnum.make a1 b1 and y = Qnum.make a2 b2 in
      Qnum.equal (Qnum.add x y) (Qnum.add y x)
      && Qnum.equal (Qnum.sub (Qnum.add x y) y) x
      && Qnum.equal (Qnum.mul x y) (Qnum.mul y x)
      && (Qnum.is_zero y || Qnum.equal (Qnum.mul (Qnum.div x y) y) x))

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)
(* ------------------------------------------------------------------ *)

let test_simplex_rational () =
  let open Simplex in
  (* x >= 1, x <= 3 *)
  (match solve_rational [ ge_i [ ("x", 1) ] 1; le_i [ ("x", 1) ] 3 ] with
  | Rsat a ->
    let x = List.assoc "x" a in
    Alcotest.(check bool) "x in range" true
      Qnum.(geq x (of_int 1) && leq x (of_int 3))
  | Runsat -> Alcotest.fail "expected feasible");
  (* x >= 4, x <= 3 *)
  (match solve_rational [ ge_i [ ("x", 1) ] 4; le_i [ ("x", 1) ] 3 ] with
  | Runsat -> ()
  | Rsat _ -> Alcotest.fail "expected infeasible");
  (* x + y = 10, x - y = 4 -> x = 7, y = 3 *)
  match
    solve_rational
      [ eq_i [ ("x", 1); ("y", 1) ] 10; eq_i [ ("x", 1); ("y", -1) ] 4 ]
  with
  | Rsat a ->
    Alcotest.check qnum "x" (Qnum.of_int 7) (List.assoc "x" a);
    Alcotest.check qnum "y" (Qnum.of_int 3) (List.assoc "y" a)
  | Runsat -> Alcotest.fail "expected feasible equalities"

let test_simplex_negative_vars () =
  let open Simplex in
  (* solution requires x < 0: x <= -5 *)
  match solve_rational [ le_i [ ("x", 1) ] (-5) ] with
  | Rsat a ->
    Alcotest.(check bool) "x <= -5" true
      (Qnum.leq (List.assoc "x" a) (Qnum.of_int (-5)))
  | Runsat -> Alcotest.fail "negative variables must be allowed"

let test_simplex_integer () =
  let open Simplex in
  (* 2x = 3 has rational but no integer solution *)
  (match solve_integer [ eq_i [ ("x", 2) ] 3 ] with
  | Iunsat -> ()
  | Isat _ | Iunknown -> Alcotest.fail "2x=3 must be integer-infeasible");
  (* 2x + 2y = 6 fine *)
  (match solve_integer [ eq_i [ ("x", 2); ("y", 2) ] 6 ] with
  | Isat a ->
    Alcotest.(check int) "sum" 3 (List.assoc "x" a + List.assoc "y" a)
  | Iunsat | Iunknown -> Alcotest.fail "2x+2y=6 integer-feasible");
  (* 1 <= 3x <= 2: rational-feasible, integer-infeasible *)
  match
    solve_integer [ ge_i [ ("x", 3) ] 1; le_i [ ("x", 3) ] 2 ]
  with
  | Iunsat -> ()
  | Isat _ | Iunknown -> Alcotest.fail "1<=3x<=2 must be integer-infeasible"

(* ------------------------------------------------------------------ *)
(* Cooper                                                              *)
(* ------------------------------------------------------------------ *)

let v = Linterm.var
let k = Linterm.const

let test_cooper_basic () =
  let open Pform in
  Alcotest.(check bool) "EX x. x = 5" true
    (Cooper.decide (mk_ex "x" (t_eq (v "x") (k 5))));
  Alcotest.(check bool) "EX x. x < x" false
    (Cooper.decide (mk_ex "x" (t_lt (v "x") (v "x"))));
  Alcotest.(check bool) "ALL x. x <= x" true
    (Cooper.decide (mk_all "x" (t_le (v "x") (v "x"))));
  Alcotest.(check bool) "ALL x. EX y. y > x" true
    (Cooper.decide (mk_all "x" (mk_ex "y" (t_gt (v "y") (v "x")))));
  Alcotest.(check bool) "EX x. ALL y. x <= y (no least integer)" false
    (Cooper.decide (mk_ex "x" (mk_all "y" (t_le (v "x") (v "y")))))

let test_cooper_divisibility () =
  let open Pform in
  (* every integer is even or odd *)
  Alcotest.(check bool) "even or odd" true
    (Cooper.decide
       (mk_all "x"
          (mk_or
             [ mk_dvd 2 (v "x"); mk_dvd 2 (Linterm.add (v "x") (k 1)) ])));
  (* EX x. 2|x & 3|x & 0 < x < 6 is false; < 7 gives x = 6 *)
  let both_div upper =
    mk_ex "x"
      (mk_and
         [ mk_dvd 2 (v "x");
           mk_dvd 3 (v "x");
           t_gt (v "x") (k 0);
           t_lt (v "x") (k upper);
         ])
  in
  Alcotest.(check bool) "lcm below 6" false (Cooper.decide (both_div 6));
  Alcotest.(check bool) "lcm at 6" true (Cooper.decide (both_div 7))

let test_cooper_classic () =
  let open Pform in
  (* Chicken McNugget: EX a b >= 0. 3a + 5b = n, for all n >= 8 *)
  let representable n =
    mk_ex "a"
      (mk_ex "b"
         (mk_and
            [ t_ge (v "a") (k 0);
              t_ge (v "b") (k 0);
              t_eq
                (Linterm.add (Linterm.scale 3 (v "a")) (Linterm.scale 5 (v "b")))
                (k n);
            ]))
  in
  Alcotest.(check bool) "7 not representable" false
    (Cooper.decide (representable 7));
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%d representable" n)
        true
        (Cooper.decide (representable n)))
    [ 8; 9; 10; 11; 12; 13 ];
  (* and the general statement with a bound *)
  Alcotest.(check bool) "all n>=8 representable" true
    (Cooper.decide
       (mk_all "n"
          (mk_impl
             (t_ge (v "n") (k 8))
             (mk_ex "a"
                (mk_ex "b"
                   (mk_and
                      [ t_ge (v "a") (k 0);
                        t_ge (v "b") (k 0);
                        t_eq
                          (Linterm.add
                             (Linterm.scale 3 (v "a"))
                             (Linterm.scale 5 (v "b")))
                          (v "n");
                      ]))))))

(* ------------------------------------------------------------------ *)
(* Omega                                                               *)
(* ------------------------------------------------------------------ *)

let test_omega_basic () =
  let open Pform in
  let check_is expected atoms msg =
    match Omega.check atoms with
    | Some verdict ->
      let got = match verdict with Omega.Sat -> true | Omega.Unsat -> false in
      Alcotest.(check bool) msg expected got
    | None -> Alcotest.failf "%s: fragment rejected" msg
  in
  check_is true [ t_ge (v "x") (k 1); t_le (v "x") (k 3) ] "1<=x<=3";
  check_is false [ t_ge (v "x") (k 4); t_le (v "x") (k 3) ] "4<=x<=3";
  check_is false [ mk_eq (Linterm.add (Linterm.scale 2 (v "x")) (k (-3))) ] "2x=3";
  check_is true
    [ mk_eq (Linterm.sub (Linterm.add (v "x") (v "y")) (k 10));
      mk_eq (Linterm.sub (Linterm.sub (v "x") (v "y")) (k 4)) ]
    "x+y=10, x-y=4";
  (* dark-shadow exercise: 1 <= 3x <= 2 integer-infeasible *)
  check_is false
    [ t_ge (Linterm.scale 3 (v "x")) (k 1); t_le (Linterm.scale 3 (v "x")) (k 2) ]
    "1<=3x<=2";
  (* 2 <= 3x <= 3 has x = 1 *)
  check_is true
    [ t_ge (Linterm.scale 3 (v "x")) (k 2); t_le (Linterm.scale 3 (v "x")) (k 3) ]
    "2<=3x<=3"

(* random conjunctions: Omega vs Cooper vs brute force on a small box *)
let gen_conj : Pform.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let lin =
    let* c1 = int_range (-3) 3 in
    let* c2 = int_range (-3) 3 in
    let* c0 = int_range (-8) 8 in
    return (Linterm.of_list [ ("x", c1); ("y", c2) ] c0)
  in
  let atom =
    let* t = lin in
    let* kind = int_range 0 2 in
    return
      (match kind with
      | 0 -> Pform.mk_le t
      | 1 -> Pform.mk_eq t
      | _ -> Pform.mk_le (Linterm.neg t))
  in
  list_size (1 -- 4) atom

let print_conj atoms = String.concat " & " (List.map Pform.to_string atoms)

let prop_omega_vs_cooper =
  QCheck.Test.make ~name:"omega agrees with cooper" ~count:400
    (QCheck.make ~print:print_conj gen_conj) (fun atoms ->
      let cooper_sat = Cooper.satisfiable (Pform.mk_and atoms) in
      match Omega.check atoms with
      | Some Omega.Sat -> cooper_sat
      | Some Omega.Unsat -> not cooper_sat
      | None -> true (* simplified to non-conjunction; skip *))

let prop_cooper_vs_bruteforce =
  QCheck.Test.make ~name:"cooper agrees with brute force on a box" ~count:300
    (QCheck.make ~print:print_conj gen_conj) (fun atoms ->
      (* brute-force within [-40, 40]^2; any solution of these small-
         coefficient systems (if one exists) fits well inside the box *)
      let f = Pform.mk_and atoms in
      let brute = ref false in
      for x = -40 to 40 do
        for y = -40 to 40 do
          if (not !brute) && Pform.eval [ ("x", x); ("y", y) ] f then
            brute := true
        done
      done;
      Cooper.satisfiable f = !brute)

let prop_simplex_integer_vs_omega =
  QCheck.Test.make ~name:"simplex b&b agrees with omega" ~count:200
    (QCheck.make ~print:print_conj gen_conj) (fun atoms ->
      (* translate Pform atoms to simplex constraints *)
      let to_constr a =
        let conv t =
          ( List.map (fun (x, c) -> (x, Qnum.of_int c)) (Linterm.coeffs t),
            Qnum.of_int (-Linterm.constant t) )
        in
        match a with
        | Pform.Le t ->
          let cs, rhs = conv t in
          Some (Simplex.le cs rhs)
        | Pform.Eq t ->
          let cs, rhs = conv t in
          Some (Simplex.eq cs rhs)
        | Pform.Tru -> None
        | Pform.Fls -> Some (Simplex.le_i [] (-1)) (* 0 <= -1 *)
        | Pform.Dvd _ | Pform.Not _ | Pform.And _ | Pform.Or _ | Pform.Ex _
        | Pform.All _ ->
          None
      in
      let constrs = List.filter_map to_constr atoms in
      let covered = List.length constrs =
        List.length (List.filter (fun a -> a <> Pform.Tru) atoms)
      in
      if not covered then true
      else
        match Simplex.solve_integer constrs, Omega.check atoms with
        | Simplex.Isat a, Some Omega.Sat ->
          (* model check the witness *)
          List.for_all (Simplex.satisfies a) constrs
        | Simplex.Iunsat, Some Omega.Unsat -> true
        | Simplex.Iunknown, Some _ -> true
        | _, None -> true
        | Simplex.Isat _, Some Omega.Unsat
        | Simplex.Iunsat, Some Omega.Sat ->
          false)

let suite =
  [ ( "arith.qnum",
      [ Alcotest.test_case "basic" `Quick test_qnum_basic;
        QCheck_alcotest.to_alcotest prop_qnum_field;
      ] );
    ( "arith.simplex",
      [ Alcotest.test_case "rational" `Quick test_simplex_rational;
        Alcotest.test_case "negative variables" `Quick test_simplex_negative_vars;
        Alcotest.test_case "integer" `Quick test_simplex_integer;
      ] );
    ( "arith.cooper",
      [ Alcotest.test_case "basic" `Quick test_cooper_basic;
        Alcotest.test_case "divisibility" `Quick test_cooper_divisibility;
        Alcotest.test_case "classic" `Quick test_cooper_classic;
      ] );
    ( "arith.omega",
      [ Alcotest.test_case "basic" `Quick test_omega_basic;
        QCheck_alcotest.to_alcotest prop_omega_vs_cooper;
        QCheck_alcotest.to_alcotest prop_cooper_vs_bruteforce;
        QCheck_alcotest.to_alcotest prop_simplex_integer_vs_omega;
      ] );
  ]

(* quantified Presburger: Cooper's unsat answers are checked against a
   bounded witness search (one-sided, but over the full QE pipeline) *)
let prop_cooper_quantified =
  let open QCheck.Gen in
  let lin vars =
    let* cs = flatten_l (List.map (fun v -> int_range (-2) 2 >|= fun c -> (v, c)) vars) in
    let* c0 = int_range (-6) 6 in
    return (Linterm.of_list cs c0)
  in
  let atom vars =
    let* t = lin vars in
    oneofl [ Pform.mk_le t; Pform.mk_eq t; Pform.mk_dvd 2 t ]
  in
  let qf vars =
    let* a = atom vars in
    let* b = atom vars in
    let* c = atom vars in
    oneofl
      [ Pform.mk_and [ a; b; c ];
        Pform.mk_and [ a; Pform.mk_or [ b; c ] ];
        Pform.mk_or [ Pform.mk_and [ a; b ]; c ];
      ]
  in
  let gen = qf [ "x"; "y" ] in
  QCheck.Test.make ~name:"cooper qelim vs bounded witness search" ~count:200
    (QCheck.make ~print:Pform.to_string gen) (fun body ->
      let cooper_sat = Cooper.satisfiable body in
      let witness_found = ref false in
      for x = -25 to 25 do
        for y = -25 to 25 do
          if (not !witness_found) && Pform.eval [ ("x", x); ("y", y) ] body
          then witness_found := true
        done
      done;
      (* witness in the box -> Cooper must agree; Cooper-unsat -> no
         witness anywhere, in particular not in the box *)
      if !witness_found then cooper_sat else true)

let prop_cooper_unsat_confirmed =
  (* the other side: when Cooper says unsat, the box must be empty *)
  let open QCheck.Gen in
  let lin =
    let* c1 = int_range (-2) 2 in
    let* c2 = int_range (-2) 2 in
    let* c0 = int_range (-6) 6 in
    return (Linterm.of_list [ ("x", c1); ("y", c2) ] c0)
  in
  let gen =
    let* t1 = lin in
    let* t2 = lin in
    let* t3 = lin in
    return (Pform.mk_and [ Pform.mk_le t1; Pform.mk_eq t2; Pform.mk_le t3 ])
  in
  QCheck.Test.make ~name:"cooper unsat confirmed by box search" ~count:200
    (QCheck.make ~print:Pform.to_string gen) (fun body ->
      let f = Pform.mk_ex "x" (Pform.mk_ex "y" body) in
      if Cooper.decide f then true
      else begin
        let witness = ref false in
        for x = -30 to 30 do
          for y = -30 to 30 do
            if Pform.eval [ ("x", x); ("y", y) ] body then witness := true
          done
        done;
        not !witness
      end)

let quantified_suite =
  ( "arith.cooper.quantified",
    [ QCheck_alcotest.to_alcotest prop_cooper_quantified;
      QCheck_alcotest.to_alcotest prop_cooper_unsat_confirmed;
    ] )

let suite = suite @ [ quantified_suite ]
