(** Semantic preservation tests: a reference interpreter for the
    specification logic over a small finite structure, used to check that
    {!Logic.Simplify.simplify} and {!Logic.Simplify.nnf} preserve meaning
    and that the pretty-printer/parser round trip does too.

    The structure: objects are [0..3] (with [null] = 0), object sets are
    bitmasks over the universe, integers are machine integers, and fields
    are tabulated functions. *)

open Logic

type value =
  | Vbool of bool
  | Vint of int
  | Vobj of int (* 0 = null *)
  | Vset of int (* bitmask over objects 0..3 *)

type env = {
  obj_vars : (string * int) list;
  int_vars : (string * int) list;
  set_vars : (string * int) list;
  field : int array; (* one unary function over the universe *)
}

exception Ill_sorted

let universe = [ 0; 1; 2; 3 ]

let rec eval (env : env) (f : Form.t) : value =
  match Form.strip_types f with
  | Form.Var x -> (
    match List.assoc_opt x env.obj_vars with
    | Some o -> Vobj o
    | None -> (
      match List.assoc_opt x env.int_vars with
      | Some i -> Vint i
      | None -> (
        match List.assoc_opt x env.set_vars with
        | Some s -> Vset s
        | None -> raise Ill_sorted)))
  | Form.Const (Form.BoolLit b) -> Vbool b
  | Form.Const (Form.IntLit n) -> Vint n
  | Form.Const Form.Null -> Vobj 0
  | Form.Const Form.EmptySet -> Vset 0
  | Form.Const Form.UnivSet -> Vset 15
  | Form.App (Form.Const Form.Not, [ g ]) -> Vbool (not (as_bool env g))
  | Form.App (Form.Const Form.And, gs) ->
    Vbool (List.for_all (as_bool env) gs)
  | Form.App (Form.Const Form.Or, gs) -> Vbool (List.exists (as_bool env) gs)
  | Form.App (Form.Const Form.Impl, [ a; b ]) ->
    Vbool ((not (as_bool env a)) || as_bool env b)
  | Form.App (Form.Const Form.Iff, [ a; b ]) ->
    Vbool (as_bool env a = as_bool env b)
  | Form.App (Form.Const Form.Ite, [ c; a; b ]) ->
    if as_bool env c then eval env a else eval env b
  | Form.App (Form.Const Form.Eq, [ a; b ]) -> (
    match eval env a, eval env b with
    | Vbool x, Vbool y -> Vbool (x = y)
    | Vint x, Vint y -> Vbool (x = y)
    | Vobj x, Vobj y -> Vbool (x = y)
    | Vset x, Vset y -> Vbool (x = y)
    | _ -> raise Ill_sorted)
  | Form.App (Form.Const Form.Lt, [ a; b ]) ->
    Vbool (as_int env a < as_int env b)
  | Form.App (Form.Const Form.Le, [ a; b ]) ->
    Vbool (as_int env a <= as_int env b)
  | Form.App (Form.Const Form.Gt, [ a; b ]) ->
    Vbool (as_int env a > as_int env b)
  | Form.App (Form.Const Form.Ge, [ a; b ]) ->
    Vbool (as_int env a >= as_int env b)
  | Form.App (Form.Const Form.Plus, [ a; b ]) ->
    Vint (as_int env a + as_int env b)
  | Form.App (Form.Const Form.Minus, [ a; b ]) ->
    Vint (as_int env a - as_int env b)
  | Form.App (Form.Const Form.Uminus, [ a ]) -> Vint (-as_int env a)
  | Form.App (Form.Const Form.Mult, [ a; b ]) ->
    Vint (as_int env a * as_int env b)
  | Form.App (Form.Const Form.Elem, [ x; s ]) ->
    Vbool ((as_set env s lsr as_obj env x) land 1 = 1)
  | Form.App (Form.Const Form.Union, [ a; b ]) ->
    Vset (as_set env a lor as_set env b)
  | Form.App (Form.Const Form.Inter, [ a; b ]) ->
    Vset (as_set env a land as_set env b)
  | Form.App (Form.Const Form.Diff, [ a; b ]) ->
    Vset (as_set env a land lnot (as_set env b) land 15)
  | Form.App (Form.Const Form.Subseteq, [ a; b ]) ->
    Vbool (as_set env a land lnot (as_set env b) land 15 = 0)
  | Form.App (Form.Const Form.FiniteSet, es) ->
    Vset
      (List.fold_left (fun m e -> m lor (1 lsl as_obj env e)) 0 es)
  | Form.App (Form.Const Form.Card, [ s ]) ->
    let m = as_set env s in
    Vint (List.length (List.filter (fun i -> (m lsr i) land 1 = 1) universe))
  | Form.App (Form.Const Form.FieldRead, [ fld; x ]) -> (
    match Form.strip_types fld with
    | Form.Var "f" -> Vobj env.field.(as_obj env x)
    | _ -> raise Ill_sorted)
  | Form.Binder (Form.Forall, [ (x, _) ], body) ->
    Vbool
      (List.for_all
         (fun o ->
           as_bool { env with obj_vars = (x, o) :: env.obj_vars } body)
         universe)
  | Form.Binder (Form.Exists, [ (x, _) ], body) ->
    Vbool
      (List.exists
         (fun o ->
           as_bool { env with obj_vars = (x, o) :: env.obj_vars } body)
         universe)
  | Form.Binder (Form.Comprehension, [ (x, _) ], body) ->
    Vset
      (List.fold_left
         (fun m o ->
           if as_bool { env with obj_vars = (x, o) :: env.obj_vars } body
           then m lor (1 lsl o)
           else m)
         0 universe)
  | _ -> raise Ill_sorted

and as_bool env g =
  match eval env g with Vbool b -> b | _ -> raise Ill_sorted

and as_int env g =
  match eval env g with Vint i -> i | _ -> raise Ill_sorted

and as_set env g =
  match eval env g with Vset s -> s | _ -> raise Ill_sorted

and as_obj env g =
  match eval env g with Vobj o -> o | _ -> raise Ill_sorted

(* ------------------------------------------------------------------ *)
(* A well-sorted random formula generator                              *)
(* ------------------------------------------------------------------ *)

let gen_formula : Form.t QCheck.Gen.t =
  let open QCheck.Gen in
  let obj =
    frequency
      [ (3, oneofl [ Form.mk_var "x"; Form.mk_var "y" ]);
        (1, return Form.mk_null);
      ]
  in
  let rec set_expr n st =
    if n = 0 then
      frequency
        [ (3, oneofl [ Form.mk_var "s"; Form.mk_var "t" ]);
          (1, return Form.mk_emptyset);
          (1, fun st -> Form.mk_singleton (obj st));
        ]
        st
    else
      frequency
        [ (2, fun st -> set_expr 0 st);
          (2, fun st -> Form.mk_union (set_expr (n - 1) st) (set_expr (n - 1) st));
          (2, fun st -> Form.mk_inter (set_expr (n - 1) st) (set_expr (n - 1) st));
          (1, fun st -> Form.mk_diff (set_expr (n - 1) st) (set_expr (n - 1) st));
          ( 1,
            fun st ->
              let body = formula 1 st in
              Form.mk_comprehension [ ("q", Ftype.Obj) ]
                (Form.mk_and
                   [ Form.mk_elem (Form.mk_var "q") (set_expr 0 st); body ]) );
        ]
        st
  and int_expr n st =
    if n = 0 then
      frequency
        [ (2, oneofl [ Form.mk_var "i"; Form.mk_var "j" ]);
          (2, map Form.mk_int (int_range (-3) 3));
        ]
        st
    else
      frequency
        [ (2, fun st -> int_expr 0 st);
          (2, fun st -> Form.mk_plus (int_expr (n - 1) st) (int_expr (n - 1) st));
          (1, fun st -> Form.mk_minus (int_expr (n - 1) st) (int_expr (n - 1) st));
          (1, fun st -> Form.mk_card (set_expr (n - 1) st));
        ]
        st
  and atom st =
    frequency
      [ (3, fun st -> Form.mk_elem (obj st) (set_expr 1 st));
        (2, fun st -> Form.mk_eq (set_expr 1 st) (set_expr 1 st));
        (2, fun st -> Form.mk_le (int_expr 1 st) (int_expr 1 st));
        (2, fun st -> Form.mk_eq (obj st) (obj st));
        (1, fun st -> Form.mk_subseteq (set_expr 1 st) (set_expr 1 st));
        ( 1,
          fun st ->
            Form.mk_eq
              (Form.mk_field_read (Form.mk_var "f") (obj st))
              (obj st) );
      ]
      st
  and formula n st =
    if n = 0 then atom st
    else
      frequency
        [ (3, atom);
          (2, fun st -> Form.mk_and [ formula (n - 1) st; formula (n - 1) st ]);
          (2, fun st -> Form.mk_or [ formula (n - 1) st; formula (n - 1) st ]);
          (2, fun st -> Form.mk_not (formula (n - 1) st));
          (1, fun st -> Form.mk_impl (formula (n - 1) st) (formula (n - 1) st));
          ( 1,
            fun st ->
              Form.mk_forall [ ("z", Ftype.Obj) ]
                (Form.mk_impl
                   (Form.mk_elem (Form.mk_var "z") (set_expr 0 st))
                   (formula (n - 1) st)) );
        ]
        st
  in
  sized (fun n -> formula (min (max 1 (n / 8)) 3))

let gen_env : env QCheck.Gen.t =
  let open QCheck.Gen in
  let* xo = int_range 0 3 in
  let* yo = int_range 0 3 in
  let* i = int_range (-4) 4 in
  let* j = int_range (-4) 4 in
  let* s = int_range 0 15 in
  let* t = int_range 0 15 in
  let* f0 = int_range 0 3 in
  let* f1 = int_range 0 3 in
  let* f2 = int_range 0 3 in
  let* f3 = int_range 0 3 in
  return
    { obj_vars = [ ("x", xo); ("y", yo) ];
      int_vars = [ ("i", i); ("j", j) ];
      set_vars = [ ("s", s); ("t", t) ];
      field = [| f0; f1; f2; f3 |];
    }

let arb =
  QCheck.make
    ~print:(fun (f, _) -> Pprint.to_string f)
    QCheck.Gen.(pair gen_formula gen_env)

let bool_of f env =
  match eval env f with Vbool b -> Some b | _ -> None | exception Ill_sorted -> None

let preservation name transform =
  QCheck.Test.make ~name ~count:500 arb (fun (f, env) ->
      match bool_of f env with
      | None -> true (* generator produced something out of model scope *)
      | Some before -> (
        match bool_of (transform f) env with
        | Some after -> before = after
        | None -> false))

let prop_simplify_preserves = preservation "simplify preserves semantics" Simplify.simplify
let prop_nnf_preserves = preservation "nnf preserves semantics" Simplify.nnf

let prop_roundtrip_preserves =
  (* the printer renders set difference and inclusion with the ambiguous
     [-] and [<=]; reparsing needs the type-driven disambiguation pass,
     exactly as the dispatcher applies it *)
  let tenv =
    Typecheck.env_of_list
      [ ("s", Ftype.objset); ("t", Ftype.objset); ("i", Ftype.Int);
        ("j", Ftype.Int); ("x", Ftype.Obj); ("y", Ftype.Obj);
        ("f", Ftype.Arrow (Ftype.Obj, Ftype.Obj));
      ]
  in
  preservation "print/parse roundtrip preserves semantics" (fun f ->
      match Parser.parse_opt (Pprint.to_string f) with
      | Some f' -> Typecheck.disambiguate ~env:tenv f'
      | None -> Form.mk_false (* will be caught as a difference *))

let suite =
  [ ( "semantics",
      [ QCheck_alcotest.to_alcotest prop_simplify_preserves;
        QCheck_alcotest.to_alcotest prop_nnf_preserves;
        QCheck_alcotest.to_alcotest prop_roundtrip_preserves;
      ] );
  ]
