(** Tests for the fuzzer's typed formula generators ({!Fuzz.Formgen}):
    every generated sequent typechecks under its fragment's vocabulary,
    respects the documented size bound, and is accepted by the fragment's
    membership predicate; generation is a pure function of the seed. *)

open Logic
module Formgen = Fuzz.Formgen

let pp_sequent s = Format.asprintf "%a" Sequent.pp s

let arb frag ~size =
  QCheck.make ~print:pp_sequent (Formgen.gen_sequent frag ~size)

let count = 300
let size = 3

let prop_typechecks frag =
  QCheck.Test.make
    ~name:(Formgen.fragment_name frag ^ " sequents typecheck")
    ~count (arb frag ~size)
    (fun s ->
      match
        Typecheck.check_formula ~env:(Formgen.type_env frag)
          (Sequent.to_form s)
      with
      | _ -> true
      | exception Typecheck.Type_error _ -> false)

let prop_size_bound frag =
  QCheck.Test.make
    ~name:(Formgen.fragment_name frag ^ " sequents respect the size bound")
    ~count (arb frag ~size)
    (fun s -> Formgen.sequent_size s <= Formgen.sequent_node_bound ~size)

(* Membership: each fragment's sequents are accepted by the corresponding
   prover's [in_fragment] — except when they trip the prover's own size
   valve (Cooper and MONA cap their inputs), which is not a generator
   defect. *)
let prop_membership name pred ~size_valve frag =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s sequents admitted by %s" (Formgen.fragment_name frag)
         name)
    ~count (arb frag ~size)
    (* measure the sequent the way the provers do: as one implication *)
    (fun s -> pred s || Form.size (Sequent.to_form s) > size_valve)

let prop_deterministic frag =
  QCheck.Test.make
    ~name:(Formgen.fragment_name frag ^ " generation is seed-deterministic")
    ~count:20
    QCheck.(make Gen.(pair (int_bound 1000) (int_bound 200)))
    (fun (seed, n) ->
      let s1 = Formgen.sequent_of_seed frag ~seed ~size n in
      let s2 = Formgen.sequent_of_seed frag ~seed ~size n in
      Form.equal (Sequent.to_form s1) (Sequent.to_form s2))

let props =
  List.concat_map
    (fun frag -> [ prop_typechecks frag; prop_size_bound frag ])
    Formgen.all_fragments
  @ [ prop_membership "smt" Smt.in_fragment ~size_valve:max_int Formgen.Euf;
      prop_membership "smt" Smt.in_fragment ~size_valve:max_int
        Formgen.Presburger;
      prop_membership "cooper"
        (Presburger.Lia.in_fragment
           ~env:(Formgen.type_env Formgen.Presburger))
        ~size_valve:Presburger.Lia.max_size Formgen.Presburger;
      prop_membership "bapa" Bapa.in_fragment ~size_valve:max_int Formgen.Bapa;
      (* MONA caps at 400 nodes *after* simplification, which can expand
         connectives; stay well under it *)
      prop_membership "mona" Fca.in_fragment ~size_valve:150 Formgen.Ws1s;
    ]
  @ List.map prop_deterministic [ Formgen.Euf; Formgen.Ws1s ]

let suite =
  [ ("gen", List.map QCheck_alcotest.to_alcotest props) ]
