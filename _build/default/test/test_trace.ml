(** Tracing-layer tests: the disabled fast path, aggregate merging, the
    JSON reader, sink validity (JSONL balance, Chrome array), and span
    coverage of prover attempts with cache attribution. *)

open Logic

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* ------------------------------------------------------------------ *)
(* Disabled fast path and aggregates                                   *)
(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  Trace.reset ();
  Alcotest.(check bool) "off by default" false (Trace.enabled ());
  let forced = ref false in
  let v =
    Trace.with_span ~cat:"t"
      ~args:(fun () -> forced := true; [])
      "work"
      (fun () -> 41 + 1)
  in
  Alcotest.(check int) "value passes through" 42 v;
  Alcotest.(check bool) "args thunk never forced" false !forced;
  Trace.incr "t.count";
  Trace.observe "t.obs" 1.0;
  Alcotest.(check int) "counter not recorded" 0 (Trace.counter_value "t.count");
  Alcotest.(check (list (pair string int))) "no aggregates" []
    (List.map (fun (k, (s : Trace.stat)) -> (k, s.Trace.count))
       (Trace.span_stats ()))

let test_aggregates () =
  Trace.reset ();
  Trace.start_collecting ();
  for _ = 1 to 3 do
    Trace.with_span ~cat:"t" "work" (fun () -> Trace.incr "t.count")
  done;
  Trace.add "t.count" 4;
  (* a second domain owns its own accumulator; stats merge both *)
  Domain.join
    (Domain.spawn (fun () ->
         Trace.with_span ~cat:"t" "work" (fun () -> Trace.incr "t.count")));
  Trace.stop ();
  Alcotest.(check int) "counters merged across domains" 8
    (Trace.counter_value "t.count");
  (match List.assoc_opt "t:work" (Trace.span_stats ()) with
  | Some st ->
    Alcotest.(check int) "span observations merged" 4 st.Trace.count;
    Alcotest.(check bool) "durations non-negative" true (st.Trace.total_s >= 0.)
  | None -> Alcotest.fail "span aggregate missing");
  Alcotest.(check bool) "collection off after stop" false (Trace.enabled ());
  Trace.reset ();
  Alcotest.(check int) "reset clears counters" 0 (Trace.counter_value "t.count")

(* ------------------------------------------------------------------ *)
(* The JSON reader                                                     *)
(* ------------------------------------------------------------------ *)

let test_json_parser () =
  let open Trace.Json in
  let v = parse {|{"a":[1,2.5,-3e2],"s":"x\n\"y","t":true,"z":null,"o":{}}|} in
  (match member "a" v with
  | Some (Arr [ Num a; Num b; Num c ]) ->
    Alcotest.(check (float 1e-9)) "int" 1. a;
    Alcotest.(check (float 1e-9)) "fraction" 2.5 b;
    Alcotest.(check (float 1e-9)) "exponent" (-300.) c
  | _ -> Alcotest.fail "array member");
  (match member "s" v with
  | Some (Str s) -> Alcotest.(check string) "escapes decoded" "x\n\"y" s
  | _ -> Alcotest.fail "string member");
  Alcotest.(check bool) "bool member" true (member "t" v = Some (Bool true));
  Alcotest.(check bool) "null member" true (member "z" v = Some Null);
  Alcotest.(check bool) "empty object" true (member "o" v = Some (Obj []));
  Alcotest.(check bool) "missing key" true (member "nope" v = None);
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %s" bad)
        true
        (Trace.Json.parse_opt bad = None))
    [ "{"; "[1,]"; {|{"a":}|}; "01"; {|"unterminated|}; "{} trailing";
      {|{"a":1 "b":2}|}; "nul" ]

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let test_jsonl_golden () =
  Trace.reset ();
  let path = Filename.temp_file "jahob_trace_test" ".jsonl" in
  Trace.start_collecting ();
  Trace.open_sink path;
  Trace.with_span ~cat:"a" "outer" (fun () ->
      Trace.with_span ~cat:"a"
        ~args:(fun () -> [ ("k", Trace.S "v\"esc\n"); ("n", Trace.I 3) ])
        "inner"
        (fun () -> ());
      Trace.instant ~cat:"a" "tick");
  (* a helper thread writes on its own timeline lane *)
  let t =
    Thread.create
      (fun () -> Trace.with_span ~cat:"b" "helper" (fun () -> ()))
      ()
  in
  Thread.join t;
  Trace.stop ();
  (match Trace.check_jsonl_file path with
  | Ok s ->
    Alcotest.(check int) "three balanced spans" 3 s.Trace.spans;
    Alcotest.(check int) "seven events" 7 s.Trace.events;
    Alcotest.(check int) "nesting depth two" 2 s.Trace.max_depth
  | Error m -> Alcotest.fail m);
  (* every line is standalone JSON and args survive the escaping *)
  let events = List.map Trace.Json.parse (read_lines path) in
  let has_arg k expect e =
    match Trace.Json.member "args" e with
    | Some a -> Trace.Json.member k a = Some expect
    | None -> false
  in
  Alcotest.(check bool) "escaped arg round-trips" true
    (List.exists (has_arg "k" (Trace.Json.Str "v\"esc\n")) events);
  Sys.remove path;
  Trace.reset ()

let test_jsonl_check_rejects () =
  let check lines =
    let path = Filename.temp_file "jahob_trace_bad" ".jsonl" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    let r = Trace.check_jsonl_file path in
    Sys.remove path;
    r
  in
  let expect_error name lines =
    match check lines with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" name
  in
  expect_error "unclosed span"
    [ {|{"ph":"B","ts":0.1,"tid":0,"cat":"x","name":"a"}|} ];
  expect_error "truncated JSON" [ {|{"ph":"B","ts":0.1,"tid":0|} ];
  expect_error "mismatched end"
    [ {|{"ph":"B","ts":0.1,"tid":0,"cat":"x","name":"a"}|};
      {|{"ph":"E","ts":0.2,"tid":0,"cat":"x","name":"b"}|} ];
  expect_error "end without begin"
    [ {|{"ph":"E","ts":0.2,"tid":0,"cat":"x","name":"a"}|} ];
  expect_error "missing name" [ {|{"ph":"B","ts":0.1,"tid":0,"cat":"x"}|} ];
  (* per-thread balance: interleaved lanes are fine *)
  match
    check
      [ {|{"ph":"B","ts":0.1,"tid":1,"cat":"x","name":"a"}|};
        {|{"ph":"B","ts":0.2,"tid":2,"cat":"x","name":"b"}|};
        {|{"ph":"E","ts":0.3,"tid":1,"cat":"x","name":"a"}|};
        {|{"ph":"E","ts":0.4,"tid":2,"cat":"x","name":"b"}|} ]
  with
  | Ok s -> Alcotest.(check int) "two spans across lanes" 2 s.Trace.spans
  | Error m -> Alcotest.fail m

let test_chrome_sink () =
  Trace.reset ();
  let path = Filename.temp_file "jahob_trace_test" ".json" in
  Trace.start_collecting ();
  Trace.open_sink ~format:Trace.Chrome path;
  Trace.with_span ~cat:"c" "outer" (fun () ->
      Trace.with_span ~cat:"c" "inner" (fun () -> ()));
  Trace.stop ();
  let text = String.concat "\n" (read_lines path) in
  Sys.remove path;
  (match Trace.Json.parse text with
  | Trace.Json.Arr events ->
    Alcotest.(check int) "four events" 4 (List.length events);
    List.iter
      (fun e ->
        (match Trace.Json.member "ph" e with
        | Some (Trace.Json.Str ("B" | "E")) -> ()
        | _ -> Alcotest.fail "bad ph");
        (match Trace.Json.member "pid" e with
        | Some (Trace.Json.Num _) -> ()
        | _ -> Alcotest.fail "pid missing");
        match Trace.Json.member "ts" e with
        | Some (Trace.Json.Num us) ->
          Alcotest.(check bool) "microsecond timestamps" true (us >= 0.)
        | _ -> Alcotest.fail "ts missing")
      events
  | _ -> Alcotest.fail "chrome trace is not a JSON array");
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* End to end: prover attempts and cache attribution in the trace      *)
(* ------------------------------------------------------------------ *)

let test_trace_covers_prover_attempts () =
  Trace.reset ();
  let path = Filename.temp_file "jahob_trace_test" ".jsonl" in
  Trace.start_collecting ();
  Trace.open_sink path;
  let cache = Dispatch.Cache.create () in
  let d = Dispatch.create ~cache [ Smt.prover ] in
  let s =
    Sequent.make
      [ Parser.parse "x > 0"; Parser.parse "x < 2" ]
      (Parser.parse "x = 1")
  in
  ignore (Dispatch.prove_sequent d s);
  ignore (Dispatch.prove_sequent d s);
  Trace.stop ();
  (match Trace.check_jsonl_file path with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let events = List.map Trace.Json.parse (read_lines path) in
  let str k e =
    match Trace.Json.member k e with
    | Some (Trace.Json.Str s) -> Some s
    | _ -> None
  in
  let arg k e =
    match Trace.Json.member "args" e with Some a -> str k a | None -> None
  in
  let has f = List.exists f events in
  Alcotest.(check bool) "smt attempt has a prover span" true
    (has (fun e ->
         str "ph" e = Some "B" && str "cat" e = Some "prover"
         && str "name" e = Some "smt"));
  Alcotest.(check bool) "prover span closes with its verdict" true
    (has (fun e ->
         str "ph" e = Some "E" && str "cat" e = Some "prover"
         && arg "verdict" e = Some "valid"));
  Alcotest.(check bool) "first obligation attributed as a miss" true
    (has (fun e ->
         str "ph" e = Some "E" && str "cat" e = Some "obligation"
         && arg "cache" e = Some "miss" && arg "verdict" e = Some "valid"));
  Alcotest.(check bool) "second obligation attributed as a hit" true
    (has (fun e ->
         str "ph" e = Some "E" && str "cat" e = Some "obligation"
         && arg "cache" e = Some "hit"));
  Alcotest.(check int) "cache counters observed" 1
    (Trace.counter_value "cache.hit");
  Sys.remove path;
  Trace.reset ()

let suite =
  [ ( "trace",
      [ Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "aggregates merge" `Quick test_aggregates;
        Alcotest.test_case "json parser" `Quick test_json_parser;
        Alcotest.test_case "jsonl sink golden" `Quick test_jsonl_golden;
        Alcotest.test_case "jsonl check rejects" `Quick
          test_jsonl_check_rejects;
        Alcotest.test_case "chrome sink" `Quick test_chrome_sink;
        Alcotest.test_case "trace covers prover attempts" `Quick
          test_trace_covers_prover_attempts;
      ] );
  ]
