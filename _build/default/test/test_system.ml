(** System-level tests: desugaring, weakest preconditions, goal
    decomposition, ground instantiation, dispatch, loop-invariant
    inference, and end-to-end verification of the example programs. *)

open Logic
module Cmd = Gcl.Cmd
module Desugar = Gcl.Desugar

let parse = Parser.parse
let form = Alcotest.testable Pprint.pp Form.equal

let examples_dir =
  let candidates = [ "../examples"; "../../examples"; "examples" ] in
  match
    List.find_opt (fun d -> Sys.file_exists (d ^ "/list/List.java")) candidates
  with
  | Some d -> d
  | None -> "../examples"

(* ------------------------------------------------------------------ *)
(* Guarded commands and wp                                             *)
(* ------------------------------------------------------------------ *)

let wp c q = Vcgen.strip_labels (Vcgen.wp Vcgen.default_options c q)

let test_wp_basics () =
  Alcotest.check form "skip" (parse "x = y") (wp Cmd.Skip (parse "x = y"));
  Alcotest.check form "assign substitutes" (parse "z = y")
    (wp (Cmd.Assign ("x", Form.mk_var "z")) (parse "x = y"));
  Alcotest.check form "assume guards" (parse "a = b --> x = y")
    (wp (Cmd.Assume (parse "a = b")) (parse "x = y"));
  Alcotest.check form "assert conjoins"
    (Form.mk_and [ parse "a = b"; parse "x = y" ])
    (wp (Cmd.Assert (parse "a = b", "label")) (parse "x = y"));
  (* havoc renames to a fresh variable *)
  let f = wp (Cmd.Havoc [ "x" ]) (parse "x = y") in
  (match Form.strip_types f with
  | Form.App (Form.Const Form.Eq, [ Form.Var x'; Form.Var "y" ]) ->
    Alcotest.(check bool) "renamed" true (x' <> "x")
  | _ -> Alcotest.fail "unexpected havoc result");
  (* choice conjoins both branches *)
  let c =
    Cmd.Choice (Cmd.Assign ("x", Form.mk_int 1), Cmd.Assign ("x", Form.mk_int 2))
  in
  Alcotest.check form "choice"
    (Form.mk_and [ parse "1 = y"; parse "2 = y" ])
    (wp c (parse "x = y"))

let test_wp_sequence_order () =
  (* x := 1; x := x + 1 establishes x = 2 *)
  let c =
    Cmd.seq
      [ Cmd.Assign ("x", Form.mk_int 1);
        Cmd.Assign ("x", Form.mk_plus (Form.mk_var "x") (Form.mk_int 1));
      ]
  in
  let f = Simplify.simplify (wp c (parse "x = 2")) in
  Alcotest.check form "sequencing" (parse "1 + 1 = 2") f

let test_wp_loop () =
  (* loop with invariant x >= 0, condition x > 0, body x := x - 1;
     afterwards x >= 0 holds *)
  let l =
    { Cmd.loop_invariant = Some (parse "x >= 0");
      loop_cond = parse "x > 0";
      loop_prelude = Cmd.Skip;
      loop_body = Cmd.Assign ("x", Form.mk_minus (Form.mk_var "x") (Form.mk_int 1));
    }
  in
  let vc = Vcgen.vc (Cmd.seq [ Cmd.Assume (parse "x = 5"); Cmd.Loop l ]) in
  let obligations = Vcgen.split_vc vc in
  Alcotest.(check bool) "several obligations" true (List.length obligations >= 2);
  let d = Dispatch.create [ Smt.prover ] in
  List.iter
    (fun s ->
      match (Dispatch.prove_sequent d s).Dispatch.verdict with
      | Sequent.Valid -> ()
      | v ->
        Alcotest.failf "loop obligation %s: %s" s.Sequent.name
          (Sequent.verdict_to_string v))
    obligations

let test_split_vc () =
  let f =
    Form.mk_impl (parse "a = b")
      (Form.mk_and [ parse "c = d"; Form.mk_impl (parse "e = f") (parse "g = h") ])
  in
  let obligations = Vcgen.split_vc f in
  Alcotest.(check int) "two goals" 2 (List.length obligations);
  let second = List.nth obligations 1 in
  Alcotest.(check int) "hypotheses accumulate" 2
    (List.length second.Sequent.hyps)

(* ------------------------------------------------------------------ *)
(* Desugaring                                                          *)
(* ------------------------------------------------------------------ *)

let parse_list_program () =
  Javaparser.Jparser.parse_program_file (examples_dir ^ "/list/List.java")

let test_desugar_tasks () =
  let prog = parse_list_program () in
  let tasks = Desugar.program_tasks prog in
  Alcotest.(check int) "five tasks for List" 5 (List.length tasks);
  let names = List.map (fun (t : Desugar.method_task) -> t.Desugar.task_name) tasks in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "List.List"; "List.add"; "List.empty"; "List.getOne"; "List.remove" ]

let test_desugar_unfolds_abstraction () =
  (* add's task references the unfolded comprehension, not bare 'content' *)
  let prog = parse_list_program () in
  let tasks = Desugar.program_tasks prog in
  let add =
    List.find (fun (t : Desugar.method_task) -> t.Desugar.task_name = "List.add") tasks
  in
  let vc = Vcgen.vc add.Desugar.task_command in
  let mentions_rtrancl =
    Form.exists_sub
      (fun g -> match g with Form.Const Form.Rtrancl -> true | _ -> false)
      vc
  in
  Alcotest.(check bool) "abstraction unfolded" true mentions_rtrancl

let test_desugar_encapsulation () =
  (* the Client's tasks must see content as opaque (no rtrancl) *)
  let prog =
    Javaparser.Jparser.parse_program_file (examples_dir ^ "/list/Client.java")
    @ parse_list_program ()
  in
  let tasks = Desugar.program_tasks prog in
  let move =
    List.find
      (fun (t : Desugar.method_task) -> t.Desugar.task_name = "Client.move")
      tasks
  in
  let vc = Vcgen.vc move.Desugar.task_command in
  let mentions_rtrancl =
    Form.exists_sub
      (fun g -> match g with Form.Const Form.Rtrancl -> true | _ -> false)
      vc
  in
  Alcotest.(check bool) "client sees opaque content" false mentions_rtrancl

(* ------------------------------------------------------------------ *)
(* Ground instantiation                                                *)
(* ------------------------------------------------------------------ *)

let test_instantiate_forall () =
  let s =
    Sequent.make
      [ parse "x : A"; parse "ALL v. v : A --> v : B" ]
      (parse "x : B")
  in
  let s' = Instantiate.saturate s in
  Alcotest.(check bool) "instance added" true
    (List.exists (Form.equal (parse "x : A --> x : B")) s'.Sequent.hyps
    || List.exists (Form.equal (parse "x : B")) s'.Sequent.hyps)

let test_instantiate_pointwise () =
  let s =
    Sequent.make [ parse "x : A"; parse "A = B Un {x}" ] (parse "x : A")
  in
  let s' = Instantiate.saturate s in
  Alcotest.(check bool) "pointwise instance" true
    (List.exists
       (fun h ->
         Form.equal h (Simplify.simplify (parse "x : A <-> (x : B | x = x)")))
       s'.Sequent.hyps
    || List.length s'.Sequent.hyps > 2)

let test_instantiate_propagation () =
  let s =
    Sequent.make
      [ parse "p = q"; parse "p = q --> A = B Un {x}"; parse "w : A" ]
      (parse "w : B | w = x")
  in
  let d = Dispatch.create [ Smt.prover; Fol.prover ] in
  match (Dispatch.prove_sequent d s).Dispatch.verdict with
  | Sequent.Valid -> ()
  | v -> Alcotest.failf "propagation chain: %s" (Sequent.verdict_to_string v)

let test_goal_extensionality () =
  let s = Sequent.make [ parse "A = B" ] (parse "B = A") in
  let d = Dispatch.create [ Smt.prover ] in
  match (Dispatch.prove_sequent d s).Dispatch.verdict with
  | Sequent.Valid -> ()
  | v -> Alcotest.failf "set symmetry: %s" (Sequent.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let test_dispatch_portfolio_order () =
  (* a goal only FOL handles must fall through SMT *)
  let d = Dispatch.create [ Smt.prover; Fol.prover ] in
  let s =
    Sequent.make
      [ parse "ALL x. x..f = x" ]
      (parse "a..f..f = a")
  in
  let r = Dispatch.prove_sequent d s in
  Alcotest.(check bool) "proved" true (r.Dispatch.verdict = Sequent.Valid)

let test_dispatch_relevance_filter () =
  let hyps = List.init 30 (fun i -> parse (Printf.sprintf "u%d = v%d" i i)) in
  let filtered = Dispatch.relevant_hyps (parse "a = b" :: hyps) (parse "b = a") in
  Alcotest.(check int) "unrelated hypotheses dropped" 1 (List.length filtered)

let test_dispatch_stats () =
  let d = Dispatch.create [ Smt.prover ] in
  let s = Sequent.make [ parse "a = b" ] (parse "b = a") in
  ignore (Dispatch.prove_sequent d s);
  (* no exception and a settled verdict is enough *)
  ()

(* ------------------------------------------------------------------ *)
(* Shape analysis (Houdini)                                            *)
(* ------------------------------------------------------------------ *)

let test_houdini_keeps_inductive () =
  (* loop: x := x (identity body); candidate x = 0 is inductive *)
  let l =
    { Cmd.loop_invariant = None;
      loop_cond = parse "b = c";
      loop_prelude = Cmd.Skip;
      loop_body = Cmd.Assign ("x", Form.mk_var "x");
    }
  in
  match
    Shape.infer ~provers:[ Smt.prover ] ~seeds:[ parse "x = 0" ] l
  with
  | Some inv ->
    Alcotest.(check bool) "x = 0 kept" true
      (List.exists (Form.equal (parse "x = 0")) (Form.conjuncts inv))
  | None -> Alcotest.fail "expected an invariant"

let test_houdini_drops_noninductive () =
  (* body x := x + 1 kills candidate x = 0 but keeps x >= 0.  Negated
     candidates are blacklisted up front, emulating the driver's
     initiation-refinement (with both polarities present the candidate
     conjunction is contradictory and consecution is vacuous). *)
  let l =
    { Cmd.loop_invariant = None;
      loop_cond = parse "b = c";
      loop_prelude = Cmd.Skip;
      loop_body = Cmd.Assign ("x", Form.mk_plus (Form.mk_var "x") (Form.mk_int 1));
    }
  in
  match
    Shape.infer ~provers:[ Smt.prover ]
      ~drop:
        [ Form.mk_not (parse "x = 0");
          Form.mk_not (parse "x >= 0");
          parse "b = c";
          Form.mk_not (parse "b = c");
        ]
      ~seeds:[ parse "x = 0"; parse "x >= 0" ]
      l
  with
  | Some inv ->
    let parts = Form.conjuncts inv in
    Alcotest.(check bool) "x = 0 dropped" false
      (List.exists (Form.equal (parse "x = 0")) parts);
    Alcotest.(check bool) "x >= 0 kept" true
      (List.exists (Form.equal (parse "x >= 0")) parts)
  | None -> Alcotest.fail "expected an invariant"

(* ------------------------------------------------------------------ *)
(* End-to-end verification of the bundled examples                     *)
(* ------------------------------------------------------------------ *)

let verify files =
  Jahob_core.Jahob.verify_files
    (List.map (fun f -> examples_dir ^ "/" ^ f) files)

let count report =
  List.fold_left
    (fun (t, v) (m : Jahob_core.Jahob.method_report) ->
      ( t + m.Jahob_core.Jahob.obligations.Dispatch.total,
        v + m.Jahob_core.Jahob.obligations.Dispatch.valid ))
    (0, 0) report.Jahob_core.Jahob.methods

let test_verify_paper_client () =
  let report = verify [ "list/Client.java"; "list/List.java" ] in
  let client_methods =
    List.filter
      (fun (m : Jahob_core.Jahob.method_report) ->
        String.length m.Jahob_core.Jahob.method_name >= 6
        && String.sub m.Jahob_core.Jahob.method_name 0 6 = "Client")
      report.Jahob_core.Jahob.methods
  in
  (* the constructor verifies fully; move verifies except the o <> null
     precondition that the paper's interfaces do not imply (documented in
     EXPERIMENTS.md) *)
  let ctor = List.find (fun (m : Jahob_core.Jahob.method_report) ->
      m.Jahob_core.Jahob.method_name = "Client.Client") client_methods in
  Alcotest.(check int) "ctor fully verified" 0
    ctor.Jahob_core.Jahob.obligations.Dispatch.unknown;
  let move = List.find (fun (m : Jahob_core.Jahob.method_report) ->
      m.Jahob_core.Jahob.method_name = "Client.move") client_methods in
  Alcotest.(check bool) "move at most one open obligation" true
    (move.Jahob_core.Jahob.obligations.Dispatch.unknown <= 1);
  Alcotest.(check int) "no invalid verdicts" 0
    (List.fold_left
       (fun n (m : Jahob_core.Jahob.method_report) ->
         n + m.Jahob_core.Jahob.obligations.Dispatch.invalid)
       0 report.Jahob_core.Jahob.methods)

let test_verify_annotated_list () =
  let report =
    verify [ "list_annotated/Client.java"; "list_annotated/List.java" ]
  in
  Alcotest.(check bool) "fully verified" true report.Jahob_core.Jahob.ok

let test_verify_buffer () =
  let report = verify [ "global/Buffer.java" ] in
  Alcotest.(check bool) "fully verified" true report.Jahob_core.Jahob.ok

let test_verify_assoc () =
  let report = verify [ "assoc/AssocClient.java"; "assoc/Assoc.java" ] in
  Alcotest.(check bool) "fully verified" true report.Jahob_core.Jahob.ok

let test_verify_game () =
  let report = verify [ "game/Game.java" ] in
  Alcotest.(check bool) "fully verified" true report.Jahob_core.Jahob.ok

let test_unsound_spec_rejected () =
  (* a method whose body violates its contract must NOT verify *)
  let src =
    "class Bad {\n\
     /*: public static ghost specvar s :: objset; */\n\
     public static void oops(Object o)\n\
     /*: requires \"o ~= null\" modifies s ensures \"s = {}\" */\n\
     {\n\
     //: s := \"s Un {o}\";\n\
     }\n\
     }"
  in
  let prog = Javaparser.Jparser.parse_program src in
  let report = Jahob_core.Jahob.verify_program prog in
  Alcotest.(check bool) "bad spec not verified" false report.Jahob_core.Jahob.ok

let test_obligation_counts_stable () =
  let report = verify [ "game/Game.java" ] in
  let total, valid = count report in
  Alcotest.(check bool) "nontrivial obligation set" true (total >= 8);
  Alcotest.(check int) "all valid" total valid

let suite =
  [ ( "vcgen",
      [ Alcotest.test_case "wp basics" `Quick test_wp_basics;
        Alcotest.test_case "wp sequencing" `Quick test_wp_sequence_order;
        Alcotest.test_case "wp loop" `Quick test_wp_loop;
        Alcotest.test_case "goal decomposition" `Quick test_split_vc;
      ] );
    ( "desugar",
      [ Alcotest.test_case "method tasks" `Quick test_desugar_tasks;
        Alcotest.test_case "abstraction unfolding" `Quick
          test_desugar_unfolds_abstraction;
        Alcotest.test_case "encapsulation" `Quick test_desugar_encapsulation;
      ] );
    ( "instantiate",
      [ Alcotest.test_case "forall instances" `Quick test_instantiate_forall;
        Alcotest.test_case "pointwise instances" `Quick
          test_instantiate_pointwise;
        Alcotest.test_case "unit propagation chain" `Quick
          test_instantiate_propagation;
        Alcotest.test_case "goal extensionality" `Quick
          test_goal_extensionality;
      ] );
    ( "dispatch",
      [ Alcotest.test_case "portfolio order" `Quick
          test_dispatch_portfolio_order;
        Alcotest.test_case "relevance filter" `Quick
          test_dispatch_relevance_filter;
        Alcotest.test_case "stats" `Quick test_dispatch_stats;
      ] );
    ( "shape",
      [ Alcotest.test_case "keeps inductive candidates" `Quick
          test_houdini_keeps_inductive;
        Alcotest.test_case "drops non-inductive candidates" `Quick
          test_houdini_drops_noninductive;
      ] );
    ( "endtoend",
      [ Alcotest.test_case "paper client (Fig 2)" `Slow test_verify_paper_client;
        Alcotest.test_case "annotated list verifies" `Slow
          test_verify_annotated_list;
        Alcotest.test_case "global buffer verifies" `Quick test_verify_buffer;
        Alcotest.test_case "assoc client verifies" `Slow test_verify_assoc;
        Alcotest.test_case "game verifies" `Quick test_verify_game;
        Alcotest.test_case "wrong spec rejected" `Quick
          test_unsound_spec_rejected;
        Alcotest.test_case "obligation accounting" `Quick
          test_obligation_counts_stable;
      ] );
  ]
