(** Direct use of the WS1S engine (the MONA substitute) for shape queries.

    Run with: [dune exec examples/shape_queries.exe]

    The paper uses "monadic second-order logic over trees to reason about
    reachability in linked data structures".  This example poses such
    queries directly: positions are list cells, second-order variables are
    cell sets, and [SuccF]/[LeqF] are the next-pointer and reachability. *)

open Mona.Ws1s

let check name ?(fo = []) f =
  Printf.printf "  %-58s %s\n" name (if valid ~fo f then "valid" else "not valid")

let () =
  print_endline "WS1S shape queries over a list backbone:";
  check "reachability is a partial order (antisymmetry)"
    (All1
       ( "x",
         All1
           ( "y",
             Impl
               ( And [ Pred (LeqF ("x", "y")); Pred (LeqF ("y", "x")) ],
                 Pred (EqF ("x", "y")) ) ) ));
  check "successor is reachability's one-step"
    (All1
       ( "x",
         All1
           ("y", Impl (Pred (SuccF ("y", "x")), Pred (LeqF ("x", "y"))))
       ));
  check "every nonempty cell set has a head (least element)"
    (All2
       ( "X",
         Impl
           ( Not (Pred (IsEmpty "X")),
             Ex1
               ( "m",
                 And
                   [ Pred (In ("m", "X"));
                     All1
                       ( "y",
                         Impl (Pred (In ("y", "X")), Pred (LeqF ("m", "y")))
                       );
                   ] ) ) ));
  check "no infinite descending chains (well-foundedness of prefix sets)"
    (Not
       (Ex2
          ( "X",
            And
              [ Ex1 ("z", And [ Pred (ZeroF "z"); Pred (In ("z", "X")) ]);
                All1
                  ( "x",
                    All1
                      ( "y",
                        Impl
                          ( And
                              [ Pred (In ("x", "X")); Pred (SuccF ("y", "x")) ],
                            Pred (In ("y", "X")) ) ) );
              ] )));

  print_endline "";
  print_endline "Witness extraction (a model of a satisfiable constraint):";
  (match
     satisfiable ~fo:[ "x"; "y" ]
       (And [ Pred (LessF ("x", "y")); Pred (In ("y", "S")) ])
   with
  | Some model ->
    List.iter
      (fun (v, positions) ->
        Printf.printf "  %-4s = {%s}\n" v
          (String.concat ", " (List.map string_of_int positions)))
      model
  | None -> print_endline "  unexpectedly unsatisfiable");

  print_endline "";
  print_endline "Field constraint analysis (derived-field elimination):";
  let open Logic in
  let s =
    Sequent.make
      [ Parser.parse "ALL x y. x..d = y --> y = x..next";
        Parser.parse "rtrancl_pt (% u v. u..next = v) h a" ]
      (Parser.parse "rtrancl_pt (% u v. u..next = v) h (a..d)")
  in
  let s' = Fca.analyze_sequent s in
  Printf.printf "  derived field 'd' eliminated: %d hypotheses -> %d\n"
    2
    (List.length s'.Sequent.hyps);
  Printf.printf "  verdict after analysis: %s\n"
    (Sequent.verdict_to_string (Fca.prover.Sequent.prove s))
