// S3-GAME: the synthetic stand-in for the paper's "turn-based strategy
// game" case study: two players own disjoint unit sets; the turn flag
// alternates; captures move a unit between the players.

class Game {
    /*:
      public static ghost specvar redUnits :: objset;
      public static ghost specvar blueUnits :: objset;
      public static ghost specvar redTurn :: bool;
      public static ghost specvar started :: bool;
      invariant "started --> redUnits Int blueUnits = {}";
    */

    public static void newGame()
    /*:
      modifies redUnits, blueUnits, redTurn, started
      ensures "started & redUnits = {} & blueUnits = {} & redTurn"
    */
    {
        //: redUnits := "{}";
        //: blueUnits := "{}";
        //: redTurn := "True";
        //: started := "True";
    }

    public static void spawnRed(Object u)
    /*:
      requires "started & redTurn & u ~= null & u ~: redUnits & u ~: blueUnits"
      modifies redUnits
      ensures "u : redUnits"
    */
    {
        //: redUnits := "redUnits Un {u}";
    }

    public static void captureByRed(Object u)
    /*:
      requires "started & redTurn & u : blueUnits"
      modifies redUnits, blueUnits
      ensures "u : redUnits & u ~: blueUnits"
    */
    {
        //: blueUnits := "blueUnits - {u}";
        //: redUnits := "redUnits Un {u}";
    }

    public static void endTurn()
    /*:
      requires "started"
      modifies redTurn
      ensures "started"
    */
    {
        if (true) {
            //: redTurn := "~redTurn";
        }
    }
}
