// Array-based data: "Other programs may use array-based data structures
// such as hash tables that produce very different verification
// conditions" (Section 2.4).  These methods exercise the array model:
// arrayRead/arrayWrite VCs with bounds obligations, discharged by the
// Nelson-Oppen SMT core.

class ArrayOps {
    static Object[] buf;

    public static void set(int i, Object v)
    /*:
      requires "buf ~= null & 0 <= i & i < buf..Array.length"
      modifies "Object.arrayState"
      ensures "arrayRead Object.arrayState buf i = v"
    */
    {
        buf[i] = v;
    }

    public static Object get(int i)
    /*:
      requires "buf ~= null & 0 <= i & i < buf..Array.length"
      ensures "result = arrayRead Object.arrayState buf i"
    */
    {
        return buf[i];
    }

    public static void swap(int i, int j)
    /*:
      requires "buf ~= null & 0 <= i & i < buf..Array.length & 0 <= j & j < buf..Array.length"
      modifies "Object.arrayState"
      ensures "arrayRead Object.arrayState buf i = old (arrayRead Object.arrayState buf j) &
               arrayRead Object.arrayState buf j = old (arrayRead Object.arrayState buf i)"
    */
    {
        Object t = buf[i];
        buf[i] = buf[j];
        buf[j] = t;
    }

    public static void fill(Object v, int n)
    /*:
      requires "buf ~= null & 0 <= n & n <= buf..Array.length & v ~= null"
      modifies "Object.arrayState"
      ensures "True"
    */
    {
        int k = 0;
        while (k < n) {
            //: inv "0 <= k & k <= n & n <= buf..Array.length & buf ~= null";
            buf[k] = v;
            k = k + 1;
        }
    }
}
