// The Client class from Figure 2 of the paper: two lists with a
// disjointness invariant, and a move method emptying one into the other.

class Client {
    List a, b;

    /*:
      public ghost specvar init :: bool;
      invariant "init -->
        a ~= null & b ~= null &
        a..List.content Int b..List.content = {}";
    */

    public Client()
    /*:
      modifies "List.content"
      ensures "init"
    */
    {
        a = new List();
        b = new List();
        Object x = new Object(); a.add(x);
        Object y = new Object(); a.add(y);
        //: init := "True";
    }

    public static void move()
    /*:
      requires "init"
      modifies "List.content"
      ensures "a..List.content = {}"
    */
    {
        while (!a.empty()) {
            Object o = a.getOne();
            a.remove(o);
            b.add(o);
        }
    }
}
