// The List class from Figures 1, 3 and 4 of the paper: public interface
// in terms of the abstract 'content' set, linked-list implementation, and
// the abstraction function + representation invariants connecting them.

class List
{
    private Node first;

    /*:
      // representation nodes:
      specvar nodes :: objset;
      private vardefs "nodes == { n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}";

      // list content:
      public specvar content :: objset;
      private vardefs "content == {x. EX n. x = n..Node.data & n : nodes}";

      // next is acyclic and unshared:
      invariant "tree [List.first, Node.next]";

      // 'first' is the beginning of the list:
      invariant "first = null |
        (first : Object.alloc &
          (ALL n. n..Node.next ~= first &
            (n ~= this --> n..List.first ~= first)))";

      // no sharing of data:
      invariant "ALL n1 n2. n1 : nodes & n2 : nodes & n1..Node.data = n2..Node.data --> n1 = n2";
    */

    public List()
    /*:
      modifies content
      ensures "content = {}"
    */
    { }

    public void add(Object o)
    /*:
      requires "o ~: content & o ~= null"
      modifies content
      ensures "content = old content Un {o}"
    */
    {
        Node n = new Node();
        n.data = o;
        n.next = first;
        first = n;
    }

    public boolean empty()
    /*:
      ensures "result = (content = {})"
    */
    {
        return (first == null);
    }

    public Object getOne()
    /*:
      requires "content ~= {}"
      ensures "result : content"
    */
    {
        return first.data;
    }

    public void remove(Object o)
    /*:
      requires "o : content"
      modifies content
      ensures "content = old content - {o}"
    */
    {
        if (first != null) {
            if (first.data == o) {
                first = first.next;
            } else {
                Node prev = first;
                Node current = first.next;
                boolean go = true;
                while (go && (current != null)) {
                    if (current.data == o) {
                        prev.next = current.next;
                        go = false;
                    }
                    current = current.next;
                }
            }
        }
    }
}

class Node {
    public /*: claimedby List */ Object data;
    public /*: claimedby List */ Node next;
}
