(** Quickstart: verify the paper's List example end to end.

    Run with: [dune exec examples/quickstart.exe]

    This is the smallest complete use of the public API: parse annotated
    Java-subset sources, run the verifier, inspect the per-method report. *)

let dir =
  if Sys.file_exists "examples/list/List.java" then "examples"
  else "../examples"

let () =
  print_endline "Jahob quickstart: verifying the paper's List example";
  print_endline "====================================================";
  (* 1. the verbatim figures (client side verifies automatically;
        implementation-side inductive obligations stay unknown) *)
  let report =
    Jahob_core.Jahob.verify_files
      [ dir ^ "/list/Client.java"; dir ^ "/list/List.java" ]
  in
  Format.printf "%a@." (Jahob_core.Jahob.pp_report ~stats:false) report;

  (* 2. the annotated variant from Section 3 ("by providing intermediate
        assertions we have verified implementations...") *)
  print_endline "";
  print_endline "With intermediate assertions (Section 3):";
  let report =
    Jahob_core.Jahob.verify_files
      [ dir ^ "/list_annotated/Client.java";
        dir ^ "/list_annotated/List.java" ]
  in
  Format.printf "%a@." (Jahob_core.Jahob.pp_report ~stats:false) report
