// A bounded stack specified with an abstract item set and an integer size
// tracked against it: the invariant "size = card items" routes its
// preservation obligations to the BAPA decision procedure (sets with
// cardinalities), while the membership obligations go to SMT/FOL — the
// multi-prover dispatch of Section 3 inside one class.

class Stack {
    private static int count;

    /*:
      public static ghost specvar items :: objset;
      public static ghost specvar size :: int;
      invariant "size = card items";
      invariant "size >= 0";
      invariant "count = size";
    */

    public static void init()
    /*:
      modifies items, size
      ensures "items = {} & size = 0"
    */
    {
        count = 0;
        //: items := "{}";
        //: size := "0";
    }

    public static void push(Object o)
    /*:
      requires "o ~= null & o ~: items"
      modifies items, size
      ensures "items = old items Un {o} & size = old size + 1"
    */
    {
        count = count + 1;
        //: items := "items Un {o}";
        //: size := "size + 1";
    }

    public static void pop(Object o)
    /*:
      requires "o : items"
      modifies items, size
      ensures "items = old items - {o} & size = old size - 1"
    */
    {
        count = count - 1;
        //: items := "items - {o}";
        //: size := "size - 1";
    }

    public static boolean isEmpty()
    /*:
      ensures "result = (size = 0)"
    */
    {
        return count == 0;
    }
}
