(** A tour of the decision-procedure portfolio.

    Run with: [dune exec examples/prover_tour.exe]

    Each reasoner of the paper's Section 3 is exercised on its home
    fragment through the shared {!Logic.Sequent} interface: the
    Nelson-Oppen SMT core, BAPA, the MONA route, and the first-order
    resolution prover. *)

open Logic

let show prover hyps goal =
  let s = Sequent.make (List.map Parser.parse hyps) (Parser.parse goal) in
  let v = prover.Sequent.prove s in
  Printf.printf "  %-12s %-45s %s\n" prover.Sequent.prover_name goal
    (Sequent.verdict_to_string v)

let () =
  print_endline "SMT (congruence closure + Omega test, Nelson-Oppen combined):";
  show Smt.prover [ "x <= y"; "y <= x" ] "x..f = y..f";
  show Smt.prover [ "i > 0"; "i < 2" ] "i = 1";
  show Smt.prover [ "g = fieldWrite f x v" ] "fieldRead g x = v";

  print_endline "";
  print_endline "BAPA (Venn regions -> Presburger, decided by Cooper/Omega):";
  show Bapa.prover
    [ "A Int B = {}"; "card A = 3"; "card B = 4" ]
    "card (A Un B) = 7";
  show Bapa.prover [ "A <= B" ] "card A <= card B";
  show Bapa.prover [ "card A = 1"; "card B = 1"; "A = B" ] "card (A Un B) = 1";

  print_endline "";
  print_endline "MONA route (WS1S over the list backbone):";
  show Fca.prover
    [ "rtrancl_pt (% u v. u..next = v) h x";
      "rtrancl_pt (% u v. u..next = v) h y";
      "x..next = y" ]
    "rtrancl_pt (% u v. u..next = v) x y";
  show Fca.prover
    [ "rtrancl_pt (% u v. u..next = v) h x" ]
    "rtrancl_pt (% u v. u..next = v) x h";

  print_endline "";
  print_endline "First-order resolution (set-algebraic client obligations):";
  show Fol.prover
    [ "A Int B = {}"; "o : A"; "A2 = A - {o}"; "B2 = B Un {o}" ]
    "A2 Int B2 = {}";
  show Fol.prover [ "ALL x. x..f = x" ] "a..f = a";

  print_endline "";
  print_endline
    "(valid/invalid are definitive answers; unknown sends the goal to the\n\
     next prover in the dispatcher's portfolio)"
