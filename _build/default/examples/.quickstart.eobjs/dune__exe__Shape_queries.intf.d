examples/shape_queries.mli:
