examples/quickstart.ml: Format Jahob_core Sys
