examples/quickstart.mli:
