examples/prover_tour.mli:
