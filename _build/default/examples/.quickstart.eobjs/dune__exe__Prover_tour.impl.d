examples/prover_tour.ml: Bapa Fca Fol List Logic Parser Printf Sequent Smt
