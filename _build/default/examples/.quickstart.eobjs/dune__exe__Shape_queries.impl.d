examples/shape_queries.ml: Fca List Logic Mona Parser Printf Sequent String
