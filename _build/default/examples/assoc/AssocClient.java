// Client of the association list: an environment split into a scratch map
// and a committed map with disjoint key sets.

class AssocClient {
    Assoc scratch, committed;

    /*:
      public ghost specvar init :: bool;
      invariant "init -->
        scratch ~= null & committed ~= null &
        scratch..Assoc.keys Int committed..Assoc.keys = {}";
    */

    public AssocClient()
    /*:
      modifies "Assoc.keys"
      ensures "init"
    */
    {
        scratch = new Assoc();
        committed = new Assoc();
        //: init := "True";
    }

    public static void promote(Object k)
    /*:
      requires "init & k : scratch..Assoc.keys & k ~: committed..Assoc.keys & k ~= null"
      modifies "Assoc.keys"
      ensures "k : committed..Assoc.keys"
    */
    {
        scratch.removeKey(k);
        committed.put(k, k);
    }
}
