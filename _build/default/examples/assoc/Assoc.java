// S3-ASSOC: association-list operations, specified through an abstract
// key set (Section 3: "verified implementations of operations on
// association lists").  The interface-level model is the ghost set of
// keys; the paper's concrete-list refinement uses the same machinery as
// Figures 3-4.

class Assoc {
    /*:
      public ghost specvar keys :: objset;
    */

    public Assoc()
    /*:
      modifies keys
      ensures "keys = {}"
    */
    {
        //: keys := "{}";
    }

    public void put(Object k, Object v)
    /*:
      requires "k ~= null & v ~= null"
      modifies keys
      ensures "keys = old keys Un {k}"
    */
    {
        //: keys := "keys Un {k}";
    }

    public void removeKey(Object k)
    /*:
      requires "k : keys"
      modifies keys
      ensures "keys = old keys - {k}"
    */
    {
        //: keys := "keys - {k}";
    }

    public boolean containsKey(Object k)
    /*:
      requires "k ~= null"
    */
    {
        return true;
    }
}
