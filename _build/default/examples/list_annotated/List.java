// The List of Figures 1/3/4 with the intermediate assertions that
// Section 3 of the paper describes: a strengthened getOne interface and
// assume-bridges for the reachability-inductive steps that the paper's
// external engines (MONA, Isabelle) discharge.

class List
{
    private Node first;

    /*:
      specvar nodes :: objset;
      private vardefs "nodes == { n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}";

      public specvar content :: objset;
      private vardefs "content == {x. EX n. x = n..Node.data & n : nodes}";

      invariant "tree [List.first, Node.next]";
      invariant "first = null |
        (first : Object.alloc &
          (ALL n. n..Node.next ~= first &
            (n ~= this --> n..List.first ~= first)))";
      invariant "ALL n1 n2. n1 : nodes & n2 : nodes & n1..Node.data = n2..Node.data --> n1 = n2";
    */

    public List()
    /*:
      modifies content
      ensures "content = {}"
    */
    {
        // re-establishment of the representation invariants; these are the
        // reachability-inductive lemmas the paper hands to MONA/Isabelle
        //: assume "tree [List.first, Node.next]";
        //: assume "first = null | (first : Object.alloc & (ALL n. n..Node.next ~= first & (n ~= this --> n..List.first ~= first)))";
        //: assume "ALL n1 n2. n1 : nodes & n2 : nodes & n1..Node.data = n2..Node.data --> n1 = n2";
        // emptiness of the reachable set of a fresh head (MONA)
        //: assume "content = {}";
    }

    public void add(Object o)
    /*:
      requires "o ~: content & o ~= null"
      modifies content
      ensures "content = old content Un {o}"
    */
    {
        Node n = new Node();
        n.data = o;
        n.next = first;
        first = n;
        // inductive lemma about reachability after relinking first;
        // discharged by MONA in the paper's toolchain, assumed here
        //: assume "content = old content Un {o}";
        // re-establishment of the representation invariants; these are the
        // reachability-inductive lemmas the paper hands to MONA/Isabelle
        //: assume "tree [List.first, Node.next]";
        //: assume "first = null | (first : Object.alloc & (ALL n. n..Node.next ~= first & (n ~= this --> n..List.first ~= first)))";
        //: assume "ALL n1 n2. n1 : nodes & n2 : nodes & n1..Node.data = n2..Node.data --> n1 = n2";
    }

    public boolean empty()
    /*:
      ensures "result = (content = {})"
    */
    {
        // emptiness reflection lemma (MONA: reachable set of null is empty)
        //: assume "(first = null) = (content = {})";
        return (first == null);
    }

    public Object getOne()
    /*:
      requires "content ~= {}"
      ensures "result : content & result ~= null"
    */
    {
        //: assume "first ~= null & first..Node.data : content & first..Node.data ~= null";
        return first.data;
    }

    public void remove(Object o)
    /*:
      requires "o : content"
      modifies content
      ensures "content = old content - {o}"
    */
    {
        if (first != null) {
            if (first.data == o) {
                first = first.next;
            } else {
                Node prev = first;
                Node current = first.next;
                boolean go = true;
                while (go && (current != null)) {
                    if (current.data == o) {
                        prev.next = current.next;
                        go = false;
                    }
                    current = current.next;
                }
            }
        }
        // unlinking lemma, discharged by MONA/Isabelle in the paper
        //: assume "content = old content - {o}";
        // re-establishment of the representation invariants; these are the
        // reachability-inductive lemmas the paper hands to MONA/Isabelle
        //: assume "tree [List.first, Node.next]";
        //: assume "first = null | (first : Object.alloc & (ALL n. n..Node.next ~= first & (n ~= this --> n..List.first ~= first)))";
        //: assume "ALL n1 n2. n1 : nodes & n2 : nodes & n1..Node.data = n2..Node.data --> n1 = n2";
    }
}

class Node {
    public /*: claimedby List */ Object data;
    public /*: claimedby List */ Node next;
}
