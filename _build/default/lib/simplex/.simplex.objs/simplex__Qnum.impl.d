lib/simplex/qnum.ml: Format Printf
