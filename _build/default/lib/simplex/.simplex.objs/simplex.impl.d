lib/simplex/simplex.ml: Array Hashtbl List Qnum
