(** Exact rational arithmetic on native integers.

    Numerators and denominators stay small in the simplex tableaux our
    verification conditions produce; every operation normalizes by the gcd
    to keep magnitudes down.  Overflow would require coefficients beyond
    2^62, far outside anything the VC generator emits. *)

type t = { num : int; den : int } (* den > 0, gcd (|num|) den = 1 *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Qnum.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then invalid_arg "Qnum.div: division by zero";
  make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }
let compare a b = compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let gt a b = compare a b > 0
let geq a b = compare a b >= 0
let sign a = compare a zero
let is_zero a = a.num = 0
let is_integer a = a.den = 1
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

(* floor/ceil as rationals *)
let floor a =
  if a.den = 1 then a
  else if a.num >= 0 then of_int (a.num / a.den)
  else of_int (-(((-a.num) + a.den - 1) / a.den))

let ceil a = neg (floor (neg a))
let num a = a.num
let den a = a.den

let to_string a =
  if a.den = 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp ppf a = Format.pp_print_string ppf (to_string a)
let to_float a = float_of_int a.num /. float_of_int a.den
