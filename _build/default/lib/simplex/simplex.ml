(** Exact-arithmetic simplex over the rationals, with branch-and-bound for
    integer feasibility.

    This is the linear-arithmetic half of the Nelson-Oppen style prover:
    verification conditions about array indices, list lengths and
    cardinalities reduce to conjunctions of linear constraints.  Phase-one
    simplex (artificial variables, Bland's rule, hence terminating) decides
    rational feasibility; branch-and-bound on fractional coordinates
    decides integer feasibility of bounded instances. *)

module Qnum = Qnum

(* A linear constraint  sum coeffs <= / = rhs  over named variables. *)
type op = Le | Eq

type constr = { coeffs : (string * Qnum.t) list; op : op; rhs : Qnum.t }

let le coeffs rhs = { coeffs; op = Le; rhs }
let eq coeffs rhs = { coeffs; op = Eq; rhs }

(* Convenience for integer coefficients. *)
let le_i coeffs rhs =
  le (List.map (fun (v, c) -> (v, Qnum.of_int c)) coeffs) (Qnum.of_int rhs)

let eq_i coeffs rhs =
  eq (List.map (fun (v, c) -> (v, Qnum.of_int c)) coeffs) (Qnum.of_int rhs)

(* >= is encoded by negation *)
let ge_i coeffs rhs = le_i (List.map (fun (v, c) -> (v, -c)) coeffs) (-rhs)

type rational_result =
  | Rsat of (string * Qnum.t) list
  | Runsat

type integer_result =
  | Isat of (string * int) list
  | Iunsat
  | Iunknown (* branch-and-bound budget exhausted *)

(* ------------------------------------------------------------------ *)
(* Tableau construction                                                *)
(* ------------------------------------------------------------------ *)

(* Collect variables in deterministic order. *)
let variables (cs : constr list) : string array =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun c ->
      List.iter
        (fun (v, _) ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            order := v :: !order
          end)
        c.coeffs)
    cs;
  Array.of_list (List.rev !order)

(* Phase-one simplex on the system

     A y = b,  y >= 0,  minimize sum of artificials

   where each original (sign-unrestricted) variable x is split as
   x = xp - xn. Column layout: [xp_0 xn_0 ... xp_{n-1} xn_{n-1} |
   slacks | artificials]. *)
let solve_rational (cs : constr list) : rational_result =
  let vars = variables cs in
  let nv = Array.length vars in
  let var_index = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add var_index v i) vars;
  let m = List.length cs in
  let n_slack = List.length (List.filter (fun c -> c.op = Le) cs) in
  let n = (2 * nv) + n_slack + m in
  (* tableau rows: m constraint rows, each of width n+1 (last = rhs) *)
  let t = Array.make_matrix m (n + 1) Qnum.zero in
  let slack_pos = ref 0 in
  List.iteri
    (fun i c ->
      List.iter
        (fun (v, q) ->
          let j = Hashtbl.find var_index v in
          t.(i).((2 * j)) <- Qnum.add t.(i).(2 * j) q;
          t.(i).((2 * j) + 1) <- Qnum.sub t.(i).((2 * j) + 1) q)
        c.coeffs;
      (match c.op with
      | Le ->
        t.(i).((2 * nv) + !slack_pos) <- Qnum.one;
        incr slack_pos
      | Eq -> ());
      t.(i).(n) <- c.rhs)
    cs;
  (* make rhs nonnegative *)
  for i = 0 to m - 1 do
    if Qnum.sign t.(i).(n) < 0 then
      for j = 0 to n do
        t.(i).(j) <- Qnum.neg t.(i).(j)
      done
  done;
  (* artificial variables form the initial basis *)
  let basis = Array.make m 0 in
  for i = 0 to m - 1 do
    let art = (2 * nv) + n_slack + i in
    t.(i).(art) <- Qnum.one;
    basis.(i) <- art
  done;
  (* cost row: minimize sum of artificials; expressed in terms of
     non-basic variables: z_j - c_j = sum over rows of artificial rows *)
  let cost = Array.make (n + 1) Qnum.zero in
  for i = 0 to m - 1 do
    for j = 0 to n do
      cost.(j) <- Qnum.add cost.(j) t.(i).(j)
    done
  done;
  (* artificial columns contribute cost 1 each: subtract *)
  for i = 0 to m - 1 do
    let art = (2 * nv) + n_slack + i in
    cost.(art) <- Qnum.sub cost.(art) Qnum.one
  done;
  let is_artificial j = j >= (2 * nv) + n_slack in
  (* Bland's rule: entering = smallest index with positive reduced cost
     (we maximize the negated objective ⇔ minimize artificial sum). *)
  let rec iterate () =
    (* pick entering column: positive cost coefficient, smallest index *)
    let entering = ref (-1) in
    (try
       for j = 0 to n - 1 do
         if Qnum.gt cost.(j) Qnum.zero then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering = -1 then ()
    else begin
      let e = !entering in
      (* ratio test with Bland tie-breaking on basis variable index *)
      let leaving = ref (-1) in
      let best = ref Qnum.zero in
      for i = 0 to m - 1 do
        if Qnum.gt t.(i).(e) Qnum.zero then begin
          let ratio = Qnum.div t.(i).(n) t.(i).(e) in
          if
            !leaving = -1
            || Qnum.lt ratio !best
            || (Qnum.equal ratio !best && basis.(i) < basis.(!leaving))
          then begin
            leaving := i;
            best := ratio
          end
        end
      done;
      if !leaving = -1 then
        (* unbounded in the phase-1 objective: cannot happen (objective is
           bounded below by 0), but guard anyway *)
        ()
      else begin
        let l = !leaving in
        (* pivot on (l, e) *)
        let piv = t.(l).(e) in
        for j = 0 to n do
          t.(l).(j) <- Qnum.div t.(l).(j) piv
        done;
        for i = 0 to m - 1 do
          if i <> l && not (Qnum.is_zero t.(i).(e)) then begin
            let f = t.(i).(e) in
            for j = 0 to n do
              t.(i).(j) <- Qnum.sub t.(i).(j) (Qnum.mul f t.(l).(j))
            done
          end
        done;
        if not (Qnum.is_zero cost.(e)) then begin
          let f = cost.(e) in
          for j = 0 to n do
            cost.(j) <- Qnum.sub cost.(j) (Qnum.mul f t.(l).(j))
          done
        end;
        basis.(l) <- e;
        iterate ()
      end
    end
  in
  iterate ();
  (* objective value = -cost.(n) … cost row holds z - c; the artificial sum
     equals cost.(n) after optimization *)
  let infeasibility = cost.(n) in
  if Qnum.gt infeasibility Qnum.zero then Runsat
  else begin
    (* check no artificial variable remains basic with nonzero value *)
    let bad = ref false in
    for i = 0 to m - 1 do
      if is_artificial basis.(i) && not (Qnum.is_zero t.(i).(n)) then
        bad := true
    done;
    if !bad then Runsat
    else begin
      let value = Array.make (2 * nv) Qnum.zero in
      for i = 0 to m - 1 do
        if basis.(i) < 2 * nv then value.(basis.(i)) <- t.(i).(n)
      done;
      let assignment =
        Array.to_list
          (Array.mapi
             (fun j v -> (v, Qnum.sub value.(2 * j) value.((2 * j) + 1)))
             vars)
      in
      Rsat assignment
    end
  end

(* ------------------------------------------------------------------ *)
(* Integer feasibility: branch and bound                               *)
(* ------------------------------------------------------------------ *)

let solve_integer ?(max_nodes = 2000) (cs : constr list) : integer_result =
  let budget = ref max_nodes in
  let rec go cs =
    if !budget <= 0 then Iunknown
    else begin
      decr budget;
      match solve_rational cs with
      | Runsat -> Iunsat
      | Rsat assignment -> (
        match
          List.find_opt (fun (_, q) -> not (Qnum.is_integer q)) assignment
        with
        | None ->
          Isat (List.map (fun (v, q) -> (v, Qnum.num q)) assignment)
        | Some (v, q) -> (
          let lower = le [ (v, Qnum.one) ] (Qnum.floor q) in
          let upper =
            le [ (v, Qnum.minus_one) ] (Qnum.neg (Qnum.ceil q))
          in
          match go (lower :: cs) with
          | Isat a -> Isat a
          | Iunsat -> go (upper :: cs)
          | Iunknown -> (
            match go (upper :: cs) with
            | Isat a -> Isat a
            | Iunsat | Iunknown -> Iunknown)))
    end
  in
  go cs

(* ------------------------------------------------------------------ *)
(* Convenience checks                                                  *)
(* ------------------------------------------------------------------ *)

let rational_feasible cs =
  match solve_rational cs with Rsat _ -> true | Runsat -> false

let satisfies (assignment : (string * int) list) (c : constr) : bool =
  let lookup v =
    match List.assoc_opt v assignment with Some n -> n | None -> 0
  in
  let lhs =
    List.fold_left
      (fun acc (v, q) -> Qnum.add acc (Qnum.mul q (Qnum.of_int (lookup v))))
      Qnum.zero c.coeffs
  in
  match c.op with
  | Le -> Qnum.leq lhs c.rhs
  | Eq -> Qnum.equal lhs c.rhs
