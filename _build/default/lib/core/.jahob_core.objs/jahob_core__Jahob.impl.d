lib/core/jahob.ml: Bapa Dispatch Fca Fol Format Gcl Javaparser List Logic Option Shape Smt String Trace Vcgen
