lib/core/jahob.ml: Bapa Dispatch Fca Fol Format Gcl Javaparser List Logic Shape Smt String Vcgen
