lib/core/jahob.mli: Dispatch Format Javaparser Logic
