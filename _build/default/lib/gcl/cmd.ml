(** Guarded commands: the intermediate language between the Java subset
    and the verification-condition generator.

    State variables are logical variables:
    - locals and parameters keep their names;
    - an instance field [f] of class [C] is the function-valued variable
      ["C.f"] (reads become [fieldRead], writes become [fieldWrite]);
    - static fields and spec variables are the globals ["C.x"];
    - the allocation set is ["Object.alloc"]. *)

open Logic

type command =
  | Skip
  | Assume of Form.t
  | Assert of Form.t * string (* formula, origin label *)
  | Assign of string * Form.t
  | Havoc of string list
  | Seq of command list
  | Choice of command * command
  | Loop of loop

and loop = {
  loop_invariant : Form.t option;
  loop_cond : Form.t; (* entry condition; negation holds on exit *)
  loop_prelude : command; (* evaluates the condition's effects each round *)
  loop_body : command;
}

let seq cs =
  let rec flatten acc = function
    | [] -> List.rev acc
    | Skip :: rest -> flatten acc rest
    | Seq cs :: rest -> flatten acc (cs @ rest)
    | c :: rest -> flatten (c :: acc) rest
  in
  match flatten [] cs with [] -> Skip | [ c ] -> c | cs -> Seq cs

(* variables assigned or havoced by a command (loop prelude included) *)
let rec modified_vars (c : command) : Form.Sset.t =
  match c with
  | Skip | Assume _ | Assert _ -> Form.Sset.empty
  | Assign (x, _) -> Form.Sset.singleton x
  | Havoc xs -> Form.Sset.of_list xs
  | Seq cs ->
    List.fold_left
      (fun acc c -> Form.Sset.union acc (modified_vars c))
      Form.Sset.empty cs
  | Choice (a, b) -> Form.Sset.union (modified_vars a) (modified_vars b)
  | Loop l ->
    Form.Sset.union (modified_vars l.loop_prelude) (modified_vars l.loop_body)

(** Apply [fn] to every formula occurring in the command. *)
let rec map_formulas (fn : Form.t -> Form.t) (c : command) : command =
  match c with
  | Skip -> Skip
  | Assume f -> Assume (fn f)
  | Assert (f, l) -> Assert (fn f, l)
  | Assign (x, f) -> Assign (x, fn f)
  | Havoc xs -> Havoc xs
  | Seq cs -> Seq (List.map (map_formulas fn) cs)
  | Choice (a, b) -> Choice (map_formulas fn a, map_formulas fn b)
  | Loop l ->
    Loop
      { loop_invariant = Option.map fn l.loop_invariant;
        loop_cond = fn l.loop_cond;
        loop_prelude = map_formulas fn l.loop_prelude;
        loop_body = map_formulas fn l.loop_body }

let rec pp ppf (c : command) =
  match c with
  | Skip -> Format.pp_print_string ppf "skip"
  | Assume f -> Format.fprintf ppf "assume %a" Pprint.pp f
  | Assert (f, label) -> Format.fprintf ppf "assert[%s] %a" label Pprint.pp f
  | Assign (x, f) -> Format.fprintf ppf "%s := %a" x Pprint.pp f
  | Havoc xs ->
    Format.fprintf ppf "havoc %s" (String.concat ", " xs)
  | Seq cs ->
    Format.fprintf ppf "@[<v 0>%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@,")
         pp)
      cs
  | Choice (a, b) ->
    Format.fprintf ppf "@[<v 2>choice {@,%a@]@,@[<v 2>} or {@,%a@]@,}" pp a pp b
  | Loop l ->
    Format.fprintf ppf "@[<v 2>loop%s (%a) {@,%a@]@,}"
      (match l.loop_invariant with
      | Some inv -> Printf.sprintf " inv %s" (Pprint.to_string inv)
      | None -> "")
      Pprint.pp l.loop_cond pp l.loop_body

let to_string c = Format.asprintf "%a" pp c
