(** Guarded commands: the intermediate language between the Java subset
    and the verification-condition generator. *)

open Logic

type command =
  | Skip
  | Assume of Form.t
  | Assert of Form.t * string  (** formula, origin label *)
  | Assign of string * Form.t
  | Havoc of string list
  | Seq of command list
  | Choice of command * command
  | Loop of loop

and loop = {
  loop_invariant : Form.t option;
  loop_cond : Form.t;  (** entry condition; negation holds on exit *)
  loop_prelude : command;  (** evaluates the condition's effects *)
  loop_body : command;
}

(** Smart sequence: flattens nested [Seq] and drops [Skip]. *)
val seq : command list -> command

(** Variables assigned or havoced anywhere in the command. *)
val modified_vars : command -> Form.Sset.t

(** Apply [fn] to every formula occurring in the command. *)
val map_formulas : (Form.t -> Form.t) -> command -> command

val pp : Format.formatter -> command -> unit
val to_string : command -> string
