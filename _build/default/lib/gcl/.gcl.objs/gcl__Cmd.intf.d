lib/gcl/cmd.mli: Form Format Logic
