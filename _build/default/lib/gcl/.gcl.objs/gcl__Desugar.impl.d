lib/gcl/desugar.ml: Cmd Form Format Ftype Hashtbl Javaparser List Logic Option Printf String
