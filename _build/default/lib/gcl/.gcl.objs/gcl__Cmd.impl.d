lib/gcl/cmd.ml: Form Format List Logic Option Pprint Printf String
