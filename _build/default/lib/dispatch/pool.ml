(** A fixed-size pool of OCaml 5 domains with a shared work queue.

    Proof obligations within a method (and methods within a program) are
    independent, so the dispatcher fans them out across domains instead of
    iterating.  The design is self-scheduling: each [map] call publishes a
    batch of tasks; idle workers repeatedly grab the next unclaimed index
    from any live batch, so fast workers automatically steal the work a
    slow worker never reaches.

    Nesting is safe on a single pool.  The caller of [map] participates in
    its own batch before blocking (helping), so a worker whose task itself
    calls [map] — e.g. per-method verification fanning out into per-
    obligation proving — never deadlocks: every claimed task is being
    executed by some domain, and the waits-for graph between batches is
    acyclic. *)

type batch = {
  mutable tasks : (unit -> unit) array;
  next : int Atomic.t; (* next unclaimed task index; may run past the end *)
  mutable pending : int; (* unfinished tasks, guarded by the pool mutex *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable batches : batch list; (* live batches, guarded by [mutex] *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs (p : t) = p.jobs

(* claim one task from any live batch; call with [mutex] held *)
let claim_locked (p : t) : (unit -> unit) option =
  let rec scan = function
    | [] -> None
    | b :: rest ->
      let i = Atomic.fetch_and_add b.next 1 in
      if i < Array.length b.tasks then Some b.tasks.(i) else scan rest
  in
  scan p.batches

let rec worker_loop (p : t) =
  Mutex.lock p.mutex;
  match claim_locked p with
  | Some task ->
    Mutex.unlock p.mutex;
    task ();
    worker_loop p
  | None ->
    if p.stop then Mutex.unlock p.mutex
    else begin
      Condition.wait p.work_available p.mutex;
      Mutex.unlock p.mutex;
      worker_loop p
    end

(** [create ~jobs] spawns [jobs - 1] worker domains; the domain calling
    [map] is the remaining worker. *)
let create ~jobs : t =
  let jobs = max 1 jobs in
  let p =
    { jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      batches = [];
      stop = false;
      workers = [] }
  in
  p.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop p));
  p

let shutdown (p : t) =
  Mutex.lock p.mutex;
  p.stop <- true;
  Condition.broadcast p.work_available;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.workers;
  p.workers <- []

(** Parallel [List.map] preserving order.  The first exception raised by
    [f] is re-raised in the caller once the whole batch has settled. *)
let map (p : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  if p.jobs <= 1 || List.compare_length_with xs 2 < 0 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results : ('b, exn) result option array = Array.make n None in
    let batch = { tasks = [||]; next = Atomic.make 0; pending = n } in
    let published = Trace.now_s () in
    let run i () =
      let r =
        if not (Trace.enabled ()) then (try Ok (f arr.(i)) with e -> Error e)
        else begin
          (* time from batch publication to a worker picking the task up:
             queue pressure under the domain pool *)
          let wait_s = Trace.now_s () -. published in
          Trace.observe "pool.queue_wait_s" wait_s;
          Trace.with_span ~cat:"pool"
            ~args:(fun () ->
              [ ("index", Trace.I i); ("queue_wait_s", Trace.F wait_s) ])
            "task"
            (fun () -> try Ok (f arr.(i)) with e -> Error e)
        end
      in
      results.(i) <- Some r;
      Mutex.lock p.mutex;
      batch.pending <- batch.pending - 1;
      if batch.pending = 0 then begin
        p.batches <- List.filter (fun b -> b != batch) p.batches;
        Condition.broadcast p.batch_done
      end;
      Mutex.unlock p.mutex
    in
    batch.tasks <- Array.init n run;
    Mutex.lock p.mutex;
    p.batches <- p.batches @ [ batch ];
    Condition.broadcast p.work_available;
    Mutex.unlock p.mutex;
    (* help with our own batch before blocking *)
    let rec help () =
      let i = Atomic.fetch_and_add batch.next 1 in
      if i < n then begin
        batch.tasks.(i) ();
        help ()
      end
    in
    help ();
    Mutex.lock p.mutex;
    while batch.pending > 0 do
      Condition.wait p.batch_done p.mutex
    done;
    Mutex.unlock p.mutex;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
  end

(** [map] on an optional pool: [None] means run sequentially. *)
let map_opt (p : t option) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  match p with None -> List.map f xs | Some p -> map p f xs
