lib/dispatch/cache.ml: Hashtbl Logic Mutex Sequent Trace
