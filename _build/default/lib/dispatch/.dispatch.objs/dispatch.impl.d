lib/dispatch/dispatch.ml: Atomic Cache Float Form Format Hashtbl Instantiate List Logic Mutex Pool Printexc Printf Sequent Simplify Thread Typecheck Unix
