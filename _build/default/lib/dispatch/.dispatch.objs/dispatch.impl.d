lib/dispatch/dispatch.ml: Atomic Cache Float Form Format Hashtbl Instantiate List Logic Mutex Option Pool Printexc Printf Sequent Simplify Thread Trace Typecheck Unix
