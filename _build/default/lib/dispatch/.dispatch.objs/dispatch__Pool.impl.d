lib/dispatch/pool.ml: Array Atomic Condition Domain List Mutex Trace
