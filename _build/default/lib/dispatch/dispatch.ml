(** The prover dispatcher: goal decomposition and routing.

    This is the architecture claim of the paper — "a verification
    condition generator that can invoke any one of a number of decision
    procedures", with "a simple goal decomposition technique to prove
    different conjuncts in the goal using different decision procedures".

    Each obligation is simplified, then offered to the portfolio in a
    configurable order.  A prover that answers [Unknown] passes the goal
    on; [Valid] and [Invalid] are final.  Assumption filtering keeps each
    query small: hypotheses sharing no symbols with the goal (direct or
    transitive) are dropped before a prover runs. *)

open Logic

type prover_stats = {
  mutable attempts : int;
  mutable proved : int;
  mutable refuted : int;
}

type report = {
  sequent : Sequent.t;
  verdict : Sequent.verdict;
  prover : string option; (* which prover settled it *)
}

type t = {
  provers : Sequent.prover list;
  stats : (string, prover_stats) Hashtbl.t;
  mutable simplify_first : bool;
  mutable filter_assumptions : bool;
  mutable ground_saturate : bool;
}

let create ?(simplify_first = true) ?(filter_assumptions = true)
    ?(ground_saturate = true) (provers : Sequent.prover list) : t =
  { provers; stats = Hashtbl.create 8; simplify_first; filter_assumptions;
    ground_saturate }

let stats_for (d : t) (name : string) : prover_stats =
  match Hashtbl.find_opt d.stats name with
  | Some s -> s
  | None ->
    let s = { attempts = 0; proved = 0; refuted = 0 } in
    Hashtbl.add d.stats name s;
    s

(* ------------------------------------------------------------------ *)
(* Assumption filtering                                                *)
(* ------------------------------------------------------------------ *)

(* keep hypotheses connected to the goal through shared free variables *)
let relevant_hyps (hyps : Form.t list) (goal : Form.t) : Form.t list =
  let fv = Form.fv in
  let rec grow (relevant : Form.Sset.t) =
    let next =
      List.fold_left
        (fun acc h ->
          let hv = fv h in
          if Form.Sset.is_empty (Form.Sset.inter hv relevant) then acc
          else Form.Sset.union acc hv)
        relevant hyps
    in
    if Form.Sset.equal next relevant then relevant else grow next
  in
  let reachable = grow (fv goal) in
  List.filter
    (fun h ->
      let hv = fv h in
      Form.Sset.is_empty hv
      || not (Form.Sset.is_empty (Form.Sset.inter hv reachable)))
    hyps

(* ------------------------------------------------------------------ *)
(* Proving                                                             *)
(* ------------------------------------------------------------------ *)

(* cheap syntactic discharge: goal among hypotheses, or trivially true *)
let syntactic (s : Sequent.t) : Sequent.verdict option =
  let goal = Simplify.simplify s.Sequent.goal in
  if Form.is_true goal then Some Sequent.Valid
  else if
    List.exists
      (fun h -> Form.equal (Simplify.simplify h) goal)
      s.Sequent.hyps
  then Some Sequent.Valid
  else if List.exists (fun h -> Form.is_false (Simplify.simplify h)) s.Sequent.hyps
  then Some Sequent.Valid
  else None

(** Prove one sequent with the portfolio. *)
let prove_sequent (d : t) (s : Sequent.t) : report =
  let s =
    if d.simplify_first then begin
      (* joint type inference resolves <=, < and - between sets *)
      let s =
        match Typecheck.check_formula (Sequent.to_form s) with
        | f -> Sequent.of_form ~name:s.Sequent.name f
        | exception Typecheck.Type_error _ -> s
      in
      { s with
        Sequent.hyps = List.map Simplify.simplify s.Sequent.hyps;
        goal = Simplify.simplify s.Sequent.goal }
    end
    else s
  in
  let s =
    if d.filter_assumptions then
      { s with Sequent.hyps = relevant_hyps s.Sequent.hyps s.Sequent.goal }
    else s
  in
  match syntactic s with
  | Some v -> { sequent = s; verdict = v; prover = Some "syntactic" }
  | None ->
    let s =
      if d.ground_saturate then begin
        try
          let s' = Instantiate.saturate s in
          (* keep the saturated sequent connected to the goal *)
          if d.filter_assumptions then
            { s' with
              Sequent.hyps = relevant_hyps s'.Sequent.hyps s'.Sequent.goal }
          else s'
        with _ -> s
      end
      else s
    in
    let rec try_provers = function
      | [] ->
        { sequent = s;
          verdict = Sequent.Unknown "no prover settled the goal";
          prover = None }
      | (p : Sequent.prover) :: rest -> (
        let st = stats_for d p.Sequent.prover_name in
        st.attempts <- st.attempts + 1;
        match p.Sequent.prove s with
        | Sequent.Valid ->
          st.proved <- st.proved + 1;
          { sequent = s; verdict = Sequent.Valid; prover = Some p.Sequent.prover_name }
        | Sequent.Invalid m ->
          st.refuted <- st.refuted + 1;
          { sequent = s;
            verdict = Sequent.Invalid m;
            prover = Some p.Sequent.prover_name }
        | Sequent.Unknown _ -> try_provers rest
        | exception _ -> try_provers rest)
    in
    try_provers d.provers

(** Prove a list of obligations; returns individual reports. *)
let prove_all (d : t) (sequents : Sequent.t list) : report list =
  List.map (prove_sequent d) sequents

type summary = {
  total : int;
  valid : int;
  invalid : int;
  unknown : int;
  reports : report list;
}

let summarize (reports : report list) : summary =
  let valid =
    List.length
      (List.filter (fun r -> r.verdict = Sequent.Valid) reports)
  in
  let invalid =
    List.length
      (List.filter
         (fun r -> match r.verdict with Sequent.Invalid _ -> true | _ -> false)
         reports)
  in
  let total = List.length reports in
  { total; valid; invalid; unknown = total - valid - invalid; reports }

(** Per-prover counters accumulated by this dispatcher. *)
let stats (d : t) : (string * prover_stats) list =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) d.stats []
  |> List.sort compare

let pp_stats ppf (d : t) =
  List.iter
    (fun (name, (s : prover_stats)) ->
      Format.fprintf ppf "@,  %-12s attempts %4d   proved %4d   refuted %4d"
        name s.attempts s.proved s.refuted)
    (stats d)

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "%d obligations: %d valid, %d invalid, %d unknown"
    s.total s.valid s.invalid s.unknown;
  List.iter
    (fun r ->
      match r.verdict with
      | Sequent.Valid -> ()
      | v ->
        Format.fprintf ppf "@,  [%s] %s"
          (Sequent.verdict_to_string v)
          r.sequent.Sequent.name)
    s.reports
