(** Verdict cache: settle each distinct proof obligation once.

    Obligations repeat heavily — [requires]/invariant re-checks across
    methods, and every round of the speculative-invariant weakening loop
    regenerates most of a method's obligations unchanged.  Sequents are
    keyed by {!Logic.Sequent.digest} (canonicalized, so hypothesis order
    and bound-variable names don't matter) and the verdict plus the name
    of the prover that settled it are stored.

    The cache is shared by all domains of a dispatcher; a mutex guards the
    table and the hit/miss counters.  Lookups and insertions are tiny
    compared to a prover call, so contention is negligible. *)

open Logic

type entry = {
  verdict : Sequent.verdict;
  prover : string option; (* which prover settled it, for reports *)
}

type t = {
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create () : t =
  { table = Hashtbl.create 64; mutex = Mutex.create (); hits = 0; misses = 0 }

(** The cache key of a sequent (see {!Logic.Sequent.digest}). *)
let key (s : Sequent.t) : string = Sequent.digest s

let find (c : t) (k : string) : entry option =
  Mutex.lock c.mutex;
  let r = Hashtbl.find_opt c.table k in
  (match r with
  | Some _ -> c.hits <- c.hits + 1
  | None -> c.misses <- c.misses + 1);
  Mutex.unlock c.mutex;
  (match r with
  | Some _ -> Trace.incr "cache.hit"
  | None -> Trace.incr "cache.miss");
  r

let add (c : t) (k : string) (e : entry) : unit =
  Mutex.lock c.mutex;
  (* first writer wins: concurrent domains proving the same obligation
     reach identical verdicts, so either entry is correct *)
  if not (Hashtbl.mem c.table k) then Hashtbl.add c.table k e;
  Mutex.unlock c.mutex

type counters = { hit_count : int; miss_count : int; entries : int }

let counters (c : t) : counters =
  Mutex.lock c.mutex;
  let r =
    { hit_count = c.hits;
      miss_count = c.misses;
      entries = Hashtbl.length c.table }
  in
  Mutex.unlock c.mutex;
  r

(** Hit rate over all lookups so far; 0 when nothing was looked up. *)
let hit_rate (c : t) : float =
  let k = counters c in
  let total = k.hit_count + k.miss_count in
  if total = 0 then 0. else float_of_int k.hit_count /. float_of_int total
