lib/trace/trace.ml: Atomic Buffer Char Domain Float Format Fun Hashtbl Json List Mutex Option Printexc Printf Stdlib String Thread Unix
