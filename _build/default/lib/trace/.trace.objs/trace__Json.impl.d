lib/trace/json.ml: Buffer Char List Printf String
