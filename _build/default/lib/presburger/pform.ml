(** Presburger-arithmetic formulas: boolean combinations of linear
    (in)equalities and divisibility constraints over integer variables,
    with quantifiers.  Decided by {!Cooper}; quantifier-free conjunctions
    are also decided by {!Omega}. *)

type t =
  | Tru
  | Fls
  | Le of Linterm.t (* t <= 0 *)
  | Eq of Linterm.t (* t = 0 *)
  | Dvd of int * Linterm.t (* d | t, with d > 0 *)
  | Not of t
  | And of t list
  | Or of t list
  | Ex of string * t
  | All of string * t

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let mk_le t =
  if Linterm.is_const t then if Linterm.constant t <= 0 then Tru else Fls
  else begin
    (* normalize by the gcd of the coefficients *)
    let g = Linterm.coeff_gcd t in
    if g <= 1 then Le t else Le (Linterm.quotient_ceil g t)
  end

let mk_eq t =
  if Linterm.is_const t then if Linterm.constant t = 0 then Tru else Fls
  else begin
    let g = Linterm.coeff_gcd t in
    if g <= 1 then Eq t
    else if Linterm.constant t mod g <> 0 then Fls
    else Eq (Linterm.quotient_exact g t)
  end

let mk_dvd d t =
  let d = abs d in
  if d = 0 then mk_eq t
  else if d = 1 then Tru
  else if Linterm.is_const t then
    if Linterm.constant t mod d = 0 then Tru else Fls
  else Dvd (d, t)

let mk_not = function
  | Tru -> Fls
  | Fls -> Tru
  | Not f -> f
  | f -> Not f

let mk_and fs =
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | Tru :: rest -> gather acc rest
    | Fls :: _ -> None
    | And gs :: rest -> gather acc (gs @ rest)
    | f :: rest -> gather (f :: acc) rest
  in
  match gather [] fs with
  | None -> Fls
  | Some [] -> Tru
  | Some [ f ] -> f
  | Some fs -> And fs

let mk_or fs =
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | Fls :: rest -> gather acc rest
    | Tru :: _ -> None
    | Or gs :: rest -> gather acc (gs @ rest)
    | f :: rest -> gather (f :: acc) rest
  in
  match gather [] fs with
  | None -> Tru
  | Some [] -> Fls
  | Some [ f ] -> f
  | Some fs -> Or fs

let mk_impl a b = mk_or [ mk_not a; b ]
let mk_ex x f = if f = Tru || f = Fls then f else Ex (x, f)
let mk_all x f = if f = Tru || f = Fls then f else All (x, f)

(* convenience atom builders *)
let t_le a b = mk_le (Linterm.sub a b) (* a <= b *)
let t_lt a b = mk_le (Linterm.add (Linterm.sub a b) (Linterm.const 1))
let t_ge a b = t_le b a
let t_gt a b = t_lt b a
let t_eq a b = mk_eq (Linterm.sub a b)
let t_neq a b = mk_not (t_eq a b)

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let rec free_vars_acc bound acc f =
  match f with
  | Tru | Fls -> acc
  | Le t | Eq t | Dvd (_, t) ->
    List.fold_left
      (fun acc x -> if List.mem x bound then acc else x :: acc)
      acc (Linterm.variables t)
  | Not g -> free_vars_acc bound acc g
  | And gs | Or gs -> List.fold_left (free_vars_acc bound) acc gs
  | Ex (x, g) | All (x, g) -> free_vars_acc (x :: bound) acc g

let free_vars f = List.sort_uniq compare (free_vars_acc [] [] f)

let rec eval (assignment : (string * int) list) f =
  match f with
  | Tru -> true
  | Fls -> false
  | Le t -> Linterm.eval assignment t <= 0
  | Eq t -> Linterm.eval assignment t = 0
  | Dvd (d, t) -> Linterm.eval assignment t mod d = 0
  | Not g -> not (eval assignment g)
  | And gs -> List.for_all (eval assignment) gs
  | Or gs -> List.exists (eval assignment) gs
  | Ex _ | All _ -> invalid_arg "Pform.eval: quantified formula"

let rec pp ppf f =
  match f with
  | Tru -> Format.pp_print_string ppf "true"
  | Fls -> Format.pp_print_string ppf "false"
  | Le t -> Format.fprintf ppf "%a <= 0" Linterm.pp t
  | Eq t -> Format.fprintf ppf "%a = 0" Linterm.pp t
  | Dvd (d, t) -> Format.fprintf ppf "%d | %a" d Linterm.pp t
  | Not g -> Format.fprintf ppf "~(%a)" pp g
  | And gs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
         pp)
      gs
  | Or gs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
         pp)
      gs
  | Ex (x, g) -> Format.fprintf ppf "(EX %s. %a)" x pp g
  | All (x, g) -> Format.fprintf ppf "(ALL %s. %a)" x pp g

let to_string f = Format.asprintf "%a" pp f
