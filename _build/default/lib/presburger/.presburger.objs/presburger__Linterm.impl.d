lib/presburger/linterm.ml: Format List Map Printf String
