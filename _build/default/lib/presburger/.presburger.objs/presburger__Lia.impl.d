lib/presburger/lia.ml: Cooper Form Format Ftype Linterm List Logic Omega Pform Pprint Sequent Typecheck
