lib/presburger/omega.ml: Hashtbl Linterm List Pform Printf Sys
