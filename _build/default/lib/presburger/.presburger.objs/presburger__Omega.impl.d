lib/presburger/omega.ml: Atomic Hashtbl Linterm List Pform Printf Sys
