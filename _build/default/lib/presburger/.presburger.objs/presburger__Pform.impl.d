lib/presburger/pform.ml: Format Linterm List
