lib/presburger/cooper.ml: Linterm List Pform
