(** Linear terms over integer variables: [c1*x1 + ... + cn*xn + k].

    The shared representation of {!Cooper} and {!Omega}.  Coefficients are
    native integers; variables are names. *)

module Smap = Map.Make (String)

type t = { coeffs : int Smap.t; const : int }

let const k = { coeffs = Smap.empty; const = k }
let zero = const 0

let var ?(coeff = 1) x =
  if coeff = 0 then zero
  else { coeffs = Smap.singleton x coeff; const = 0 }

let of_list pairs k =
  let coeffs =
    List.fold_left
      (fun m (x, c) ->
        let c = c + (match Smap.find_opt x m with Some c0 -> c0 | None -> 0) in
        if c = 0 then Smap.remove x m else Smap.add x c m)
      Smap.empty pairs
  in
  { coeffs; const = k }

let coeff x t = match Smap.find_opt x t.coeffs with Some c -> c | None -> 0
let constant t = t.const
let coeffs t = Smap.bindings t.coeffs
let is_const t = Smap.is_empty t.coeffs

let add a b =
  let coeffs =
    Smap.union
      (fun _ c1 c2 -> if c1 + c2 = 0 then None else Some (c1 + c2))
      a.coeffs b.coeffs
  in
  { coeffs; const = a.const + b.const }

let scale k t =
  if k = 0 then zero
  else { coeffs = Smap.map (fun c -> k * c) t.coeffs; const = k * t.const }

let neg t = scale (-1) t
let sub a b = add a (neg b)

(** Remove variable [x], i.e. the term restricted to the other variables. *)
let drop x t = { t with coeffs = Smap.remove x t.coeffs }

(** Substitute [x := u] in [t]. *)
let subst x u t =
  let cx = coeff x t in
  if cx = 0 then t else add (drop x t) (scale cx u)

let variables t = List.map fst (Smap.bindings t.coeffs)
let mem x t = Smap.mem x t.coeffs

let equal a b = a.const = b.const && Smap.equal ( = ) a.coeffs b.coeffs

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** gcd of all variable coefficients (0 for constant terms). *)
let coeff_gcd t = Smap.fold (fun _ c g -> gcd c g) t.coeffs 0

(** Divide all coefficients and the constant by [g]; every coefficient must
    be divisible (the constant too — use {!quotient_ceil} otherwise). *)
let quotient_exact g t =
  { coeffs = Smap.map (fun c -> c / g) t.coeffs; const = t.const / g }

(** Divide coefficients by [g] exactly and round the constant up; sound for
    normalizing [t <= 0] because [g*u + k <= 0  iff  u + ceil(k/g) <= 0]. *)
let quotient_ceil g t =
  let k = t.const in
  let k' = if k >= 0 then (k + g - 1) / g else -((-k) / g) in
  { coeffs = Smap.map (fun c -> c / g) t.coeffs; const = k' }

(** Evaluate under an assignment (default 0). *)
let eval (assignment : (string * int) list) t =
  Smap.fold
    (fun x c acc ->
      let v = match List.assoc_opt x assignment with Some v -> v | None -> 0 in
      acc + (c * v))
    t.coeffs t.const

let pp ppf t =
  let parts =
    List.map
      (fun (x, c) ->
        if c = 1 then x
        else if c = -1 then "-" ^ x
        else Printf.sprintf "%d%s" c x)
      (Smap.bindings t.coeffs)
  in
  let parts = if t.const <> 0 || parts = [] then parts @ [ string_of_int t.const ] else parts in
  Format.pp_print_string ppf (String.concat " + " parts)

let to_string t = Format.asprintf "%a" pp t
