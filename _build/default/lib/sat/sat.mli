(** CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning, activity-based decisions, phase saving and restarts.

    Variables are positive integers [1..n]; a literal is [+v] or [-v]
    (DIMACS convention). *)

type result =
  | Sat of bool array  (** model, indexed by variable; entry 0 unused *)
  | Unsat

exception Bad_literal of int

(** Incremental solver state. *)
type t

val create : unit -> t

(** Add a clause (list of DIMACS literals).  Returns [false] when the
    clause set becomes unsatisfiable at level 0. *)
val add_clause : t -> int list -> bool

(** Solve the current clause set; [assumptions] are temporary decisions
    tried first (the solver remains usable afterwards either way). *)
val solve : ?assumptions:int list -> t -> result

(** One-shot: solve a clause list from scratch. *)
val solve_clauses : ?assumptions:int list -> int list list -> result

(** Truth of literal [l] in a model returned by {!solve}. *)
val lit_true : bool array -> int -> bool

val num_vars : t -> int
val num_learnts : t -> int
