(** Simple types for the Jahob specification logic.

    The specification language is a subset of Isabelle/HOL, so types are
    simple types: base sorts ([bool], [int], [obj]), sets, function spaces
    and tuples.  Type variables support Hindley-Milner style inference in
    {!Typecheck}. *)

type t =
  | Bool
  | Int
  | Obj                       (** references, including [null] *)
  | Set of t                  (** [t set] *)
  | Arrow of t * t            (** [t1 => t2] *)
  | Tuple of t list           (** [t1 * ... * tn], n >= 2 *)
  | Tvar of int               (** unification variable *)

let objset = Set Obj

(** [arrows [t1;...;tn] r] builds [t1 => ... => tn => r]. *)
let arrows args result = List.fold_right (fun a r -> Arrow (a, r)) args result

let rec equal a b =
  match a, b with
  | Bool, Bool | Int, Int | Obj, Obj -> true
  | Set x, Set y -> equal x y
  | Arrow (a1, r1), Arrow (a2, r2) -> equal a1 a2 && equal r1 r2
  | Tuple xs, Tuple ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Tvar i, Tvar j -> i = j
  | (Bool | Int | Obj | Set _ | Arrow _ | Tuple _ | Tvar _), _ -> false

let rec pp ppf t =
  match t with
  | Bool -> Format.pp_print_string ppf "bool"
  | Int -> Format.pp_print_string ppf "int"
  | Obj -> Format.pp_print_string ppf "obj"
  | Set e -> Format.fprintf ppf "%a set" pp_atom e
  | Arrow (a, r) -> Format.fprintf ppf "%a => %a" pp_atom a pp r
  | Tuple ts ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " * ") pp_atom)
      ts
  | Tvar i -> Format.fprintf ppf "'t%d" i

and pp_atom ppf t =
  match t with
  | Bool | Int | Obj | Tvar _ | Set _ -> pp ppf t
  | Arrow _ | Tuple _ -> Format.fprintf ppf "(%a)" pp t

let to_string t = Format.asprintf "%a" pp t

(** Occurs check: does unification variable [i] occur in [t]? *)
let rec occurs i t =
  match t with
  | Bool | Int | Obj -> false
  | Set e -> occurs i e
  | Arrow (a, r) -> occurs i a || occurs i r
  | Tuple ts -> List.exists (occurs i) ts
  | Tvar j -> i = j

(** Substitutions on type variables, represented as an int map. *)
module Subst = struct
  module M = Map.Make (Int)

  type nonrec subst = t M.t

  let empty : subst = M.empty

  let rec apply (s : subst) t =
    match t with
    | Bool | Int | Obj -> t
    | Set e -> Set (apply s e)
    | Arrow (a, r) -> Arrow (apply s a, apply s r)
    | Tuple ts -> Tuple (List.map (apply s) ts)
    | Tvar i -> ( match M.find_opt i s with Some u -> apply s u | None -> t)

  let bind i t (s : subst) : subst = M.add i t s
end

exception Unify_failure of t * t

(** [unify s a b] extends substitution [s] so that [a] and [b] become equal,
    or raises {!Unify_failure}. *)
let rec unify (s : Subst.subst) a b : Subst.subst =
  let a = Subst.apply s a and b = Subst.apply s b in
  match a, b with
  | Tvar i, Tvar j when i = j -> s
  | Tvar i, t | t, Tvar i ->
    if occurs i t then raise (Unify_failure (a, b)) else Subst.bind i t s
  | Bool, Bool | Int, Int | Obj, Obj -> s
  | Set x, Set y -> unify s x y
  | Arrow (a1, r1), Arrow (a2, r2) -> unify (unify s a1 a2) r1 r2
  | Tuple xs, Tuple ys when List.length xs = List.length ys ->
    List.fold_left2 unify s xs ys
  | (Bool | Int | Obj | Set _ | Arrow _ | Tuple _), _ ->
    raise (Unify_failure (a, b))
