(** A finite-model evaluator for the specification logic.

    This is the semantic oracle of the differential prover fuzzer: formulas
    are interpreted over small explicit structures — a universe of [u]
    objects ([0] is [null]), machine integers from a bounded range, object
    sets as bitmasks, and fields as tabulated functions mapping [null] to
    [null] (the convention every prover in the portfolio assumes).

    Because the structures are genuine models of the logic, a countermodel
    found here refutes a [Valid] verdict outright; the converse direction is
    only evidence (a real countermodel may need a larger universe than the
    enumeration bound). *)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type value =
  | Vbool of bool
  | Vint of int
  | Vobj of int (** object id; [0] is [null] *)
  | Vset of int (** bitmask over objects [0 .. universe-1] *)
  | Vfun of int array (** tabulated [obj => obj] function *)

(** A finite structure: objects are [0 .. universe-1] with [0 = null], and
    [vars] interprets the free variables. *)
type model = {
  universe : int;
  vars : (string * value) list;
}

let pp_value ppf = function
  | Vbool b -> Format.pp_print_bool ppf b
  | Vint n -> Format.pp_print_int ppf n
  | Vobj 0 -> Format.pp_print_string ppf "null"
  | Vobj o -> Format.fprintf ppf "o%d" o
  | Vset m ->
    let elems = ref [] in
    for i = Sys.int_size - 2 downto 0 do
      if (m lsr i) land 1 = 1 then elems := i :: !elems
    done;
    Format.fprintf ppf "{%s}"
      (String.concat ","
         (List.map (fun i -> if i = 0 then "null" else Printf.sprintf "o%d" i)
            !elems))
  | Vfun arr ->
    Format.fprintf ppf "[%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int arr)))

let pp_model ppf (m : model) =
  Format.fprintf ppf "@[<hov 2>universe %d:" m.universe;
  List.iter (fun (x, v) -> Format.fprintf ppf "@ %s=%a" x pp_value v) m.vars;
  Format.fprintf ppf "@]"

let model_to_string m = Format.asprintf "%a" pp_model m

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let full_mask u = (1 lsl u) - 1

(* Enumerable domains for bound variables.  Int binders are deliberately
   unsupported: quantification ranges over all of [int], and checking a
   bounded subset would make the oracle claim countermodels (or their
   absence) that the real semantics does not justify. *)
let domain (u : int) (ty : Ftype.t) : value list =
  match ty with
  | Ftype.Bool -> [ Vbool false; Vbool true ]
  | Ftype.Obj | Ftype.Tvar _ -> List.init u (fun o -> Vobj o)
  | Ftype.Set (Ftype.Obj | Ftype.Tvar _) ->
    List.init (1 lsl u) (fun m -> Vset m)
  | ty -> unsupported "cannot enumerate binder domain %s" (Ftype.to_string ty)

let rec eval (m : model) (env : (string * value) list) (f : Form.t) : value =
  match Form.strip_types f with
  | Form.Var x -> (
    match List.assoc_opt x env with
    | Some v -> v
    | None -> (
      match List.assoc_opt x m.vars with
      | Some v -> v
      | None -> unsupported "unbound variable %s" x))
  | Form.Const (Form.BoolLit b) -> Vbool b
  | Form.Const (Form.IntLit n) -> Vint n
  | Form.Const Form.Null -> Vobj 0
  | Form.Const Form.EmptySet -> Vset 0
  | Form.Const Form.UnivSet -> Vset (full_mask m.universe)
  | Form.App (Form.Const Form.Not, [ g ]) -> Vbool (not (as_bool m env g))
  | Form.App (Form.Const Form.And, gs) ->
    Vbool (List.for_all (as_bool m env) gs)
  | Form.App (Form.Const Form.Or, gs) -> Vbool (List.exists (as_bool m env) gs)
  | Form.App (Form.Const Form.Impl, [ a; b ]) ->
    Vbool ((not (as_bool m env a)) || as_bool m env b)
  | Form.App (Form.Const Form.Iff, [ a; b ]) ->
    Vbool (as_bool m env a = as_bool m env b)
  | Form.App (Form.Const Form.Ite, [ c; a; b ]) ->
    if as_bool m env c then eval m env a else eval m env b
  | Form.App (Form.Const Form.Eq, [ a; b ]) -> (
    match eval m env a, eval m env b with
    | Vbool x, Vbool y -> Vbool (x = y)
    | Vint x, Vint y -> Vbool (x = y)
    | Vobj x, Vobj y -> Vbool (x = y)
    | Vset x, Vset y -> Vbool (x = y)
    | Vfun x, Vfun y -> Vbool (x = y)
    | _ -> unsupported "ill-sorted equality")
  (* Lt/Le on sets normally disambiguate to Subset/Subseteq before they
     reach us, but the evaluator accepts both spellings. *)
  | Form.App (Form.Const Form.Lt, [ a; b ]) -> cmp m env ( < ) strict_sub a b
  | Form.App (Form.Const Form.Le, [ a; b ]) -> cmp m env ( <= ) sub a b
  | Form.App (Form.Const Form.Gt, [ a; b ]) -> cmp m env ( > ) (fun u x y -> strict_sub u y x) a b
  | Form.App (Form.Const Form.Ge, [ a; b ]) -> cmp m env ( >= ) (fun u x y -> sub u y x) a b
  | Form.App (Form.Const Form.Plus, [ a; b ]) ->
    Vint (as_int m env a + as_int m env b)
  | Form.App (Form.Const Form.Minus, [ a; b ]) -> (
    match eval m env a, eval m env b with
    | Vint x, Vint y -> Vint (x - y)
    | Vset x, Vset y -> Vset (x land lnot y land full_mask m.universe)
    | _ -> unsupported "ill-sorted subtraction")
  | Form.App (Form.Const Form.Uminus, [ a ]) -> Vint (-as_int m env a)
  | Form.App (Form.Const Form.Mult, [ a; b ]) ->
    Vint (as_int m env a * as_int m env b)
  | Form.App (Form.Const Form.Elem, [ x; s ]) ->
    Vbool ((as_set m env s lsr as_obj m env x) land 1 = 1)
  | Form.App (Form.Const Form.Union, [ a; b ]) ->
    Vset (as_set m env a lor as_set m env b)
  | Form.App (Form.Const Form.Inter, [ a; b ]) ->
    Vset (as_set m env a land as_set m env b)
  | Form.App (Form.Const Form.Diff, [ a; b ]) ->
    Vset (as_set m env a land lnot (as_set m env b) land full_mask m.universe)
  | Form.App (Form.Const Form.Subseteq, [ a; b ]) ->
    Vbool (sub m.universe (as_set m env a) (as_set m env b))
  | Form.App (Form.Const Form.Subset, [ a; b ]) ->
    Vbool (strict_sub m.universe (as_set m env a) (as_set m env b))
  | Form.App (Form.Const Form.FiniteSet, es) ->
    Vset (List.fold_left (fun mask e -> mask lor (1 lsl as_obj m env e)) 0 es)
  | Form.App (Form.Const Form.Card, [ s ]) ->
    let mask = as_set m env s in
    let n = ref 0 in
    for i = 0 to m.universe - 1 do
      if (mask lsr i) land 1 = 1 then incr n
    done;
    Vint !n
  | Form.App (Form.Const Form.FieldRead, [ fld; x ]) ->
    let arr = as_fun m env fld in
    Vobj arr.(as_obj m env x)
  | Form.App (Form.Const Form.FieldWrite, [ fld; x; v ]) ->
    let arr = Array.copy (as_fun m env fld) in
    arr.(as_obj m env x) <- as_obj m env v;
    Vfun arr
  | Form.App (Form.Const Form.Rtrancl, [ p; a; b ]) ->
    let rel = tabulate_relation m env p in
    Vbool (rtrancl_reaches m.universe rel (as_obj m env a) (as_obj m env b))
  | Form.Binder (Form.Forall, vars, body) ->
    Vbool (for_all_assignments m env vars body)
  | Form.Binder (Form.Exists, vars, body) ->
    Vbool (not (for_all_assignments_neg m env vars body))
  | Form.Binder (Form.Comprehension, [ (x, ty) ], body) -> (
    match ty with
    | Ftype.Obj | Ftype.Tvar _ ->
      let mask = ref 0 in
      for o = 0 to m.universe - 1 do
        if as_bool m ((x, Vobj o) :: env) body then mask := !mask lor (1 lsl o)
      done;
      Vset !mask
    | _ -> unsupported "comprehension over %s" (Ftype.to_string ty))
  | Form.Binder (Form.Lambda, [ (x, (Ftype.Obj | Ftype.Tvar _)) ], body) ->
    Vfun (Array.init m.universe (fun o -> as_obj m ((x, Vobj o) :: env) body))
  | Form.App (g, args) -> (
    (* application of a function-valued term, e.g. a lambda or a field
       variable applied directly *)
    match eval m env g, args with
    | Vfun arr, [ x ] -> Vobj arr.(as_obj m env x)
    | _ -> unsupported "unevaluable application %s" (Pprint.to_string f))
  | g -> unsupported "unevaluable formula %s" (Pprint.to_string g)

and cmp m env int_op set_op a b =
  match eval m env a, eval m env b with
  | Vint x, Vint y -> Vbool (int_op x y)
  | Vset x, Vset y -> Vbool (set_op m.universe x y)
  | _ -> unsupported "ill-sorted comparison"

and sub u x y = x land lnot y land full_mask u = 0
and strict_sub u x y = sub u x y && x <> y

(* universal quantification over every assignment of [vars] *)
and for_all_assignments m env vars body =
  match vars with
  | [] -> as_bool m env body
  | (x, ty) :: rest ->
    List.for_all
      (fun v -> for_all_assignments m ((x, v) :: env) rest body)
      (domain m.universe ty)

and for_all_assignments_neg m env vars body =
  match vars with
  | [] -> not (as_bool m env body)
  | (x, ty) :: rest ->
    List.for_all
      (fun v -> for_all_assignments_neg m ((x, v) :: env) rest body)
      (domain m.universe ty)

and tabulate_relation m env p : bool array array =
  let u = m.universe in
  let with_vars x y body =
    Array.init u (fun i ->
        Array.init u (fun j ->
            as_bool m ((x, Vobj i) :: (y, Vobj j) :: env) body))
  in
  match Form.strip_types p with
  | Form.Binder (Form.Lambda, [ (x, _); (y, _) ], body) -> with_vars x y body
  | Form.Binder (Form.Lambda, [ (x, _) ], body) -> (
    match Form.strip_types body with
    | Form.Binder (Form.Lambda, [ (y, _) ], body') -> with_vars x y body'
    | _ -> unsupported "rtrancl over non-binary lambda")
  | _ -> unsupported "rtrancl over non-lambda %s" (Pprint.to_string p)

and rtrancl_reaches u rel a b =
  (* reflexive-transitive closure by saturation over a <= u*u frontier *)
  let reach = Array.make u false in
  reach.(a) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to u - 1 do
      if reach.(i) then
        for j = 0 to u - 1 do
          if rel.(i).(j) && not reach.(j) then begin
            reach.(j) <- true;
            changed := true
          end
        done
    done
  done;
  reach.(b)

and as_bool m env g =
  match eval m env g with
  | Vbool b -> b
  | _ -> unsupported "expected bool: %s" (Pprint.to_string g)

and as_int m env g =
  match eval m env g with
  | Vint i -> i
  | _ -> unsupported "expected int: %s" (Pprint.to_string g)

and as_set m env g =
  match eval m env g with
  | Vset s -> s
  | _ -> unsupported "expected set: %s" (Pprint.to_string g)

and as_obj m env g =
  match eval m env g with
  | Vobj o -> o
  | _ -> unsupported "expected obj: %s" (Pprint.to_string g)

and as_fun m env g =
  match eval m env g with
  | Vfun arr -> arr
  | _ -> unsupported "expected field: %s" (Pprint.to_string g)

(** Truth value of a closed-under-[m] formula.  Raises {!Unsupported} when
    the formula leaves the evaluable fragment. *)
let truth (m : model) (f : Form.t) : bool = as_bool m [] f

let truth_opt (m : model) (f : Form.t) : bool option =
  match truth m f with b -> Some b | exception Unsupported _ -> None

(* ------------------------------------------------------------------ *)
(* The exhaustive bounded oracle                                       *)
(* ------------------------------------------------------------------ *)

type outcome =
  | No_countermodel of { models_checked : int; max_universe_checked : int }
      (** every enumerated model satisfied the sequent *)
  | Countermodel of model
      (** a genuine refutation: the sequent is falsifiable *)
  | Unsupported_oracle of string
      (** the sequent leaves the evaluable fragment (e.g. integer-sorted
          quantifiers, division, arrays) *)

(* the value domain of a free variable of the given sort, or None when the
   sort cannot be finitely enumerated *)
let free_var_domain (u : int) (int_range : int) (ty : Ftype.t) :
    value list option =
  let rec ground : Ftype.t -> Ftype.t = function
    | Ftype.Tvar _ -> Ftype.Obj
    | Ftype.Set t -> Ftype.Set (ground t)
    | Ftype.Arrow (a, b) -> Ftype.Arrow (ground a, ground b)
    | Ftype.Tuple ts -> Ftype.Tuple (List.map ground ts)
    | (Ftype.Bool | Ftype.Int | Ftype.Obj) as t -> t
  in
  match ground ty with
  | Ftype.Bool -> Some [ Vbool false; Vbool true ]
  | Ftype.Int ->
    Some (List.init ((2 * int_range) + 1) (fun i -> Vint (i - int_range)))
  | Ftype.Obj -> Some (List.init u (fun o -> Vobj o))
  | Ftype.Set Ftype.Obj -> Some (List.init (1 lsl u) (fun mask -> Vset mask))
  | Ftype.Arrow (Ftype.Obj, Ftype.Obj) ->
    (* fields respect the heap convention null..f = null, matching the
       axiom every prover builds in; models violating it are not models
       of the intended semantics *)
    let count = int_of_float (float_of_int u ** float_of_int (u - 1)) in
    Some
      (List.init count (fun code ->
           let arr = Array.make u 0 in
           let c = ref code in
           for i = 1 to u - 1 do
             arr.(i) <- !c mod u;
             c := !c / u
           done;
           Vfun arr))
  | _ -> None

exception Refuted of model
exception Budget

(** [check s] exhaustively evaluates sequent [s] over every model whose
    universe has at most [max_universe] objects and whose integer variables
    range over [-int_range .. int_range].  [env] supplies sorts for free
    variables the type checker cannot infer on its own.  [max_models] caps
    the total number of models enumerated (the count is still reported
    honestly in [No_countermodel]). *)
let check ?(env = Typecheck.Smap.empty) ?(max_universe = 3) ?(int_range = 4)
    ?max_models (s : Sequent.t) : outcome =
  match Typecheck.infer ~env (Sequent.to_form s) with
  | exception Typecheck.Type_error msg ->
    Unsupported_oracle ("ill-typed: " ^ msg)
  | f, ty, free -> (
    match ty with
    | Ftype.Bool | Ftype.Tvar _ -> (
      let fvs = Form.fv_list f in
      let sort_of x =
        (* [free] omits env-bound variables, so consult [env] first *)
        match Typecheck.Smap.find_opt x env with
        | Some t -> t
        | None -> (
          match Typecheck.Smap.find_opt x free with
          | Some t -> t
          | None -> Ftype.Obj)
      in
      let checked = ref 0 in
      let try_universe u =
        let doms =
          List.map
            (fun x ->
              match free_var_domain u int_range (sort_of x) with
              | Some vs -> (x, vs)
              | None ->
                unsupported "cannot enumerate %s : %s" x
                  (Ftype.to_string (sort_of x)))
            fvs
        in
        let rec go vars = function
          | [] ->
            incr checked;
            (match max_models with
            | Some cap when !checked > cap -> raise Budget
            | _ -> ());
            let m = { universe = u; vars } in
            if not (truth m f) then raise (Refuted m)
          | (x, vs) :: rest ->
            List.iter (fun v -> go ((x, v) :: vars) rest) vs
        in
        go [] doms
      in
      let max_done = ref 0 in
      match
        for u = 1 to max_universe do
          try_universe u;
          max_done := u
        done
      with
      | () ->
        No_countermodel
          { models_checked = !checked; max_universe_checked = !max_done }
      | exception Refuted m -> Countermodel m
      | exception Budget ->
        No_countermodel
          { models_checked = !checked - 1; max_universe_checked = !max_done }
      | exception Unsupported msg -> Unsupported_oracle msg)
    | ty -> Unsupported_oracle ("not a formula: " ^ Ftype.to_string ty))

let outcome_to_string = function
  | No_countermodel { models_checked; max_universe_checked } ->
    Printf.sprintf "no countermodel (%d models, universes up to %d)"
      models_checked max_universe_checked
  | Countermodel m -> "countermodel: " ^ model_to_string m
  | Unsupported_oracle msg -> "oracle unsupported: " ^ msg
