(** Proof obligations and the common decision-procedure interface.

    Every reasoner in the portfolio — SMT, MONA, BAPA, the first-order
    prover — consumes a {!type:t} and produces a {!type:verdict}.  Provers
    must never guess: [Valid] claims a proof, [Invalid] claims a genuine
    countermodel, anything else is [Unknown] (the dispatcher then tries the
    next prover, mirroring the paper's multi-prover architecture). *)

type t = {
  name : string; (** where the obligation came from, e.g. "List.add: post" *)
  hyps : Form.t list;
  goal : Form.t;
}

type verdict =
  | Valid
  | Invalid of string (** description of a countermodel *)
  | Unknown of string (** why the prover gave up *)

type prover = {
  prover_name : string;
  prove : t -> verdict;
}

let make ?(name = "goal") hyps goal = { name; hyps; goal }

(** The sequent as a single implication formula. *)
let to_form (s : t) : Form.t = Form.mk_impl_chain s.hyps s.goal

(** Conversely: split an implication chain into a sequent. *)
let of_form ?(name = "goal") (f : Form.t) : t =
  let hyps, goal = Form.hypotheses_and_goal f in
  { name; hyps; goal }

let pp ppf (s : t) =
  Format.fprintf ppf "@[<v>%a@]"
    (fun ppf () ->
      List.iter (fun h -> Format.fprintf ppf "%a@," Pprint.pp h) s.hyps;
      Format.fprintf ppf "|- %a" Pprint.pp s.goal)
    ()

let verdict_to_string = function
  | Valid -> "valid"
  | Invalid m -> "invalid (" ^ m ^ ")"
  | Unknown m -> "unknown (" ^ m ^ ")"
