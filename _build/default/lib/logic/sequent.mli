(** Proof obligations and the common decision-procedure interface.

    Every reasoner in the portfolio — SMT, MONA, BAPA, the first-order
    prover — consumes a {!type:t} and produces a {!type:verdict}. *)

type t = {
  name : string;  (** provenance, e.g. ["List.add: postcondition"] *)
  hyps : Form.t list;
  goal : Form.t;
}

type verdict =
  | Valid  (** proved *)
  | Invalid of string  (** refuted, with a countermodel description *)
  | Unknown of string  (** gave up, with a reason *)

type prover = {
  prover_name : string;
  prove : t -> verdict;
}

(** Build a sequent; [name] defaults to ["goal"]. *)
val make : ?name:string -> Form.t list -> Form.t -> t

(** The sequent as a single implication formula. *)
val to_form : t -> Form.t

(** Split an implication chain back into a sequent. *)
val of_form : ?name:string -> Form.t -> t

(** Canonical form for verdict caching: alpha-normalized hypotheses and
    goal, hypotheses sorted and deduplicated by printed form. *)
val canonicalize : t -> t

(** Stable cache key: MD5 of the canonicalized sequent's printed form.
    Invariant under hypothesis reordering, duplicate hypotheses,
    bound-variable renaming and type annotations; the [name] field is
    ignored. *)
val digest : t -> string

val pp : Format.formatter -> t -> unit
val verdict_to_string : verdict -> string
