(** Hindley-Milner style type inference for specification formulas.

    Besides checking well-typedness, inference resolves the operators that
    the parser cannot disambiguate without types: [<=], [<] and [-] denote
    integer comparison/subtraction or set inclusion/difference depending on
    their operands.  {!disambiguate} rewrites such nodes to the proper
    set-theoretic constants. *)

module Smap = Map.Make (String)

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type env = Ftype.t Smap.t

let env_of_list l = List.fold_left (fun m (x, t) -> Smap.add x t m) Smap.empty l

type state = {
  mutable subst : Ftype.Subst.subst;
  mutable next_tvar : int;
  free : (string, Ftype.t) Hashtbl.t; (* inferred types of free variables *)
}

let fresh st =
  st.next_tvar <- st.next_tvar + 1;
  Ftype.Tvar st.next_tvar

let unify st a b ctx =
  try st.subst <- Ftype.unify st.subst a b
  with Ftype.Unify_failure (x, y) ->
    type_error "cannot unify %s with %s in %s" (Ftype.to_string x)
      (Ftype.to_string y) ctx

let resolve st t = Ftype.Subst.apply st.subst t

(* Renumber parser-generated type variables so that inference owns a fresh,
   disjoint supply. *)
let freshen_tvars st (ty : Ftype.t) : Ftype.t =
  let mapping = Hashtbl.create 4 in
  let rec go (t : Ftype.t) : Ftype.t =
    match t with
    | Bool | Int | Obj -> t
    | Set e -> Set (go e)
    | Arrow (a, r) -> Arrow (go a, go r)
    | Tuple ts -> Tuple (List.map go ts)
    | Tvar i -> (
      match Hashtbl.find_opt mapping i with
      | Some v -> v
      | None ->
        let v = fresh st in
        Hashtbl.add mapping i v;
        v)
  in
  go ty

(* Type of each unambiguous constant, instantiated with fresh variables.
   Returns (argument types, result type). *)
let const_signature st (c : Form.const) : Ftype.t list * Ftype.t =
  let a () = fresh st in
  match c with
  | Form.BoolLit _ -> ([], Bool)
  | IntLit _ -> ([], Int)
  | Null -> ([], Obj)
  | Not -> ([ Bool ], Bool)
  | And | Or -> ([], Bool) (* variadic; handled specially *)
  | Impl | Iff -> ([ Bool; Bool ], Bool)
  | Ite ->
    let t = a () in
    ([ Bool; t; t ], t)
  | Eq ->
    let t = a () in
    ([ t; t ], Bool)
  | Lt | Le | Gt | Ge ->
    (* ambiguous: t is either Int or a set; constrained to t,t -> Bool and
       resolved in the rebuild phase *)
    let t = a () in
    ([ t; t ], Bool)
  | Plus | Mult | Div | Mod -> ([ Int; Int ], Int)
  | Minus ->
    let t = a () in
    ([ t; t ], t)
  | Uminus -> ([ Int ], Int)
  | EmptySet | UnivSet -> ([], Set (a ()))
  | FiniteSet -> ([], Set (a ())) (* variadic; handled specially *)
  | Union | Inter | Diff ->
    let s = Ftype.Set (a ()) in
    ([ s; s ], s)
  | Elem ->
    let t = a () in
    ([ t; Set t ], Bool)
  | Subseteq | Subset ->
    let s = Ftype.Set (a ()) in
    ([ s; s ], Bool)
  | Card -> ([ Set (a ()) ], Int)
  | FieldRead ->
    let dom = a () and rng = a () in
    ([ Arrow (dom, rng); dom ], rng)
  | FieldWrite ->
    let dom = a () and rng = a () in
    ([ Arrow (dom, rng); dom; rng ], Arrow (dom, rng))
  | ArrayRead ->
    let rng = a () in
    ([ Arrow (Obj, Arrow (Int, rng)); Obj; Int ], rng)
  | ArrayWrite ->
    let rng = a () in
    let arr : Ftype.t = Arrow (Obj, Arrow (Int, rng)) in
    ([ arr; Obj; Int; rng ], arr)
  | Rtrancl ->
    let t = a () in
    ([ Arrow (t, Arrow (t, Bool)); t; t ], Bool)
  | Tree -> ([], Bool) (* variadic over Obj => Obj fields *)
  | Old ->
    let t = a () in
    ([ t ], t)

(* Inference producing a rebuild thunk: forcing the thunk after the final
   substitution is known yields the disambiguated formula. *)
let rec infer_form st (env : env) (f : Form.t) : Ftype.t * (unit -> Form.t) =
  match f with
  | Form.Var x -> (
    match Smap.find_opt x env with
    | Some t -> (t, fun () -> f)
    | None -> (
      match Hashtbl.find_opt st.free x with
      | Some t -> (t, fun () -> f)
      | None ->
        let t = fresh st in
        Hashtbl.add st.free x t;
        (t, fun () -> f)))
  | Const c ->
    let args, result = const_signature st c in
    (Ftype.arrows args result, fun () -> f)
  | App (Const And, fs) | App (Const Or, fs) ->
    let rebuilds =
      List.map
        (fun g ->
          let t, rb = infer_form st env g in
          unify st t Bool (Pprint.to_string g);
          rb)
        fs
    in
    let c = match f with App (h, _) -> h | _ -> assert false in
    (Bool, fun () -> Form.App (c, List.map (fun rb -> rb ()) rebuilds))
  | App (Const FiniteSet, es) ->
    let elt = fresh st in
    let rebuilds =
      List.map
        (fun e ->
          let t, rb = infer_form st env e in
          unify st t elt (Pprint.to_string e);
          rb)
        es
    in
    ( Set elt,
      fun () -> Form.App (Const FiniteSet, List.map (fun rb -> rb ()) rebuilds) )
  | App (Const Tree, flds) ->
    let rebuilds =
      List.map
        (fun g ->
          let t, rb = infer_form st env g in
          unify st t (Arrow (Obj, Obj)) (Pprint.to_string g);
          rb)
        flds
    in
    (Bool, fun () -> Form.App (Const Tree, List.map (fun rb -> rb ()) rebuilds))
  | App (Const ((Lt | Le | Gt | Ge | Minus) as c), [ x; y ]) ->
    let tx, rbx = infer_form st env x in
    let ty_, rby = infer_form st env y in
    unify st tx ty_ (Pprint.to_string f);
    let result = match c with Minus -> tx | _ -> Ftype.Bool in
    let rebuild () =
      let resolved = resolve st tx in
      let c' : Form.const =
        match resolved, c with
        | Ftype.Set _, Lt -> Subset
        | Ftype.Set _, Le -> Subseteq
        | Ftype.Set _, Gt -> Subset
        | Ftype.Set _, Ge -> Subseteq
        | Ftype.Set _, Minus -> Diff
        | _, _ -> c
      in
      (* a > b on sets is printed/stored as b < a *)
      match c', c with
      | (Subset | Subseteq), (Gt | Ge) -> Form.App (Const c', [ rby (); rbx () ])
      | _ -> Form.App (Const c', [ rbx (); rby () ])
    in
    (match c with
    | Minus -> ()
    | _ -> ());
    (result, rebuild)
  | App (g, args) ->
    let tg, rbg = infer_form st env g in
    let rbs =
      List.map
        (fun arg ->
          let targ, rb = infer_form st env arg in
          (targ, rb))
        args
    in
    let result = fresh st in
    let expected = Ftype.arrows (List.map fst rbs) result in
    unify st tg expected (Pprint.to_string f);
    (result, fun () -> Form.App (rbg (), List.map (fun (_, rb) -> rb ()) rbs))
  | Binder (b, vars, body) ->
    let vars = List.map (fun (x, t) -> (x, freshen_tvars st t)) vars in
    let env' = List.fold_left (fun e (x, t) -> Smap.add x t e) env vars in
    let tb, rb = infer_form st env' body in
    let result =
      match b, vars with
      | (Forall | Exists), _ ->
        unify st tb Bool (Pprint.to_string body);
        Ftype.Bool
      | Lambda, _ ->
        Ftype.arrows (List.map snd vars) tb
      | Comprehension, [ (_, t) ] ->
        unify st tb Bool (Pprint.to_string body);
        Ftype.Set t
      | Comprehension, _ ->
        type_error "comprehension must bind exactly one variable"
    in
    ( result,
      fun () ->
        Form.Binder (b, List.map (fun (x, t) -> (x, resolve st t)) vars, rb ())
    )
  | TypedForm (g, ty) ->
    let ty = freshen_tvars st ty in
    let tg, rb = infer_form st env g in
    unify st tg ty (Pprint.to_string f);
    (ty, fun () -> Form.TypedForm (rb (), resolve st ty))

(** Infer the type of [f] under [env]; returns the disambiguated formula,
    its type, and the inferred types of its free variables.  Raises
    {!Type_error} if [f] is ill-typed. *)
let infer ?(env = Smap.empty) (f : Form.t) : Form.t * Ftype.t * env =
  let st = { subst = Ftype.Subst.empty; next_tvar = 0; free = Hashtbl.create 16 } in
  let t, rebuild = infer_form st env f in
  let free =
    Hashtbl.fold (fun x tx m -> Smap.add x (resolve st tx) m) st.free Smap.empty
  in
  (rebuild (), resolve st t, free)

(** Check that [f] is a well-typed boolean formula and resolve ambiguous
    operators.  Raises {!Type_error} when [f] is not boolean. *)
let check_formula ?(env = Smap.empty) (f : Form.t) : Form.t =
  let st = { subst = Ftype.Subst.empty; next_tvar = 0; free = Hashtbl.create 16 } in
  let t, rebuild = infer_form st env f in
  unify st t Bool "formula";
  rebuild ()

(** Best-effort disambiguation: on type error the input is returned
    unchanged (translators will then reject out-of-fragment parts). *)
let disambiguate ?(env = Smap.empty) (f : Form.t) : Form.t =
  match check_formula ~env f with
  | f' -> f'
  | exception Type_error _ -> f

let well_typed ?(env = Smap.empty) (f : Form.t) : bool =
  match infer ~env f with _ -> true | exception Type_error _ -> false
