lib/logic/simplify.ml: Form List
