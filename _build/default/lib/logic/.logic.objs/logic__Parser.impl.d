lib/logic/parser.ml: Array Form Format Ftype List String
