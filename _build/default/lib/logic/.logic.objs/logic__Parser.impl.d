lib/logic/parser.ml: Array Atomic Form Format Ftype List String
