lib/logic/ftype.ml: Format Int List Map
