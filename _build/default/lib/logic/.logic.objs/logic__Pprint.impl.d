lib/logic/pprint.ml: Buffer Form Format Ftype List String
