lib/logic/pprint.ml: Form Format List String
