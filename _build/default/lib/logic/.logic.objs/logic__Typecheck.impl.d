lib/logic/typecheck.ml: Form Format Ftype Hashtbl List Map Pprint String
