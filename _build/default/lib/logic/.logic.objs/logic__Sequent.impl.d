lib/logic/sequent.ml: Form Format List Pprint
