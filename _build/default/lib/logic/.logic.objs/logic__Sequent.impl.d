lib/logic/sequent.ml: Buffer Digest Form Format List Pprint Printexc String Trace
