lib/logic/form.ml: Ftype List Map Printf Set String
