lib/logic/form.ml: Atomic Ftype List Map Printf Set String
