lib/logic/sequent.mli: Form Format
