lib/logic/instantiate.ml: Form Ftype List Sequent Simplify Typecheck
