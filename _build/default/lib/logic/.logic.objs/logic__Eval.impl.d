lib/logic/eval.ml: Array Form Format Ftype List Pprint Printf Sequent String Sys Typecheck
