(** The Jahob specification logic: a subset of Isabelle/HOL.

    Everything the system manipulates — method contracts, class invariants,
    abstraction functions, verification conditions — is a value of type
    {!type:t}.  The representation follows the original Jahob design: a
    lambda-structured tree of applications, constants and binders, so that
    set comprehensions, reflexive-transitive closure and field reads all
    live in a single language.  Translations into each decision procedure
    are partial functions defined elsewhere. *)

type ident = string

type binder =
  | Forall          (** [ALL x. F] *)
  | Exists          (** [EX x. F] *)
  | Lambda          (** [% x. F] *)
  | Comprehension   (** [{x. F}] *)

type const =
  (* literals *)
  | BoolLit of bool
  | IntLit of int
  | Null
  (* propositional *)
  | Not
  | And
  | Or
  | Impl
  | Iff
  | Ite
  (* equality and order *)
  | Eq
  | Lt
  | Le
  | Gt
  | Ge
  (* integer arithmetic *)
  | Plus
  | Minus
  | Uminus
  | Mult
  | Div
  | Mod
  (* sets *)
  | EmptySet
  | UnivSet
  | FiniteSet       (** [{e1, ..., en}], applied to its elements *)
  | Union
  | Inter
  | Diff
  | Elem            (** [x : S] *)
  | Subseteq        (** [S <= T] on sets *)
  | Subset          (** [S < T] strict *)
  | Card            (** [card S] *)
  (* heap *)
  | FieldRead       (** [fieldRead f x], surface syntax [x..f] *)
  | FieldWrite      (** [fieldWrite f x v], a function-valued update *)
  | ArrayRead
  | ArrayWrite
  | Rtrancl         (** [rtrancl_pt (% x y. F) a b] *)
  | Tree            (** [tree [f1, ..., fn]]: fields form a forest *)
  | Old             (** [old e]: pre-state value, eliminated by vcgen *)

type t =
  | Var of ident
  | Const of const
  | App of t * t list
  | Binder of binder * (ident * Ftype.t) list * t
  | TypedForm of t * Ftype.t

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let mk_var x = Var x
let mk_int n = Const (IntLit n)
let mk_bool b = Const (BoolLit b)
let mk_true = Const (BoolLit true)
let mk_false = Const (BoolLit false)
let mk_null = Const Null

let mk_app f args = if args = [] then f else App (f, args)

(** Strip outer type annotations. *)
let rec strip_types f =
  match f with
  | TypedForm (g, _) -> strip_types g
  | Var _ | Const _ | App _ | Binder _ -> f

let is_true f = match strip_types f with Const (BoolLit true) -> true | _ -> false
let is_false f = match strip_types f with Const (BoolLit false) -> true | _ -> false

(** Conjunction with unit laws and flattening: [mk_and] never produces a
    nested [And] and never contains [True] conjuncts. *)
let mk_and fs =
  let rec gather acc f =
    match strip_types f with
    | App (Const And, args) -> List.fold_left gather acc args
    | g when is_true g -> acc
    | _ -> f :: acc
  in
  let fs = List.rev (List.fold_left gather [] fs) in
  if List.exists is_false fs then mk_false
  else
    match fs with
    | [] -> mk_true
    | [ f ] -> f
    | _ -> App (Const And, fs)

let mk_or fs =
  let rec gather acc f =
    match strip_types f with
    | App (Const Or, args) -> List.fold_left gather acc args
    | g when is_false g -> acc
    | _ -> f :: acc
  in
  let fs = List.rev (List.fold_left gather [] fs) in
  if List.exists is_true fs then mk_true
  else
    match fs with
    | [] -> mk_false
    | [ f ] -> f
    | _ -> App (Const Or, fs)

let mk_not f =
  match strip_types f with
  | Const (BoolLit b) -> mk_bool (not b)
  | App (Const Not, [ g ]) -> g
  | _ -> App (Const Not, [ f ])

let mk_impl a b =
  if is_true a then b
  else if is_false a then mk_true
  else if is_true b then mk_true
  else App (Const Impl, [ a; b ])

let mk_iff a b =
  if is_true a then b
  else if is_true b then a
  else if is_false a then mk_not b
  else if is_false b then mk_not a
  else App (Const Iff, [ a; b ])

let mk_ite c a b = App (Const Ite, [ c; a; b ])
let mk_eq a b = App (Const Eq, [ a; b ])
let mk_neq a b = mk_not (mk_eq a b)
let mk_lt a b = App (Const Lt, [ a; b ])
let mk_le a b = App (Const Le, [ a; b ])
let mk_gt a b = App (Const Gt, [ a; b ])
let mk_ge a b = App (Const Ge, [ a; b ])
let mk_plus a b = App (Const Plus, [ a; b ])
let mk_minus a b = App (Const Minus, [ a; b ])
let mk_uminus a = App (Const Uminus, [ a ])
let mk_mult a b = App (Const Mult, [ a; b ])
let mk_emptyset = Const EmptySet
let mk_univ = Const UnivSet
let mk_finite_set es = if es = [] then mk_emptyset else App (Const FiniteSet, es)
let mk_singleton e = mk_finite_set [ e ]

let mk_union a b =
  match strip_types a, strip_types b with
  | Const EmptySet, _ -> b
  | _, Const EmptySet -> a
  | _, _ -> App (Const Union, [ a; b ])

let mk_inter a b = App (Const Inter, [ a; b ])

let mk_diff a b =
  match strip_types b with
  | Const EmptySet -> a
  | _ -> App (Const Diff, [ a; b ])

let mk_elem x s = App (Const Elem, [ x; s ])
let mk_notelem x s = mk_not (mk_elem x s)
let mk_subseteq a b = App (Const Subseteq, [ a; b ])
let mk_subset a b = App (Const Subset, [ a; b ])
let mk_card s = App (Const Card, [ s ])
let mk_field_read fld obj = App (Const FieldRead, [ fld; obj ])
let mk_field_write fld obj v = App (Const FieldWrite, [ fld; obj; v ])
let mk_array_read arr obj idx = App (Const ArrayRead, [ arr; obj; idx ])
let mk_array_write arr obj idx v = App (Const ArrayWrite, [ arr; obj; idx; v ])
let mk_rtrancl p a b = App (Const Rtrancl, [ p; a; b ])
let mk_old e = App (Const Old, [ e ])
let mk_tree flds = App (Const Tree, flds)

let mk_binder b vars body = if vars = [] then body else Binder (b, vars, body)

let mk_forall vars body =
  if is_true body then mk_true else mk_binder Forall vars body

let mk_exists vars body =
  if is_false body then mk_false else mk_binder Exists vars body

let mk_lambda vars body = mk_binder Lambda vars body
let mk_comprehension vars body = Binder (Comprehension, vars, body)
let mk_typed f ty = TypedForm (f, ty)

(** n-ary conjunction/implication helpers used by the VC generator. *)
let mk_impl_chain hyps goal = mk_impl (mk_and hyps) goal

(* ------------------------------------------------------------------ *)
(* Structural equality (modulo type annotations)                       *)
(* ------------------------------------------------------------------ *)

let const_equal (a : const) (b : const) = a = b

(* alpha-equivalence: binder names are compared through an environment *)
let equal a b =
  let rec eq (env : (string * string) list) a b =
    match strip_types a, strip_types b with
    | Var x, Var y -> (
      match List.assoc_opt x env with
      | Some y' -> String.equal y y'
      | None ->
        (* x free on the left: y must be the same free name *)
        String.equal x y && not (List.exists (fun (_, y') -> y' = y) env))
    | Const c, Const d -> const_equal c d
    | App (f, xs), App (g, ys) ->
      eq env f g
      && List.length xs = List.length ys
      && List.for_all2 (eq env) xs ys
    | Binder (b1, v1, f1), Binder (b2, v2, f2) ->
      b1 = b2
      && List.length v1 = List.length v2
      && eq
           (List.map2 (fun (x, _) (y, _) -> (x, y)) v1 v2 @ env)
           f1 f2
    | (Var _ | Const _ | App _ | Binder _), _ -> false
    | TypedForm _, _ -> assert false (* strip_types never returns TypedForm *)
  in
  eq [] a b

(* ------------------------------------------------------------------ *)
(* Free variables and substitution                                     *)
(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)
module Smap = Map.Make (String)

let rec fv_acc bound acc f =
  match f with
  | Var x -> if Sset.mem x bound then acc else Sset.add x acc
  | Const _ -> acc
  | App (g, args) -> List.fold_left (fv_acc bound) (fv_acc bound acc g) args
  | Binder (_, vars, body) ->
    let bound = List.fold_left (fun b (x, _) -> Sset.add x b) bound vars in
    fv_acc bound acc body
  | TypedForm (g, _) -> fv_acc bound acc g

(** Free variables of a formula. *)
let fv f = fv_acc Sset.empty Sset.empty f

let fv_list f = Sset.elements (fv f)

(* Fresh-name generation: a global counter suffices because generated names
   use a reserved separator that the parsers never produce.  Atomic so that
   domains proving obligations in parallel never mint the same name. *)
let fresh_counter = Atomic.make 0

let fresh_name base =
  Printf.sprintf "%s__%d" base (Atomic.fetch_and_add fresh_counter 1 + 1)

(** Capture-avoiding parallel substitution.  [subst map f] replaces each
    free occurrence of a variable bound in [map]. *)
let rec subst (map : t Smap.t) f =
  if Smap.is_empty map then f
  else
    match f with
    | Var x -> ( match Smap.find_opt x map with Some g -> g | None -> f)
    | Const _ -> f
    | App (g, args) -> App (subst map g, List.map (subst map) args)
    | TypedForm (g, ty) -> TypedForm (subst map g, ty)
    | Binder (b, vars, body) ->
      (* drop bindings shadowed by the binder *)
      let map = List.fold_left (fun m (x, _) -> Smap.remove x m) map vars in
      if Smap.is_empty map then f
      else
        (* rename binder variables that would capture *)
        let clashing =
          Smap.fold (fun _ g acc -> Sset.union (fv g) acc) map Sset.empty
        in
        let rename (vars_rev, ren) (x, ty) =
          if Sset.mem x clashing then
            let x' = fresh_name x in
            ((x', ty) :: vars_rev, Smap.add x (Var x') ren)
          else ((x, ty) :: vars_rev, ren)
        in
        let vars_rev, ren = List.fold_left rename ([], Smap.empty) vars in
        let vars' = List.rev vars_rev in
        let body = if Smap.is_empty ren then body else subst ren body in
        Binder (b, vars', subst map body)

let subst1 x g f = subst (Smap.singleton x g) f

(** Alpha-normalization: every bound variable is renamed to a canonical
    name determined only by its binding depth ([?b0], [?b1], ...).  Type
    annotations are stripped by default; [~keep_types:true] preserves them
    (the verdict-cache digest needs sorts, or [ALL x::int] and
    [ALL x::obj] obligations would collide).  Alpha-equivalent formulas
    normalize to structurally identical trees, so their printed forms —
    and hence their digests — coincide.  The [?] prefix cannot clash with
    source-level identifiers: no parser produces it. *)
let alpha_normalize ?(keep_types = false) f =
  let rec go (env : ident Smap.t) (depth : int) f =
    match f with
    | TypedForm (g, ty) ->
      if keep_types then TypedForm (go env depth g, ty) else go env depth g
    | Var x -> ( match Smap.find_opt x env with Some y -> Var y | None -> f)
    | Const _ -> f
    | App (g, args) -> App (go env depth g, List.map (go env depth) args)
    | Binder (b, vars, body) ->
      let vars_rev, env, depth =
        List.fold_left
          (fun (vs, env, d) (x, ty) ->
            let x' = Printf.sprintf "?b%d" d in
            ((x', ty) :: vs, Smap.add x x' env, d + 1))
          ([], env, depth) vars
      in
      Binder (b, List.rev vars_rev, go env depth body)
  in
  go Smap.empty 0 f

let subst_list pairs f =
  subst (List.fold_left (fun m (x, g) -> Smap.add x g m) Smap.empty pairs) f

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

(** Bottom-up transformation: applies [fn] to every node after
    transforming its children. *)
let rec map_bottom_up fn f =
  let f' =
    match f with
    | Var _ | Const _ -> f
    | App (g, args) -> App (map_bottom_up fn g, List.map (map_bottom_up fn) args)
    | Binder (b, vars, body) -> Binder (b, vars, map_bottom_up fn body)
    | TypedForm (g, ty) -> TypedForm (map_bottom_up fn g, ty)
  in
  fn f'

(** Fold over all subformulas, top-down, including binders' bodies. *)
let rec fold fn acc f =
  let acc = fn acc f in
  match f with
  | Var _ | Const _ -> acc
  | App (g, args) -> List.fold_left (fold fn) (fold fn acc g) args
  | Binder (_, _, body) -> fold fn acc body
  | TypedForm (g, _) -> fold fn acc g

(** Size of the formula tree (number of nodes), used by benchmarks and by
    the dispatcher's cost heuristics. *)
let size f = fold (fun n _ -> n + 1) 0 f

(** All constants occurring in the formula. *)
let consts f =
  fold (fun acc g -> match g with Const c -> c :: acc | _ -> acc) [] f

(** Does any subformula satisfy [p]? *)
let exists_sub p f =
  let exception Found in
  try
    fold (fun () g -> if p g then raise Found) () f;
    false
  with Found -> true

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

(** Split a formula into its top-level conjuncts. *)
let conjuncts f =
  match strip_types f with
  | App (Const And, args) -> args
  | g when is_true g -> []
  | _ -> [ f ]

(** View an implication chain [h1 --> h2 --> ... --> g] as
    ([h1; h2; ...], g). *)
let rec hypotheses_and_goal f =
  match strip_types f with
  | App (Const Impl, [ a; b ]) ->
    let hs, g = hypotheses_and_goal b in
    (conjuncts a @ hs, g)
  | _ -> ([], f)
