(** Lexer for the Java subset.

    Specification annotations are comments whose first character after the
    comment opener is [':'] — [/*: ... */] and [//: ...] — exactly as in
    the paper.  Their text is returned as {!ANNOTATION} tokens for
    {!Annot} to parse; ordinary comments are skipped. *)

type token =
  | IDENT of string
  | INT_LIT of int
  | STRING_LIT of string
  | ANNOTATION of string (* contents of a /*: ... */ or //: ... comment *)
  | KW of string (* class public private static void int boolean if else
                    while return new null true false this *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | DOT
  | ASSIGN (* = *)
  | EQ (* == *)
  | NEQ (* != *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | ANDAND
  | OROR
  | BANG
  | EOF

exception Lex_error of string * int (* message, line *)

let keywords =
  [ "class"; "public"; "private"; "static"; "void"; "int"; "boolean"; "if";
    "else"; "while"; "return"; "new"; "null"; "true"; "false"; "this" ]

let token_to_string = function
  | IDENT s -> s
  | INT_LIT n -> string_of_int n
  | STRING_LIT s -> "\"" ^ s ^ "\""
  | ANNOTATION _ -> "<annotation>"
  | KW s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | DOT -> "."
  | ASSIGN -> "="
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize source text; annotation comments become single tokens with
    their line number. *)
let tokenize (src : string) : (token * int) array =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      (* line comment; //: is an annotation *)
      let annot = peek 2 = Some ':' in
      let start = !i + if annot then 3 else 2 in
      let j = ref start in
      while !j < n && src.[!j] <> '\n' do incr j done;
      if annot then emit (ANNOTATION (String.sub src start (!j - start)));
      i := !j
    end
    else if c = '/' && peek 1 = Some '*' then begin
      (* block comment; /*: is an annotation *)
      let annot = peek 2 = Some ':' in
      let start = !i + if annot then 3 else 2 in
      let j = ref start in
      let continue = ref true in
      while !continue do
        if !j + 1 >= n then
          raise (Lex_error ("unterminated comment", !line))
        else if src.[!j] = '*' && src.[!j + 1] = '/' then continue := false
        else begin
          if src.[!j] = '\n' then incr line;
          incr j
        end
      done;
      if annot then emit (ANNOTATION (String.sub src start (!j - start)));
      i := !j + 2
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do incr j done;
      emit (INT_LIT (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let word = String.sub src !i (!j - !i) in
      if List.mem word keywords then emit (KW word) else emit (IDENT word);
      i := !j
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      let buf = Buffer.create 16 in
      while !j < n && src.[!j] <> '"' do
        Buffer.add_char buf src.[!j];
        if src.[!j] = '\n' then incr line;
        incr j
      done;
      if !j >= n then raise (Lex_error ("unterminated string", !line));
      emit (STRING_LIT (Buffer.contents buf));
      i := !j + 1
    end
    else begin
      let two b t =
        if peek 1 = Some b then begin
          emit t;
          i := !i + 2;
          true
        end
        else false
      in
      (match c with
      | '(' -> emit LPAREN; incr i
      | ')' -> emit RPAREN; incr i
      | '{' -> emit LBRACE; incr i
      | '}' -> emit RBRACE; incr i
      | '[' -> emit LBRACKET; incr i
      | ']' -> emit RBRACKET; incr i
      | ',' -> emit COMMA; incr i
      | ';' -> emit SEMI; incr i
      | '.' -> emit DOT; incr i
      | '+' -> emit PLUS; incr i
      | '-' -> emit MINUS; incr i
      | '*' -> emit STAR; incr i
      | '/' -> emit SLASH; incr i
      | '%' -> emit PERCENT; incr i
      | '=' -> if not (two '=' EQ) then (emit ASSIGN; incr i)
      | '!' -> if not (two '=' NEQ) then (emit BANG; incr i)
      | '<' -> if not (two '=' LE) then (emit LT; incr i)
      | '>' -> if not (two '=' GE) then (emit GT; incr i)
      | '&' ->
        if not (two '&' ANDAND) then
          raise (Lex_error ("unexpected '&'", !line))
      | '|' ->
        if not (two '|' OROR) then raise (Lex_error ("unexpected '|'", !line))
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line)))
    end
  done;
  emit EOF;
  Array.of_list (List.rev !toks)
