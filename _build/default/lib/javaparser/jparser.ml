(** Recursive-descent parser for the Java subset with Jahob annotations.

    Accepts exactly the shape of the paper's figures: classes with fields
    (optionally [/*: claimedby C */]), specification-variable blocks,
    invariants, and methods whose contract annotation sits between the
    signature and the body. *)

open Jlexer

exception Error of string * int (* message, line *)

let error line fmt =
  Format.kasprintf (fun s -> raise (Error (s, line))) fmt

type state = { toks : (token * int) array; mutable pos : int }

let cur st = fst st.toks.(st.pos)
let cur_line st = snd st.toks.(st.pos)
let peek_at st k =
  if st.pos + k < Array.length st.toks then fst st.toks.(st.pos + k) else EOF

let advance st = st.pos <- st.pos + 1

let expect st t =
  if cur st = t then advance st
  else
    error (cur_line st) "expected '%s' but found '%s'" (token_to_string t)
      (token_to_string (cur st))

let expect_ident st =
  match cur st with
  | IDENT x ->
    advance st;
    x
  | t -> error (cur_line st) "expected identifier, found '%s'" (token_to_string t)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let parse_jtype st : Ast.jtype =
  let base =
    match cur st with
    | KW "int" ->
      advance st;
      Ast.Tint
    | KW "boolean" ->
      advance st;
      Ast.Tbool
    | KW "void" ->
      advance st;
      Ast.Tvoid
    | IDENT c ->
      advance st;
      Ast.Tclass c
    | t ->
      error (cur_line st) "expected a type, found '%s'" (token_to_string t)
  in
  let ty = ref base in
  while cur st = LBRACKET && peek_at st 1 = RBRACKET do
    advance st;
    advance st;
    ty := Ast.Tarray !ty
  done;
  !ty

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let rec loop acc =
    if cur st = OROR then begin
      advance st;
      loop (Ast.Binop (Ast.Or, acc, parse_and st))
    end
    else acc
  in
  loop (parse_and st)

and parse_and st =
  let rec loop acc =
    if cur st = ANDAND then begin
      advance st;
      loop (Ast.Binop (Ast.And, acc, parse_equality st))
    end
    else acc
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop acc =
    match cur st with
    | EQ ->
      advance st;
      loop (Ast.Binop (Ast.Eq, acc, parse_relational st))
    | NEQ ->
      advance st;
      loop (Ast.Binop (Ast.Neq, acc, parse_relational st))
    | _ -> acc
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop acc =
    match cur st with
    | LT -> advance st; loop (Ast.Binop (Ast.Lt, acc, parse_additive st))
    | LE -> advance st; loop (Ast.Binop (Ast.Le, acc, parse_additive st))
    | GT -> advance st; loop (Ast.Binop (Ast.Gt, acc, parse_additive st))
    | GE -> advance st; loop (Ast.Binop (Ast.Ge, acc, parse_additive st))
    | _ -> acc
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop acc =
    match cur st with
    | PLUS -> advance st; loop (Ast.Binop (Ast.Add, acc, parse_multiplicative st))
    | MINUS -> advance st; loop (Ast.Binop (Ast.Sub, acc, parse_multiplicative st))
    | _ -> acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    match cur st with
    | STAR -> advance st; loop (Ast.Binop (Ast.Mul, acc, parse_unary st))
    | SLASH -> advance st; loop (Ast.Binop (Ast.Div, acc, parse_unary st))
    | PERCENT -> advance st; loop (Ast.Binop (Ast.Mod, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match cur st with
  | BANG ->
    advance st;
    Ast.Not (parse_unary st)
  | MINUS ->
    advance st;
    Ast.Neg (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let atom = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    if cur st = LBRACKET then begin
      advance st;
      let idx = parse_expr st in
      expect st RBRACKET;
      atom := Ast.Index (!atom, idx)
    end
    else if cur st = DOT then begin
      advance st;
      let name = expect_ident st in
      if cur st = LPAREN then begin
        advance st;
        let args = parse_args st in
        atom :=
          Ast.Call
            { call_recv = Some !atom; call_class = None; call_name = name;
              call_args = args }
      end
      else atom := Ast.Field_access (!atom, name)
    end
    else continue := false
  done;
  !atom

and parse_args st : Ast.expr list =
  if cur st = RPAREN then begin
    advance st;
    []
  end
  else begin
    let first = parse_expr st in
    let args = ref [ first ] in
    while cur st = COMMA do
      advance st;
      args := parse_expr st :: !args
    done;
    expect st RPAREN;
    List.rev !args
  end

and parse_primary st =
  match cur st with
  | INT_LIT n ->
    advance st;
    Ast.Int_lit n
  | KW "true" ->
    advance st;
    Ast.Bool_lit true
  | KW "false" ->
    advance st;
    Ast.Bool_lit false
  | KW "null" ->
    advance st;
    Ast.Null_lit
  | KW "this" ->
    advance st;
    Ast.This
  | KW "new" -> (
    advance st;
    let elem_type () =
      match cur st with
      | KW "int" ->
        advance st;
        Ast.Tint
      | KW "boolean" ->
        advance st;
        Ast.Tbool
      | IDENT c ->
        advance st;
        Ast.Tclass c
      | t -> error (cur_line st) "expected a type after new, found '%s'"
               (token_to_string t)
    in
    let t = elem_type () in
    match cur st, t with
    | LBRACKET, _ ->
      advance st;
      let n = parse_expr st in
      expect st RBRACKET;
      Ast.New_array (t, n)
    | LPAREN, Ast.Tclass c ->
      advance st;
      expect st RPAREN;
      Ast.New c
    | tk, _ ->
      error (cur_line st) "expected '(' or '[' after new, found '%s'"
        (token_to_string tk))
  | LPAREN ->
    advance st;
    (* cast or parenthesized expression *)
    (match cur st, peek_at st 1 with
    | IDENT c, RPAREN when is_cast_continuation st ->
      advance st;
      advance st;
      Ast.Cast (c, parse_unary st)
    | _ ->
      let e = parse_expr st in
      expect st RPAREN;
      e)
  | IDENT x ->
    advance st;
    if cur st = LPAREN then begin
      advance st;
      let args = parse_args st in
      Ast.Call { call_recv = None; call_class = None; call_name = x; call_args = args }
    end
    else Ast.Local x
  | t -> error (cur_line st) "unexpected token '%s' in expression" (token_to_string t)

and is_cast_continuation st =
  (* (C) e : after RPAREN there must be a primary-start token *)
  match peek_at st 2 with
  | IDENT _ | INT_LIT _ | KW ("null" | "this" | "new" | "true" | "false")
  | LPAREN ->
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : Ast.stmt list =
  (* may produce several statements (annotations expand) *)
  match cur st with
  | ANNOTATION text ->
    advance st;
    List.map (fun sp -> Ast.Spec sp) (Annot.parse_stmt_annot text)
  | LBRACE ->
    advance st;
    let body = parse_stmts_until st RBRACE in
    expect st RBRACE;
    [ Ast.Block body ]
  | KW "if" ->
    advance st;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    let then_branch = parse_stmt st in
    let else_branch =
      if cur st = KW "else" then begin
        advance st;
        parse_stmt st
      end
      else []
    in
    [ Ast.If (cond, then_branch, else_branch) ]
  | KW "while" ->
    advance st;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    (* loop invariant may be the first annotation of the body *)
    let body = parse_stmt st in
    let inv, body =
      match body with
      | Ast.Block (Ast.Spec (Ast.Loop_invariant f) :: rest) :: tl ->
        (Some f, Ast.Block rest :: tl)
      | Ast.Spec (Ast.Loop_invariant f) :: rest -> (Some f, rest)
      | _ -> (None, body)
    in
    [ Ast.While (inv, cond, body) ]
  | KW "return" ->
    advance st;
    if cur st = SEMI then begin
      advance st;
      [ Ast.Return None ]
    end
    else begin
      let e = parse_expr st in
      expect st SEMI;
      [ Ast.Return (Some e) ]
    end
  | KW ("int" | "boolean") ->
    let ty = parse_jtype st in
    let name = expect_ident st in
    let init =
      if cur st = ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st SEMI;
    [ Ast.Var_decl (ty, name, init) ]
  | IDENT _
    when peek_at st 1 = LBRACKET && peek_at st 2 = RBRACKET ->
    let ty = parse_jtype st in
    let name = expect_ident st in
    let init =
      if cur st = ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st SEMI;
    [ Ast.Var_decl (ty, name, init) ]
  | IDENT _ when (match peek_at st 1 with IDENT _ -> true | _ -> false) ->
    (* local declaration: C x [= e]; *)
    let ty = parse_jtype st in
    let name = expect_ident st in
    let init =
      if cur st = ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st SEMI;
    [ Ast.Var_decl (ty, name, init) ]
  | _ ->
    (* assignment or expression statement *)
    let e = parse_expr st in
    if cur st = ASSIGN then begin
      advance st;
      let rhs = parse_expr st in
      expect st SEMI;
      let lhs =
        match e with
        | Ast.Local x -> Ast.Lhs_local x
        | Ast.Field_access (obj, f) -> Ast.Lhs_field (obj, f)
        | Ast.Index (a, i) -> Ast.Lhs_index (a, i)
        | _ -> error (cur_line st) "invalid assignment target"
      in
      [ Ast.Assign (lhs, rhs) ]
    end
    else begin
      expect st SEMI;
      [ Ast.Expr_stmt e ]
    end

and parse_stmts_until st closer : Ast.stmt list =
  let stmts = ref [] in
  while cur st <> closer && cur st <> EOF do
    stmts := !stmts @ parse_stmt st
  done;
  !stmts

(* ------------------------------------------------------------------ *)
(* Members                                                             *)
(* ------------------------------------------------------------------ *)

type member_acc = {
  mutable fields : Ast.field_decl list;
  mutable specvars : Ast.specvar_decl list;
  mutable vardefs : (string * Logic.Form.t) list;
  mutable invariants : Logic.Form.t list;
  mutable methods : Ast.method_decl list;
}

let register_class_annots acc (annots : Annot.class_annot list) =
  List.iter
    (fun a ->
      match a with
      | Annot.Specvar sv -> acc.specvars <- acc.specvars @ [ sv ]
      | Annot.Vardefs (name, def) -> acc.vardefs <- acc.vardefs @ [ (name, def) ]
      | Annot.Invariant f -> acc.invariants <- acc.invariants @ [ f ]
      | Annot.Claimedby _ -> () (* only meaningful inline on a field *))
    annots

let rec parse_member st (class_name : string) (acc : member_acc) : unit =
  match cur st with
  | ANNOTATION text ->
    advance st;
    (* could be a claimedby for the following field, or class annotations *)
    let annots = Annot.parse_class_annot text in
    let claimed =
      List.find_map
        (function Annot.Claimedby c -> Some c | _ -> None)
        annots
    in
    (match claimed with
    | Some _ ->
      (* malformed position: claimedby belongs after modifiers; tolerate by
         re-parsing the member with the pending claim *)
      parse_member_with_claim st class_name acc claimed
    | None -> register_class_annots acc annots)
  | _ -> parse_member_with_claim st class_name acc None

and parse_member_with_claim st class_name acc claimed =
  (* modifiers *)
  let public = ref false and static = ref false in
  let claimed = ref claimed in
  let continue = ref true in
  while !continue do
    match cur st with
    | KW "public" ->
      advance st;
      public := true
    | KW "private" -> advance st
    | KW "static" ->
      advance st;
      static := true
    | ANNOTATION text ->
      advance st;
      let annots = Annot.parse_class_annot text in
      (match
         List.find_map
           (function Annot.Claimedby c -> Some c | _ -> None)
           annots
       with
      | Some c -> claimed := Some c
      | None -> register_class_annots acc annots)
    | _ -> continue := false
  done;
  (* constructor? *)
  match cur st with
  | IDENT name when name = class_name && peek_at st 1 = LPAREN ->
    advance st;
    advance st;
    let params = parse_params st in
    let contract = parse_method_contract st in
    let body = parse_method_body st in
    acc.methods <-
      acc.methods
      @ [ { Ast.m_name = name; m_public = !public; m_static = false;
            m_ret = Ast.Tvoid; m_params = params; m_contract = contract;
            m_body = body; m_is_constructor = true } ]
  | _ ->
    let ty = parse_jtype st in
    let name = expect_ident st in
    if cur st = LPAREN then begin
      advance st;
      let params = parse_params st in
      let contract = parse_method_contract st in
      let body = parse_method_body st in
      acc.methods <-
        acc.methods
        @ [ { Ast.m_name = name; m_public = !public; m_static = !static;
              m_ret = ty; m_params = params; m_contract = contract;
              m_body = body; m_is_constructor = false } ]
    end
    else begin
      (* field declaration, possibly with several declarators: T a, b; *)
      let names = ref [ name ] in
      while cur st = COMMA do
        advance st;
        names := expect_ident st :: !names
      done;
      expect st SEMI;
      List.iter
        (fun n ->
          acc.fields <-
            acc.fields
            @ [ { Ast.f_name = n; f_type = ty; f_public = !public;
                  f_static = !static; f_claimedby = !claimed } ])
        (List.rev !names)
    end

and parse_params st : (Ast.jtype * string) list =
  if cur st = RPAREN then begin
    advance st;
    []
  end
  else begin
    let param () =
      let ty = parse_jtype st in
      let name = expect_ident st in
      (ty, name)
    in
    let first = param () in
    let params = ref [ first ] in
    while cur st = COMMA do
      advance st;
      params := param () :: !params
    done;
    expect st RPAREN;
    List.rev !params
  end

and parse_method_contract st : Ast.contract =
  (* zero or more annotation comments between signature and body *)
  let merge (a : Ast.contract) (b : Ast.contract) : Ast.contract =
    {
      requires = (match b.requires with Some _ -> b.requires | None -> a.requires);
      modifies = a.modifies @ b.modifies;
      ensures = (match b.ensures with Some _ -> b.ensures | None -> a.ensures);
    }
  in
  let contract = ref Ast.empty_contract in
  while (match cur st with ANNOTATION _ -> true | _ -> false) do
    match cur st with
    | ANNOTATION text ->
      advance st;
      contract := merge !contract (Annot.parse_contract text)
    | _ -> ()
  done;
  !contract

and parse_method_body st : Ast.stmt list option =
  match cur st with
  | LBRACE ->
    advance st;
    let body = parse_stmts_until st RBRACE in
    expect st RBRACE;
    Some body
  | SEMI ->
    advance st;
    None
  | t ->
    error (cur_line st) "expected method body or ';', found '%s'"
      (token_to_string t)

(* ------------------------------------------------------------------ *)
(* Classes and programs                                                *)
(* ------------------------------------------------------------------ *)

let parse_class st : Ast.class_decl =
  expect st (KW "class");
  let name = expect_ident st in
  expect st LBRACE;
  let acc =
    { fields = []; specvars = []; vardefs = []; invariants = []; methods = [] }
  in
  while cur st <> RBRACE && cur st <> EOF do
    parse_member st name acc
  done;
  expect st RBRACE;
  (* attach vardefs to their specvars *)
  let specvars =
    List.map
      (fun sv ->
        match List.assoc_opt sv.Ast.sv_name acc.vardefs with
        | Some def -> { sv with Ast.sv_def = Some def }
        | None -> sv)
      acc.specvars
  in
  let orphans =
    List.filter
      (fun (n, _) ->
        not (List.exists (fun sv -> sv.Ast.sv_name = n) acc.specvars))
      acc.vardefs
  in
  (match orphans with
  | (n, _) :: _ -> raise (Error ("vardefs for undeclared specvar " ^ n, 0))
  | [] -> ());
  {
    Ast.c_name = name;
    c_fields = acc.fields;
    c_specvars = specvars;
    c_invariants = acc.invariants;
    c_methods = acc.methods;
  }

(** Parse a compilation unit (one or more classes). *)
let parse_program (src : string) : Ast.program =
  let st = { toks = Jlexer.tokenize src; pos = 0 } in
  let classes = ref [] in
  while cur st <> EOF do
    match cur st with
    | ANNOTATION _ -> advance st (* stray file-level annotation: ignore *)
    | _ -> classes := parse_class st :: !classes
  done;
  List.rev !classes

let parse_program_file (path : string) : Ast.program =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_program src
