(** Tiny substring search helper (no [Str] library dependency). *)

(** Index of the first occurrence of [pat] in [s]; raises [Not_found]. *)
let find (s : string) (pat : string) : int =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then raise Not_found
    else if String.sub s i m = pat then i
    else go (i + 1)
  in
  go 0
