lib/javaparser/ast.ml: List Logic Printf String
