lib/javaparser/jlexer.ml: Array Buffer List Printf String
