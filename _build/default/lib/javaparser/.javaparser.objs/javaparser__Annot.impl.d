lib/javaparser/annot.ml: Ast Format List Logic Str_index String
