lib/javaparser/str_index.ml: String
