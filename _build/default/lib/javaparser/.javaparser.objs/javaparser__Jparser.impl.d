lib/javaparser/jparser.ml: Annot Array Ast Format Jlexer List Logic
