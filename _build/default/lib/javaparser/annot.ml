(** Parser for the specification annotations carried by [/*: ... */] and
    [//: ...] comments.

    Class-level annotations:
    {v
      public [static] [ghost] specvar name :: type;
      [private] vardefs "name == formula";
      invariant "formula";
    v}

    Method contracts (between signature and body):
    {v
      requires "F" modifies x, "C.y" ensures "G"
    v}

    Statement annotations:
    {v
      x := "F";            (ghost assignment)
      assert "F";          assume "F";         noteThat "F";
      inv "F";             (loop invariant, attaches to the next while)
    v}

    Formulas inside string quotes are parsed by {!Logic.Parser}. *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* tiny token stream over annotation text *)
type token =
  | WORD of string
  | QUOTED of string
  | COLONCOLON
  | ASSIGNOP (* := *)
  | COMMA
  | SEMI
  | AEOF

let tokenize (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_word_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '*' then incr i
    else if c = '/' && !i + 1 < n && s.[!i + 1] = '/' then begin
      (* line comment inside an annotation block *)
      while !i < n && s.[!i] <> '\n' do incr i done
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do incr j done;
      if !j >= n then error "unterminated formula string in annotation";
      toks := QUOTED (String.sub s (!i + 1) (!j - !i - 1)) :: !toks;
      i := !j + 1
    end
    else if c = ':' && !i + 1 < n && s.[!i + 1] = ':' then begin
      toks := COLONCOLON :: !toks;
      i := !i + 2
    end
    else if c = ':' && !i + 1 < n && s.[!i + 1] = '=' then begin
      toks := ASSIGNOP :: !toks;
      i := !i + 2
    end
    else if c = ',' then begin
      toks := COMMA :: !toks;
      incr i
    end
    else if c = ';' then begin
      toks := SEMI :: !toks;
      incr i
    end
    else if is_word_char c then begin
      let j = ref !i in
      while !j < n && is_word_char s.[!j] do incr j done;
      toks := WORD (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else error "unexpected character %C in annotation" c
  done;
  List.rev (AEOF :: !toks)

let parse_formula (text : string) : Logic.Form.t =
  try Logic.Parser.parse text
  with Logic.Parser.Error m -> error "bad formula %S: %s" text m

(* ------------------------------------------------------------------ *)
(* Class-level annotations                                             *)
(* ------------------------------------------------------------------ *)

type class_annot =
  | Specvar of Ast.specvar_decl
  | Vardefs of string * Logic.Form.t (* name, definition *)
  | Invariant of Logic.Form.t
  | Claimedby of string (* field modifier, used inline *)

(* split token list on SEMI boundaries *)
let split_semi (toks : token list) : token list list =
  let rec go acc cur = function
    | [] | [ AEOF ] ->
      let cur = List.rev cur in
      List.rev (if cur = [] then acc else cur :: acc)
    | SEMI :: rest -> go (List.rev cur :: acc) [] rest
    | t :: rest -> go acc (t :: cur) rest
  in
  List.filter (fun l -> l <> []) (go [] [] toks)

let parse_specvar_group (group : token list) : class_annot list =
  let rec modifiers public static ghost = function
    | WORD "public" :: rest -> modifiers true static ghost rest
    | WORD "private" :: rest -> modifiers false static ghost rest
    | WORD "static" :: rest -> modifiers public true ghost rest
    | WORD "ghost" :: rest -> modifiers public static true rest
    | rest -> (public, static, ghost, rest)
  in
  let public, static, ghost, rest = modifiers false false false group in
  match rest with
  | WORD "specvar" :: WORD name :: COLONCOLON :: ty_toks ->
    let ty_text =
      String.concat " "
        (List.filter_map
           (function WORD w -> Some w | _ -> None)
           ty_toks)
    in
    let sv_type =
      try Logic.Parser.parse_ftype ty_text
      with Logic.Parser.Error m -> error "bad specvar type %S: %s" ty_text m
    in
    [ Specvar
        { Ast.sv_name = name; sv_type; sv_public = public; sv_static = static;
          sv_ghost = ghost; sv_def = None } ]
  | WORD "vardefs" :: QUOTED def :: _ ->
    (* "name == formula" *)
    let idx =
      try Str_index.find def "=="
      with Not_found -> error "vardefs without '==': %S" def
    in
    let name = String.trim (String.sub def 0 idx) in
    let body =
      String.sub def (idx + 2) (String.length def - idx - 2)
    in
    [ Vardefs (name, parse_formula body) ]
  | WORD "invariant" :: QUOTED f :: _ -> [ Invariant (parse_formula f) ]
  | WORD "claimedby" :: WORD c :: _ -> [ Claimedby c ]
  | [] -> []
  | WORD w :: _ -> error "unknown class annotation keyword %S" w
  | (QUOTED _ | COLONCOLON | ASSIGNOP | COMMA | SEMI | AEOF) :: _ ->
    error "malformed class annotation"

(** Parse the contents of a class-level annotation comment (may contain
    several declarations). *)
let parse_class_annot (text : string) : class_annot list =
  List.concat_map parse_specvar_group (split_semi (tokenize text))

(* ------------------------------------------------------------------ *)
(* Method contracts                                                    *)
(* ------------------------------------------------------------------ *)

let parse_contract (text : string) : Ast.contract =
  let toks = tokenize text in
  let contract = ref Ast.empty_contract in
  let rec go = function
    | AEOF :: _ | [] -> ()
    | WORD "requires" :: QUOTED f :: rest ->
      contract := { !contract with requires = Some (parse_formula f) };
      go rest
    | WORD "ensures" :: QUOTED f :: rest ->
      contract := { !contract with ensures = Some (parse_formula f) };
      go rest
    | WORD "modifies" :: rest ->
      let rec items acc = function
        | WORD w :: COMMA :: rest -> items (w :: acc) rest
        | QUOTED w :: COMMA :: rest -> items (w :: acc) rest
        | WORD w :: rest -> (w :: acc, rest)
        | QUOTED w :: rest -> (w :: acc, rest)
        | rest -> (acc, rest)
      in
      let mods, rest = items [] rest in
      contract := { !contract with modifies = !contract.modifies @ List.rev mods };
      go rest
    | SEMI :: rest -> go rest
    | t :: _ ->
      error "unexpected token in method contract (%s)"
        (match t with
        | WORD w -> w
        | QUOTED q -> "\"" ^ q ^ "\""
        | COLONCOLON -> "::"
        | ASSIGNOP -> ":="
        | COMMA -> ","
        | SEMI -> ";"
        | AEOF -> "<eof>")
  in
  go toks;
  !contract

(* ------------------------------------------------------------------ *)
(* Statement annotations                                               *)
(* ------------------------------------------------------------------ *)

let parse_stmt_annot (text : string) : Ast.spec_stmt list =
  let groups = split_semi (tokenize text) in
  List.filter_map
    (fun group ->
      match group with
      | [] -> None
      | WORD "assert" :: QUOTED f :: _ ->
        Some (Ast.Assert_spec (None, parse_formula f))
      | WORD "assume" :: QUOTED f :: _ ->
        Some (Ast.Assume_spec (None, parse_formula f))
      | WORD "noteThat" :: QUOTED f :: _ ->
        Some (Ast.Note_that (None, parse_formula f))
      | WORD "inv" :: QUOTED f :: _ | WORD "invariant" :: QUOTED f :: _ ->
        Some (Ast.Loop_invariant (parse_formula f))
      | WORD x :: ASSIGNOP :: QUOTED f :: _ ->
        Some (Ast.Ghost_assign (x, parse_formula f))
      | WORD x :: ASSIGNOP :: WORD w :: _ ->
        (* unquoted ghost assignment of simple value *)
        Some (Ast.Ghost_assign (x, Logic.Form.mk_var w))
      | _ -> error "malformed statement annotation %S" text)
    groups
