(** Abstract syntax for the Jahob input language: the Java subset plus
    specification annotations (which parse into {!Logic.Form} values).

    The shape mirrors the paper's figures: classes contain fields, spec
    variables with optional [vardefs] abstraction functions, class
    invariants, and methods carrying [requires] / [modifies] / [ensures]
    contracts. *)

type jtype =
  | Tint
  | Tbool
  | Tvoid
  | Tclass of string (* includes Object *)
  | Tarray of jtype

let rec jtype_to_string = function
  | Tint -> "int"
  | Tbool -> "boolean"
  | Tvoid -> "void"
  | Tclass c -> c
  | Tarray t -> jtype_to_string t ^ "[]"

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Int_lit of int
  | Bool_lit of bool
  | Null_lit
  | Local of string (* local variable, parameter, or unqualified field *)
  | This
  | Field_access of expr * string (* e.f *)
  | Binop of binop * expr * expr
  | Not of expr
  | Neg of expr
  | New of string (* new C() *)
  | New_array of jtype * expr (* new T[n] *)
  | Index of expr * expr (* a[i] *)
  | Array_length of expr (* a.length *)
  | Call of call
  | Cast of string * expr

and call = {
  call_recv : expr option; (* None for same-class static calls *)
  call_class : string option; (* Some C for C.m(...) static calls *)
  call_name : string;
  call_args : expr list;
}

type lhs =
  | Lhs_local of string
  | Lhs_field of expr * string
  | Lhs_index of expr * expr (* a[i] = ... *)

(** Statement-level specification annotations ([//: ...] in bodies). *)
type spec_stmt =
  | Ghost_assign of string * Logic.Form.t (* //: x := "F"; *)
  | Assert_spec of string option * Logic.Form.t (* //: assert "F" *)
  | Assume_spec of string option * Logic.Form.t
  | Note_that of string option * Logic.Form.t (* proved, then assumed *)
  | Loop_invariant of Logic.Form.t (* //: inv "F" (attaches to next loop) *)

type stmt =
  | Var_decl of jtype * string * expr option
  | Assign of lhs * expr
  | Expr_stmt of expr (* calls for effect *)
  | If of expr * stmt list * stmt list
  | While of Logic.Form.t option * expr * stmt list (* invariant, cond, body *)
  | Return of expr option
  | Block of stmt list
  | Spec of spec_stmt

type contract = {
  requires : Logic.Form.t option;
  modifies : string list; (* names, possibly qualified: "List.content" *)
  ensures : Logic.Form.t option;
}

let empty_contract = { requires = None; modifies = []; ensures = None }

type method_decl = {
  m_name : string;
  m_public : bool;
  m_static : bool;
  m_ret : jtype;
  m_params : (jtype * string) list;
  m_contract : contract;
  m_body : stmt list option; (* None for interface-only declarations *)
  m_is_constructor : bool;
}

type field_decl = {
  f_name : string;
  f_type : jtype;
  f_public : bool;
  f_static : bool;
  f_claimedby : string option; (* /*: claimedby List */ *)
}

type specvar_decl = {
  sv_name : string;
  sv_type : Logic.Ftype.t;
  sv_public : bool;
  sv_static : bool;
  sv_ghost : bool;
  sv_def : Logic.Form.t option; (* vardefs "name == F" *)
}

type class_decl = {
  c_name : string;
  c_fields : field_decl list;
  c_specvars : specvar_decl list;
  c_invariants : Logic.Form.t list;
  c_methods : method_decl list;
}

type program = class_decl list

(* ------------------------------------------------------------------ *)
(* Lookups                                                             *)
(* ------------------------------------------------------------------ *)

let find_class (p : program) (name : string) : class_decl option =
  List.find_opt (fun c -> c.c_name = name) p

let find_method (c : class_decl) (name : string) : method_decl option =
  List.find_opt (fun m -> m.m_name = name) c.c_methods

let find_field (c : class_decl) (name : string) : field_decl option =
  List.find_opt (fun f -> f.f_name = name) c.c_fields

let find_specvar (c : class_decl) (name : string) : specvar_decl option =
  List.find_opt (fun v -> v.sv_name = name) c.c_specvars

(* ------------------------------------------------------------------ *)
(* Pretty-printing (for error messages and tests)                      *)
(* ------------------------------------------------------------------ *)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec expr_to_string = function
  | Int_lit n -> string_of_int n
  | Bool_lit b -> string_of_bool b
  | Null_lit -> "null"
  | Local x -> x
  | This -> "this"
  | Field_access (e, f) -> expr_to_string e ^ "." ^ f
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
      (expr_to_string b)
  | Not e -> "!" ^ expr_to_string e
  | Neg e -> "-" ^ expr_to_string e
  | New c -> "new " ^ c ^ "()"
  | New_array (t, n) ->
    Printf.sprintf "new %s[%s]" (jtype_to_string t) (expr_to_string n)
  | Index (a, i) ->
    Printf.sprintf "%s[%s]" (expr_to_string a) (expr_to_string i)
  | Array_length a -> expr_to_string a ^ ".length"
  | Call { call_recv; call_class; call_name; call_args } ->
    let prefix =
      match call_recv, call_class with
      | Some r, _ -> expr_to_string r ^ "."
      | None, Some c -> c ^ "."
      | None, None -> ""
    in
    prefix ^ call_name ^ "("
    ^ String.concat ", " (List.map expr_to_string call_args)
    ^ ")"
  | Cast (c, e) -> Printf.sprintf "((%s) %s)" c (expr_to_string e)
