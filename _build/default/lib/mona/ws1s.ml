(** WS1S: weak monadic second-order logic of one successor.

    The decision procedure behind our MONA substitute.  Second-order
    variables denote finite sets of naturals; first-order variables denote
    positions and are compiled as singleton sets (the standard M2L
    encoding).  Every formula compiles to a {!Dfa.t} whose words encode
    variable assignments track-wise; satisfiability and validity are DFA
    emptiness questions. *)

type var = string

type pred =
  | Sub of var * var (* X subseteq Y *)
  | EqS of var * var (* X = Y *)
  | EqUnion of var * var * var (* X = Y u Z *)
  | EqInter of var * var * var (* X = Y n Z *)
  | EqDiff of var * var * var (* X = Y \ Z *)
  | IsEmpty of var
  | In of var * var (* x : X, x first-order *)
  | EqF of var * var (* x = y *)
  | SuccF of var * var (* x = y + 1 *)
  | LessF of var * var (* x < y *)
  | LeqF of var * var (* x <= y *)
  | ZeroF of var (* x = 0 *)
  | BoolVar of var (* 0 : B, the boolean encoding *)

type t =
  | True
  | False
  | Pred of pred
  | Not of t
  | And of t list
  | Or of t list
  | Impl of t * t
  | Iff of t * t
  | Ex1 of var * t (* first-order exists *)
  | All1 of var * t
  | Ex2 of var * t (* second-order exists *)
  | All2 of var * t

(* convenience *)
let conj fs = And fs
let disj fs = Or fs
let neg f = Not f

(* ------------------------------------------------------------------ *)
(* Variables                                                           *)
(* ------------------------------------------------------------------ *)

let pred_vars = function
  | Sub (a, b) | EqS (a, b) | In (a, b) | EqF (a, b) | SuccF (a, b)
  | LessF (a, b) | LeqF (a, b) ->
    [ a; b ]
  | EqUnion (a, b, c) | EqInter (a, b, c) | EqDiff (a, b, c) -> [ a; b; c ]
  | IsEmpty a | ZeroF a | BoolVar a -> [ a ]

let rec vars_of = function
  | True | False -> []
  | Pred p -> pred_vars p
  | Not f -> vars_of f
  | And fs | Or fs -> List.concat_map vars_of fs
  | Impl (a, b) | Iff (a, b) -> vars_of a @ vars_of b
  | Ex1 (x, f) | All1 (x, f) | Ex2 (x, f) | All2 (x, f) -> x :: vars_of f

(* Rename bound variables apart so each gets its own track. *)
let alpha_rename (f : t) : t =
  let counter = ref 0 in
  let fresh x =
    incr counter;
    Printf.sprintf "%s#%d" x !counter
  in
  let subst_pred env p =
    let s x = match List.assoc_opt x env with Some y -> y | None -> x in
    match p with
    | Sub (a, b) -> Sub (s a, s b)
    | EqS (a, b) -> EqS (s a, s b)
    | EqUnion (a, b, c) -> EqUnion (s a, s b, s c)
    | EqInter (a, b, c) -> EqInter (s a, s b, s c)
    | EqDiff (a, b, c) -> EqDiff (s a, s b, s c)
    | IsEmpty a -> IsEmpty (s a)
    | In (a, b) -> In (s a, s b)
    | EqF (a, b) -> EqF (s a, s b)
    | SuccF (a, b) -> SuccF (s a, s b)
    | LessF (a, b) -> LessF (s a, s b)
    | LeqF (a, b) -> LeqF (s a, s b)
    | ZeroF a -> ZeroF (s a)
    | BoolVar a -> BoolVar (s a)
  in
  let rec go env f =
    match f with
    | True | False -> f
    | Pred p -> Pred (subst_pred env p)
    | Not g -> Not (go env g)
    | And gs -> And (List.map (go env) gs)
    | Or gs -> Or (List.map (go env) gs)
    | Impl (a, b) -> Impl (go env a, go env b)
    | Iff (a, b) -> Iff (go env a, go env b)
    | Ex1 (x, g) ->
      let x' = fresh x in
      Ex1 (x', go ((x, x') :: env) g)
    | All1 (x, g) ->
      let x' = fresh x in
      All1 (x', go ((x, x') :: env) g)
    | Ex2 (x, g) ->
      let x' = fresh x in
      Ex2 (x', go ((x, x') :: env) g)
    | All2 (x, g) ->
      let x' = fresh x in
      All2 (x', go ((x, x') :: env) g)
  in
  go [] f

(* ------------------------------------------------------------------ *)
(* Atomic automata                                                     *)
(* ------------------------------------------------------------------ *)

(* A letter is an int; [bit l i] is track i's bit. *)
let bit l i = (l lsr i) land 1

(* 2-state automaton: accept-loop while [ok letter], dead otherwise. *)
let invariant_automaton ~width ok =
  Dfa.make ~width ~n:2 ~initial:0
    ~accept:(fun s -> s = 0)
    (fun s l -> if s = 0 && ok l then 0 else 1)

let compile_pred ~width ~pos (p : pred) : Dfa.t =
  let tr v = pos v in
  match p with
  | Sub (x, y) ->
    invariant_automaton ~width (fun l -> bit l (tr x) land lnot (bit l (tr y)) = 0)
  | EqS (x, y) ->
    invariant_automaton ~width (fun l -> bit l (tr x) = bit l (tr y))
  | EqUnion (x, y, z) ->
    invariant_automaton ~width (fun l ->
        bit l (tr x) = bit l (tr y) lor bit l (tr z))
  | EqInter (x, y, z) ->
    invariant_automaton ~width (fun l ->
        bit l (tr x) = bit l (tr y) land bit l (tr z))
  | EqDiff (x, y, z) ->
    invariant_automaton ~width (fun l ->
        bit l (tr x) = bit l (tr y) land lnot (bit l (tr z)) land 1)
  | IsEmpty x -> invariant_automaton ~width (fun l -> bit l (tr x) = 0)
  | In (x, y) ->
    (* with x a singleton, x subseteq y is membership *)
    invariant_automaton ~width (fun l -> bit l (tr x) land lnot (bit l (tr y)) = 0)
  | EqF (x, y) ->
    invariant_automaton ~width (fun l -> bit l (tr x) = bit l (tr y))
  | SuccF (x, y) ->
    (* x = y + 1: y's position immediately precedes x's.
       states: 0 = nothing seen, 1 = y seen (x expected now), 2 = done,
       3 = dead *)
    Dfa.make ~width ~n:4 ~initial:0
      ~accept:(fun s -> s = 2)
      (fun s l ->
        let bx = bit l (tr x) and by = bit l (tr y) in
        match s with
        | 0 ->
          if bx = 0 && by = 0 then 0
          else if bx = 0 && by = 1 then 1
          else 3
        | 1 -> if bx = 1 && by = 0 then 2 else 3
        | 2 -> if bx = 0 && by = 0 then 2 else 3
        | _ -> 3)
  | LessF (x, y) ->
    (* x strictly before y *)
    Dfa.make ~width ~n:4 ~initial:0
      ~accept:(fun s -> s = 2)
      (fun s l ->
        let bx = bit l (tr x) and by = bit l (tr y) in
        match s with
        | 0 ->
          if bx = 0 && by = 0 then 0
          else if bx = 1 && by = 0 then 1
          else 3
        | 1 ->
          if bx = 0 && by = 1 then 2 else if bx = 0 && by = 0 then 1 else 3
        | 2 -> if bx = 0 && by = 0 then 2 else 3
        | _ -> 3)
  | LeqF (x, y) ->
    (* x <= y: either same position or x before y *)
    Dfa.make ~width ~n:4 ~initial:0
      ~accept:(fun s -> s = 2)
      (fun s l ->
        let bx = bit l (tr x) and by = bit l (tr y) in
        match s with
        | 0 ->
          if bx = 0 && by = 0 then 0
          else if bx = 1 && by = 1 then 2
          else if bx = 1 && by = 0 then 1
          else 3
        | 1 ->
          if bx = 0 && by = 1 then 2 else if bx = 0 && by = 0 then 1 else 3
        | 2 -> if bx = 0 && by = 0 then 2 else 3
        | _ -> 3)
  | ZeroF x ->
    (* x's singleton is position 0 *)
    Dfa.make ~width ~n:3 ~initial:0
      ~accept:(fun s -> s = 1)
      (fun s l ->
        let bx = bit l (tr x) in
        match s with
        | 0 -> if bx = 1 then 1 else 2
        | 1 -> if bx = 0 then 1 else 2
        | _ -> 2)
  | BoolVar x ->
    (* 0 : X *)
    Dfa.make ~width ~n:3 ~initial:0
      ~accept:(fun s -> s = 1)
      (fun s l ->
        let bx = bit l (tr x) in
        match s with
        | 0 -> if bx = 1 then 1 else 2
        | 1 -> 1
        | _ -> 2)

(* singleton(X): exactly one position in X *)
let singleton_automaton ~width ~track =
  Dfa.make ~width ~n:3 ~initial:0
    ~accept:(fun s -> s = 1)
    (fun s l ->
      let b = bit l track in
      match s with
      | 0 -> if b = 1 then 1 else 0
      | 1 -> if b = 1 then 2 else 1
      | _ -> 2)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type compiled = {
  dfa : Dfa.t;
  tracks : var array; (* track i = tracks.(i) *)
}

let compile (f : t) : compiled =
  let f = alpha_rename f in
  let all_vars =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun v ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end)
      (vars_of f)
  in
  let tracks = Array.of_list all_vars in
  let width = Array.length tracks in
  let pos v =
    let rec find i =
      if i >= width then invalid_arg ("Ws1s.compile: unknown variable " ^ v)
      else if tracks.(i) = v then i
      else find (i + 1)
    in
    find 0
  in
  let rec go f : Dfa.t =
    match f with
    | True -> Dfa.top width
    | False -> Dfa.bottom width
    | Pred p -> compile_pred ~width ~pos p
    | Not g -> Dfa.complement (go g)
    | And gs ->
      List.fold_left
        (fun acc g -> Dfa.minimize (Dfa.inter acc (go g)))
        (Dfa.top width) gs
    | Or gs ->
      List.fold_left
        (fun acc g -> Dfa.minimize (Dfa.union acc (go g)))
        (Dfa.bottom width) gs
    | Impl (a, b) -> go (Or [ Not a; b ])
    | Iff (a, b) -> go (And [ Impl (a, b); Impl (b, a) ])
    | Ex2 (x, g) ->
      let d = go g in
      let p = pos x in
      Dfa.minimize (Dfa.insert_track (Dfa.project d p) p)
    | All2 (x, g) -> go (Not (Ex2 (x, Not g)))
    | Ex1 (x, g) ->
      let d =
        Dfa.inter (singleton_automaton ~width ~track:(pos x)) (go g)
      in
      let p = pos x in
      Dfa.minimize (Dfa.insert_track (Dfa.project d p) p)
    | All1 (x, g) ->
      (* forall x ranges over singletons only *)
      go (Not (Ex1 (x, Not g)))
  in
  { dfa = Dfa.minimize (go f); tracks }

(* free first-order variables must be constrained to singletons *)
let with_fo_constraints (c : compiled) (fo : var list) : Dfa.t =
  let width = Array.length c.tracks in
  Array.to_list c.tracks
  |> List.mapi (fun i v -> (i, v))
  |> List.filter (fun (_, v) -> List.mem v fo)
  |> List.fold_left
       (fun acc (i, _) ->
         Dfa.minimize (Dfa.inter acc (singleton_automaton ~width ~track:i)))
       c.dfa

(* ------------------------------------------------------------------ *)
(* Decision interface                                                  *)
(* ------------------------------------------------------------------ *)

type model = (var * int list) list (* var -> set of positions *)

let decode_word (tracks : var array) (word : int list) : model =
  Array.to_list tracks
  |> List.mapi (fun i v ->
         ( v,
           List.mapi (fun p l -> if bit l i = 1 then Some p else None) word
           |> List.filter_map Fun.id ))

(** Satisfiability; [fo] lists the free first-order variables (constrained
    to singletons).  Returns a satisfying assignment when satisfiable. *)
let satisfiable ?(fo = []) (f : t) : model option =
  let c = compile f in
  let d = with_fo_constraints c fo in
  match Dfa.witness d with
  | None -> None
  | Some w -> Some (decode_word c.tracks w)

(** Validity over all assignments (free first-order variables range over
    positions, second-order over finite sets). *)
let valid ?(fo = []) (f : t) : bool =
  let c = compile (Not f) in
  let d = with_fo_constraints c fo in
  Dfa.is_empty d

(** A countermodel when not valid. *)
let countermodel ?(fo = []) (f : t) : model option = satisfiable ~fo (Not f)
