lib/mona/dfa.ml: Array Hashtbl Int List Queue Set
