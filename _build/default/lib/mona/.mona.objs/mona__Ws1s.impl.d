lib/mona/ws1s.ml: Array Dfa Fun Hashtbl List Printf
