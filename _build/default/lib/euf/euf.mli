(** Congruence closure for the theory of equality with uninterpreted
    function symbols (EUF), with the equality-exchange queries needed for
    Nelson-Oppen combination. *)

type term = Sym of string * term list

val mk_const : string -> term
val mk_app : string -> term list -> term
val pp_term : Format.formatter -> term -> unit
val term_to_string : term -> string

(** Incremental congruence-closure state. *)
type t

val create : unit -> t

(** Assert an equality between two terms. *)
val merge : t -> term -> term -> unit

(** Are two terms currently equal under the congruence closure? *)
val equal_terms : t -> term -> term -> bool

type verdict = Sat | Unsat

(** Decide a conjunction of equalities and disequalities. *)
val check : eqs:(term * term) list -> diseqs:(term * term) list -> verdict

(** Equalities between the given terms implied by [eqs] (Nelson-Oppen
    equality propagation). *)
val implied_equalities :
  eqs:(term * term) list -> term list -> (term * term) list

(** Does any of the disequalities contradict the current state? *)
val inconsistent : t -> (term * term) list -> bool
