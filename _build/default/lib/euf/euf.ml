(** Congruence closure for the theory of equality with uninterpreted
    function symbols (EUF).

    This is the core of the Nelson-Oppen style prover the paper connects
    through its SMT-LIB interface: given equalities and disequalities over
    uninterpreted terms, decide satisfiability and report the equalities
    implied between chosen terms (for equality exchange with other
    theories). *)

type term = Sym of string * term list

let mk_const name = Sym (name, [])
let mk_app name args = Sym (name, args)

let rec pp_term ppf (Sym (f, args)) =
  if args = [] then Format.pp_print_string ppf f
  else
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_term)
      args

let term_to_string t = Format.asprintf "%a" pp_term t

(* ------------------------------------------------------------------ *)
(* State: hash-consed term ids + union-find + congruence table         *)
(* ------------------------------------------------------------------ *)

type node = {
  id : int;
  fname : string;
  args : int list; (* ids *)
  mutable parent : int; (* union-find parent *)
  mutable rank : int;
  mutable uses : int list; (* ids of terms having this id as an argument *)
}

type t = {
  mutable nodes : node array;
  mutable n_nodes : int;
  term_ids : (string * int list, int) Hashtbl.t; (* structural hashcons *)
  (* congruence signature: (fname, arg representatives) -> node id *)
  sigs : (string * int list, int) Hashtbl.t;
  mutable pending : (int * int) list; (* merges to process *)
}

let dummy_node =
  { id = -1; fname = ""; args = []; parent = -1; rank = 0; uses = [] }

let create () =
  {
    nodes = Array.make 0 dummy_node;
    n_nodes = 0;
    term_ids = Hashtbl.create 64;
    sigs = Hashtbl.create 64;
    pending = [];
  }

let node st i = st.nodes.(i)

let rec find st i =
  let n = node st i in
  if n.parent = i then i
  else begin
    let r = find st n.parent in
    n.parent <- r;
    r
  end

(* Intern a term, returning its node id.  New nodes are entered in the
   congruence table; a pre-existing congruent node triggers a merge. *)
let rec intern st (Sym (f, args) : term) : int =
  let arg_ids = List.map (intern st) args in
  match Hashtbl.find_opt st.term_ids (f, arg_ids) with
  | Some i -> i
  | None ->
    let id = st.n_nodes in
    if id >= Array.length st.nodes then begin
      let grown =
        Array.make (max 16 (2 * Array.length st.nodes)) dummy_node
      in
      Array.blit st.nodes 0 grown 0 st.n_nodes;
      st.nodes <- grown
    end;
    let n = { id; fname = f; args = arg_ids; parent = id; rank = 0; uses = [] } in
    st.nodes.(id) <- n;
    st.n_nodes <- id + 1;
    Hashtbl.add st.term_ids (f, arg_ids) id;
    List.iter
      (fun a ->
        let ra = node st (find st a) in
        ra.uses <- id :: ra.uses)
      arg_ids;
    let key = (f, List.map (find st) arg_ids) in
    (match Hashtbl.find_opt st.sigs key with
    | Some j -> st.pending <- (id, j) :: st.pending
    | None -> Hashtbl.add st.sigs key id);
    process_pending st;
    id

and union st i j =
  let ri = find st i and rj = find st j in
  if ri <> rj then begin
    let ni = node st ri and nj = node st rj in
    let small, big =
      if ni.rank < nj.rank then (ni, nj)
      else if nj.rank < ni.rank then (nj, ni)
      else begin
        nj.rank <- nj.rank + 1;
        (ni, nj)
      end
    in
    small.parent <- big.id;
    (* re-hash the congruence signatures of all users of the smaller class *)
    let users = small.uses in
    big.uses <- users @ big.uses;
    small.uses <- [];
    List.iter
      (fun u ->
        let nu = node st u in
        let key = (nu.fname, List.map (find st) nu.args) in
        match Hashtbl.find_opt st.sigs key with
        | Some v when find st v <> find st u ->
          st.pending <- (u, v) :: st.pending
        | Some _ -> ()
        | None -> Hashtbl.add st.sigs key u)
      users
  end

and process_pending st =
  match st.pending with
  | [] -> ()
  | (i, j) :: rest ->
    st.pending <- rest;
    union st i j;
    process_pending st

(** Assert an equality between two terms. *)
let merge st a b =
  let ia = intern st a and ib = intern st b in
  st.pending <- (ia, ib) :: st.pending;
  process_pending st

(** Are two terms currently equal under the congruence closure? *)
let equal_terms st a b =
  let ia = intern st a and ib = intern st b in
  find st ia = find st ib

(* ------------------------------------------------------------------ *)
(* Satisfiability                                                      *)
(* ------------------------------------------------------------------ *)

type verdict = Sat | Unsat

(** Decide a conjunction of equalities and disequalities. *)
let check ~(eqs : (term * term) list) ~(diseqs : (term * term) list) : verdict =
  let st = create () in
  List.iter (fun (a, b) -> merge st a b) eqs;
  if List.exists (fun (a, b) -> equal_terms st a b) diseqs then Unsat else Sat

(** Equalities between the given terms implied by [eqs] (used for
    Nelson-Oppen equality propagation). *)
let implied_equalities ~(eqs : (term * term) list) (shared : term list) :
    (term * term) list =
  let st = create () in
  List.iter (fun (a, b) -> merge st a b) eqs;
  let with_ids = List.map (fun t -> (t, find st (intern st t))) shared in
  let rec pairs = function
    | [] -> []
    | (t, r) :: rest ->
      List.filter_map
        (fun (u, r') -> if r = r' then Some (t, u) else None)
        rest
      @ pairs rest
  in
  pairs with_ids

(** Explanation-free incremental interface used by the SMT solver: assert
    equalities one at a time and query consistency with a disequality
    set. *)
let inconsistent st (diseqs : (term * term) list) =
  List.exists (fun (a, b) -> equal_terms st a b) diseqs
