lib/gen/formgen.ml: Form Ftype Hashtbl List Logic Printf QCheck Random Sequent Typecheck
