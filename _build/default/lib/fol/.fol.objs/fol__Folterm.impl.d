lib/fol/folterm.ml: Format List
