lib/fol/fol.ml: Folterm Form Format Ftype Hashtbl List Logic Pprint Printf Sequent Set Simplify String Sys Typecheck
