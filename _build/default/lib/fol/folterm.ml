(** First-order terms, substitutions and unification for the resolution
    prover. *)

type term =
  | V of string (* universally quantified variable *)
  | Fn of string * term list (* function application; constants are 0-ary *)

type subst = (string * term) list

let rec apply (s : subst) (t : term) : term =
  match t with
  | V x -> (
    match List.assoc_opt x s with
    | Some u -> apply s u (* s may be a triangular substitution *)
    | None -> t)
  | Fn (f, args) -> Fn (f, List.map (apply s) args)

let rec occurs (s : subst) x (t : term) : bool =
  match t with
  | V y -> (
    if x = y then true
    else
      match List.assoc_opt y s with Some u -> occurs s x u | None -> false)
  | Fn (_, args) -> List.exists (occurs s x) args

exception No_unifier

(* triangular unification *)
let rec unify (s : subst) (a : term) (b : term) : subst =
  let rec chase t =
    match t with
    | V x -> (
      match List.assoc_opt x s with Some u -> chase u | None -> t)
    | Fn _ -> t
  in
  let a = chase a and b = chase b in
  match a, b with
  | V x, V y when x = y -> s
  | V x, t | t, V x ->
    if occurs s x t then raise No_unifier else (x, t) :: s
  | Fn (f, xs), Fn (g, ys) ->
    if f <> g || List.length xs <> List.length ys then raise No_unifier
    else List.fold_left2 unify s xs ys

let unify_opt a b = try Some (unify [] a b) with No_unifier -> None

(* variables occurring in a term *)
let rec term_vars acc = function
  | V x -> if List.mem x acc then acc else x :: acc
  | Fn (_, args) -> List.fold_left term_vars acc args

let rec rename_term suffix = function
  | V x -> V (x ^ suffix)
  | Fn (f, args) -> Fn (f, List.map (rename_term suffix) args)

let rec term_size = function
  | V _ -> 1
  | Fn (_, args) -> 1 + List.fold_left (fun n t -> n + term_size t) 0 args

let rec pp_term ppf = function
  | V x -> Format.fprintf ppf "?%s" x
  | Fn (f, []) -> Format.pp_print_string ppf f
  | Fn (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_term)
      args
